package microlib_test

import (
	"context"
	"testing"

	"microlib"
)

// TestPublicAPIQuickstart exercises the facade end to end.
func TestPublicAPIQuickstart(t *testing.T) {
	opts := microlib.NewOptions("gzip", "GHB")
	opts.Insts = 20_000
	opts.Warmup = 10_000
	res, err := microlib.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("IPC %v", res.IPC)
	}
	if res.Mechanism != "GHB" || res.Bench != "gzip" {
		t.Fatalf("identity: %+v", res)
	}
}

func TestBenchmarkAndMechanismLists(t *testing.T) {
	if len(microlib.Benchmarks()) != 26 {
		t.Fatalf("%d benchmarks", len(microlib.Benchmarks()))
	}
	mechs := microlib.Mechanisms()
	want := map[string]bool{"TP": true, "VC": true, "SP": true, "Markov": true,
		"FVC": true, "DBCP": true, "TKVC": true, "TK": true, "CDP": true,
		"CDPSP": true, "TCP": true, "GHB": true}
	found := 0
	for _, m := range mechs {
		if want[m] {
			found++
		}
	}
	if found != len(want) {
		t.Fatalf("missing mechanisms: have %v", mechs)
	}
	if d, ok := microlib.DescribeMechanism("GHB"); !ok || d.Year != 2004 {
		t.Fatalf("describe GHB: %+v", d)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() float64 {
		opts := microlib.NewOptions("twolf", "VC")
		opts.Insts = 15_000
		opts.Warmup = 5_000
		res, err := microlib.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	if run() != run() {
		t.Fatal("identical options produced different IPC")
	}
}

func TestUnknownInputsError(t *testing.T) {
	if _, err := microlib.Run(microlib.NewOptions("nope", "GHB")); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	if _, err := microlib.Run(microlib.NewOptions("gzip", "NOPE")); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
}

func TestMemoryModelsDiffer(t *testing.T) {
	run := func(k microlib.MemoryKind) float64 {
		opts := microlib.NewOptions("lucas", microlib.BaseMechanism)
		opts.Insts = 15_000
		opts.Warmup = 5_000
		opts.Hier = opts.Hier.WithMemory(k)
		res, err := microlib.Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	c70 := run(microlib.MemConst70)
	sdram := run(microlib.MemSDRAM)
	if c70 == sdram {
		t.Fatal("memory models indistinguishable on a memory-bound benchmark")
	}
	if sdram > c70 {
		t.Fatalf("detailed SDRAM (%f) faster than 70-cycle constant (%f) on lucas", sdram, c70)
	}
}

func TestExperimentsListed(t *testing.T) {
	ids := microlib.Experiments()
	if len(ids) < 16 {
		t.Fatalf("only %d experiments: %v", len(ids), ids)
	}
}

// TestCampaignFacade runs a tiny spec-driven sweep through the
// public API, with a persistent cache making the second run free.
func TestCampaignFacade(t *testing.T) {
	spec, err := microlib.ParseCampaignSpec([]byte(`{
		"name": "facade",
		"benchmarks": ["gzip", "mcf"],
		"mechanisms": ["Base", "TP"],
		"insts": [2000],
		"warmup": 500,
		"seeds": [1, 2]
	}`))
	if err != nil {
		t.Fatal(err)
	}

	plan, err := microlib.NewCampaignPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Cells) != 8 {
		t.Fatalf("plan: %d cells, want 8", len(plan.Cells))
	}

	dir := t.TempDir()
	sum, err := microlib.RunCampaign(context.Background(), spec, microlib.CampaignConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.Simulated != 8 || sum.Sched.Errors != 0 {
		t.Fatalf("first run: %+v", sum.Sched)
	}
	if len(sum.Scenarios) != 1 || sum.Scenarios[0].Speedup == nil {
		t.Fatalf("scenarios: %+v", sum.Scenarios)
	}

	again, err := microlib.RunCampaign(context.Background(), spec, microlib.CampaignConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if again.Sched.CacheHits != 8 || again.Sched.Simulated != 0 {
		t.Fatalf("second run must hit the cache: %+v", again.Sched)
	}
}

// TestCampaignAxesFacade sweeps the axis-engine axes (hierarchy
// variants, parameter sets, selection policies) through the public
// API and picks scenarios by axis coordinate.
func TestCampaignAxesFacade(t *testing.T) {
	spec, err := microlib.ParseCampaignSpec([]byte(`{
		"name": "axes",
		"benchmarks": ["gzip"],
		"mechanisms": ["Base", "TP"],
		"hiers": ["default", "infinite-mshr"],
		"paramsets": [{"name": "pub"}, {"name": "q1", "params": {"TP": {"queue": 1}}}],
		"selections": ["skip", "skip:1000"],
		"insts": [2000],
		"warmup": 500
	}`))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := microlib.NewCampaignPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 1 bench × 2 mechs × 2 hiers × 2 paramsets × 2 selections.
	if len(plan.Cells) != 16 || len(plan.Scenarios()) != 8 {
		t.Fatalf("plan: %d cells, %d scenarios", len(plan.Cells), len(plan.Scenarios()))
	}
	sum, err := microlib.RunCampaign(context.Background(), spec, microlib.CampaignConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.Errors != 0 || sum.Sched.Completed != 16 {
		t.Fatalf("run: %+v", sum.Sched)
	}
	sc := sum.Find("hier", "infinite-mshr")
	if sc == nil || sc.Value("hier") != "infinite-mshr" {
		t.Fatalf("scenario lookup by axis failed: %+v", sc)
	}
	if sum.Find("pset", "q1") == nil || sum.Find("sel", "skip:1000") == nil {
		t.Fatal("paramset/selection scenarios must be addressable by coordinate")
	}
}

// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus ablation benches for the design choices DESIGN.md
// calls out. Each artifact bench runs its experiment end-to-end
// (workload synthesis, full timing simulation of 26 benchmarks ×
// up to 13 mechanisms, statistics) and prints the regenerated rows
// on the first iteration.
//
// Instruction budgets are divided by MICROLIB_SCALE (default 4 for
// benches) so the full suite completes quickly; run with
// MICROLIB_SCALE=1 for the EXPERIMENTS.md reference numbers.
package microlib_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"testing"

	"microlib/internal/cpu"
	"microlib/internal/experiments"
	"microlib/internal/hier"
	"microlib/internal/mem"
	"microlib/internal/runner"
	"microlib/internal/sim"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

func benchScale() uint64 {
	if s := os.Getenv("MICROLIB_SCALE"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil && v > 0 {
			return v
		}
	}
	return 4
}

var (
	sharedRunnerOnce sync.Once
	sharedRunner     *experiments.Runner
	printed          sync.Map
)

func expRunner() *experiments.Runner {
	sharedRunnerOnce.Do(func() {
		sharedRunner = experiments.Default().Scale(benchScale())
	})
	return sharedRunner
}

// benchExperiment runs one paper artifact; grids are memoized inside
// the shared runner, so b.N iterations after the first measure the
// analysis layer, and the first iteration the full simulation.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r := expRunner()
	var table string
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(r, id)
		if err != nil {
			b.Fatal(err)
		}
		table = rep.Table
	}
	if _, done := printed.LoadOrStore(id, true); !done {
		fmt.Printf("\n== %s (scale 1/%d) ==\n%s\n", id, benchScale(), table)
	}
}

func BenchmarkFig1Validation(b *testing.B)      { benchExperiment(b, "fig1") }
func BenchmarkFig2Validation(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3DBCPFix(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig4Speedup(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig5PowerCost(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6Sensitivity(b *testing.B)     { benchExperiment(b, "fig6") }
func BenchmarkFig7HighLow(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkFig8MemoryModel(b *testing.B)     { benchExperiment(b, "fig8") }
func BenchmarkFig9MSHR(b *testing.B)            { benchExperiment(b, "fig9") }
func BenchmarkFig10SecondGuess(b *testing.B)    { benchExperiment(b, "fig10") }
func BenchmarkFig11TraceSelection(b *testing.B) { benchExperiment(b, "fig11") }
func BenchmarkTable1Config(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkTable3Mechanisms(b *testing.B)    { benchExperiment(b, "table3") }
func BenchmarkTable5Comparisons(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTable6WinnerSubsets(b *testing.B) { benchExperiment(b, "table6") }
func BenchmarkTable7Selections(b *testing.B)    { benchExperiment(b, "table7") }

// BenchmarkSimulatorThroughput measures raw simulation speed
// (simulated instructions per second) of the full detailed system.
func BenchmarkSimulatorThroughput(b *testing.B) {
	opts := runner.DefaultOptions("swim", "GHB")
	opts.Insts = 50_000
	opts.Warmup = 10_000
	b.ResetTimer()
	var totalInsts uint64
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		totalInsts += res.CPU.Insts
	}
	b.ReportMetric(float64(totalInsts)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkKernelEventQueue measures the event kernel's classic
// closure path (Engine.After + drain, the canonical steady-state
// workload in sim.RunSteadyState). With the pooled calendar queue
// this runs allocation-free in steady state.
func BenchmarkKernelEventQueue(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	if sim.RunSteadyState(eng, b.N, false) == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkKernelEventQueuePooled measures the allocation-free AtFunc
// path the hot components use: a static trampoline with receiver and
// argument packed into the pooled event node.
func BenchmarkKernelEventQueuePooled(b *testing.B) {
	eng := sim.NewEngine()
	b.ResetTimer()
	if sim.RunSteadyState(eng, b.N, true) == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkKernelFarEvents stresses the overflow heap: every event
// lands beyond the calendar ring and is promoted as the window
// slides.
func BenchmarkKernelFarEvents(b *testing.B) {
	eng := sim.NewEngine()
	n := uint64(0)
	fn := sim.Func(func(now uint64, o1, o2 any, a0, a1 uint64) { n++ })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.AfterFunc(2000+uint64(i%512), fn, nil, nil, 0, 0)
		if i%64 == 63 {
			eng.AdvanceTo(eng.Now() + 64)
		}
	}
	eng.AdvanceTo(eng.Now() + 4096)
	if n == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkWorkloadGen measures instruction synthesis throughput.
func BenchmarkWorkloadGen(b *testing.B) {
	gen, err := workload.New("gcc", 1)
	if err != nil {
		b.Fatal(err)
	}
	var inst trace.Inst
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next(&inst)
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

func runLucas(b *testing.B, cfg hier.Config) float64 {
	b.Helper()
	opts := runner.DefaultOptions("lucas", "Base")
	opts.Hier = cfg
	opts.Insts = 60_000
	opts.Warmup = 20_000
	res, err := runner.Run(opts)
	if err != nil {
		b.Fatal(err)
	}
	return res.IPC
}

// BenchmarkAblationSDRAMSchedule compares FCFS against row-hit-first
// scheduling (the paper retained the latter after Green's article).
func BenchmarkAblationSDRAMSchedule(b *testing.B) {
	var fcfs, rhf float64
	for i := 0; i < b.N; i++ {
		cfg := hier.DefaultConfig()
		cfg.SDRAM.Policy = mem.FCFS
		fcfs = runLucas(b, cfg)
		cfg.SDRAM.Policy = mem.RowHitFirst
		rhf = runLucas(b, cfg)
	}
	b.ReportMetric(rhf/fcfs, "rowhit/fcfs-ipc")
}

// BenchmarkAblationInterleave compares linear and permutation-based
// bank interleaving (Zhang et al., MICRO'00).
func BenchmarkAblationInterleave(b *testing.B) {
	var lin, perm float64
	for i := 0; i < b.N; i++ {
		cfg := hier.DefaultConfig()
		cfg.SDRAM.Interleave = mem.LinearMap
		lin = runLucas(b, cfg)
		cfg.SDRAM.Interleave = mem.PermuteMap
		perm = runLucas(b, cfg)
	}
	b.ReportMetric(perm/lin, "permute/linear-ipc")
}

// BenchmarkAblationHostCore compares the mechanism benefit measured
// on the out-of-order host versus the in-order host (module
// interoperability across processor models).
func BenchmarkAblationHostCore(b *testing.B) {
	var speedupOoO, speedupIO float64
	for i := 0; i < b.N; i++ {
		for _, inorder := range []bool{false, true} {
			base := runner.DefaultOptions("swim", "Base")
			mech := runner.DefaultOptions("swim", "GHB")
			base.InOrder, mech.InOrder = inorder, inorder
			base.Insts, mech.Insts = 40_000, 40_000
			base.Warmup, mech.Warmup = 10_000, 10_000
			rb, err := runner.Run(base)
			if err != nil {
				b.Fatal(err)
			}
			rm, err := runner.Run(mech)
			if err != nil {
				b.Fatal(err)
			}
			if inorder {
				speedupIO = rm.IPC / rb.IPC
			} else {
				speedupOoO = rm.IPC / rb.IPC
			}
		}
	}
	b.ReportMetric(speedupOoO, "ooo-speedup")
	b.ReportMetric(speedupIO, "inorder-speedup")
}

// BenchmarkAblationPrefetchPriority compares demand-priority
// scheduling of prefetches against treating them as demand requests
// throughout the memory system.
func BenchmarkAblationPrefetchPriority(b *testing.B) {
	var withPrio, without float64
	for i := 0; i < b.N; i++ {
		for _, asDemand := range []bool{false, true} {
			opts := runner.DefaultOptions("swim", "GHB")
			opts.Insts = 40_000
			opts.Warmup = 10_000
			opts.PrefetchAsDemand = asDemand
			res, err := runner.Run(opts)
			if err != nil {
				b.Fatal(err)
			}
			if asDemand {
				without = res.IPC
			} else {
				withPrio = res.IPC
			}
		}
	}
	b.ReportMetric(withPrio, "prio-ipc")
	b.ReportMetric(without, "noprio-ipc")
}

// BenchmarkInOrderCore measures the scalar host core alone.
func BenchmarkInOrderCore(b *testing.B) {
	opts := runner.DefaultOptions("gzip", "Base")
	opts.InOrder = true
	opts.Insts = 40_000
	opts.Warmup = 0
	var ipc float64
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		ipc = res.IPC
	}
	b.ReportMetric(ipc, "ipc")
}

// BenchmarkCPUPipeline measures the OoO core on a hot loop (high L1
// hit rate), isolating core overheads from memory behaviour.
func BenchmarkCPUPipeline(b *testing.B) {
	opts := runner.DefaultOptions("crafty", "Base")
	opts.Insts = 40_000
	opts.Warmup = 0
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.CPU.Cycles
	}
	_ = cycles
	_ = cpu.DefaultConfig()
}

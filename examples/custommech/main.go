// Custommech shows the MicroLib module story from the paper's
// Section 4: a new micro-architecture idea is written once against
// the mechanism hooks, registered under a name, and immediately
// becomes comparable against every published mechanism in the
// library.
//
// The example mechanism is a "next-N-line" prefetcher at the L2 —
// tagged prefetching generalized to a configurable prefetch depth.
package main

import (
	"fmt"
	"log"

	"microlib"
)

// nextN prefetches the next n sequential lines on every L2 miss.
type nextN struct {
	l2       *microlib.Cache
	n        int
	lineSize uint64
	triggers uint64
}

// Name implements microlib.Mechanism.
func (p *nextN) Name() string { return "NextN" }

// OnAccess implements the cache.AccessObserver hook.
func (p *nextN) OnAccess(ev microlib.AccessEvent) {
	if ev.Write || ev.Hit && !ev.PrefetchedLine {
		return
	}
	p.triggers++
	for i := 1; i <= p.n; i++ {
		p.l2.Prefetch(ev.LineAddr + uint64(i)*p.lineSize)
	}
}

func main() {
	microlib.RegisterMechanism(microlib.MechDescription{
		Name: "NextN", Level: "L2", Year: 2026,
		Summary: "example: next-N-line prefetcher",
	}, func(env *microlib.MechEnv, params microlib.MechParams) (microlib.Mechanism, error) {
		m := &nextN{
			l2:       env.L2,
			n:        params.Get("depth", 2),
			lineSize: uint64(env.L2.Config().LineSize),
		}
		env.L2.SetPrefetchQueueCap(params.Get("queue", 16))
		env.L2.Attach(m)
		return m, nil
	})

	const bench = "facerec"
	compare := []string{microlib.BaseMechanism, "TP", "NextN", "SP", "GHB"}
	var baseIPC float64
	for _, mech := range compare {
		res, err := microlib.Run(microlib.NewOptions(bench, mech))
		if err != nil {
			log.Fatal(err)
		}
		if mech == microlib.BaseMechanism {
			baseIPC = res.IPC
			fmt.Printf("%-6s IPC %.4f\n", mech, res.IPC)
			continue
		}
		fmt.Printf("%-6s IPC %.4f  speedup %.3f\n", mech, res.IPC, res.IPC/baseIPC)
	}
}

// Memstudy reproduces the paper's Section 3.3 question in miniature:
// how much does the memory model's precision change a mechanism's
// apparent benefit? It runs one benchmark and one prefetcher under
// the SimpleScalar-style constant-latency memory and under the
// detailed SDRAM, and prints the speedups side by side.
package main

import (
	"fmt"
	"log"

	"microlib"
)

func run(bench, mech string, kind microlib.MemoryKind) microlib.Result {
	opts := microlib.NewOptions(bench, mech)
	opts.Hier = opts.Hier.WithMemory(kind)
	res, err := microlib.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	const bench = "lucas" // the paper's memory-bound cautionary tale
	const mech = "GHB"

	kinds := []struct {
		name string
		kind microlib.MemoryKind
	}{
		{"const-70 (SimpleScalar-like)", microlib.MemConst70},
		{"sdram-170 (detailed)", microlib.MemSDRAM},
		{"sdram-70 (scaled)", microlib.MemSDRAM70},
	}

	fmt.Printf("benchmark %s, mechanism %s\n\n", bench, mech)
	fmt.Printf("%-30s %10s %10s %10s %12s\n", "memory model", "base IPC", "mech IPC", "speedup", "avg lat")
	for _, k := range kinds {
		base := run(bench, microlib.BaseMechanism, k.kind)
		m := run(bench, mech, k.kind)
		fmt.Printf("%-30s %10.4f %10.4f %10.3f %12.1f\n",
			k.name, base.IPC, m.IPC, m.IPC/base.IPC, m.Mem.AvgReadLatency())
	}
	fmt.Println("\nThe constant-latency model overstates prefetching: the detailed")
	fmt.Println("SDRAM charges bank conflicts and bandwidth for every speculative")
	fmt.Println("request (the paper's Figure 8).")
}

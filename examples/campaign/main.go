// Example campaign runs a small declarative sweep through the
// library API: three prefetchers × four benchmarks × two memory
// models × two seeds, cached on disk so a second run is instant.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"microlib"
)

func main() {
	warmup := uint64(10_000)
	spec := microlib.CampaignSpec{
		Name:        "example-sweep",
		Description: "prefetchers under two memory models",
		Benchmarks:  []string{"gzip", "mcf", "art", "twolf"},
		Mechanisms:  []string{microlib.BaseMechanism, "SP", "GHB"},
		Memories:    []string{"sdram", "const70"},
		Insts:       []uint64{30_000},
		Warmup:      &warmup,
		Seeds:       []uint64{42, 43},
	}

	cacheDir, err := os.MkdirTemp("", "mlcampaign-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	cfg := microlib.CampaignConfig{
		CacheDir: cacheDir,
		OnProgress: func(p microlib.CampaignProgress) {
			fmt.Printf("\r[%d/%d] %s/%s", p.Done, p.Total, p.Cell.Bench(), p.Cell.Mech())
		},
	}
	sum, err := microlib.RunCampaign(context.Background(), spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sum.Text())

	// The same campaign again: every cell is served from the cache.
	again, err := microlib.RunCampaign(context.Background(), spec, microlib.CampaignConfig{CacheDir: cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond run: %d/%d cells from cache\n", again.Sched.CacheHits, again.Sched.Total)

	customWorkloads(cacheDir)
}

// customWorkloads sweeps two user-authored workloads — an inline
// synthetic profile and a trace recorded on the spot — against a
// built-in benchmark (see examples/campaign/custom-workloads.json
// for the same campaign as a JSON spec for mlcampaign).
func customWorkloads(cacheDir string) {
	tracePath := filepath.Join(cacheDir, "recorded.mlt")
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	n, err := microlib.RecordTrace(microlib.CampaignSpec{}, "gzip", 42, 45_000, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecorded %d instructions of gzip to %s\n", n, tracePath)

	warmup := uint64(10_000)
	spec := microlib.CampaignSpec{
		Name: "custom-workloads",
		Workloads: []microlib.CampaignWorkload{
			{
				Name: "pointer-storm",
				Profile: &microlib.WorkloadProfile{
					LoadFrac: 0.3, StoreFrac: 0.1, Mispredict: 0.04,
					CodeKB: 16, BlockLen: 6, DepMean: 5,
					Patterns: []microlib.WorkloadPattern{
						{Kind: microlib.PatHot, Size: 8 << 10},
						{Kind: microlib.PatChase, Size: 2 << 20, NodeSize: 64, PtrOff: 8, Serial: true},
					},
					Phases: []microlib.WorkloadPhase{{Len: 60_000, Weights: []float64{8, 2}}},
				},
			},
			{Name: "recorded-gzip", Trace: tracePath},
		},
		Benchmarks: []string{"gzip", "pointer-storm", "recorded-gzip"},
		Mechanisms: []string{microlib.BaseMechanism, "SP", "GHB"},
		Insts:      []uint64{30_000},
		Warmup:     &warmup,
	}
	sum, err := microlib.RunCampaign(context.Background(), spec, microlib.CampaignConfig{CacheDir: cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(sum.Text())
}

// Example campaign runs a small declarative sweep through the
// library API: three prefetchers × four benchmarks × two memory
// models × two seeds, cached on disk so a second run is instant.
//
// Run with:
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"microlib"
)

func main() {
	warmup := uint64(10_000)
	spec := microlib.CampaignSpec{
		Name:        "example-sweep",
		Description: "prefetchers under two memory models",
		Benchmarks:  []string{"gzip", "mcf", "art", "twolf"},
		Mechanisms:  []string{microlib.BaseMechanism, "SP", "GHB"},
		Memories:    []string{"sdram", "const70"},
		Insts:       []uint64{30_000},
		Warmup:      &warmup,
		Seeds:       []uint64{42, 43},
	}

	cacheDir, err := os.MkdirTemp("", "mlcampaign-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(cacheDir)

	cfg := microlib.CampaignConfig{
		CacheDir: cacheDir,
		OnProgress: func(p microlib.CampaignProgress) {
			fmt.Printf("\r[%d/%d] %s/%s", p.Done, p.Total, p.Cell.Bench, p.Cell.Mech)
		},
	}
	sum, err := microlib.RunCampaign(context.Background(), spec, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(sum.Text())

	// The same campaign again: every cell is served from the cache.
	again, err := microlib.RunCampaign(context.Background(), spec, microlib.CampaignConfig{CacheDir: cacheDir})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond run: %d/%d cells from cache\n", again.Sched.CacheHits, again.Sched.Total)
}

// Package figures ships the campaign specs behind the paper's
// figures. Every validation and methodology figure of the evaluation
// (Figures 1-3 and 8-11) plus the main comparison grid (Figures 4-7,
// Tables 6-7) is a plain mlcampaign spec in this directory: run one
// directly with
//
//	mlcampaign run -spec examples/campaign/figures/fig8.json -cache .mlcache
//
// or let the mlrank experiment drivers replay them — the drivers
// embed these exact files, so the shipped spec and the regenerated
// figure can never drift apart. The specs carry the paper-scale
// budgets; mlrank rescales budgets and sweeps without touching the
// swept axes.
package figures

import (
	"embed"
	"sort"
)

// FS holds the shipped figure specs.
//
//go:embed *.json
var FS embed.FS

// Files lists the shipped spec filenames, sorted.
func Files() []string {
	entries, err := FS.ReadDir(".")
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		out = append(out, e.Name())
	}
	sort.Strings(out)
	return out
}

// Quickstart: run one benchmark on the baseline Table 1 system and
// again with a mechanism plugged in, and report the speedup —
// MicroLib's elementary quantitative comparison.
package main

import (
	"fmt"
	"log"

	"microlib"
)

func main() {
	const bench = "swim"

	base, err := microlib.Run(microlib.NewOptions(bench, microlib.BaseMechanism))
	if err != nil {
		log.Fatal(err)
	}
	ghb, err := microlib.Run(microlib.NewOptions(bench, "GHB"))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("benchmark       %s\n", bench)
	fmt.Printf("base IPC        %.4f (L2 misses %d, avg mem latency %.0f cycles)\n",
		base.IPC, base.L2.Misses, base.Mem.AvgReadLatency())
	fmt.Printf("GHB  IPC        %.4f (L2 misses %d, prefetches issued %d, useful %d)\n",
		ghb.IPC, ghb.L2.Misses, ghb.L2.PrefetchIssued, ghb.L2.PrefetchUseful)
	fmt.Printf("speedup         %.3f\n", ghb.IPC/base.IPC)

	fmt.Println("\navailable mechanisms:")
	for _, d := range microlib.MechanismDescriptions() {
		fmt.Printf("  %-7s (%s, %d)  %s\n", d.Name, d.Level, d.Year, d.Summary)
	}
}

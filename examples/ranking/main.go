// Ranking runs the paper's headline experiment in a reduced form: a
// benchmark × mechanism speedup grid and the resulting ranking, on a
// subset of the suite — then shows how choosing a different benchmark
// subset changes the winner (the Section 3.2 cherry-picking effect).
package main

import (
	"fmt"
	"log"

	"microlib"
)

func main() {
	r := microlib.NewExperiments()
	r.Scale(4) // keep the example quick
	r.Benchmarks = []string{"gzip", "swim", "mcf", "twolf", "mesa", "art"}
	r.Mechs = []string{"Base", "TP", "SP", "Markov", "CDP", "GHB"}

	rep, err := microlib.RunExperiment(r, "fig4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Table)

	rep, err = microlib.RunExperiment(r, "table6")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("which mechanism can win with N of these benchmarks:")
	fmt.Println(rep.Table)
}

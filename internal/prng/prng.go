// Package prng provides fast, deterministic pseudo-random number
// generation for the simulator. Every simulation in MicroLib must be
// exactly reproducible from a seed, so the package exposes explicit
// generator state (no global source) and stable algorithms
// (splitmix64 for seeding, xoshiro256** for the stream).
package prng

import "math/bits"

// Source is a xoshiro256** generator. The zero value is not a valid
// generator; use New or Seed.
type Source struct {
	s [4]uint64
}

// splitmix64 advances the given state and returns the next value. It
// is used to expand a single seed word into full generator state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed.
func New(seed uint64) *Source {
	var s Source
	s.Seed(seed)
	return &s
}

// Seed resets the generator state from a single seed word.
func (s *Source) Seed(seed uint64) {
	sm := seed
	for i := range s.s {
		s.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any
	// seed cannot produce four zero words, but guard regardless.
	if s.s[0]|s.s[1]|s.s[2]|s.s[3] == 0 {
		s.s[0] = 1
	}
}

// Uint64 returns the next value in the stream.
func (s *Source) Uint64() uint64 {
	result := bits.RotateLeft64(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = bits.RotateLeft64(s.s[3], 45)
	return result
}

// Split derives an independent generator from this one. The derived
// stream is decorrelated from the parent by hashing a fresh draw.
func (s *Source) Split() *Source {
	seed := s.Uint64()
	return New(seed ^ 0xd2b74407b1ce6e93)
}

// SplitString derives an independent generator keyed by a string
// label, so that e.g. each benchmark gets a stable stream regardless
// of the order in which benchmarks are simulated.
func (s *Source) SplitString(label string) *Source {
	h := HashString(label)
	return New(s.s[0] ^ h)
}

// HashString is a 64-bit FNV-1a hash, exposed for stable keying.
func HashString(str string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(str); i++ {
		h ^= uint64(str[i])
		h *= prime
	}
	return h
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn called with n <= 0")
	}
	return int(s.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("prng: Uint64n called with n == 0")
	}
	return s.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Geometric returns a sample from a geometric distribution with mean
// approximately mean (support {1, 2, ...}), clamped to max.
func (s *Source) Geometric(mean float64, max int) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for n < max && !s.Bool(p) {
		n++
	}
	return n
}

// Zipf draws a value in [0, n) with a zipf-like skew: rank r has
// weight 1/(r+1)^theta. It uses rejection-free inverse-CDF over a
// precomputed table when n is small, and a quick approximation
// otherwise. For simulator workload modeling exactness is not needed,
// only stable, heavy-tailed skew.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a zipf sampler over [0, n) with exponent theta.
func NewZipf(src *Source, n int, theta float64) *Zipf {
	if n <= 0 {
		panic("prng: NewZipf with n <= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		w := 1 / powf(float64(i+1), theta)
		sum += w
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Draw returns the next zipf-distributed rank.
func (z *Zipf) Draw() int {
	u := z.src.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// powf is a small positive-base power to avoid importing math just
// for this (and to keep behaviour identical across platforms: the
// loop form is exact for the integral exponents we mostly use).
func powf(base, exp float64) float64 {
	if exp == float64(int(exp)) && exp >= 0 && exp < 32 {
		r := 1.0
		for i := 0; i < int(exp); i++ {
			r *= base
		}
		return r
	}
	// Fallback: exp(log) via continued refinement. base > 0 always
	// here; this path only runs for fractional theta.
	return expf(exp * logf(base))
}

func logf(x float64) float64 {
	// Newton iterations on exp(y) = x starting from a rough guess.
	y := 0.0
	for x > 2 {
		x /= 2
		y += 0.6931471805599453
	}
	for x < 0.5 {
		x *= 2
		y -= 0.6931471805599453
	}
	z := x - 1
	// atanh-based series for log around 1.
	t := z / (2 + z)
	t2 := t * t
	sum := t
	term := t
	for k := 3; k < 30; k += 2 {
		term *= t2
		sum += term / float64(k)
	}
	return y + 2*sum
}

func expf(x float64) float64 {
	neg := x < 0
	if neg {
		x = -x
	}
	n := int(x / 0.6931471805599453)
	r := x - float64(n)*0.6931471805599453
	// Taylor for exp(r), r in [0, ln2).
	sum := 1.0
	term := 1.0
	for k := 1; k < 20; k++ {
		term *= r / float64(k)
		sum += term
	}
	for i := 0; i < n; i++ {
		sum *= 2
	}
	if neg {
		return 1 / sum
	}
	return sum
}

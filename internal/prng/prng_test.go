package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d collisions between different seeds", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c1 := a.Split()
	c2 := a.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling splits produced identical first draw")
	}
}

func TestSplitStringStable(t *testing.T) {
	a, b := New(9).SplitString("gzip"), New(9).SplitString("gzip")
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitString not stable")
	}
	c := New(9).SplitString("gcc")
	if New(9).SplitString("gzip").Uint64() == c.Uint64() {
		t.Fatal("different labels produced the same stream")
	}
}

func TestIntnRange(t *testing.T) {
	src := New(3)
	err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := src.Intn(n)
		return v >= 0 && v < n
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	src := New(4)
	for i := 0; i < 10000; i++ {
		f := src.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	src := New(5)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if src.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("Bool(0.25) frequency %v", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	src := New(6)
	sum := 0
	const n = 50000
	for i := 0; i < n; i++ {
		sum += src.Geometric(4, 100)
	}
	mean := float64(sum) / n
	if mean < 3.2 || mean > 4.8 {
		t.Fatalf("geometric mean %v, want ~4", mean)
	}
}

func TestGeometricClamp(t *testing.T) {
	src := New(6)
	for i := 0; i < 1000; i++ {
		if v := src.Geometric(50, 10); v > 10 || v < 1 {
			t.Fatalf("clamp violated: %d", v)
		}
	}
	if v := src.Geometric(0.5, 10); v != 1 {
		t.Fatalf("mean<=1 should return 1, got %d", v)
	}
}

func TestZipfSkew(t *testing.T) {
	src := New(8)
	z := NewZipf(src, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Draw()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	if counts[0] == 0 || counts[99] < 0 {
		t.Fatal("zipf support broken")
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("ammp") != HashString("ammp") {
		t.Fatal("hash not stable")
	}
	if HashString("ammp") == HashString("applu") {
		t.Fatal("hash collision on benchmark names")
	}
}

func TestUint64nPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

package prng

// State returns the raw xoshiro256** state words for warm-state
// checkpointing. Restoring them with SetState reproduces the stream
// bit-identically.
func (s *Source) State() [4]uint64 { return s.s }

// SetState overwrites the generator state with a previously captured
// State value.
func (s *Source) SetState(st [4]uint64) { s.s = st }

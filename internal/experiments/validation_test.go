package experiments

import (
	"strings"
	"testing"
)

func TestFig1Validation(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "fig1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table, "average |IPC diff|") {
		t.Fatalf("fig1 table:\n%s", rep.Table)
	}
	// The SimpleScalar-style cache (no structural stalls) should not
	// be slower than the detailed model on most rows; the report must
	// carry per-benchmark rows for all three benchmarks.
	for _, b := range r.Benchmarks {
		if !strings.Contains(rep.Table, b) {
			t.Fatalf("fig1 missing %s", b)
		}
	}
}

func TestFig2AgainstGoldens(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	// Either goldens are present (table with err% columns) or the
	// regeneration hint is shown; both are valid report shapes.
	if !strings.Contains(rep.Table, "err%") && !strings.Contains(rep.Table, "genref") {
		t.Fatalf("fig2 table:\n%s", rep.Table)
	}
}

func TestFig3BuggyVsFixed(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"initial", "fixed", "TK", "paper: 38%"} {
		if !strings.Contains(rep.Table, want) {
			t.Fatalf("fig3 missing %q:\n%s", want, rep.Table)
		}
	}
}

func TestGenRefEmitsGoSource(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "genref")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table, "package refdata") {
		t.Fatalf("genref output:\n%s", rep.Table)
	}
}

func TestFig9And11(t *testing.T) {
	r := tinyRunner()
	rep9, err := Run(r, "fig9")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep9.Table, "finite-MSHR") {
		t.Fatalf("fig9:\n%s", rep9.Table)
	}
	rep11, err := Run(r, "fig11")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep11.Table, "simpoint") {
		t.Fatalf("fig11:\n%s", rep11.Table)
	}
}

func TestFig5CostPower(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "fig5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table, "area-ratio") || !strings.Contains(rep.Table, "power-ratio") {
		t.Fatalf("fig5:\n%s", rep.Table)
	}
	// TP's area ratio must be tiny; parse loosely by checking its row
	// exists.
	if !strings.Contains(rep.Table, "TP") {
		t.Fatal("fig5 missing TP row")
	}
}

func TestFig6Sensitivity(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "fig6")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table, "spread") {
		t.Fatalf("fig6:\n%s", rep.Table)
	}
}

package experiments

import (
	"fmt"
	"strings"
)

func init() {
	register("geometry", "Effect of CPU geometry: RUU/LSQ window 32 to 256 entries", Geometry)
}

// Geometry replays the shipped geometry spec (geometry.json, a
// "fields" axis zipping cpu.ruu and cpu.lsq through the config-field
// registry): mean speedups per mechanism under host cores from a
// quarter to double the Table 1 window. The question the paper's
// methodology asks of every hidden parameter applies to the host core
// itself — a mechanism ranking measured on one window size does not
// automatically transfer to another, because a wider window already
// hides latency that a prefetcher would otherwise cover.
func Geometry(r *Runner) Report {
	sum := r.Campaign("geometry")
	axisName := sum.Spec.Fields[0].AxisName()

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s", "mech")
	means := make([][]float64, len(sum.Scenarios))
	for i, sc := range sum.Scenarios {
		fmt.Fprintf(&sb, " %12s", "win "+strings.SplitN(sc.Value(axisName), "+", 2)[0])
		means[i] = sc.Speedup.MeanPerMech()
	}
	sb.WriteByte('\n')
	for m, name := range sum.Scenarios[0].Speedup.Mechs {
		fmt.Fprintf(&sb, "%-8s", name)
		for i := range sum.Scenarios {
			fmt.Fprintf(&sb, " %12.4f", means[i][m])
		}
		sb.WriteByte('\n')
	}
	return Report{ID: "geometry", Title: Title("geometry"), Table: sb.String()}
}

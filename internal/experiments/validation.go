package experiments

import (
	"fmt"
	"strings"

	"microlib/internal/campaign"
	"microlib/internal/hier"
	"microlib/internal/refdata"
	"microlib/internal/stats"
)

func init() {
	register("fig1", "MicroLib cache model validation (detailed vs SimpleScalar-style cache)", Fig1)
	register("fig2", "Validation of TK, TCP and TKVC against recorded reference results", Fig2)
	register("fig3", "Fixing the DBCP reverse-engineered implementation (initial vs fixed)", Fig3)
	register("genref", "Regenerate the refdata goldens (prints Go source)", GenRef)
}

// Fig1 compares the detailed MicroLib cache model against the
// SimpleScalar-style cache (infinite MSHRs, free refill ports, no
// pipeline stalls) on the baseline hierarchy (shipped spec:
// fig1.json, hiers axis). The paper reports a 6.8% average IPC
// difference against stock SimpleScalar, reduced to 2% once
// SimpleScalar was aligned with the remaining differences; our two
// models bracket the same effect.
func Fig1(r *Runner) Report {
	sum := r.Campaign("fig1")
	detailed := scenario(sum, campaign.AxisHier, hier.VariantDefault).Mean
	ss := scenario(sum, campaign.AxisHier, hier.VariantSimpleScalar).Mean

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %8s\n", "bench", "microlib", "ss-like", "diff%")
	sum2 := 0.0
	for i, b := range detailed.Benchmarks {
		ml := detailed.Values[i][0]
		sl := ss.Values[i][0]
		d := 0.0
		if ml > 0 {
			d = (sl - ml) / ml * 100
		}
		if d < 0 {
			sum2 += -d
		} else {
			sum2 += d
		}
		fmt.Fprintf(&sb, "%-10s %10.3f %10.3f %+8.2f\n", b, ml, sl, d)
	}
	fmt.Fprintf(&sb, "average |IPC diff|: %.2f%% (paper: 6.8%% before alignment, 2%% after)\n",
		sum2/float64(len(detailed.Benchmarks)))
	return Report{ID: "fig1", Title: Title("fig1"), Table: sb.String()}
}

// validationSpeedups runs the three validated mechanisms plus Base
// under the Section 2.2 setup (shipped spec: fig2.json — the
// original SimpleScalar constant-latency memory and long arbitrary
// traces, "2-billion instructions, skipping the first billion",
// scaled) and returns the speedup grid vs Base.
func (r *Runner) validationSpeedups() *stats.Grid {
	return r.Campaign("fig2").Scenarios[0].Speedup
}

// Fig2 compares the current implementation of TK, TCP and TKVC
// against recorded reference speedups under the validation setup.
// The paper digitized the original articles' graphs and found a 5%
// average relative speedup error; the original graphs are not
// available here, so the reference is a frozen golden of this
// repository's fixed implementations (see internal/refdata) — the
// comparison then plays the same methodological role: any divergence
// of the implementation from the validated state is surfaced
// per benchmark.
func Fig2(r *Runner) Report {
	var sb strings.Builder
	if len(refdata.Validation) == 0 {
		sb.WriteString("no reference data recorded; run `mlrank -exp genref` and check in internal/refdata/data.go\n")
		return Report{ID: "fig2", Title: Title("fig2"), Table: sb.String()}
	}
	g := r.validationSpeedups()
	mechs := []string{"TK", "TKVC", "TCP"}
	fmt.Fprintf(&sb, "%-10s", "bench")
	for _, m := range mechs {
		fmt.Fprintf(&sb, " %8s %8s", m, "err%")
	}
	sb.WriteByte('\n')
	var totalErr float64
	var n int
	for i, b := range g.Benchmarks {
		fmt.Fprintf(&sb, "%-10s", b)
		for _, m := range mechs {
			cur := g.Values[i][g.MechIndex(m)]
			ref, ok := refdata.Validation[b][m]
			errPct := 0.0
			if ok && ref > 0 {
				errPct = (cur - ref) / ref * 100
				if errPct < 0 {
					totalErr += -errPct
				} else {
					totalErr += errPct
				}
				n++
			}
			fmt.Fprintf(&sb, " %8.3f %+8.2f", cur, errPct)
		}
		sb.WriteByte('\n')
	}
	if n > 0 {
		fmt.Fprintf(&sb, "average |speedup error|: %.2f%% (paper: 5%% vs article graphs)\n", totalErr/float64(n))
	}
	return Report{ID: "fig2", Title: Title("fig2"), Table: sb.String()}
}

// Fig3 reproduces the DBCP reverse-engineering case study (shipped
// spec: fig3.json, paramsets axis): the "initial" implementation
// (half-size table, no PC pre-hashing, no confidence decrement — the
// three mistakes Section 2.2 documents) versus the fixed one, under
// the validation setup, with TK alongside (the TK article's own
// reverse-engineered DBCP had landed close to the buggy version).
func Fig3(r *Runner) Report {
	sum := r.Campaign("fig3")
	spFixed := scenario(sum, campaign.AxisParams, "fixed").Speedup
	spInit := scenario(sum, campaign.AxisParams, "initial").Speedup

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %10s %8s\n", "bench", "initial", "fixed", "TK", "diff%")
	var sumDiff float64
	dbcpF := spFixed.MechIndex("DBCP")
	dbcpI := spInit.MechIndex("DBCP")
	tkI := spFixed.MechIndex("TK")
	for i, b := range spFixed.Benchmarks {
		ini := spInit.Values[i][dbcpI]
		fix := spFixed.Values[i][dbcpF]
		tk := spFixed.Values[i][tkI]
		d := 0.0
		if ini > 0 {
			d = (fix - ini) / ini * 100
		}
		sumDiff += d
		fmt.Fprintf(&sb, "%-10s %10.3f %10.3f %10.3f %+8.2f\n", b, ini, fix, tk, d)
	}
	mf := meanColumn(spFixed, "DBCP")
	mi := meanColumn(spInit, "DBCP")
	mt := meanColumn(spFixed, "TK")
	fmt.Fprintf(&sb, "mean: initial %.4f, fixed %.4f, TK %.4f\n", mi, mf, mt)
	fmt.Fprintf(&sb, "average speedup change from fixing: %+.2f%% (paper: 38%%)\n", sumDiff/float64(len(spFixed.Benchmarks)))
	fmt.Fprintf(&sb, "fixed DBCP vs TK: %+.2f%% (paper: fixed DBCP outperforms TK by 32%% in this setup)\n",
		(mf/mt-1)*100)
	return Report{ID: "fig3", Title: Title("fig3"), Table: sb.String()}
}

func meanColumn(g *stats.Grid, mech string) float64 {
	return g.MeanPerMech()[g.MechIndex(mech)]
}

// GenRef prints the Go source of the refdata goldens from the
// current validation grid.
func GenRef(r *Runner) Report {
	g := r.validationSpeedups()
	var sb strings.Builder
	sb.WriteString("// Code generated by mlrank -exp genref; DO NOT EDIT.\n\npackage refdata\n\n")
	sb.WriteString("func init() {\n\tValidation = map[string]map[string]float64{\n")
	for i, b := range g.Benchmarks {
		fmt.Fprintf(&sb, "\t\t%q: {", b)
		for _, m := range []string{"TK", "TKVC", "TCP"} {
			fmt.Fprintf(&sb, "%q: %.6f, ", m, g.Values[i][g.MechIndex(m)])
		}
		sb.WriteString("},\n")
	}
	sb.WriteString("\t}\n}\n")
	return Report{ID: "genref", Title: Title("genref"), Table: sb.String()}
}

package experiments

import (
	"strings"
	"testing"
)

// tinyRunner keeps integration runs fast: 3 benchmarks, 4 mechanisms,
// short traces.
func tinyRunner() *Runner {
	r := Default()
	r.Insts = 20_000
	r.Warmup = 10_000
	r.ValInsts = 20_000
	r.ValSkip = 10_000
	r.Benchmarks = []string{"gzip", "swim", "twolf"}
	r.Mechs = []string{"Base", "TP", "SP", "GHB"}
	r.UseSimPoint = false
	return r
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "fig10", "fig11", "geometry",
		"table1", "table3", "table5", "table6", "table7", "genref",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run(tinyRunner(), "fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestMainGridAndFig4(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "fig4")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gzip", "swim", "twolf", "GHB", "average speedup"} {
		if !strings.Contains(rep.Table, want) {
			t.Fatalf("fig4 table missing %q:\n%s", want, rep.Table)
		}
	}
	// Memoization: a second run must reuse the grid.
	g1, _ := r.MainGrid()
	g2, _ := r.MainGrid()
	if g1 != g2 {
		t.Fatal("main grid not memoized")
	}
}

func TestFig8ThreeModels(t *testing.T) {
	rep, err := Run(tinyRunner(), "fig8")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"const-70", "sdram-170", "sdram-70"} {
		if !strings.Contains(rep.Table, want) {
			t.Fatalf("fig8 missing %q:\n%s", want, rep.Table)
		}
	}
}

func TestFig10QueueStudy(t *testing.T) {
	rep, err := Run(tinyRunner(), "fig10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep.Table, "queue-128") || !strings.Contains(rep.Table, "queue-1") {
		t.Fatalf("fig10 table:\n%s", rep.Table)
	}
}

// TestCheckSetFields: the mlrank pre-flight catches a bad -set
// against every spec-backed grid before anything simulates — a
// conflict with geometry's own cpu.ruu sweep must not surface hours
// into -exp all.
func TestCheckSetFields(t *testing.T) {
	r := tinyRunner()
	all := IDs()
	if err := r.CheckSetFields(all...); err != nil {
		t.Fatalf("empty SetFields: %v", err)
	}
	r.SetFields = map[string]string{"hier.l1d.assoc": "2"}
	if err := r.CheckSetFields(all...); err != nil {
		t.Fatalf("valid SetFields: %v", err)
	}
	r.SetFields = map[string]string{"cpu.rru": "64"}
	if err := r.CheckSetFields(all...); err == nil || !strings.Contains(err.Error(), "cpu.rru") {
		t.Fatalf("want unknown-path error, got %v", err)
	}
	r.SetFields = map[string]string{"cpu.ruu": "32"}
	if err := r.CheckSetFields(all...); err == nil || !strings.Contains(err.Error(), "geometry") {
		t.Fatalf("want geometry conflict, got %v", err)
	}
	// The conflict is scoped to the experiments about to run: fig8
	// never touches the geometry grid, so the README's replay-on-a-
	// narrower-machine command stays usable.
	if err := r.CheckSetFields("fig8"); err != nil {
		t.Fatalf("cpu.ruu pin must not block fig8: %v", err)
	}
}

// TestBadSetFieldIsAnErrorNotAPanic: mlrank -set feeds user input
// into the figure drivers, so a typo'd path or a pin/sweep conflict
// must come back as an error, not a stack trace.
func TestBadSetFieldIsAnErrorNotAPanic(t *testing.T) {
	r := tinyRunner()
	r.SetFields = map[string]string{"cpu.rru": "64"}
	if _, err := Run(r, "fig4"); err == nil || !strings.Contains(err.Error(), "cpu.rru") {
		t.Fatalf("want unknown-path error, got %v", err)
	}
	r = tinyRunner()
	r.SetFields = map[string]string{"cpu.ruu": "32"}
	if _, err := Run(r, "geometry"); err == nil || !strings.Contains(err.Error(), "pinned in set and swept") {
		t.Fatalf("want pin/sweep conflict error, got %v", err)
	}
}

func TestGeometryStudy(t *testing.T) {
	r := tinyRunner()
	rep, err := Run(r, "geometry")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"win 32", "win 64", "win 128", "win 256", "GHB"} {
		if !strings.Contains(rep.Table, want) {
			t.Fatalf("geometry table missing %q:\n%s", want, rep.Table)
		}
	}
}

func TestTable6And7(t *testing.T) {
	r := tinyRunner()
	rep6, err := Run(r, "table6")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep6.Table, "N") {
		t.Fatalf("table6:\n%s", rep6.Table)
	}
	rep7, err := Run(r, "table7")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rep7.Table, "DBCP article selection") {
		t.Fatalf("table7:\n%s", rep7.Table)
	}
}

func TestStaticTables(t *testing.T) {
	r := tinyRunner()
	for _, id := range []string{"table1", "table3", "table5"} {
		rep, err := Run(r, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Table) == 0 {
			t.Fatalf("%s empty", id)
		}
	}
}

func TestScale(t *testing.T) {
	r := Default()
	insts := r.Insts
	r.Scale(2)
	if r.Insts != insts/2 {
		t.Fatalf("scale: %d", r.Insts)
	}
	r2 := Default()
	r2.Scale(1)
	if r2.Insts != insts {
		t.Fatal("scale 1 changed budgets")
	}
}

package experiments

import (
	"testing"

	"microlib/internal/campaign"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/runner"
)

// TestFig8SpecMatchesLegacyDriver pins the axis refactor end to end:
// the spec-driven fig8 campaign must reproduce, cell for cell and
// bit for bit, the numbers the pre-refactor fixed driver computed.
// The expectation below IS that driver, written out by hand — per
// memory model, one runner.Run per benchmark × mechanism under the
// main configuration, with the per-benchmark SimPoint offset shared
// across mechanisms — so a regression in the axis resolvers, the
// scenario grouping or the plan-time SimPoint hook shows up as a
// numeric diff here.
func TestFig8SpecMatchesLegacyDriver(t *testing.T) {
	r := Default()
	r.Insts = 10_000
	r.Warmup = 5_000
	r.Benchmarks = []string{"gzip", "swim"}
	r.Mechs = []string{"Base", "TP", "GHB"}
	// SimPoint on: the legacy driver computed one offset per
	// benchmark at the grid's budgets; the spec path must agree.
	r.UseSimPoint = true

	sum := r.Campaign("fig8")

	kinds := map[string]hier.MemoryKind{
		campaign.MemNameConst70: hier.MemConst70,
		campaign.MemNameSDRAM:   hier.MemSDRAM,
		campaign.MemNameSDRAM70: hier.MemSDRAM70,
	}
	// Legacy per-benchmark SimPoint offsets (shared across
	// mechanisms and memory models, computed at the main budgets).
	skips := map[string]uint64{}
	for _, b := range r.Benchmarks {
		skip, err := runner.SimPointSkip(runner.Options{
			Bench: b, Insts: r.Insts, Warmup: r.Warmup, Seed: r.Seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		skips[b] = skip
	}

	for mem, kind := range kinds {
		sc := sum.Find(campaign.AxisMemory, mem)
		if sc == nil {
			t.Fatalf("no scenario for memory %s", mem)
		}
		if !sc.Complete() {
			t.Fatalf("scenario %s incomplete: %+v", sc.Label, sc)
		}
		for i, b := range r.Benchmarks {
			for m, mech := range r.Mechs {
				res, err := runner.Run(runner.Options{
					Bench:     b,
					Mechanism: mech,
					Hier:      hier.DefaultConfig().WithMemory(kind),
					CPU:       cpu.DefaultConfig(),
					Insts:     r.Insts,
					Warmup:    r.Warmup,
					Seed:      r.Seed,
					Skip:      skips[b],
				})
				if err != nil {
					t.Fatal(err)
				}
				if got := sc.Mean.Values[i][m]; got != res.IPC {
					t.Errorf("%s %s/%s: campaign IPC %v, legacy driver IPC %v",
						mem, b, mech, got, res.IPC)
				}
			}
		}
	}
}

package experiments

import (
	"fmt"
	"strings"

	"microlib/internal/core"
	"microlib/internal/hwcost"
	"microlib/internal/workload"
)

func init() {
	register("fig4", "Average speedup of every mechanism (detailed SDRAM, SimPoint traces)", Fig4)
	register("fig5", "Cost (area) and power ratios of every mechanism", Fig5)
	register("fig6", "Benchmark sensitivity to data-cache mechanisms", Fig6)
	register("fig7", "Speedup and ranking over all / high- / low-sensitivity benchmarks", Fig7)
	register("table5", "Which articles compared against which previous mechanisms", Table5)
	register("table6", "Which mechanism can be the best with N benchmarks", Table6)
	register("table7", "Influence of benchmark selection on ranking", Table7)
	register("table1", "Baseline configuration (Table 1)", Table1)
	register("table3", "Mechanism configurations (Tables 2 and 3)", Table3)
}

// Fig4 is the paper's headline comparison: average IPC speedup of
// the twelve mechanisms over the 26 benchmarks, on the detailed
// SDRAM with SimPoint-selected traces. The paper finds GHB first,
// SP second, TP strong for its simplicity, and poor averages for
// FVC, CDP and Markov — with CDP helping pointer codes (twolf,
// equake) while degrading mcf and ammp.
func Fig4(r *Runner) Report {
	g, _ := r.MainGrid()
	sp := g.Speedups("Base")
	var sb strings.Builder
	sb.WriteString("per-benchmark speedups:\n")
	sb.WriteString(sp.FormatTable(3))
	sb.WriteString("\naverage speedup (descending):\n")
	sb.WriteString(sp.FormatMeans())
	return Report{ID: "fig4", Title: Title("fig4"), Table: sb.String()}
}

// Fig5 evaluates each mechanism's hardware cost (area relative to
// the base caches, CACTI-style) and relative power (dynamic energy
// of the mechanism tables on top of base cache energy,
// XCACTI-style). Markov and DBCP are dominated by their megabyte
// tables; GHB is cheap in area but power-hungry from its repeated
// buffer walks; SP and TP are nearly free.
func Fig5(r *Runner) Report {
	_, results := r.MainGrid()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %12s %12s\n", "mech", "area-ratio", "power-ratio")
	stale := 0
	for _, m := range r.Mechs {
		if m == "Base" {
			continue
		}
		// Aggregate hardware across benchmarks (area is static; take
		// it from any run, activity accumulates for power averaging).
		var areas []hwcost.Array
		powerSum, powerN := 0.0, 0
		for _, b := range r.Benchmarks {
			res, ok := results[cellKey{b, m}]
			if ok && res.Hardware == nil {
				// Cached before the cost fields existed: valid for
				// IPC, useless here — flag it rather than silently
				// reporting the mechanism as cost-free.
				stale++
			}
			if !ok || len(res.Hardware) == 0 {
				continue
			}
			if areas == nil {
				for _, t := range res.Hardware {
					areas = append(areas, hwcost.Array{Bytes: t.Bytes, Assoc: t.Assoc, Ports: t.Ports})
				}
			}
			var acts []hwcost.Activity
			for _, t := range res.Hardware {
				acts = append(acts, hwcost.Activity{
					Array: hwcost.Array{Bytes: t.Bytes, Assoc: t.Assoc, Ports: t.Ports},
					Reads: t.Reads, Writes: t.Writes,
				})
			}
			powerSum += hwcost.PowerRatio(res.BaseCacheAccesses, hwcost.BaseEnergyPerAccessPJ(), acts)
			powerN++
		}
		area := 0.0
		if areas != nil {
			area = hwcost.AreaRatio(areas)
		}
		power := 1.0
		if powerN > 0 {
			power = powerSum / float64(powerN)
		}
		fmt.Fprintf(&sb, "%-8s %12.4f %12.4f\n", m, area, power)
	}
	if stale > 0 {
		fmt.Fprintf(&sb, "!! %d cells served from a cache recorded before the cost model; their hardware tables are unknown — prune the cache (mlcampaign prune) and rerun for trustworthy cost numbers\n", stale)
	}
	return Report{ID: "fig5", Title: Title("fig5"), Table: sb.String()}
}

// Fig6 ranks benchmarks by their sensitivity (speedup spread across
// mechanisms). The paper names apsi, equake, fma3d, mgrid, swim and
// gap as high-sensitivity and wupwise, bzip2, crafty, eon, perlbmk
// and vortex as barely sensitive.
func Fig6(r *Runner) Report {
	g, _ := r.MainGrid()
	sp := g.Speedups("Base")
	sens := sp.Sensitivity()
	order := sp.SortBySensitivity()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s\n", "bench", "spread")
	for _, b := range order {
		fmt.Fprintf(&sb, "%-10s %12.4f\n", b, sens[sp.BenchIndex(b)])
	}
	return Report{ID: "fig6", Title: Title("fig6"), Table: sb.String()}
}

// Fig7 shows how absolute performance and ranking shift between the
// full suite and the 6 most/least sensitive benchmarks.
func Fig7(r *Runner) Report {
	g, _ := r.MainGrid()
	sp := g.Speedups("Base")
	avail := func(sel []string) []string {
		var out []string
		for _, b := range sel {
			if sp.BenchIndex(b) >= 0 {
				out = append(out, b)
			}
		}
		if len(out) == 0 {
			out = sp.Benchmarks
		}
		return out
	}
	high := sp.Subset(avail(workload.HighSensitivity()))
	low := sp.Subset(avail(workload.LowSensitivity()))

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %6s %10s %6s %10s %6s\n",
		"mech", "all-26", "rank", "high-6", "rank", "low-6", "rank")
	ra, rh, rl := sp.Rank(), high.Rank(), low.Rank()
	ma, mh, ml := sp.MeanPerMech(), high.MeanPerMech(), low.MeanPerMech()
	for m := range sp.Mechs {
		fmt.Fprintf(&sb, "%-8s %10.4f %6d %10.4f %6d %10.4f %6d\n",
			sp.Mechs[m], ma[m], ra[m], mh[m], rh[m], ml[m], rl[m])
	}
	return Report{ID: "fig7", Title: Title("fig7"), Table: sb.String()}
}

// Table5 lists the quantitative comparisons present in the original
// articles (static information from the paper).
func Table5(r *Runner) Report {
	rows := []string{
		"DBCP   vs Markov",
		"TK     vs DBCP",
		"TCP    vs DBCP",
		"TKVC   vs VC",
		"CDP    vs SP   (and CDPSP vs SP)",
		"GHB    vs SP",
	}
	return Report{ID: "table5", Title: Title("table5"),
		Table: strings.Join(rows, "\n") + "\n"}
}

// Table6 reproduces the benchmark-selection winner analysis: for
// every N from 1 to 26, which mechanisms can win some N-benchmark
// selection. The paper observes more than one possible winner for
// every N up to 23.
func Table6(r *Runner) Report {
	g, _ := r.MainGrid()
	sp := g.Speedups("Base")
	table := sp.WinnerSubsets()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%3s", "N")
	for _, m := range sp.Mechs {
		fmt.Fprintf(&sb, " %6s", m)
	}
	sb.WriteByte('\n')
	for n := 1; n <= len(table); n++ {
		fmt.Fprintf(&sb, "%3d", n)
		for _, ok := range table[n-1] {
			mark := ""
			if ok {
				mark = "x"
			}
			fmt.Fprintf(&sb, " %6s", mark)
		}
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "more than one possible winner up to N=%d (paper: 23)\n", sp.MultipleWinnersUpTo())
	return Report{ID: "table6", Title: Title("table6"), Table: sb.String()}
}

// Table7 ranks the mechanisms over the full suite and over the
// benchmark selections used in the DBCP and GHB articles; the paper
// shows DBCP favoured by its own selection while GHB is not.
func Table7(r *Runner) Report {
	g, _ := r.MainGrid()
	sp := g.Speedups("Base")
	// Restrict the article selections to the benchmarks actually in
	// this run (reduced configurations still produce a table).
	avail := func(sel []string) []string {
		var out []string
		for _, b := range sel {
			if sp.BenchIndex(b) >= 0 {
				out = append(out, b)
			}
		}
		if len(out) == 0 {
			out = sp.Benchmarks
		}
		return out
	}
	full := sp.Rank()
	dbcp := sp.Subset(avail(workload.DBCPSelection())).Rank()
	ghb := sp.Subset(avail(workload.GHBSelection())).Rank()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s", "selection")
	for _, m := range sp.Mechs {
		fmt.Fprintf(&sb, " %6s", m)
	}
	sb.WriteByte('\n')
	row := func(label string, ranks []int) {
		fmt.Fprintf(&sb, "%-24s", label)
		for _, rk := range ranks {
			fmt.Fprintf(&sb, " %6d", rk)
		}
		sb.WriteByte('\n')
	}
	row("26 benchmarks", full)
	row("DBCP article selection", dbcp)
	row("GHB article selection", ghb)
	return Report{ID: "table7", Title: Title("table7"), Table: sb.String()}
}

// Table1 dumps the baseline configuration as built.
func Table1(r *Runner) Report {
	var sb strings.Builder
	sb.WriteString("Processor core: 128-RUU, 128-LSQ, 8-wide fetch/issue/commit\n")
	sb.WriteString("FUs: 8 IntALU, 3 IntMult/Div, 6 FPALU, 2 FPMult/Div, 4 Load/Store\n")
	sb.WriteString("L1D: 32KB direct-mapped, 32B lines, 4 ports, 8 MSHRs x4 reads, writeback, 1 cycle\n")
	sb.WriteString("L1I: 32KB 4-way, 1 cycle\n")
	sb.WriteString("L2:  1MB 4-way, 64B lines, 1 port, 8 MSHRs x4 reads, 12 cycles\n")
	sb.WriteString("L1/L2 bus: 32B @ core clock; FSB: 64B @ 400MHz\n")
	sb.WriteString("SDRAM: 4 banks x 8192 rows x 1024 cols; tRRD 20, tRAS 80, tRCD 30, CL 30, tRP 30, tRC 110 cpu cycles; 32-entry queue; refresh avoided\n")
	return Report{ID: "table1", Title: Title("table1"), Table: sb.String()}
}

// Table3 lists the registered mechanisms with their level, year and
// summary (Table 2) — parameters are the Table 3 defaults coded in
// each package.
func Table3(r *Runner) Report {
	var sb strings.Builder
	for _, d := range core.Descriptions() {
		fmt.Fprintf(&sb, "%-7s %-3s %4d  %s\n", d.Name, d.Level, d.Year, d.Summary)
	}
	return Report{ID: "table3", Title: Title("table3"), Table: sb.String()}
}

package experiments

import (
	"fmt"
	"os"
	"testing"

	"microlib/examples/campaign/figures"
	"microlib/internal/campaign"
)

// figureGoldens pins each shipped figure spec's plan at paper scale:
// the cell count, the scenario count, and the plan fingerprint (a
// hash over every cell's options fingerprint). A diff here means the
// shipped spec or the axis engine changed what a figure simulates —
// and that existing disk caches no longer cover the figure. Expected
// diffs (a new axis value, a deliberate spec change) are re-pinned
// with MICROLIB_GOLDEN_REGEN=1 go test -run TestShippedFigureSpecs.
var figureGoldens = map[string]struct {
	cells       int
	scenarios   int
	fingerprint string
}{
	"fig1.json":  {cells: 52, scenarios: 2, fingerprint: "85091777d0b54d35d22d6126b576e13f"},
	"fig10.json": {cells: 104, scenarios: 2, fingerprint: "fbcbfe79069ed5ff7bd0100563c6a604"},
	"fig11.json": {cells: 676, scenarios: 2, fingerprint: "76392a71024119374f45690a0283759f"},
	"fig2.json":  {cells: 104, scenarios: 1, fingerprint: "571c08bc73dee69e315ea8570ccb0a71"},
	"fig3.json":  {cells: 156, scenarios: 2, fingerprint: "6f9fa774965506180d020ab4ae0f8b95"},
	"fig8.json":  {cells: 1014, scenarios: 3, fingerprint: "fcbd7c8e119cfa7bb8e7b6f4329e06e0"},
	"fig9.json":  {cells: 676, scenarios: 2, fingerprint: "44f957826ceb2bfc3521abd6feb88069"},
	// geometry.json sweeps the registry "fields" axis (cpu.ruu+cpu.lsq
	// zipped); its golden also pins that field resolution stays
	// deterministic across the registry refactor.
	"geometry.json": {cells: 1352, scenarios: 4, fingerprint: "3e787090b480899149d525ecde46086b"},
	"main.json":     {cells: 338, scenarios: 1, fingerprint: "5efd8d1d24c709a37840ca21a20afc10"},
}

// TestShippedFigureSpecs plans every shipped spec exactly as shipped
// (paper-scale budgets, SimPoint offsets resolved at plan time — no
// simulation) and checks the plans against the pinned goldens.
func TestShippedFigureSpecs(t *testing.T) {
	files := figures.Files()
	if len(files) != len(figureGoldens) {
		t.Errorf("shipped specs: %v, goldens cover %d — pin the new spec", files, len(figureGoldens))
	}
	regen := os.Getenv("MICROLIB_GOLDEN_REGEN") != ""
	for _, f := range files {
		data, err := figures.FS.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		spec, err := campaign.ParseSpec(data)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		plan, err := campaign.NewPlan(spec)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if regen {
			fmt.Printf("\t%q:  {cells: %d, scenarios: %d, fingerprint: %q},\n",
				f, len(plan.Cells), len(plan.Scenarios()), plan.Fingerprint())
			continue
		}
		want, ok := figureGoldens[f]
		if !ok {
			t.Errorf("%s: no golden pinned", f)
			continue
		}
		if len(plan.Cells) != want.cells || len(plan.Scenarios()) != want.scenarios {
			t.Errorf("%s: %d cells / %d scenarios, want %d / %d",
				f, len(plan.Cells), len(plan.Scenarios()), want.cells, want.scenarios)
		}
		if got := plan.Fingerprint(); got != want.fingerprint {
			t.Errorf("%s: plan fingerprint %s, want %s (cells this figure simulates changed; existing caches no longer apply)",
				f, got, want.fingerprint)
		}
	}
}

// TestFigureSpecsRegistered checks every registered figure grid maps
// to a shipped file and vice versa — a spec in the directory that no
// experiment replays (or the reverse) is a drift bug.
func TestFigureSpecsRegistered(t *testing.T) {
	used := map[string]bool{}
	for id := range figureSpecs {
		file := FigureSpecFile(id)
		if file == "" {
			t.Errorf("%s: empty spec file", id)
		}
		used[file] = true
		if _, err := figures.FS.ReadFile(file); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
	for _, f := range figures.Files() {
		if !used[f] {
			t.Errorf("%s is shipped but no experiment replays it", f)
		}
	}
}

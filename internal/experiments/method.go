package experiments

import (
	"fmt"
	"strings"

	"microlib/internal/core"
	"microlib/internal/hier"
	"microlib/internal/runner"
)

func init() {
	register("fig8", "Effect of the memory model (const-70 vs SDRAM-170 vs SDRAM-70)", Fig8)
	register("fig9", "Effect of cache model accuracy (finite vs infinite MSHR)", Fig9)
	register("fig10", "Effect of second-guessing: TCP prefetch queue 1 vs 128", Fig10)
	register("fig11", "Effect of trace selection: SimPoint vs skip/simulate", Fig11)
}

// Fig8 compares mechanism speedups under the three memory models of
// Section 3.3. The paper reports average speedups shrinking by ~58%
// from the constant-latency model to the detailed SDRAM, with GHB
// losing 18.7% of its speedup and SP only 2.8%, and ranking flips
// such as DBCP vs VC/TKVC.
func Fig8(r *Runner) Report {
	sdram, _ := r.MainGrid()
	c70, _ := r.Grid("fig8-const", func(o *runner.Options) {
		o.Hier = o.Hier.WithMemory(hier.MemConst70)
	})
	s70, _ := r.Grid("fig8-sdram70", func(o *runner.Options) {
		o.Hier = o.Hier.WithMemory(hier.MemSDRAM70)
	})

	spS := sdram.Speedups("Base").MeanPerMech()
	spC := c70.Speedups("Base").MeanPerMech()
	sp7 := s70.Speedups("Base").MeanPerMech()

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %12s\n", "mech", "const-70", "sdram-170", "sdram-70", "gain-drop%")
	var dropSum float64
	var dropN int
	for m, name := range sdram.Mechs {
		drop := 0.0
		if gainC := spC[m] - 1; gainC > 0 {
			gainS := spS[m] - 1
			drop = (gainC - gainS) / gainC * 100
			dropSum += drop
			dropN++
		}
		fmt.Fprintf(&sb, "%-8s %10.4f %10.4f %10.4f %+12.1f\n", name, spC[m], spS[m], sp7[m], drop)
	}
	if dropN > 0 {
		fmt.Fprintf(&sb, "average speedup-gain reduction const->sdram: %.1f%% (paper: 57.9%%)\n", dropSum/float64(dropN))
	}
	return Report{ID: "fig8", Title: Title("fig8"), Table: sb.String()}
}

// Fig9 relaxes only the miss address file to the SimpleScalar
// infinite MSHR and compares against the finite Table 1 MSHRs
// (Section 3.3's cache-accuracy study; the paper finds it can flip
// TCP vs TK).
func Fig9(r *Runner) Report {
	finite, _ := r.MainGrid()
	infinite, _ := r.Grid("fig9-inf", func(o *runner.Options) {
		o.Hier = o.Hier.InfiniteMSHRMode()
	})
	spF := finite.Speedups("Base").MeanPerMech()
	spI := infinite.Speedups("Base").MeanPerMech()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %14s %14s\n", "mech", "finite-MSHR", "infinite-MSHR")
	for m, name := range finite.Mechs {
		fmt.Fprintf(&sb, "%-8s %14.4f %14.4f\n", name, spF[m], spI[m])
	}
	return Report{ID: "fig9", Title: Title("fig9"), Table: sb.String()}
}

// Fig10 reproduces the second-guessing study: the TCP article never
// stated how prefetch requests reach memory, and a 1-entry versus
// 128-entry request queue changes results per benchmark (the paper
// highlights crafty/eon barely moving while lucas, mgrid and art
// change dramatically).
func Fig10(r *Runner) Report {
	saved := r.Mechs
	r.Mechs = []string{"Base", "TCP"}
	q128, _ := r.Grid("fig10-q128", nil)
	q1, _ := r.Grid("fig10-q1", func(o *runner.Options) {
		if o.Mechanism == "TCP" {
			o.Params = core.Params{"queue": 1}
		}
	})
	r.Mechs = saved

	sp128 := q128.Speedups("Base")
	sp1 := q1.Speedups("Base")
	t128 := sp128.MechIndex("TCP")
	t1 := sp1.MechIndex("TCP")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %8s\n", "bench", "queue-128", "queue-1", "diff%")
	for i, b := range r.Benchmarks {
		v128 := sp128.Values[i][t128]
		v1 := sp1.Values[i][t1]
		d := 0.0
		if v1 > 0 {
			d = (v128 - v1) / v1 * 100
		}
		fmt.Fprintf(&sb, "%-10s %10.4f %10.4f %+8.2f\n", b, v128, v1, d)
	}
	fmt.Fprintf(&sb, "means: queue-128 %.4f, queue-1 %.4f\n",
		sp128.MeanPerMech()[t128], sp1.MeanPerMech()[t1])
	return Report{ID: "fig10", Title: Title("fig10"), Table: sb.String()}
}

// Fig11 compares SimPoint-selected traces against the traditional
// "skip N, simulate M" selection (Section 3.5). The paper finds most
// mechanisms look better on the arbitrary trace, with TP the notable
// exception, and concludes trace selection alone can change research
// decisions.
func Fig11(r *Runner) Report {
	simPt, _ := r.MainGrid() // SimPoint selection (default)
	arb, _ := r.Grid("fig11-arbitrary", func(o *runner.Options) {
		o.Skip = r.ValSkip // fixed arbitrary skip
	})
	spS := simPt.Speedups("Base").MeanPerMech()
	spA := arb.Speedups("Base").MeanPerMech()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %12s\n", "mech", "simpoint", "skip/simulate")
	for m, name := range simPt.Mechs {
		fmt.Fprintf(&sb, "%-8s %10.4f %12.4f\n", name, spS[m], spA[m])
	}
	return Report{ID: "fig11", Title: Title("fig11"), Table: sb.String()}
}

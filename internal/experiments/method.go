package experiments

import (
	"fmt"
	"strings"

	"microlib/internal/campaign"
	"microlib/internal/hier"
)

func init() {
	register("fig8", "Effect of the memory model (const-70 vs SDRAM-170 vs SDRAM-70)", Fig8)
	register("fig9", "Effect of cache model accuracy (finite vs infinite MSHR)", Fig9)
	register("fig10", "Effect of second-guessing: TCP prefetch queue 1 vs 128", Fig10)
	register("fig11", "Effect of trace selection: SimPoint vs skip/simulate", Fig11)
}

// Fig8 compares mechanism speedups under the three memory models of
// Section 3.3 (shipped spec: fig8.json, memories axis). The paper
// reports average speedups shrinking by ~58% from the
// constant-latency model to the detailed SDRAM, with GHB losing
// 18.7% of its speedup and SP only 2.8%, and ranking flips such as
// DBCP vs VC/TKVC.
func Fig8(r *Runner) Report {
	sum := r.Campaign("fig8")
	spS := scenario(sum, campaign.AxisMemory, campaign.MemNameSDRAM).Speedup
	spC := scenario(sum, campaign.AxisMemory, campaign.MemNameConst70).Speedup
	sp7 := scenario(sum, campaign.AxisMemory, campaign.MemNameSDRAM70).Speedup

	mS := spS.MeanPerMech()
	mC := spC.MeanPerMech()
	m7 := sp7.MeanPerMech()

	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %10s %10s %12s\n", "mech", "const-70", "sdram-170", "sdram-70", "gain-drop%")
	var dropSum float64
	var dropN int
	for m, name := range spS.Mechs {
		drop := 0.0
		if gainC := mC[m] - 1; gainC > 0 {
			gainS := mS[m] - 1
			drop = (gainC - gainS) / gainC * 100
			dropSum += drop
			dropN++
		}
		fmt.Fprintf(&sb, "%-8s %10.4f %10.4f %10.4f %+12.1f\n", name, mC[m], mS[m], m7[m], drop)
	}
	if dropN > 0 {
		fmt.Fprintf(&sb, "average speedup-gain reduction const->sdram: %.1f%% (paper: 57.9%%)\n", dropSum/float64(dropN))
	}
	return Report{ID: "fig8", Title: Title("fig8"), Table: sb.String()}
}

// Fig9 relaxes only the miss address file to the SimpleScalar
// infinite MSHR and compares against the finite Table 1 MSHRs
// (shipped spec: fig9.json, hiers axis; Section 3.3's cache-accuracy
// study — the paper finds it can flip TCP vs TK).
func Fig9(r *Runner) Report {
	sum := r.Campaign("fig9")
	spF := scenario(sum, campaign.AxisHier, hier.VariantDefault).Speedup.MeanPerMech()
	inf := scenario(sum, campaign.AxisHier, hier.VariantInfiniteMSHR).Speedup
	spI := inf.MeanPerMech()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %14s %14s\n", "mech", "finite-MSHR", "infinite-MSHR")
	for m, name := range inf.Mechs {
		fmt.Fprintf(&sb, "%-8s %14.4f %14.4f\n", name, spF[m], spI[m])
	}
	return Report{ID: "fig9", Title: Title("fig9"), Table: sb.String()}
}

// Fig10 reproduces the second-guessing study (shipped spec:
// fig10.json, paramsets axis): the TCP article never stated how
// prefetch requests reach memory, and a 1-entry versus 128-entry
// request queue changes results per benchmark (the paper highlights
// crafty/eon barely moving while lucas, mgrid and art change
// dramatically).
func Fig10(r *Runner) Report {
	sum := r.Campaign("fig10")
	sp128 := scenario(sum, campaign.AxisParams, "q128").Speedup
	sp1 := scenario(sum, campaign.AxisParams, "q1").Speedup

	t128 := sp128.MechIndex("TCP")
	t1 := sp1.MechIndex("TCP")
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %10s %8s\n", "bench", "queue-128", "queue-1", "diff%")
	for i, b := range sp128.Benchmarks {
		v128 := sp128.Values[i][t128]
		v1 := sp1.Values[i][t1]
		d := 0.0
		if v1 > 0 {
			d = (v128 - v1) / v1 * 100
		}
		fmt.Fprintf(&sb, "%-10s %10.4f %10.4f %+8.2f\n", b, v128, v1, d)
	}
	fmt.Fprintf(&sb, "means: queue-128 %.4f, queue-1 %.4f\n",
		sp128.MeanPerMech()[t128], sp1.MeanPerMech()[t1])
	return Report{ID: "fig10", Title: Title("fig10"), Table: sb.String()}
}

// Fig11 compares SimPoint-selected traces against the traditional
// "skip N, simulate M" selection (shipped spec: fig11.json,
// selections axis; Section 3.5). The paper finds most mechanisms
// look better on the arbitrary trace, with TP the notable exception,
// and concludes trace selection alone can change research decisions.
func Fig11(r *Runner) Report {
	sum := r.Campaign("fig11")
	// The spec sweeps exactly two selection policies: the SimPoint
	// one first, the arbitrary skip second (with UseSimPoint off the
	// first degrades to "skip:0" but stays first).
	sels := sum.Spec.Selections
	simPt := scenario(sum, campaign.AxisSelect, sels[0]).Speedup
	arb := scenario(sum, campaign.AxisSelect, sels[1]).Speedup
	spS := simPt.MeanPerMech()
	spA := arb.MeanPerMech()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %10s %12s\n", "mech", "simpoint", "skip/simulate")
	for m, name := range simPt.Mechs {
		fmt.Fprintf(&sb, "%-8s %10.4f %12.4f\n", name, spS[m], spA[m])
	}
	return Report{ID: "fig11", Title: Title("fig11"), Table: sb.String()}
}

// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 2.2 and 3): the validation studies
// (Figures 1-3), the main quantitative comparison (Figures 4-7,
// Tables 5-7) and the methodology studies (Figures 8-11). Each
// experiment returns a Report with a pre-formatted text table; the
// mlrank CLI and the root bench harness print them.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"microlib/internal/campaign"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/runner"
	"microlib/internal/simpoint"
	"microlib/internal/stats"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// PaperMechs is the mechanism column order of the paper's Tables 6
// and 7 (chronological, baseline first).
var PaperMechs = []string{
	"Base", "TP", "VC", "SP", "Markov", "FVC", "DBCP",
	"TKVC", "TK", "CDP", "CDPSP", "TCP", "GHB",
}

// Runner carries the shared experiment configuration. The zero value
// is not usable; construct with Default.
type Runner struct {
	// Insts is the measured instruction budget per simulation and
	// Warmup the pre-measurement budget (scaled stand-ins for the
	// paper's 500M SimPoint traces).
	Insts  uint64
	Warmup uint64
	// ValInsts/ValSkip configure the validation setup of Section 2.2
	// ("2-billion instruction traces, skipping the first billion",
	// scaled).
	ValInsts uint64
	ValSkip  uint64
	Seed     uint64
	Parallel int
	// UseSimPoint enables SimPoint trace selection for the main
	// experiments (the paper's default).
	UseSimPoint bool

	Benchmarks []string
	Mechs      []string

	mu    sync.Mutex
	grids map[string]*gridResult
}

type cellKey struct{ bench, mech string }

type gridResult struct {
	grid *stats.Grid
	res  map[cellKey]runner.Result
}

// Default returns the standard experiment configuration.
func Default() *Runner {
	return &Runner{
		Insts:       150_000,
		Warmup:      50_000,
		ValInsts:    200_000,
		ValSkip:     100_000,
		Seed:        42,
		Parallel:    runtime.GOMAXPROCS(0),
		UseSimPoint: true,
		Benchmarks:  workload.Names(),
		Mechs:       append([]string(nil), PaperMechs...),
		grids:       map[string]*gridResult{},
	}
}

// Scale divides the instruction budgets by f (for quick bench runs).
func (r *Runner) Scale(f uint64) *Runner {
	if f > 1 {
		r.Insts /= f
		r.Warmup /= f
		r.ValInsts /= f
		r.ValSkip /= f
	}
	return r
}

// Variant mutates the per-run options of a grid.
type Variant func(*runner.Options)

// simPointSkip computes the SimPoint offset for a benchmark.
func (r *Runner) simPointSkip(bench string) uint64 {
	gen, err := workload.New(bench, r.Seed)
	if err != nil {
		return 0
	}
	cfg := simpoint.DefaultConfig()
	cfg.IntervalLen = (r.Warmup + r.Insts) / 8
	if cfg.IntervalLen == 0 {
		cfg.IntervalLen = 1
	}
	cfg.Intervals = 12
	var s trace.Stream = gen
	return simpoint.Analyze(s, cfg).SkipInsts
}

// Grid runs (or returns the memoized) benchmark × mechanism IPC grid
// for a named configuration. Execution goes through the campaign
// scheduler, so the paper-replay experiments and spec-driven
// campaigns share one worker-pool engine.
func (r *Runner) Grid(name string, variant Variant) (*stats.Grid, map[cellKey]runner.Result) {
	r.mu.Lock()
	if g, ok := r.grids[name]; ok {
		r.mu.Unlock()
		return g.grid, g.res
	}
	r.mu.Unlock()

	grid := stats.NewGrid(r.Benchmarks, r.Mechs)
	results := make(map[cellKey]runner.Result, len(r.Benchmarks)*len(r.Mechs))

	// SimPoint offsets are per benchmark, shared across mechanisms.
	spSkip := map[string]uint64{}
	if r.UseSimPoint {
		for _, b := range r.Benchmarks {
			spSkip[b] = r.simPointSkip(b)
		}
	}

	cells := make([]campaign.Cell, 0, len(r.Benchmarks)*len(r.Mechs))
	for _, b := range r.Benchmarks {
		for _, m := range r.Mechs {
			opts := runner.Options{
				Bench:     b,
				Mechanism: m,
				Hier:      hier.DefaultConfig(),
				CPU:       cpu.DefaultConfig(),
				Insts:     r.Insts,
				Warmup:    r.Warmup,
				Seed:      r.Seed,
				Skip:      spSkip[b],
			}
			if variant != nil {
				variant(&opts)
			}
			cells = append(cells, campaign.Cell{
				Index: len(cells),
				Bench: b,
				Mech:  m,
				Insts: opts.Insts,
				Seed:  opts.Seed,
				Opts:  opts,
				Key:   campaign.KeyOf(opts),
			})
		}
	}

	sched := campaign.Scheduler{
		Workers: r.Parallel,
		// OnResult runs serially under the scheduler lock; the full
		// runner.Result carries the hardware tables and live
		// mechanism state the cost/power experiments inspect.
		OnResult: func(c campaign.Cell, res runner.Result) {
			grid.Set(c.Bench, c.Mech, res.IPC)
			results[cellKey{c.Bench, c.Mech}] = res
		},
	}
	cellResults, _, err := sched.Run(context.Background(), cells)
	if err != nil {
		panic(err)
	}
	for _, c := range cells {
		if res, ok := cellResults[c.Key]; ok && res.Err != "" {
			panic(fmt.Errorf("%s/%s: %s", c.Bench, c.Mech, res.Err)) // configuration error: fail loudly
		}
	}

	r.mu.Lock()
	r.grids[name] = &gridResult{grid: grid, res: results}
	r.mu.Unlock()
	return grid, results
}

// MainGrid is the paper's primary configuration: Table 1 hierarchy,
// detailed SDRAM, SimPoint-selected traces.
func (r *Runner) MainGrid() (*stats.Grid, map[cellKey]runner.Result) {
	return r.Grid("main", nil)
}

// Report is one regenerated artifact.
type Report struct {
	ID    string
	Title string
	Table string
}

func (rep Report) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", rep.ID, rep.Title, rep.Table)
}

// Registry of experiment builders by id.
var registry = map[string]struct {
	title string
	fn    func(*Runner) Report
}{}

func register(id, title string, fn func(*Runner) Report) {
	registry[id] = struct {
		title string
		fn    func(*Runner) Report
	}{title, fn}
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(r *Runner, id string) (Report, error) {
	e, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return e.fn(r), nil
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Package experiments regenerates every table and figure of the
// paper's evaluation (Sections 2.2 and 3): the validation studies
// (Figures 1-3), the main quantitative comparison (Figures 4-7,
// Tables 5-7) and the methodology studies (Figures 8-11). Each
// experiment is a thin report formatter over a shipped campaign spec
// (examples/campaign/figures): the spec is rescaled to the runner's
// budgets, expanded by the campaign axis engine, executed on the
// campaign scheduler through a shared cell cache, and the formatter
// renders the aggregated scenarios into the paper's table shape. The
// mlrank CLI and the root bench harness print the reports.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"microlib/examples/campaign/figures"
	"microlib/internal/campaign"
	"microlib/internal/stats"
	"microlib/internal/workload"
)

// PaperMechs is the mechanism column order of the paper's Tables 6
// and 7 (chronological, baseline first).
var PaperMechs = []string{
	"Base", "TP", "VC", "SP", "Markov", "FVC", "DBCP",
	"TKVC", "TK", "CDP", "CDPSP", "TCP", "GHB",
}

// Runner carries the shared experiment configuration. The zero value
// is not usable; construct with Default.
type Runner struct {
	// Insts is the measured instruction budget per simulation and
	// Warmup the pre-measurement budget (scaled stand-ins for the
	// paper's 500M SimPoint traces).
	Insts  uint64
	Warmup uint64
	// ValInsts/ValSkip configure the validation setup of Section 2.2
	// ("2-billion instruction traces, skipping the first billion",
	// scaled).
	ValInsts uint64
	ValSkip  uint64
	Seed     uint64
	Parallel int
	// UseSimPoint enables SimPoint trace selection for the main
	// experiments (the paper's default).
	UseSimPoint bool
	// CacheDir, when non-empty, persists finished cells on disk so
	// repeated runs — and spec-driven mlcampaign runs over the same
	// cells — are incremental.
	CacheDir string
	// SetFields pins config-field registry paths (mlrank -set) on
	// every figure spec: the whole paper replay runs on the modified
	// machine. Fingerprints change with the configuration, so cached
	// cells of the Table 1 machine are never served for it.
	SetFields map[string]string

	Benchmarks []string
	Mechs      []string

	mu   sync.Mutex
	mem  *campaign.MemCache
	runs map[string]*figureRun
}

// figureRun memoizes one executed figure campaign.
type figureRun struct {
	sum *campaign.Summary
	res map[cellKey]campaign.CellResult
}

type cellKey struct{ bench, mech string }

// Default returns the standard experiment configuration.
func Default() *Runner {
	return &Runner{
		Insts:       150_000,
		Warmup:      50_000,
		ValInsts:    200_000,
		ValSkip:     100_000,
		Seed:        42,
		Parallel:    runtime.GOMAXPROCS(0),
		UseSimPoint: true,
		Benchmarks:  workload.Names(),
		Mechs:       append([]string(nil), PaperMechs...),
		mem:         campaign.NewMemCache(),
		runs:        map[string]*figureRun{},
	}
}

// Scale divides the instruction budgets by f (for quick bench runs).
func (r *Runner) Scale(f uint64) *Runner {
	if f > 1 {
		r.Insts /= f
		r.Warmup /= f
		r.ValInsts /= f
		r.ValSkip /= f
	}
	return r
}

// figureSpecs maps each experiment grid to its shipped campaign spec
// in examples/campaign/figures. pinMechs keeps the spec's own
// mechanism subset (the figure compares those specific mechanisms);
// valInsts/valSkip rescale against the Section 2.2 validation
// budgets instead of the main ones.
var figureSpecs = map[string]struct {
	file     string
	pinMechs bool
	valInsts bool
	valSkip  bool
}{
	"main":  {file: "main.json"},
	"fig1":  {file: "fig1.json", pinMechs: true},
	"fig2":  {file: "fig2.json", pinMechs: true, valInsts: true, valSkip: true},
	"fig3":  {file: "fig3.json", pinMechs: true, valInsts: true, valSkip: true},
	"fig8":  {file: "fig8.json"},
	"fig9":  {file: "fig9.json"},
	"fig10": {file: "fig10.json", pinMechs: true},
	"fig11": {file: "fig11.json", valSkip: true},
	// Beyond the paper: the CPU-geometry study over the config-field
	// registry's "fields" axis.
	"geometry": {file: "geometry.json"},
}

// FigureSpecFile returns the shipped spec filename behind a figure
// grid id ("" when the id has no spec — the static tables).
func FigureSpecFile(id string) string { return figureSpecs[id].file }

// CheckSetFields validates SetFields against the spec-backed grids
// of the experiments about to run, without simulating anything:
// `mlrank -exp all -set …` must fail on a pin/sweep conflict (the
// geometry spec sweeps cpu.ruu) before the first cell runs, not
// hours in when the loop reaches the conflicting experiment — while
// `-exp fig8 -set cpu.ruu=32` stays usable, since only fig8's grid
// matters for it. Ids without a direct spec (the table formatters)
// are skipped; their grids fail fast at plan time anyway, before any
// simulation.
func (r *Runner) CheckSetFields(ids ...string) error {
	if len(r.SetFields) == 0 {
		return nil
	}
	for _, id := range ids {
		if figureSpecs[id].file == "" {
			continue
		}
		spec := r.figureSpec(id)
		if err := spec.Normalize(); err != nil {
			return fmt.Errorf("experiments: %s: %w", id, err)
		}
	}
	return nil
}

// figureSpec loads a shipped figure spec and rescales it to the
// runner's configuration: the benchmark list, seed and budgets come
// from the runner, the swept axes stay exactly as shipped. With
// UseSimPoint off, "simpoint" selections degrade to a zero skip.
func (r *Runner) figureSpec(id string) campaign.Spec {
	fd, ok := figureSpecs[id]
	if !ok {
		panic(fmt.Errorf("experiments: no figure spec for %q", id))
	}
	data, err := figures.FS.ReadFile(fd.file)
	if err != nil {
		panic(fmt.Errorf("experiments: %s: %w", fd.file, err))
	}
	spec, err := campaign.ParseSpec(data)
	if err != nil {
		panic(err)
	}
	spec.Benchmarks = append([]string(nil), r.Benchmarks...)
	if !fd.pinMechs {
		spec.Mechanisms = append([]string(nil), r.Mechs...)
	}
	spec.Seeds = []uint64{r.Seed}
	insts := r.Insts
	if fd.valInsts {
		insts = r.ValInsts
	}
	spec.Insts = []uint64{insts}
	spec.Warmup = nil
	spec.Warmups = []uint64{r.Warmup}
	if fd.valSkip {
		spec.Skip = r.ValSkip
	}
	if !r.UseSimPoint {
		for i, sel := range spec.Selections {
			if sel == campaign.SelSimPoint {
				spec.Selections[i] = campaign.SelSkip + ":0"
			}
		}
	}
	//ml:commutative -- keyed copy into spec.Set; lazy init is the only non-write statement
	for path, v := range r.SetFields {
		if spec.Set == nil {
			spec.Set = map[string]campaign.FieldValue{}
		}
		spec.Set[path] = campaign.FieldValue(v)
	}
	return spec
}

// cellCache returns the cache every figure campaign runs through:
// the runner's shared in-memory cache, layered over the disk cache
// when CacheDir is set. Figures overlap heavily (fig8's SDRAM arm is
// the main grid), so shared cells simulate once per process — or
// once ever, with a disk cache.
func (r *Runner) cellCache() campaign.CellCache {
	r.mu.Lock()
	if r.mem == nil {
		r.mem = campaign.NewMemCache()
	}
	mem := r.mem
	r.mu.Unlock()
	if r.CacheDir == "" {
		return mem
	}
	disk, err := campaign.OpenDiskCache(r.CacheDir)
	if err != nil {
		panic(err) // configuration error: fail loudly
	}
	return &campaign.LayeredCache{Layers: []campaign.CellCache{mem, disk}}
}

// Campaign runs (or returns the memoized run of) the shipped figure
// spec behind a grid id, rescaled to the runner's configuration.
// Execution always goes through the campaign scheduler and the cell
// cache; a failed cell panics, as a misconfigured paper replay is a
// programming error, not data.
func (r *Runner) Campaign(id string) *campaign.Summary {
	run := r.campaign(id)
	return run.sum
}

func (r *Runner) campaign(id string) *figureRun {
	r.mu.Lock()
	if r.runs == nil {
		r.runs = map[string]*figureRun{}
	}
	if run, ok := r.runs[id]; ok {
		r.mu.Unlock()
		return run
	}
	r.mu.Unlock()

	plan, err := campaign.NewPlan(r.figureSpec(id))
	if err != nil {
		panic(err)
	}
	sched := campaign.Scheduler{Workers: r.Parallel, Cache: r.cellCache()}
	results, sstats, err := sched.Run(context.Background(), plan.Cells)
	if err != nil {
		panic(err)
	}
	res := make(map[cellKey]campaign.CellResult, len(plan.Cells))
	for _, c := range plan.Cells {
		cr, ok := results[c.Key]
		if !ok {
			panic(fmt.Errorf("experiments: %s: cell %s/%s missing", id, c.Bench(), c.Mech()))
		}
		if cr.Err != "" {
			panic(fmt.Errorf("%s/%s: %s", c.Bench(), c.Mech(), cr.Err)) // configuration error: fail loudly
		}
		// Single-scenario figures index results by (bench, mech); for
		// multi-scenario figures the map holds the last scenario's
		// cell, and formatters use the Summary grids instead.
		res[cellKey{c.Bench(), c.Mech()}] = cr
	}
	run := &figureRun{sum: campaign.Aggregate(plan, results, sstats), res: res}

	r.mu.Lock()
	r.runs[id] = run
	r.mu.Unlock()
	return run
}

// scenario picks one arm of a figure campaign by its coordinate on
// the axis the spec sweeps, panicking when absent (the shipped specs
// pin these axes).
func scenario(sum *campaign.Summary, axis, value string) *campaign.Scenario {
	sc := sum.Find(axis, value)
	if sc == nil {
		panic(fmt.Errorf("experiments: campaign %q has no scenario %s=%s", sum.Name, axis, value))
	}
	return sc
}

// MainGrid is the paper's primary configuration: Table 1 hierarchy,
// detailed SDRAM, SimPoint-selected traces. It returns the
// benchmark × mechanism mean-IPC grid and the per-cell results.
func (r *Runner) MainGrid() (*stats.Grid, map[cellKey]campaign.CellResult) {
	run := r.campaign("main")
	return run.sum.Scenarios[0].Mean, run.res
}

// Report is one regenerated artifact.
type Report struct {
	ID    string
	Title string
	Table string
}

func (rep Report) String() string {
	return fmt.Sprintf("== %s: %s ==\n%s", rep.ID, rep.Title, rep.Table)
}

// Registry of experiment builders by id.
var registry = map[string]struct {
	title string
	fn    func(*Runner) Report
}{}

func register(id, title string, fn func(*Runner) Report) {
	registry[id] = struct {
		title string
		fn    func(*Runner) Report
	}{title, fn}
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id. Configuration panics from the
// figure drivers (a bad Runner.SetFields path, a failed cell) are
// returned as errors: user input reaches the drivers through mlrank
// -set, and a typo must be a clean CLI error, not a stack trace.
// Genuine runtime errors still panic.
func Run(r *Runner, id string) (rep Report, err error) {
	e, ok := registry[id]
	if !ok {
		return Report{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		perr, isErr := p.(error)
		if !isErr {
			panic(p)
		}
		if _, isRuntime := perr.(runtime.Error); isRuntime {
			panic(p)
		}
		err = perr
	}()
	return e.fn(r), nil
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

package fault

import (
	"errors"
	"strings"
	"testing"
)

// The injector's one contract that everything else leans on: a
// decision depends only on (seed, point, key, occurrence), never on
// call interleaving — so a chaos run replays bit-identically.
func TestFireDeterministic(t *testing.T) {
	keys := []string{"a", "b", "c", "d"}
	schedule := func(seed uint64) []bool {
		in := New(seed).Enable(CachePutError, 0.5)
		var out []bool
		for round := 0; round < 20; round++ {
			for _, k := range keys {
				out = append(out, in.Fire(CachePutError, k))
			}
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced an identical 80-decision schedule")
	}
}

func TestFireRates(t *testing.T) {
	in := New(1).Enable(CellPanic, 1).Enable(CellSlow, 0)
	for i := 0; i < 50; i++ {
		if !in.Fire(CellPanic, "k") {
			t.Fatal("rate 1 must always fire")
		}
		if in.Fire(CellSlow, "k") {
			t.Fatal("rate 0 must never fire")
		}
		if in.Fire(JournalWrite, "k") {
			t.Fatal("unarmed point must never fire")
		}
	}
	if in.Fired(CellPanic) != 50 || in.Fired(CellSlow) != 0 {
		t.Fatalf("fired counts: %d, %d", in.Fired(CellPanic), in.Fired(CellSlow))
	}
	mid := New(1).Enable(CachePutError, 0.5)
	n := 0
	for i := 0; i < 1000; i++ {
		if mid.Fire(CachePutError, "k") {
			n++
		}
	}
	if n < 350 || n > 650 {
		t.Fatalf("rate 0.5 fired %d/1000 — hash badly skewed", n)
	}
}

func TestEnableKeysAndLimit(t *testing.T) {
	in := New(3).EnableKeys(CellPanic, 1, "victim").Limit(CellPanic, 2)
	if in.Fire(CellPanic, "bystander") {
		t.Fatal("key-scoped point fired for an unlisted key")
	}
	fires := 0
	for i := 0; i < 10; i++ {
		if in.Fire(CellPanic, "victim") {
			fires++
		}
	}
	if fires != 2 {
		t.Fatalf("limit 2 allowed %d fires", fires)
	}
	if in.TotalFired() != 2 {
		t.Fatalf("TotalFired: %d", in.TotalFired())
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Fire(CellPanic, "k") || in.FireErr(CachePutError, "k") != nil {
		t.Fatal("nil injector must never fire")
	}
	if in.Fired(CellPanic) != 0 || in.TotalFired() != 0 {
		t.Fatal("nil injector must count nothing")
	}
}

func TestFireErrTyped(t *testing.T) {
	in := New(1).Enable(CacheGetError, 1)
	err := in.FireErr(CacheGetError, "cell-key")
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("FireErr must return *Error, got %T", err)
	}
	if fe.Point != CacheGetError || fe.Key != "cell-key" {
		t.Fatalf("error payload: %+v", fe)
	}
	if !strings.Contains(err.Error(), string(CacheGetError)) {
		t.Fatalf("message must name the point: %v", err)
	}
}

func TestParse(t *testing.T) {
	in, err := Parse("cell.panic=1@1, cache.put.error=0.25", 9)
	if err != nil {
		t.Fatal(err)
	}
	if !in.Fire(CellPanic, "x") || in.Fire(CellPanic, "x") {
		t.Fatal("parsed cell.panic=1@1 must fire exactly once")
	}
	if _, err := Parse("nosuch.point=1", 0); err == nil || !strings.Contains(err.Error(), "unknown point") {
		t.Fatalf("unknown point must be rejected, got %v", err)
	}
	if _, err := Parse("cell.panic=2", 0); err == nil || !strings.Contains(err.Error(), "[0,1]") {
		t.Fatalf("out-of-range rate must be rejected, got %v", err)
	}
	if _, err := Parse("cell.panic", 0); err == nil {
		t.Fatal("entry without '=' must be rejected")
	}
	if _, err := Parse("cell.panic=1@0", 0); err == nil {
		t.Fatal("zero limit must be rejected")
	}
	if in, err := Parse("", 0); err != nil || in.Fire(CellPanic, "x") {
		t.Fatalf("empty spec must parse to an inert injector (%v)", err)
	}
}

// Package fault provides named, deterministic fault-injection points
// for the campaign engine's chaos tests. Production code carries a
// nil *Injector and pays one nil check per point; tests (and the
// mlcampaign -faults flag) arm an Injector with per-point firing
// rates, and every decision is a pure function of (seed, point, key,
// occurrence number) — the same schedule replays identically
// regardless of worker interleaving.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Point names one injection site wired into the campaign engine.
type Point string

// The wired injection points. Each names the component and the
// failure it simulates.
const (
	// CacheGetError makes DiskCache.Get fail its read (an I/O error,
	// degraded and counted, then treated as a miss).
	CacheGetError Point = "cache.get.error"
	// CacheGetCorrupt truncates the bytes DiskCache.Get read, so the
	// entry decodes as corrupt and is quarantined.
	CacheGetCorrupt Point = "cache.get.corrupt"
	// CachePutError makes DiskCache.Put fail (a full or read-only
	// cache directory).
	CachePutError Point = "cache.put.error"
	// JournalWrite makes the campaign journal writer fail stickily
	// (its disk filled mid-run).
	JournalWrite Point = "journal.write.error"
	// CellPanic panics inside a scheduler worker mid-cell (a model
	// bug, the no-commit-progress watchdog).
	CellPanic Point = "cell.panic"
	// CellSlow stalls a cell for the injector's SlowFor before it
	// simulates (a pathological config region), so per-cell deadlines
	// have something to cut off.
	CellSlow Point = "cell.slow"
)

// Points returns every wired injection point, sorted.
func Points() []Point {
	return []Point{
		CacheGetCorrupt, CacheGetError, CachePutError,
		CellPanic, CellSlow, JournalWrite,
	}
}

type rule struct {
	rate  float64         // firing probability per occurrence, in [0,1]
	keys  map[string]bool // when non-nil, only these keys are eligible
	limit uint64          // when >0, stop after this many fires
}

// Injector is a deterministic fault schedule. The zero value and the
// nil pointer never fire, so production paths can call Fire
// unconditionally.
type Injector struct {
	// SlowFor is how long a fired CellSlow point stalls its cell.
	SlowFor time.Duration

	mu    sync.Mutex
	seed  uint64
	rules map[Point]*rule
	occ   map[string]uint64 // occurrences per point|key
	fired map[Point]uint64
}

// New returns an empty injector; arm points with Enable/EnableKeys.
// The seed keys every firing decision, so two injectors with the same
// seed and rules fire identically.
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		rules: map[Point]*rule{},
		occ:   map[string]uint64{},
		fired: map[Point]uint64{},
	}
}

// Enable arms a point with a firing probability per occurrence.
// Returns the injector for chaining.
func (in *Injector) Enable(p Point, rate float64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rule(p)
	r.rate = rate
	return in
}

// EnableKeys arms a point that fires (with the given rate) only for
// the listed keys — "panic exactly this cell".
func (in *Injector) EnableKeys(p Point, rate float64, keys ...string) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rule(p)
	r.rate = rate
	r.keys = make(map[string]bool, len(keys))
	for _, k := range keys {
		r.keys[k] = true
	}
	return in
}

// Limit caps how many times a point fires in total; 0 means no cap.
func (in *Injector) Limit(p Point, n uint64) *Injector {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rule(p).limit = n
	return in
}

func (in *Injector) rule(p Point) *rule {
	r := in.rules[p]
	if r == nil {
		r = &rule{}
		in.rules[p] = r
	}
	return r
}

// Fire reports whether the point fires for this occurrence of key.
// Safe on a nil injector (never fires).
func (in *Injector) Fire(p Point, key string) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r := in.rules[p]
	if r == nil || r.rate <= 0 {
		return false
	}
	if r.keys != nil && !r.keys[key] {
		return false
	}
	ok := string(p) + "\x00" + key
	n := in.occ[ok]
	in.occ[ok] = n + 1
	if r.limit > 0 && in.fired[p] >= r.limit {
		return false
	}
	// The decision hashes (seed, point, key, occurrence), so it does
	// not depend on which worker asked first.
	h := splitmix(in.seed ^ strhash(ok) ^ (n * 0x9e3779b97f4a7c15))
	if float64(h>>11)/float64(1<<53) >= r.rate {
		return false
	}
	in.fired[p]++
	return true
}

// FireErr is Fire returning a typed *Error when the point fires, nil
// otherwise — for points that inject an error value.
func (in *Injector) FireErr(p Point, key string) error {
	if !in.Fire(p, key) {
		return nil
	}
	return &Error{Point: p, Key: key}
}

// Fired returns how many times a point has fired so far. Safe on nil.
func (in *Injector) Fired(p Point) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired[p]
}

// TotalFired sums fires across all points. Safe on nil.
func (in *Injector) TotalFired() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for _, c := range in.fired {
		n += c
	}
	return n
}

// Error marks an injected fault; errors.As lets consumers tell chaos
// from genuine infrastructure failure.
type Error struct {
	Point Point
	Key   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("fault: injected %s (key %s)", e.Point, e.Key)
}

// Parse builds an injector from a compact schedule string, the form
// the mlcampaign -faults flag takes: comma-separated point=rate or
// point=rate@limit entries, e.g. "cell.panic=1@1,cache.put.error=0.5".
func Parse(spec string, seed uint64) (*Injector, error) {
	valid := map[Point]bool{}
	for _, p := range Points() {
		valid[p] = true
	}
	in := New(seed)
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, val, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not point=rate", entry)
		}
		p := Point(strings.TrimSpace(name))
		if !valid[p] {
			return nil, fmt.Errorf("fault: unknown point %q (have %s)", name, joinPoints())
		}
		rateStr, limitStr, hasLimit := strings.Cut(val, "@")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate < 0 || rate > 1 {
			return nil, fmt.Errorf("fault: %s: rate %q must be in [0,1]", p, rateStr)
		}
		in.Enable(p, rate)
		if hasLimit {
			n, err := strconv.ParseUint(limitStr, 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: %s: limit %q must be a positive integer", p, limitStr)
			}
			in.Limit(p, n)
		}
	}
	return in, nil
}

func joinPoints() string {
	ps := Points()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = string(p)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// splitmix is splitmix64, the standard seed mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// strhash is FNV-1a, inlined to keep the package dependency-free.
func strhash(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

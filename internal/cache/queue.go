package cache

// SetPrefetchQueueCap resizes the mechanism prefetch request queue.
// Mechanisms call this at attach time with their Table 3 value (e.g.
// 16 for tagged prefetching, 1 for stride prefetching, 128 for TCP).
// When several mechanisms share a cache (CDP+SP), the largest
// request wins.
func (c *Cache) SetPrefetchQueueCap(n int) {
	if n > c.cfg.PrefetchQueueCap {
		c.cfg.PrefetchQueueCap = n
	}
}

// ForcePrefetchQueueCap sets the queue size exactly, for experiments
// that deliberately shrink it (Figure 10's 1-entry TCP buffer).
func (c *Cache) ForcePrefetchQueueCap(n int) {
	c.cfg.PrefetchQueueCap = n
	if over := c.pqLen() - n; over > 0 {
		c.stats.PrefetchDropped += uint64(over)
		for i := len(c.pq) - over; i < len(c.pq); i++ {
			c.pq[i] = prefetchReq{}
		}
		c.pq = c.pq[:len(c.pq)-over]
	}
}

// SetPrefetchAsDemand makes downstream levels treat this cache's
// prefetches like demand requests — the design-choice ablation for
// the demand-priority rule.
func (c *Cache) SetPrefetchAsDemand(v bool) { c.prefetchAsDemand = v }

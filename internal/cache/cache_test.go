package cache

import (
	"testing"
	"testing/quick"

	"microlib/internal/sim"
)

// testBackend records fetch/writeback traffic and completes fetches
// after a fixed delay. refuse makes the next n Fetch calls fail.
type testBackend struct {
	eng     *sim.Engine
	delay   uint64
	fetches []uint64
	wbacks  []uint64
	refuse  int
}

func (b *testBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink FillSink) bool {
	if b.refuse > 0 {
		b.refuse--
		return false
	}
	b.fetches = append(b.fetches, lineAddr)
	b.eng.After(b.delay, func() { sink.FillLine(lineAddr, b.eng.Now()) })
	return true
}

func (b *testBackend) WriteBack(lineAddr uint64) bool {
	b.wbacks = append(b.wbacks, lineAddr)
	return true
}

func (b *testBackend) FreeAtHint() uint64 { return b.eng.Now() + 1 }

func testCache(t testing.TB, cfg Config) (*sim.Engine, *Cache, *testBackend) {
	t.Helper()
	eng := sim.NewEngine()
	be := &testBackend{eng: eng, delay: 20}
	return eng, New(eng, cfg, be), be
}

func smallConfig() Config {
	return Config{
		Name: "t", Size: 1 << 10, LineSize: 32, Assoc: 1,
		HitLatency: 1, Ports: 2, MSHRs: 2, ReadsPerMSHR: 2,
		WriteBack: true, AllocOnWrite: true, PrefetchQueueCap: 8,
	}
}

// access drives one access to completion, advancing the clock.
func access(t testing.TB, eng *sim.Engine, c *Cache, a *Access) (completedAt uint64, wasHit bool) {
	t.Helper()
	var done, hit = false, false
	var at uint64
	orig := a.Done
	a.Done = DoneFunc(func(now uint64, h bool) {
		done, hit, at = true, h, now
		if orig != nil {
			orig.AccessDone(now, h)
		}
	})
	cycle := eng.Now()
	for !c.Access(a).Accepted() {
		cycle++
		eng.AdvanceTo(cycle)
	}
	for !done {
		cycle++
		eng.AdvanceTo(cycle)
		if cycle > 1_000_000 {
			t.Fatal("access never completed")
		}
	}
	return at, hit
}

func TestMissThenHit(t *testing.T) {
	eng, c, be := testCache(t, smallConfig())
	if _, hit := access(t, eng, c, &Access{Addr: 0x1000}); hit {
		t.Fatal("cold access reported hit")
	}
	if _, hit := access(t, eng, c, &Access{Addr: 0x1008}); !hit {
		t.Fatal("second access to same line missed")
	}
	if len(be.fetches) != 1 {
		t.Fatalf("fetched %d lines, want 1", len(be.fetches))
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	eng, c, be := testCache(t, smallConfig())
	access(t, eng, c, &Access{Addr: 0x1000, Write: true}) // dirty line
	// Evict it with a conflicting line (1KB direct-mapped: +1KB aliases).
	access(t, eng, c, &Access{Addr: 0x1000 + 1024})
	if len(be.wbacks) != 1 || be.wbacks[0] != 0x1000 {
		t.Fatalf("writebacks: %v", be.wbacks)
	}
	if c.Stats().WriteBack != 1 {
		t.Fatalf("writeback stat: %+v", c.Stats())
	}
}

func TestCleanEvictionSilent(t *testing.T) {
	eng, c, be := testCache(t, smallConfig())
	access(t, eng, c, &Access{Addr: 0x1000})
	access(t, eng, c, &Access{Addr: 0x1000 + 1024})
	if len(be.wbacks) != 0 {
		t.Fatalf("clean line written back: %v", be.wbacks)
	}
}

func TestLRUOrder(t *testing.T) {
	cfg := smallConfig()
	cfg.Assoc = 2
	eng, c, _ := testCache(t, cfg)
	// Two lines fill a set, touch the first, insert a third: the
	// second (LRU) must be evicted.
	const s = 2 * 1024 // set stride for 1KB 2-way = 512B? use aliases of set 0
	a, b, d := uint64(0x10000), uint64(0x10000+512), uint64(0x10000+1024)
	access(t, eng, c, &Access{Addr: a})
	access(t, eng, c, &Access{Addr: b})
	access(t, eng, c, &Access{Addr: a}) // a is MRU
	access(t, eng, c, &Access{Addr: d}) // evicts b
	if !c.Contains(a) {
		t.Fatal("MRU line evicted")
	}
	if c.Contains(b) {
		t.Fatal("LRU line survived")
	}
	_ = s
}

func TestMSHRMerge(t *testing.T) {
	eng, c, be := testCache(t, smallConfig())
	done := 0
	cb := DoneFunc(func(uint64, bool) { done++ })
	if !c.Access(&Access{Addr: 0x2000, Done: cb}).Accepted() {
		t.Fatal("first access refused")
	}
	eng.AdvanceTo(2) // past the post-miss stall window
	// Same line, different address: merges into the MSHR.
	if !c.Access(&Access{Addr: 0x2008, Done: cb}).Accepted() {
		t.Fatal("mergeable access refused")
	}
	eng.AdvanceTo(4)
	// Merge limit (2 reads per MSHR) reached: refuse.
	if c.Access(&Access{Addr: 0x2010, Done: cb}).Accepted() {
		t.Fatal("merge over limit accepted")
	}
	eng.AdvanceTo(100)
	if done != 2 {
		t.Fatalf("%d completions, want 2", done)
	}
	if len(be.fetches) != 1 {
		t.Fatalf("%d fetches, want 1 (merged)", len(be.fetches))
	}
	if c.Stats().RejectMSHR != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
}

func TestMSHRFullRefusesNewMiss(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig()) // 2 MSHRs
	c.Access(&Access{Addr: 0x1000})
	eng.AdvanceTo(2) // skip the post-miss pipeline stall
	c.Access(&Access{Addr: 0x2000})
	eng.AdvanceTo(4)
	if c.Access(&Access{Addr: 0x3000}).Accepted() {
		t.Fatal("third concurrent miss accepted with 2 MSHRs")
	}
	if c.Stats().RejectMSHR == 0 {
		t.Fatal("no MSHR rejection recorded")
	}
}

func TestInfiniteMSHRMode(t *testing.T) {
	cfg := smallConfig()
	cfg.InfiniteMSHR = true
	cfg.NoPipelineStall = true
	eng, c, _ := testCache(t, cfg)
	for i := 0; i < 50; i++ {
		if !c.Access(&Access{Addr: uint64(0x1000 + i*2048)}).Accepted() {
			t.Fatalf("infinite-MSHR cache refused miss %d", i)
		}
		eng.AdvanceTo(eng.Now() + 1)
	}
}

func TestPortLimit(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig()) // 2 ports
	access(t, eng, c, &Access{Addr: 0x1000})
	access(t, eng, c, &Access{Addr: 0x1040})
	// Move past the refill cycle (the refill consumed a port there).
	eng.AdvanceTo(eng.Now() + 2)
	// Same cycle: two hits fit, the third is refused on ports.
	if !c.Access(&Access{Addr: 0x1000}).Accepted() {
		t.Fatal("hit 1 refused")
	}
	if !c.Access(&Access{Addr: 0x1040}).Accepted() {
		t.Fatal("hit 2 refused")
	}
	if c.Access(&Access{Addr: 0x1000}).Accepted() {
		t.Fatal("third same-cycle access accepted with 2 ports")
	}
	if c.Stats().RejectPort == 0 {
		t.Fatal("no port rejection recorded")
	}
}

func TestPipelineStallAfterMiss(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig())
	if !c.Access(&Access{Addr: 0x1000}).Accepted() {
		t.Fatal("miss refused")
	}
	// Section 2.2: the MSHR is busy the cycle after a request.
	eng.AdvanceTo(eng.Now() + 1)
	if c.Access(&Access{Addr: 0x5000}).Accepted() {
		t.Fatal("access accepted during post-miss stall cycle")
	}
	if c.Stats().RejectStall == 0 {
		t.Fatal("no stall rejection recorded")
	}
	// Two cycles later the pipeline is free again.
	eng.AdvanceTo(eng.Now() + 1)
	if !c.Access(&Access{Addr: 0x5000}).Accepted() {
		t.Fatal("access refused after the stall window")
	}
}

func TestPrefetchDedupAndDrop(t *testing.T) {
	cfg := smallConfig()
	cfg.PrefetchQueueCap = 2
	eng, c, be := testCache(t, cfg)
	be.refuse = 100 // force queuing
	c.Prefetch(0x8000)
	c.Prefetch(0x8000) // dup of queued
	c.Prefetch(0x9000)
	c.Prefetch(0xa000) // queue full: dropped
	st := c.Stats()
	if st.PrefetchDup == 0 {
		t.Fatalf("dup not detected: %+v", st)
	}
	if st.PrefetchDropped == 0 {
		t.Fatalf("overflow not dropped: %+v", st)
	}
	_ = eng
}

func TestPrefetchFillsAndHits(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig())
	c.Prefetch(0x4000)
	eng.AdvanceTo(100)
	if !c.Contains(0x4000) {
		t.Fatal("prefetched line not installed")
	}
	_, hit := access(t, eng, c, &Access{Addr: 0x4000})
	if !hit {
		t.Fatal("prefetched line missed")
	}
	st := c.Stats()
	if st.PrefetchIssued != 1 || st.PrefetchUseful != 1 {
		t.Fatalf("prefetch stats: %+v", st)
	}
}

func TestPrefetchRedirect(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig())
	var got uint64
	c.PrefetchInto(0x4000, RedirectFunc(func(la uint64, now uint64) { got = la }))
	eng.AdvanceTo(100)
	if got != 0x4000 {
		t.Fatalf("redirect sink got %#x", got)
	}
	if c.Contains(0x4000) {
		t.Fatal("redirected prefetch installed into the array")
	}
}

type probeAux struct {
	lines map[uint64]bool
	hits  int
}

func (p *probeAux) ProbeAux(lineAddr uint64, now uint64) bool {
	if p.lines[lineAddr] {
		delete(p.lines, lineAddr)
		p.hits++
		return true
	}
	return false
}

func TestAuxProberServicesMiss(t *testing.T) {
	eng, c, be := testCache(t, smallConfig())
	aux := &probeAux{lines: map[uint64]bool{0x7000: true}}
	c.Attach(aux)
	_, hit := access(t, eng, c, &Access{Addr: 0x7000})
	if !hit {
		t.Fatal("aux-held line not serviced as hit")
	}
	if aux.hits != 1 {
		t.Fatal("prober not consulted")
	}
	if len(be.fetches) != 0 {
		t.Fatal("downstream fetch issued despite aux hit")
	}
	if c.Stats().AuxHits != 1 {
		t.Fatalf("stats: %+v", c.Stats())
	}
	if !c.Contains(0x7000) {
		t.Fatal("aux line not installed")
	}
}

func TestCheckerCatchesDirtyBitBug(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig())
	ch := NewChecker()
	c.EnableChecker(ch)
	access(t, eng, c, &Access{Addr: 0x1000, Write: true})
	// Inject the paper's bug: the dirty bit is lost.
	c.CorruptDirtyBits()
	access(t, eng, c, &Access{Addr: 0x1000 + 1024}) // evicts the line
	if len(ch.Violations) != 1 || ch.Violations[0] != 0x1000 {
		t.Fatalf("checker missed the dirty-bit bug: %v", ch.Violations)
	}
}

func TestCheckerSilentWhenCorrect(t *testing.T) {
	eng, c, _ := testCache(t, smallConfig())
	ch := NewChecker()
	c.EnableChecker(ch)
	access(t, eng, c, &Access{Addr: 0x1000, Write: true})
	access(t, eng, c, &Access{Addr: 0x1000 + 1024})
	if len(ch.Violations) != 0 {
		t.Fatalf("false positive: %v", ch.Violations)
	}
}

func TestAttachRejectsNonMechanism(t *testing.T) {
	_, c, _ := testCache(t, smallConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("Attach accepted a hook-less value")
		}
	}()
	c.Attach(struct{}{})
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "a", Size: 0, LineSize: 32, Assoc: 1, Ports: 1, MSHRs: 1, ReadsPerMSHR: 1},
		{Name: "b", Size: 1024, LineSize: 33, Assoc: 1, Ports: 1, MSHRs: 1, ReadsPerMSHR: 1},
		{Name: "c", Size: 1024, LineSize: 32, Assoc: 1, Ports: 0, MSHRs: 1, ReadsPerMSHR: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d validated", i)
				}
			}()
			cfg.Validate()
		}()
	}
}

// TestPropertyStatsConsistent drives random access sequences and
// checks the core invariants: hits+misses == accesses, and a line
// reported present is found by a subsequent access.
func TestPropertyStatsConsistent(t *testing.T) {
	err := quick.Check(func(addrs []uint16) bool {
		cfg := smallConfig()
		cfg.NoPipelineStall = true
		eng := sim.NewEngine()
		be := &testBackend{eng: eng, delay: 5}
		c := New(eng, cfg, be)
		for _, a := range addrs {
			addr := uint64(a) * 8
			cycle := eng.Now()
			for !c.Access(&Access{Addr: addr}).Accepted() {
				cycle++
				eng.AdvanceTo(cycle)
			}
			eng.AdvanceTo(eng.Now() + 8)
		}
		eng.AdvanceTo(eng.Now() + 100)
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyContainsAfterFill: any line accessed and completed is
// resident afterwards (no aliasing within the same run of accesses
// to a single line).
func TestPropertyContainsAfterFill(t *testing.T) {
	err := quick.Check(func(a uint16) bool {
		eng := sim.NewEngine()
		be := &testBackend{eng: eng, delay: 5}
		c := New(eng, smallConfig(), be)
		addr := uint64(a) * 32
		cycle := eng.Now()
		for !c.Access(&Access{Addr: addr}).Accepted() {
			cycle++
			eng.AdvanceTo(cycle)
		}
		eng.AdvanceTo(eng.Now() + 50)
		return c.Contains(addr)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

package cache

import (
	"testing"

	"microlib/internal/sim"
)

// pooledBackend is a minimal allocation-free backend: fill delivery
// rides the engine's pooled AtFunc events with the sink and line
// address packed into the event node.
type pooledBackend struct {
	eng   *sim.Engine
	delay uint64
}

func deliverFill(now uint64, o1, _ any, la, _ uint64) {
	o1.(FillSink).FillLine(la, now)
}

func (b *pooledBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink FillSink) bool {
	b.eng.AfterFunc(b.delay, deliverFill, sink, nil, lineAddr, 0)
	return true
}
func (b *pooledBackend) WriteBack(lineAddr uint64) bool { return true }
func (b *pooledBackend) FreeAtHint() uint64             { return b.eng.Now() + 1 }

// TestSteadyStateMissPathZeroAllocs drives misses, merges, fills,
// write-backs and prefetches through a warmed cache and asserts the
// whole fill path — MSHR recycling (targets backing arrays included),
// the prefetch request queue, and every engine event it schedules —
// is allocation-free in steady state.
func TestSteadyStateMissPathZeroAllocs(t *testing.T) {
	eng := sim.NewEngine()
	cfg := smallConfig()
	cfg.PrefetchQueueCap = 8
	c := New(eng, cfg, &pooledBackend{eng: eng, delay: 20})

	var completions int
	done := DoneFunc(func(now uint64, hit bool) { completions++ })

	drive := func(addr uint64) {
		// A demand miss with a merge target, plus a prefetch to a
		// neighbouring line, then run everything to completion.
		cycle := eng.Now()
		acc := Access{Addr: addr, PC: 0x40, Done: done}
		for !c.Access(&acc).Accepted() {
			cycle++
			eng.AdvanceTo(cycle)
		}
		c.Prefetch(addr + 4096)
		eng.AdvanceTo(cycle + 64)
		// A conflicting write allocation forces evictions and
		// write-backs through the reused entries.
		wacc := Access{Addr: addr ^ 0x8000, PC: 0x44, Write: true, Done: done}
		for !c.Access(&wacc).Accepted() {
			cycle = eng.Now() + 1
			eng.AdvanceTo(cycle)
		}
		eng.AdvanceTo(eng.Now() + 64)
	}

	// Warm: touch every address the measured loop will use so slice
	// capacities (MSHR targets, prefetch queue, engine pools) reach
	// their steady state.
	var i uint64
	for i = 0; i < 64; i++ {
		drive(0x10000 + (i%16)*64)
	}

	allocs := testing.AllocsPerRun(200, func() {
		drive(0x10000 + (i%16)*64)
		i++
	})
	if allocs != 0 {
		t.Fatalf("steady-state miss path allocates %.1f per access burst, want 0", allocs)
	}
	if completions == 0 {
		t.Fatal("no accesses completed")
	}
}

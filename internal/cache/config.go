// Package cache implements the detailed MicroLib cache model that
// the paper plugs into SimpleScalar: set-associative arrays with true
// LRU, finite MSHRs (miss address file) with bounded read merging,
// strict port accounting including refill ports, the pipeline-stall
// rules of Section 2.2, write-back/write-allocate policies, and
// mechanism hook points for the pluggable optimizations of Table 2.
//
// The SimpleScalar-compatibility switches (infinite MSHR, free refill
// ports, no pipeline stalls) reproduce the *less* detailed cache the
// paper validates against in Figure 1 and ablates in Figure 9.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name     string
	Size     int // total bytes
	LineSize int // bytes
	Assoc    int // ways; 0 means fully associative
	// HitLatency is the load-to-use latency of a hit, in CPU cycles.
	HitLatency uint64
	Ports      int
	// MSHRs is the number of miss-address-file entries;
	// ReadsPerMSHR bounds how many misses may merge on one line.
	MSHRs        int
	ReadsPerMSHR int
	WriteBack    bool
	AllocOnWrite bool
	// SimpleScalar-compatibility switches (Figure 1 / Figure 9).
	InfiniteMSHR    bool
	FreeRefillPorts bool
	NoPipelineStall bool
	// PrefetchQueueCap bounds the mechanism prefetch request queue
	// attached to this cache (Table 3 per-mechanism values); 0
	// disables prefetch buffering entirely.
	PrefetchQueueCap int
}

// Check reports a structurally impossible configuration as an error.
// Plan-time validation (campaign expansion, runner.Options.Validate)
// uses it so a bad sweep value fails before any worker starts.
func (c Config) Check() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0:
		return c.errorf("size and line size must be positive")
	case c.Size%c.LineSize != 0:
		return c.errorf("size must be a multiple of line size")
	case c.LineSize&(c.LineSize-1) != 0:
		return c.errorf("line size must be a power of two")
	case c.Ports <= 0:
		return c.errorf("need at least one port")
	case c.MSHRs <= 0 && !c.InfiniteMSHR:
		return c.errorf("need at least one MSHR")
	case c.ReadsPerMSHR <= 0:
		return c.errorf("reads per MSHR must be positive")
	case c.Assoc < 0:
		return c.errorf("associativity must not be negative")
	case c.PrefetchQueueCap < 0:
		return c.errorf("prefetch queue capacity must not be negative")
	}
	lines := c.Size / c.LineSize
	assoc := c.Assoc
	if assoc == 0 {
		assoc = lines
	}
	if lines%assoc != 0 {
		return c.errorf("lines not divisible by associativity")
	}
	sets := lines / assoc
	if sets&(sets-1) != 0 {
		return c.errorf("set count must be a power of two")
	}
	return nil
}

// Validate panics on a structurally impossible configuration; caches
// are built at simulation start so a panic is the right failure mode
// (validated entry points catch the problem earlier via Check).
func (c Config) Validate() {
	if err := c.Check(); err != nil {
		panic(err.Error())
	}
}

func (c Config) errorf(msg string) error { return fmt.Errorf("cache: %s: %s", msg, c.Name) }

// NumLines returns the line count.
func (c Config) NumLines() int { return c.Size / c.LineSize }

// NumSets returns the set count after resolving full associativity.
func (c Config) NumSets() int {
	assoc := c.Assoc
	if assoc == 0 {
		assoc = c.NumLines()
	}
	return c.NumLines() / assoc
}

// Ways returns the resolved associativity.
func (c Config) Ways() int {
	if c.Assoc == 0 {
		return c.NumLines()
	}
	return c.Assoc
}

// Stats holds the cumulative counters of one cache.
type Stats struct {
	Accesses  uint64 // demand accesses accepted
	Hits      uint64
	Misses    uint64 // demand misses (primary + merged)
	AuxHits   uint64 // misses serviced by an auxiliary structure (VC, FVC, ...)
	Writes    uint64
	Evictions uint64
	WriteBack uint64

	PrefetchIssued  uint64 // prefetch fills requested downstream
	PrefetchUseful  uint64 // prefetched lines later hit by demand
	PrefetchDropped uint64 // queue overflow drops
	PrefetchDup     uint64 // dropped because line present/pending

	RejectPort  uint64 // access refused: no port this cycle
	RejectStall uint64 // access refused: pipeline stalled
	RejectMSHR  uint64 // access refused: MSHR full / merge limit
	Fills       uint64
}

// MissRatio returns demand misses (not counting aux hits as misses)
// over demand accesses.
func (s Stats) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Sub returns the counter deltas s - prev; the runner uses it to
// exclude warm-up activity from measurements.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Accesses:        s.Accesses - prev.Accesses,
		Hits:            s.Hits - prev.Hits,
		Misses:          s.Misses - prev.Misses,
		AuxHits:         s.AuxHits - prev.AuxHits,
		Writes:          s.Writes - prev.Writes,
		Evictions:       s.Evictions - prev.Evictions,
		WriteBack:       s.WriteBack - prev.WriteBack,
		PrefetchIssued:  s.PrefetchIssued - prev.PrefetchIssued,
		PrefetchUseful:  s.PrefetchUseful - prev.PrefetchUseful,
		PrefetchDropped: s.PrefetchDropped - prev.PrefetchDropped,
		PrefetchDup:     s.PrefetchDup - prev.PrefetchDup,
		RejectPort:      s.RejectPort - prev.RejectPort,
		RejectStall:     s.RejectStall - prev.RejectStall,
		RejectMSHR:      s.RejectMSHR - prev.RejectMSHR,
		Fills:           s.Fills - prev.Fills,
	}
}

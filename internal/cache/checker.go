package cache

// Checker is the MicroLib debugging device the paper describes in
// Section 2.2: because the authors' own processor model (OoOSysC)
// executes real values, "confronting the emulator with the simulator
// for every memory request is a simple but powerful debugging tool" —
// it caught, for example, a mechanism that forgot to set the dirty
// bit, so a modified line was silently dropped instead of written
// back.
//
// Checker tracks, per line, whether the cached copy has been modified
// since fill. On eviction, a modified line whose dirty bit is clear
// is exactly that class of bug, and is reported.
type Checker struct {
	// modified records lines that received a store while resident.
	modified map[uint64]bool
	// Violations lists line addresses evicted modified-but-clean.
	Violations []uint64
}

// NewChecker returns an empty checker.
func NewChecker() *Checker {
	return &Checker{modified: make(map[uint64]bool)}
}

// EnableChecker arms value checking on the cache.
func (c *Cache) EnableChecker(ch *Checker) { c.checker = ch }

func (ch *Checker) noteFill(lineAddr uint64, dirty bool) {
	ch.modified[lineAddr] = dirty
}

func (ch *Checker) noteStore(lineAddr uint64) {
	ch.modified[lineAddr] = true
}

func (ch *Checker) noteEvict(lineAddr uint64, dirty bool) {
	if ch.modified[lineAddr] && !dirty {
		ch.Violations = append(ch.Violations, lineAddr)
	}
	delete(ch.modified, lineAddr)
}

// CorruptDirtyBits is a fault-injection helper for tests: it clears
// the dirty bit of every resident line, emulating the forgotten-
// dirty-bit bug from the paper so tests can prove the checker
// catches it.
func (c *Cache) CorruptDirtyBits() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].dirty = false
		}
	}
}

package cache

import "microlib/internal/sim"

// FillSink receives fetched line data. The requesting cache itself is
// the sink (its FillLine method), so a backend needs no per-request
// callback closure: it carries the (sink, lineAddr) pair in its own
// pooled request state and delivers the fill with one interface call.
type FillSink interface {
	// FillLine delivers the line data at cycle now.
	FillLine(lineAddr, now uint64)
}

// Backend is the downstream side of a cache: the next cache level or
// main memory, reached across a bus. Fetch requests a full line;
// sink.FillLine fires when the line data has arrived at this cache. A
// false return means the request was not accepted this cycle
// (bus/queue pressure) and must be retried; for prefetches a false
// return also signals "the bus is not idle", implementing the
// demand-priority rule the paper describes for prefetch queues.
type Backend interface {
	Fetch(lineAddr, pc uint64, prefetch bool, sink FillSink) bool
	WriteBack(lineAddr uint64) bool
	// FreeAtHint returns a cycle at which the backend is likely to
	// accept again, used to schedule retries without polling.
	FreeAtHint() uint64
}

// DoneSink receives access completions. Requesters are identifiable
// objects (pooled request nodes, core front-ends) rather than
// closures so that in-flight requests parked in MSHRs and calendar
// events can be enumerated and serialized by the warm-state
// checkpointing machinery.
type DoneSink interface {
	// AccessDone fires exactly once when the data is available (the
	// cycle of completion). hit reports whether it was a first-level
	// hit (including aux hits).
	AccessDone(now uint64, hit bool)
}

// DoneFunc adapts a plain function to DoneSink (tests and one-off
// probes; the simulation hot paths use concrete pooled sinks).
type DoneFunc func(now uint64, hit bool)

// AccessDone implements DoneSink.
func (f DoneFunc) AccessDone(now uint64, hit bool) { f(now, hit) }

// RedirectSink receives prefetch fills that bypass the cache array
// (mechanisms with private prefetch buffers implement it).
type RedirectSink interface {
	// RedirectFill delivers the prefetched line at cycle now.
	RedirectFill(lineAddr, now uint64)
}

// RedirectFunc adapts a plain function to RedirectSink (tests).
type RedirectFunc func(lineAddr, now uint64)

// RedirectFill implements RedirectSink.
func (f RedirectFunc) RedirectFill(lineAddr, now uint64) { f(lineAddr, now) }

// Access is one demand request from the processor side (or from the
// level above). Done may be nil.
type Access struct {
	Addr  uint64
	PC    uint64
	Write bool
	// Done is notified exactly once when the data is available.
	Done DoneSink
}

// Reason classifies the outcome of an Access submission. The zero
// value is acceptance, so the zero Refusal means "taken this cycle".
type Reason uint8

const (
	// Accepted: the cache took the request this cycle.
	Accepted Reason = iota
	// RefusePort: every port is reserved this cycle. Ports reset at
	// the next cycle boundary, so the refusal is timer-bound with
	// RetryAt = now+1.
	RefusePort
	// RefuseStall: the cache pipeline is stalled (Section 2.2 rules).
	// stallUntil only ever moves forward, so the refusal is
	// timer-bound with RetryAt = stallUntil — no acceptance is
	// possible earlier.
	RefuseStall
	// RefuseMSHR: the miss address file is full or the merge target
	// reached its read limit. MSHR entries free only when a fill event
	// completes (FillLine), so the refusal is event-bound: RetryAt is
	// 0 and the caller must consult the calendar (NextEventAt).
	RefuseMSHR
)

// String names the reason for reports and tests.
func (r Reason) String() string {
	switch r {
	case Accepted:
		return "accepted"
	case RefusePort:
		return "port"
	case RefuseStall:
		return "stall"
	case RefuseMSHR:
		return "mshr"
	}
	return "unknown"
}

// Refusal is the structured result of Access: why the cache could not
// take the request this cycle and when a retry can first succeed. The
// zero value means accepted. A single-accessor caller (a blocked
// core) may jump its clock straight to RetryAt — or, for event-bound
// refusals, to the next calendar event — instead of polling every
// cycle: refused attempts have no side effects beyond reject
// counters, so the acceptance cycle is identical either way (the
// oracle property test in refusal_test.go pins this).
type Refusal struct {
	Reason Reason
	// RetryAt is the exact earliest cycle a retry can be accepted for
	// timer-bound refusals (Port, Stall); 0 for event-bound refusals
	// (MSHR), where the wake-up is the next calendar event.
	RetryAt uint64
}

// Accepted reports whether the access was taken.
func (r Refusal) Accepted() bool { return r.Reason == Accepted }

// EventBound reports whether the retry is gated on a calendar event
// rather than a known cycle.
func (r Refusal) EventBound() bool { return r.Reason == RefuseMSHR }

type line struct {
	tag        uint64
	valid      bool
	dirty      bool
	prefetched bool
	lastUse    uint64
}

type mshrEntry struct {
	valid     bool
	lineAddr  uint64
	firstAddr uint64
	pc        uint64
	reads     int
	fillDirty bool
	prefetch  bool
	issued    bool
	// redirect, when non-nil, receives the fill instead of the cache
	// array (prefetch-buffer mechanisms use this).
	redirect RedirectSink
	targets  []DoneSink
}

// clear empties the entry but keeps the targets backing array, so the
// steady-state miss path appends into recycled capacity instead of
// reallocating per fill.
func (e *mshrEntry) clear() {
	tg := e.targets[:0]
	for i := range e.targets {
		e.targets[i] = nil
	}
	*e = mshrEntry{}
	e.targets = tg
}

// Cache is one level of the hierarchy.
type Cache struct {
	cfg Config
	eng *sim.Engine

	sets      [][]line
	setMask   uint64
	lineShift uint
	useTick   uint64

	backend Backend
	mshrs   []mshrEntry
	mshrsIn int // valid entries

	// Pipeline stall state (Section 2.2 rules).
	stallUntil uint64

	// Port accounting: portsUsed counts this-cycle reservations.
	portCycle uint64
	portsUsed int

	// Prefetch request queue (mechanism-facing): a head-indexed slice
	// so pops reuse the backing array instead of re-slicing it away.
	pq         []prefetchReq
	pqHead     int
	pqRetryArm bool
	// prefetchAsDemand disables the low-priority treatment of
	// prefetches downstream (an ablation of the demand-priority
	// design choice).
	prefetchAsDemand bool

	accessObs []AccessObserver
	probers   []AuxProber
	evictObs  []EvictObserver
	fillObs   []FillObserver
	missObs   []MissObserver

	checker *Checker

	stats Stats
}

type prefetchReq struct {
	lineAddr uint64
	redirect RedirectSink
}

// New builds a cache on the engine with the given backend (which may
// be nil only if the cache can never miss — tests use that).
func New(eng *sim.Engine, cfg Config, backend Backend) *Cache {
	cfg.Validate()
	nsets := cfg.NumSets()
	ways := cfg.Ways()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*ways)
	for i := range sets {
		sets[i], backing = backing[:ways], backing[ways:]
	}
	nm := cfg.MSHRs
	if cfg.InfiniteMSHR {
		// "Infinite" means never a structural stall; a generous pool
		// that grows on demand keeps the implementation simple.
		nm = 64
	}
	ls := uint(0)
	for 1<<ls != cfg.LineSize {
		ls++
	}
	return &Cache{
		cfg:       cfg,
		eng:       eng,
		sets:      sets,
		setMask:   uint64(nsets - 1),
		lineShift: ls,
		backend:   backend,
		mshrs:     make([]mshrEntry, nm),
	}
}

// Config returns the active configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the cumulative counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr aligns an address to this cache's line size.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ (uint64(c.cfg.LineSize) - 1)
}

func (c *Cache) setIndex(lineAddr uint64) uint64 {
	return (lineAddr >> c.lineShift) & c.setMask
}

func (c *Cache) tag(lineAddr uint64) uint64 {
	return lineAddr >> c.lineShift
}

// Contains reports whether the line is present (no state change).
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	t := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true
		}
	}
	return false
}

// MissPending reports whether a fill for the line is outstanding.
func (c *Cache) MissPending(addr uint64) bool {
	la := c.LineAddr(addr)
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].lineAddr == la {
			return true
		}
	}
	return false
}

// reservePort accounts one port use at now; returns false when all
// ports are taken this cycle. force (refills) always succeeds but
// still consumes capacity, implementing the paper's "refill requests
// strictly consume ports" rule.
func (c *Cache) reservePort(now uint64, force bool) bool {
	if now != c.portCycle {
		c.portCycle = now
		c.portsUsed = 0
	}
	if force {
		if !c.cfg.FreeRefillPorts {
			c.portsUsed++
		}
		return true
	}
	if c.portsUsed >= c.cfg.Ports {
		return false
	}
	c.portsUsed++
	return true
}

// Probe performs a tag lookup without side effects, returning
// (present, dirty, prefetched).
func (c *Cache) Probe(addr uint64) (present, dirty, prefetched bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	t := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			return true, set[i].dirty, set[i].prefetched
		}
	}
	return false, false, false
}

// Access submits a demand request. The returned Refusal is zero when
// the cache accepted the request this cycle; otherwise it carries the
// refusal reason and retry hint (no port, pipeline stall, MSHR full)
// and the caller must retry on a later cycle. Refused attempts leave
// no trace but the Reject* counters and — for MSHR refusals, which
// pass the port gate first — one port reservation that expires at the
// next cycle boundary.
//
//ml:hotpath
func (c *Cache) Access(a *Access) Refusal {
	now := c.eng.Now()
	if !c.cfg.NoPipelineStall && now < c.stallUntil {
		c.stats.RejectStall++
		return Refusal{Reason: RefuseStall, RetryAt: c.stallUntil}
	}
	if !c.reservePort(now, false) {
		c.stats.RejectPort++
		return Refusal{Reason: RefusePort, RetryAt: now + 1}
	}

	la := c.LineAddr(a.Addr)
	set := c.sets[c.setIndex(la)]
	t := c.tag(la)

	// Hit path.
	for i := range set {
		ln := &set[i]
		if !ln.valid || ln.tag != t {
			continue
		}
		c.stats.Accesses++
		if a.Write {
			c.stats.Writes++
			if c.cfg.WriteBack {
				ln.dirty = true
			}
			if c.checker != nil {
				c.checker.noteStore(la)
			}
		}
		c.stats.Hits++
		wasPF := ln.prefetched
		if wasPF {
			c.stats.PrefetchUseful++
			ln.prefetched = false
		}
		c.useTick++
		ln.lastUse = c.useTick
		c.notifyAccess(AccessEvent{
			Addr: a.Addr, LineAddr: la, PC: a.PC, Write: a.Write,
			Hit: true, PrefetchedLine: wasPF, Now: now,
		})
		if a.Done != nil {
			c.eng.AfterFunc(c.cfg.HitLatency, callDoneHit, a.Done, nil, 0, 0)
		}
		return Refusal{}
	}

	// Miss: try to merge into an existing MSHR first, because a full
	// merge target must *refuse* (LSQ stall) rather than allocate.
	if idx := c.findMSHR(la); idx >= 0 {
		e := &c.mshrs[idx]
		if e.reads >= c.cfg.ReadsPerMSHR && !c.cfg.InfiniteMSHR {
			c.stats.RejectMSHR++
			return Refusal{Reason: RefuseMSHR}
		}
		c.stats.Accesses++
		c.stats.Misses++
		if a.Write {
			c.stats.Writes++
			e.fillDirty = c.cfg.WriteBack
			if c.checker != nil {
				c.checker.noteStore(la)
			}
		}
		// Secondary miss on the same line but a different address
		// stalls the cache pipeline for a cycle (Section 2.2).
		if a.Addr != e.firstAddr && !c.cfg.NoPipelineStall {
			c.stallUntil = now + 2
		}
		e.reads++
		if a.Done != nil {
			e.targets = append(e.targets, a.Done)
		}
		// A demand merge upgrades a prefetch fill to demand priority.
		e.prefetch = false
		c.notifyAccess(AccessEvent{
			Addr: a.Addr, LineAddr: la, PC: a.PC, Write: a.Write,
			Hit: false, Now: now,
		})
		return Refusal{}
	}

	// Consult auxiliary structures (victim cache, FVC, prefetch
	// buffers). An aux hit installs locally with one extra cycle.
	for _, p := range c.probers {
		if !p.ProbeAux(la, now) {
			continue
		}
		c.stats.Accesses++
		c.stats.AuxHits++
		c.stats.Hits++
		c.install(la, a.Write && c.cfg.WriteBack, false, now)
		if a.Write {
			c.stats.Writes++
			if c.checker != nil {
				c.checker.noteStore(la)
			}
		}
		c.notifyAccess(AccessEvent{
			Addr: a.Addr, LineAddr: la, PC: a.PC, Write: a.Write,
			Hit: true, Now: now,
		})
		if a.Done != nil {
			c.eng.AfterFunc(c.cfg.HitLatency+1, callDoneHit, a.Done, nil, 0, 0)
		}
		return Refusal{}
	}

	// Primary miss: allocate an MSHR.
	free := c.freeMSHR()
	if free < 0 {
		c.stats.RejectMSHR++
		return Refusal{Reason: RefuseMSHR}
	}
	c.stats.Accesses++
	c.stats.Misses++
	if a.Write {
		c.stats.Writes++
		if c.checker != nil {
			c.checker.noteStore(la)
		}
	}
	e := &c.mshrs[free]
	e.valid = true
	e.lineAddr = la
	e.firstAddr = a.Addr
	e.pc = a.PC
	e.reads = 1
	e.fillDirty = a.Write && c.cfg.WriteBack
	if a.Done != nil {
		e.targets = append(e.targets, a.Done)
	}
	c.mshrsIn++
	// The MSHR is busy for a cycle after receiving a request
	// (Section 2.2).
	if !c.cfg.NoPipelineStall {
		c.stallUntil = now + 2
	}
	c.notifyAccess(AccessEvent{
		Addr: a.Addr, LineAddr: la, PC: a.PC, Write: a.Write,
		Hit: false, Now: now,
	})
	for _, m := range c.missObs {
		m.OnMiss(la, a.PC, now)
	}
	c.issueFetch(free)
	return Refusal{}
}

// notifyAccess delivers an event to every observer.
func (c *Cache) notifyAccess(ev AccessEvent) {
	for _, o := range c.accessObs {
		o.OnAccess(ev)
	}
}

func (c *Cache) findMSHR(lineAddr uint64) int {
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].lineAddr == lineAddr {
			return i
		}
	}
	return -1
}

func (c *Cache) freeMSHR() int {
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			return i
		}
	}
	if c.cfg.InfiniteMSHR {
		c.mshrs = append(c.mshrs, mshrEntry{})
		return len(c.mshrs) - 1
	}
	return -1
}

// issueFetch pushes MSHR entry i downstream, retrying on backend
// pushback. The cache itself is the fill sink, so no per-request
// callback is allocated.
func (c *Cache) issueFetch(i int) {
	e := &c.mshrs[i]
	if e.issued || !e.valid {
		return
	}
	if c.backend.Fetch(e.lineAddr, e.pc, e.prefetch, c) {
		e.issued = true
		return
	}
	// Retry when the backend hints it may accept.
	retry := c.backend.FreeAtHint()
	if retry <= c.eng.Now() {
		retry = c.eng.Now() + 1
	}
	c.eng.AtFunc(retry, retryIssueFetch, c, nil, e.lineAddr, 0)
}

// retryIssueFetch re-attempts a pushed-back downstream fetch, if the
// MSHR entry still exists.
func retryIssueFetch(_ uint64, o1, _ any, la, _ uint64) {
	c := o1.(*Cache)
	if idx := c.findMSHR(la); idx >= 0 {
		c.issueFetch(idx)
	}
}

// callDoneHit completes a hit: o1 is the Access.Done sink.
func callDoneHit(now uint64, o1, _ any, _, _ uint64) {
	o1.(DoneSink).AccessDone(now, true)
}

// FillLine implements FillSink: it receives line data from
// downstream, installs it (or redirects it to a mechanism buffer) and
// wakes the waiting targets.
//
//ml:hotpath
func (c *Cache) FillLine(lineAddr, now uint64) {
	idx := c.findMSHR(lineAddr)
	if idx < 0 {
		return // entry was squashed (cannot happen in current flows)
	}
	e := &c.mshrs[idx]
	c.stats.Fills++
	c.reservePort(now, true)

	if e.redirect != nil {
		e.redirect.RedirectFill(lineAddr, now)
	} else {
		c.install(lineAddr, e.fillDirty, e.prefetch, now)
		for _, f := range c.fillObs {
			f.OnFill(lineAddr, e.prefetch, now)
		}
	}
	for _, t := range e.targets {
		t.AccessDone(now, false)
	}
	e.clear()
	c.mshrsIn--
	c.drainPrefetch()
}

// install places a line into the array, evicting the LRU victim of
// its set (invalid ways first).
func (c *Cache) install(lineAddr uint64, dirty, prefetched bool, now uint64) {
	set := c.sets[c.setIndex(lineAddr)]
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	v := &set[victim]
	if v.valid {
		// tag holds the full line number (lineAddr >> lineShift).
		vAddr := v.tag << c.lineShift
		c.stats.Evictions++
		if c.checker != nil {
			c.checker.noteEvict(vAddr, v.dirty)
		}
		for _, o := range c.evictObs {
			o.OnEvict(vAddr, v.dirty, now)
		}
		if v.dirty {
			c.stats.WriteBack++
			c.writeBack(vAddr)
		}
	}
	c.useTick++
	*v = line{tag: c.tag(lineAddr), valid: true, dirty: dirty, prefetched: prefetched, lastUse: c.useTick}
	if c.checker != nil {
		c.checker.noteFill(lineAddr, dirty)
	}
}

// writeBack pushes a dirty line downstream with retries.
func (c *Cache) writeBack(lineAddr uint64) {
	if c.backend.WriteBack(lineAddr) {
		return
	}
	retry := c.backend.FreeAtHint()
	if retry <= c.eng.Now() {
		retry = c.eng.Now() + 1
	}
	c.eng.AtFunc(retry, retryWriteBack, c, nil, lineAddr, 0)
}

func retryWriteBack(_ uint64, o1, _ any, lineAddr, _ uint64) {
	o1.(*Cache).writeBack(lineAddr)
}

// InstallDirect lets mechanisms (victim caches on swap, prefetch
// buffers on promote) place a line into the array outside the fill
// path.
func (c *Cache) InstallDirect(lineAddr uint64, dirty bool, now uint64) {
	c.install(c.LineAddr(lineAddr), dirty, false, now)
}

// MarkDirty sets the dirty bit of a resident line. Victim caches use
// it to restore dirtiness when a swapped-in line had been modified.
func (c *Cache) MarkDirty(addr uint64) {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	t := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			set[i].dirty = true
			if c.checker != nil {
				c.checker.noteStore(la)
			}
			return
		}
	}
}

// WriteBackLine pushes a line-sized write downstream on behalf of a
// mechanism (a victim cache retiring a dirty victim).
func (c *Cache) WriteBackLine(addr uint64) {
	c.writeBack(c.LineAddr(addr))
}

// DrainDirtyLRU finds up to max dirty lines that are the LRU of
// their set — the lines next in line to cause an eviction write-back
// burst — clears their dirty bits and returns their addresses. The
// caller is responsible for actually writing the data back (eager
// writeback uses WriteBackLine when the bus is idle).
func (c *Cache) DrainDirtyLRU(max int) []uint64 {
	var out []uint64
	for s := range c.sets {
		if len(out) >= max {
			break
		}
		set := c.sets[s]
		lru := -1
		for w := range set {
			if !set[w].valid {
				continue
			}
			if lru < 0 || set[w].lastUse < set[lru].lastUse {
				lru = w
			}
		}
		if lru >= 0 && set[lru].dirty {
			set[lru].dirty = false
			out = append(out, set[lru].tag<<c.lineShift)
		}
	}
	return out
}

// InvalidateLine drops a line if present, returning whether it was
// dirty. Mechanisms that steal lines (TKVC filtering) use this.
func (c *Cache) InvalidateLine(addr uint64) (present, dirty bool) {
	la := c.LineAddr(addr)
	set := c.sets[c.setIndex(la)]
	t := c.tag(la)
	for i := range set {
		if set[i].valid && set[i].tag == t {
			d := set[i].dirty
			set[i] = line{}
			return true, d
		}
	}
	return false, false
}

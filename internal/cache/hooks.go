package cache

// AccessEvent describes one demand access outcome, delivered to
// mechanism observers after the lookup decision.
type AccessEvent struct {
	Addr     uint64 // full effective address
	LineAddr uint64 // line-aligned address
	PC       uint64 // requesting instruction PC (0 for refills)
	Write    bool
	Hit      bool
	// PrefetchedLine is true when the access hit a line that was
	// brought in by a prefetch and had not yet been demanded
	// (tagged-prefetching's trigger condition).
	PrefetchedLine bool
	Now            uint64
}

// AccessObserver sees every demand access after the hit/miss
// decision. Prefetch-triggering mechanisms (TP, SP, TCP, GHB, TK)
// implement this.
type AccessObserver interface {
	OnAccess(ev AccessEvent)
}

// AuxProber is consulted on a demand miss before the miss is sent
// downstream. Returning true means the auxiliary structure (victim
// cache, FVC, prefetch buffer) holds the line: the cache installs
// the line locally and completes the access without a downstream
// fetch. The prober must remove the line from its own storage.
type AuxProber interface {
	ProbeAux(lineAddr uint64, now uint64) bool
}

// EvictObserver sees every eviction of a valid line (victim caches
// and dead-block predictors implement this).
type EvictObserver interface {
	OnEvict(lineAddr uint64, dirty bool, now uint64)
}

// FillObserver sees every line installed into the cache, demand or
// prefetch (content-directed prefetching scans fills).
type FillObserver interface {
	OnFill(lineAddr uint64, prefetch bool, now uint64)
}

// MissObserver sees demand misses that actually go downstream (after
// aux probing), with the PC that caused them. Miss-address-correlating
// prefetchers (Markov, DBCP, TCP, GHB) key off this stream.
type MissObserver interface {
	OnMiss(lineAddr uint64, pc uint64, now uint64)
}

// Attach registers a mechanism with the cache. The mechanism may
// implement any subset of the observer interfaces; Attach wires up
// whichever it finds. Attach panics if the value implements none,
// which almost certainly indicates a mis-built mechanism.
func (c *Cache) Attach(m any) {
	found := false
	if o, ok := m.(AccessObserver); ok {
		c.accessObs = append(c.accessObs, o)
		found = true
	}
	if p, ok := m.(AuxProber); ok {
		c.probers = append(c.probers, p)
		found = true
	}
	if e, ok := m.(EvictObserver); ok {
		c.evictObs = append(c.evictObs, e)
		found = true
	}
	if f, ok := m.(FillObserver); ok {
		c.fillObs = append(c.fillObs, f)
		found = true
	}
	if mo, ok := m.(MissObserver); ok {
		c.missObs = append(c.missObs, mo)
		found = true
	}
	if !found {
		panic("cache: Attach called with a value implementing no hook interface")
	}
}

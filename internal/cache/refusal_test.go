package cache

import (
	"math/rand"
	"testing"

	"microlib/internal/sim"
)

// The refusal-hint contract: a caller that jumps straight to the
// hinted retry cycle (RetryAt for timer-bound refusals, the next
// calendar event for event-bound ones) is accepted on exactly the
// same cycle as a caller that re-probes the cache every cycle. The
// cycle-stepping driver is the oracle; the hint-driven driver is what
// the host cores actually do.

// refusalStep is one scripted access: a line address, a write flag,
// and how many idle cycles to wind forward before submitting.
type refusalStep struct {
	addr  uint64
	write bool
	gap   uint64
}

// refusalScript builds a randomized access sequence that exercises
// every refusal reason under a 1-port, 1-MSHR cache: back-to-back
// submits (port + stall conflicts) over a small line pool (hits,
// misses, evictions, merge refusals on the single MSHR).
func refusalScript(rng *rand.Rand, n int) []refusalStep {
	steps := make([]refusalStep, n)
	for i := range steps {
		steps[i] = refusalStep{
			// A small pool spanning several sets of the 1KB cache:
			// revisits hit, conflicts evict, and concurrent misses
			// fight over the single MSHR.
			addr:  uint64(rng.Intn(10)) * 416,
			write: rng.Intn(3) == 0,
			gap:   uint64(rng.Intn(4)),
		}
	}
	return steps
}

// runRefusalScript drives the script against a fresh cache, retrying
// refusals either by stepping one cycle at a time (the oracle) or by
// jumping to the structured hint. It returns the acceptance cycle of
// every access plus the final stats.
func runRefusalScript(t *testing.T, cfg Config, steps []refusalStep, useHints bool) ([]uint64, Stats) {
	t.Helper()
	eng := sim.NewEngine()
	be := &testBackend{eng: eng, delay: 20}
	c := New(eng, cfg, be)
	accepted := make([]uint64, len(steps))
	for i, s := range steps {
		cycle := eng.Now() + s.gap
		eng.AdvanceTo(cycle)
		a := Access{Addr: s.addr, PC: 0x400000 + s.addr, Write: s.write}
		for tries := 0; ; tries++ {
			if tries > 10_000 {
				t.Fatalf("access %d never accepted", i)
			}
			r := c.Access(&a)
			if r.Accepted() {
				break
			}
			if useHints {
				cycle = eng.RetryTarget(cycle, r.RetryAt)
			} else {
				cycle++
			}
			eng.AdvanceTo(cycle)
		}
		accepted[i] = cycle
	}
	// Drain outstanding fills so the Fills/WriteBacks totals settle.
	eng.AdvanceTo(eng.Now() + 100)
	return accepted, c.Stats()
}

// TestRefusalHintOracle asserts the hint-driven retry is accepted on
// exactly the cycle the cycle-stepping oracle is, across randomized
// scripts, with the pipeline stall both on and off. Reject* counters
// legitimately differ (the whole point is fewer refused probes), so
// the comparison covers the accepted-work stats only.
func TestRefusalHintOracle(t *testing.T) {
	cfg := smallConfig()
	cfg.Ports = 1
	cfg.MSHRs = 1
	cfg.ReadsPerMSHR = 1
	for _, noStall := range []bool{false, true} {
		cfg.NoPipelineStall = noStall
		for seed := int64(1); seed <= 12; seed++ {
			steps := refusalScript(rand.New(rand.NewSource(seed)), 200)
			wantCycles, wantStats := runRefusalScript(t, cfg, steps, false)
			gotCycles, gotStats := runRefusalScript(t, cfg, steps, true)
			for i := range steps {
				if gotCycles[i] != wantCycles[i] {
					t.Fatalf("noStall=%v seed=%d access %d: hint-driven accepted at %d, oracle at %d",
						noStall, seed, i, gotCycles[i], wantCycles[i])
				}
			}
			type work struct{ accesses, hits, misses, writes, fills, wbs uint64 }
			got := work{gotStats.Accesses, gotStats.Hits, gotStats.Misses, gotStats.Writes, gotStats.Fills, gotStats.WriteBack}
			want := work{wantStats.Accesses, wantStats.Hits, wantStats.Misses, wantStats.Writes, wantStats.Fills, wantStats.WriteBack}
			if got != want {
				t.Fatalf("noStall=%v seed=%d: accepted-work stats diverged:\n got %+v\nwant %+v", noStall, seed, got, want)
			}
			if gotStats.RejectPort > wantStats.RejectPort ||
				gotStats.RejectStall > wantStats.RejectStall ||
				gotStats.RejectMSHR > wantStats.RejectMSHR {
				t.Fatalf("noStall=%v seed=%d: hint-driven retries probed more than the oracle: got %+v want %+v",
					noStall, seed, gotStats, wantStats)
			}
		}
	}
}

// TestRefusalReasons pins the reason and RetryAt each refusal path
// reports: stall refusals carry the exact stall-lift cycle, port
// refusals the next cycle, and MSHR refusals are event-bound (zero).
func TestRefusalReasons(t *testing.T) {
	cfg := smallConfig()
	cfg.Ports = 1
	cfg.MSHRs = 1
	cfg.ReadsPerMSHR = 1
	eng := sim.NewEngine()
	be := &testBackend{eng: eng, delay: 20}
	c := New(eng, cfg, be)

	// First miss allocates the only MSHR and stalls the pipeline for a
	// cycle (the stall gate precedes the port gate).
	if r := c.Access(&Access{Addr: 0x1000}); !r.Accepted() {
		t.Fatalf("first miss refused: %+v", r)
	}
	// Same cycle, second access: refused by the pipeline stall, with
	// the exact lift cycle as the hint.
	if r := c.Access(&Access{Addr: 0x2000}); r.Reason != RefuseStall || r.RetryAt != eng.Now()+2 {
		t.Fatalf("want stall refusal with exact RetryAt, got %+v", r)
	}
	// At the stall lift, the miss on a second line passes the stall
	// and port gates but finds no MSHR: event-bound, no timer hint.
	eng.AdvanceTo(2)
	if r := c.Access(&Access{Addr: 0x2000}); r.Reason != RefuseMSHR || !r.EventBound() || r.RetryAt != 0 {
		t.Fatalf("want event-bound MSHR refusal, got %+v", r)
	}
	// That refused probe consumed the cycle's only port; a third
	// attempt the same cycle is port-refused, retriable next cycle.
	if r := c.Access(&Access{Addr: 0x2000}); r.Reason != RefusePort || r.RetryAt != eng.Now()+1 {
		t.Fatalf("want port refusal retriable next cycle, got %+v", r)
	}
}

package cache

import (
	"fmt"

	"microlib/internal/sim"
)

// This file serializes a cache's mutable state for warm-state
// checkpointing. Configuration (geometry, latencies, policy flags,
// observer wiring) is reproduced by reconstruction; State carries only
// what mutates during simulation. In-flight callbacks — MSHR targets,
// redirect sinks — are identifiable objects, captured as sim.OpRef
// through the caller's resolver.

// LineState is one cache line in serializable form.
type LineState struct {
	Tag        uint64
	Valid      bool
	Dirty      bool
	Prefetched bool
	LastUse    uint64
}

// MSHRState is one miss-status holding register in serializable form.
type MSHRState struct {
	Valid     bool
	LineAddr  uint64
	FirstAddr uint64
	PC        uint64
	Reads     int
	FillDirty bool
	Prefetch  bool
	Issued    bool
	Redirect  sim.OpRef
	Targets   []sim.OpRef
}

// PrefetchReqState is one queued prefetch request.
type PrefetchReqState struct {
	LineAddr uint64
	Redirect sim.OpRef
}

// State is the full mutable state of a Cache. Lines is row-major over
// (set, way), exactly NumSets*Ways entries.
type State struct {
	Lines      []LineState
	UseTick    uint64
	StallUntil uint64
	PortCycle  uint64
	PortsUsed  int
	MSHRs      []MSHRState
	PQ         []PrefetchReqState
	PQRetryArm bool
	Stats      Stats
}

// State captures the cache's mutable state. resolve maps in-flight
// callback sinks to serializable references; it must recognize every
// sink that can be parked in this cache's MSHRs or prefetch queue.
func (c *Cache) State(resolve func(any) (sim.OpRef, bool)) (State, error) {
	st := State{
		UseTick:    c.useTick,
		StallUntil: c.stallUntil,
		PortCycle:  c.portCycle,
		PortsUsed:  c.portsUsed,
		PQRetryArm: c.pqRetryArm,
		Stats:      c.stats,
	}
	st.Lines = make([]LineState, 0, len(c.sets)*len(c.sets[0]))
	for _, set := range c.sets {
		for i := range set {
			ln := &set[i]
			st.Lines = append(st.Lines, LineState{
				Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty,
				Prefetched: ln.prefetched, LastUse: ln.lastUse,
			})
		}
	}
	st.MSHRs = make([]MSHRState, len(c.mshrs))
	for i := range c.mshrs {
		e := &c.mshrs[i]
		m := MSHRState{
			Valid: e.valid, LineAddr: e.lineAddr, FirstAddr: e.firstAddr,
			PC: e.pc, Reads: e.reads, FillDirty: e.fillDirty,
			Prefetch: e.prefetch, Issued: e.issued,
		}
		if e.redirect != nil {
			r, ok := resolve(e.redirect)
			if !ok {
				return State{}, fmt.Errorf("cache %s: unresolvable MSHR redirect %T", c.cfg.Name, e.redirect)
			}
			m.Redirect = r
		}
		if len(e.targets) > 0 {
			m.Targets = make([]sim.OpRef, len(e.targets))
			for j, t := range e.targets {
				r, ok := resolve(t)
				if !ok {
					return State{}, fmt.Errorf("cache %s: unresolvable MSHR target %T", c.cfg.Name, t)
				}
				m.Targets[j] = r
			}
		}
		st.MSHRs[i] = m
	}
	if n := c.pqLen(); n > 0 {
		st.PQ = make([]PrefetchReqState, 0, n)
		for i := c.pqHead; i < len(c.pq); i++ {
			p := PrefetchReqState{LineAddr: c.pq[i].lineAddr}
			if c.pq[i].redirect != nil {
				r, ok := resolve(c.pq[i].redirect)
				if !ok {
					return State{}, fmt.Errorf("cache %s: unresolvable prefetch redirect %T", c.cfg.Name, c.pq[i].redirect)
				}
				p.Redirect = r
			}
			st.PQ = append(st.PQ, p)
		}
	}
	return st, nil
}

// SetState overwrites the cache's mutable state from a snapshot taken
// on an identically-configured cache, resolving callback references
// back to live sinks. Backing arrays (MSHR target slices, the prefetch
// queue) are reused, so steady-state restores do not allocate.
func (c *Cache) SetState(st State, resolve func(sim.OpRef) (any, bool)) error {
	want := len(c.sets) * len(c.sets[0])
	if len(st.Lines) != want {
		return fmt.Errorf("cache %s: snapshot has %d lines, geometry needs %d", c.cfg.Name, len(st.Lines), want)
	}
	k := 0
	for _, set := range c.sets {
		for i := range set {
			ls := &st.Lines[k]
			set[i] = line{
				tag: ls.Tag, valid: ls.Valid, dirty: ls.Dirty,
				prefetched: ls.Prefetched, lastUse: ls.LastUse,
			}
			k++
		}
	}
	c.useTick = st.UseTick
	c.stallUntil = st.StallUntil
	c.portCycle = st.PortCycle
	c.portsUsed = st.PortsUsed
	c.pqRetryArm = st.PQRetryArm
	c.stats = st.Stats

	// The MSHR pool may have grown past its configured size under
	// InfiniteMSHR; match the snapshot's length, keeping recycled
	// entries (and their targets capacity) where possible.
	if len(st.MSHRs) < len(c.mshrs) {
		for i := len(st.MSHRs); i < len(c.mshrs); i++ {
			c.mshrs[i].clear()
		}
		c.mshrs = c.mshrs[:len(st.MSHRs)]
	}
	for len(c.mshrs) < len(st.MSHRs) {
		if !c.cfg.InfiniteMSHR {
			return fmt.Errorf("cache %s: snapshot has %d MSHRs, config allows %d", c.cfg.Name, len(st.MSHRs), len(c.mshrs))
		}
		c.mshrs = append(c.mshrs, mshrEntry{})
	}
	c.mshrsIn = 0
	for i := range st.MSHRs {
		m := &st.MSHRs[i]
		e := &c.mshrs[i]
		e.clear()
		e.valid = m.Valid
		e.lineAddr = m.LineAddr
		e.firstAddr = m.FirstAddr
		e.pc = m.PC
		e.reads = m.Reads
		e.fillDirty = m.FillDirty
		e.prefetch = m.Prefetch
		e.issued = m.Issued
		if !m.Redirect.IsZero() {
			v, ok := resolve(m.Redirect)
			if !ok {
				return fmt.Errorf("cache %s: unresolvable MSHR redirect ref %v", c.cfg.Name, m.Redirect)
			}
			rs, ok := v.(RedirectSink)
			if !ok {
				return fmt.Errorf("cache %s: ref %v is %T, not a RedirectSink", c.cfg.Name, m.Redirect, v)
			}
			e.redirect = rs
		}
		for _, tr := range m.Targets {
			v, ok := resolve(tr)
			if !ok {
				return fmt.Errorf("cache %s: unresolvable MSHR target ref %v", c.cfg.Name, tr)
			}
			ds, ok := v.(DoneSink)
			if !ok {
				return fmt.Errorf("cache %s: ref %v is %T, not a DoneSink", c.cfg.Name, tr, v)
			}
			e.targets = append(e.targets, ds)
		}
		if e.valid {
			c.mshrsIn++
		}
	}

	for i := range c.pq {
		c.pq[i] = prefetchReq{}
	}
	c.pq = c.pq[:0]
	c.pqHead = 0
	for i := range st.PQ {
		p := &st.PQ[i]
		req := prefetchReq{lineAddr: p.LineAddr}
		if !p.Redirect.IsZero() {
			v, ok := resolve(p.Redirect)
			if !ok {
				return fmt.Errorf("cache %s: unresolvable prefetch redirect ref %v", c.cfg.Name, p.Redirect)
			}
			rs, ok := v.(RedirectSink)
			if !ok {
				return fmt.Errorf("cache %s: ref %v is %T, not a RedirectSink", c.cfg.Name, p.Redirect, v)
			}
			req.redirect = rs
		}
		c.pq = append(c.pq, req)
	}
	return nil
}

func init() {
	sim.RegisterFunc("cache.retryIssueFetch", retryIssueFetch)
	sim.RegisterFunc("cache.retryWriteBack", retryWriteBack)
	sim.RegisterFunc("cache.callDoneHit", callDoneHit)
	sim.RegisterFunc("cache.firePrefetchRetry", firePrefetchRetry)
}

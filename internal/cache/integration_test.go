package cache

import (
	"testing"

	"microlib/internal/sim"
)

// flakyBackend refuses a configurable number of times before
// accepting, exercising the retry paths.
type flakyBackend struct {
	eng           *sim.Engine
	refuseFetch   int
	refuseWB      int
	fetches, wbs  int
	completeDelay uint64
}

func (b *flakyBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink FillSink) bool {
	if b.refuseFetch > 0 {
		b.refuseFetch--
		return false
	}
	b.fetches++
	b.eng.After(b.completeDelay, func() { sink.FillLine(lineAddr, b.eng.Now()) })
	return true
}

func (b *flakyBackend) WriteBack(lineAddr uint64) bool {
	if b.refuseWB > 0 {
		b.refuseWB--
		return false
	}
	b.wbs++
	return true
}

func (b *flakyBackend) FreeAtHint() uint64 { return b.eng.Now() + 1 }

// TestFetchRetriesOnBackpressure: a refused fetch is retried until
// the backend accepts, and the access still completes.
func TestFetchRetriesOnBackpressure(t *testing.T) {
	eng := sim.NewEngine()
	be := &flakyBackend{eng: eng, refuseFetch: 5, completeDelay: 10}
	c := New(eng, smallConfig(), be)
	done := false
	if !c.Access(&Access{Addr: 0x1000, Done: DoneFunc(func(uint64, bool) { done = true })}).Accepted() {
		t.Fatal("access refused")
	}
	eng.AdvanceTo(200)
	if !done {
		t.Fatal("access never completed despite retries")
	}
	if be.fetches != 1 {
		t.Fatalf("fetches %d", be.fetches)
	}
}

// TestWriteBackRetries: a refused write-back is retried, never lost.
func TestWriteBackRetries(t *testing.T) {
	eng := sim.NewEngine()
	be := &flakyBackend{eng: eng, refuseWB: 3, completeDelay: 5}
	c := New(eng, smallConfig(), be)
	// Dirty a line, then evict it.
	c.Access(&Access{Addr: 0x1000, Write: true})
	eng.AdvanceTo(50)
	c.Access(&Access{Addr: 0x1000 + 1024})
	eng.AdvanceTo(200)
	if be.wbs != 1 {
		t.Fatalf("writeback lost under backpressure (%d)", be.wbs)
	}
}

// TestDrainDirtyLRU: only dirty LRU lines are drained, their dirty
// bits clear, and they stay resident.
func TestDrainDirtyLRU(t *testing.T) {
	eng := sim.NewEngine()
	be := &flakyBackend{eng: eng, completeDelay: 5}
	cfg := smallConfig()
	cfg.Assoc = 2
	c := New(eng, cfg, be)

	// Set with a clean MRU and dirty LRU.
	c.Access(&Access{Addr: 0x2000, Write: true}) // will become LRU, dirty
	eng.AdvanceTo(50)
	c.Access(&Access{Addr: 0x2000 + 512}) // same set, clean, MRU
	eng.AdvanceTo(100)

	drained := c.DrainDirtyLRU(64)
	found := false
	for _, la := range drained {
		if la == 0x2000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty LRU not drained: %#x", drained)
	}
	if !c.Contains(0x2000) {
		t.Fatal("drained line evicted")
	}
	if _, dirty, _ := c.Probe(0x2000); dirty {
		t.Fatal("dirty bit not cleared")
	}
	if len(c.DrainDirtyLRU(64)) != 0 {
		t.Fatal("second drain found stale dirty lines")
	}
}

// TestPrefetchAsDemandBypassesIdleGate: with the ablation switch on,
// prefetches are issued even when the backend refuses prefetch-class
// requests.
func TestPrefetchAsDemandBypassesIdleGate(t *testing.T) {
	eng := sim.NewEngine()
	be := &prefetchRefusingBackend{eng: eng}
	c := New(eng, smallConfig(), be)
	c.Prefetch(0x4000)
	eng.AdvanceTo(100)
	if be.prefetchFetches != 0 {
		t.Fatal("gated prefetch got through without the switch")
	}
	c.SetPrefetchAsDemand(true)
	c.Prefetch(0x5000)
	eng.AdvanceTo(200)
	if be.demandFetches == 0 {
		t.Fatal("prefetch-as-demand never issued")
	}
}

type prefetchRefusingBackend struct {
	eng             *sim.Engine
	prefetchFetches int
	demandFetches   int
}

func (b *prefetchRefusingBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink FillSink) bool {
	if prefetch {
		return false
	}
	b.demandFetches++
	b.eng.After(5, func() { sink.FillLine(lineAddr, b.eng.Now()) })
	return true
}
func (b *prefetchRefusingBackend) WriteBack(lineAddr uint64) bool { return true }
func (b *prefetchRefusingBackend) FreeAtHint() uint64             { return b.eng.Now() + 50 }

package cache

// Prefetch enqueues a prefetch request for lineAddr into this
// cache's mechanism request queue. The request is dropped (and
// counted) when the line is already present or pending, or when the
// queue is full — the paper's Section 3.4 discusses exactly this
// buffer and its size as a second-guessed parameter.
//
// Prefetch requests are strictly lower priority than demand misses:
// they are only issued downstream when the backend reports itself
// idle (Backend.Fetch with prefetch=true refuses otherwise).
func (c *Cache) Prefetch(addr uint64) bool {
	return c.prefetchInto(addr, nil)
}

// PrefetchInto is like Prefetch, but the fill is delivered to sink
// instead of being installed into the cache array. Mechanisms with
// private prefetch buffers (Markov) use this.
func (c *Cache) PrefetchInto(addr uint64, sink func(lineAddr uint64, now uint64)) bool {
	if sink == nil {
		panic("cache: PrefetchInto needs a sink")
	}
	return c.prefetchInto(addr, sink)
}

func (c *Cache) prefetchInto(addr uint64, sink func(lineAddr uint64, now uint64)) bool {
	if c.cfg.PrefetchQueueCap <= 0 {
		c.stats.PrefetchDropped++
		return false
	}
	la := c.LineAddr(addr)
	if c.Contains(la) || c.MissPending(la) || c.queued(la) {
		c.stats.PrefetchDup++
		return false
	}
	if len(c.pq) >= c.cfg.PrefetchQueueCap {
		c.stats.PrefetchDropped++
		return false
	}
	c.pq = append(c.pq, prefetchReq{lineAddr: la, redirect: sink})
	c.drainPrefetch()
	return true
}

func (c *Cache) queued(lineAddr uint64) bool {
	for i := range c.pq {
		if c.pq[i].lineAddr == lineAddr {
			return true
		}
	}
	return false
}

// PrefetchQueueLen reports the number of buffered prefetch requests.
func (c *Cache) PrefetchQueueLen() int { return len(c.pq) }

// drainPrefetch issues queued prefetches while resources allow. It is
// called on enqueue, on every fill completion, and re-arms itself at
// the backend's next-free hint, so no per-cycle polling is needed.
func (c *Cache) drainPrefetch() {
	// Prefetches may hold at most half the MSHRs, so demand misses
	// can always make progress (without this, a busy prefetcher
	// starves the level above into livelock).
	maxPF := c.cfg.MSHRs / 2
	if maxPF < 1 {
		maxPF = 1
	}
	for len(c.pq) > 0 {
		req := c.pq[0]
		la := req.lineAddr
		if c.Contains(la) || c.MissPending(la) {
			c.pq = c.pq[1:]
			c.stats.PrefetchDup++
			continue
		}
		if c.prefetchMSHRs() >= maxPF {
			c.armPrefetchRetry()
			return
		}
		free := c.freeMSHR()
		if free < 0 {
			c.armPrefetchRetry()
			return
		}
		e := &c.mshrs[free]
		*e = mshrEntry{
			valid:     true,
			lineAddr:  la,
			firstAddr: la,
			prefetch:  true,
			redirect:  req.redirect,
		}
		if !c.backend.Fetch(la, 0, !c.prefetchAsDemand, func(t uint64) { c.fill(la, t) }) {
			*e = mshrEntry{}
			c.armPrefetchRetry()
			return
		}
		e.issued = true
		c.mshrsIn++
		c.stats.PrefetchIssued++
		c.pq = c.pq[1:]
	}
}

func (c *Cache) prefetchMSHRs() int {
	n := 0
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].prefetch {
			n++
		}
	}
	return n
}

func (c *Cache) armPrefetchRetry() {
	if c.pqRetryArm {
		return
	}
	c.pqRetryArm = true
	at := c.backend.FreeAtHint()
	if at <= c.eng.Now() {
		at = c.eng.Now() + 1
	}
	c.eng.At(at, func() {
		c.pqRetryArm = false
		c.drainPrefetch()
	})
}

package cache

// Prefetch enqueues a prefetch request for lineAddr into this
// cache's mechanism request queue. The request is dropped (and
// counted) when the line is already present or pending, or when the
// queue is full — the paper's Section 3.4 discusses exactly this
// buffer and its size as a second-guessed parameter.
//
// Prefetch requests are strictly lower priority than demand misses:
// they are only issued downstream when the backend reports itself
// idle (Backend.Fetch with prefetch=true refuses otherwise).
func (c *Cache) Prefetch(addr uint64) bool {
	return c.prefetchInto(addr, nil)
}

// PrefetchInto is like Prefetch, but the fill is delivered to sink
// instead of being installed into the cache array. Mechanisms with
// private prefetch buffers (Markov) use this.
func (c *Cache) PrefetchInto(addr uint64, sink RedirectSink) bool {
	if sink == nil {
		panic("cache: PrefetchInto needs a sink")
	}
	return c.prefetchInto(addr, sink)
}

func (c *Cache) prefetchInto(addr uint64, sink RedirectSink) bool {
	if c.cfg.PrefetchQueueCap <= 0 {
		c.stats.PrefetchDropped++
		return false
	}
	la := c.LineAddr(addr)
	if c.Contains(la) || c.MissPending(la) || c.queued(la) {
		c.stats.PrefetchDup++
		return false
	}
	if c.pqLen() >= c.cfg.PrefetchQueueCap {
		c.stats.PrefetchDropped++
		return false
	}
	c.pqPush(prefetchReq{lineAddr: la, redirect: sink})
	c.drainPrefetch()
	return true
}

// --- head-indexed FIFO over a reused backing array -------------------

func (c *Cache) pqLen() int { return len(c.pq) - c.pqHead }

func (c *Cache) pqPush(r prefetchReq) {
	if c.pqHead > 0 && len(c.pq) == cap(c.pq) {
		// Compact the live region into the recycled backing array
		// instead of letting append allocate a bigger one.
		n := copy(c.pq, c.pq[c.pqHead:])
		for i := n; i < len(c.pq); i++ {
			c.pq[i] = prefetchReq{}
		}
		c.pq = c.pq[:n]
		c.pqHead = 0
	}
	c.pq = append(c.pq, r)
}

func (c *Cache) pqPop() {
	c.pq[c.pqHead] = prefetchReq{}
	c.pqHead++
	if c.pqHead == len(c.pq) {
		c.pq = c.pq[:0]
		c.pqHead = 0
	}
}

func (c *Cache) queued(lineAddr uint64) bool {
	for i := c.pqHead; i < len(c.pq); i++ {
		if c.pq[i].lineAddr == lineAddr {
			return true
		}
	}
	return false
}

// PrefetchQueueLen reports the number of buffered prefetch requests.
func (c *Cache) PrefetchQueueLen() int { return c.pqLen() }

// drainPrefetch issues queued prefetches while resources allow. It is
// called on enqueue, on every fill completion, and re-arms itself at
// the backend's next-free hint, so no per-cycle polling is needed.
func (c *Cache) drainPrefetch() {
	// Prefetches may hold at most half the MSHRs, so demand misses
	// can always make progress (without this, a busy prefetcher
	// starves the level above into livelock).
	maxPF := c.cfg.MSHRs / 2
	if maxPF < 1 {
		maxPF = 1
	}
	for c.pqLen() > 0 {
		req := c.pq[c.pqHead]
		la := req.lineAddr
		if c.Contains(la) || c.MissPending(la) {
			c.pqPop()
			c.stats.PrefetchDup++
			continue
		}
		if c.prefetchMSHRs() >= maxPF {
			c.armPrefetchRetry()
			return
		}
		free := c.freeMSHR()
		if free < 0 {
			c.armPrefetchRetry()
			return
		}
		e := &c.mshrs[free]
		e.valid = true
		e.lineAddr = la
		e.firstAddr = la
		e.prefetch = true
		e.redirect = req.redirect
		if !c.backend.Fetch(la, 0, !c.prefetchAsDemand, c) {
			e.clear()
			c.armPrefetchRetry()
			return
		}
		e.issued = true
		c.mshrsIn++
		c.stats.PrefetchIssued++
		c.pqPop()
	}
}

func (c *Cache) prefetchMSHRs() int {
	n := 0
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].prefetch {
			n++
		}
	}
	return n
}

func (c *Cache) armPrefetchRetry() {
	if c.pqRetryArm {
		return
	}
	c.pqRetryArm = true
	at := c.backend.FreeAtHint()
	if at <= c.eng.Now() {
		at = c.eng.Now() + 1
	}
	c.eng.AtFunc(at, firePrefetchRetry, c, nil, 0, 0)
}

func firePrefetchRetry(_ uint64, o1, _ any, _, _ uint64) {
	c := o1.(*Cache)
	c.pqRetryArm = false
	c.drainPrefetch()
}

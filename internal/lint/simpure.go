package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Simpure returns the simulation-purity analyzer rooted at the
// simulated-machine packages: those packages and every module
// package they transitively import must be replayable, because a
// single wall-clock read or global-PRNG draw makes cells
// non-replayable and breaks both the content-addressed cell cache
// and warm-state checkpointing. Findings: calls to nondeterminism
// sources (time.Now and friends, global math/rand, environment
// reads) and map-order-dependent selection (the detorder loop rules,
// reported under this analyzer's name).
func Simpure(roots []string) *Analyzer {
	a := &Analyzer{
		Name: "simpure",
		Doc:  "forbids nondeterminism sources in packages reachable from the simulated machine",
	}
	a.Run = func(u *Unit) error {
		protected := u.Prog.moduleClosure(roots)
		paths := make([]string, 0, len(protected))
		for p := range protected {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, path := range paths {
			pkg := u.Prog.ByPath[path]
			if pkg == nil {
				continue // dep outside the loaded target set
			}
			checkPurity(u, pkg)
			checkMapOrder(u, pkg)
		}
		return nil
	}
	return a
}

// impureFuncs maps forbidden package-level functions to what they
// break. Keys are full import-path-qualified names.
var impureFuncs = map[string]string{
	"time.Now":       "reads the wall clock",
	"time.Since":     "reads the wall clock",
	"time.Until":     "reads the wall clock",
	"time.After":     "schedules on the wall clock",
	"time.Tick":      "schedules on the wall clock",
	"time.NewTimer":  "schedules on the wall clock",
	"time.NewTicker": "schedules on the wall clock",
	"os.Getenv":      "reads the environment",
	"os.LookupEnv":   "reads the environment",
	"os.Environ":     "reads the environment",
	"os.Hostname":    "depends on the host",
	"os.Getpid":      "depends on the host",
}

// impureRandFuncs are the math/rand (and v2) package-level functions
// driven by the shared global source. Seeded *rand.Rand values
// (rand.New, rand.NewSource) stay legal: the module's PRNG wrappers
// are built on them.
var impureRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"UintN": true, "Uint": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
}

// checkPurity flags calls to nondeterminism sources in one package.
func checkPurity(u *Unit, pkg *Package) {
	for _, f := range pkg.Syntax {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pkg, ast.Unparen(call.Fun))
			if fn == nil {
				return true
			}
			if why := impureWhy(fn); why != "" {
				u.Reportf(pkg, call.Pos(), "%s %s; simulated-machine code must be a pure function of its inputs (replay, cell cache and checkpointing depend on it)",
					pkgDotName(fn), why)
			}
			return true
		})
	}
}

// impureWhy classifies a callee as a nondeterminism source.
func impureWhy(fn *types.Func) string {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	switch pkgPath {
	case "time", "os":
		if why, ok := impureFuncs[pkgDotName(fn)]; ok {
			return why
		}
	case "math/rand", "math/rand/v2":
		// Only package-level functions: methods on a seeded
		// *rand.Rand receiver are deterministic.
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() == nil && impureRandFuncs[fn.Name()] {
			return "draws from the global math/rand source"
		}
	}
	return ""
}

package lint

import (
	"go/ast"
	"go/types"
)

// funcNode is one module function with a body, addressable by its
// stable key (types.Func.FullName of its generic origin).
type funcNode struct {
	key  string
	decl *ast.FuncDecl
	pkg  *Package
	// calls are statically resolved callee keys (direct calls plus
	// references — a function whose address hot code takes is
	// conservatively treated as called by it, which is exactly how
	// the kernel's AtFunc trampolines run).
	calls []string
	// ifaceCalls are method names invoked through an interface value;
	// the walk expands them to every same-name, same-arity method in
	// the program (a cheap class-hierarchy approximation).
	ifaceCalls []ifaceCall
}

type ifaceCall struct {
	name  string
	arity int
}

// callGraph indexes every declared function in the loaded targets.
type callGraph struct {
	nodes map[string]*funcNode
	// methodsByName maps a method name to the keys of all declared
	// methods with that name, for interface-call expansion.
	methodsByName map[string][]string
}

// funcKey names a function stably across packages. Generic
// instantiations collapse onto their origin declaration.
func funcKey(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// buildCallGraph walks every target package once.
func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{nodes: map[string]*funcNode{}, methodsByName: map[string][]string{}}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &funcNode{key: funcKey(obj), decl: fd, pkg: pkg}
				collectEdges(pkg, fd, node)
				g.nodes[node.key] = node
				if fd.Recv != nil {
					g.methodsByName[fd.Name.Name] = append(g.methodsByName[fd.Name.Name], node.key)
				}
			}
		}
	}
	return g
}

// collectEdges records fd's callees and function references.
func collectEdges(pkg *Package, fd *ast.FuncDecl, node *funcNode) {
	// funPos marks expressions standing in call position so the
	// reference walk below does not double-count them.
	funPos := map[ast.Expr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		funPos[fun] = true
		if fn := calleeOf(pkg, fun); fn != nil {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Recv() != nil {
				if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); isIface {
					node.ifaceCalls = append(node.ifaceCalls, ifaceCall{name: fn.Name(), arity: sig.Params().Len()})
					return true
				}
			}
			node.calls = append(node.calls, funcKey(fn))
		}
		return true
	})
	// References: a *types.Func used outside call position (stored in
	// a table, passed to AtFunc, ...) is reachable once the enclosing
	// function is.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		var obj types.Object
		switch e := n.(type) {
		case *ast.Ident:
			if funPos[e] {
				return true
			}
			obj = pkg.Info.Uses[e]
		case *ast.SelectorExpr:
			if funPos[e] {
				return true
			}
			obj = pkg.Info.Uses[e.Sel]
			// Descend: the X side may itself contain references.
		default:
			return true
		}
		if fn, ok := obj.(*types.Func); ok {
			node.calls = append(node.calls, funcKey(fn))
		}
		return true
	})
}

// calleeOf resolves a call's target to a *types.Func, or nil for
// builtins, type conversions and calls of plain function values.
func calleeOf(pkg *Package, fun ast.Expr) *types.Func {
	switch e := fun.(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[e]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.F.
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// reachable returns every node reachable from the root keys,
// expanding interface calls by method name and arity.
func (g *callGraph) reachable(roots []string) map[string]*funcNode {
	out := map[string]*funcNode{}
	var visit func(string)
	visit = func(key string) {
		node, ok := g.nodes[key]
		if !ok || out[key] != nil {
			return
		}
		out[key] = node
		for _, c := range node.calls {
			visit(c)
		}
		for _, ic := range node.ifaceCalls {
			for _, mk := range g.methodsByName[ic.name] {
				if m := g.nodes[mk]; m != nil && paramCount(m.decl) == ic.arity {
					visit(mk)
				}
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return out
}

// paramCount counts individual parameters (a, b int counts two).
func paramCount(fd *ast.FuncDecl) int {
	n := 0
	for _, f := range fd.Type.Params.List {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked analysis target.
type Package struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Imports    []string

	Syntax []*ast.File
	Types  *types.Package
	Info   *types.Info

	fset   *token.FileSet
	annots *annots // lazily built by annotations()
}

// Program is a loaded set of analysis targets plus the module import
// graph the closure-based analyzers walk.
type Program struct {
	Fset *token.FileSet
	// Packages are the pattern-matched targets, type-checked from
	// source, sorted by import path.
	Packages []*Package
	// ByPath indexes Packages.
	ByPath map[string]*Package
	// ModulePath is the containing module's path ("microlib").
	ModulePath string
	// ModuleImports maps every module package seen during the load
	// (targets and deps) to its module-internal imports.
	ModuleImports map[string][]string
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
}

// Load lists patterns with the go command and type-checks every
// matched package from source. Dependencies — the standard library
// and, when the pattern selects a subset, other module packages —
// are imported from compiler export data (`go list -export`), so a
// whole-module load only parses module source. dir anchors the go
// command; "" means the current directory (which must be inside the
// module).
func Load(dir string, patterns ...string) (*Program, error) {
	args := append([]string{
		"list", "-e", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,Export,Standard,DepOnly,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	var pkgs []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPkg)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}

	prog := &Program{
		Fset:          token.NewFileSet(),
		ByPath:        map[string]*Package{},
		ModuleImports: map[string][]string{},
	}
	exports := map[string]string{}
	var targets []*listPkg
	for _, lp := range pkgs {
		if lp.Error != nil && !lp.DepOnly {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if lp.Module != nil && !lp.Standard {
			if prog.ModulePath == "" && !lp.DepOnly {
				prog.ModulePath = lp.Module.Path
			}
			var in []string
			for _, imp := range lp.Imports {
				if strings.HasPrefix(imp, lp.Module.Path+"/") || imp == lp.Module.Path {
					in = append(in, imp)
				}
			}
			prog.ModuleImports[lp.ImportPath] = in
		}
		if !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, k int) bool { return targets[i].ImportPath < targets[k].ImportPath })

	imp := importer.ForCompiler(prog.Fset, "gc", func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (does it compile?)", path)
		}
		return os.Open(exp)
	})

	for _, lp := range targets {
		pkg, err := check(prog.Fset, imp, lp)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
		prog.ByPath[pkg.ImportPath] = pkg
	}
	return prog, nil
}

// check parses and type-checks one package from source.
func check(fset *token.FileSet, imp types.Importer, lp *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var errs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := conf.Check(lp.ImportPath, fset, files, info)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for _, e := range errs {
			msgs = append(msgs, e.Error())
			if len(msgs) == 5 {
				msgs = append(msgs, "...")
				break
			}
		}
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s", lp.ImportPath, strings.Join(msgs, "\n  "))
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		GoFiles:    lp.GoFiles,
		Imports:    lp.Imports,
		Syntax:     files,
		Types:      tpkg,
		Info:       info,
		fset:       fset,
	}, nil
}

// moduleClosure returns roots plus every module package transitively
// imported by them, using the import graph captured at load time.
func (p *Program) moduleClosure(roots []string) map[string]bool {
	seen := map[string]bool{}
	var visit func(string)
	visit = func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		for _, imp := range p.ModuleImports[path] {
			visit(imp)
		}
	}
	for _, r := range roots {
		visit(r)
	}
	return seen
}

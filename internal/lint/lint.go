// Package lint is mlvet's static-analysis suite: four analyzers that
// turn the repo's three load-bearing runtime invariants into
// compile-time properties.
//
//   - detorder: no output, fingerprint or journal byte may depend on
//     Go map iteration order in the determinism-critical packages
//     (campaign planning/aggregation/status, runner canonicalization,
//     cfgreg table generation, telemetry formatters).
//   - simpure: the simulated-machine packages (sim, cpu, cache, mem,
//     bus, hier, workload and everything they import in-module) must
//     stay replayable — no wall clock, no global PRNG, no environment
//     reads, no map-order-dependent selection.
//   - hotalloc: the call-graph reachable from //ml:hotpath roots (the
//     event kernel's schedule/dispatch, cache access, core step
//     functions) must not contain allocating constructs; the runtime
//     0-allocs bench gate becomes a per-commit static check that
//     names the offending line.
//   - errkind: errors on scheduler worker paths (//ml:worker roots)
//     must be classified CellErrors, and panics in those packages are
//     only legal under a deferred recover.
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer/Pass/Diagnostic, testdata fixtures with "want" comments)
// but is self-contained: the build environment pins no external
// modules, so the loader in load.go feeds the analyzers from `go
// list -export` plus go/types directly.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Analyzer is one named check over a loaded Program.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and waiver comments
	// (//ml:waive <name> -- reason).
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run inspects the whole program (analyzers that need call graphs
	// or import closures see everything; package-scoped analyzers
	// filter internally) and reports findings through the Unit.
	Run func(u *Unit) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Unit is one analyzer's view of a loaded program plus its report
// sink. Reportf drops findings waived by an annotation comment (see
// annot.go), so analyzers report unconditionally and waivers stay
// centralized.
type Unit struct {
	Prog     *Program
	Analyzer *Analyzer
	sink     func(Diagnostic)
}

// Reportf files a finding at pos unless a waiver comment for this
// analyzer covers the position's line.
func (u *Unit) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p := u.Prog.Fset.Position(pos)
	if pkg != nil && pkg.annotations(u.Prog.Fset).waived(u.Analyzer.Name, p) {
		return
	}
	u.sink(Diagnostic{Pos: p, Analyzer: u.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Stats summarizes a run for meta-tests and the CLI: losing every
// //ml:hotpath annotation must be loud, not a silently empty check.
type Stats struct {
	Packages    int
	HotRoots    int
	WorkerRoots int
	Findings    map[string]int
}

// Run executes the analyzers over prog and returns position-sorted
// diagnostics. Malformed //ml: annotations are reported under the
// pseudo-analyzer "annotation" so a typo'd waiver can never silently
// disable a check.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, Stats, error) {
	var diags []Diagnostic
	sink := func(d Diagnostic) { diags = append(diags, d) }

	stats := Stats{Packages: len(prog.Packages), Findings: map[string]int{}}
	for _, pkg := range prog.Packages {
		an := pkg.annotations(prog.Fset)
		stats.HotRoots += len(an.hotRoots)
		stats.WorkerRoots += len(an.workerRoots)
		for _, bad := range an.malformed {
			sink(Diagnostic{Pos: bad.pos, Analyzer: "annotation", Message: bad.msg})
		}
	}

	for _, a := range analyzers {
		u := &Unit{Prog: prog, Analyzer: a, sink: sink}
		if err := a.Run(u); err != nil {
			return nil, stats, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}

	sort.Slice(diags, func(i, k int) bool {
		a, b := diags[i], diags[k]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		stats.Findings[d.Analyzer]++
	}
	return diags, stats, nil
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Hotalloc returns the zero-alloc analyzer: a call-graph walk from
// every //ml:hotpath-annotated root rejects allocating constructs in
// the reachable set, turning the runtime 0-allocs/op bench gate into
// a per-commit static check that names the offending line.
//
// Flagged in reachable functions:
//
//   - make/new and &CompositeLit (heap candidates),
//   - func literals (closure allocation; the kernel's AtFunc packed
//     trampolines exist precisely to avoid them),
//   - append, except the amortized reuse form `x = append(x, ...)`
//     where x is a field or package-level variable — a persistent
//     buffer that stops allocating once capacity is reached, the
//     shape the runtime bench gate verifies,
//   - boxing a non-pointer-shaped value into an interface,
//   - calls into known-allocating stdlib (fmt, errors.New, sort,
//     most of strings/bytes, non-Append strconv formatting).
//
// panic subtrees are exempt: a panicking cell is already dead, and
// the watchdog's formatted message is worth more than its one-off
// allocation. Static analysis cannot see escape analysis; `mlvet
// -escapes` diffs the compiler's own -m output against a checked-in
// baseline for the cases this approximation misses.
//
// Reachability is static calls plus address-taken functions (the
// AtFunc trampolines), with interface calls expanded by method name
// and arity. Waive cold sub-paths (pool refill, one-time growth)
// with `//ml:waive hotalloc -- <reason>`.
func Hotalloc() *Analyzer {
	a := &Analyzer{
		Name: "hotalloc",
		Doc:  "rejects allocating constructs reachable from //ml:hotpath roots",
	}
	a.Run = func(u *Unit) error {
		g := buildCallGraph(u.Prog)
		var roots []string
		for _, pkg := range u.Prog.Packages {
			an := pkg.annotations(u.Prog.Fset)
			for fd := range an.hotRoots {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, funcKey(obj))
				}
			}
		}
		sort.Strings(roots)
		hot := g.reachable(roots)
		keys := make([]string, 0, len(hot))
		for k := range hot {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			checkHotFunc(u, hot[k])
		}
		return nil
	}
	return a
}

// checkHotFunc flags allocating constructs in one reachable function.
func checkHotFunc(u *Unit, node *funcNode) {
	pkg := node.pkg
	blessed := blessedAppends(pkg, node.decl.Body)
	stackLits := nonEscapingFuncLits(pkg, node.decl.Body)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch e := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "panic":
						return // death path: the message may format freely
					case "make":
						u.Reportf(pkg, e.Pos(), "make on a hot path (reachable from //ml:hotpath roots) allocates")
					case "new":
						u.Reportf(pkg, e.Pos(), "new on a hot path (reachable from //ml:hotpath roots) allocates")
					case "append":
						if !blessed[e] {
							u.Reportf(pkg, e.Pos(), "append on a hot path may grow and allocate (amortized `x = append(x, ...)` into a field or package-level buffer is exempt)")
						}
					}
				}
			}
			if fn := calleeOf(pkg, ast.Unparen(e.Fun)); fn != nil {
				if why := allocCallWhy(fn); why != "" {
					u.Reportf(pkg, e.Pos(), "%s on a hot path %s", pkgDotName(fn), why)
				}
			}
			checkBoxing(u, pkg, e)
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					u.Reportf(pkg, e.Pos(), "&composite-literal on a hot path allocates when it escapes")
				}
			}
		case *ast.FuncLit:
			if !stackLits[e] {
				u.Reportf(pkg, e.Pos(), "closure on a hot path allocates its capture environment (use the AtFunc packed-trampoline shape)")
			}
		}
		children(n, walk)
	}
	walk(node.decl.Body)
}

// children visits n's immediate AST children.
func children(n ast.Node, walk func(ast.Node)) {
	root := true
	ast.Inspect(n, func(c ast.Node) bool {
		if root {
			root = false
			return true
		}
		if c != nil {
			walk(c)
		}
		return false
	})
}

// blessedAppends collects append calls in the amortized reuse shape
// `x = append(x, ...)` where x is a struct field or a package-level
// slice — the persistent-buffer idiom whose steady state the runtime
// bench gate proves allocation-free — plus the filter-in-place idiom
// `kept := field[:0]; kept = append(kept, ...)`, which compacts into
// the persistent backing array and cannot outgrow it.
func blessedAppends(pkg *Package, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	filters := filterLocals(pkg, body)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); !isBuiltin {
			return true
		}
		lhs := ast.Unparen(as.Lhs[0])
		src := ast.Unparen(call.Args[0])
		// `x = append(x[:i], x[i+1:]...)` removal/compaction is the
		// same persistent storage seen through a slice expression.
		if sl, ok := src.(*ast.SliceExpr); ok {
			src = ast.Unparen(sl.X)
		}
		if !sameStorage(pkg, lhs, src) {
			return true
		}
		if persistentStorage(pkg, lhs) {
			out[call] = true
		}
		if id, ok := lhs.(*ast.Ident); ok && filters[identObj(pkg, id)] {
			out[call] = true
		}
		return true
	})
	return out
}

// filterLocals finds locals initialized as `x := persistent[:0]` —
// the filter-in-place cursor whose appends reuse the persistent
// backing array.
func filterLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		sl, ok := ast.Unparen(as.Rhs[0]).(*ast.SliceExpr)
		if !ok || sl.Low != nil || sl.Slice3 {
			return true
		}
		high, ok := ast.Unparen(sl.High).(*ast.BasicLit)
		if !ok || high.Value != "0" {
			return true
		}
		if !persistentStorage(pkg, ast.Unparen(sl.X)) {
			return true
		}
		if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok {
			if obj := identObj(pkg, id); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// nonEscapingFuncLits collects closures passed directly to stdlib
// callees whose func parameter provably does not escape (sort.Search:
// the predicate is called and dropped), so the compiler keeps the
// capture environment on the stack.
func nonEscapingFuncLits(pkg *Package, body *ast.BlockStmt) map[*ast.FuncLit]bool {
	out := map[*ast.FuncLit]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pkg, ast.Unparen(call.Fun))
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "sort" && strings.HasPrefix(fn.Name(), "Search") {
			for _, arg := range call.Args {
				if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
					out[lit] = true
				}
			}
		}
		return true
	})
	return out
}

// sameStorage reports whether two expressions name the same variable
// or field chain (ident / selector / constant-free index chains).
func sameStorage(pkg *Package, a, b ast.Expr) bool {
	switch ea := a.(type) {
	case *ast.Ident:
		eb, ok := b.(*ast.Ident)
		return ok && identObj(pkg, ea) != nil && identObj(pkg, ea) == identObj(pkg, eb)
	case *ast.SelectorExpr:
		eb, ok := b.(*ast.SelectorExpr)
		return ok && ea.Sel.Name == eb.Sel.Name && sameStorage(pkg, ast.Unparen(ea.X), ast.Unparen(eb.X))
	}
	return false
}

// persistentStorage reports whether expr denotes storage that
// outlives the call: a field selector or a package-level variable.
func persistentStorage(pkg *Package, expr ast.Expr) bool {
	switch e := expr.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.Ident:
		obj := identObj(pkg, e)
		v, ok := obj.(*types.Var)
		return ok && v.Parent() == pkg.Types.Scope()
	}
	return false
}

// nonAllocStrings are strings/bytes package-level functions that
// only inspect their inputs.
var nonAllocStrings = map[string]bool{
	"EqualFold": true, "Equal": true, "Compare": true, "Contains": true,
	"ContainsAny": true, "ContainsRune": true, "ContainsFunc": true,
	"Count": true, "Cut": true, "CutPrefix": true, "CutSuffix": true,
	"HasPrefix": true, "HasSuffix": true,
	"Index": true, "IndexAny": true, "IndexByte": true, "IndexRune": true, "IndexFunc": true,
	"LastIndex": true, "LastIndexAny": true, "LastIndexByte": true, "LastIndexFunc": true,
	"TrimSpace": true, "TrimPrefix": true, "TrimSuffix": true, "Trim": true,
	"TrimLeft": true, "TrimRight": true, "TrimFunc": true, "TrimLeftFunc": true, "TrimRightFunc": true,
}

// allocCallWhy classifies a callee as known-allocating stdlib.
func allocCallWhy(fn *types.Func) string {
	p := fn.Pkg()
	if p == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return "" // methods (strings.Builder etc.) are judged by boxing/escapes
	}
	switch p.Path() {
	case "fmt":
		return "formats into fresh storage (and boxes its operands)"
	case "errors":
		if fn.Name() == "New" || fn.Name() == "Join" {
			return "allocates an error value"
		}
	case "sort":
		if !strings.HasPrefix(fn.Name(), "Search") {
			return "allocates its interface adapter"
		}
	case "strings", "bytes":
		if !nonAllocStrings[fn.Name()] {
			return "builds a fresh string/slice"
		}
	case "strconv":
		if !strings.HasPrefix(fn.Name(), "Append") && !strings.HasPrefix(fn.Name(), "Parse") && fn.Name() != "Atoi" {
			return "formats into a fresh string (use the Append variants onto a reused buffer)"
		}
	}
	return ""
}

// checkBoxing flags arguments that box a non-pointer-shaped value
// into an interface parameter, and conversions to interface types.
func checkBoxing(u *Unit, pkg *Package, call *ast.CallExpr) {
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	if tv.IsType() {
		// Conversion: T(x) boxes when T is an interface and x is not
		// pointer-shaped.
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if boxes(pkg, call.Args[0]) {
				u.Reportf(pkg, call.Pos(), "conversion to interface on a hot path boxes a non-pointer value (allocates)")
			}
		}
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(pkg, arg) {
			u.Reportf(pkg, arg.Pos(), "argument boxes a non-pointer value into an interface on a hot path (allocates)")
		}
	}
}

// boxes reports whether passing arg to an interface slot allocates:
// true for concrete values that do not fit the interface data word.
func boxes(pkg *Package, arg ast.Expr) bool {
	tv, ok := pkg.Info.Types[arg]
	if !ok || tv.Type == nil || tv.IsNil() {
		return false
	}
	return !pointerShaped(tv.Type)
}

// pointerShaped reports whether values of t travel in an interface
// without a heap copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return t.Underlying().(*types.Basic).Kind() == types.UnsafePointer
	}
	return false
}

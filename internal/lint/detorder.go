package lint

import (
	"go/ast"
	"go/types"
)

// Detorder returns the determinism-order analyzer scoped to pkgs:
// inside those packages, iterating a map (for-range, maps.Keys/
// Values, reflect MapKeys) is a finding unless the analyzer can see
// the order cannot escape, because any output, fingerprint or
// journal byte derived from map order is a cache-poisoning or
// flaky-golden bug waiting to happen.
//
// Two loop shapes are recognized as safe without a waiver:
//
//   - collect-then-sort: the body is exactly `xs = append(xs, k)`
//     (optionally through a conversion of k) and the function later
//     sorts xs.
//   - keyed writes: every statement in the body (allowing if/block
//     nesting) writes or deletes another map at index k — the result
//     is the same whatever the visit order.
//
// Everything else needs `//ml:commutative -- <reason>`.
func Detorder(pkgs []string) *Analyzer {
	scope := map[string]bool{}
	for _, p := range pkgs {
		scope[p] = true
	}
	a := &Analyzer{
		Name: "detorder",
		Doc:  "flags map-order-dependent iteration in determinism-critical packages",
	}
	a.Run = func(u *Unit) error {
		for _, pkg := range u.Prog.Packages {
			if !scope[pkg.ImportPath] {
				continue
			}
			checkMapOrder(u, pkg)
		}
		return nil
	}
	return a
}

// checkMapOrder applies the map-order rules to one package; shared
// with simpure, which reports under its own name.
func checkMapOrder(u *Unit, pkg *Package) {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sorted := sortedIdents(pkg, fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch e := n.(type) {
				case *ast.RangeStmt:
					if !isMapType(pkg, e.X) {
						return true
					}
					// A keyless `for range m` runs indistinguishable
					// iterations: order cannot matter.
					if e.Key == nil {
						return true
					}
					if blessedCollectSort(pkg, e, sorted) || blessedKeyedWrites(pkg, e) {
						return true
					}
					u.Reportf(pkg, e.Pos(), "map iteration order reaches this loop's effects; sort the keys first or annotate //ml:commutative -- <reason>")
				case *ast.CallExpr:
					checkKeysCall(u, pkg, e, f)
				}
				return true
			})
		}
	}
}

// isMapType reports whether expr has a map type.
func isMapType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// sortedIdents collects the root identifiers passed to a recognized
// sort call anywhere in the body: sort.Strings(xs), sort.Slice(xs,
// ...), slices.Sort(xs), sort.Sort(byX(xs)), ...
func sortedIdents(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if !isSortCall(pkg, call) {
			return true
		}
		// The sorted value is the first argument, possibly wrapped in
		// a conversion (sort.Sort(byLen(xs))).
		arg := ast.Unparen(call.Args[0])
		if inner, ok := arg.(*ast.CallExpr); ok && len(inner.Args) == 1 {
			arg = ast.Unparen(inner.Args[0])
		}
		if id, ok := arg.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// sortFuncs are the package-level sorting entry points we accept.
var sortFuncs = map[string]bool{
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortedFuncs consume an unordered sequence and return it sorted, so
// a maps.Keys call directly inside them is safe.
var sortedFuncs = map[string]bool{
	"slices.Sorted": true, "slices.SortedFunc": true, "slices.SortedStableFunc": true,
}

func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeOf(pkg, ast.Unparen(call.Fun))
	return fn != nil && sortFuncs[pkgDotName(fn)]
}

// pkgDotName renders "sort.Strings" style keys for package-level
// functions (last path element, so vendored or versioned paths match).
func pkgDotName(fn *types.Func) string {
	p := fn.Pkg()
	if p == nil {
		return fn.Name()
	}
	path := p.Path()
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			path = path[i+1:]
			break
		}
	}
	return path + "." + fn.Name()
}

// blessedCollectSort matches `for k := range m { xs = append(xs, k) }`
// with xs sorted later in the same function.
func blessedCollectSort(pkg *Package, rs *ast.RangeStmt, sorted map[types.Object]bool) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	as, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	lhs, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); !ok || dst.Name != lhs.Name {
		return false
	}
	if !usesLoopKeyOnly(pkg, rs, call.Args[1]) {
		return false
	}
	return sorted[pkg.Info.Defs[lhs]] || sorted[pkg.Info.Uses[lhs]]
}

// usesLoopKeyOnly reports whether expr is the range key, possibly
// through a single-argument conversion or call (string(k), shortKey(k)).
func usesLoopKeyOnly(pkg *Package, rs *ast.RangeStmt, expr ast.Expr) bool {
	key, ok := ast.Unparen(rs.Key).(*ast.Ident)
	if !ok {
		return false
	}
	e := ast.Unparen(expr)
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		e = ast.Unparen(call.Args[0])
	}
	id, ok := e.(*ast.Ident)
	return ok && id.Name == key.Name && pkg.Info.Uses[id] == identObj(pkg, key)
}

// identObj resolves an identifier whether it defines or uses its
// object (range keys may be := definitions or plain assignments).
func identObj(pkg *Package, id *ast.Ident) types.Object {
	if o := pkg.Info.Defs[id]; o != nil {
		return o
	}
	return pkg.Info.Uses[id]
}

// blessedKeyedWrites matches bodies whose every leaf statement is a
// write to (or delete from) a map indexed by the loop key: each key
// touches its own slot, so visit order cannot matter.
func blessedKeyedWrites(pkg *Package, rs *ast.RangeStmt) bool {
	key, ok := ast.Unparen(rs.Key).(*ast.Ident)
	if !ok {
		return false
	}
	keyObj := identObj(pkg, key)
	var check func(stmts []ast.Stmt) bool
	keyed := func(e ast.Expr) bool {
		ix, ok := ast.Unparen(e).(*ast.IndexExpr)
		if !ok || !isMapType(pkg, ix.X) {
			return false
		}
		id, ok := ast.Unparen(ix.Index).(*ast.Ident)
		return ok && pkg.Info.Uses[id] == keyObj
	}
	check = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch st := s.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) != 1 || !keyed(st.Lhs[0]) {
					return false
				}
			case *ast.ExprStmt:
				call, ok := ast.Unparen(st.X).(*ast.CallExpr)
				if !ok || len(call.Args) != 2 {
					return false
				}
				fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || fun.Name != "delete" {
					return false
				}
				id, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
				if !ok || pkg.Info.Uses[id] != keyObj {
					return false
				}
			case *ast.IfStmt:
				if !check(st.Body.List) {
					return false
				}
				if st.Else != nil {
					switch el := st.Else.(type) {
					case *ast.BlockStmt:
						if !check(el.List) {
							return false
						}
					case *ast.IfStmt:
						if !check([]ast.Stmt{el}) {
							return false
						}
					}
				}
			case *ast.BlockStmt:
				if !check(st.List) {
					return false
				}
			default:
				return false
			}
		}
		return true
	}
	return check(rs.Body.List)
}

// checkKeysCall flags maps.Keys/maps.Values and reflect's MapKeys
// unless the call feeds directly into a sorting consumer.
func checkKeysCall(u *Unit, pkg *Package, call *ast.CallExpr, file *ast.File) {
	fn := calleeOf(pkg, ast.Unparen(call.Fun))
	if fn == nil {
		return
	}
	name := pkgDotName(fn)
	isKeys := name == "maps.Keys" || name == "maps.Values"
	isReflect := fn.Name() == "MapKeys" && fn.Pkg() != nil && fn.Pkg().Path() == "reflect"
	if !isKeys && !isReflect {
		return
	}
	if isKeys && insideSortedCall(pkg, file, call) {
		return
	}
	what := name
	if isReflect {
		what = "reflect MapKeys"
	}
	u.Reportf(pkg, call.Pos(), "%s yields keys in map order; wrap in slices.Sorted (or sort the result) or annotate //ml:commutative -- <reason>", what)
}

// insideSortedCall reports whether call appears as a direct argument
// of slices.Sorted / SortedFunc / SortedStableFunc.
func insideSortedCall(pkg *Package, file *ast.File, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		outer, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		fn := calleeOf(pkg, ast.Unparen(outer.Fun))
		if fn == nil || !sortedFuncs[pkgDotName(fn)] {
			return true
		}
		for _, arg := range outer.Args {
			if ast.Unparen(arg) == call {
				found = true
			}
		}
		return !found
	})
	return found
}

package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //ml: annotation grammar. Annotations are ordinary line
// comments; the verbs are:
//
//	//ml:hotpath
//	    On a function declaration: the function is a hot-path root
//	    for the hotalloc analyzer (everything statically reachable
//	    from it must not allocate).
//
//	//ml:worker
//	    On a function declaration in a campaign-style package: the
//	    function is a scheduler worker-path root for the errkind
//	    analyzer (errors it or its intra-package callees construct
//	    must be classified, and the package's panics are audited).
//
//	//ml:commutative -- <reason>
//	    On (or on the line above) a map-range loop: the loop body is
//	    order-insensitive for a reason the analyzer cannot prove.
//	    Waives detorder and simpure map-order findings on that line.
//	    The reason text is required.
//
//	//ml:waive <analyzer>[,<analyzer>...] -- <reason>
//	    General waiver for the named analyzers on this line or the
//	    line below. The reason text is required.
//
// Anything else after //ml: is a malformed annotation and is itself
// reported, so a typo can never silently disable a check.

// waiver is one parsed waiver comment.
type waiver struct {
	analyzers map[string]bool
	line      int
	file      string
}

// badAnnot is a malformed //ml: comment.
type badAnnot struct {
	pos token.Position
	msg string
}

// annots is every annotation in one package.
type annots struct {
	// hotRoots / workerRoots hold the annotated function declarations
	// keyed by the file containing them.
	hotRoots    map[*ast.FuncDecl]bool
	workerRoots map[*ast.FuncDecl]bool
	waivers     []waiver
	malformed   []badAnnot
}

// knownAnalyzers is the closed set of names //ml:waive accepts.
var knownAnalyzers = map[string]bool{
	"detorder": true,
	"simpure":  true,
	"hotalloc": true,
	"errkind":  true,
}

// annotations parses (once) and returns the package's //ml: comments.
func (p *Package) annotations(fset *token.FileSet) *annots {
	if p.annots != nil {
		return p.annots
	}
	an := &annots{
		hotRoots:    map[*ast.FuncDecl]bool{},
		workerRoots: map[*ast.FuncDecl]bool{},
	}
	for _, f := range p.Syntax {
		// Function-marker verbs live in doc comments.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				switch verb, _ := splitAnnot(c.Text); verb {
				case "hotpath":
					an.hotRoots[fd] = true
				case "worker":
					an.workerRoots[fd] = true
				}
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				parseAnnot(fset, c, an)
			}
		}
	}
	p.annots = an
	return an
}

// splitAnnot returns the verb and the rest of an //ml: comment, or
// "" if the comment is not an annotation.
func splitAnnot(text string) (verb, rest string) {
	const prefix = "//ml:"
	if !strings.HasPrefix(text, prefix) {
		return "", ""
	}
	body := text[len(prefix):]
	verb, rest, _ = strings.Cut(body, " ")
	return verb, strings.TrimSpace(rest)
}

// parseAnnot validates one comment and files waivers/malformed
// entries. hotpath/worker markers are collected from doc comments in
// annotations(); here they are only grammar-checked.
func parseAnnot(fset *token.FileSet, c *ast.Comment, an *annots) {
	verb, rest := splitAnnot(c.Text)
	if verb == "" {
		return
	}
	pos := fset.Position(c.Pos())
	switch verb {
	case "hotpath", "worker":
		if rest != "" {
			an.malformed = append(an.malformed, badAnnot{pos, "//ml:" + verb + " takes no arguments"})
		}
	case "commutative":
		reason, ok := waiverReason(rest)
		if !ok || reason == "" {
			an.malformed = append(an.malformed, badAnnot{pos,
				`//ml:commutative requires a reason: "//ml:commutative -- <why this loop is order-insensitive>"`})
			return
		}
		an.waivers = append(an.waivers, waiver{
			analyzers: map[string]bool{"detorder": true, "simpure": true},
			line:      pos.Line,
			file:      pos.Filename,
		})
	case "waive":
		names, reasonPart, found := strings.Cut(rest, "--")
		reason := strings.TrimSpace(reasonPart)
		if !found || reason == "" {
			an.malformed = append(an.malformed, badAnnot{pos,
				`//ml:waive requires a reason: "//ml:waive <analyzer> -- <why>"`})
			return
		}
		set := map[string]bool{}
		for _, n := range strings.Split(names, ",") {
			n = strings.TrimSpace(n)
			if !knownAnalyzers[n] {
				an.malformed = append(an.malformed, badAnnot{pos, "//ml:waive names unknown analyzer " + quote(n)})
				return
			}
			set[n] = true
		}
		an.waivers = append(an.waivers, waiver{analyzers: set, line: pos.Line, file: pos.Filename})
	default:
		an.malformed = append(an.malformed, badAnnot{pos, "unknown //ml: annotation verb " + quote(verb)})
	}
}

// waiverReason extracts the reason after "--". For //ml:commutative
// the leading "--" is required so the reason is unmistakably prose.
func waiverReason(rest string) (string, bool) {
	_, reason, found := strings.Cut(rest, "--")
	if !found {
		return "", false
	}
	return strings.TrimSpace(reason), true
}

// waived reports whether a waiver for analyzer covers pos: the
// waiver sits on the same line (trailing comment) or the line above
// (comment-above-statement style).
func (an *annots) waived(analyzer string, pos token.Position) bool {
	for _, w := range an.waivers {
		if w.file == pos.Filename && w.analyzers[analyzer] && (w.line == pos.Line || w.line == pos.Line-1) {
			return true
		}
	}
	return false
}

// quote avoids importing strconv for two call sites.
func quote(s string) string { return "\"" + s + "\"" }

package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// Errkind returns the fault-taxonomy analyzer. It activates in any
// package that annotates //ml:worker roots (the campaign scheduler's
// worker paths) and enforces two rules from the PR 7 containment
// design:
//
//   - No naked errors on worker paths: functions intra-package
//     reachable from a //ml:worker root must not construct errors
//     with fmt.Errorf or errors.New — every failure that can reach
//     the journal or the result map must be a classified CellError
//     (wrap with the taxonomy constructors, or classify at the
//     boundary).
//   - No unrecovered panics: a panic in an errkind-active package is
//     only legal inside a function that installs its own deferred
//     recover (the containment boundary); anywhere else a model bug
//     would kill the whole sweep instead of one cell.
//
// Waive with `//ml:waive errkind -- <reason>`.
func Errkind() *Analyzer {
	a := &Analyzer{
		Name: "errkind",
		Doc:  "enforces classified errors and recover-protected panics on scheduler worker paths",
	}
	a.Run = func(u *Unit) error {
		g := buildCallGraph(u.Prog)
		for _, pkg := range u.Prog.Packages {
			an := pkg.annotations(u.Prog.Fset)
			if len(an.workerRoots) == 0 {
				continue
			}
			var roots []string
			for fd := range an.workerRoots {
				if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					roots = append(roots, funcKey(obj))
				}
			}
			sort.Strings(roots)
			checkWorkerErrors(u, g, pkg, roots)
			checkPanics(u, pkg)
		}
		return nil
	}
	return a
}

// checkWorkerErrors flags naked error construction in the
// intra-package closure of the worker roots.
func checkWorkerErrors(u *Unit, g *callGraph, pkg *Package, roots []string) {
	reach := g.reachable(roots)
	keys := make([]string, 0, len(reach))
	for k := range reach {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		node := reach[k]
		if node.pkg != pkg {
			continue // worker-path errors are classified at the package boundary
		}
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pkg, ast.Unparen(call.Fun))
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			name := pkgDotName(fn)
			if name == "fmt.Errorf" || name == "errors.New" || name == "errors.Join" {
				u.Reportf(pkg, call.Pos(),
					"%s on a scheduler worker path builds an unclassified error; construct a *CellError (or classify at the boundary) so the journal and retry policy see a taxonomy kind", name)
			}
			return true
		})
	}
}

// checkPanics flags panic calls outside recover-protected functions.
func checkPanics(u *Unit, pkg *Package) {
	for _, f := range pkg.Syntax {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if installsRecover(pkg, fd.Body) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
					return true
				}
				u.Reportf(pkg, call.Pos(),
					"panic outside a recover-protected zone in campaign code would kill the sweep, not one cell; recover at the containment boundary or waive with //ml:waive errkind -- <reason>")
				return true
			})
		}
	}
}

// installsRecover reports whether the body contains a deferred
// closure that calls recover().
func installsRecover(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok || found {
			return !found
		}
		lit, ok := ast.Unparen(def.Call.Fun).(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}

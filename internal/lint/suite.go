package lint

// This file is mlvet's repo configuration: which packages each
// invariant protects. The analyzers themselves are generic; the
// lists below are the policy.

// DeterminismPkgs are the packages whose output, fingerprint or
// journal bytes must never depend on map iteration order: campaign
// planning/aggregation/status, runner canonicalization, the cfgreg
// path table, telemetry formatters, the figure formatters and every
// CLI that renders results.
var DeterminismPkgs = []string{
	"microlib",
	"microlib/internal/campaign",
	"microlib/internal/cfgreg",
	"microlib/internal/experiments",
	"microlib/internal/runner",
	"microlib/internal/telemetry",
	"microlib/cmd/microsim",
	"microlib/cmd/mlbench",
	"microlib/cmd/mlcampaign",
	"microlib/cmd/mlrank",
	"microlib/cmd/mltrace",
}

// SimPkgs are the simulated-machine roots: these packages plus
// everything they import inside the module must be a pure function
// of their inputs (simpure's closure).
var SimPkgs = []string{
	"microlib/internal/sim",
	"microlib/internal/cpu",
	"microlib/internal/cache",
	"microlib/internal/mem",
	"microlib/internal/bus",
	"microlib/internal/hier",
	"microlib/internal/workload",
}

// Suite returns mlvet's four analyzers configured for this repo.
func Suite() []*Analyzer {
	return []*Analyzer{
		Detorder(DeterminismPkgs),
		Simpure(SimPkgs),
		Hotalloc(),
		Errkind(),
	}
}

// Check loads patterns (dir anchors the go command; "" = cwd) and
// runs the full suite.
func Check(dir string, patterns ...string) ([]Diagnostic, Stats, error) {
	prog, err := Load(dir, patterns...)
	if err != nil {
		return nil, Stats{}, err
	}
	return Run(prog, Suite())
}

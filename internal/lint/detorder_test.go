package lint

import "testing"

func TestDetorderFixture(t *testing.T) {
	RunFixture(t, "detorder", []*Analyzer{
		Detorder([]string{FixturePath("detorder")}),
	})
}

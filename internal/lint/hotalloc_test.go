package lint

import "testing"

func TestHotallocFixture(t *testing.T) {
	RunFixture(t, "hotalloc", []*Analyzer{Hotalloc()})
}

package lint

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strings"
)

// The -escapes harness: static analysis cannot prove what the
// compiler's escape analysis decides, so mlvet -escapes asks the
// compiler directly (`go build -gcflags=-m`) for the kernel
// packages, normalizes the "escapes to heap" / "moved to heap"
// diagnostics, and diffs them against a checked-in baseline. A new
// escape on a kernel package fails the gate and names the line; an
// escape the baseline records but the compiler no longer reports is
// flagged as stale so the baseline stays tight. Regenerate with
// `mlvet -escapes -write-escapes` after an intentional change.

// EscapePkgs are the kernel packages the escape gate covers.
var EscapePkgs = []string{
	"./internal/sim",
	"./internal/cache",
	"./internal/cpu",
	"./internal/mem",
	"./internal/bus",
	"./internal/hier",
}

// EscapeBaselineFile is the baseline location, relative to the
// module root.
const EscapeBaselineFile = "internal/lint/escapes_baseline.txt"

// escapeLine matches one compiler diagnostic position prefix.
var escapeLine = regexp.MustCompile(`^(.*\.go):\d+:\d+: (.*)$`)

// Escapes compiles pkgs with -gcflags=-m (the go build cache replays
// the diagnostics on cache hits, so repeat runs are cheap) and
// returns the normalized, sorted, deduplicated escape facts as
// "file.go: message" lines. Line/column are deliberately dropped so
// unrelated edits do not churn the baseline.
func Escapes(dir string, pkgs []string) ([]string, error) {
	args := append([]string{"build", "-gcflags=-m"}, pkgs...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go build -gcflags=-m: %v\n%s", err, stderr.String())
	}
	seen := map[string]bool{}
	var out []string
	for _, line := range strings.Split(stderr.String(), "\n") {
		m := escapeLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		msg := m[2]
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		fact := m[1] + ": " + msg
		if !seen[fact] {
			seen[fact] = true
			out = append(out, fact)
		}
	}
	sort.Strings(out)
	return out, nil
}

// EscapeDiff splits current vs baseline into regressions (new
// escapes) and stale baseline entries.
func EscapeDiff(current, baseline []string) (added, stale []string) {
	cur := map[string]bool{}
	for _, c := range current {
		cur[c] = true
	}
	base := map[string]bool{}
	for _, b := range baseline {
		base[b] = true
	}
	for _, c := range current {
		if !base[c] {
			added = append(added, c)
		}
	}
	for _, b := range baseline {
		if !cur[b] {
			stale = append(stale, b)
		}
	}
	return added, stale
}

// ReadBaseline loads the baseline file, ignoring blanks and
// #-comments. A missing file is an empty baseline.
func ReadBaseline(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out, nil
}

// WriteBaseline rewrites the baseline file from the current facts.
func WriteBaseline(path string, facts []string) error {
	var b strings.Builder
	b.WriteString("# mlvet -escapes baseline: compiler-reported heap escapes in the kernel\n")
	b.WriteString("# packages. Regenerate with `go run ./cmd/mlvet -escapes -write-escapes`\n")
	b.WriteString("# after an intentional change; CI fails on any escape not listed here.\n")
	for _, f := range facts {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

package lint

import "testing"

func TestErrkindFixture(t *testing.T) {
	RunFixture(t, "errkind", []*Analyzer{Errkind()})
}

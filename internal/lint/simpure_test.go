package lint

import "testing"

func TestSimpureFixture(t *testing.T) {
	RunFixture(t, "simpure", []*Analyzer{
		Simpure([]string{FixturePath("simpure")}),
	})
}

package lint

import (
	"strings"
	"testing"
)

// TestRepoIsClean is the meta-test: the full suite must pass over the
// entire module, and the annotation counts must stay in the expected
// range — if a refactor drops the //ml:hotpath or //ml:worker markers
// (moving a doc comment, renaming a file), the invariants silently
// stop being enforced; this test makes that loss loud.
func TestRepoIsClean(t *testing.T) {
	diags, stats, err := Check("", "microlib/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
	if stats.HotRoots < 10 {
		t.Errorf("only %d //ml:hotpath roots found (want >= 10); annotations lost?", stats.HotRoots)
	}
	if stats.WorkerRoots < 1 {
		t.Errorf("no //ml:worker roots found; the errkind analyzer is not protecting the scheduler")
	}
	if stats.Packages < 30 {
		t.Errorf("only %d packages loaded (want >= 30); the module pattern no longer covers the tree", stats.Packages)
	}
}

func TestEscapeDiff(t *testing.T) {
	current := []string{"a.go: x escapes to heap", "b.go: y escapes to heap"}
	baseline := []string{"b.go: y escapes to heap", "c.go: z escapes to heap"}
	added, stale := EscapeDiff(current, baseline)
	if len(added) != 1 || added[0] != "a.go: x escapes to heap" {
		t.Errorf("added = %v", added)
	}
	if len(stale) != 1 || stale[0] != "c.go: z escapes to heap" {
		t.Errorf("stale = %v", stale)
	}
}

func TestReadBaselineMissingIsEmpty(t *testing.T) {
	got, err := ReadBaseline("testdata/does-not-exist.txt")
	if err != nil || got != nil {
		t.Errorf("missing baseline: got %v, %v; want nil, nil", got, err)
	}
}

// TestBaselineMatchesRepo keeps escapes_baseline.txt loadable and
// well-formed (sorted, no duplicates) without invoking the compiler.
func TestBaselineMatchesRepo(t *testing.T) {
	facts, err := ReadBaseline("escapes_baseline.txt")
	if err != nil {
		t.Fatalf("reading baseline: %v", err)
	}
	if len(facts) == 0 {
		t.Fatal("baseline is empty; regenerate with `go run ./cmd/mlvet -escapes -write-escapes`")
	}
	seen := map[string]bool{}
	for _, f := range facts {
		if seen[f] {
			t.Errorf("duplicate baseline entry: %s", f)
		}
		seen[f] = true
		if !strings.Contains(f, ".go: ") {
			t.Errorf("malformed baseline entry: %s", f)
		}
	}
}

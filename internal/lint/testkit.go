package lint

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// The fixture runner: the analysistest idiom without the x/tools
// dependency. A fixture is an ordinary package under
// testdata/src/<name>/ (testdata keeps it out of ./... builds);
// every expected finding is declared in the fixture itself with a
// trailing comment
//
//	// want "regexp" ["regexp" ...]
//
// on the offending line. RunFixture loads the package through the
// real loader, runs the analyzers, and fails the test on any
// unmatched diagnostic or unsatisfied expectation — so each analyzer
// is pinned to fire (and to stay quiet) exactly where the fixture
// says.

// FixturePath returns the import path of a fixture package, for
// analyzers that take package-path configuration.
func FixturePath(name string) string {
	return "microlib/internal/lint/testdata/src/" + name
}

// RunFixture loads testdata/src/<name> and checks analyzers against
// its want comments.
func RunFixture(t *testing.T, name string, analyzers []*Analyzer) {
	t.Helper()
	prog, err := Load("", "./testdata/src/"+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, _, err := Run(prog, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", name, err)
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Syntax {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					idx := strings.Index(text, "want ")
					if !strings.HasPrefix(text, "//") || idx < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, pat := range parseWants(t, pos.String(), text[idx+len("want "):]) {
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
						}
						k := key(pos.Filename, pos.Line)
						wants[k] = append(wants[k], &want{re: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		k := key(d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	var missing []string
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s: no diagnostic matched %q", k, w.re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// parseWants extracts the quoted regexps of one want comment.
func parseWants(t *testing.T, pos, s string) []string {
	t.Helper()
	var out []string
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out
		}
		if s[0] != '"' {
			t.Fatalf("%s: malformed want clause near %q (expected quoted regexp)", pos, s)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '"' && s[i-1] != '\\' {
				end = i
				break
			}
		}
		if end < 0 {
			t.Fatalf("%s: unterminated want pattern %q", pos, s)
		}
		out = append(out, strings.ReplaceAll(s[1:end], `\"`, `"`))
		s = s[end+1:]
	}
}

// Package detorder is the mlvet detorder fixture: each function pins
// one rule — flagged map ranges, the two blessed shapes, waivers and
// malformed-annotation reporting.
package detorder

import (
	"fmt"
	"maps"
	"slices"
	"sort"
)

// Emit leaks map order into its output: flagged.
func Emit(counts map[string]int) {
	for k, v := range counts { // want "map iteration order reaches this loop's effects"
		fmt.Println(k, v)
	}
}

// EmitSorted is the collect-then-sort shape: blessed without a waiver.
func EmitSorted(counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, counts[k])
	}
}

// Copy writes another map at the loop key: each key touches its own
// slot, so order cannot matter. (Indexing by the value — a true map
// inversion — would NOT be blessed: colliding values make the result
// order-dependent.)
func Copy(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// Count is keyless: iterations are indistinguishable.
func Count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// Drain is order-sensitive but waived with a reason.
func Drain(m map[string]int, sink chan<- string) {
	//ml:commutative -- fixture: the consumer deduplicates, order is irrelevant
	for k := range m {
		sink <- k
	}
}

// Malformed shows that a reason-less waiver is itself a finding and
// does not suppress the loop underneath it.
func Malformed(m map[string]int) {
	//ml:commutative // want "requires a reason"
	for k := range m { // want "map iteration order reaches this loop's effects"
		fmt.Println(k)
	}
}

// Typo shows an unknown verb is reported, not ignored.
func Typo(m map[string]int) int {
	//ml:commutatiev -- misspelled // want "unknown //ml: annotation verb"
	return len(m)
}

// SortedKeys feeds maps.Keys straight into a sorting consumer: fine.
func SortedKeys(m map[string]int) []string {
	return slices.Sorted(maps.Keys(m))
}

// RawKeys iterates maps.Keys unsorted: flagged.
func RawKeys(m map[string]int) []string {
	var out []string
	for k := range maps.Keys(m) { // want "maps.Keys yields keys in map order"
		out = append(out, k)
	}
	return out
}

// Package simpure is the mlvet simpure fixture: nondeterminism
// sources are flagged anywhere in the protected closure, seeded PRNG
// draws and sorted map iteration stay legal.
package simpure

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// Core stands in for a simulated component.
type Core struct {
	rng  *rand.Rand
	seen map[uint64]int
}

// Step mixes forbidden sources with a legal seeded draw.
func (c *Core) Step(now uint64) uint64 {
	t := time.Now()       // want "time.Now reads the wall clock"
	_ = os.Getenv("HOME") // want "os.Getenv reads the environment"
	n := rand.Intn(8)     // want "rand.Intn draws from the global math/rand source"
	m := c.rng.Intn(8)    // seeded *rand.Rand: deterministic, legal
	_ = t
	return now + uint64(n+m)
}

// pick selects by map order: flagged (reported under simpure).
func (c *Core) pick() (uint64, bool) {
	for k := range c.seen { // want "map iteration order reaches this loop's effects"
		return k, true
	}
	return 0, false
}

// sortedPick is the collect-then-sort shape: legal.
func (c *Core) sortedPick() (uint64, bool) {
	keys := make([]uint64, 0, len(c.seen))
	for k := range c.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	if len(keys) == 0 {
		return 0, false
	}
	return keys[0], true
}

// Package errkind is the mlvet errkind fixture: naked error
// construction on the //ml:worker closure is flagged, classified
// errors pass, and panics are legal only under a deferred recover.
package errkind

import (
	"errors"
	"fmt"
)

// CellError mirrors the campaign taxonomy shape.
type CellError struct{ Kind, Msg string }

func (e *CellError) Error() string { return e.Msg }

// run is the fixture's worker root.
//
//ml:worker
func run(key string) error {
	if key == "" {
		return fmt.Errorf("empty key") // want "fmt.Errorf on a scheduler worker path"
	}
	return step(key)
}

// step is intra-package reachable from the root: same rules apply.
func step(key string) error {
	if key == "x" {
		return errors.New("bad cell") // want "errors.New on a scheduler worker path"
	}
	return &CellError{Kind: "model", Msg: "mechanism rejected " + key}
}

// protected installs the containment boundary: its panic is legal.
func protected() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{Kind: "panic", Msg: "recovered"}
		}
	}()
	panic("boom")
}

// unprotected would kill the whole sweep: flagged.
func unprotected(n int) {
	if n < 0 {
		panic("negative") // want "panic outside a recover-protected zone"
	}
}

// waived documents why this panic is acceptable.
func waived() {
	//ml:waive errkind -- fixture: unreachable guard, documented invariant
	panic("unreachable")
}

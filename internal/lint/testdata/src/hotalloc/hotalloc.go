// Package hotalloc is the mlvet hotalloc fixture: allocating
// constructs reachable from the //ml:hotpath root are flagged; pool
// growth (waived), amortized appends, filter-in-place compaction,
// panic subtrees, sort.Search predicates and cold functions are not.
package hotalloc

import (
	"errors"
	"fmt"
	"sort"
)

type node struct{ next *node }

type pool struct {
	buf   []int
	queue []int
	free  *node
}

func sink(v any) { _ = v }

// Run is the fixture's hot root; everything it reaches is checked.
//
//ml:hotpath
func (p *pool) Run(n int) {
	p.hot(n)
	p.pooled()
	p.filter()
	p.death(n)
	p.search(n)
}

// hot gathers one of each flagged construct.
func (p *pool) hot(n int) {
	s := make([]int, n)          // want "make on a hot path"
	q := new(int)                // want "new on a hot path"
	s = append(s, n)             // local lhs: not the amortized shape; want "append on a hot path"
	f := func() int { return n } // want "closure on a hot path"
	_ = fmt.Sprint(n)            // want "fmt.Sprint on a hot path" "boxes a non-pointer value"
	_ = errors.New("x")          // want "errors.New on a hot path"
	_ = any(n)                   // want "conversion to interface"
	sink(n)                      // want "boxes a non-pointer value"
	_ = q
	_ = f
}

// pooled allocates only to grow its freelist (waived) and appends
// into a persistent field (amortized: blessed).
func (p *pool) pooled() *node {
	nd := p.free
	if nd == nil {
		//ml:waive hotalloc -- fixture: pool growth up to the high-water mark
		nd = &node{}
	} else {
		p.free = nd.next
	}
	p.buf = append(p.buf, 1)
	return nd
}

// filter compacts in place through a [:0] cursor: blessed.
func (p *pool) filter() {
	kept := p.queue[:0]
	for _, v := range p.queue {
		if v > 0 {
			kept = append(kept, v)
		}
	}
	p.queue = kept
}

// death may format its panic message freely: the cell is already dead.
func (p *pool) death(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n: %d", n))
	}
}

// search passes its predicate to sort.Search, whose parameter does
// not escape: the closure stays on the stack.
func (p *pool) search(n int) int {
	return sort.Search(len(p.buf), func(i int) bool { return p.buf[i] >= n })
}

// cold is not reachable from the root: it may allocate.
func cold(n int) []int {
	return make([]int, n)
}

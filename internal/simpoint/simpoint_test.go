package simpoint

import (
	"testing"

	"microlib/internal/trace"
	"microlib/internal/workload"
)

// twoPhase emits a stream alternating between two disjoint BB sets.
type twoPhase struct {
	i        uint64
	phaseLen uint64
}

func (s *twoPhase) Next(inst *trace.Inst) bool {
	phase := (s.i / s.phaseLen) % 2
	inst.BB = uint32(phase*100 + s.i%7)
	inst.PC = 0x400000 + uint64(inst.BB)*4
	inst.Class = trace.IntALU
	s.i++
	return true
}

func TestDetectsPhases(t *testing.T) {
	cfg := Config{IntervalLen: 1000, Intervals: 12, MaxK: 4, Dim: 15, Seed: 1}
	res := Analyze(&twoPhase{phaseLen: 3000}, cfg)
	if res.K < 2 {
		t.Fatalf("k=%d, want >= 2 for a two-phase stream", res.K)
	}
	if len(res.Labels) != 12 {
		t.Fatalf("%d labels", len(res.Labels))
	}
	// Intervals within the same program phase should share a label.
	// phaseLen 3000 / interval 1000: intervals 0-2 phase A, 3-5 phase
	// B, 6-8 phase A, ...
	if res.Labels[0] != res.Labels[1] || res.Labels[3] != res.Labels[4] {
		t.Fatalf("labels do not follow phases: %v", res.Labels)
	}
	if res.Labels[0] == res.Labels[3] {
		t.Fatalf("distinct phases share a cluster: %v", res.Labels)
	}
	if res.SkipInsts != uint64(res.Point)*cfg.IntervalLen {
		t.Fatal("SkipInsts inconsistent with Point")
	}
}

func TestDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IntervalLen = 2000
	a := Analyze(&twoPhase{phaseLen: 5000}, cfg)
	b := Analyze(&twoPhase{phaseLen: 5000}, cfg)
	if a.Point != b.Point || a.K != b.K {
		t.Fatalf("analysis not deterministic: %+v vs %+v", a, b)
	}
}

func TestKMeansSeparates(t *testing.T) {
	points := [][]float64{
		{0, 0}, {0.1, 0}, {0, 0.1},
		{5, 5}, {5.1, 5}, {5, 5.1},
	}
	labels, wcss := KMeans(points, 2, 1)
	if labels[0] != labels[1] || labels[3] != labels[4] || labels[0] == labels[3] {
		t.Fatalf("kmeans labels: %v", labels)
	}
	if wcss > 0.1 {
		t.Fatalf("wcss %f too high for separable clusters", wcss)
	}
}

func TestOnRealWorkload(t *testing.T) {
	gen, err := workload.New("gcc", 42)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{IntervalLen: 10_000, Intervals: 14, MaxK: 4, Dim: 15, Seed: 1}
	res := Analyze(gen, cfg)
	if res.K < 1 || res.Point < 0 || res.Point >= 14 {
		t.Fatalf("implausible analysis: %+v", res)
	}
	t.Logf("gcc: k=%d point=%d labels=%v", res.K, res.Point, res.Labels)
}

func TestEmptyStream(t *testing.T) {
	res := Analyze(&trace.SliceStream{}, DefaultConfig())
	if res.Point != 0 || res.SkipInsts != 0 {
		t.Fatalf("empty stream: %+v", res)
	}
}

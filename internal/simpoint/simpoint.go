// Package simpoint implements SimPoint-style trace selection
// (Sherwood, Perelman, Hamerly & Calder, ASPLOS'02), which the paper
// uses for its main experiments: execution is cut into fixed-length
// intervals, each summarized by a Basic Block Vector (BBV); the BBVs
// are random-projected and clustered with k-means; the representative
// interval (the medoid of the weightiest cluster) is the SimPoint.
//
// Section 3.5 of the paper compares this selection against the
// traditional "skip 1 billion, simulate 2 billion" and finds the
// choice changes mechanism rankings; the Figure 11 experiment here
// reproduces that comparison on scaled traces.
package simpoint

import (
	"math"
	"sort"

	"microlib/internal/prng"
	"microlib/internal/trace"
)

// Config parameterizes the analysis.
type Config struct {
	// IntervalLen is the instructions per interval (the paper's
	// intervals are 100M; ours scale down with the trace budget).
	IntervalLen uint64
	// Intervals bounds how many intervals to analyze.
	Intervals int
	// MaxK bounds the cluster count searched.
	MaxK int
	// Dim is the random-projection dimensionality (SimPoint uses 15).
	Dim int
	// Seed keys projection and k-means initialization.
	Seed uint64
}

// DefaultConfig returns a scaled analysis setup.
func DefaultConfig() Config {
	return Config{IntervalLen: 20_000, Intervals: 12, MaxK: 4, Dim: 15, Seed: 1}
}

// BBV is one interval's basic-block execution profile.
type BBV map[uint32]float64

// CollectBBVs consumes cfg.Intervals*cfg.IntervalLen instructions
// from the stream and returns one normalized BBV per interval.
func CollectBBVs(s trace.Stream, cfg Config) []BBV {
	out := make([]BBV, 0, cfg.Intervals)
	var inst trace.Inst
	for i := 0; i < cfg.Intervals; i++ {
		v := make(BBV)
		var n uint64
		for n = 0; n < cfg.IntervalLen; n++ {
			if !s.Next(&inst) {
				break
			}
			v[inst.BB]++
		}
		if n == 0 {
			break
		}
		for k := range v {
			v[k] /= float64(n)
		}
		out = append(out, v)
	}
	return out
}

// Project reduces each BBV to a cfg.Dim-dimensional dense vector via
// a deterministic random projection (each basic block id hashes to a
// ±1 pattern). Basic blocks are accumulated in sorted order: float
// addition is not associative, and map-order accumulation would make
// the projection — and through k-means tie-breaking, the chosen
// SimPoint — vary between runs.
func Project(bbvs []BBV, cfg Config) [][]float64 {
	dim := cfg.Dim
	if dim <= 0 {
		dim = 15
	}
	out := make([][]float64, len(bbvs))
	for i, v := range bbvs {
		bbs := make([]uint32, 0, len(v))
		for bb := range v {
			bbs = append(bbs, bb)
		}
		sort.Slice(bbs, func(a, b int) bool { return bbs[a] < bbs[b] })
		p := make([]float64, dim)
		for _, bb := range bbs {
			w := v[bb]
			h := mix64(uint64(bb) ^ cfg.Seed)
			for d := 0; d < dim; d++ {
				if (h>>uint(d))&1 == 1 {
					p[d] += w
				} else {
					p[d] -= w
				}
			}
		}
		out[i] = p
	}
	return out
}

// mix64 is a finalizing hash for projection sign patterns.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func dist2(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// KMeans clusters points into k clusters (Lloyd's algorithm with
// deterministic farthest-point initialization) and returns labels
// and the within-cluster sum of squares.
func KMeans(points [][]float64, k int, seed uint64) (labels []int, wcss float64) {
	n := len(points)
	if n == 0 {
		return nil, 0
	}
	if k > n {
		k = n
	}
	rng := prng.New(seed)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	for len(centroids) < k {
		// Farthest-point: pick the point with the largest distance to
		// its nearest centroid.
		bestI, bestD := 0, -1.0
		for i, p := range points {
			d := math.Inf(1)
			for _, c := range centroids {
				d = math.Min(d, dist2(p, c))
			}
			if d > bestD {
				bestI, bestD = i, d
			}
		}
		centroids = append(centroids, append([]float64(nil), points[bestI]...))
	}

	labels = make([]int, n)
	for iter := 0; iter < 50; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := dist2(p, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		// Recompute centroids.
		dim := len(points[0])
		sums := make([][]float64, len(centroids))
		counts := make([]int, len(centroids))
		for c := range sums {
			sums[c] = make([]float64, dim)
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	for i, p := range points {
		wcss += dist2(p, centroids[labels[i]])
	}
	return labels, wcss
}

// ChooseK runs k-means for k = 1..cfg.MaxK and picks the smallest k
// whose score is within 10% of the best (a simplified BIC criterion,
// as SimPoint does).
func ChooseK(points [][]float64, cfg Config) (k int, labels []int) {
	bestScore := math.Inf(1)
	scores := make([]float64, cfg.MaxK+1)
	labelSets := make([][]int, cfg.MaxK+1)
	for kk := 1; kk <= cfg.MaxK && kk <= len(points); kk++ {
		l, wcss := KMeans(points, kk, cfg.Seed+uint64(kk))
		// Penalize extra clusters (BIC-like).
		score := wcss + 0.02*float64(kk)*float64(len(points))
		scores[kk] = score
		labelSets[kk] = l
		if score < bestScore {
			bestScore = score
		}
	}
	for kk := 1; kk <= cfg.MaxK && kk <= len(points); kk++ {
		if scores[kk] <= bestScore*1.1 {
			return kk, labelSets[kk]
		}
	}
	return 1, labelSets[1]
}

// Result is a completed SimPoint analysis.
type Result struct {
	K int
	// Labels assigns each interval to a cluster.
	Labels []int
	// Point is the chosen interval index (the medoid of the largest
	// cluster).
	Point int
	// SkipInsts is the instruction offset of the chosen interval.
	SkipInsts uint64
}

// Analyze runs the full pipeline on a stream.
func Analyze(s trace.Stream, cfg Config) Result {
	bbvs := CollectBBVs(s, cfg)
	if len(bbvs) == 0 {
		return Result{K: 1, Point: 0}
	}
	points := Project(bbvs, cfg)
	k, labels := ChooseK(points, cfg)

	// Largest cluster.
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}
	big := 0
	for c := range counts {
		if counts[c] > counts[big] {
			big = c
		}
	}
	// Medoid of the largest cluster.
	var members []int
	for i, l := range labels {
		if l == big {
			members = append(members, i)
		}
	}
	bestI, bestD := members[0], math.Inf(1)
	for _, i := range members {
		total := 0.0
		for _, j := range members {
			total += dist2(points[i], points[j])
		}
		if total < bestD {
			bestI, bestD = i, total
		}
	}
	return Result{
		K:         k,
		Labels:    labels,
		Point:     bestI,
		SkipInsts: uint64(bestI) * cfg.IntervalLen,
	}
}

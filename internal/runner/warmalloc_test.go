package runner

import (
	"context"
	"testing"
)

// TestWarmArenaReuseZeroMarginalAllocs pins the reset-don't-reallocate
// contract of the campaign worker's machine arena. Restoring a
// checkpoint into a reused machine must not rebuild the machine: the
// per-cell allocation count is a small fixed overhead (the restorer
// scaffolding and the returned Result) and — the load-bearing part —
// does not grow with the measured budget at all. Zero marginal
// allocations per simulated instruction means the measurement phase
// runs entirely on the arena's pooled state: calendar nodes, MSHR
// entries, window slots and load nodes are all recycled, never
// reallocated, exactly as on the cold path's steady state.
func TestWarmArenaReuseZeroMarginalAllocs(t *testing.T) {
	opts := DefaultOptions("gzip", "TP")
	opts.Seed = 1
	opts.Warmup = 2000

	ck, err := RunPrefixContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewCheckpointMachine(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx := context.Background()
	runWith := func(insts uint64) {
		o := opts
		o.Insts = insts
		if _, err := m.RunFromCheckpoint(ctx, o, ck); err != nil {
			t.Fatal(err)
		}
	}
	// Warm the arena with both budgets so every pooled capacity
	// (calendar segments, MSHR target arrays, prefetch queues) reaches
	// its steady state before measuring.
	for i := 0; i < 3; i++ {
		runWith(3000)
		runWith(12000)
	}

	small := testing.AllocsPerRun(10, func() { runWith(3000) })
	large := testing.AllocsPerRun(10, func() { runWith(12000) })
	if large != small {
		t.Fatalf("warm run allocations grow with the measured budget: %.1f at 3k insts, %.1f at 12k — the arena is reallocating per-event state", small, large)
	}
	// The fixed overhead must stay a handful of objects. A machine
	// rebuild is three orders of magnitude more (caches, calendar,
	// window, generator), so this bound catches any accidental
	// construction on the restore path.
	const maxFixed = 40
	if small > maxFixed {
		t.Fatalf("warm run fixed overhead is %.1f allocations, want <= %d", small, maxFixed)
	}
}

package runner

import (
	"fmt"
	"path/filepath"

	"microlib/internal/trace"
	"microlib/internal/workload"
)

// Workload selects a custom instruction source instead of a built-in
// benchmark name: exactly one of Profile or TracePath is set. Its
// identity in Options.Canonical — and therefore in the campaign
// result cache — is the workload's content (the canonical profile
// serialization, or the trace file's SHA-256): two custom workloads
// can only share a fingerprint by being the same workload. A trace
// file can be moved or its campaign entry renamed without
// invalidating cached cells (bytes are the identity); a profile's
// name, by contrast, is part of its content — it seeds the generator
// — so renaming an inline profile genuinely is a different stream.
type Workload struct {
	// Profile is an inline synthetic workload (validated at run and
	// at canonicalization time).
	Profile *workload.Profile
	// TracePath replays a recorded trace file through the binary
	// trace reader. Value-inspecting mechanisms (CDP, FVC) cannot run
	// on trace workloads: a trace carries no memory contents.
	TracePath string
	// TraceSHA is the hex SHA-256 of the trace file's content. The
	// NewTraceWorkload constructor fills it and campaign plans
	// compute it at expansion time; for hand-built values it is
	// computed (and memoized here) on first fingerprint use, so cache
	// identity is always content, never the path.
	TraceSHA string
}

// NewProfileWorkload wraps a validated inline profile.
func NewProfileWorkload(p workload.Profile) (*Workload, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Workload{Profile: &p}, nil
}

// NewTraceWorkload opens path far enough to validate the magic and
// hash its content.
func NewTraceWorkload(path string) (*Workload, error) {
	sha, err := trace.HashFile(path)
	if err != nil {
		return nil, err
	}
	return &Workload{TracePath: path, TraceSHA: sha}, nil
}

// identity is the content form folded into Options.Canonical.
func (w *Workload) identity() string {
	switch {
	case w.Profile != nil:
		data, err := w.Profile.CanonicalJSON()
		if err != nil {
			// An invalid profile cannot simulate; the run fails before
			// any result could be cached under this fingerprint.
			return "profile-invalid:" + err.Error()
		}
		return "profile:" + string(data)
	case w.TracePath != "":
		if w.TraceSHA == "" {
			// Hand-built value without the constructor: hash now so
			// identity is still content-based. An unreadable or
			// damaged file yields a non-content marker; such a run
			// fails before any result could be cached under it.
			sha, err := trace.HashFile(w.TracePath)
			if err != nil {
				return "trace-unreadable:" + err.Error()
			}
			w.TraceSHA = sha
		}
		return "trace:" + w.TraceSHA
	}
	return "empty"
}

// label names the workload in results when Options.Bench is unset.
func (w *Workload) label() string {
	switch {
	case w.Profile != nil:
		return w.Profile.Name
	case w.TracePath != "":
		return filepath.Base(w.TracePath)
	}
	return "custom"
}

// open builds the instruction stream and, for synthetic workloads,
// the memory-value oracle. The returned close func is non-nil for
// file-backed streams; done must be called after the simulation to
// surface deferred read errors (a truncated trace).
func (w *Workload) open(seed uint64) (stream trace.Stream, values *workload.Oracle, done func() error, closeFn func() error, err error) {
	switch {
	case w.Profile != nil:
		if err := w.Profile.Validate(); err != nil {
			return nil, nil, nil, nil, err
		}
		gen := workload.NewGenerator(*w.Profile, seed)
		return gen, gen.Oracle(), nil, nil, nil
	case w.TracePath != "":
		tf, err := trace.Open(w.TracePath)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return tf, nil, tf.Err, tf.Close, nil
	}
	return nil, nil, nil, nil, fmt.Errorf("runner: workload selects neither a profile nor a trace file")
}

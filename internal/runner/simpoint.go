package runner

import (
	"fmt"

	"microlib/internal/simpoint"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// SimPointSkip computes the SimPoint-selected trace offset for the
// options' workload: the instruction stream is cut into intervals
// scaled to the simulation budget (warmup + measured instructions),
// each interval is summarized by its basic-block vector, and the
// offset of the representative interval is returned.
//
// Campaign plans call this at expansion time, so a spec's
// "selections": ["simpoint"] axis value resolves into the existing
// Options.Skip field — the fingerprint of a SimPoint-selected cell
// is exactly the fingerprint of the same cell with the offset written
// out by hand. A workload that cannot be opened (misconfigured
// benchmark, unreadable trace) fails here, loudly, instead of
// silently analyzing from offset 0.
func SimPointSkip(opts Options) (uint64, error) {
	var (
		s    trace.Stream
		done func() error
	)
	if opts.Workload != nil {
		stream, _, doneFn, closeFn, err := opts.Workload.open(opts.Seed)
		if err != nil {
			return 0, fmt.Errorf("runner: simpoint analysis: %w", err)
		}
		if closeFn != nil {
			defer closeFn()
		}
		s, done = stream, doneFn
	} else {
		gen, err := workload.New(opts.Bench, opts.Seed)
		if err != nil {
			return 0, fmt.Errorf("runner: simpoint analysis: %w", err)
		}
		s = gen
	}

	insts := opts.Insts
	if insts == 0 {
		insts = defaultInsts
	}
	cfg := simpoint.DefaultConfig()
	cfg.IntervalLen = (opts.Warmup + insts) / 8
	if cfg.IntervalLen == 0 {
		cfg.IntervalLen = 1
	}
	cfg.Intervals = 12
	res := simpoint.Analyze(s, cfg)
	if done != nil {
		// A torn trace file must fail the analysis, not be read as a
		// shorter clean stream (the offset would silently move).
		if err := done(); err != nil {
			return 0, fmt.Errorf("runner: simpoint analysis: %s: %w", opts.Workload.TracePath, err)
		}
	}
	return res.SkipInsts, nil
}

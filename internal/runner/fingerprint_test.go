package runner

import (
	"context"
	"strings"
	"testing"
	"time"

	"microlib/internal/core"
)

func TestFingerprintStable(t *testing.T) {
	a := DefaultOptions("gzip", "GHB")
	b := DefaultOptions("gzip", "GHB")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("identical options produced different fingerprints:\n%s\n%s",
			a.Canonical(), b.Canonical())
	}
}

func TestFingerprintNormalizesDefaults(t *testing.T) {
	a := DefaultOptions("gzip", "")
	b := DefaultOptions("gzip", BaseName)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("empty mechanism and %q must fingerprint identically", BaseName)
	}

	c := DefaultOptions("gzip", "GHB")
	c.Insts = 0
	d := DefaultOptions("gzip", "GHB")
	d.Insts = 200_000 // the Run default for a zero budget
	if c.Fingerprint() != d.Fingerprint() {
		t.Errorf("zero budget and the explicit default must fingerprint identically")
	}
}

func TestFingerprintParamsOrderInsensitive(t *testing.T) {
	a := DefaultOptions("gzip", "TCP")
	a.Params = core.Params{"queue": 8, "depth": 2, "size": 4096}
	b := DefaultOptions("gzip", "TCP")
	b.Params = core.Params{"size": 4096, "depth": 2, "queue": 8}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("param insertion order must not change the fingerprint")
	}
	if !strings.Contains(a.Canonical(), "depth:2,queue:8,size:4096") {
		t.Errorf("canonical form must sort params, got %s", a.Canonical())
	}
}

func TestFingerprintDistinguishesOptions(t *testing.T) {
	base := DefaultOptions("gzip", "GHB")
	seen := map[string]string{base.Fingerprint(): "base"}
	variants := map[string]Options{}

	v := base
	v.Bench = "mcf"
	variants["bench"] = v
	v = base
	v.Mechanism = "SP"
	variants["mechanism"] = v
	v = base
	v.Seed = 7
	variants["seed"] = v
	v = base
	v.InOrder = true
	variants["inorder"] = v
	v = base
	v.QueueOverride = 16
	variants["queue"] = v
	v = base
	v.PrefetchAsDemand = true
	variants["pfd"] = v
	v = base
	v.Insts = 1000
	variants["insts"] = v
	v = base
	v.Hier.L2.Size *= 2
	variants["hier"] = v
	v = base
	v.CPU.RUUSize = 64
	variants["cpu"] = v
	v = base
	v.Params = core.Params{"queue": 1}
	variants["params"] = v

	for name, opt := range variants {
		fp := opt.Fingerprint()
		if prev, dup := seen[fp]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[fp] = name
	}
}

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions("gzip", BaseName)
	if _, err := RunContext(ctx, opts); err != context.Canceled {
		t.Fatalf("pre-canceled context: got %v, want context.Canceled", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions("gzip", BaseName)
	opts.Insts = 50_000_000 // far more than we are willing to wait for
	opts.Warmup = 0

	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, opts)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("got %v, want context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("simulation did not stop after cancellation")
	}
}

package runner

import (
	"reflect"
	"testing"

	"microlib/internal/bus"
	"microlib/internal/cache"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/mech/cdp"
	"microlib/internal/mech/dbcp"
	"microlib/internal/mech/ewb"
	"microlib/internal/mech/fvc"
	"microlib/internal/mech/ghb"
	"microlib/internal/mech/markov"
	"microlib/internal/mech/sp"
	"microlib/internal/mech/tcp"
	"microlib/internal/mech/tk"
	"microlib/internal/mech/tp"
	"microlib/internal/mech/vc"
	"microlib/internal/mem"
	"microlib/internal/prng"
	"microlib/internal/sim"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// snapshotCoverage is the warm-state checkpointing completeness
// ledger, in the style of the cfgreg wiring gate: every field of every
// stateful component is either serialized — captured in the
// component's snapshot state, directly or reconstructibly (a map
// rebuilt from its serialized ring, a count recomputed from serialized
// entries) — or exempted with the reason it need not survive a
// snapshot. A field added to a component without a decision here fails
// TestSnapshotCompleteness, loudly, before an incomplete checkpoint
// can silently break bit-identity.
var snapshotCoverage = []struct {
	typ        any
	serialized []string
	exempt     map[string]string
}{
	{
		typ:        sim.Engine{},
		serialized: []string{"now", "seq", "base", "ring", "occ", "ringCount", "overflow", "scheduled", "executed"},
		exempt: map[string]string{
			"promote":        "batch-promotion scratch, empty between advances",
			"free":           "event-node freelist: an allocation pool, not simulated state",
			"popwisePromote": "benchmark pricing knob: both promotion strategies produce identical event order",
		},
	},
	{
		typ: cache.Cache{},
		serialized: []string{"sets", "useTick", "stallUntil", "portCycle", "portsUsed",
			"mshrs", "mshrsIn", "pq", "pqHead", "pqRetryArm", "stats"},
		exempt: map[string]string{
			"cfg":              "configuration, reproduced by reconstruction",
			"eng":              "wiring, reproduced by reconstruction",
			"backend":          "wiring, reproduced by reconstruction",
			"setMask":          "derived from configuration at construction",
			"lineShift":        "derived from configuration at construction",
			"prefetchAsDemand": "configuration flag applied at machine build",
			"accessObs":        "observer wiring, re-attached by the mechanism at construction",
			"probers":          "observer wiring, re-attached by the mechanism at construction",
			"evictObs":         "observer wiring, re-attached by the mechanism at construction",
			"fillObs":          "observer wiring, re-attached by the mechanism at construction",
			"missObs":          "observer wiring, re-attached by the mechanism at construction",
			"checker":          "debug invariant checker, not armed in checkpointed runs",
		},
	},
	{
		typ:        bus.Bus{},
		serialized: []string{"freeAt", "transfers", "busyCycles", "waitCycles"},
		exempt: map[string]string{
			"name":              "label, reproduced by reconstruction",
			"widthBytes":        "configuration, reproduced by reconstruction",
			"cpuCyclesPerCycle": "configuration, reproduced by reconstruction",
		},
	},
	{
		typ: mem.SDRAM{},
		serialized: []string{"banks", "queue", "stats", "dataBusFreeAt", "lastActAt",
			"anyActed", "kickPlanned", "inflight"},
		exempt: map[string]string{
			"cfg":  "configuration, reproduced by reconstruction",
			"eng":  "wiring, reproduced by reconstruction",
			"name": "label, reproduced by reconstruction",
		},
	},
	{
		typ:        mem.ConstLatency{},
		serialized: []string{"stats"},
		exempt: map[string]string{
			"eng":     "wiring, reproduced by reconstruction",
			"latency": "configuration, reproduced by reconstruction",
		},
	},
	{
		typ: cpu.OoO{},
		serialized: []string{"win", "head", "tail", "readyQ", "lsqUsed",
			"fetchDone", "fetchBlocked", "fetchRetry", "fetchResumeAt",
			"haltOnBranch", "haltBranchSeq", "curFetchLine", "staged", "hasStaged",
			"fetched", "fuCycle", "intALU", "intMD", "fpALU", "fpMD", "ls", "res"},
		exempt: map[string]string{
			"cfg":          "configuration, reproduced by reconstruction",
			"eng":          "wiring, reproduced by reconstruction",
			"h":            "wiring, reproduced by reconstruction",
			"stream":       "the workload cursor is serialized by the runner (StreamState)",
			"fetchScratch": "fetch-loop scratch, dead between Run calls",
			"maxFetch":     "Run-call argument, set by the next Run",
			"freeLoads":    "load-node freelist: in-flight nodes are captured by the LoadResolver, free ones are a pool",
			"stopInsts":    "prefix-run control, cleared before a restored measurement",
			"warmInsts":    "runner warm-up hook, re-armed per run",
			"onWarm":       "runner warm-up hook, re-armed per run",
			"storeAcc":     "commit-stage scratch: Addr/PC rebuilt from the head window entry at every attempt, Write re-bound at construction",
			"headRefuse":   "per-cycle scratch: rewritten by commit() before stallTarget reads it",
			"fetchRefuse":  "per-cycle scratch: rewritten by fetch() before stallTarget reads it",
			"stepRetries":  "bench-only reference knob, never set on a checkpointed run",
		},
	},
	{
		typ:        cpu.InOrder{},
		serialized: []string{"loadAcc", "storeAcc", "waiting", "doneAt", "res"},
		exempt: map[string]string{
			"eng":               "wiring, reproduced by reconstruction",
			"h":                 "wiring, reproduced by reconstruction",
			"stream":            "the workload cursor is serialized by the runner (StreamState)",
			"mispredictPenalty": "configuration, reproduced by reconstruction",
			"warmInsts":         "runner warm-up hook, re-armed per run",
			"onWarm":            "runner warm-up hook, re-armed per run",
			"stepRetries":       "bench-only reference knob, never set on a checkpointed run",
			"instScratch":       "Run-loop scratch, dead between Run calls",
		},
	},
	{
		typ: workload.Generator{},
		serialized: []string{"rng", "patterns", "lastSeq", "phaseIdx", "inPhase",
			"curLoop", "loopIters", "blockIdx", "instIdx", "seq"},
		exempt: map[string]string{
			"prof":      "configuration, reproduced by reconstruction",
			"oracle":    "deterministic value function, seeded once at construction before any stream draw",
			"slotCount": "derived from the profile at construction",
			"phases":    "per-phase loop structure derived from the profile; the serialized cursor indexes into it",
		},
	},
	{
		typ:        trace.File{},
		serialized: []string{"r"},
		exempt: map[string]string{
			"f": "OS file handle; the cursor is serialized as the absolute record index and restored by SeekRecord",
		},
	},
	{
		typ:        prng.Source{},
		serialized: []string{"s"},
	},
	{
		typ: hier.Hierarchy{},
		serialized: []string{"L1D", "L1I", "L2", "L1Bus", "FSB", "Mem",
			"l1dBack", "l1iBack", "memBack", "constBack"},
		exempt: map[string]string{
			"Eng": "the engine snapshots itself (sim.EngineState)",
		},
	},
	{
		typ:        sp.SP{},
		serialized: []string{"table", "reads", "writes", "issued"},
		exempt: map[string]string{
			"l2":     "wiring, reproduced by reconstruction",
			"mask":   "derived from configuration at construction",
			"degree": "configuration, reproduced by reconstruction",
		},
	},
	{
		typ:        tp.TP{},
		serialized: []string{"triggers", "reads", "writes"},
		exempt: map[string]string{
			"l2":       "wiring, reproduced by reconstruction",
			"lineSize": "derived from configuration at construction",
		},
	},
	{
		typ:        ghb.GHB{},
		serialized: []string{"it", "itTags", "buf", "bufPos", "seq", "reads", "writes", "issued", "walks"},
		exempt: map[string]string{
			"l2":      "wiring, reproduced by reconstruction",
			"itMask":  "derived from configuration at construction",
			"degree":  "configuration, reproduced by reconstruction",
			"maxWalk": "configuration, reproduced by reconstruction",
		},
	},
	{
		typ:        tcp.TCP{},
		serialized: []string{"tht", "pht", "reads", "writes", "issued"},
		exempt: map[string]string{
			"l2":        "wiring, reproduced by reconstruction",
			"thtMask":   "derived from configuration at construction",
			"phtSets":   "derived from configuration at construction",
			"phtWays":   "derived from configuration at construction",
			"lineShift": "derived from configuration at construction",
			"setBits":   "derived from configuration at construction",
			"setMask":   "derived from configuration at construction",
		},
	},
	{
		typ:        fvc.FVC{},
		serialized: []string{"lines", "ring", "pos", "Inserts", "Rejected", "Hits", "Probes"},
		exempt: map[string]string{
			"l1":       "wiring, reproduced by reconstruction",
			"values":   "wiring, reproduced by reconstruction",
			"freq":     "static frequent-value set, built at construction",
			"lineSize": "derived from configuration at construction",
		},
	},
	{
		typ:        cdp.CDP{},
		serialized: []string{"depth", "scans", "candidates", "issued"},
		exempt: map[string]string{
			"l2":       "wiring, reproduced by reconstruction",
			"values":   "wiring, reproduced by reconstruction",
			"depthCap": "configuration, reproduced by reconstruction",
			"lineSize": "derived from configuration at construction",
		},
	},
	{
		typ:        cdp.Combined{},
		serialized: []string{"CDP", "SP"},
	},
	{
		typ: dbcp.DBCP{},
		serialized: []string{"live", "table", "pendingKey", "havePend",
			"reads", "writes", "issued", "predictions"},
		exempt: map[string]string{
			"l1":         "wiring, reproduced by reconstruction",
			"historyCap": "configuration, reproduced by reconstruction",
			"ways":       "derived from configuration at construction",
			"sets":       "derived from configuration at construction",
			"buggy":      "configuration, reproduced by reconstruction",
		},
	},
	{
		typ:        vc.VC{},
		serialized: []string{"entries", "tick", "Inserts", "Hits", "Probes", "wbacks"},
		exempt: map[string]string{
			"eng": "wiring, reproduced by reconstruction",
			"l1":  "wiring, reproduced by reconstruction",
		},
	},
	{
		typ: tk.TK{},
		serialized: []string{"lastTouch", "corr", "pendingVictim", "haveVictim",
			"reads", "writes", "issued", "scans"},
		exempt: map[string]string{
			"eng":       "wiring, reproduced by reconstruction",
			"l1":        "wiring, reproduced by reconstruction",
			"refresh":   "configuration, reproduced by reconstruction",
			"threshold": "configuration, reproduced by reconstruction",
			"corrCap":   "configuration, reproduced by reconstruction",
		},
	},
	{
		typ:        tk.TKVC{},
		serialized: []string{"VC", "lastTouch", "Filtered"},
		exempt: map[string]string{
			"l1":        "wiring, reproduced by reconstruction",
			"threshold": "configuration, reproduced by reconstruction",
		},
	},
	{
		typ:        ewb.EWB{},
		serialized: []string{"Eager", "scans"},
		exempt: map[string]string{
			"eng":      "wiring, reproduced by reconstruction",
			"l2":       "wiring, reproduced by reconstruction",
			"interval": "configuration, reproduced by reconstruction",
			"batch":    "configuration, reproduced by reconstruction",
		},
	},
	{
		typ: markov.Markov{},
		serialized: []string{"table", "buffer", "ring", "ringPos", "prevMiss",
			"reads", "writes", "bufHits", "issued"},
		exempt: map[string]string{
			"l1":   "wiring, reproduced by reconstruction",
			"mask": "derived from configuration at construction",
		},
	},
}

// TestSnapshotCompleteness is the checkpoint wiring gate: every field
// of every stateful component must be accounted for — serialized into
// its snapshot state or exempted with a reason. A field that is
// neither (typically: freshly added, mutated during simulation, and
// forgotten by the snapshot) would make restored runs diverge from
// live ones, so it fails here instead.
func TestSnapshotCompleteness(t *testing.T) {
	for _, c := range snapshotCoverage {
		rt := reflect.TypeOf(c.typ)
		name := rt.String()
		ser := make(map[string]bool, len(c.serialized))
		for _, f := range c.serialized {
			ser[f] = true
		}
		seen := make(map[string]bool, rt.NumField())
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i).Name
			seen[f] = true
			reason, exempted := c.exempt[f]
			switch {
			case ser[f] && exempted:
				t.Errorf("%s.%s: both serialized and exempted — drop one", name, f)
			case exempted && reason == "":
				t.Errorf("%s.%s: exemption without a reason", name, f)
			case !ser[f] && !exempted:
				t.Errorf("%s.%s: not in the snapshot state and not exempted — serialize it or add an exemption with a reason", name, f)
			}
		}
		// Hygiene in the other direction: ledger entries must name
		// real fields, or the gate rots as components evolve.
		for _, f := range c.serialized {
			if !seen[f] {
				t.Errorf("%s.%s: serialized entry names no such field (typo or removed field)", name, f)
			}
		}
		for f := range c.exempt {
			if !seen[f] {
				t.Errorf("%s.%s: exemption names no such field (stale)", name, f)
			}
		}
	}
}

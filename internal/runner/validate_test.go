package runner

import (
	"strings"
	"testing"

	"microlib/internal/hier"
)

func TestValidateDefaultOptions(t *testing.T) {
	if err := DefaultOptions("gzip", "Base").Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestZeroRUUIsAnErrorNotAPanic pins the bugfix: a zero window size
// used to reach cpu.NewOoO and panic inside the simulation; it must
// surface as an error from Run.
func TestZeroRUUIsAnErrorNotAPanic(t *testing.T) {
	opts := DefaultOptions("gzip", "Base")
	opts.CPU.RUUSize = 0
	if err := opts.Validate(); err == nil || !strings.Contains(err.Error(), "window sizes") {
		t.Fatalf("want window-size error, got %v", err)
	}
	if _, err := Run(opts); err == nil {
		t.Fatal("Run accepted a zero RUU size")
	}
}

func TestValidateInOrderIgnoresCPUGeometry(t *testing.T) {
	opts := DefaultOptions("gzip", "Base")
	opts.InOrder = true
	opts.CPU.RUUSize = 0 // the scalar core has no window
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateHierarchy(t *testing.T) {
	opts := DefaultOptions("gzip", "Base")
	opts.Hier.L1D.Size = 48 << 10
	opts.Hier.L1D.LineSize = 48 // divides the size but is not a power of two
	if err := opts.Validate(); err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Fatalf("want line-size error, got %v", err)
	}

	opts = DefaultOptions("gzip", "Base")
	opts.Hier.SDRAM.Banks = 0
	if err := opts.Validate(); err == nil || !strings.Contains(err.Error(), "bank") {
		t.Fatalf("want sdram bank error, got %v", err)
	}

	// The SDRAM device parameters are only read by the detailed model;
	// a const70 hierarchy with a broken SDRAM sub-config is still
	// runnable (but needs a latency).
	opts.Hier = opts.Hier.WithMemory(hier.MemConst70)
	if err := opts.Validate(); err != nil {
		t.Fatal(err)
	}
	opts.Hier.ConstLatency = 0
	if err := opts.Validate(); err == nil {
		t.Fatal("zero constant latency accepted")
	}

	opts = DefaultOptions("gzip", "Base")
	opts.QueueOverride = -1
	if err := opts.Validate(); err == nil {
		t.Fatal("negative queue override accepted")
	}
}

package runner

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microlib/internal/trace"
	"microlib/internal/workload"
)

func testProfile(name string) workload.Profile {
	return workload.Profile{
		Name:     name,
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1, Mispredict: 0.04,
		CodeKB: 16, BlockLen: 6, DepMean: 5, FVProb: 0.1,
		Patterns: []workload.PatternSpec{
			{Kind: workload.PatHot, Size: 8 << 10},
			{Kind: workload.PatStride, Size: 1 << 20, Stride: 64},
		},
		Phases: []workload.PhaseSpec{{Len: 20_000, Weights: []float64{8, 2}}},
	}
}

func smallOpts() Options {
	o := DefaultOptions("", "Base")
	o.Insts = 8_000
	o.Warmup = 2_000
	return o
}

// recordTrace captures insts instructions of a stream to a temp file.
func recordTrace(t *testing.T, s trace.Stream, insts uint64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "w.mlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := trace.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	var inst trace.Inst
	for i := uint64(0); i < insts && s.Next(&inst); i++ {
		if err := w.Write(&inst); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestProfileWorkloadRunsDeterministically(t *testing.T) {
	w, err := NewProfileWorkload(testProfile("prof-det"))
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Workload = w
	r1, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r1.CPU.Cycles != r2.CPU.Cycles || r1.L1D != r2.L1D {
		t.Fatalf("profile workload not deterministic: %d vs %d cycles", r1.CPU.Cycles, r2.CPU.Cycles)
	}
	if r1.Bench != "prof-det" {
		t.Fatalf("bench label %q, want profile name", r1.Bench)
	}
	if r1.CPU.Insts != opts.Warmup+opts.Insts {
		t.Fatalf("ran %d insts", r1.CPU.Insts)
	}
}

// TestTraceReplayMatchesGenerator: replaying a recorded built-in
// stream must be bit-identical to generating it live — the trace
// format carries everything the host core and hierarchy consume.
func TestTraceReplayMatchesGenerator(t *testing.T) {
	opts := smallOpts()
	opts.Bench = "gzip"
	direct, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}

	gen, err := workload.New("gzip", opts.Seed)
	if err != nil {
		t.Fatal(err)
	}
	path := recordTrace(t, gen, opts.Warmup+opts.Insts)
	w, err := NewTraceWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	topts := smallOpts()
	topts.Bench = "gzip-replay"
	topts.Workload = w
	replay, err := Run(topts)
	if err != nil {
		t.Fatal(err)
	}
	if replay.CPU.Cycles != direct.CPU.Cycles ||
		replay.L1D != direct.L1D || replay.L2 != direct.L2 || replay.Mem != direct.Mem {
		t.Fatalf("replay diverged from generator:\n replay %d cycles %+v\n direct %d cycles %+v",
			replay.CPU.Cycles, replay.L1D, direct.CPU.Cycles, direct.L1D)
	}
}

func TestTraceTooShortIsError(t *testing.T) {
	gen, _ := workload.New("gzip", 42)
	path := recordTrace(t, gen, 3_000)
	w, err := NewTraceWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Workload = w
	_, err = Run(opts)
	if err == nil || !strings.Contains(err.Error(), "ended after") {
		t.Fatalf("short trace must fail the run, got %v", err)
	}
}

func TestTruncatedTraceIsError(t *testing.T) {
	gen, _ := workload.New("gzip", 42)
	// Fewer records than the 10k budget, cut mid-record: the reader
	// hits the damage inside the simulated window.
	path := recordTrace(t, gen, 9_000)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-17); err != nil {
		t.Fatal(err)
	}
	// The constructor already refuses the damaged file (HashFile
	// validates whole-record length)...
	if _, err := NewTraceWorkload(path); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("NewTraceWorkload must reject a truncated trace, got %v", err)
	}
	// ...and the runtime reader is the defense in depth when the
	// damage postdates hashing (hand-built Workload, no constructor).
	opts := smallOpts()
	opts.Workload = &Workload{TracePath: path}
	_, err = Run(opts)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated trace must fail the run, got %v", err)
	}
}

func TestValueMechanismRejectsTraceWorkload(t *testing.T) {
	gen, _ := workload.New("gzip", 42)
	path := recordTrace(t, gen, 11_000)
	w, err := NewTraceWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := smallOpts()
	opts.Mechanism = "CDP"
	opts.Workload = w
	_, err = Run(opts)
	if err == nil || !strings.Contains(err.Error(), "memory values") {
		t.Fatalf("CDP on a trace must fail (no value oracle), got %v", err)
	}
}

// TestWorkloadFingerprintIdentity: custom workload identity is
// content, not name or path.
func TestWorkloadFingerprintIdentity(t *testing.T) {
	wA, err := NewProfileWorkload(testProfile("same"))
	if err != nil {
		t.Fatal(err)
	}
	wB, err := NewProfileWorkload(testProfile("same"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := smallOpts(), smallOpts()
	a.Workload, b.Workload = wA, wB
	a.Bench, b.Bench = "label-one", "label-two"
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal profile content must share a fingerprint regardless of label")
	}

	// Any profile edit changes the fingerprint.
	edited := testProfile("same")
	edited.Patterns[1].Stride = 128
	wC, err := NewProfileWorkload(edited)
	if err != nil {
		t.Fatal(err)
	}
	c := smallOpts()
	c.Workload = wC
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("edited profile kept its fingerprint")
	}

	// Built-in bench named like the profile never conflates with it.
	d := smallOpts()
	d.Bench = "same"
	if d.Fingerprint() == a.Fingerprint() {
		t.Fatal("built-in name conflated with custom workload")
	}

	// Trace identity: path is irrelevant, bytes are everything.
	gen, _ := workload.New("gzip", 42)
	p1 := recordTrace(t, gen, 5_000)
	data, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	p2 := filepath.Join(t.TempDir(), "elsewhere.mlt")
	if err := os.WriteFile(p2, data, 0o644); err != nil {
		t.Fatal(err)
	}
	t1, err := NewTraceWorkload(p1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewTraceWorkload(p2)
	if err != nil {
		t.Fatal(err)
	}
	e, f := smallOpts(), smallOpts()
	e.Workload, f.Workload = t1, t2
	if e.Fingerprint() != f.Fingerprint() {
		t.Fatal("identical trace content at two paths must share a fingerprint")
	}
	gen2, _ := workload.New("gzip", 43)
	p3 := recordTrace(t, gen2, 5_000)
	t3, err := NewTraceWorkload(p3)
	if err != nil {
		t.Fatal(err)
	}
	g := smallOpts()
	g.Workload = t3
	if g.Fingerprint() == e.Fingerprint() {
		t.Fatal("different trace content shared a fingerprint")
	}
	if e.Fingerprint() == a.Fingerprint() {
		t.Fatal("trace and profile workloads conflated")
	}

	// A hand-built Workload (no constructor, no SHA) still keys on
	// content: identity hashes the file lazily.
	h := smallOpts()
	h.Workload = &Workload{TracePath: p1}
	if h.Fingerprint() != e.Fingerprint() {
		t.Fatal("hand-built trace workload fingerprint is not content-based")
	}
}

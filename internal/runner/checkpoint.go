package runner

import (
	"context"
	"errors"
	"fmt"

	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/mem"
	"microlib/internal/sim"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// This file implements warm-state checkpointing: a campaign pays for
// each distinct warm-up prefix once, snapshots the whole simulated
// machine at the warm-up boundary, and forks the measurement phase of
// every cell that shares the prefix from the snapshot. Two tiers
// exist, because two different kinds of sweep repeat work:
//
//   - A machine checkpoint (RunPrefixContext / RunFromCheckpoint)
//     captures the full machine — calendar, caches, memory, core,
//     mechanism, stream cursor — keyed by PrefixFingerprint. Cells
//     sharing it differ only in the measured budget.
//   - A stream checkpoint (CaptureStreamContext / RunWithStreamContext)
//     captures only the post-skip workload cursor, keyed by
//     StreamFingerprint. Cells sharing it may differ in any machine
//     parameter, so it accelerates geometry and mechanism sweeps where
//     the machine prefix diverges but the skipped stream is identical.
//
// Both restores are bit-identical to a live run: the restored engine
// preserves the (when, seq) event order and its own sequence counter,
// and every component overwrites its mutable state from plain data.

// CheckpointVersion tags the serialized state layout. Bump it whenever
// any component's snapshot struct changes shape or meaning — a stale
// checkpoint must be discarded, never reinterpreted.
//
// v2: cpu.Result gained the per-reason retry counters
// (RetryPort/RetryStall/RetryMSHR), changing the gob shape of both
// cores' serialized state.
const CheckpointVersion = 2

// ErrCheckpointUnusable marks a checkpoint that cannot serve the
// requested run (version skew, prefix mismatch, measured budget inside
// the fetch horizon, interval telemetry requested). Callers detecting
// it fall back to a cold run; any other error is a real failure.
var ErrCheckpointUnusable = errors.New("checkpoint unusable")

// WarmStats are the running statistics at the warm-up boundary. A
// restored measurement subtracts them exactly as a live run subtracts
// the boundary snapshot its warm-up hook captured.
type WarmStats struct {
	Cycles uint64
	L1D    cache.Stats
	L1I    cache.Stats
	L2     cache.Stats
	Mem    mem.Stats
}

// StreamState is a workload cursor: the generator's mutable state for
// synthetic workloads, or the absolute record index for recorded
// traces.
type StreamState struct {
	Gen      *workload.GeneratorState
	TraceRec uint64
}

// MachineState is the full mutable state of a simulated machine.
// Exactly one of OoO and InOrder is set, matching the configured host
// core; Loads is the payload table for the OoO core's in-flight pooled
// load nodes referenced from the engine and cache snapshots.
type MachineState struct {
	Engine  sim.EngineState
	Hier    hier.State
	OoO     *cpu.OoOState
	InOrder *cpu.InOrderState
	Loads   []cpu.LoadState
	Mech    any
	Stream  StreamState
}

// Checkpoint is a warm-state snapshot: the machine at the warm-up
// boundary plus the boundary statistics a measured run subtracts.
type Checkpoint struct {
	Version int
	// Prefix is the generating options' PrefixCanonical form, kept in
	// full so a fingerprint collision surfaces as a mismatch instead
	// of silently restoring the wrong machine.
	Prefix string
	// MinInsts is the fetch horizon: the out-of-order core had already
	// fetched this many instructions past the warm-up commit when the
	// snapshot was taken (fetch runs ahead of commit). A measured
	// budget must strictly exceed it, or the equivalent live run would
	// have capped fetch inside the prefix and diverged. Always zero
	// for the scalar core.
	MinInsts uint64
	Warm     WarmStats
	Machine  MachineState
}

// StreamCheckpoint is a post-skip workload cursor snapshot.
type StreamCheckpoint struct {
	Version int
	// Key is the generating options' StreamCanonical form (kept in
	// full, like Checkpoint.Prefix).
	Key   string
	State StreamState
}

// opRefCore and opRefMech are the runner-level operand domains: the
// host core and the mechanism are singletons per machine, referenced
// by kind alone.
const (
	opRefCore = "cpu.core"
	opRefMech = "mech"
)

// captureState snapshots the machine's full mutable state. The operand
// resolution chain is hierarchy (components and pooled request nodes)
// → OoO load nodes → runner singletons (host core, mechanism).
func (m *Machine) captureState() (MachineState, error) {
	var st MachineState
	tail := func(v any) (sim.OpRef, bool) {
		if m.ooo != nil && v == any(m.ooo) {
			return sim.OpRef{Kind: opRefCore}, true
		}
		if m.ino != nil && v == any(m.ino) {
			return sim.OpRef{Kind: opRefCore}, true
		}
		if m.mech != nil && v == any(m.mech) {
			return sim.OpRef{Kind: opRefMech}, true
		}
		return sim.OpRef{}, false
	}
	next := tail
	var loadRes *cpu.LoadResolver
	if m.ooo != nil {
		loadRes = m.ooo.NewLoadResolver()
		next = func(v any) (sim.OpRef, bool) {
			if r, ok := loadRes.Ref(v); ok {
				return r, true
			}
			return tail(v)
		}
	}
	snap := m.h.NewSnapshotter(&st.Hier, next)
	if err := snap.Capture(); err != nil {
		return MachineState{}, err
	}
	est, err := m.eng.Snapshot(snap.Ref)
	if err != nil {
		return MachineState{}, err
	}
	st.Engine = est

	if m.ooo != nil {
		ost := m.ooo.State()
		st.OoO = &ost
		st.Loads = loadRes.Loads()
	} else {
		ist := m.ino.State()
		st.InOrder = &ist
	}
	if m.mech != nil {
		ms, ok := m.mech.(core.Snapshotter)
		if !ok {
			return MachineState{}, fmt.Errorf("runner: mechanism %s has no snapshot support", m.opts.Mechanism)
		}
		st.Mech = ms.SnapState()
	}
	if m.gen != nil {
		gs := m.gen.State()
		st.Stream.Gen = &gs
	} else if m.tf != nil {
		st.Stream.TraceRec = m.tf.Count()
	}
	return st, nil
}

// restoreState overwrites the machine's full mutable state from a
// snapshot taken on an identically-configured machine. It is a full
// overwrite — the engine is reset, caches, memory, core and mechanism
// replace every mutable field — so restoring into a machine that
// already ran a measurement is equivalent to restoring into a fresh
// one, which is what lets a campaign worker reuse one machine arena
// per prefix group.
func (m *Machine) restoreState(st *MachineState) error {
	if (st.OoO != nil) == (st.InOrder != nil) {
		return fmt.Errorf("runner: snapshot must hold exactly one core state")
	}
	if (st.OoO != nil) != (m.ooo != nil) {
		return fmt.Errorf("runner: snapshot core kind does not match the machine")
	}
	tail := func(ref sim.OpRef) (any, bool) {
		switch ref.Kind {
		case opRefCore:
			if m.ooo != nil {
				return m.ooo, true
			}
			return m.ino, true
		case opRefMech:
			if m.mech != nil {
				return m.mech, true
			}
		}
		return nil, false
	}
	next := tail
	var loadRest *cpu.LoadRestorer
	if m.ooo != nil {
		loadRest = m.ooo.NewLoadRestorer(st.Loads)
		next = func(ref sim.OpRef) (any, bool) {
			if v, ok := loadRest.Val(ref); ok {
				return v, true
			}
			return tail(ref)
		}
	}
	rest := m.h.NewRestorer(&st.Hier, next)
	if err := m.eng.Restore(st.Engine, rest.Val); err != nil {
		return err
	}
	if err := rest.Apply(); err != nil {
		return err
	}
	if m.ooo != nil {
		if err := m.ooo.SetState(*st.OoO); err != nil {
			return err
		}
	} else {
		m.ino.SetState(*st.InOrder)
	}
	if m.mech != nil {
		ms, ok := m.mech.(core.Snapshotter)
		if !ok {
			return fmt.Errorf("runner: mechanism %s has no snapshot support", m.opts.Mechanism)
		}
		if err := ms.RestoreState(st.Mech); err != nil {
			return err
		}
	} else if st.Mech != nil {
		return fmt.Errorf("runner: snapshot holds %T mechanism state, machine runs Base", st.Mech)
	}
	if m.gen != nil {
		if st.Stream.Gen == nil {
			return fmt.Errorf("runner: snapshot holds no generator cursor")
		}
		if err := m.gen.SetState(*st.Stream.Gen); err != nil {
			return err
		}
	} else if m.tf != nil {
		if err := m.tf.SeekRecord(st.Stream.TraceRec); err != nil {
			return err
		}
	}
	return nil
}

// RunPrefixContext simulates one warm-up prefix (skip + warm-up) and
// captures the machine at the warm-up boundary. The returned
// checkpoint serves RunFromCheckpoint for any options sharing the
// prefix fingerprint whose measured budget exceeds MinInsts.
func RunPrefixContext(ctx context.Context, opts Options) (*Checkpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Insts == 0 {
		opts.Insts = defaultInsts
	}
	if opts.Warmup == 0 {
		return nil, fmt.Errorf("runner: a warm-state checkpoint needs Warmup > 0")
	}
	m, err := newMachine(ctx, opts, true, false)
	if err != nil {
		return nil, err
	}
	defer m.Close()

	ck := &Checkpoint{Version: CheckpointVersion, Prefix: opts.PrefixCanonical()}
	m.host.SetWarmup(opts.Warmup, func(cycles uint64) { ck.Warm = m.warmStats(cycles) })
	var cres cpu.Result
	if m.ooo != nil {
		// Fetch runs unbounded and the core stops at the first loop
		// boundary past the warm-up commit — the exact machine state a
		// live measured run passes through, for any measured budget
		// beyond the fetch horizon.
		m.ooo.SetStop(opts.Warmup)
		cres = m.ooo.Run(^uint64(0))
		m.ooo.SetStop(0)
	} else {
		cres = m.ino.Run(opts.Warmup)
	}
	if cres.Insts < opts.Warmup {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if m.traceDone != nil {
			if err := m.traceDone(); err != nil {
				return nil, fmt.Errorf("runner: %s: %w", opts.Workload.TracePath, err)
			}
		}
		return nil, fmt.Errorf("runner: stream ended after %d of %d warm-up instructions (skip=%d)",
			cres.Insts, opts.Warmup, opts.Skip)
	}
	st, err := m.captureState()
	if err != nil {
		return nil, err
	}
	ck.Machine = st
	if st.OoO != nil {
		ck.MinInsts = st.OoO.Fetched - opts.Warmup
	}
	return ck, nil
}

// NewCheckpointMachine builds a machine wired for checkpoint restores:
// identical to a cold machine except the stream is left at its origin
// (the snapshot positions it). A campaign worker keeps one per prefix
// group and restores into it for every cell, so the arena — cache
// arrays, calendar nodes, window slots — is paid for once.
func NewCheckpointMachine(ctx context.Context, opts Options) (*Machine, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.Insts == 0 {
		opts.Insts = defaultInsts
	}
	return newMachine(ctx, opts, false, true)
}

// RunFromCheckpoint restores the checkpoint into the machine and runs
// the measurement phase. The options must share the machine's prefix
// (only the measured budget may differ).
func (m *Machine) RunFromCheckpoint(ctx context.Context, opts Options, ck *Checkpoint) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Insts == 0 {
		opts.Insts = defaultInsts
	}
	if opts.Interval > 0 && opts.IntervalSink != nil {
		// Interval telemetry emits boundaries during warm-up; a
		// restored run skips the warm-up, so the series cannot be
		// reproduced. Sampled cells run cold.
		return Result{}, fmt.Errorf("runner: interval telemetry needs a cold run: %w", ErrCheckpointUnusable)
	}
	if ck.Version != CheckpointVersion {
		return Result{}, fmt.Errorf("runner: checkpoint version %d, want %d: %w", ck.Version, CheckpointVersion, ErrCheckpointUnusable)
	}
	prefix := opts.PrefixCanonical()
	if ck.Prefix != prefix {
		return Result{}, fmt.Errorf("runner: checkpoint prefix mismatch: %w", ErrCheckpointUnusable)
	}
	if m.opts.PrefixCanonical() != prefix {
		return Result{}, fmt.Errorf("runner: machine prefix does not match the requested options: %w", ErrCheckpointUnusable)
	}
	if m.ooo != nil && opts.Insts <= ck.MinInsts {
		return Result{}, fmt.Errorf("runner: measured budget %d is inside the checkpoint fetch horizon %d: %w",
			opts.Insts, ck.MinInsts, ErrCheckpointUnusable)
	}
	if err := m.restoreState(&ck.Machine); err != nil {
		return Result{}, err
	}
	if m.cancel != nil {
		// Re-aim a reused machine's stream at this cell's context (the
		// poll counter is observability only; resetting it keeps the
		// cadence identical across reuses).
		m.cancel.ctx = ctx
		m.cancel.n = 0
	}
	if m.ooo != nil {
		m.ooo.SetStop(0)
	}
	m.host.SetWarmup(0, nil)
	m.opts.Insts = opts.Insts
	total := opts.Warmup + opts.Insts
	cres := m.host.Run(total)
	return m.finish(ctx, ck.Warm, cres, total)
}

// RunFromCheckpointContext restores a checkpoint into a fresh machine
// and runs the measurement phase.
func RunFromCheckpointContext(ctx context.Context, opts Options, ck *Checkpoint) (Result, error) {
	m, err := NewCheckpointMachine(ctx, opts)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()
	return m.RunFromCheckpoint(ctx, opts, ck)
}

// CaptureStreamContext captures the post-skip workload cursor without
// building a machine. For recorded traces the cursor is the skip count
// itself; for synthetic workloads the generator is stepped through the
// skipped instructions once and its state captured.
func CaptureStreamContext(ctx context.Context, opts Options) (*StreamCheckpoint, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sc := &StreamCheckpoint{Version: CheckpointVersion, Key: opts.StreamCanonical()}
	if opts.Workload != nil && opts.Workload.TracePath != "" {
		sc.State.TraceRec = opts.Skip
		return sc, nil
	}
	var gen *workload.Generator
	if opts.Workload != nil {
		stream, _, _, _, err := opts.Workload.open(opts.Seed)
		if err != nil {
			return nil, err
		}
		gen = stream.(*workload.Generator)
	} else {
		g, err := workload.New(opts.Bench, opts.Seed)
		if err != nil {
			return nil, err
		}
		gen = g
	}
	var inst trace.Inst
	for i := uint64(0); i < opts.Skip; i++ {
		if i&8191 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !gen.Next(&inst) {
			return nil, fmt.Errorf("runner: stream ended after %d of %d skipped instructions", i, opts.Skip)
		}
	}
	gs := gen.State()
	sc.State.Gen = &gs
	return sc, nil
}

// RunWithStreamContext runs a full simulation (warm-up and all) with
// the skip phase replaced by the captured cursor. The run is
// bit-identical to a cold one — positioning the stream by state
// restore and by consuming Skip instructions land the source on the
// same instruction — so, unlike machine-checkpoint restores, interval
// telemetry is supported.
func RunWithStreamContext(ctx context.Context, opts Options, sc *StreamCheckpoint) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Insts == 0 {
		opts.Insts = defaultInsts
	}
	if sc.Version != CheckpointVersion {
		return Result{}, fmt.Errorf("runner: stream checkpoint version %d, want %d: %w", sc.Version, CheckpointVersion, ErrCheckpointUnusable)
	}
	if key := opts.StreamCanonical(); sc.Key != key {
		return Result{}, fmt.Errorf("runner: stream checkpoint key mismatch: %w", ErrCheckpointUnusable)
	}
	m, err := newMachine(ctx, opts, false, false)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()
	if m.gen != nil {
		if sc.State.Gen == nil {
			return Result{}, fmt.Errorf("runner: stream checkpoint holds no generator cursor")
		}
		if err := m.gen.SetState(*sc.State.Gen); err != nil {
			return Result{}, err
		}
	} else if m.tf != nil {
		if err := m.tf.SeekRecord(sc.State.TraceRec); err != nil {
			return Result{}, err
		}
	}
	return m.runMeasured(ctx, opts)
}

package runner

import "testing"

// TestSmokeBase checks that a base simulation completes and produces
// a sane IPC on a representative benchmark.
func TestSmokeBase(t *testing.T) {
	opts := DefaultOptions("gzip", BaseName)
	opts.Insts = 20_000
	opts.Warmup = 10_000
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Insts != 30_000 {
		t.Fatalf("committed %d insts, want 30000 (warmup+measured)", res.CPU.Insts)
	}
	if res.IPC <= 0.05 || res.IPC > 8 {
		t.Fatalf("implausible IPC %.3f", res.IPC)
	}
	if res.L1D.Accesses == 0 {
		t.Fatal("no L1D accesses recorded")
	}
	t.Logf("gzip base: IPC=%.3f l1dMiss=%.3f l2acc=%d memReads=%d avgMemLat=%.0f",
		res.IPC, res.L1D.MissRatio(), res.L2.Accesses, res.Mem.Reads, res.Mem.AvgReadLatency())
}

// TestSmokeAllMechanisms runs every mechanism briefly on one
// benchmark to shake out wiring problems.
func TestSmokeAllMechanisms(t *testing.T) {
	for _, m := range []string{"TP", "VC", "SP", "Markov", "FVC", "DBCP", "TKVC", "TK", "CDP", "CDPSP", "TCP", "GHB"} {
		m := m
		t.Run(m, func(t *testing.T) {
			opts := DefaultOptions("mcf", m)
			opts.Insts = 10_000
			opts.Warmup = 5_000
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.CPU.Insts != 15_000 {
				t.Fatalf("committed %d insts", res.CPU.Insts)
			}
			t.Logf("%s on mcf: IPC=%.3f", m, res.IPC)
		})
	}
}

package runner

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"microlib/internal/hier"
	"microlib/internal/telemetry"
	"microlib/internal/workload"
)

// normalize strips the live mechanism instance so two Results from
// different machines compare by value. Everything else — cycle counts,
// every cache/memory counter, IPC, hardware tables — must match
// bit-for-bit between a cold run and a checkpoint-restored one.
func normalize(r Result) Result {
	r.Mech = nil
	return r
}

func requireIdentical(t *testing.T, label string, cold, warm Result) {
	t.Helper()
	if !reflect.DeepEqual(normalize(cold), normalize(warm)) {
		t.Fatalf("%s: restored run diverged from live run\ncold: %+v\nwarm: %+v", label, normalize(cold), normalize(warm))
	}
}

// TestCheckpointRestoreBitIdentity is the golden matrix: both host
// cores, every memory kind, a representative set of mechanisms
// (including ones that keep calendar events in flight: prefetchers,
// the victim cache's dirty marking, the eager write-back sweeps). For
// each cell a warm prefix is captured once and two measured budgets
// are forked from it; each must equal its cold run exactly.
func TestCheckpointRestoreBitIdentity(t *testing.T) {
	mems := []hier.MemoryKind{hier.MemSDRAM, hier.MemConst70, hier.MemSDRAM70}
	type cell struct {
		mech    string
		inOrder bool
	}
	cells := []cell{
		{"Base", false},
		{"Base", true},
		{"SP", false},
		{"Markov", false},
		{"EWB", false},
		{"VC", true},
	}
	for _, mem := range mems {
		for _, c := range cells {
			label := fmt.Sprintf("%s/%s/inorder=%t", mem, c.mech, c.inOrder)
			t.Run(label, func(t *testing.T) {
				opts := DefaultOptions("mcf", c.mech)
				opts.Hier = opts.Hier.WithMemory(mem)
				opts.InOrder = c.inOrder
				opts.Seed = 7
				opts.Skip = 1_000
				opts.Warmup = 3_000
				opts.Insts = 6_000

				ck, err := RunPrefixContext(context.Background(), opts)
				if err != nil {
					t.Fatalf("prefix: %v", err)
				}
				for _, insts := range []uint64{6_000, 4_000} {
					opts.Insts = insts
					cold, err := Run(opts)
					if err != nil {
						t.Fatalf("cold insts=%d: %v", insts, err)
					}
					warm, err := RunFromCheckpointContext(context.Background(), opts, ck)
					if err != nil {
						t.Fatalf("warm insts=%d: %v", insts, err)
					}
					requireIdentical(t, fmt.Sprintf("%s insts=%d", label, insts), cold, warm)
				}
			})
		}
	}
}

// TestCheckpointRestoreBitIdentityTrace covers recorded-trace
// workloads: the restore re-establishes the file cursor by seeking,
// not by re-reading the prefix.
func TestCheckpointRestoreBitIdentityTrace(t *testing.T) {
	gen, err := workload.New("mcf", 11)
	if err != nil {
		t.Fatal(err)
	}
	path := recordTrace(t, gen, 12_000)
	for _, inOrder := range []bool{false, true} {
		t.Run(fmt.Sprintf("inorder=%t", inOrder), func(t *testing.T) {
			w, err := NewTraceWorkload(path)
			if err != nil {
				t.Fatal(err)
			}
			opts := DefaultOptions("", "SP")
			opts.Workload = w
			opts.InOrder = inOrder
			opts.Skip = 1_000
			opts.Warmup = 2_000
			opts.Insts = 4_000

			ck, err := RunPrefixContext(context.Background(), opts)
			if err != nil {
				t.Fatalf("prefix: %v", err)
			}
			cold, err := Run(opts)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			warm, err := RunFromCheckpointContext(context.Background(), opts, ck)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			requireIdentical(t, "trace", cold, warm)
		})
	}
}

// TestCheckpointMachineReuse restores one checkpoint into the same
// machine arena repeatedly — the campaign worker's steady state — and
// requires every forked measurement to equal its cold run.
func TestCheckpointMachineReuse(t *testing.T) {
	opts := DefaultOptions("mcf", "SP")
	opts.Seed = 3
	opts.Skip = 500
	opts.Warmup = 2_000
	opts.Insts = 5_000

	ck, err := RunPrefixContext(context.Background(), opts)
	if err != nil {
		t.Fatalf("prefix: %v", err)
	}
	m, err := NewCheckpointMachine(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// Descending then ascending budgets, so at least one restore must
	// overwrite state left behind by a longer previous run.
	for _, insts := range []uint64{5_000, 3_000, 4_000} {
		opts.Insts = insts
		cold, err := Run(opts)
		if err != nil {
			t.Fatalf("cold insts=%d: %v", insts, err)
		}
		warm, err := m.RunFromCheckpoint(context.Background(), opts, ck)
		if err != nil {
			t.Fatalf("warm insts=%d: %v", insts, err)
		}
		requireIdentical(t, fmt.Sprintf("reuse insts=%d", insts), cold, warm)
	}
}

// TestStreamCheckpointBitIdentity shares one post-skip cursor across
// machine configurations that differ in core geometry and memory kind
// — the sweep shape the machine checkpoint cannot serve.
func TestStreamCheckpointBitIdentity(t *testing.T) {
	base := DefaultOptions("mcf", "Base")
	base.Seed = 19
	base.Skip = 20_000
	base.Warmup = 1_000
	base.Insts = 3_000

	sc, err := CaptureStreamContext(context.Background(), base)
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	variants := []func(o Options) Options{
		func(o Options) Options { return o },
		func(o Options) Options { o.CPU.RUUSize /= 2; o.CPU.LSQSize /= 2; return o },
		func(o Options) Options { o.Hier = o.Hier.WithMemory(hier.MemConst70); return o },
		func(o Options) Options { o.Mechanism = "SP"; return o },
		func(o Options) Options { o.InOrder = true; return o },
	}
	for i, v := range variants {
		opts := v(base)
		cold, err := Run(opts)
		if err != nil {
			t.Fatalf("cold variant %d: %v", i, err)
		}
		warm, err := RunWithStreamContext(context.Background(), opts, sc)
		if err != nil {
			t.Fatalf("warm variant %d: %v", i, err)
		}
		requireIdentical(t, fmt.Sprintf("stream variant %d", i), cold, warm)
	}
}

// TestStreamCheckpointTraceIsSeekOnly verifies the trace fast path:
// the cursor is the skip count, no file is read at capture time.
func TestStreamCheckpointTraceIsSeekOnly(t *testing.T) {
	gen, err := workload.New("mcf", 23)
	if err != nil {
		t.Fatal(err)
	}
	path := recordTrace(t, gen, 9_000)
	w, err := NewTraceWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions("", "Base")
	opts.Workload = w
	opts.Skip = 2_000
	opts.Warmup = 1_000
	opts.Insts = 3_000

	sc, err := CaptureStreamContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if sc.State.Gen != nil || sc.State.TraceRec != opts.Skip {
		t.Fatalf("trace stream checkpoint = %+v, want record index %d", sc.State, opts.Skip)
	}
	cold, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunWithStreamContext(context.Background(), opts, sc)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "trace stream", cold, warm)
}

// TestCheckpointUnusableGuards exercises every fall-back-to-cold
// condition: version skew, prefix mismatch, a measured budget inside
// the fetch horizon, and interval telemetry.
func TestCheckpointUnusableGuards(t *testing.T) {
	opts := DefaultOptions("mcf", "Base")
	opts.Skip = 500
	opts.Warmup = 2_000
	opts.Insts = 5_000

	ck, err := RunPrefixContext(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	stale := *ck
	stale.Version++
	if _, err := RunFromCheckpointContext(context.Background(), opts, &stale); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("version skew: err = %v, want ErrCheckpointUnusable", err)
	}

	other := opts
	other.Warmup++
	if _, err := RunFromCheckpointContext(context.Background(), other, ck); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("prefix mismatch: err = %v, want ErrCheckpointUnusable", err)
	}

	if ck.MinInsts > 0 {
		small := opts
		small.Insts = ck.MinInsts
		if _, err := RunFromCheckpointContext(context.Background(), small, ck); !errors.Is(err, ErrCheckpointUnusable) {
			t.Fatalf("budget inside fetch horizon: err = %v, want ErrCheckpointUnusable", err)
		}
	}

	sampled := opts
	sampled.Interval = 1_000
	sampled.IntervalSink = func(telemetry.Interval) {}
	if _, err := RunFromCheckpointContext(context.Background(), sampled, ck); !errors.Is(err, ErrCheckpointUnusable) {
		t.Fatalf("interval telemetry: err = %v, want ErrCheckpointUnusable", err)
	}
}

// TestPrefixFingerprintGroups verifies the grouping key: the measured
// budget is masked, everything else is not.
func TestPrefixFingerprintGroups(t *testing.T) {
	a := DefaultOptions("mcf", "SP")
	b := a
	b.Insts = a.Insts * 2
	if a.PrefixFingerprint() != b.PrefixFingerprint() {
		t.Fatal("budgets must share a prefix fingerprint")
	}
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("budgets must not share a full fingerprint")
	}
	for _, mut := range []func(*Options){
		func(o *Options) { o.Warmup++ },
		func(o *Options) { o.Skip++ },
		func(o *Options) { o.Seed++ },
		func(o *Options) { o.Mechanism = "GHB" },
		func(o *Options) { o.InOrder = true },
		func(o *Options) { o.CPU.RUUSize *= 2 },
		func(o *Options) { o.Hier = o.Hier.WithMemory(hier.MemConst70) },
	} {
		c := a
		mut(&c)
		if a.PrefixFingerprint() == c.PrefixFingerprint() {
			t.Fatalf("prefix fingerprint failed to separate %s from %s", a.PrefixCanonical(), c.PrefixCanonical())
		}
	}
	// The stream key ignores machine configuration entirely.
	d := a
	d.CPU.RUUSize *= 2
	d.Mechanism = "GHB"
	d.Insts++
	d.Warmup++
	if a.StreamFingerprint() != d.StreamFingerprint() {
		t.Fatal("machine configuration must not enter the stream fingerprint")
	}
	e := a
	e.Skip++
	if a.StreamFingerprint() == e.StreamFingerprint() {
		t.Fatal("skip must enter the stream fingerprint")
	}
}

package runner

import (
	"testing"

	"microlib/internal/telemetry"
)

// TestIntervalConsistencyGoldenMatrix pins the two telemetry
// contracts on the full 24-cell golden matrix:
//
//  1. Sampling is invisible: a run with the interval sampler enabled
//     produces bit-identical golden values to the pinned unsampled
//     reference (the sampler's calendar events fire only in cycles
//     where the host core provably does nothing).
//  2. Sampling is loss-free: the measured-phase interval deltas sum
//     exactly — not approximately — to the whole-run runner.Result
//     stats, and all intervals together cover every committed
//     instruction and simulated cycle of the run.
//
// The interval length is deliberately coprime-ish to the budgets so
// grid boundaries never align with the warm-up commit or the end of
// run, exercising the forced-cut paths.
func TestIntervalConsistencyGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("interval consistency matrix is not short")
	}
	for _, c := range goldenMatrix() {
		c := c
		t.Run(goldenKey(c), func(t *testing.T) {
			opts := DefaultOptions(c.bench, c.mech)
			opts.Insts = 20_000
			opts.Warmup = 5_000
			opts.InOrder = c.inorder
			opts.Hier = opts.Hier.WithMemory(c.memory)

			var ivs []telemetry.Interval
			opts.Interval = 1777
			opts.IntervalSink = func(iv telemetry.Interval) { ivs = append(ivs, iv) }

			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}

			got := goldenValues{
				Cycles:      res.CPU.Cycles,
				Insts:       res.CPU.Insts,
				L1DAccesses: res.L1D.Accesses,
				L1DHits:     res.L1D.Hits,
				L1DMisses:   res.L1D.Misses,
				L2Misses:    res.L2.Misses,
				MemReads:    res.Mem.Reads,
				Mispredicts: res.CPU.Mispredicts,
				Stores:      res.CPU.Stores,
			}
			if want, ok := goldenResults[goldenKey(c)]; ok && got != want {
				t.Errorf("sampling changed simulation results:\n got %+v\nwant %+v", got, want)
			}

			if len(ivs) < 2 {
				t.Fatalf("expected a real series, got %d intervals", len(ivs))
			}
			for i, iv := range ivs {
				if i > 0 && iv.StartCycle != ivs[i-1].EndCycle {
					t.Fatalf("interval %d not contiguous: starts at %d, previous ended at %d", i, iv.StartCycle, ivs[i-1].EndCycle)
				}
				if i > 0 && ivs[i-1].Warmup && !iv.Warmup && ivs[i-1].EndCycle == iv.StartCycle {
					continue
				}
			}

			// Split at the warm-up boundary: warm intervals first,
			// then measured ones, never interleaved.
			var warm, meas []telemetry.Interval
			for i, iv := range ivs {
				if iv.Warmup {
					if len(meas) > 0 {
						t.Fatalf("warm interval %d after measured intervals", i)
					}
					warm = append(warm, iv)
				} else {
					meas = append(meas, iv)
				}
			}
			if len(warm) == 0 || len(meas) == 0 {
				t.Fatalf("both phases must be sampled: warm=%d meas=%d", len(warm), len(meas))
			}

			// Loss-free measured phase: deltas sum bit-identically to
			// the whole-run measured stats.
			m := telemetry.Sum(meas)
			if m.Insts != res.CPU.Insts-opts.Warmup {
				t.Errorf("measured insts %d, want %d", m.Insts, res.CPU.Insts-opts.Warmup)
			}
			if m.L1D != res.L1D {
				t.Errorf("measured L1D sum diverges:\n got %+v\nwant %+v", m.L1D, res.L1D)
			}
			if m.L1I != res.L1I {
				t.Errorf("measured L1I sum diverges:\n got %+v\nwant %+v", m.L1I, res.L1I)
			}
			if m.L2 != res.L2 {
				t.Errorf("measured L2 sum diverges:\n got %+v\nwant %+v", m.L2, res.L2)
			}
			if m.Mem != res.Mem {
				t.Errorf("measured Mem sum diverges:\n got %+v\nwant %+v", m.Mem, res.Mem)
			}

			// Whole-run coverage: warm+measured spans every cycle and
			// instruction exactly once.
			all := telemetry.Sum(ivs)
			if all.StartCycle != 0 || all.EndCycle != res.CPU.Cycles {
				t.Errorf("series spans [%d,%d], want [0,%d]", all.StartCycle, all.EndCycle, res.CPU.Cycles)
			}
			if all.Insts != res.CPU.Insts {
				t.Errorf("series insts %d, want %d", all.Insts, res.CPU.Insts)
			}
			if w := telemetry.Sum(warm); w.EndCycle != meas[0].StartCycle {
				t.Errorf("warm phase ends at %d, measured starts at %d", w.EndCycle, meas[0].StartCycle)
			}
		})
	}
}

// TestIntervalFieldsOutsideFingerprint pins that telemetry knobs are
// pure observability: enabling the sampler must not move a cell to a
// different cache key.
func TestIntervalFieldsOutsideFingerprint(t *testing.T) {
	plain := DefaultOptions("gzip", "GHB")
	sampled := plain
	sampled.Interval = 1000
	sampled.IntervalSink = func(telemetry.Interval) {}
	if plain.Fingerprint() != sampled.Fingerprint() {
		t.Fatal("interval sampling must not change the options fingerprint")
	}
	if plain.Canonical() != sampled.Canonical() {
		t.Fatal("interval sampling must not change the canonical form")
	}
}

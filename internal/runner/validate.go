package runner

import "fmt"

// Validate reports structurally impossible options as an error before
// any simulation state is built: the host-core geometry (unless the
// scalar in-order core, which has none), the full hierarchy including
// the selected memory model, and the runner's own knobs. Campaign
// plan expansion calls it on every resolved cell — a zero RUU size or
// a cache whose size no longer divides its line size fails
// `mlcampaign validate`, not a worker mid-campaign — and RunContext
// calls it so direct library users get an error instead of a model
// panic.
//
// Budgets are not checked: a zero Insts is defaulted by Run, and a
// zero Warmup simply measures from the start.
func (o Options) Validate() error {
	if !o.InOrder {
		if err := o.CPU.Check(); err != nil {
			return fmt.Errorf("runner: %w", err)
		}
	}
	if err := o.Hier.Check(); err != nil {
		return fmt.Errorf("runner: %w", err)
	}
	if o.QueueOverride < 0 {
		return fmt.Errorf("runner: negative prefetch queue override %d", o.QueueOverride)
	}
	return nil
}

package runner

import (
	"context"
	"fmt"

	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/sim"
	"microlib/internal/telemetry"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// Machine is one fully-wired simulation: engine, hierarchy, mechanism,
// instruction source and host core. RunContext builds one per call;
// the warm-state checkpoint paths build them explicitly so a prefix
// can be captured once and the measurement phase forked per cell —
// restoring into a reused Machine rather than reconstructing.
type Machine struct {
	opts Options
	eng  *sim.Engine
	h    *hier.Hierarchy
	mech core.Mechanism

	gen    *workload.Generator
	tf     *trace.File
	oracle *workload.Oracle

	host hostCore
	ooo  *cpu.OoO
	ino  *cpu.InOrder

	// cancel is the stream's cancellation wrap, kept so a reused
	// machine can be re-aimed at the next cell's context.
	cancel *cancelStream

	traceDone func() error
	closeFn   func() error
}

// newMachine wires a simulation for already-validated options with the
// measured-budget default applied. When applySkip is false the stream
// is left at its origin — checkpoint restores position it from the
// snapshot instead. alwaysCancel forces the cancellation wrap even
// under an uncancelable context, so a machine reused across cells can
// swap in each cell's own (possibly deadlined) context later.
func newMachine(ctx context.Context, opts Options, applySkip, alwaysCancel bool) (*Machine, error) {
	m := &Machine{opts: opts}

	// Resolve the instruction source: a built-in benchmark, an inline
	// profile, or a recorded trace file.
	var source trace.Stream
	if opts.Workload != nil {
		stream, values, done, closeFn, err := opts.Workload.open(opts.Seed)
		if err != nil {
			return nil, err
		}
		m.closeFn = closeFn
		m.traceDone = done
		m.oracle = values
		source = stream
		if g, ok := stream.(*workload.Generator); ok {
			m.gen = g
		}
		if tf, ok := stream.(*trace.File); ok {
			m.tf = tf
		}
		if m.opts.Bench == "" {
			m.opts.Bench = opts.Workload.label()
		}
	} else {
		gen, err := workload.New(opts.Bench, opts.Seed)
		if err != nil {
			return nil, err
		}
		source, m.gen, m.oracle = gen, gen, gen.Oracle()
	}

	m.eng = sim.NewEngine()
	m.h = hier.Build(m.eng, opts.Hier)

	env := &core.Env{Eng: m.eng, L1D: m.h.L1D, L2: m.h.L2}
	if m.oracle != nil {
		// Assigned only when present: a typed nil in the interface
		// would defeat the mechanisms' Values == nil guard.
		env.Values = m.oracle
	}
	name := opts.Mechanism
	if name == "" {
		name = BaseName
	}
	if name != BaseName {
		mech, err := core.New(name, env, opts.Params)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("runner: %w", err)
		}
		m.mech = mech
	}
	if opts.QueueOverride > 0 {
		m.h.L1D.ForcePrefetchQueueCap(opts.QueueOverride)
		m.h.L2.ForcePrefetchQueueCap(opts.QueueOverride)
	}
	if opts.PrefetchAsDemand {
		m.h.L1D.SetPrefetchAsDemand(true)
		m.h.L2.SetPrefetchAsDemand(true)
	}

	// The cancel wrap goes on before Skip: Skip consumes its discarded
	// instructions eagerly, so on an uncancelable stream a large skip
	// would stall cancellation until it finished.
	stream := source
	if ctx.Done() != nil || alwaysCancel {
		m.cancel = &cancelStream{ctx: ctx, s: stream}
		stream = m.cancel
	}
	if applySkip && opts.Skip > 0 {
		stream = trace.Skip(stream, opts.Skip)
	}

	if opts.InOrder {
		m.ino = cpu.NewInOrder(m.eng, m.h, stream)
		m.host = m.ino
	} else {
		m.ooo = cpu.NewOoO(m.eng, opts.CPU, m.h, stream)
		m.host = m.ooo
	}
	return m, nil
}

// Close releases the machine's file-backed resources, if any.
func (m *Machine) Close() error {
	if m.closeFn != nil {
		fn := m.closeFn
		m.closeFn = nil
		return fn()
	}
	return nil
}

// warmStats reads the machine's running statistics at a warm-up
// boundary. Called from the host core's warm-up hook, at the commit of
// the last warm-up instruction — the same instant on a live prefix and
// on the prefix run that captures a checkpoint.
func (m *Machine) warmStats(cycles uint64) WarmStats {
	return WarmStats{
		Cycles: cycles,
		L1D:    m.h.L1D.Stats(),
		L1I:    m.h.L1I.Stats(),
		L2:     m.h.L2.Stats(),
		Mem:    m.h.Mem.Stats(),
	}
}

// runMeasured executes warm-up plus measurement on a freshly-wired
// machine and assembles the Result. It is the shared back half of
// RunContext and RunWithStreamContext.
func (m *Machine) runMeasured(ctx context.Context, opts Options) (Result, error) {
	// The interval sampler rides the engine calendar and only reads
	// counters the models already keep, so enabling it changes no
	// simulated observable; leaving it off adds no per-cycle work.
	var sampler *telemetry.Sampler
	if opts.Interval > 0 && opts.IntervalSink != nil {
		sampler = telemetry.NewSampler(m.eng, opts.Interval, opts.Warmup > 0, func(c *telemetry.Counters) {
			c.Cycle = m.eng.Now()
			c.Insts = m.host.Committed()
			c.L1D = m.h.L1D.Stats()
			c.L1I = m.h.L1I.Stats()
			c.L2 = m.h.L2.Stats()
			c.Mem = m.h.Mem.Stats()
			c.L1Bus.Transfers, c.L1Bus.BusyCycles, c.L1Bus.WaitCycles = m.h.L1Bus.Stats()
			c.FSB.Transfers, c.FSB.BusyCycles, c.FSB.WaitCycles = m.h.FSB.Stats()
		}, opts.IntervalSink)
	}

	var warm WarmStats
	snapshot := func(cycles uint64) {
		warm = m.warmStats(cycles)
		if sampler != nil {
			// Cut at the same instant: the measured intervals that
			// follow sum exactly to the measured whole-run stats.
			sampler.EndWarmup(cycles)
		}
	}

	total := opts.Warmup + opts.Insts
	if opts.Warmup > 0 {
		m.host.SetWarmup(opts.Warmup, snapshot)
	}
	cres := m.host.Run(total)
	res, err := m.finish(ctx, warm, cres, total)
	if err != nil {
		return Result{}, err
	}
	if sampler != nil {
		// Only a run that completed its budget emits the closing
		// interval; error paths above discard the partial series.
		sampler.Finish(cres.Cycles)
	}
	return res, nil
}

// finish validates the completed run and assembles the Result, with
// measured statistics cut at the supplied warm-up boundary.
func (m *Machine) finish(ctx context.Context, warm WarmStats, cres cpu.Result, total uint64) (Result, error) {
	opts := m.opts
	// A budget shortfall means the stream was cut — by cancellation if
	// ctx says so. A run that finished its full budget is valid even
	// when cancellation landed just after it completed.
	if cres.Insts < total {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if m.traceDone != nil {
		// Trace-file streams are finite and may be damaged: a decode
		// error (truncated mid-record, torn copy) or a trace shorter
		// than the simulation budget must fail the run — silently
		// measuring the prefix would report numbers for a different
		// experiment than the one the options name.
		if err := m.traceDone(); err != nil {
			return Result{}, fmt.Errorf("runner: %s: %w", opts.Workload.TracePath, err)
		}
		if cres.Insts < total {
			return Result{}, fmt.Errorf("runner: trace %s ended after %d of %d instructions (skip=%d warmup=%d measure=%d)",
				opts.Workload.TracePath, cres.Insts, total, opts.Skip, opts.Warmup, opts.Insts)
		}
	}

	measCycles := cres.Cycles - warm.Cycles
	if measCycles == 0 {
		measCycles = 1
	}
	measInsts := cres.Insts - opts.Warmup

	name := opts.Mechanism
	if name == "" {
		name = BaseName
	}
	res := Result{
		Bench:     opts.Bench,
		Mechanism: name,
		CPU:       cres,
		IPC:       float64(measInsts) / float64(measCycles),
		L1D:       m.h.L1D.Stats().Sub(warm.L1D),
		L1I:       m.h.L1I.Stats().Sub(warm.L1I),
		L2:        m.h.L2.Stats().Sub(warm.L2),
		Mem:       m.h.Mem.Stats().Sub(warm.Mem),
	}
	res.BaseCacheAccesses = res.L1D.Accesses + res.L1I.Accesses + res.L2.Accesses
	res.Mech = m.mech
	if cm, ok := m.mech.(core.CostModeler); ok {
		res.Hardware = cm.Hardware()
	}
	return res, nil
}

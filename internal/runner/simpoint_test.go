package runner

import (
	"strings"
	"testing"
)

func TestSimPointSkipDeterministic(t *testing.T) {
	opts := Options{Bench: "gzip", Insts: 20_000, Warmup: 10_000, Seed: 42}
	a, err := SimPointSkip(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimPointSkip(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("offsets differ: %d vs %d", a, b)
	}
	// The offset is an interval boundary of the budget-scaled
	// analysis: intervals are (warmup+insts)/8 instructions long.
	if interval := (opts.Warmup + opts.Insts) / 8; a%interval != 0 {
		t.Fatalf("offset %d is not a multiple of the interval length %d", a, interval)
	}
}

// A workload that cannot be opened must fail the analysis loudly —
// the old experiments helper silently returned offset 0, quietly
// replacing the SimPoint window with the start of the trace.
func TestSimPointSkipPropagatesWorkloadError(t *testing.T) {
	if _, err := SimPointSkip(Options{Bench: "nosuchbench", Insts: 1000}); err == nil {
		t.Fatal("unknown benchmark must fail the analysis, not select offset 0")
	} else if !strings.Contains(err.Error(), "nosuchbench") {
		t.Fatalf("error must name the workload: %v", err)
	}
	if _, err := SimPointSkip(Options{Workload: &Workload{TracePath: "/nonexistent/file.mlt"}, Insts: 1000}); err == nil {
		t.Fatal("unreadable trace must fail the analysis")
	}
}

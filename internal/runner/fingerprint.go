package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// FingerprintVersion tags the canonical serialization format of
// Options AND the behavior of the simulator models behind it. Bump
// it whenever Options gains a field, the canonical form changes, or
// any model change (cache, memory, core, mechanism) alters
// simulation results for unchanged Options — persistent campaign
// caches key on the fingerprint, and a stale version would silently
// serve an older simulator's numbers as current.
//
// v2: Options gained custom workload sources (Workload), the
// canonical form gained the workload content identity, and the
// generator's phase-transition loopIters reset changed long-run
// streams of every built-in benchmark.
const FingerprintVersion = 2

// Canonical returns the deterministic textual form of the
// fully-resolved options: defaults applied (empty mechanism becomes
// BaseName, a zero instruction budget becomes the Run default),
// Params keys sorted. Two Options values that would simulate the
// same system produce the same canonical string.
func (o Options) Canonical() string {
	mech := o.Mechanism
	if mech == "" {
		mech = BaseName
	}
	insts := o.Insts
	if insts == 0 {
		insts = defaultInsts
	}

	keys := make([]string, 0, len(o.Params))
	for k := range o.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// A custom workload's identity is its content — the canonical
	// profile serialization or the trace file's hash — never the
	// Bench label or the file path: two custom workloads can only
	// share a fingerprint by being the same workload.
	bench := o.Bench
	if o.Workload != nil {
		bench = o.Workload.identity()
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d|bench=%s|mech=%s|params={", FingerprintVersion, bench, mech)
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s:%d", k, o.Params[k])
	}
	// Hier and CPU are plain value structs (no maps or pointers), so
	// their %+v rendering is deterministic.
	// A trace replays fixed bytes; the seed never reaches it, so it
	// is normalized out — rerunning a trace cell under a different
	// seed list still hits the cache.
	seed := o.Seed
	if o.Workload != nil && o.Workload.TracePath != "" {
		seed = 0
	}

	fmt.Fprintf(&sb, "}|hier=%+v|cpu=%+v", o.Hier, o.CPU)
	fmt.Fprintf(&sb, "|insts=%d|warmup=%d|skip=%d|seed=%d|inorder=%t|queue=%d|pfd=%t",
		insts, o.Warmup, o.Skip, seed, o.InOrder, o.QueueOverride, o.PrefetchAsDemand)
	return sb.String()
}

// Fingerprint returns a stable 32-hex-digit key identifying this
// simulation configuration. It is the cache key of the campaign
// result cache: equal fingerprints mean the simulations are
// bit-identical reruns of each other.
func (o Options) Fingerprint() string {
	sum := sha256.Sum256([]byte(o.Canonical()))
	return hex.EncodeToString(sum[:16])
}

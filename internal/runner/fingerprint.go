package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
)

// FingerprintVersion tags the canonical serialization format of
// Options AND the behavior of the simulator models behind it. Bump
// it whenever Options gains a field, the canonical form changes, or
// any model change (cache, memory, core, mechanism) alters
// simulation results for unchanged Options — persistent campaign
// caches key on the fingerprint, and a stale version would silently
// serve an older simulator's numbers as current.
//
// v2: Options gained custom workload sources (Workload), the
// canonical form gained the workload content identity, and the
// generator's phase-transition loopIters reset changed long-run
// streams of every built-in benchmark.
const FingerprintVersion = 2

// Canonical returns the deterministic textual form of the
// fully-resolved options: defaults applied (empty mechanism becomes
// BaseName, a zero instruction budget becomes the Run default),
// Params keys sorted. Two Options values that would simulate the
// same system produce the same canonical string.
func (o Options) Canonical() string {
	mech := o.Mechanism
	if mech == "" {
		mech = BaseName
	}
	insts := o.Insts
	if insts == 0 {
		insts = defaultInsts
	}

	keys := make([]string, 0, len(o.Params))
	for k := range o.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// A custom workload's identity is its content — the canonical
	// profile serialization or the trace file's hash — never the
	// Bench label or the file path: two custom workloads can only
	// share a fingerprint by being the same workload.
	bench := o.Bench
	if o.Workload != nil {
		bench = o.Workload.identity()
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d|bench=%s|mech=%s|params={", FingerprintVersion, bench, mech)
	for i, k := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s:%d", k, o.Params[k])
	}
	// Hier and CPU are plain value structs (no maps or pointers), so
	// their %+v rendering is deterministic.
	// A trace replays fixed bytes; the seed never reaches it, so it
	// is normalized out — rerunning a trace cell under a different
	// seed list still hits the cache.
	seed := o.Seed
	if o.Workload != nil && o.Workload.TracePath != "" {
		seed = 0
	}

	fmt.Fprintf(&sb, "}|hier=%+v|cpu=%+v", o.Hier, o.CPU)
	fmt.Fprintf(&sb, "|insts=%d|warmup=%d|skip=%d|seed=%d|inorder=%t|queue=%d|pfd=%t",
		insts, o.Warmup, o.Skip, seed, o.InOrder, o.QueueOverride, o.PrefetchAsDemand)
	return sb.String()
}

// CanonicalKey is the fingerprinting hash: a stable 32-hex-digit key
// derived from a canonical string. Exposed so stores that persist a
// canonical form alongside its key can verify the pair still match.
func CanonicalKey(canonical string) string {
	sum := sha256.Sum256([]byte(canonical))
	return hex.EncodeToString(sum[:16])
}

// Fingerprint returns a stable 32-hex-digit key identifying this
// simulation configuration. It is the cache key of the campaign
// result cache: equal fingerprints mean the simulations are
// bit-identical reruns of each other.
func (o Options) Fingerprint() string {
	return CanonicalKey(o.Canonical())
}

// PrefixCanonical is the canonical form with the measured budget
// masked out: everything that shapes the simulation up to the warm-up
// boundary — workload content, seed, skip, warm-up, the full machine
// configuration — and nothing that only takes effect afterwards. Two
// Options with equal PrefixCanonical pass through bit-identical
// machine states at the warm-up boundary, which is what makes a warm
// checkpoint captured under one valid for the other.
func (o Options) PrefixCanonical() string {
	c := o.Canonical()
	// The canonical form is pipe-delimited and %+v renders no pipes,
	// so the budget segment is located unambiguously.
	i := strings.Index(c, "|insts=")
	j := i + strings.Index(c[i:], "|warmup=")
	return c[:i] + "|insts=*" + c[j:]
}

// PrefixFingerprint is the warm-checkpoint grouping key: the campaign
// scheduler runs one prefix per distinct value and forks the
// measurement phase of every cell sharing it.
func (o Options) PrefixFingerprint() string {
	return CanonicalKey(o.PrefixCanonical())
}

// StreamCanonical identifies the post-skip workload cursor: the
// workload's content identity, the generator seed (normalized out for
// traces, which replay fixed bytes), and the skip count. No machine
// parameter enters it — the skipped stream is consumed without
// simulation, so one cursor serves every machine configuration.
func (o Options) StreamCanonical() string {
	bench := o.Bench
	seed := o.Seed
	if o.Workload != nil {
		bench = o.Workload.identity()
		if o.Workload.TracePath != "" {
			seed = 0
		}
	}
	return fmt.Sprintf("v%d|stream|bench=%s|seed=%d|skip=%d", FingerprintVersion, bench, seed, o.Skip)
}

// StreamFingerprint is the stream-checkpoint grouping key.
func (o Options) StreamFingerprint() string {
	return CanonicalKey(o.StreamCanonical())
}

package runner

import (
	"testing"

	"microlib/internal/hier"
	"microlib/internal/workload"
)

// TestAllBenchmarksRun drives every synthetic benchmark briefly on
// the base system: none may deadlock, and each must produce a
// plausible IPC and some memory traffic.
func TestAllBenchmarksRun(t *testing.T) {
	for _, b := range workload.Names() {
		b := b
		t.Run(b, func(t *testing.T) {
			t.Parallel()
			opts := DefaultOptions(b, BaseName)
			opts.Insts = 15_000
			opts.Warmup = 5_000
			res, err := Run(opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.IPC <= 0.01 || res.IPC > 8 {
				t.Fatalf("implausible IPC %.3f", res.IPC)
			}
			if res.L1D.Accesses == 0 {
				t.Fatal("no data accesses")
			}
			mr := res.L1D.MissRatio()
			if mr > 0.6 {
				t.Fatalf("L1 miss ratio %.2f beyond plausible SPEC range", mr)
			}
		})
	}
}

// TestInOrderHost runs a benchmark on the scalar host: the same
// mechanisms must plug in unchanged (module interoperability).
func TestInOrderHost(t *testing.T) {
	opts := DefaultOptions("gzip", "VC")
	opts.Insts = 10_000
	opts.Warmup = 2_000
	opts.InOrder = true
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 || res.IPC > 1 {
		t.Fatalf("in-order IPC %.3f out of range", res.IPC)
	}
}

// TestMemoryModelsOrdering: on a memory-bound benchmark the constant
// 70-cycle memory must beat the detailed SDRAM (which charges
// conflicts and queueing), and the scaled SDRAM must land between.
func TestMemoryModelsOrdering(t *testing.T) {
	run := func(k hier.MemoryKind) float64 {
		opts := DefaultOptions("swim", BaseName)
		opts.Insts = 20_000
		opts.Warmup = 10_000
		opts.Hier = opts.Hier.WithMemory(k)
		res, err := Run(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.IPC
	}
	c70 := run(hier.MemConst70)
	s170 := run(hier.MemSDRAM)
	s70 := run(hier.MemSDRAM70)
	if !(c70 > s170) {
		t.Fatalf("const-70 (%.3f) not faster than sdram-170 (%.3f)", c70, s170)
	}
	if !(s70 > s170) {
		t.Fatalf("scaled sdram-70 (%.3f) not faster than sdram-170 (%.3f)", s70, s170)
	}
}

// TestQueueOverride: forcing a 1-entry prefetch queue must reduce the
// prefetches a queue-heavy mechanism can issue.
func TestQueueOverride(t *testing.T) {
	base := DefaultOptions("swim", "GHB")
	base.Insts = 30_000
	base.Warmup = 10_000
	big, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	small := base
	small.QueueOverride = 1
	tiny, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	if tiny.L2.PrefetchIssued >= big.L2.PrefetchIssued {
		t.Fatalf("queue=1 issued %d >= queue=4 issued %d",
			tiny.L2.PrefetchIssued, big.L2.PrefetchIssued)
	}
}

// TestEWBReducesEvictionWritebackPressure: on a store-heavy
// bandwidth-bound benchmark, eager writeback must produce early
// write-backs without losing data (same committed work).
func TestEWBExtension(t *testing.T) {
	opts := DefaultOptions("swim", "EWB")
	opts.Insts = 20_000
	opts.Warmup = 10_000
	res, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPU.Insts != 30_000 {
		t.Fatalf("committed %d", res.CPU.Insts)
	}
	if res.Mem.Writes == 0 {
		t.Fatal("no memory writes despite eager writeback on a store-heavy benchmark")
	}
}

// TestPrefetchAsDemandChangesBehaviour: the ablation switch must be
// observable on a prefetch-heavy run.
func TestPrefetchAsDemandChangesBehaviour(t *testing.T) {
	a := DefaultOptions("swim", "GHB")
	a.Insts = 20_000
	a.Warmup = 5_000
	r1, err := Run(a)
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.PrefetchAsDemand = true
	r2, err := Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.IPC == r2.IPC && r1.Mem.Reads == r2.Mem.Reads {
		t.Fatal("prefetch-as-demand ablation had no observable effect")
	}
}

// Package runner assembles complete simulations: workload generator,
// trace selection, memory hierarchy, mechanism, and host core. It is
// the single entry point the experiments, the public facade and the
// CLIs build on.
package runner

import (
	"context"

	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	_ "microlib/internal/mech/all" // register every mechanism
	"microlib/internal/mem"
	"microlib/internal/telemetry"
	"microlib/internal/trace"
)

// hostCore is what the runner needs from either host-core model: a
// warm-up hook, the run loop, and a mid-run committed-instruction
// reading for the telemetry sampler.
type hostCore interface {
	SetWarmup(insts uint64, fn func(cycles uint64))
	Run(maxInsts uint64) cpu.Result
	Committed() uint64
}

// BaseName is the pseudo-mechanism name for the unmodified hierarchy.
const BaseName = "Base"

// defaultInsts is the measured budget used when Options.Insts is 0.
const defaultInsts = 200_000

// Options selects one simulation.
type Options struct {
	// Bench names a built-in benchmark — or, when Workload is set,
	// merely labels it in results (the workload's own name is the
	// fallback label).
	Bench string
	// Workload, when non-nil, replaces the built-in benchmark with a
	// custom instruction source: an inline synthetic profile or a
	// recorded trace file. Fingerprints then key on the workload's
	// content, not on Bench.
	Workload  *Workload
	Mechanism string // BaseName (or "") for the plain hierarchy
	Params    core.Params
	Hier      hier.Config
	CPU       cpu.Config
	// Insts is the number of instructions to measure.
	Insts uint64
	// Warmup instructions are simulated (caches and predictor tables
	// fill) before measurement begins — the scaled equivalent of the
	// steady state a 500M-instruction SimPoint trace reaches.
	Warmup uint64
	// Skip discards instructions before measurement (the arbitrary
	// trace selection of Section 3.5). Ignored when a SimPoint
	// offset is supplied.
	Skip uint64
	// Seed keys the workload generator.
	Seed uint64
	// InOrder selects the scalar host core instead of the OoO core.
	InOrder bool
	// QueueOverride, when > 0, forces the prefetch request queue
	// size after mechanism attach (Figure 10).
	QueueOverride int
	// PrefetchAsDemand disables the demand-priority treatment of
	// prefetches (design-choice ablation).
	PrefetchAsDemand bool

	// Interval, when > 0 together with IntervalSink, streams
	// time-resolved counter deltas: one telemetry.Interval per
	// Interval simulated cycles (plus a forced boundary at the
	// warm-up commit and a final partial interval at end of run).
	// Observability only — neither field enters the fingerprint, and
	// a sampled run is bit-identical to an unsampled one.
	Interval     uint64
	IntervalSink func(telemetry.Interval)
}

// DefaultOptions returns the Table 1 system with the standard scaled
// trace budget — 150k measured instructions after 50k of warm-up, a
// stand-in for the paper's 500M SimPoint traces (see EXPERIMENTS.md).
// Note this differs from the bare Run fallback for a zero budget
// (defaultInsts, no warm-up).
func DefaultOptions(bench, mechName string) Options {
	return Options{
		Bench:     bench,
		Mechanism: mechName,
		Hier:      hier.DefaultConfig(),
		CPU:       cpu.DefaultConfig(),
		Insts:     150_000,
		Warmup:    50_000,
		Seed:      42,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Bench     string
	Mechanism string
	CPU       cpu.Result
	IPC       float64
	L1D       cache.Stats
	L1I       cache.Stats
	L2        cache.Stats
	Mem       mem.Stats
	Hardware  []core.HWTable
	// BaseCacheAccesses approximates total L1D+L2 activity for the
	// power model.
	BaseCacheAccesses uint64
	// Mech is the live mechanism instance (nil for Base); tests and
	// diagnostics inspect it.
	Mech core.Mechanism
}

// Run executes one simulation to completion.
func Run(opts Options) (Result, error) {
	return RunContext(context.Background(), opts)
}

// RunContext executes one simulation under a context. Cancellation is
// observed at instruction-fetch granularity: the host core winds down
// within a few thousand simulated instructions of ctx being canceled
// and RunContext returns ctx's error instead of a partial Result.
func RunContext(ctx context.Context, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Insts == 0 {
		opts.Insts = defaultInsts
	}
	m, err := newMachine(ctx, opts, true, false)
	if err != nil {
		return Result{}, err
	}
	defer m.Close()
	return m.runMeasured(ctx, opts)
}

// cancelStream ends the instruction stream shortly after its context
// is canceled, which makes the host core drain and Run return. The
// context is polled every 1024 instructions to keep the fetch path
// cheap.
type cancelStream struct {
	ctx context.Context
	s   trace.Stream
	n   uint
}

func (c *cancelStream) Next(inst *trace.Inst) bool {
	if c.n++; c.n&1023 == 0 && c.ctx.Err() != nil {
		return false
	}
	return c.s.Next(inst)
}

// Package runner assembles complete simulations: workload generator,
// trace selection, memory hierarchy, mechanism, and host core. It is
// the single entry point the experiments, the public facade and the
// CLIs build on.
package runner

import (
	"context"
	"fmt"

	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	_ "microlib/internal/mech/all" // register every mechanism
	"microlib/internal/mem"
	"microlib/internal/sim"
	"microlib/internal/telemetry"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// hostCore is what the runner needs from either host-core model: a
// warm-up hook, the run loop, and a mid-run committed-instruction
// reading for the telemetry sampler.
type hostCore interface {
	SetWarmup(insts uint64, fn func(cycles uint64))
	Run(maxInsts uint64) cpu.Result
	Committed() uint64
}

// BaseName is the pseudo-mechanism name for the unmodified hierarchy.
const BaseName = "Base"

// defaultInsts is the measured budget used when Options.Insts is 0.
const defaultInsts = 200_000

// Options selects one simulation.
type Options struct {
	// Bench names a built-in benchmark — or, when Workload is set,
	// merely labels it in results (the workload's own name is the
	// fallback label).
	Bench string
	// Workload, when non-nil, replaces the built-in benchmark with a
	// custom instruction source: an inline synthetic profile or a
	// recorded trace file. Fingerprints then key on the workload's
	// content, not on Bench.
	Workload  *Workload
	Mechanism string // BaseName (or "") for the plain hierarchy
	Params    core.Params
	Hier      hier.Config
	CPU       cpu.Config
	// Insts is the number of instructions to measure.
	Insts uint64
	// Warmup instructions are simulated (caches and predictor tables
	// fill) before measurement begins — the scaled equivalent of the
	// steady state a 500M-instruction SimPoint trace reaches.
	Warmup uint64
	// Skip discards instructions before measurement (the arbitrary
	// trace selection of Section 3.5). Ignored when a SimPoint
	// offset is supplied.
	Skip uint64
	// Seed keys the workload generator.
	Seed uint64
	// InOrder selects the scalar host core instead of the OoO core.
	InOrder bool
	// QueueOverride, when > 0, forces the prefetch request queue
	// size after mechanism attach (Figure 10).
	QueueOverride int
	// PrefetchAsDemand disables the demand-priority treatment of
	// prefetches (design-choice ablation).
	PrefetchAsDemand bool

	// Interval, when > 0 together with IntervalSink, streams
	// time-resolved counter deltas: one telemetry.Interval per
	// Interval simulated cycles (plus a forced boundary at the
	// warm-up commit and a final partial interval at end of run).
	// Observability only — neither field enters the fingerprint, and
	// a sampled run is bit-identical to an unsampled one.
	Interval     uint64
	IntervalSink func(telemetry.Interval)
}

// DefaultOptions returns the Table 1 system with the standard scaled
// trace budget — 150k measured instructions after 50k of warm-up, a
// stand-in for the paper's 500M SimPoint traces (see EXPERIMENTS.md).
// Note this differs from the bare Run fallback for a zero budget
// (defaultInsts, no warm-up).
func DefaultOptions(bench, mechName string) Options {
	return Options{
		Bench:     bench,
		Mechanism: mechName,
		Hier:      hier.DefaultConfig(),
		CPU:       cpu.DefaultConfig(),
		Insts:     150_000,
		Warmup:    50_000,
		Seed:      42,
	}
}

// Result is the outcome of one simulation.
type Result struct {
	Bench     string
	Mechanism string
	CPU       cpu.Result
	IPC       float64
	L1D       cache.Stats
	L1I       cache.Stats
	L2        cache.Stats
	Mem       mem.Stats
	Hardware  []core.HWTable
	// BaseCacheAccesses approximates total L1D+L2 activity for the
	// power model.
	BaseCacheAccesses uint64
	// Mech is the live mechanism instance (nil for Base); tests and
	// diagnostics inspect it.
	Mech core.Mechanism
}

// Run executes one simulation to completion.
func Run(opts Options) (Result, error) {
	return RunContext(context.Background(), opts)
}

// RunContext executes one simulation under a context. Cancellation is
// observed at instruction-fetch granularity: the host core winds down
// within a few thousand simulated instructions of ctx being canceled
// and RunContext returns ctx's error instead of a partial Result.
func RunContext(ctx context.Context, opts Options) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	if opts.Insts == 0 {
		opts.Insts = defaultInsts
	}

	// Resolve the instruction source: a built-in benchmark, an inline
	// profile, or a recorded trace file.
	var (
		source trace.Stream
		oracle *workload.Oracle
		// traceDone surfaces deferred read errors (a truncated trace
		// file must fail the run, not read as a shorter clean one).
		traceDone func() error
	)
	if opts.Workload != nil {
		stream, values, done, closeFn, err := opts.Workload.open(opts.Seed)
		if err != nil {
			return Result{}, err
		}
		if closeFn != nil {
			defer closeFn()
		}
		source, oracle, traceDone = stream, values, done
		if opts.Bench == "" {
			opts.Bench = opts.Workload.label()
		}
	} else {
		gen, err := workload.New(opts.Bench, opts.Seed)
		if err != nil {
			return Result{}, err
		}
		source, oracle = gen, gen.Oracle()
	}

	eng := sim.NewEngine()
	h := hier.Build(eng, opts.Hier)

	env := &core.Env{Eng: eng, L1D: h.L1D, L2: h.L2}
	if oracle != nil {
		// Assigned only when present: a typed nil in the interface
		// would defeat the mechanisms' Values == nil guard.
		env.Values = oracle
	}
	var mech core.Mechanism
	name := opts.Mechanism
	if name == "" {
		name = BaseName
	}
	if name != BaseName {
		m, err := core.New(name, env, opts.Params)
		if err != nil {
			return Result{}, fmt.Errorf("runner: %w", err)
		}
		mech = m
	}
	if opts.QueueOverride > 0 {
		h.L1D.ForcePrefetchQueueCap(opts.QueueOverride)
		h.L2.ForcePrefetchQueueCap(opts.QueueOverride)
	}
	if opts.PrefetchAsDemand {
		h.L1D.SetPrefetchAsDemand(true)
		h.L2.SetPrefetchAsDemand(true)
	}

	// The cancel wrap goes on before Skip: Skip consumes its
	// discarded instructions eagerly, so on an uncancelable stream a
	// large skip would stall cancellation until it finished.
	stream := source
	if ctx.Done() != nil {
		stream = &cancelStream{ctx: ctx, s: stream}
	}
	if opts.Skip > 0 {
		stream = trace.Skip(stream, opts.Skip)
	}

	var host hostCore
	if opts.InOrder {
		host = cpu.NewInOrder(eng, h, stream)
	} else {
		host = cpu.NewOoO(eng, opts.CPU, h, stream)
	}

	// The interval sampler rides the engine calendar and only reads
	// counters the models already keep, so enabling it changes no
	// simulated observable; leaving it off adds no per-cycle work.
	var sampler *telemetry.Sampler
	if opts.Interval > 0 && opts.IntervalSink != nil {
		sampler = telemetry.NewSampler(eng, opts.Interval, opts.Warmup > 0, func(c *telemetry.Counters) {
			c.Cycle = eng.Now()
			c.Insts = host.Committed()
			c.L1D = h.L1D.Stats()
			c.L1I = h.L1I.Stats()
			c.L2 = h.L2.Stats()
			c.Mem = h.Mem.Stats()
			c.L1Bus.Transfers, c.L1Bus.BusyCycles, c.L1Bus.WaitCycles = h.L1Bus.Stats()
			c.FSB.Transfers, c.FSB.BusyCycles, c.FSB.WaitCycles = h.FSB.Stats()
		}, opts.IntervalSink)
	}

	// Warm-up snapshot state.
	var (
		warmCycles uint64
		warmL1D    cache.Stats
		warmL1I    cache.Stats
		warmL2     cache.Stats
		warmMem    mem.Stats
	)
	snapshot := func(cycles uint64) {
		warmCycles = cycles
		warmL1D = h.L1D.Stats()
		warmL1I = h.L1I.Stats()
		warmL2 = h.L2.Stats()
		warmMem = h.Mem.Stats()
		if sampler != nil {
			// Cut at the same instant: the measured intervals that
			// follow sum exactly to the measured whole-run stats.
			sampler.EndWarmup(cycles)
		}
	}

	total := opts.Warmup + opts.Insts
	if opts.Warmup > 0 {
		host.SetWarmup(opts.Warmup, snapshot)
	}
	cres := host.Run(total)

	// A budget shortfall means the stream was cut — by cancellation
	// if ctx says so. A run that finished its full budget is valid
	// even when cancellation landed just after it completed.
	if cres.Insts < total {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if traceDone != nil {
		// Trace-file streams are finite and may be damaged: a decode
		// error (truncated mid-record, torn copy) or a trace shorter
		// than the simulation budget must fail the run — silently
		// measuring the prefix would report numbers for a different
		// experiment than the one the options name.
		if err := traceDone(); err != nil {
			return Result{}, fmt.Errorf("runner: %s: %w", opts.Workload.TracePath, err)
		}
		if cres.Insts < total {
			return Result{}, fmt.Errorf("runner: trace %s ended after %d of %d instructions (skip=%d warmup=%d measure=%d)",
				opts.Workload.TracePath, cres.Insts, total, opts.Skip, opts.Warmup, opts.Insts)
		}
	}

	if sampler != nil {
		// Only a run that completed its budget emits the closing
		// interval; error paths above discard the partial series.
		sampler.Finish(cres.Cycles)
	}

	measCycles := cres.Cycles - warmCycles
	if measCycles == 0 {
		measCycles = 1
	}
	measInsts := cres.Insts - opts.Warmup

	res := Result{
		Bench:     opts.Bench,
		Mechanism: name,
		CPU:       cres,
		IPC:       float64(measInsts) / float64(measCycles),
		L1D:       h.L1D.Stats().Sub(warmL1D),
		L1I:       h.L1I.Stats().Sub(warmL1I),
		L2:        h.L2.Stats().Sub(warmL2),
		Mem:       h.Mem.Stats().Sub(warmMem),
	}
	res.BaseCacheAccesses = res.L1D.Accesses + res.L1I.Accesses + res.L2.Accesses
	res.Mech = mech
	if cm, ok := mech.(core.CostModeler); ok {
		res.Hardware = cm.Hardware()
	}
	return res, nil
}

// cancelStream ends the instruction stream shortly after its context
// is canceled, which makes the host core drain and Run return. The
// context is polled every 1024 instructions to keep the fetch path
// cheap.
type cancelStream struct {
	ctx context.Context
	s   trace.Stream
	n   uint
}

func (c *cancelStream) Next(inst *trace.Inst) bool {
	if c.n++; c.n&1023 == 0 && c.ctx.Err() != nil {
		return false
	}
	return c.s.Next(inst)
}

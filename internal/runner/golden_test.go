package runner

import (
	"fmt"
	"os"
	"testing"

	"microlib/internal/hier"
)

// The golden matrix pins the simulator's exact behaviour: every cell
// below was recorded from the reference kernel, and any kernel or
// scheduling change that alters a single cycle count or stat counter
// fails this test. This is the determinism contract of the event
// kernel — the calendar queue, event pooling and idle-cycle skipping
// must be bit-identical to naive per-cycle simulation.
//
// Regenerate (after an intentional semantic change only!) with:
//
//	MICROLIB_GOLDEN_REGEN=1 go test ./internal/runner -run TestGoldenMatrix -v
//
// and paste the printed table over goldenResults.

type goldenCell struct {
	bench   string
	mech    string
	inorder bool
	memory  hier.MemoryKind
}

type goldenValues struct {
	Cycles      uint64
	Insts       uint64
	L1DAccesses uint64
	L1DHits     uint64
	L1DMisses   uint64
	L2Misses    uint64
	MemReads    uint64
	Mispredicts uint64
	Stores      uint64
}

func goldenMatrix() []goldenCell {
	var cells []goldenCell
	// Three benches spanning compute-bound to memory-bound, crossed
	// with mechanisms that exercise every event pattern the kernel
	// supports: plain demand misses (Base), prefetch queues (GHB, SP,
	// TCP), aux-probe swaps (VC), and free-running refresh timers
	// that fire during otherwise-dead cycles (EWB, TK).
	for _, bench := range []string{"gzip", "mcf", "art"} {
		for _, mech := range []string{"Base", "GHB", "SP", "VC", "EWB", "TK", "TCP"} {
			cells = append(cells, goldenCell{bench: bench, mech: mech})
		}
	}
	// The scalar in-order host and the constant-latency memory use
	// different kernel idioms (blocking-wait loops, unlimited
	// concurrency) and are pinned too.
	cells = append(cells,
		goldenCell{bench: "gzip", mech: "Base", inorder: true},
		goldenCell{bench: "mcf", mech: "GHB", inorder: true},
		goldenCell{bench: "mcf", mech: "Base", memory: hier.MemConst70},
	)
	return cells
}

func goldenKey(c goldenCell) string {
	host := "ooo"
	if c.inorder {
		host = "inorder"
	}
	return fmt.Sprintf("%s/%s/%s/%s", c.bench, c.mech, host, c.memory)
}

func runGoldenCell(t *testing.T, c goldenCell) goldenValues {
	t.Helper()
	opts := DefaultOptions(c.bench, c.mech)
	opts.Insts = 20_000
	opts.Warmup = 5_000
	opts.InOrder = c.inorder
	opts.Hier = opts.Hier.WithMemory(c.memory)
	res, err := Run(opts)
	if err != nil {
		t.Fatalf("%s: %v", goldenKey(c), err)
	}
	return goldenValues{
		Cycles:      res.CPU.Cycles,
		Insts:       res.CPU.Insts,
		L1DAccesses: res.L1D.Accesses,
		L1DHits:     res.L1D.Hits,
		L1DMisses:   res.L1D.Misses,
		L2Misses:    res.L2.Misses,
		MemReads:    res.Mem.Reads,
		Mispredicts: res.CPU.Mispredicts,
		Stores:      res.CPU.Stores,
	}
}

// TestGoldenMatrix asserts bit-identical results against the recorded
// reference for every covered bench x mechanism x host x memory cell.
func TestGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is not short")
	}
	regen := os.Getenv("MICROLIB_GOLDEN_REGEN") != ""
	if regen {
		fmt.Println("var goldenResults = map[string]goldenValues{")
	}
	for _, c := range goldenMatrix() {
		c := c
		key := goldenKey(c)
		t.Run(key, func(t *testing.T) {
			got := runGoldenCell(t, c)
			if regen {
				fmt.Printf("\t%q: {%d, %d, %d, %d, %d, %d, %d, %d, %d},\n",
					key, got.Cycles, got.Insts, got.L1DAccesses, got.L1DHits,
					got.L1DMisses, got.L2Misses, got.MemReads, got.Mispredicts, got.Stores)
				return
			}
			want, ok := goldenResults[key]
			if !ok {
				t.Fatalf("no golden entry for %s (regenerate with MICROLIB_GOLDEN_REGEN=1)", key)
			}
			if got != want {
				t.Errorf("determinism broken:\n got %+v\nwant %+v", got, want)
			}
		})
	}
	if regen {
		fmt.Println("}")
	}
}

package mem

import (
	"fmt"
	"strings"

	"microlib/internal/sim"
)

// SchedulePolicy selects which queued request the controller issues
// next.
type SchedulePolicy int

const (
	// FCFS issues requests strictly in arrival order.
	FCFS SchedulePolicy = iota
	// RowHitFirst prefers the oldest request whose target row is
	// already open (the scheme retained by the paper, after Green's
	// EDN article, because it "significantly reduces conflicts in
	// row buffers").
	RowHitFirst
)

// Name returns the policy's registry name (the "hier.sdram.policy"
// config-field value).
func (p SchedulePolicy) Name() string {
	if p == FCFS {
		return "fcfs"
	}
	return "row-hit-first"
}

// PolicyNames returns the valid schedule-policy names.
func PolicyNames() []string { return []string{"fcfs", "row-hit-first"} }

// ParsePolicy resolves a schedule-policy name.
func ParsePolicy(name string) (SchedulePolicy, error) {
	switch name {
	case "fcfs":
		return FCFS, nil
	case "row-hit-first":
		return RowHitFirst, nil
	}
	return 0, fmt.Errorf("mem: unknown schedule policy %q (have %s)", name, strings.Join(PolicyNames(), ", "))
}

// Interleave selects how line addresses map to (bank, row, column).
type Interleave int

const (
	// LinearMap places bank bits directly above the column bits.
	LinearMap Interleave = iota
	// PermuteMap XORs the bank index with low row bits
	// (permutation-based interleaving after Zhang et al., MICRO'00),
	// spreading conflicting rows across banks.
	PermuteMap
)

// Name returns the interleave's registry name (the
// "hier.sdram.interleave" config-field value).
func (iv Interleave) Name() string {
	if iv == LinearMap {
		return "linear"
	}
	return "permute"
}

// InterleaveNames returns the valid interleave names.
func InterleaveNames() []string { return []string{"linear", "permute"} }

// ParseInterleave resolves an interleave name.
func ParseInterleave(name string) (Interleave, error) {
	switch name {
	case "linear":
		return LinearMap, nil
	case "permute":
		return PermuteMap, nil
	}
	return 0, fmt.Errorf("mem: unknown interleave %q (have %s)", name, strings.Join(InterleaveNames(), ", "))
}

// SDRAMConfig carries the Table 1 SDRAM parameters. All timings are
// in CPU cycles (the paper quotes them that way for a 2 GHz core).
type SDRAMConfig struct {
	Banks      int    // 4
	Rows       int    // 8192
	Columns    int    // 1024 (of 8-byte words)
	RASToRAS   uint64 // 20  - min cycles between ACTs to distinct banks
	RASActive  uint64 // 80  - min open time before precharge (tRAS)
	RASToCAS   uint64 // 30  - ACT to column command (tRCD)
	CASLatency uint64 // 30  - column command to first data
	RASPre     uint64 // 30  - precharge time (tRP)
	RASCycle   uint64 // 110 - min time between ACTs to the same bank (tRC)
	QueueSize  int    // 32 controller queue entries
	// BurstCycles is the data-bus occupancy of one line transfer in
	// CPU cycles (64-byte line over a 64-byte 400 MHz bus = 1 bus
	// cycle = 5 CPU cycles at 2 GHz).
	BurstCycles uint64
	Policy      SchedulePolicy
	Interleave  Interleave
	LineSize    uint64 // transfer granularity, bytes
}

// DefaultSDRAMConfig returns the paper's Table 1 SDRAM (about 170
// cycles average load-to-use latency in practice).
//
// Table 1 lists 4 banks per device, but also a 2 GB capacity, which
// a single 4-bank 256 MB device cannot provide; the controller
// therefore sees two ranks — 8 independently schedulable banks.
func DefaultSDRAMConfig() SDRAMConfig {
	return SDRAMConfig{
		Banks:       8,
		Rows:        8192,
		Columns:     1024,
		RASToRAS:    20,
		RASActive:   80,
		RASToCAS:    30,
		CASLatency:  30,
		RASPre:      30,
		RASCycle:    110,
		QueueSize:   32,
		BurstCycles: 5,
		Policy:      RowHitFirst,
		Interleave:  PermuteMap,
		LineSize:    64,
	}
}

// Check reports a structurally impossible SDRAM configuration as an
// error. The model is built at simulation start (NewSDRAM panics on a
// subset of these); validated entry points catch the problem at plan
// time instead.
func (c SDRAMConfig) Check() error {
	switch {
	case c.Banks <= 0:
		return fmt.Errorf("mem: sdram needs at least one bank")
	case c.Rows <= 0 || c.Columns <= 0:
		return fmt.Errorf("mem: sdram rows and columns must be positive")
	case c.QueueSize <= 0:
		return fmt.Errorf("mem: sdram controller queue must hold at least one request")
	case c.LineSize == 0 || c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("mem: sdram line size must be a positive power of two")
	case c.BurstCycles == 0:
		return fmt.Errorf("mem: sdram burst must occupy at least one cycle")
	case c.Policy != FCFS && c.Policy != RowHitFirst:
		return fmt.Errorf("mem: unknown schedule policy %d", c.Policy)
	case c.Interleave != LinearMap && c.Interleave != PermuteMap:
		return fmt.Errorf("mem: unknown interleave %d", c.Interleave)
	}
	return nil
}

// ScaledSDRAMConfig returns the paper's "SDRAM exhibiting an average
// 70-cycle latency": the Table 1 device with its timings scaled down
// (especially CAS latency, reduced from 6 to 2 memory cycles, i.e.
// 30 to 10 CPU cycles) so the average latency matches the
// SimpleScalar constant model.
func ScaledSDRAMConfig() SDRAMConfig {
	c := DefaultSDRAMConfig()
	c.CASLatency = 10
	c.RASToCAS = 10
	c.RASPre = 10
	c.RASActive = 30
	c.RASCycle = 40
	c.RASToRAS = 8
	return c
}

type bank struct {
	openRow     int64 // -1 when closed
	readyAt     uint64
	lastActAt   uint64
	hasActed    bool
	actReadyMin uint64 // earliest next ACT honouring tRC
}

type sdramReq struct {
	req     *Req
	arrival uint64
	bank    int
	row     int64
}

// SDRAM is the detailed memory model: open-page policy, per-bank row
// buffers, a finite controller queue and a scheduling policy. Command
// issue overlaps across banks; the data bus serializes transfers.
type SDRAM struct {
	cfg   SDRAMConfig
	eng   *sim.Engine
	banks []bank
	queue []sdramReq
	stats Stats

	dataBusFreeAt uint64
	lastActAt     uint64 // for tRRD across banks
	anyActed      bool
	kickPlanned   bool
	inflight      int // requests issued to banks, not yet transferred
	name          string
}

// NewSDRAM builds an SDRAM model on the engine.
func NewSDRAM(eng *sim.Engine, cfg SDRAMConfig) *SDRAM {
	if cfg.Banks <= 0 || cfg.QueueSize <= 0 || cfg.LineSize == 0 {
		panic("mem: invalid SDRAM config")
	}
	s := &SDRAM{cfg: cfg, eng: eng, banks: make([]bank, cfg.Banks), name: "sdram"}
	for i := range s.banks {
		s.banks[i].openRow = -1
	}
	return s
}

// Name implements Model.
func (s *SDRAM) Name() string { return s.name }

// SetName overrides the report name (used for the scaled variant).
func (s *SDRAM) SetName(n string) { s.name = n }

// Config returns the active configuration.
func (s *SDRAM) Config() SDRAMConfig { return s.cfg }

// mapAddr decomposes a line address into bank and row.
func (s *SDRAM) mapAddr(addr uint64) (bankIdx int, row int64) {
	line := addr / s.cfg.LineSize
	// One row holds Columns 8-byte words; in lines:
	rowBytes := uint64(s.cfg.Columns) * 8
	linesPerRow := rowBytes / s.cfg.LineSize
	if linesPerRow == 0 {
		linesPerRow = 1
	}
	rowLinear := line / linesPerRow
	b := int(rowLinear % uint64(s.cfg.Banks))
	r := int64((rowLinear / uint64(s.cfg.Banks)) % uint64(s.cfg.Rows))
	if s.cfg.Interleave == PermuteMap {
		b = int((uint64(b) ^ (uint64(r) & (uint64(s.cfg.Banks) - 1))) % uint64(s.cfg.Banks))
	}
	return b, r
}

// Enqueue implements Model. Prefetch requests are throttled: they are
// refused once the controller queue is a quarter full, reserving
// capacity for demand misses (prefetches are retried from the cache
// request queues, so refusal only delays them).
//
//ml:hotpath
func (s *SDRAM) Enqueue(r *Req) bool {
	limit := s.cfg.QueueSize
	if r.Prefetch {
		limit = s.cfg.QueueSize / 8
		if limit == 0 {
			limit = 1
		}
	}
	if len(s.queue) >= limit {
		s.stats.QueueFullStalls++
		return false
	}
	b, row := s.mapAddr(r.Addr)
	s.queue = append(s.queue, sdramReq{req: r, arrival: s.eng.Now(), bank: b, row: row})
	s.kick()
	return true
}

// pick selects the index of the next request to issue per policy, or
// -1 if the queue is empty. Demand requests always outrank
// prefetches; within each class the scheduling policy applies.
func (s *SDRAM) pick() int {
	if len(s.queue) == 0 {
		return -1
	}
	for _, wantPrefetch := range [2]bool{false, true} {
		if s.cfg.Policy == RowHitFirst {
			for i := range s.queue {
				q := &s.queue[i]
				if q.req.Prefetch == wantPrefetch && s.banks[q.bank].openRow == q.row {
					return i
				}
			}
		}
		for i := range s.queue {
			if s.queue[i].req.Prefetch == wantPrefetch {
				return i
			}
		}
	}
	return 0
}

// kick issues requests while bank-level concurrency allows — at most
// one outstanding request per bank's worth of parallelism. Extra
// requests stay in the queue, which is what lets the scheduling
// policy (row-hit-first, demand-before-prefetch) actually reorder
// them, while the in-flight window preserves command pipelining
// across banks.
func (s *SDRAM) kick() {
	now := s.eng.Now()
	for {
		if s.inflight >= s.cfg.Banks {
			return // completions re-kick
		}
		i := s.pick()
		if i < 0 {
			return
		}
		q := s.queue[i]
		b := &s.banks[q.bank]

		start := now
		if b.readyAt > start {
			start = b.readyAt
		}

		var dataAt uint64
		switch {
		case b.openRow == q.row:
			// Row hit: column access only.
			s.stats.RowHits++
			dataAt = start + s.cfg.CASLatency
		case b.openRow == -1:
			// Row closed: activate then column access.
			s.stats.RowMisses++
			actAt := s.actTime(start, b)
			dataAt = actAt + s.cfg.RASToCAS + s.cfg.CASLatency
			b.openRow = q.row
			b.lastActAt = actAt
			b.hasActed = true
			s.lastActAt = actAt
			s.anyActed = true
			s.stats.Activates++
		default:
			// Row conflict: precharge, activate, column access.
			s.stats.RowConflicts++
			s.stats.Precharges++
			preAt := start
			// Honour tRAS: the open row must have been active long
			// enough before we may precharge.
			if b.hasActed && b.lastActAt+s.cfg.RASActive > preAt {
				preAt = b.lastActAt + s.cfg.RASActive
			}
			actAt := s.actTime(preAt+s.cfg.RASPre, b)
			dataAt = actAt + s.cfg.RASToCAS + s.cfg.CASLatency
			b.openRow = q.row
			b.lastActAt = actAt
			b.hasActed = true
			s.lastActAt = actAt
			s.anyActed = true
			s.stats.Activates++
		}

		xferStart := dataAt
		if s.dataBusFreeAt > xferStart {
			xferStart = s.dataBusFreeAt
		}
		done := xferStart + s.cfg.BurstCycles
		s.dataBusFreeAt = done
		// Column commands pipeline: the next CAS to this bank may
		// issue while this burst drains, so successive row hits
		// stream at data-bus rate, not at CAS-latency rate.
		if done > s.cfg.CASLatency {
			b.readyAt = done - s.cfg.CASLatency
		} else {
			b.readyAt = done
		}

		// Account and complete.
		if q.req.Write {
			s.stats.Writes++
		} else {
			s.stats.Reads++
			s.stats.TotalReadLatency += done - q.arrival
		}
		if q.req.Prefetch {
			s.stats.Prefetches++
		}
		s.inflight++
		s.eng.AtFunc(done, sdramXferDone, s, q.req.Done, 0, 0)

		// Remove from queue preserving order; clear the vacated tail
		// slot so the backing array does not pin the retired request.
		last := len(s.queue) - 1
		s.queue = append(s.queue[:i], s.queue[i+1:]...)
		s.queue[:last+1][last] = sdramReq{}
	}
}

// actTime returns the earliest legal ACT time at or after t for bank
// b, honouring tRC on the same bank and tRRD across banks.
func (s *SDRAM) actTime(t uint64, b *bank) uint64 {
	if b.hasActed && b.lastActAt+s.cfg.RASCycle > t {
		t = b.lastActAt + s.cfg.RASCycle
	}
	if s.anyActed && s.lastActAt+s.cfg.RASToRAS > t {
		t = s.lastActAt + s.cfg.RASToRAS
	}
	return t
}

func (s *SDRAM) serviceEstimate() uint64 {
	return s.cfg.RASPre + s.cfg.RASToCAS + s.cfg.CASLatency + s.cfg.BurstCycles
}

// sdramXferDone fires at burst completion: o1 is the controller, o2
// the request's Done sink (nil for writes nobody waits on).
func sdramXferDone(now uint64, o1, o2 any, _, _ uint64) {
	s := o1.(*SDRAM)
	s.inflight--
	if cb, _ := o2.(DoneSink); cb != nil {
		cb.ReqDone(now)
	}
	s.kick()
}

func (s *SDRAM) scheduleKick(at uint64) {
	if s.kickPlanned {
		return
	}
	s.kickPlanned = true
	if at < s.eng.Now() {
		at = s.eng.Now()
	}
	s.eng.AtFunc(at, sdramFireKick, s, nil, 0, 0)
}

func sdramFireKick(_ uint64, o1, _ any, _, _ uint64) {
	s := o1.(*SDRAM)
	s.kickPlanned = false
	s.kick()
}

// Pending implements Model.
func (s *SDRAM) Pending() int { return len(s.queue) }

// Stats implements Model.
func (s *SDRAM) Stats() Stats { return s.stats }

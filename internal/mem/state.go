package mem

import (
	"fmt"

	"microlib/internal/sim"
)

// BankState is one SDRAM bank's mutable state in serializable form.
type BankState struct {
	OpenRow     int64
	ReadyAt     uint64
	LastActAt   uint64
	HasActed    bool
	ActReadyMin uint64
}

// QueuedReqState is one controller-queue entry. The queued *Req lives
// inside an owner node (a hier backend request, reachable through its
// Done sink via ReqHolder); Owner references that node, and the bank/
// row decomposition is recomputed from the restored request's address.
type QueuedReqState struct {
	Owner   sim.OpRef
	Arrival uint64
}

// SDRAMState is the full mutable state of the SDRAM model.
type SDRAMState struct {
	Banks         []BankState
	Queue         []QueuedReqState
	Stats         Stats
	DataBusFreeAt uint64
	LastActAt     uint64
	AnyActed      bool
	KickPlanned   bool
	Inflight      int
}

// State captures the controller's mutable state. Every queued request
// must carry a Done sink that resolve recognizes and whose owner
// implements ReqHolder (true for all hierarchy backends; bare test
// requests are not checkpointable).
func (s *SDRAM) State(resolve func(any) (sim.OpRef, bool)) (SDRAMState, error) {
	st := SDRAMState{
		Stats:         s.stats,
		DataBusFreeAt: s.dataBusFreeAt,
		LastActAt:     s.lastActAt,
		AnyActed:      s.anyActed,
		KickPlanned:   s.kickPlanned,
		Inflight:      s.inflight,
	}
	st.Banks = make([]BankState, len(s.banks))
	for i, b := range s.banks {
		st.Banks[i] = BankState{
			OpenRow: b.openRow, ReadyAt: b.readyAt, LastActAt: b.lastActAt,
			HasActed: b.hasActed, ActReadyMin: b.actReadyMin,
		}
	}
	if len(s.queue) > 0 {
		st.Queue = make([]QueuedReqState, len(s.queue))
		for i := range s.queue {
			q := &s.queue[i]
			if q.req.Done == nil {
				return SDRAMState{}, fmt.Errorf("mem: queued request %#x has no owner sink", q.req.Addr)
			}
			ref, ok := resolve(q.req.Done)
			if !ok {
				return SDRAMState{}, fmt.Errorf("mem: unresolvable queued request owner %T", q.req.Done)
			}
			st.Queue[i] = QueuedReqState{Owner: ref, Arrival: q.arrival}
		}
	}
	return st, nil
}

// SetState overwrites the controller's mutable state from a snapshot
// taken on an identically-configured model. Owner references must
// resolve to nodes whose request payloads were already restored (the
// bank/row mapping is recomputed from the request address).
func (s *SDRAM) SetState(st SDRAMState, resolve func(sim.OpRef) (any, bool)) error {
	if len(st.Banks) != len(s.banks) {
		return fmt.Errorf("mem: snapshot has %d banks, config needs %d", len(st.Banks), len(s.banks))
	}
	for i, b := range st.Banks {
		s.banks[i] = bank{
			openRow: b.OpenRow, readyAt: b.ReadyAt, lastActAt: b.LastActAt,
			hasActed: b.HasActed, actReadyMin: b.ActReadyMin,
		}
	}
	s.stats = st.Stats
	s.dataBusFreeAt = st.DataBusFreeAt
	s.lastActAt = st.LastActAt
	s.anyActed = st.AnyActed
	s.kickPlanned = st.KickPlanned
	s.inflight = st.Inflight
	for i := range s.queue {
		s.queue[i] = sdramReq{}
	}
	s.queue = s.queue[:0]
	for i := range st.Queue {
		v, ok := resolve(st.Queue[i].Owner)
		if !ok {
			return fmt.Errorf("mem: unresolvable queued request owner ref %v", st.Queue[i].Owner)
		}
		h, ok := v.(ReqHolder)
		if !ok {
			return fmt.Errorf("mem: queued request owner %T does not expose its Req", v)
		}
		req := h.ReqPtr()
		b, row := s.mapAddr(req.Addr)
		s.queue = append(s.queue, sdramReq{req: req, arrival: st.Queue[i].Arrival, bank: b, row: row})
	}
	return nil
}

// State captures the constant-latency model's only mutable state.
func (m *ConstLatency) State() Stats { return m.stats }

// SetState overwrites the constant-latency model's counters.
func (m *ConstLatency) SetState(st Stats) { m.stats = st }

func init() {
	sim.RegisterFunc("mem.callReqDone", callReqDone)
	sim.RegisterFunc("mem.sdramXferDone", sdramXferDone)
	sim.RegisterFunc("mem.sdramFireKick", sdramFireKick)
}

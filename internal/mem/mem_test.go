package mem

import (
	"testing"
	"testing/quick"

	"microlib/internal/sim"
)

func TestConstLatencyExact(t *testing.T) {
	eng := sim.NewEngine()
	m := NewConstLatency(eng, 70)
	var doneAt uint64
	m.Enqueue(&Req{Addr: 0x1000, Size: 64, Done: DoneFunc(func(now uint64) { doneAt = now })})
	eng.AdvanceTo(100)
	if doneAt != 70 {
		t.Fatalf("const latency completed at %d, want 70", doneAt)
	}
	if m.Stats().Reads != 1 || m.Stats().AvgReadLatency() != 70 {
		t.Fatalf("stats wrong: %+v", m.Stats())
	}
}

func TestSDRAMRowHitFasterThanConflict(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSDRAMConfig()
	cfg.Interleave = LinearMap
	s := NewSDRAM(eng, cfg)

	latency := func(addr uint64) uint64 {
		var done uint64
		start := eng.Now()
		if !s.Enqueue(&Req{Addr: addr, Size: 64, Done: DoneFunc(func(now uint64) { done = now })}) {
			t.Fatal("enqueue refused")
		}
		eng.AdvanceTo(eng.Now() + 10000)
		return done - start
	}

	first := latency(0)                                     // row closed: ACT + CAS
	hit := latency(64)                                      // same row: CAS only
	rowBytes := uint64(cfg.Columns) * 8 * uint64(cfg.Banks) // stay in bank 0 under linear map
	conflict := latency(rowBytes * 4)                       // same bank, different row

	if hit >= first {
		t.Fatalf("row hit (%d) not faster than row miss (%d)", hit, first)
	}
	if conflict <= hit {
		t.Fatalf("row conflict (%d) not slower than row hit (%d)", conflict, hit)
	}
	st := s.Stats()
	if st.RowHits == 0 || st.RowConflicts == 0 {
		t.Fatalf("row accounting: %+v", st)
	}
}

func TestSDRAMQueueLimit(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSDRAMConfig()
	cfg.QueueSize = 4
	s := NewSDRAM(eng, cfg)
	accepted := 0
	// Up to Banks requests go in flight immediately; beyond that the
	// 4-entry queue bounds acceptance.
	for i := 0; i < cfg.Banks+20; i++ {
		if s.Enqueue(&Req{Addr: uint64(i) * 1 << 20, Size: 64}) {
			accepted++
		}
	}
	if accepted > cfg.Banks+cfg.QueueSize {
		t.Fatalf("queue limit never engaged (accepted %d)", accepted)
	}
	if s.Stats().QueueFullStalls == 0 {
		t.Fatal("no queue-full stalls recorded")
	}
}

func TestSDRAMPrefetchAdmission(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSDRAMConfig()
	s := NewSDRAM(eng, cfg)
	// Beyond the in-flight window, prefetches may only take a small
	// share of the queue; demand may take all of it.
	acc := 0
	for i := 0; i < cfg.Banks+cfg.QueueSize; i++ {
		if s.Enqueue(&Req{Addr: uint64(i) << 20, Size: 64, Prefetch: true}) {
			acc++
		}
	}
	if acc > cfg.Banks+cfg.QueueSize/4 {
		t.Fatalf("prefetch admission not throttled: accepted %d", acc)
	}
	// Demand must still be accepted.
	if !s.Enqueue(&Req{Addr: 1 << 28, Size: 64}) {
		t.Fatal("demand refused while queue has demand headroom")
	}
}

func TestSDRAMDemandPriority(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultSDRAMConfig()
	s := NewSDRAM(eng, cfg)
	var order []string
	// Saturate the in-flight window so subsequent requests must wait
	// in the queue, where scheduling applies.
	for i := 0; i < cfg.Banks; i++ {
		s.Enqueue(&Req{Addr: uint64(i) << 21, Size: 64})
	}
	if !s.Enqueue(&Req{Addr: 1 << 27, Size: 64, Prefetch: true,
		Done: DoneFunc(func(uint64) { order = append(order, "prefetch") })}) {
		t.Fatal("prefetch not accepted into queue")
	}
	if !s.Enqueue(&Req{Addr: 1 << 28, Size: 64,
		Done: DoneFunc(func(uint64) { order = append(order, "demand") })}) {
		t.Fatal("demand not accepted into queue")
	}
	eng.AdvanceTo(100000)
	if len(order) != 2 {
		t.Fatalf("completions: %v", order)
	}
	if order[0] != "demand" {
		t.Fatalf("demand not prioritized over queued prefetch: %v", order)
	}
}

func TestScaledSDRAMFaster(t *testing.T) {
	run := func(cfg SDRAMConfig) float64 {
		eng := sim.NewEngine()
		s := NewSDRAM(eng, cfg)
		for i := 0; i < 200; i++ {
			addr := uint64(i*i) * 64 // spread over rows
			s.Enqueue(&Req{Addr: addr, Size: 64})
			eng.AdvanceTo(eng.Now() + 50)
		}
		eng.AdvanceTo(eng.Now() + 100000)
		return s.Stats().AvgReadLatency()
	}
	fast := run(ScaledSDRAMConfig())
	slow := run(DefaultSDRAMConfig())
	if fast >= slow {
		t.Fatalf("scaled SDRAM (%f) not faster than default (%f)", fast, slow)
	}
}

// TestPropertyCompletionMonotone: for any request sequence, each
// request completes after it was enqueued.
func TestPropertyCompletionMonotone(t *testing.T) {
	err := quick.Check(func(addrs []uint32) bool {
		eng := sim.NewEngine()
		s := NewSDRAM(eng, DefaultSDRAMConfig())
		ok := true
		for _, a := range addrs {
			arr := eng.Now()
			s.Enqueue(&Req{Addr: uint64(a) &^ 63, Size: 64, Done: DoneFunc(func(now uint64) {
				if now <= arr {
					ok = false
				}
			})})
			eng.AdvanceTo(eng.Now() + 20)
		}
		eng.AdvanceTo(eng.Now() + 100000)
		return ok
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsSub(t *testing.T) {
	a := Stats{Reads: 10, Writes: 4, TotalReadLatency: 1000}
	b := Stats{Reads: 4, Writes: 1, TotalReadLatency: 300}
	d := a.Sub(b)
	if d.Reads != 6 || d.Writes != 3 || d.TotalReadLatency != 700 {
		t.Fatalf("Sub wrong: %+v", d)
	}
}

package mem

import "microlib/internal/sim"

// ConstLatency is the SimpleScalar-style memory: every request
// completes a fixed number of cycles after it is accepted, with
// unlimited concurrency and no queue. This is the model most of the
// surveyed articles used (a constant 70-cycle latency).
type ConstLatency struct {
	eng     *sim.Engine
	latency uint64
	stats   Stats
}

// NewConstLatency returns a constant-latency memory.
func NewConstLatency(eng *sim.Engine, latency uint64) *ConstLatency {
	return &ConstLatency{eng: eng, latency: latency}
}

// Name implements Model.
func (m *ConstLatency) Name() string { return "const" }

// Enqueue implements Model. It always accepts.
//
//ml:hotpath
func (m *ConstLatency) Enqueue(r *Req) bool {
	if r.Write {
		m.stats.Writes++
	} else {
		m.stats.Reads++
		m.stats.TotalReadLatency += m.latency
	}
	if r.Prefetch {
		m.stats.Prefetches++
	}
	if r.Done != nil {
		m.eng.AfterFunc(m.latency, callReqDone, r.Done, nil, 0, 0)
	}
	return true
}

func callReqDone(now uint64, o1, _ any, _, _ uint64) {
	o1.(DoneSink).ReqDone(now)
}

// Stats implements Model.
func (m *ConstLatency) Stats() Stats { return m.stats }

// Package mem implements the main-memory models of MicroLib.
//
// The paper compares three memories (its Figure 8): the SimpleScalar
// constant-latency model, a detailed SDRAM (Table 1 timings, ~170
// cycle average), and an SDRAM scaled so its average latency matches
// the 70-cycle constant model. All three are provided here behind the
// Model interface.
package mem

// DoneSink receives request completions. Requesters are identifiable
// objects (pooled backend nodes) rather than closures so that
// requests parked in controller queues and calendar events can be
// enumerated and serialized by the warm-state checkpointing
// machinery.
type DoneSink interface {
	// ReqDone fires exactly once when the transfer completes.
	ReqDone(now uint64)
}

// DoneFunc adapts a plain function to DoneSink (tests and one-off
// probes; the simulation hot paths use concrete pooled sinks).
type DoneFunc func(now uint64)

// ReqDone implements DoneSink.
func (f DoneFunc) ReqDone(now uint64) { f(now) }

// ReqHolder is implemented by request owners whose Req outlives an
// Enqueue call (it sits in a controller queue). Snapshot code uses it
// to re-link queued requests to their restored owner nodes.
type ReqHolder interface {
	ReqPtr() *Req
}

// Req is one line-sized memory request.
type Req struct {
	Addr     uint64 // line-aligned physical address
	Size     uint32 // transfer size in bytes
	Write    bool   // true for write-backs
	Prefetch bool   // true if speculative (affects stats only)
	// Done is notified exactly once when the transfer completes. It
	// may be nil (e.g. for write-backs nobody waits on).
	Done DoneSink
}

// Model is a main memory. Enqueue attempts to accept a request at the
// current cycle and reports whether it was accepted; a false return
// means the controller queue is full (or, for prefetches, that the
// prefetch admission limit is reached) and the caller must retry.
type Model interface {
	Enqueue(r *Req) bool
	// Pending reports the controller queue occupancy.
	Pending() int
	// Stats returns cumulative counters.
	Stats() Stats
	// Name identifies the model configuration for reports.
	Name() string
}

// Stats are cumulative memory counters.
type Stats struct {
	Reads      uint64
	Writes     uint64
	Prefetches uint64
	// TotalReadLatency accumulates per-read (completion - arrival)
	// in CPU cycles; AvgReadLatency = TotalReadLatency/Reads.
	TotalReadLatency uint64
	RowHits          uint64
	RowMisses        uint64 // bank was closed
	RowConflicts     uint64 // open row had to be precharged
	Precharges       uint64
	Activates        uint64
	QueueFullStalls  uint64
}

// AvgReadLatency returns the mean read latency in CPU cycles, or 0
// if no read completed.
func (s Stats) AvgReadLatency() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.TotalReadLatency) / float64(s.Reads)
}

// Accesses returns the total number of requests.
func (s Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Pending implements Model for ConstLatency (never queues).
func (m *ConstLatency) Pending() int { return 0 }

// Sub returns the counter deltas s - prev.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Reads:            s.Reads - prev.Reads,
		Writes:           s.Writes - prev.Writes,
		Prefetches:       s.Prefetches - prev.Prefetches,
		TotalReadLatency: s.TotalReadLatency - prev.TotalReadLatency,
		RowHits:          s.RowHits - prev.RowHits,
		RowMisses:        s.RowMisses - prev.RowMisses,
		RowConflicts:     s.RowConflicts - prev.RowConflicts,
		Precharges:       s.Precharges - prev.Precharges,
		Activates:        s.Activates - prev.Activates,
		QueueFullStalls:  s.QueueFullStalls - prev.QueueFullStalls,
	}
}

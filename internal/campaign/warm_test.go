package campaign

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"microlib/internal/telemetry"
)

// warmSpec builds a plan whose cells form prefix groups: several
// measured budgets over the same workload, seed, warm-up and machine
// configuration. Each (bench, mech) pair is one group of three.
func warmSpec() Spec {
	w := uint64(500)
	return Spec{
		Name:       "warm",
		Benchmarks: []string{"gzip", "mcf"},
		Mechanisms: []string{"Base", "TP"},
		Seeds:      []uint64{1},
		Insts:      []uint64{2000, 3000, 4000},
		Warmup:     &w,
	}
}

func runPlan(t *testing.T, s *Scheduler, spec Spec) (map[string]CellResult, SchedulerStats) {
	t.Helper()
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 {
		t.Fatalf("no cell may fail: %+v", stats)
	}
	return results, stats
}

// A warm campaign must produce cell-for-cell identical results to a
// cold one — warm checkpointing buys wall-clock time, never a
// different number — while paying for each prefix group once.
func TestWarmCampaignMatchesCold(t *testing.T) {
	cold, coldStats := runPlan(t, &Scheduler{Workers: 4}, warmSpec())
	if coldStats.PrefixRuns != 0 || coldStats.CheckpointHits != 0 {
		t.Fatalf("cold scheduler must not checkpoint: %+v", coldStats)
	}

	warm, warmStats := runPlan(t, &Scheduler{Workers: 4, Warm: NewWarm(nil)}, warmSpec())
	if !reflect.DeepEqual(cold, warm) {
		t.Fatalf("warm results differ from cold:\ncold: %+v\nwarm: %+v", cold, warm)
	}
	// 2 bench × 2 mech groups of 3 budgets: 4 prefixes serve 12 cells.
	if warmStats.PrefixRuns != 4 {
		t.Fatalf("want 4 prefix runs (one per group), got %+v", warmStats)
	}
	if warmStats.CheckpointHits != 12 || warmStats.CheckpointMisses != 0 {
		t.Fatalf("every cell must run from its group's checkpoint: %+v", warmStats)
	}
	if warmStats.Simulated != 12 {
		t.Fatalf("warm cells still count as simulated: %+v", warmStats)
	}
}

// With a checkpoint store, warm state survives the campaign: a rerun
// without a result cache re-simulates every measurement phase but pays
// for no prefix at all.
func TestWarmCheckpointStorePersistsAcrossRuns(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ckpt")
	store1, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	first, firstStats := runPlan(t, &Scheduler{Workers: 2, Warm: NewWarm(store1)}, warmSpec())
	if firstStats.PrefixRuns != 4 {
		t.Fatalf("first run must capture each prefix: %+v", firstStats)
	}
	if c := store1.Counters(); c.Puts != 4 {
		t.Fatalf("store must hold the 4 captured prefixes: %+v", c)
	}

	store2, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	second, secondStats := runPlan(t, &Scheduler{Workers: 2, Warm: NewWarm(store2)}, warmSpec())
	if secondStats.PrefixRuns != 0 {
		t.Fatalf("second run must simulate no prefix: %+v", secondStats)
	}
	if secondStats.CheckpointHits != 12 {
		t.Fatalf("second run must restore every cell: %+v", secondStats)
	}
	if c := store2.Counters(); c.Hits == 0 || c.Puts != 0 {
		t.Fatalf("second run must read, not write, the store: %+v", c)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("store-restored results differ from capture-run results")
	}

	keys, err := store2.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("stored prefixes: %v", keys)
	}
}

// A store full of garbage must cost nothing but the re-capture: each
// corrupt entry is quarantined and its prefix simulated fresh, with
// the degradation counted, and the results stay correct.
func TestWarmQuarantinesCorruptCheckpoints(t *testing.T) {
	cold, _ := runPlan(t, &Scheduler{}, warmSpec())

	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(warmSpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Cells {
		key := c.Opts.PrefixFingerprint()
		if err := os.WriteFile(filepath.Join(dir, key+".ckpt"), []byte("torn bytes"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s := &Scheduler{Warm: NewWarm(store)}
	s.Warm.Store.OnDegrade = s.Degrade
	warm, stats := runPlan(t, s, warmSpec())
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("results after quarantine differ from cold")
	}
	if stats.PrefixRuns != 4 {
		t.Fatalf("every corrupt prefix must be re-simulated: %+v", stats)
	}
	if stats.Degraded != 4 {
		t.Fatalf("each quarantined entry must be counted: %+v", stats)
	}
	if c := store.Counters(); c.Corrupt != 4 {
		t.Fatalf("store counters must record the quarantines: %+v", c)
	}
	quarantined, err := filepath.Glob(filepath.Join(dir, "*.corrupt"))
	if err != nil || len(quarantined) != 4 {
		t.Fatalf("corrupt entries must be preserved for diagnosis: %v %v", quarantined, err)
	}
}

// A stored checkpoint that passes integrity checks but cannot serve a
// cell (here: a fetch horizon beyond every measured budget) silently
// degrades those cells to cold runs — correct results, counted misses.
func TestWarmUnusableCheckpointFallsBackCold(t *testing.T) {
	cold, _ := runPlan(t, &Scheduler{}, warmSpec())

	dir := filepath.Join(t.TempDir(), "ckpt")
	store, err := OpenCheckpointStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	capture, err := OpenCheckpointStore(filepath.Join(t.TempDir(), "real"))
	if err != nil {
		t.Fatal(err)
	}
	// Capture genuine checkpoints, then poison the fetch horizon so no
	// budget can clear it.
	if _, stats := runPlan(t, &Scheduler{Warm: NewWarm(capture)}, warmSpec()); stats.PrefixRuns != 4 {
		t.Fatalf("capture run: %+v", stats)
	}
	keys, err := capture.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		ck, ok := capture.Get(key)
		if !ok {
			t.Fatalf("captured checkpoint %s missing", key)
		}
		ck.MinInsts = 1 << 60
		if err := store.Put(key, ck); err != nil {
			t.Fatal(err)
		}
	}

	warm, stats := runPlan(t, &Scheduler{Warm: NewWarm(store)}, warmSpec())
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("fallback results differ from cold")
	}
	if stats.CheckpointHits != 0 || stats.CheckpointMisses != 12 {
		t.Fatalf("every cell must fall back cold: %+v", stats)
	}
	if stats.Degraded != 0 {
		t.Fatalf("an unusable checkpoint is a planned fallback, not a degradation: %+v", stats)
	}
}

// Sampled cells must bypass warm execution: the warm-up part of an
// interval series cannot be reproduced from a post-warm-up snapshot.
func TestWarmSampledCellsRunCold(t *testing.T) {
	s := &Scheduler{
		Warm:         NewWarm(nil),
		Interval:     500,
		IntervalSink: func(Cell, []telemetry.Interval) {},
	}
	_, stats := runPlan(t, s, warmSpec())
	if stats.CheckpointHits != 0 || stats.PrefixRuns != 0 {
		t.Fatalf("sampled cells must run cold: %+v", stats)
	}
}

// Execute wires warm checkpointing by default and threads the
// scheduler's warm counters into the summary stats.
func TestExecuteWarmByDefault(t *testing.T) {
	sum, err := Execute(context.Background(), warmSpec(), RunConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.PrefixRuns != 4 || sum.Sched.CheckpointHits != 12 {
		t.Fatalf("Execute must run warm by default: %+v", sum.Sched)
	}
	coldSum, err := Execute(context.Background(), warmSpec(), RunConfig{NoWarm: true})
	if err != nil {
		t.Fatal(err)
	}
	if coldSum.Sched.PrefixRuns != 0 || coldSum.Sched.CheckpointHits != 0 {
		t.Fatalf("NoWarm must disable checkpointing: %+v", coldSum.Sched)
	}
	for i := range sum.Scenarios {
		if !reflect.DeepEqual(sum.Scenarios[i].Mean, coldSum.Scenarios[i].Mean) {
			t.Fatalf("warm and cold aggregates differ in scenario %d", i)
		}
	}
}

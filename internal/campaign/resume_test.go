package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"microlib/internal/fault"
)

// runToJournal runs a tinySpec campaign writing its journal to a real
// file, canceling after `stopAfter` cells when stopAfter > 0.
func runToJournal(t *testing.T, dir string, stopAfter int) (journalPath, cacheDir string, sum *Summary, err error) {
	t.Helper()
	journalPath = filepath.Join(dir, "run.jsonl")
	cacheDir = filepath.Join(dir, "cache")
	jf, ferr := os.Create(journalPath)
	if ferr != nil {
		t.Fatal(ferr)
	}
	defer jf.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := RunConfig{Workers: 1, CacheDir: cacheDir, Journal: jf}
	if stopAfter > 0 {
		n := 0
		cfg.OnProgress = func(Progress) {
			n++
			if n >= stopAfter {
				cancel()
			}
		}
	}
	sum, err = Execute(ctx, tinySpec(), cfg)
	return journalPath, cacheDir, sum, err
}

// The headline crash-safety property: interrupt a campaign partway,
// resume from the journal, and the final aggregate is bit-identical
// to an uninterrupted run — with only the remainder simulated.
func TestResumeMatchesUninterruptedRun(t *testing.T) {
	// Reference: the same spec run to completion.
	_, _, want, err := runToJournal(t, t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	journalPath, _, _, err := runToJournal(t, dir, 3)
	if err == nil {
		t.Fatal("interrupted run must report cancellation")
	}

	sum, info, err := Resume(context.Background(), journalPath, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Torn {
		t.Fatal("cleanly canceled journal must not read as torn")
	}
	if info.Recovered < 3 || info.Remaining == 0 || info.Recovered+info.Remaining != 8 {
		t.Fatalf("reconstruction: %+v", info)
	}
	if sum.Sched.Simulated != info.Remaining || sum.Sched.CacheHits != info.Recovered {
		t.Fatalf("resume must only simulate the remainder: %+v vs %+v", sum.Sched, info)
	}
	// Scheduler stats differ by construction (cache hits vs
	// simulations); the science must not.
	if !reflect.DeepEqual(sum.Scenarios, want.Scenarios) {
		t.Fatalf("resumed aggregate diverged:\n got %+v\nwant %+v", sum.Scenarios, want.Scenarios)
	}

	// The journal now holds both runs plus a resume marker, and
	// status reflects the completed latest run.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	evs := readJournalStrict(t, data)
	var resumes, starts int
	for _, e := range evs {
		switch e.Ev {
		case EvResume:
			resumes++
			if e.Recovered != info.Recovered || e.Remaining != info.Remaining {
				t.Fatalf("resume marker: %+v vs %+v", e, info)
			}
		case EvStart:
			starts++
		}
	}
	if resumes != 1 || starts != 2 {
		t.Fatalf("journal shape: %d resumes, %d starts", resumes, starts)
	}
	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.Resumes != 1 || st.Done != 8 || st.Errors != 0 {
		t.Fatalf("status after resume: %+v", st)
	}
}

// A torn final line — the debris SIGKILL leaves — is tolerated: the
// intact prefix drives the resume and the tear is reported.
func TestResumeToleratesTornTail(t *testing.T) {
	dir := t.TempDir()
	journalPath, _, _, err := runToJournal(t, dir, 3)
	if err == nil {
		t.Fatal("interrupted run must report cancellation")
	}
	f, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"ev":"cell_done","key":"cafef00d`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sum, info, err := Resume(context.Background(), journalPath, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn {
		t.Fatal("the torn tail must be reported")
	}
	if sum.Sched.Completed != 8 || sum.Sched.Errors != 0 {
		t.Fatalf("resumed run: %+v", sum.Sched)
	}
	// The resumed journal is whole again: the torn fragment is
	// followed by well-formed lines, so a *second* read fails hard at
	// that line — which status tolerates via its torn-line count but
	// strict readers rightly reject. Verify line-by-line validity of
	// everything the resumed run appended.
	data, err := os.ReadFile(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSuffix(data, []byte("\n")), []byte("\n"))
	bad := 0
	for _, ln := range lines {
		if !json.Valid(ln) {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("exactly the torn fragment must be invalid, found %d bad lines", bad)
	}
}

// Deterministic failures are replayed from the journal: the doomed
// cell is not resimulated, its failure stays typed, and duplicate
// bookkeeping matches the original.
func TestResumeReplaysDeterministicFailures(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "run.jsonl")
	cacheDir := filepath.Join(dir, "cache")
	jf, err := os.Create(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[0].Key
	sum, err := Execute(context.Background(), tinySpec(), RunConfig{
		Workers:  2,
		CacheDir: cacheDir,
		Journal:  jf,
		Faults:   fault.New(1).EnableKeys(fault.CellPanic, 1, victim),
	})
	jf.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.Errors != 1 {
		t.Fatalf("setup run: %+v", sum.Sched)
	}

	sum2, info, err := Resume(context.Background(), journalPath, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.KnownFailures != 1 || info.Recovered != 8 || info.Remaining != 0 {
		t.Fatalf("reconstruction: %+v", info)
	}
	if sum2.Sched.Simulated != 0 {
		t.Fatalf("nothing should be resimulated: %+v", sum2.Sched)
	}
	if sum2.Sched.Errors != 1 || sum2.Sched.FailedKinds[string(KindPanic)] != 1 {
		t.Fatalf("replayed failure must stay typed: %+v", sum2.Sched)
	}
}

// Guard rails: journals without a start/spec, and plans whose
// fingerprint changed since the journal was written, are rejected
// with actionable messages.
func TestResumeRejectsUnusableJournals(t *testing.T) {
	dir := t.TempDir()

	noStart := filepath.Join(dir, "nostart.jsonl")
	os.WriteFile(noStart, []byte(`{"ev":"cell_done","key":"a"}`+"\n"), 0o644)
	if _, _, err := Resume(context.Background(), noStart, RunConfig{}); err == nil || !contains(err, "no start event") {
		t.Fatalf("journal without start: %v", err)
	}

	noSpec := filepath.Join(dir, "nospec.jsonl")
	os.WriteFile(noSpec, []byte(`{"ev":"start","campaign":"t"}`+"\n"), 0o644)
	if _, _, err := Resume(context.Background(), noSpec, RunConfig{}); err == nil || !contains(err, "embeds no spec") {
		t.Fatalf("journal without spec: %v", err)
	}

	spec := tinySpec()
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	badFP := filepath.Join(dir, "badfp.jsonl")
	line, _ := json.Marshal(JournalEvent{Ev: EvStart, Spec: raw, Plan: "0123456789abcdef", CacheDir: dir})
	os.WriteFile(badFP, append(line, '\n'), 0o644)
	if _, _, err := Resume(context.Background(), badFP, RunConfig{}); err == nil || !contains(err, "fingerprint changed") {
		t.Fatalf("fingerprint mismatch: %v", err)
	}

	if _, _, err := Resume(context.Background(), filepath.Join(dir, "missing.jsonl"), RunConfig{}); err == nil {
		t.Fatal("missing journal must error")
	}
}

func contains(err error, sub string) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte(sub))
}

// Spec-level robustness knobs round-trip through the journal: a
// resumed run inherits cell_timeout and retry from the embedded spec.
func TestResumeInheritsSpecRobustnessKnobs(t *testing.T) {
	dir := t.TempDir()
	journalPath := filepath.Join(dir, "run.jsonl")
	cacheDir := filepath.Join(dir, "cache")
	spec := tinySpec()
	spec.CellTimeout = Duration(250 * time.Millisecond)
	spec.Retry = &RetrySpec{Max: 3}
	jf, err := os.Create(journalPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancel immediately: we only want the start event
	if _, err := Execute(ctx, spec, RunConfig{Workers: 1, CacheDir: cacheDir, Journal: jf}); err == nil {
		t.Fatal("canceled run must report it")
	}
	jf.Close()

	sum, info, err := Resume(context.Background(), journalPath, RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if info.Remaining == 0 {
		t.Fatalf("canceled-at-birth run must leave work: %+v", info)
	}
	if sum.Sched.Completed != 8 || sum.Sched.Errors != 0 {
		t.Fatalf("resumed run: %+v", sum.Sched)
	}
	// The embedded spec carried the knobs through the round trip.
	evs := readJournalStrict(t, mustRead(t, journalPath))
	var lastStart *JournalEvent
	for i := range evs {
		if evs[i].Ev == EvStart {
			lastStart = &evs[i]
		}
	}
	var embedded Spec
	if err := json.Unmarshal(lastStart.Spec, &embedded); err != nil {
		t.Fatal(err)
	}
	if embedded.CellTimeout.Std() != 250*time.Millisecond || embedded.Retry == nil || embedded.Retry.Max != 3 {
		t.Fatalf("spec knobs lost in the journal round trip: %+v", embedded)
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

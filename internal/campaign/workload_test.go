package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microlib/internal/workload"
)

func customProfile(name string) *workload.Profile {
	return &workload.Profile{
		Name:     name,
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1, Mispredict: 0.04,
		CodeKB: 16, BlockLen: 6, DepMean: 5, FVProb: 0.1,
		Patterns: []workload.PatternSpec{
			{Kind: workload.PatHot, Size: 8 << 10},
			{Kind: workload.PatStride, Size: 1 << 20, Stride: 64},
		},
		Phases: []workload.PhaseSpec{{Len: 10_000, Weights: []float64{8, 2}}},
	}
}

// recordWorkload captures a built-in benchmark to dir via Record.
func recordWorkload(t *testing.T, dir, bench string, seed, insts uint64) string {
	t.Helper()
	path := filepath.Join(dir, bench+".mlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, err := Record(Spec{}, bench, seed, insts, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if n != insts {
		t.Fatalf("recorded %d of %d", n, insts)
	}
	return path
}

func TestWorkloadSpecValidation(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordWorkload(t, dir, "gzip", 42, 100)
	badProfile := customProfile("bad")
	badProfile.Phases[0].Weights = []float64{1} // length mismatch

	cases := []struct {
		label string
		wls   []WorkloadSpec
		want  string
	}{
		{"unnamed", []WorkloadSpec{{Profile: customProfile("")}}, "needs a name"},
		{"both", []WorkloadSpec{{Name: "w", Profile: customProfile("w"), Trace: tracePath}}, "both profile and trace"},
		{"neither", []WorkloadSpec{{Name: "w"}}, "neither profile nor trace"},
		{"shadow builtin", []WorkloadSpec{{Name: "mcf", Profile: customProfile("mcf")}}, "built-in"},
		{"dup", []WorkloadSpec{
			{Name: "w", Profile: customProfile("w")},
			{Name: "w", Trace: tracePath},
		}, "duplicate"},
		{"name mismatch", []WorkloadSpec{{Name: "w", Profile: customProfile("other")}}, "embeds a profile named"},
		{"invalid profile", []WorkloadSpec{{Name: "bad", Profile: badProfile}}, "weights"},
		{"missing trace", []WorkloadSpec{{Name: "w", Trace: filepath.Join(dir, "absent.mlt")}}, "absent.mlt"},
		{"bad magic", []WorkloadSpec{{Name: "w", Trace: writeJunk(t, dir)}}, "bad magic"},
		{"truncated trace", []WorkloadSpec{{Name: "w", Trace: truncateCopy(t, dir, tracePath)}}, "truncated"},
	}
	for _, c := range cases {
		s := Spec{Workloads: c.wls}
		err := s.Normalize()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want %q in error, got %v", c.label, c.want, err)
		}
	}
}

// truncateCopy clones a trace file and cuts its last record in half.
func truncateCopy(t *testing.T, dir, src string) string {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "cut.mlt")
	if err := os.WriteFile(p, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func writeJunk(t *testing.T, dir string) string {
	t.Helper()
	p := filepath.Join(dir, "junk.mlt")
	if err := os.WriteFile(p, []byte("this is not a trace file"), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDefaultBenchmarksIncludeCustomWorkloads(t *testing.T) {
	dir := t.TempDir()
	// Mechanisms listed explicitly: the all-mechanisms default
	// includes value-inspecting ones, which trace workloads reject.
	s := Spec{
		Mechanisms: []string{"Base"},
		Workloads: []WorkloadSpec{
			{Name: "mine", Profile: customProfile("mine")},
			{Name: "recorded", Trace: recordWorkload(t, dir, "gzip", 42, 100)},
		},
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if want := len(workload.Names()) + 2; len(s.Benchmarks) != want {
		t.Fatalf("default benchmarks: %d, want %d", len(s.Benchmarks), want)
	}
	last := s.Benchmarks[len(s.Benchmarks)-2:]
	if last[0] != "mine" || last[1] != "recorded" {
		t.Fatalf("customs not appended: %v", last)
	}
}

// TestCustomWorkloadsNeverShareFingerprints is the issue-mandated
// cache-safety test: across inline profiles, trace files and
// built-ins, two different workloads must never produce the same
// cell key.
func TestCustomWorkloadsNeverShareFingerprints(t *testing.T) {
	dir := t.TempDir()
	profA := customProfile("loada")
	profB := customProfile("loadb")
	profB.Patterns[1].Stride = 256 // genuinely different content

	spec := Spec{
		Benchmarks: []string{"gzip", "loada", "loadb", "recA", "recB"},
		Mechanisms: []string{"Base"},
		Workloads: []WorkloadSpec{
			{Name: "loada", Profile: profA},
			{Name: "loadb", Profile: profB},
			{Name: "recA", Trace: recordWorkload(t, dir, "gzip", 42, 500)},
			{Name: "recB", Trace: recordWorkload(t, dir, "mcf", 42, 500)},
		},
	}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]string{}
	for _, c := range plan.Cells {
		if prev, ok := seen[c.Key]; ok {
			t.Fatalf("cells %s and %s share fingerprint %s", prev, c.Bench(), c.Key)
		}
		seen[c.Key] = c.Bench()
	}

	// Renaming a workload must keep its fingerprint (identity is
	// content)...
	renamed := spec
	renamed.Workloads = append([]WorkloadSpec(nil), spec.Workloads...)
	renamed.Workloads[2] = WorkloadSpec{Name: "recA2", Trace: renamed.Workloads[2].Trace}
	renamed.Benchmarks = []string{"recA2"}
	rplan, err := NewPlan(renamed)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seen[rplan.Cells[0].Key]; !ok {
		t.Fatal("renaming a trace workload changed its fingerprint")
	}

	// ...while editing profile content must change it.
	edited := spec
	edited.Workloads = append([]WorkloadSpec(nil), spec.Workloads...)
	editedProf := customProfile("loada")
	editedProf.Mispredict = 0.2
	edited.Workloads[0] = WorkloadSpec{Name: "loada", Profile: editedProf}
	edited.Benchmarks = []string{"loada"}
	eplan, err := NewPlan(edited)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := seen[eplan.Cells[0].Key]; ok {
		t.Fatal("edited profile kept its fingerprint")
	}
}

// TestTraceWorkloadRejectsValueMechanisms: the plan refuses trace ×
// value-inspecting mechanism up front, instead of failing the cells
// at run time (which would also mute scenario aggregation).
func TestTraceWorkloadRejectsValueMechanisms(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordWorkload(t, dir, "gzip", 42, 200)
	spec := Spec{
		Benchmarks: []string{"rec"},
		Mechanisms: []string{"Base", "CDP"},
		Workloads:  []WorkloadSpec{{Name: "rec", Trace: tracePath}},
	}
	if err := spec.Normalize(); err == nil || !strings.Contains(err.Error(), "memory values") {
		t.Fatalf("trace x CDP must be rejected at plan time, got %v", err)
	}
	// An inline profile supplies a value oracle: same mechanisms pass.
	ok := Spec{
		Benchmarks: []string{"mine"},
		Mechanisms: []string{"Base", "CDP"},
		Workloads:  []WorkloadSpec{{Name: "mine", Profile: customProfile("mine")}},
	}
	if err := ok.Normalize(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceWorkloadSeedAxisCollapses: seeds cannot replicate fixed
// bytes, so a trace bench emits one cell whose key ignores the seed.
func TestTraceWorkloadSeedAxisCollapses(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordWorkload(t, dir, "gzip", 42, 200)
	spec := Spec{
		Benchmarks: []string{"gzip", "rec"},
		Mechanisms: []string{"Base"},
		Seeds:      []uint64{1, 2, 3},
		Workloads:  []WorkloadSpec{{Name: "rec", Trace: tracePath}},
	}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var gzipCells, recCells []Cell
	for _, c := range plan.Cells {
		if c.Bench() == "rec" {
			recCells = append(recCells, c)
		} else {
			gzipCells = append(gzipCells, c)
		}
	}
	if len(gzipCells) != 3 || len(recCells) != 1 {
		t.Fatalf("got %d gzip and %d rec cells, want 3 and 1", len(gzipCells), len(recCells))
	}

	// The single trace cell's key is seed-independent: a different
	// seed list still hits the same cache entries.
	spec2 := spec
	spec2.Workloads = append([]WorkloadSpec(nil), spec.Workloads...)
	spec2.Seeds = []uint64{9}
	plan2, err := NewPlan(spec2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan2.Cells {
		if c.Bench() == "rec" && c.Key != recCells[0].Key {
			t.Fatalf("trace cell key depends on seed: %s vs %s", c.Key, recCells[0].Key)
		}
	}
}

// TestCampaignEndToEndCustomWorkloads runs a spec mixing an inline
// profile and a recorded trace through Execute twice: simulated
// first, fully cache-served second, and re-simulated for the trace
// cells after the trace content changes.
func TestCampaignEndToEndCustomWorkloads(t *testing.T) {
	dir := t.TempDir()
	tracePath := recordWorkload(t, dir, "gzip", 42, 4_000)
	warm := uint64(500)
	spec := Spec{
		Name:       "custom-e2e",
		Benchmarks: []string{"mine", "recorded"},
		Mechanisms: []string{"Base", "SP"},
		Insts:      []uint64{2_000},
		Warmup:     &warm,
		Workloads: []WorkloadSpec{
			{Name: "mine", Profile: customProfile("mine")},
			{Name: "recorded", Trace: tracePath},
		},
	}
	cacheDir := filepath.Join(dir, "cache")
	cfg := RunConfig{Workers: 2, CacheDir: cacheDir}

	sum, err := Execute(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.Errors > 0 || sum.Sched.Simulated != 4 {
		t.Fatalf("first run: %+v", sum.Sched)
	}

	sum2, err := Execute(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Sched.CacheHits != 4 || sum2.Sched.Simulated != 0 {
		t.Fatalf("second run must be all cache hits: %+v", sum2.Sched)
	}

	// Re-record the trace with different content: its two cells (and
	// only those) must re-simulate.
	recordWorkload(t, dir, "gzip", 7, 4_000)
	sum3, err := Execute(context.Background(), spec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sum3.Sched.CacheHits != 2 || sum3.Sched.Simulated != 2 {
		t.Fatalf("after trace change: %+v", sum3.Sched)
	}
}

func TestRecordCustomAndUnknown(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Workloads: []WorkloadSpec{{Name: "mine", Profile: customProfile("mine")}}}

	path := filepath.Join(dir, "mine.mlt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, rerr := Record(spec, "mine", 1, 300, f)
	if cerr := f.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil || n != 300 {
		t.Fatalf("record custom: n=%d err=%v", n, rerr)
	}
	// The recording replays through a trace workload of another spec.
	replay := Spec{
		Benchmarks: []string{"rec"},
		Mechanisms: []string{"Base"},
		Workloads:  []WorkloadSpec{{Name: "rec", Trace: path}},
	}
	if err := replay.Normalize(); err != nil {
		t.Fatal(err)
	}

	// Bootstrap: recording a spec's inline profile must work even
	// while the same spec's trace workload file does not exist yet.
	boot := Spec{Workloads: []WorkloadSpec{
		{Name: "mine", Profile: customProfile("mine")},
		{Name: "later", Trace: filepath.Join(dir, "not-recorded-yet.mlt")},
	}}
	bf, err := os.Create(filepath.Join(dir, "boot.mlt"))
	if err != nil {
		t.Fatal(err)
	}
	n2, rerr2 := Record(boot, "mine", 1, 100, bf)
	if cerr := bf.Close(); rerr2 == nil {
		rerr2 = cerr
	}
	if rerr2 != nil || n2 != 100 {
		t.Fatalf("bootstrap record: n=%d err=%v", n2, rerr2)
	}

	if _, err := Record(Spec{}, "nosuch", 1, 10, os.NewFile(0, "")); err == nil ||
		!strings.Contains(err.Error(), "unknown workload") {
		t.Fatalf("unknown workload: %v", err)
	}
	if _, err := Record(Spec{}, "gzip", 1, 0, nil); err == nil ||
		!strings.Contains(err.Error(), "zero instruction") {
		t.Fatalf("zero insts: %v", err)
	}
}

package campaign

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("deadbeef"); ok {
		t.Fatal("empty cache must miss")
	}
	res := CellResult{Key: "deadbeef", Bench: "gzip", Mechanism: "GHB", Seed: 7, IPC: 1.25}
	if err := c.Put(res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("deadbeef")
	if !ok || got != res {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, res)
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "deadbeef" {
		t.Fatalf("keys: %v %v", keys, err)
	}
}

func TestDiskCacheRejectsBadEntries(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(CellResult{Key: ""}); err == nil {
		t.Error("keyless entry must be rejected")
	}
	if err := c.Put(CellResult{Key: "k", Err: "boom"}); err == nil {
		t.Error("failed cell must not be cached")
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "abc.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("abc"); ok {
		t.Error("corrupt entry must read as a miss")
	}
	// An entry whose body does not match its filename is also a miss.
	if err := os.WriteFile(filepath.Join(dir, "def.json"), []byte(`{"key":"zzz"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("def"); ok {
		t.Error("mismatched key must read as a miss")
	}
}

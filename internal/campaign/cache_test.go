package campaign

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("deadbeef"); ok {
		t.Fatal("empty cache must miss")
	}
	res := CellResult{Key: "deadbeef", Bench: "gzip", Mechanism: "GHB", Seed: 7, IPC: 1.25}
	if err := c.Put(res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("deadbeef")
	if !ok || !reflect.DeepEqual(got, res) {
		t.Fatalf("got %+v ok=%v, want %+v", got, ok, res)
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "deadbeef" {
		t.Fatalf("keys: %v %v", keys, err)
	}
}

func TestDiskCacheRejectsBadEntries(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(CellResult{Key: ""}); err == nil {
		t.Error("keyless entry must be rejected")
	}
	if err := c.Put(CellResult{Key: "k", Err: "boom"}); err == nil {
		t.Error("failed cell must not be cached")
	}
}

func TestPruneByAge(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"old1", "old2", "fresh"} {
		if err := c.Put(CellResult{Key: k, Bench: "gzip", Mechanism: "Base"}); err != nil {
			t.Fatal(err)
		}
	}
	past := time.Now().Add(-48 * time.Hour)
	for _, k := range []string{"old1", "old2"} {
		if err := os.Chtimes(filepath.Join(dir, k+".json"), past, past); err != nil {
			t.Fatal(err)
		}
	}

	// Dry run must delete nothing.
	res, err := Prune(c, PruneOptions{OlderThan: 24 * time.Hour, DryRun: true})
	if err != nil || len(res.Removed) != 2 || res.Kept != 1 {
		t.Fatalf("dry run: %+v err=%v", res, err)
	}
	if keys, _ := c.Keys(); len(keys) != 3 {
		t.Fatalf("dry run deleted entries: %v", keys)
	}

	res, err = Prune(c, PruneOptions{OlderThan: 24 * time.Hour})
	if err != nil || len(res.Removed) != 2 || res.Kept != 1 {
		t.Fatalf("prune: %+v err=%v", res, err)
	}
	keys, _ := c.Keys()
	if len(keys) != 1 || keys[0] != "fresh" {
		t.Fatalf("wrong survivors: %v", keys)
	}
}

func TestPruneByPlanReachability(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(Spec{
		Benchmarks: []string{"gzip"},
		Mechanisms: []string{"Base", "SP"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range plan.Cells {
		if err := c.Put(CellResult{Key: cell.Key, Bench: cell.Bench(), Mechanism: cell.Mech()}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Put(CellResult{Key: "orphan", Bench: "mcf", Mechanism: "VC"}); err != nil {
		t.Fatal(err)
	}

	res, err := Prune(c, PruneOptions{Keep: plan})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Removed) != 1 || res.Removed[0].Key != "orphan" || res.Kept != len(plan.Cells) {
		t.Fatalf("prune: %+v", res)
	}
}

func TestPruneNeedsCriteria(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Prune(c, PruneOptions{}); err == nil {
		t.Fatal("criterion-less prune must refuse (it would delete nothing or everything)")
	}
	if _, err := Prune(c, PruneOptions{OlderThan: -time.Hour}); err == nil {
		t.Fatal("negative age must be rejected, not silently match nothing")
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "abc.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("abc"); ok {
		t.Error("corrupt entry must read as a miss")
	}
	// An entry whose body does not match its filename is also a miss.
	if err := os.WriteFile(filepath.Join(dir, "def.json"), []byte(`{"key":"zzz"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("def"); ok {
		t.Error("mismatched key must read as a miss")
	}
}

package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"microlib/internal/runner"
	"microlib/internal/stats"
)

// RankEntry is one mechanism's standing within a scenario.
type RankEntry struct {
	Rank int    `json:"rank"`
	Mech string `json:"mech"`
	// MeanSpeedup is the mean over benchmarks of per-benchmark
	// speedup vs Base; 0 when the scenario has no baseline column.
	MeanSpeedup float64 `json:"mean_speedup,omitempty"`
	MeanIPC     float64 `json:"mean_ipc"`
}

// Scenario aggregates the cells sharing one point on every scenario
// axis (hierarchy variant, memory model, core, queue override,
// parameter set, selection policy, budgets): a benchmark × mechanism
// grid of mean IPC over seeds, the per-cell 95% confidence
// half-widths, the speedup grid vs Base when a baseline column
// exists, and the mechanism ranking.
type Scenario struct {
	Label string `json:"label"`
	// Values are the scenario's coordinates on the plan's scenario
	// axes, in axis order (the Label is their rendered form).
	Values []AxisValue `json:"values,omitempty"`
	// Seeds is the replication factor (number of seeds swept).
	Seeds int         `json:"seeds"`
	Mean  *stats.Grid `json:"mean_ipc"`
	CI    *stats.Grid `json:"ci95"`
	// Counts holds the number of measurements behind each cell; 0
	// marks a cell with no data (its Mean/CI entries are meaningless).
	Counts *stats.Grid `json:"counts"`
	// Speedup and Ranking are only computed for complete scenarios
	// (no missing or failed cells) — a partial grid would silently
	// skew the mechanism means.
	Speedup *stats.Grid `json:"speedup,omitempty"`
	Ranking []RankEntry `json:"ranking,omitempty"`
	// Missing counts cells with no result (campaign canceled before
	// they ran); Failed lists cells whose simulation errored.
	Missing int      `json:"missing,omitempty"`
	Failed  []string `json:"failed,omitempty"`
	// Refusals sums cache-refusal pressure over the scenario's
	// completed cells (zero for results cached before the counters
	// existed).
	Refusals RefusalStats `json:"refusals,omitzero"`
}

// Complete reports whether every cell of the scenario has a
// measurement.
func (sc *Scenario) Complete() bool { return sc.Missing == 0 && len(sc.Failed) == 0 }

// Value returns the scenario's coordinate on a named axis ("" when
// the plan has no such axis).
func (sc *Scenario) Value(axis string) string {
	for _, v := range sc.Values {
		if v.Axis == axis {
			return v.Value
		}
	}
	return ""
}

// Summary is the aggregated outcome of a campaign run.
type Summary struct {
	Name            string         `json:"name"`
	PlanFingerprint string         `json:"plan_fingerprint"`
	Spec            Spec           `json:"spec"`
	Scenarios       []Scenario     `json:"scenarios"`
	Sched           SchedulerStats `json:"scheduler"`
}

// Find returns the first scenario whose coordinates include
// axis=value, or nil when no scenario matches. Figure formatters use
// it to pick the arm of a study by the axis the spec sweeps.
func (s *Summary) Find(axis, value string) *Scenario {
	for i := range s.Scenarios {
		if s.Scenarios[i].Value(axis) == value {
			return &s.Scenarios[i]
		}
	}
	return nil
}

// Aggregate folds per-cell results into per-scenario grids and
// rankings. Cells absent from results (canceled) or failed are
// excluded from the statistics and reported per scenario.
func Aggregate(p *Plan, results map[string]CellResult, sched SchedulerStats) *Summary {
	sum := &Summary{
		Name:            p.Spec.Name,
		PlanFingerprint: p.Fingerprint(),
		Spec:            p.Spec,
		Sched:           sched,
	}

	byScenario := map[string][]Cell{}
	for _, c := range p.Cells {
		byScenario[c.Scenario()] = append(byScenario[c.Scenario()], c)
	}

	for _, label := range p.Scenarios() {
		cells := byScenario[label]
		sc := Scenario{
			Label:  label,
			Values: cells[0].scenarioValues(),
			Seeds:  len(p.Spec.Seeds),
			Mean:   stats.NewGrid(p.Spec.Benchmarks, p.Spec.Mechanisms),
			CI:     stats.NewGrid(p.Spec.Benchmarks, p.Spec.Mechanisms),
			Counts: stats.NewGrid(p.Spec.Benchmarks, p.Spec.Mechanisms),
		}

		samples := map[[2]string][]float64{}
		for _, c := range cells {
			res, ok := results[c.Key]
			switch {
			case !ok:
				sc.Missing++
			case res.Err != "":
				sc.Failed = append(sc.Failed, fmt.Sprintf("%s/%s seed=%d: %s", c.Bench(), c.Mech(), c.Seed(), res.Err))
			default:
				k := [2]string{c.Bench(), c.Mech()}
				samples[k] = append(samples[k], res.IPC)
				sc.Refusals.add(res.Refusals)
			}
		}
		//ml:commutative -- each key writes its own pre-dimensioned grid cell; no cross-key state
		for k, xs := range samples {
			s := stats.Summarize(xs)
			sc.Mean.Set(k[0], k[1], s.Mean)
			sc.CI.Set(k[0], k[1], s.CI95)
			sc.Counts.Set(k[0], k[1], float64(s.N))
		}
		sort.Strings(sc.Failed)

		if sc.Complete() {
			if sc.Mean.MechIndex(runner.BaseName) >= 0 {
				sc.Speedup = sc.Mean.Speedups(runner.BaseName)
			}
			sc.Ranking = ranking(sc.Mean, sc.Speedup)
		}
		sum.Scenarios = append(sum.Scenarios, sc)
	}
	return sum
}

// ranking orders mechanisms by mean speedup when a baseline exists,
// by mean IPC otherwise. The baseline itself is not ranked.
func ranking(mean, speedup *stats.Grid) []RankEntry {
	meanIPC := mean.MeanPerMech()
	var meanSp []float64
	if speedup != nil {
		meanSp = speedup.MeanPerMech()
	}
	var entries []RankEntry
	for m, name := range mean.Mechs {
		if speedup != nil && name == runner.BaseName {
			continue
		}
		e := RankEntry{Mech: name, MeanIPC: meanIPC[m]}
		if meanSp != nil {
			e.MeanSpeedup = meanSp[m]
		}
		entries = append(entries, e)
	}
	sort.SliceStable(entries, func(a, b int) bool {
		if speedup != nil {
			return entries[a].MeanSpeedup > entries[b].MeanSpeedup
		}
		return entries[a].MeanIPC > entries[b].MeanIPC
	})
	for i := range entries {
		entries[i].Rank = i + 1
	}
	return entries
}

// Text renders the summary as the mlcampaign report: per scenario a
// mean-IPC grid, confidence half-widths when seeds replicate, the
// speedup ranking, and the scheduler counters.
func (s *Summary) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "campaign %q  plan=%s\n", s.Name, s.PlanFingerprint)
	fmt.Fprintf(&sb, "cells: total=%d completed=%d cache-hits=%d simulated=%d errors=%d\n",
		s.Sched.Total, s.Sched.Completed, s.Sched.CacheHits, s.Sched.Simulated, s.Sched.Errors)
	if s.Sched.CheckpointHits > 0 || s.Sched.PrefixRuns > 0 {
		fmt.Fprintf(&sb, "warm:  prefix-runs=%d checkpoint-hits=%d checkpoint-misses=%d\n",
			s.Sched.PrefixRuns, s.Sched.CheckpointHits, s.Sched.CheckpointMisses)
	}
	for _, sc := range s.Scenarios {
		fmt.Fprintf(&sb, "\n== scenario %s (seeds=%d) ==\n", sc.Label, sc.Seeds)
		if sc.Missing > 0 {
			fmt.Fprintf(&sb, "!! %d cells missing (campaign interrupted; rerun with the same -cache to resume)\n", sc.Missing)
		}
		for _, f := range sc.Failed {
			fmt.Fprintf(&sb, "!! failed: %s\n", f)
		}
		if r := sc.Refusals; r.Total() > 0 {
			fmt.Fprintf(&sb, "refusal pressure: port=%d stall=%d mshr=%d (core retries: port=%d stall=%d mshr=%d)\n",
				r.RejectPort, r.RejectStall, r.RejectMSHR, r.RetryPort, r.RetryStall, r.RetryMSHR)
		}
		sb.WriteString("mean IPC\n")
		sb.WriteString(formatMasked(sc.Mean, sc.Counts, 4))
		if sc.Seeds > 1 {
			sb.WriteString("95% confidence half-width\n")
			sb.WriteString(formatMasked(sc.CI, sc.Counts, 4))
		}
		switch {
		case !sc.Complete():
			fmt.Fprintf(&sb, "ranking suppressed: %d cells missing, %d failed (a partial grid would skew the means)\n",
				sc.Missing, len(sc.Failed))
		case sc.Speedup != nil:
			sb.WriteString("ranking (mean speedup vs Base)\n")
			for _, e := range sc.Ranking {
				fmt.Fprintf(&sb, "%2d. %-8s %.4f (IPC %.4f)\n", e.Rank, e.Mech, e.MeanSpeedup, e.MeanIPC)
			}
		default:
			sb.WriteString("ranking (mean IPC; no Base column for speedups)\n")
			for _, e := range sc.Ranking {
				fmt.Fprintf(&sb, "%2d. %-8s %.4f\n", e.Rank, e.Mech, e.MeanIPC)
			}
		}
	}
	return sb.String()
}

// formatMasked renders a grid like stats.Grid.FormatTable but prints
// "-" for cells without any measurement instead of a fake 0.
func formatMasked(g, counts *stats.Grid, prec int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s", "bench")
	for _, m := range g.Mechs {
		fmt.Fprintf(&sb, " %8s", m)
	}
	sb.WriteByte('\n')
	for b, row := range g.Values {
		fmt.Fprintf(&sb, "%-10s", g.Benchmarks[b])
		for m, v := range row {
			if counts.Values[b][m] == 0 {
				fmt.Fprintf(&sb, " %8s", "-")
			} else {
				fmt.Fprintf(&sb, " %8.*f", prec, v)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV renders one row per scenario cell:
// scenario,bench,mech,n,mean_ipc,ci95,speedup. Cells without any
// measurement (interrupted campaign) leave the numeric columns
// empty rather than printing a fake 0.
func (s *Summary) CSV() string {
	var sb strings.Builder
	sb.WriteString("scenario,bench,mech,n,mean_ipc,ci95,speedup\n")
	for _, sc := range s.Scenarios {
		for bi, bench := range sc.Mean.Benchmarks {
			for mi, mech := range sc.Mean.Mechs {
				n := int(sc.Counts.Values[bi][mi])
				if n == 0 {
					fmt.Fprintf(&sb, "%q,%s,%s,0,,,\n", sc.Label, bench, mech)
					continue
				}
				sp := ""
				if sc.Speedup != nil {
					sp = fmt.Sprintf("%.6f", sc.Speedup.Values[bi][mi])
				}
				fmt.Fprintf(&sb, "%q,%s,%s,%d,%.6f,%.6f,%s\n",
					sc.Label, bench, mech, n,
					sc.Mean.Values[bi][mi], sc.CI.Values[bi][mi], sp)
			}
		}
	}
	return sb.String()
}

// JSON renders the summary (spec, grids, rankings, scheduler
// counters) as indented JSON.
func (s *Summary) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

package campaign

import (
	"sync"
	"time"
)

// LiveStats is the mid-run view of a campaign: the scheduler updates
// it from the worker pool, and a metrics endpoint (or the progress
// line) snapshots it concurrently. The zero value is ready to use.
type LiveStats struct {
	mu        sync.Mutex
	started   time.Time
	total     int
	workers   int
	running   int
	done      int
	cacheHits int
	simulated int
	errors    int
	retries   int
	degraded  int
	stalls    int
	insts     uint64
	// simWall accumulates per-cell simulation wall time across all
	// workers; simWall / (workers * elapsed) is pool utilization.
	simWall time.Duration
}

// LiveSnapshot is one consistent reading of a running campaign.
type LiveSnapshot struct {
	Total     int           `json:"total"`
	Done      int           `json:"done"`
	Running   int           `json:"running"`
	Workers   int           `json:"workers"`
	CacheHits int           `json:"cache_hits"`
	Simulated int           `json:"simulated"`
	Errors    int           `json:"errors"`
	Retries   int           `json:"retries"`
	Degraded  int           `json:"degraded"`
	Stalls    int           `json:"stalls"`
	Insts     uint64        `json:"insts"`
	Elapsed   time.Duration `json:"elapsed_ns"`
	// CellsPerSec is overall completion throughput since the
	// scheduler started (cached and simulated cells alike).
	CellsPerSec float64 `json:"cells_per_sec"`
	// InstsPerSec is aggregate simulation speed across the pool.
	InstsPerSec float64 `json:"insts_per_sec"`
	// Utilization is the fraction of worker capacity spent inside
	// simulations so far, in [0,1]; low values mean the campaign is
	// cache- or scheduling-bound, not simulation-bound.
	Utilization float64 `json:"utilization"`
	// ETA extrapolates the remaining cells at the current
	// throughput; zero until at least one cell has finished.
	ETA time.Duration `json:"eta_ns"`
}

func (l *LiveStats) begin(total, workers int) {
	l.mu.Lock()
	l.started = time.Now()
	l.total = total
	l.workers = workers
	l.mu.Unlock()
}

func (l *LiveStats) cellRunning(delta int) {
	l.mu.Lock()
	l.running += delta
	l.mu.Unlock()
}

func (l *LiveStats) cellFinished(fromCache bool, err error, wall time.Duration, insts uint64) {
	l.mu.Lock()
	l.done++
	switch {
	case err != nil:
		l.errors++
	case fromCache:
		l.cacheHits++
	default:
		l.simulated++
	}
	l.insts += insts
	l.simWall += wall
	l.mu.Unlock()
}

func (l *LiveStats) noteRetry() {
	l.mu.Lock()
	l.retries++
	l.mu.Unlock()
}

func (l *LiveStats) noteDegraded() {
	l.mu.Lock()
	l.degraded++
	l.mu.Unlock()
}

func (l *LiveStats) noteStall() {
	l.mu.Lock()
	l.stalls++
	l.mu.Unlock()
}

// Snapshot returns a consistent reading with the derived rates filled
// in. Safe to call at any time from any goroutine.
func (l *LiveStats) Snapshot() LiveSnapshot {
	l.mu.Lock()
	s := LiveSnapshot{
		Total:     l.total,
		Done:      l.done,
		Running:   l.running,
		Workers:   l.workers,
		CacheHits: l.cacheHits,
		Simulated: l.simulated,
		Errors:    l.errors,
		Retries:   l.retries,
		Degraded:  l.degraded,
		Stalls:    l.stalls,
		Insts:     l.insts,
	}
	started, simWall := l.started, l.simWall
	l.mu.Unlock()

	if started.IsZero() {
		return s
	}
	s.Elapsed = time.Since(started)
	sec := s.Elapsed.Seconds()
	if sec > 0 {
		s.CellsPerSec = float64(s.Done) / sec
		s.InstsPerSec = float64(s.Insts) / sec
		if s.Workers > 0 {
			s.Utilization = simWall.Seconds() / (float64(s.Workers) * sec)
			if s.Utilization > 1 {
				s.Utilization = 1
			}
		}
	}
	if s.Done > 0 && s.Done < s.Total && s.CellsPerSec > 0 {
		s.ETA = time.Duration(float64(s.Total-s.Done) / s.CellsPerSec * float64(time.Second))
	}
	return s
}

package campaign

import (
	"strings"
	"testing"

	"microlib/internal/core"
	"microlib/internal/hier"
	"microlib/internal/runner"
	"microlib/internal/workload"
)

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"x","benchmark":["gzip"]}`))
	if err == nil || !strings.Contains(err.Error(), "benchmark") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	var s Spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != len(workload.Names()) {
		t.Errorf("benchmarks default: got %d, want all %d", len(s.Benchmarks), len(workload.Names()))
	}
	if want := 1 + len(core.Names()); len(s.Mechanisms) != want {
		t.Errorf("mechanisms default: got %d, want %d", len(s.Mechanisms), want)
	}
	if s.Mechanisms[0] != runner.BaseName {
		t.Errorf("first default mechanism must be %s", runner.BaseName)
	}
	if len(s.Memories) != 1 || s.Memories[0] != MemNameSDRAM {
		t.Errorf("memories default: %v", s.Memories)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != DefaultSeed {
		t.Errorf("seeds default: %v", s.Seeds)
	}
	if len(s.Warmups) != 1 || s.Warmups[0] != DefaultWarmup {
		t.Errorf("warmups default: %v", s.Warmups)
	}
	if len(s.Hiers) != 1 || s.Hiers[0] != hier.VariantDefault {
		t.Errorf("hiers default: %v", s.Hiers)
	}
	if len(s.ParamSets) != 1 || s.ParamSets[0].Name != DefaultParamSet {
		t.Errorf("paramsets default: %v", s.ParamSets)
	}
	if len(s.Selections) != 1 || s.Selections[0] != SelSkip {
		t.Errorf("selections default: %v", s.Selections)
	}
}

func TestNormalizeValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bench", Spec{Benchmarks: []string{"nosuch"}}, "unknown benchmark"},
		{"mech", Spec{Mechanisms: []string{"NOPE"}}, "unknown mechanism"},
		{"memory", Spec{Memories: []string{"dram5"}}, "unknown memory"},
		{"core", Spec{Cores: []string{"vliw"}}, "unknown core"},
		{"queue", Spec{Queues: []int{-1}}, "negative queue"},
		{"insts", Spec{Insts: []uint64{0}}, "zero instruction budget"},
		{"params", Spec{Params: map[string]map[string]int{"NOPE": {"x": 1}}}, "unknown mechanism"},
		{"params-base", Spec{Params: map[string]map[string]int{"Base": {"x": 1}}}, "baseline"},
		{"params-unswept", Spec{
			Mechanisms: []string{"Base", "TCP"},
			Params:     map[string]map[string]int{"TP": {"queue": 1}},
		}, "not in the mechanisms axis"},
		{"hier", Spec{Hiers: []string{"perfect"}}, "unknown hier"},
		{"selection", Spec{Selections: []string{"warmest"}}, "unknown selection"},
		{"selection-offset", Spec{Selections: []string{"skip:many"}}, "not a number"},
		{"paramset-name", Spec{ParamSets: []ParamSetSpec{{}}}, "needs a name"},
		{"paramset-params", Spec{ParamSets: []ParamSetSpec{{Name: "x", Params: map[string]map[string]int{"NOPE": {"x": 1}}}}}, "unknown mechanism"},
		// Duplicate-value errors name the axis, so the typo is findable.
		{"dup", Spec{Benchmarks: []string{"gzip", "gzip"}}, "duplicate benchmark axis value"},
		{"dup-seed", Spec{Seeds: []uint64{42, 42}}, "duplicate seed axis value"},
		{"dup-insts", Spec{Insts: []uint64{5000, 5000}}, "duplicate insts axis value"},
		{"dup-queue", Spec{Queues: []int{1, 1}}, "duplicate queue axis value"},
		{"dup-warmup", Spec{Warmups: []uint64{9, 9}}, "duplicate warmup axis value"},
		{"dup-paramset", Spec{ParamSets: []ParamSetSpec{{Name: "a"}, {Name: "a"}}}, "duplicate paramset axis value"},
		{"dup-selection", Spec{Selections: []string{"skip", "skip"}}, "duplicate selection axis value"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	src := `{
		"name": "queue-study",
		"benchmarks": ["gzip", "mcf"],
		"mechanisms": ["Base", "TCP"],
		"memories": ["sdram", "const70"],
		"queues": [0, 1],
		"insts": [5000],
		"warmup": 0,
		"seeds": [1, 2, 3],
		"params": {"TCP": {"queue": 128}}
	}`
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Warmups) != 1 || s.Warmups[0] != 0 {
		t.Errorf("explicit zero warmup must survive, got %v", s.Warmups)
	}
	if len(s.Seeds) != 3 || s.Params["TCP"]["queue"] != 128 {
		t.Errorf("lost fields: %+v", s)
	}
}

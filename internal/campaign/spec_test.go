package campaign

import (
	"strings"
	"testing"

	"microlib/internal/core"
	"microlib/internal/runner"
	"microlib/internal/workload"
)

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec([]byte(`{"name":"x","benchmark":["gzip"]}`))
	if err == nil || !strings.Contains(err.Error(), "benchmark") {
		t.Fatalf("want unknown-field error, got %v", err)
	}
}

func TestNormalizeDefaults(t *testing.T) {
	var s Spec
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if len(s.Benchmarks) != len(workload.Names()) {
		t.Errorf("benchmarks default: got %d, want all %d", len(s.Benchmarks), len(workload.Names()))
	}
	if want := 1 + len(core.Names()); len(s.Mechanisms) != want {
		t.Errorf("mechanisms default: got %d, want %d", len(s.Mechanisms), want)
	}
	if s.Mechanisms[0] != runner.BaseName {
		t.Errorf("first default mechanism must be %s", runner.BaseName)
	}
	if len(s.Memories) != 1 || s.Memories[0] != MemNameSDRAM {
		t.Errorf("memories default: %v", s.Memories)
	}
	if len(s.Seeds) != 1 || s.Seeds[0] != DefaultSeed {
		t.Errorf("seeds default: %v", s.Seeds)
	}
	if s.Warmup == nil || *s.Warmup != DefaultWarmup {
		t.Errorf("warmup default: %v", s.Warmup)
	}
}

func TestNormalizeValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"bench", Spec{Benchmarks: []string{"nosuch"}}, "unknown benchmark"},
		{"mech", Spec{Mechanisms: []string{"NOPE"}}, "unknown mechanism"},
		{"memory", Spec{Memories: []string{"dram5"}}, "unknown memory"},
		{"core", Spec{Cores: []string{"vliw"}}, "unknown core"},
		{"queue", Spec{Queues: []int{-1}}, "negative queue"},
		{"insts", Spec{Insts: []uint64{0}}, "zero instruction budget"},
		{"params", Spec{Params: map[string]map[string]int{"NOPE": {"x": 1}}}, "unknown mechanism"},
		{"params-base", Spec{Params: map[string]map[string]int{"Base": {"x": 1}}}, "baseline"},
		{"params-unswept", Spec{
			Mechanisms: []string{"Base", "TCP"},
			Params:     map[string]map[string]int{"TP": {"queue": 1}},
		}, "not in the mechanisms axis"},
		{"dup", Spec{Benchmarks: []string{"gzip", "gzip"}}, "duplicate"},
		{"dup-seed", Spec{Seeds: []uint64{42, 42}}, "duplicate"},
		{"dup-insts", Spec{Insts: []uint64{5000, 5000}}, "duplicate"},
		{"dup-queue", Spec{Queues: []int{1, 1}}, "duplicate"},
	}
	for _, tc := range cases {
		err := tc.spec.Normalize()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	src := `{
		"name": "queue-study",
		"benchmarks": ["gzip", "mcf"],
		"mechanisms": ["Base", "TCP"],
		"memories": ["sdram", "const70"],
		"queues": [0, 1],
		"insts": [5000],
		"warmup": 0,
		"seeds": [1, 2, 3],
		"params": {"TCP": {"queue": 128}}
	}`
	s, err := ParseSpec([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Normalize(); err != nil {
		t.Fatal(err)
	}
	if *s.Warmup != 0 {
		t.Errorf("explicit zero warmup must survive, got %d", *s.Warmup)
	}
	if len(s.Seeds) != 3 || s.Params["TCP"]["queue"] != 128 {
		t.Errorf("lost fields: %+v", s)
	}
}

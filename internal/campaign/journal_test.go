package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"microlib/internal/fault"
	"microlib/internal/telemetry"
)

// readJournalStrict parses the journal and additionally insists every
// line is valid JSON on its own — the well-formed-JSONL contract a
// crashed campaign relies on.
func readJournalStrict(t *testing.T, data []byte) []JournalEvent {
	t.Helper()
	for i, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		if !json.Valid(line) {
			t.Fatalf("journal line %d is not valid JSON: %q", i+1, line)
		}
	}
	evs, err := ReadJournal(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return evs
}

func TestJournalCompleteRun(t *testing.T) {
	var buf bytes.Buffer
	live := &LiveStats{}
	sum, err := Execute(context.Background(), tinySpec(), RunConfig{
		Workers: 2,
		Journal: &buf,
		Live:    live,
	})
	if err != nil {
		t.Fatal(err)
	}

	evs := readJournalStrict(t, buf.Bytes())
	if evs[0].Ev != EvStart || evs[len(evs)-1].Ev != EvEnd {
		t.Fatalf("journal must be start...end, got %s...%s", evs[0].Ev, evs[len(evs)-1].Ev)
	}
	if evs[0].Campaign != "tiny" || evs[0].Cells != 8 || evs[0].Workers != 2 || evs[0].Plan == "" {
		t.Fatalf("start header: %+v", evs[0])
	}
	var starts, dones int
	for _, e := range evs {
		switch e.Ev {
		case EvCellStart:
			starts++
		case EvCellDone:
			dones++
			if e.Source != "sim" || e.Key == "" || e.Bench == "" || e.Mech == "" {
				t.Fatalf("cell_done: %+v", e)
			}
			if e.WallMS <= 0 || e.Insts == 0 || e.InstsPerSec <= 0 {
				t.Fatalf("simulated cell must carry timing: %+v", e)
			}
		}
	}
	if starts != 8 || dones != 8 {
		t.Fatalf("starts=%d dones=%d, want 8/8", starts, dones)
	}
	end := evs[len(evs)-1]
	if end.Aborted || end.Completed != 8 || end.Simulated != 8 || end.WallS <= 0 {
		t.Fatalf("end footer: %+v", end)
	}

	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.Aborted || st.Done != 8 || st.Simulated != 8 || st.Errors != 0 {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Slowest) == 0 || len(st.Slowest) > 5 {
		t.Fatalf("slowest list: %d entries", len(st.Slowest))
	}
	for i := 1; i < len(st.Slowest); i++ {
		if st.Slowest[i].WallMS > st.Slowest[i-1].WallMS {
			t.Fatal("slowest cells must be sorted descending")
		}
	}
	text := st.Text()
	for _, want := range []string{"tiny", "8/8 done", "8 simulated", "completed in", "slowest cells"} {
		if !strings.Contains(text, want) {
			t.Fatalf("status text missing %q:\n%s", want, text)
		}
	}

	// The live stats agree with the journal.
	s := live.Snapshot()
	if s.Done != 8 || s.Simulated != 8 || s.Running != 0 || s.Insts == 0 || s.Utilization <= 0 {
		t.Fatalf("live snapshot: %+v", s)
	}
	if sum.Sched.Simulated != 8 {
		t.Fatalf("sched stats: %+v", sum.Sched)
	}
}

// The cancellation satellite: a campaign killed mid-run must leave a
// well-formed journal whose final event records the abort, and the
// scheduler must not leak worker goroutines.
func TestJournalCancellationRecordsAbort(t *testing.T) {
	before := runtime.NumGoroutine()

	dir := filepath.Join(t.TempDir(), "cache")
	spec := tinySpec()
	spec.Seeds = []uint64{1, 2, 3, 4} // 16 cells
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var buf bytes.Buffer
	_, err := Execute(ctx, spec, RunConfig{
		Workers:  2,
		CacheDir: dir,
		Journal:  &buf,
		OnProgress: func(p Progress) {
			if p.Done >= 3 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}

	evs := readJournalStrict(t, buf.Bytes())
	end := evs[len(evs)-1]
	if end.Ev != EvEnd {
		t.Fatalf("final event must be the end footer, got %+v", end)
	}
	if !end.Aborted || !strings.Contains(end.AbortReason, "context canceled") {
		t.Fatalf("end must record the abort: %+v", end)
	}
	if end.Completed >= end.Cells {
		t.Fatalf("aborted run must be incomplete: %+v", end)
	}

	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Aborted || !st.Complete {
		t.Fatalf("status must mark the run aborted-but-footered: %+v", st)
	}
	if !strings.Contains(st.Text(), "aborted") {
		t.Fatalf("status text must say aborted:\n%s", st.Text())
	}

	// In-flight cells wind down after cancellation; give them a
	// moment, then insist the worker pool is gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak after cancellation: %d -> %d\n%s",
			before, n, buf[:runtime.Stack(buf, true)])
	}
}

// The mid-run-error satellite: a cell that fails must be journaled
// with its error, the run itself completing normally.
func TestJournalRecordsCellError(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// An unknown benchmark slips past spec validation only via
	// hand-built cells; it fails inside the worker, mid-run.
	plan.Cells[0].Opts.Bench = "nosuch"

	var buf bytes.Buffer
	jw := NewJournalWriter(&buf)
	s := &Scheduler{Workers: 2, OnStart: jw.CellStart, OnProgress: jw.CellDone}
	jw.Begin(plan, 2, "")
	_, stats, err := s.Run(context.Background(), plan.Cells)
	jw.End(stats, err)
	if err != nil || jw.Err() != nil {
		t.Fatal(err, jw.Err())
	}

	evs := readJournalStrict(t, buf.Bytes())
	var failed int
	for _, e := range evs {
		if e.Ev == EvCellDone && e.Err != "" {
			failed++
			if e.WallMS <= 0 {
				t.Fatalf("failed cell still occupied a worker; wall must be recorded: %+v", e)
			}
			if e.Insts != 0 || e.InstsPerSec != 0 {
				t.Fatalf("failed cell must not claim simulated instructions: %+v", e)
			}
		}
	}
	if failed != 1 {
		t.Fatalf("failed cells in journal: %d, want 1", failed)
	}

	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Errors != 1 || len(st.Failures) != 1 {
		t.Fatalf("status errors: %+v", st)
	}
	if !strings.Contains(st.Text(), "failures:") {
		t.Fatalf("status text must list failures:\n%s", st.Text())
	}
}

func TestJournalRejectsGarbage(t *testing.T) {
	if _, err := SummarizeJournal(nil); err == nil {
		t.Fatal("empty journal must be rejected")
	}
	// Garbage in the middle of the file is real corruption — a valid
	// line after it proves the writer kept going, so this is not the
	// benign torn tail a killed run leaves.
	_, err := ReadJournal(strings.NewReader("{\"ev\":\"start\"}\nnot json\n{\"ev\":\"end\"}\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("mid-file garbage must fail hard with its line number, got %v", err)
	}
	var torn *telemetry.TornTailError
	if errors.As(err, &torn) {
		t.Fatalf("mid-file garbage must not be classified as a torn tail: %v", err)
	}
}

// A journal whose final line is torn (the process died mid-write)
// yields the intact prefix plus a typed *TornTailError, so resume and
// status can use what survived.
func TestJournalTornTailIsTyped(t *testing.T) {
	evs, err := ReadJournal(strings.NewReader("{\"ev\":\"start\",\"campaign\":\"t\"}\n{\"ev\":\"cell_done\",\"key\":\"abc\"}\n{\"ev\":\"cell_do"))
	var torn *telemetry.TornTailError
	if !errors.As(err, &torn) {
		t.Fatalf("torn final line must return *TornTailError, got %v", err)
	}
	if torn.Line != 3 {
		t.Fatalf("torn line number: %d", torn.Line)
	}
	if len(evs) != 2 || evs[0].Ev != EvStart || evs[1].Key != "abc" {
		t.Fatalf("intact prefix must be returned alongside the error: %+v", evs)
	}
	// The prefix is still summarizable — status on a killed run.
	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Complete {
		t.Fatal("a torn journal has no end event")
	}
	if st.Done != 1 {
		t.Fatalf("prefix cells must count: %+v", st)
	}
}

// SummarizeJournal on a resumed journal: the latest run's counters
// win, but resume markers accumulate across runs.
func TestSummarizeJournalResumedRun(t *testing.T) {
	lines := strings.Join([]string{
		`{"ev":"start","campaign":"t","cells":4,"plan":"p1"}`,
		`{"ev":"cell_done","key":"a","err":"boom","err_kind":"panic"}`,
		`{"ev":"resume","campaign":"t","recovered":1,"remaining":3}`,
		`{"ev":"start","campaign":"t","cells":4,"plan":"p1"}`,
		`{"ev":"cell_done","key":"b"}`,
		`{"ev":"cell_done","key":"a","err":"boom","err_kind":"panic","source":"journal"}`,
		`{"ev":"end","completed":4,"errors":1,"failed_kinds":{"panic":1},"wall_s":0.5}`,
	}, "\n") + "\n"
	evs, err := ReadJournal(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Resumes != 1 {
		t.Fatalf("resumes: %d", st.Resumes)
	}
	if !st.Complete || st.Done != 4 || st.Errors != 1 {
		t.Fatalf("footer must be authoritative for the latest run: %+v", st)
	}
	if st.ErrKinds["panic"] != 1 {
		t.Fatalf("err kinds: %+v", st.ErrKinds)
	}
	if !strings.Contains(st.Text(), "resumes   1") {
		t.Fatalf("status text must surface resumes:\n%s", st.Text())
	}
}

// A journal writer whose sink fails sticks the first error and keeps
// the campaign alive — the injected journal.write.error path.
func TestJournalWriterInjectedFailureSticks(t *testing.T) {
	var buf bytes.Buffer
	jw := NewJournalWriter(&buf)
	jw.Faults = fault.New(1).Enable(fault.JournalWrite, 1).Limit(fault.JournalWrite, 1)
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	jw.Begin(plan, 1, "")
	err = jw.Err()
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.JournalWrite {
		t.Fatalf("injected write failure must stick as a typed error, got %v", err)
	}
	if buf.Len() != 0 {
		t.Fatalf("failed write must emit nothing, got %q", buf.String())
	}
	// Later events are dropped, not crashed on.
	jw.CellDone(Progress{Cell: plan.Cells[0]})
	if jw.Err() != err && !errors.As(jw.Err(), &fe) {
		t.Fatalf("first error must stick: %v", jw.Err())
	}
}

// Per-cell interval artifacts: every freshly simulated cell gets a
// <fingerprint>.json series; cached cells get none.
func TestExecuteWritesIntervalArtifacts(t *testing.T) {
	dir := t.TempDir()
	ivDir := filepath.Join(dir, "iv")
	sum, err := Execute(context.Background(), tinySpec(), RunConfig{
		CacheDir:    filepath.Join(dir, "cache"),
		Interval:    500,
		IntervalDir: ivDir,
	})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(ivDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != sum.Sched.Simulated {
		t.Fatalf("artifacts: %d, want one per simulated cell (%d)", len(entries), sum.Sched.Simulated)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(ivDir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var ivs []map[string]any
		if err := json.Unmarshal(data, &ivs); err != nil || len(ivs) == 0 {
			t.Fatalf("%s: bad series (%v, %d intervals)", e.Name(), err, len(ivs))
		}
	}

	// A fully cached rerun adds no artifacts (nothing was simulated)
	// and the disk cache counts the hits.
	cache, err := OpenDiskCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	sched := &Scheduler{Cache: cache}
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	if _, stats, err := sched.Run(context.Background(), plan.Cells); err != nil || stats.CacheHits != 8 {
		t.Fatalf("rerun: %v %+v", err, stats)
	}
	c := cache.Counters()
	if c.Hits != 8 || c.Misses != 0 || c.BytesRead == 0 {
		t.Fatalf("cache counters: %+v", c)
	}
	again, err := os.ReadDir(ivDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(entries) {
		t.Fatalf("cached rerun must not add artifacts: %d -> %d", len(entries), len(again))
	}
}

package campaign

import (
	"fmt"
	"strconv"
	"strings"

	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/runner"
)

// Axis names of the campaign engine, in cross-product order
// (benchmark outermost, selection innermost). An axis is a named,
// ordered value list plus a deterministic resolver that writes the
// value into runner.Options; the plan is the cross-product over the
// whole table, and every axis resolves into fields that existed
// before the table did — so a cell's fingerprint depends only on the
// options it resolves to, never on which axis put them there.
const (
	AxisBench  = "bench"
	AxisMech   = "mech"
	AxisHier   = "hier"
	AxisMemory = "mem"
	AxisCore   = "core"
	AxisQueue  = "queue"
	AxisParams = "pset"
	AxisWarmup = "warmup"
	AxisInsts  = "insts"
	AxisSeed   = "seed"
	AxisSelect = "sel"
)

// Trace-selection policy values of the "selections" axis. SelSkip
// discards Spec.Skip instructions ("skip N, simulate M", Section
// 3.5's arbitrary selection; "skip:N" pins an explicit offset
// instead). SelSimPoint runs the SimPoint analysis at plan time and
// resolves the chosen interval's offset into the same Options.Skip
// field.
const (
	SelSkip     = "skip"
	SelSimPoint = "simpoint"
)

// SelectionNames returns the valid Spec.Selections values (the
// explicit-offset form "skip:N" is also accepted).
func SelectionNames() []string { return []string{SelSkip, SelSimPoint} }

// DefaultParamSet names the implicit parameter set when a spec does
// not sweep "paramsets": the spec's base "params" overrides alone.
const DefaultParamSet = "default"

// AxisValue is one coordinate of a cell: the axis name and the value
// label the cell takes on it.
type AxisValue struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
}

// AxisInfo describes one expanded axis of a plan for listings.
type AxisInfo struct {
	Name string `json:"name"`
	// Scenario marks axes whose values define a sub-experiment (all
	// but benchmark, mechanism and seed).
	Scenario bool     `json:"scenario"`
	Values   []string `json:"values"`
}

// scenarioAxis reports whether an axis participates in the scenario
// key. Benchmarks and mechanisms are the rows and columns of every
// scenario grid, and seeds replicate cells within it; every other
// axis splits the campaign into sub-experiments.
func scenarioAxis(name string) bool {
	switch name {
	case AxisBench, AxisMech, AxisSeed:
		return false
	}
	return true
}

// axis is one compiled dimension of the table: the ordered value
// labels and one deterministic options resolver per value.
type axis struct {
	name   string
	values []axisValue
}

type axisValue struct {
	label string
	apply func(*runner.Options) error
}

// expander compiles a normalized spec into the axis table and holds
// the plan-time analysis memos shared across cells.
type expander struct {
	spec *Spec
	axes []axis
	// pinAfter is the axis index after which the spec's pinned config
	// fields ("set") apply: past the named axes, so pins override
	// their defaults, but before the "fields" axes and selection.
	pinAfter int
	// spMemo caches SimPoint offsets: the analysis is deterministic
	// per (workload, seed, warmup, insts) but costs a full stream
	// scan, and every mechanism/memory/... combination shares it.
	spMemo map[string]uint64
}

func newExpander(s *Spec) *expander {
	e := &expander{spec: s, spMemo: map[string]uint64{}}

	bench := axis{name: AxisBench}
	for _, b := range s.Benchmarks {
		b := b
		bench.values = append(bench.values, axisValue{label: b, apply: func(o *runner.Options) error {
			o.Bench = b
			// Nil for built-in benchmarks; for spec-defined workloads
			// the source carries the content identity the fingerprint
			// keys on.
			o.Workload = s.customWorkload(b)
			return nil
		}})
	}

	mech := axis{name: AxisMech}
	for _, m := range s.Mechanisms {
		m := m
		mech.values = append(mech.values, axisValue{label: m, apply: func(o *runner.Options) error {
			o.Mechanism = m
			return nil
		}})
	}

	hiers := axis{name: AxisHier}
	for _, h := range s.Hiers {
		h := h
		hiers.values = append(hiers.values, axisValue{label: h, apply: func(o *runner.Options) error {
			cfg, err := o.Hier.WithVariant(h)
			if err != nil {
				return fmt.Errorf("campaign: %w", err)
			}
			o.Hier = cfg
			return nil
		}})
	}

	mems := axis{name: AxisMemory}
	for _, m := range s.Memories {
		m := m
		mems.values = append(mems.values, axisValue{label: m, apply: func(o *runner.Options) error {
			o.Hier = o.Hier.WithMemory(memoryKind(m))
			return nil
		}})
	}

	cores := axis{name: AxisCore}
	for _, c := range s.Cores {
		c := c
		cores.values = append(cores.values, axisValue{label: c, apply: func(o *runner.Options) error {
			o.InOrder = c == CoreInOrder
			return nil
		}})
	}

	queues := axis{name: AxisQueue}
	for _, q := range s.Queues {
		q := q
		queues.values = append(queues.values, axisValue{label: queueLabel(q), apply: func(o *runner.Options) error {
			o.QueueOverride = q
			return nil
		}})
	}

	psets := axis{name: AxisParams}
	for i := range s.ParamSets {
		ps := s.ParamSets[i]
		psets.values = append(psets.values, axisValue{label: ps.Name, apply: func(o *runner.Options) error {
			o.Params = s.mergedParams(ps, o.Mechanism)
			return nil
		}})
	}

	warmups := axis{name: AxisWarmup}
	for _, w := range s.Warmups {
		w := w
		warmups.values = append(warmups.values, axisValue{label: strconv.FormatUint(w, 10), apply: func(o *runner.Options) error {
			o.Warmup = w
			return nil
		}})
	}

	insts := axis{name: AxisInsts}
	for _, n := range s.Insts {
		n := n
		insts.values = append(insts.values, axisValue{label: strconv.FormatUint(n, 10), apply: func(o *runner.Options) error {
			o.Insts = n
			return nil
		}})
	}

	seeds := axis{name: AxisSeed}
	for _, sd := range s.Seeds {
		sd := sd
		seeds.values = append(seeds.values, axisValue{label: strconv.FormatUint(sd, 10), apply: func(o *runner.Options) error {
			o.Seed = sd
			return nil
		}})
	}

	// Selection resolves last: the SimPoint analysis keys on the
	// workload, seed and budgets the earlier axes wrote.
	sels := axis{name: AxisSelect}
	for _, sel := range s.Selections {
		sel := sel
		sels.values = append(sels.values, axisValue{label: sel, apply: func(o *runner.Options) error {
			return e.applySelection(sel, o)
		}})
	}

	named := []axis{bench, mech, hiers, mems, cores, queues, psets}
	// Registry paths resolve after every named axis — first the spec's
	// pinned "set" fields (NewPlan applies them at pinAfter), then the
	// "fields" axes — so an explicit path always wins over a named
	// axis's default (a pinned "hier.mem.kind" over the defaulted
	// memories axis). A *multi-valued* named axis colliding with a
	// pinned/swept path is rejected by normalizeFields instead.
	e.pinAfter = len(named) - 1
	e.axes = append(named, s.fieldAxes()...)
	e.axes = append(e.axes, warmups, insts, seeds, sels)
	return e
}

func (e *expander) applySelection(sel string, o *runner.Options) error {
	switch {
	case sel == SelSkip:
		o.Skip = e.spec.Skip
	case sel == SelSimPoint:
		key := fmt.Sprintf("%s|%d|%d|%d", o.Bench, o.Seed, o.Warmup, o.Insts)
		off, ok := e.spMemo[key]
		if !ok {
			var err error
			off, err = runner.SimPointSkip(*o)
			if err != nil {
				return fmt.Errorf("campaign: simpoint selection for %q: %w", o.Bench, err)
			}
			e.spMemo[key] = off
		}
		o.Skip = off
	default:
		n, err := parseSkipSelection(sel)
		if err != nil {
			return err
		}
		o.Skip = n
	}
	return nil
}

// parseSkipSelection parses the explicit-offset form "skip:N".
func parseSkipSelection(sel string) (uint64, error) {
	rest, ok := strings.CutPrefix(sel, SelSkip+":")
	if !ok {
		return 0, fmt.Errorf("campaign: unknown selection %q (have %s, or %s:N)",
			sel, strings.Join(SelectionNames(), ", "), SelSkip)
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("campaign: selection %q: offset is not a number", sel)
	}
	return n, nil
}

// mergedParams resolves the construction parameters of one mechanism
// under a parameter set: the spec's base "params" overrides with the
// set's own overrides layered on top. Nil when the mechanism has
// none, matching the pre-axis resolver exactly (fingerprint parity).
func (s *Spec) mergedParams(ps ParamSetSpec, mech string) core.Params {
	base := s.Params[mech]
	over := ps.Params[mech]
	if len(base) == 0 && len(over) == 0 {
		return nil
	}
	p := core.Params{}
	for k, v := range base {
		p[k] = v
	}
	for k, v := range over {
		p[k] = v
	}
	return p
}

// baseOptions is the axis-independent part of every cell's options.
func (s *Spec) baseOptions() runner.Options {
	return runner.Options{
		Hier:             hier.DefaultConfig(),
		CPU:              cpu.DefaultConfig(),
		Skip:             s.Skip,
		PrefetchAsDemand: s.PrefetchAsDemand,
	}
}

// applyPins writes the spec's pinned config fields ("set") onto the
// options, in sorted path order.
func (s *Spec) applyPins(o *runner.Options) error {
	paths := sortedFieldPaths(s.Set)
	return applyFields(o, paths, func(p string) string { return string(s.Set[p]) })
}

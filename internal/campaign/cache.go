package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CellResult is the serializable outcome of one cell — the subset of
// runner.Result the aggregation layer needs, small enough to persist
// per cell. Err is set (and the rest zero) when the simulation
// failed; failed cells are never written to the cache.
type CellResult struct {
	Key       string  `json:"key"`
	Bench     string  `json:"bench"`
	Mechanism string  `json:"mechanism"`
	Seed      uint64  `json:"seed"`
	IPC       float64 `json:"ipc"`
	Cycles    uint64  `json:"cycles"`
	Insts     uint64  `json:"insts"`

	L1DMissRatio   float64 `json:"l1d_miss_ratio"`
	L2MissRatio    float64 `json:"l2_miss_ratio"`
	PrefetchIssued uint64  `json:"prefetch_issued,omitempty"`
	PrefetchUseful uint64  `json:"prefetch_useful,omitempty"`
	AvgReadLatency float64 `json:"avg_read_latency"`

	Err string `json:"err,omitempty"`
}

// DiskCache persists cell results under one directory, one JSON file
// per fingerprint key. It is safe for concurrent use by the worker
// pool: writes go through a temp file and an atomic rename, and a
// torn or corrupt entry reads as a miss, never as bad data.
type DiskCache struct {
	dir string
}

// OpenDiskCache creates (if needed) and opens a cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key, if present and intact.
func (c *DiskCache) Get(key string) (CellResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return CellResult{}, false
	}
	var res CellResult
	if err := json.Unmarshal(data, &res); err != nil || res.Key != key {
		return CellResult{}, false
	}
	return res, true
}

// Put stores a successful result under its key.
func (c *DiskCache) Put(res CellResult) error {
	if res.Key == "" {
		return fmt.Errorf("campaign: cache entry without key")
	}
	if res.Err != "" {
		return fmt.Errorf("campaign: refusing to cache failed cell %s", res.Key)
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "."+res.Key+".tmp*")
	if err != nil {
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: cache write: %w", err)
	}
	return os.Rename(tmp.Name(), c.path(res.Key))
}

// Keys lists the cached fingerprints, sorted.
func (c *DiskCache) Keys() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: list cache: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"microlib/internal/core"
	"microlib/internal/fault"
)

// CellResult is the serializable outcome of one cell — the subset of
// runner.Result the aggregation layer needs, small enough to persist
// per cell. Err is set (and the rest zero) when the simulation
// failed; failed cells are never written to the cache.
type CellResult struct {
	Key       string  `json:"key"`
	Bench     string  `json:"bench"`
	Mechanism string  `json:"mechanism"`
	Seed      uint64  `json:"seed"`
	IPC       float64 `json:"ipc"`
	Cycles    uint64  `json:"cycles"`
	Insts     uint64  `json:"insts"`

	L1DMissRatio   float64 `json:"l1d_miss_ratio"`
	L2MissRatio    float64 `json:"l2_miss_ratio"`
	PrefetchIssued uint64  `json:"prefetch_issued,omitempty"`
	PrefetchUseful uint64  `json:"prefetch_useful,omitempty"`
	AvgReadLatency float64 `json:"avg_read_latency"`

	// Hardware lists the mechanism's SRAM structures with their
	// activity counters, and BaseCacheAccesses approximates base
	// cache activity — the inputs of the CACTI/XCACTI-style cost and
	// power models (Figure 5). Fresh results always carry a non-nil
	// (possibly empty) Hardware slice; nil marks an entry cached
	// before these fields existed, which is still valid for IPC but
	// carries no cost data — the Figure 5 formatter flags such cells
	// instead of silently reporting the mechanism as cost-free.
	Hardware          []core.HWTable `json:"hardware"`
	BaseCacheAccesses uint64         `json:"base_cache_accesses,omitempty"`

	// Refusals is the cell's cache-refusal pressure: cache-side
	// rejects summed over the hierarchy plus the core-side per-reason
	// retry counts. Entries cached before these fields existed decode
	// as all-zero, which reads as "no pressure recorded" (the
	// Hardware-nil precedent applies: still valid for IPC).
	Refusals RefusalStats `json:"refusals,omitzero"`

	Err string `json:"err,omitempty"`
	// ErrKind classifies Err per the failure taxonomy
	// (model/panic/timeout/io); empty when Err is empty.
	ErrKind string `json:"err_kind,omitempty"`
}

// RefusalStats aggregates cache-refusal pressure: how often the
// hierarchy's caches refused an access (by reason) and how often the
// core absorbed a refusal on its retry paths.
type RefusalStats struct {
	RejectPort  uint64 `json:"reject_port,omitempty"`
	RejectStall uint64 `json:"reject_stall,omitempty"`
	RejectMSHR  uint64 `json:"reject_mshr,omitempty"`
	RetryPort   uint64 `json:"retry_port,omitempty"`
	RetryStall  uint64 `json:"retry_stall,omitempty"`
	RetryMSHR   uint64 `json:"retry_mshr,omitempty"`
}

// Total is the summed refusal count across reasons (cache side).
func (r RefusalStats) Total() uint64 {
	return r.RejectPort + r.RejectStall + r.RejectMSHR
}

// add accumulates another cell's refusal pressure.
func (r *RefusalStats) add(o RefusalStats) {
	r.RejectPort += o.RejectPort
	r.RejectStall += o.RejectStall
	r.RejectMSHR += o.RejectMSHR
	r.RetryPort += o.RetryPort
	r.RetryStall += o.RetryStall
	r.RetryMSHR += o.RetryMSHR
}

// MemCache is an in-process CellCache: a plain map under a mutex.
// The experiments harness layers it in front of the disk cache so
// every figure of one run shares cells (the paper's figures overlap
// heavily — fig8's SDRAM arm is the main grid).
type MemCache struct {
	mu sync.Mutex
	m  map[string]CellResult
}

// NewMemCache returns an empty in-process cell cache.
func NewMemCache() *MemCache { return &MemCache{m: map[string]CellResult{}} }

// Get implements CellCache.
func (c *MemCache) Get(key string) (CellResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.m[key]
	return res, ok
}

// Put implements CellCache.
func (c *MemCache) Put(res CellResult) error {
	if res.Key == "" {
		return errModelf("campaign: cache entry without key")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[res.Key] = res
	return nil
}

// LayeredCache chains caches: Get tries each layer in order, filling
// the earlier (faster) layers on a hit; Put writes through to all.
type LayeredCache struct {
	Layers []CellCache
	// OnDegrade, when non-nil, observes back-fill Put failures (the
	// hit is still served; the failing front layer keeps missing).
	OnDegrade func(Degradation)
}

// Get implements CellCache.
func (c *LayeredCache) Get(key string) (CellResult, bool) {
	for i, layer := range c.Layers {
		if res, ok := layer.Get(key); ok {
			for _, front := range c.Layers[:i] {
				if err := front.Put(res); err != nil && c.OnDegrade != nil {
					// The hit stands; the front layer just keeps
					// missing — degraded, not fatal, but visible.
					c.OnDegrade(Degradation{Op: "cache.backfill", Key: key, Err: err})
				}
			}
			return res, true
		}
	}
	return CellResult{}, false
}

// Put implements CellCache. The first layer error is returned, but
// every layer sees the entry (a full disk degrades to recomputation,
// not to a poisoned run).
func (c *LayeredCache) Put(res CellResult) error {
	var first error
	for _, layer := range c.Layers {
		if err := layer.Put(res); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CacheCounters is a snapshot of a DiskCache's access statistics
// since it was opened: how often the campaign was served from disk,
// how often it had to simulate, and how much result data moved.
type CacheCounters struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	BytesRead    uint64 `json:"bytes_read"`
	Puts         uint64 `json:"puts"`
	BytesWritten uint64 `json:"bytes_written"`
	// Corrupt counts entries that failed to decode and were
	// quarantined to <key>.corrupt (each also counts as a miss).
	Corrupt uint64 `json:"corrupt,omitempty"`
}

// DiskCache persists cell results under one directory, one JSON file
// per fingerprint key. It is safe for concurrent use by the worker
// pool: writes go through a temp file and an atomic rename, and a
// torn or corrupt entry reads as a miss, never as bad data.
type DiskCache struct {
	dir string

	// OnDegrade, when non-nil, observes read errors and corrupt-entry
	// quarantines (ops "cache.get", "cache.corrupt"). Set before the
	// cache is shared across goroutines.
	OnDegrade func(Degradation)
	// Faults, when non-nil, arms the cache fault-injection points
	// (cache.get.error, cache.get.corrupt, cache.put.error).
	Faults *fault.Injector

	hits         atomic.Uint64
	misses       atomic.Uint64
	bytesRead    atomic.Uint64
	puts         atomic.Uint64
	bytesWritten atomic.Uint64
	corrupt      atomic.Uint64
}

// Counters returns the access statistics accumulated since the cache
// was opened. Safe to call concurrently with Get/Put (a metrics
// endpoint scrapes it mid-run).
func (c *DiskCache) Counters() CacheCounters {
	return CacheCounters{
		Hits:         c.hits.Load(),
		Misses:       c.misses.Load(),
		BytesRead:    c.bytesRead.Load(),
		Puts:         c.puts.Load(),
		BytesWritten: c.bytesWritten.Load(),
		Corrupt:      c.corrupt.Load(),
	}
}

// OpenDiskCache creates (if needed) and opens a cache directory.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *DiskCache) Dir() string { return c.dir }

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached result for key, if present and intact. A
// corrupt entry is quarantined — renamed to <key>.corrupt so the
// evidence survives for inspection instead of being overwritten by
// the resimulated cell — counted, degraded, and served as a miss.
func (c *DiskCache) Get(key string) (CellResult, bool) {
	data, err := os.ReadFile(c.path(key))
	if ferr := c.Faults.FireErr(fault.CacheGetError, key); ferr != nil {
		err = ferr
	}
	if err != nil {
		c.misses.Add(1)
		if !os.IsNotExist(err) {
			c.degrade(Degradation{Op: "cache.get", Key: key, Err: err})
		}
		return CellResult{}, false
	}
	if c.Faults.Fire(fault.CacheGetCorrupt, key) {
		data = data[:len(data)/2] // torn mid-record
	}
	var res CellResult
	if err := json.Unmarshal(data, &res); err != nil || res.Key != key {
		// A torn or corrupt entry reads as a miss; quarantine it so
		// the resimulation does not destroy the evidence.
		c.misses.Add(1)
		c.corrupt.Add(1)
		if err == nil {
			err = ioErrorf("campaign: cache entry %s holds key %s", key, res.Key)
		}
		if qerr := os.Rename(c.path(key), filepath.Join(c.dir, key+".corrupt")); qerr != nil {
			err = ioErrorf("%v (quarantine failed: %v)", err, qerr)
		}
		c.degrade(Degradation{Op: "cache.corrupt", Key: key, Err: err})
		return CellResult{}, false
	}
	c.hits.Add(1)
	c.bytesRead.Add(uint64(len(data)))
	return res, true
}

func (c *DiskCache) degrade(d Degradation) {
	if c.OnDegrade != nil {
		c.OnDegrade(d)
	}
}

// Put stores a successful result under its key.
func (c *DiskCache) Put(res CellResult) error {
	if res.Key == "" {
		return errModelf("campaign: cache entry without key")
	}
	if res.Err != "" {
		return errModelf("campaign: refusing to cache failed cell %s", res.Key)
	}
	if err := c.Faults.FireErr(fault.CachePutError, res.Key); err != nil {
		return err
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "."+res.Key+".tmp*")
	if err != nil {
		return ioErrorf("campaign: cache write: %v", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return ioErrorf("campaign: cache write: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return ioErrorf("campaign: cache write: %v", err)
	}
	if err := os.Rename(tmp.Name(), c.path(res.Key)); err != nil {
		return ioErrorf("campaign: cache write: %v", err)
	}
	c.puts.Add(1)
	c.bytesWritten.Add(uint64(len(data)))
	return nil
}

// Entry describes one cached cell file.
type Entry struct {
	Key     string
	ModTime time.Time
	Size    int64
}

// Entries lists the cached cells with their file metadata, sorted by
// key. Unreadable entries are skipped (a concurrent writer's temp
// files never match the .json suffix, so only real cells appear).
func (c *DiskCache) Entries() ([]Entry, error) {
	keys, err := c.Keys()
	if err != nil {
		return nil, err
	}
	out := make([]Entry, 0, len(keys))
	for _, k := range keys {
		info, err := os.Stat(c.path(k))
		if err != nil {
			continue
		}
		out = append(out, Entry{Key: k, ModTime: info.ModTime(), Size: info.Size()})
	}
	return out, nil
}

// Remove deletes one cached cell. Removing a missing key is not an
// error (a concurrent prune may have won the race).
func (c *DiskCache) Remove(key string) error {
	if err := os.Remove(c.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("campaign: remove cache entry: %w", err)
	}
	return nil
}

// PruneOptions selects which cached cells to delete.
type PruneOptions struct {
	// OlderThan removes entries whose file modification time is more
	// than this duration before Now. Zero disables the age criterion.
	OlderThan time.Duration
	// Keep, when non-nil, removes every entry whose key is not one of
	// the plan's cell fingerprints — cache GC down to exactly the
	// cells a spec can still reach.
	Keep *Plan
	// Now anchors the age comparison; the zero value means
	// time.Now().
	Now time.Time
	// DryRun reports what would be removed without deleting anything.
	DryRun bool
}

// PruneResult reports what Prune did (or, for a dry run, would do).
type PruneResult struct {
	Removed []Entry
	Kept    int
	Bytes   int64 // total size of removed entries
}

// Prune deletes cached cells per opts: a cell is removed when it is
// older than the age limit or unreachable from the keep-plan,
// whichever criteria are enabled.
func Prune(c *DiskCache, opts PruneOptions) (PruneResult, error) {
	if opts.OlderThan < 0 {
		return PruneResult{}, fmt.Errorf("campaign: negative prune age %v", opts.OlderThan)
	}
	if opts.OlderThan == 0 && opts.Keep == nil {
		return PruneResult{}, fmt.Errorf("campaign: prune needs an age limit or a keep plan")
	}
	entries, err := c.Entries()
	if err != nil {
		return PruneResult{}, err
	}
	now := opts.Now
	if now.IsZero() {
		now = time.Now()
	}
	var reachable map[string]bool
	if opts.Keep != nil {
		reachable = make(map[string]bool, len(opts.Keep.Cells))
		for _, cell := range opts.Keep.Cells {
			reachable[cell.Key] = true
		}
	}
	var res PruneResult
	for _, e := range entries {
		tooOld := opts.OlderThan > 0 && now.Sub(e.ModTime) > opts.OlderThan
		unreachable := reachable != nil && !reachable[e.Key]
		if !tooOld && !unreachable {
			res.Kept++
			continue
		}
		if !opts.DryRun {
			if err := c.Remove(e.Key); err != nil {
				return res, err
			}
		}
		res.Removed = append(res.Removed, e)
		res.Bytes += e.Size
	}
	return res, nil
}

// Keys lists the cached fingerprints, sorted.
func (c *DiskCache) Keys() ([]string, error) {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: list cache: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".json"))
	}
	sort.Strings(keys)
	return keys, nil
}

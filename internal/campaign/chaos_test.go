package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"
	"time"

	"microlib/internal/fault"
)

// The chaos suite: run campaigns under randomized-but-deterministic
// fault schedules (cache read/write errors, corruption, cell panics,
// stalls) and assert the containment invariants hold — no goroutine
// leaks, well-formed JSONL journals, and bit-identical convergence
// when the faults clear.
func TestChaosCampaignsConverge(t *testing.T) {
	// Reference: the spec's true scenario table, computed fault-free.
	ref, err := Execute(context.Background(), tinySpec(), RunConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	before := runtime.NumGoroutine()
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			inj := fault.New(seed).
				Enable(fault.CachePutError, 0.4).
				Enable(fault.CacheGetError, 0.3).
				Enable(fault.CacheGetCorrupt, 0.3).
				Enable(fault.CellPanic, 0.25).Limit(fault.CellPanic, 2).
				Enable(fault.CellSlow, 0.25).Limit(fault.CellSlow, 2)
			inj.SlowFor = 10 * time.Second

			dir := filepath.Join(t.TempDir(), "cache")
			var journal bytes.Buffer
			sum, err := Execute(context.Background(), tinySpec(), RunConfig{
				Workers:     2,
				CacheDir:    dir,
				Journal:     &journal,
				CellTimeout: 200 * time.Millisecond,
				Retry:       &RetryPolicy{Max: 2, BaseDelay: time.Millisecond},
				Faults:      inj,
			})
			if err != nil {
				t.Fatal(err)
			}

			// Invariant 1: the campaign completes — every cell is
			// accounted for, failed or not, and failures are typed.
			if sum.Sched.Completed != 8 {
				t.Fatalf("faults must not lose cells: %+v", sum.Sched)
			}
			total := 0
			for kind, n := range sum.Sched.FailedKinds {
				if ErrKind(kind) != KindPanic && ErrKind(kind) != KindTimeout {
					t.Fatalf("unexpected failure kind %q under this schedule", kind)
				}
				total += n
			}
			if total != sum.Sched.Errors {
				t.Fatalf("kind counts must sum to Errors: %+v", sum.Sched)
			}

			// Invariant 2: the journal is line-by-line valid JSON with
			// a footer, whatever the faults did.
			lines := bytes.Split(bytes.TrimSuffix(journal.Bytes(), []byte("\n")), []byte("\n"))
			for i, ln := range lines {
				if !json.Valid(ln) {
					t.Fatalf("journal line %d is not JSON: %q", i+1, ln)
				}
			}
			evs := readJournalStrict(t, journal.Bytes())
			if evs[len(evs)-1].Ev != EvEnd {
				t.Fatal("journal must end with a footer")
			}

			// Invariant 3: once the faults clear, a rerun against the
			// same (possibly degraded) cache converges to the exact
			// fault-free result.
			sum2, err := Execute(context.Background(), tinySpec(), RunConfig{
				Workers:  2,
				CacheDir: dir,
			})
			if err != nil {
				t.Fatal(err)
			}
			if sum2.Sched.Errors != 0 || sum2.Sched.Completed != 8 {
				t.Fatalf("fault-free rerun must fully succeed: %+v", sum2.Sched)
			}
			if !reflect.DeepEqual(sum2.Scenarios, ref.Scenarios) {
				t.Fatalf("chaos run left a diverging cache:\n got %+v\nwant %+v", sum2.Scenarios, ref.Scenarios)
			}
		})
	}

	// Invariant 4: nothing leaked across any schedule.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// The -faults CLI grammar drives the same machinery: a parsed
// schedule behaves like a hand-built one.
func TestChaosParsedScheduleRuns(t *testing.T) {
	inj, err := fault.Parse("cell.panic=1@1,cache.put.error=0.5", 7)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Execute(context.Background(), tinySpec(), RunConfig{
		Workers:  2,
		CacheDir: filepath.Join(t.TempDir(), "cache"),
		Faults:   inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.FailedKinds[string(KindPanic)] != 1 {
		t.Fatalf("parsed cell.panic=1@1 must panic exactly one cell: %+v", sum.Sched)
	}
	if sum.Sched.Completed != 8 {
		t.Fatalf("campaign must complete: %+v", sum.Sched)
	}
}

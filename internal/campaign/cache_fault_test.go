package campaign

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microlib/internal/fault"
)

// Corrupt-entry quarantine: a truncated or garbled entry reads as a
// miss, is counted, moved aside as <key>.corrupt for post-mortem, and
// reported as a degradation — then the slot is reusable.
func TestDiskCacheQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var degraded []Degradation
	c.OnDegrade = func(d Degradation) { degraded = append(degraded, d) }
	if err := os.WriteFile(filepath.Join(dir, "abc.json"), []byte(`{"key":"abc","ipc":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("abc"); ok {
		t.Fatal("corrupt entry must read as a miss")
	}
	if _, err := os.Stat(filepath.Join(dir, "abc.corrupt")); err != nil {
		t.Fatalf("corrupt entry must be quarantined to abc.corrupt: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "abc.json")); !os.IsNotExist(err) {
		t.Fatalf("quarantined entry must leave its slot: %v", err)
	}
	if got := c.Counters(); got.Corrupt != 1 || got.Misses != 1 {
		t.Fatalf("counters: %+v", got)
	}
	if len(degraded) != 1 || degraded[0].Op != "cache.corrupt" || degraded[0].Key != "abc" {
		t.Fatalf("degradations: %+v", degraded)
	}
	// Quarantined debris never surfaces as a key, and the slot works.
	if err := c.Put(CellResult{Key: "abc", Bench: "gzip", Mechanism: "GHB", Seed: 1, IPC: 1.5}); err != nil {
		t.Fatal(err)
	}
	keys, err := c.Keys()
	if err != nil || len(keys) != 1 || keys[0] != "abc" {
		t.Fatalf("keys after requarantine: %v %v", keys, err)
	}
	if res, ok := c.Get("abc"); !ok || res.IPC != 1.5 {
		t.Fatalf("rewritten slot: %+v ok=%v", res, ok)
	}
}

// An injected mid-read corruption takes the same quarantine path as
// real disk rot — this is the hook the chaos suite leans on.
func TestDiskCacheInjectedCorruption(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(CellResult{Key: "feed", Bench: "mcf", Mechanism: "Base", Seed: 2, IPC: 0.9}); err != nil {
		t.Fatal(err)
	}
	c.Faults = fault.New(1).Enable(fault.CacheGetCorrupt, 1).Limit(fault.CacheGetCorrupt, 1)
	if _, ok := c.Get("feed"); ok {
		t.Fatal("injected corruption must read as a miss")
	}
	if got := c.Counters(); got.Corrupt != 1 {
		t.Fatalf("counters: %+v", got)
	}
	if _, err := os.Stat(filepath.Join(dir, "feed.corrupt")); err != nil {
		t.Fatalf("injected corruption must quarantine too: %v", err)
	}
	if _, ok := c.Get("feed"); ok {
		t.Fatal("quarantined entry must stay gone")
	}
}

// Injected read errors surface as degradations, not hits and not
// quarantines (the entry may be fine; the read was not).
func TestDiskCacheGetErrorDegrades(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(CellResult{Key: "feed", Bench: "mcf", Mechanism: "Base", Seed: 2, IPC: 0.9}); err != nil {
		t.Fatal(err)
	}
	var degraded []Degradation
	c.OnDegrade = func(d Degradation) { degraded = append(degraded, d) }
	c.Faults = fault.New(1).Enable(fault.CacheGetError, 1).Limit(fault.CacheGetError, 1)
	if _, ok := c.Get("feed"); ok {
		t.Fatal("read error must be a miss")
	}
	if len(degraded) != 1 || degraded[0].Op != "cache.get" {
		t.Fatalf("degradations: %+v", degraded)
	}
	if _, err := os.Stat(filepath.Join(dir, "feed.json")); err != nil {
		t.Fatalf("a read error must not quarantine the entry: %v", err)
	}
	if res, ok := c.Get("feed"); !ok || res.IPC != 0.9 {
		t.Fatalf("entry must survive the transient read error: %+v ok=%v", res, ok)
	}
}

// failingCache rejects every Put — the front layer of a layered cache
// whose disk is full.
type failingCache struct{ gets int }

func (f *failingCache) Get(string) (CellResult, bool) { f.gets++; return CellResult{}, false }
func (f *failingCache) Put(CellResult) error          { return fmt.Errorf("disk full") }

// Layered-cache backfill failures are routed to OnDegrade; the hit is
// still served from the deeper layer.
func TestLayeredCacheBackfillDegrades(t *testing.T) {
	back := NewMemCache()
	if err := back.Put(CellResult{Key: "k", IPC: 2.0}); err != nil {
		t.Fatal(err)
	}
	front := &failingCache{}
	var degraded []Degradation
	lc := &LayeredCache{
		Layers:    []CellCache{front, back},
		OnDegrade: func(d Degradation) { degraded = append(degraded, d) },
	}
	res, ok := lc.Get("k")
	if !ok || res.IPC != 2.0 {
		t.Fatalf("hit must be served despite backfill failure: %+v ok=%v", res, ok)
	}
	if len(degraded) != 1 || degraded[0].Op != "cache.backfill" || degraded[0].Key != "k" {
		t.Fatalf("degradations: %+v", degraded)
	}
	if !strings.Contains(degraded[0].Err.Error(), "disk full") {
		t.Fatalf("degradation must carry the cause: %v", degraded[0].Err)
	}
}

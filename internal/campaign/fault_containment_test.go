package campaign

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"microlib/internal/fault"
)

// dupKey returns a fingerprint that appears on two plan cells (the
// Base column repeated across a paramsets axis), with the plan.
func dupPlan(t *testing.T) (*Plan, string) {
	t.Helper()
	spec := tinySpec()
	spec.Seeds = []uint64{1}
	spec.ParamSets = []ParamSetSpec{
		{Name: "pub"},
		{Name: "q1", Params: map[string]map[string]int{"TP": {"queue": 1}}},
	}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range plan.Cells {
		if seen[c.Key] {
			return plan, c.Key
		}
		seen[c.Key] = true
	}
	t.Fatal("plan has no duplicated fingerprint")
	return nil, ""
}

// Panic isolation: an injected worker panic costs one cell, not the
// campaign; the failure is typed with a stack and the rest completes.
func TestSchedulerRecoversCellPanic(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[0].Key
	s := &Scheduler{
		Workers: 2,
		Faults:  fault.New(1).EnableKeys(fault.CellPanic, 1, victim),
	}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 8 || stats.Errors != 1 || stats.Simulated != 7 {
		t.Fatalf("one panic must cost one cell: %+v", stats)
	}
	if stats.FailedKinds[string(KindPanic)] != 1 {
		t.Fatalf("failure must be classified panic: %+v", stats.FailedKinds)
	}
	res := results[victim]
	if res.Err == "" || res.ErrKind != string(KindPanic) {
		t.Fatalf("victim result: %+v", res)
	}
	if !strings.Contains(res.Err, "panic") {
		t.Fatalf("panic message lost: %q", res.Err)
	}
}

// The panic's stack must reach the journal (that is what makes a
// watchdog panic in a 1000-cell sweep debuggable afterwards).
func TestJournalCarriesPanicStack(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[0].Key
	var buf bytes.Buffer
	jw := NewJournalWriter(&buf)
	s := &Scheduler{
		Workers:    2,
		OnProgress: jw.CellDone,
		Faults:     fault.New(1).EnableKeys(fault.CellPanic, 1, victim),
	}
	jw.Begin(plan, 2, "")
	_, stats, err := s.Run(context.Background(), plan.Cells)
	jw.End(stats, err)
	if err != nil || jw.Err() != nil {
		t.Fatal(err, jw.Err())
	}
	evs := readJournalStrict(t, buf.Bytes())
	var found bool
	for _, e := range evs {
		if e.Ev == EvCellDone && e.Err != "" {
			found = true
			if e.ErrKind != string(KindPanic) {
				t.Fatalf("journaled failure must be typed: %+v", e)
			}
			if !strings.Contains(e.Stack, "goroutine") {
				t.Fatalf("journaled panic must carry its stack, got %q", e.Stack)
			}
		}
	}
	if !found {
		t.Fatal("no failed cell_done in journal")
	}
	end := evs[len(evs)-1]
	if end.Ev != EvEnd || end.FailedKinds[string(KindPanic)] != 1 {
		t.Fatalf("footer must carry per-kind counts: %+v", end)
	}
}

// Duplicate-cell handling when the first copy panics: the recorded
// deterministic failure is shared, not resimulated, and both copies
// count as failures.
func TestSchedulerDuplicateSharesPanicFailure(t *testing.T) {
	plan, victim := dupPlan(t)
	s := &Scheduler{
		Workers: 4,
		Faults:  fault.New(1).EnableKeys(fault.CellPanic, 1, victim),
	}
	var progressErrs int
	s.OnProgress = func(p Progress) {
		if p.Cell.Key == victim && p.Err == nil {
			t.Errorf("copy of panicked cell reported success: %+v", p)
		}
		if p.Err != nil {
			progressErrs++
			var ce *CellError
			if !errors.As(p.Err, &ce) || ce.Kind != KindPanic {
				t.Errorf("shared failure must stay typed: %v", p.Err)
			}
		}
	}
	_, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 2 || progressErrs != 2 {
		t.Fatalf("both copies must report the shared failure: stats=%+v progress=%d", stats, progressErrs)
	}
	if stats.FailedKinds[string(KindPanic)] != 2 {
		t.Fatalf("failed kinds: %+v", stats.FailedKinds)
	}
	if stats.Completed != len(plan.Cells) {
		t.Fatalf("campaign must still complete: %+v", stats)
	}
}

// Per-cell deadline: a stuck cell is cut off, typed timeout, and the
// campaign completes. With retries enabled and the stall persisting,
// the retry is consumed and the cell still fails.
func TestSchedulerCellTimeout(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[1].Key
	inj := fault.New(1).EnableKeys(fault.CellSlow, 1, victim)
	inj.SlowFor = 10 * time.Second
	var retries atomic.Int32
	s := &Scheduler{
		Workers: 2,
		// Generous: healthy 2000-inst cells must never trip it, even
		// under the race detector's slowdown.
		CellTimeout: 500 * time.Millisecond,
		Retry:       RetryPolicy{Max: 1, BaseDelay: time.Millisecond},
		OnRetry:     func(RetryInfo) { retries.Add(1) },
		Faults:      inj,
	}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 || stats.FailedKinds[string(KindTimeout)] != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if stats.Retries != 1 || retries.Load() != 1 {
		t.Fatalf("timeout is transient and must consume its retry: %d/%d", stats.Retries, retries.Load())
	}
	res := results[victim]
	if res.ErrKind != string(KindTimeout) || !strings.Contains(res.Err, "deadline") {
		t.Fatalf("victim result: %+v", res)
	}
	if stats.Simulated != 7 || stats.Completed != 8 {
		t.Fatalf("other cells must complete: %+v", stats)
	}
}

// A transient failure that stops recurring succeeds on retry: the
// slow fault is limited to one occurrence, so attempt two finishes.
func TestSchedulerRetryRecoversTransient(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[2].Key
	inj := fault.New(1).EnableKeys(fault.CellSlow, 1, victim).Limit(fault.CellSlow, 1)
	inj.SlowFor = 10 * time.Second
	s := &Scheduler{
		Workers:     2,
		CellTimeout: 500 * time.Millisecond,
		Retry:       RetryPolicy{Max: 2, BaseDelay: time.Millisecond},
		Faults:      inj,
	}
	var attempts int
	s.OnProgress = func(p Progress) {
		if p.Cell.Key == victim {
			attempts = p.Attempts
		}
	}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.Simulated != 8 {
		t.Fatalf("retried cell must succeed: %+v", stats)
	}
	if stats.Retries != 1 || attempts != 1 {
		t.Fatalf("exactly one retry expected: stats=%d progress=%d", stats.Retries, attempts)
	}
	if res := results[victim]; res.Err != "" || res.IPC <= 0 {
		t.Fatalf("victim result after retry: %+v", res)
	}
}

// Cancellation racing a retrying cell: the backoff select must yield
// to ctx, the cell stays unrecorded (the resumed run retries fresh),
// and no workers leak.
func TestSchedulerCancellationDuringRetryBackoff(t *testing.T) {
	before := runtime.NumGoroutine()
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	victim := plan.Cells[0].Key
	inj := fault.New(1).EnableKeys(fault.CellSlow, 1, victim)
	inj.SlowFor = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := &Scheduler{
		Workers:     2,
		CellTimeout: 300 * time.Millisecond,
		// A backoff long enough that cancel lands inside it.
		Retry: RetryPolicy{Max: 5, BaseDelay: 10 * time.Second},
		OnRetry: func(r RetryInfo) {
			if r.Cell.Key == victim {
				cancel()
			}
		},
	}
	s.Faults = inj
	results, _, err := s.Run(ctx, plan.Cells)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, ok := results[victim]; ok {
		t.Fatal("cell canceled mid-retry must stay unrecorded for resume")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutine leak: %d -> %d\n%s", before, n, buf[:runtime.Stack(buf, true)])
	}
}

// Cache Put failures degrade: counted, reported, journaled — and the
// in-memory result is still delivered.
func TestSchedulerCachePutDegrades(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	cache.Faults = fault.New(1).Enable(fault.CachePutError, 1)
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	var dmu sync.Mutex
	var degraded []Degradation
	s := &Scheduler{
		Workers: 2,
		Cache:   cache,
		Retry:   RetryPolicy{Max: 1, BaseDelay: time.Millisecond},
		OnDegrade: func(d Degradation) {
			dmu.Lock()
			degraded = append(degraded, d)
			dmu.Unlock()
		},
	}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 0 || stats.Simulated != 8 {
		t.Fatalf("put failures must not fail cells: %+v", stats)
	}
	if stats.Degraded != 8 || len(degraded) != 8 {
		t.Fatalf("every dropped put must be counted: stats=%d hook=%d", stats.Degraded, len(degraded))
	}
	for _, d := range degraded {
		if d.Op != "cache.put" || d.Key == "" || d.Err == nil {
			t.Fatalf("degradation payload: %+v", d)
		}
		var fe *fault.Error
		if !errors.As(d.Err, &fe) {
			t.Fatalf("injected error must stay typed: %v", d.Err)
		}
	}
	for _, c := range plan.Cells {
		if res := results[c.Key]; res.Err != "" || res.IPC <= 0 {
			t.Fatalf("result lost with the failed put: %+v", res)
		}
	}
	keys, err := cache.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 0 {
		t.Fatalf("failed puts must persist nothing, found %d entries", len(keys))
	}
}

// The stall watchdog: flags once per quiet episode, re-arms on
// progress, stays silent after completion.
func TestStallWatchCheck(t *testing.T) {
	w := &stallWatch{factor: 8, min: 10 * time.Millisecond, last: time.Now().Add(-time.Second), total: 4, done: 1}
	rep, ok := w.check()
	if !ok {
		t.Fatal("idle 1s against a 10ms floor must flag")
	}
	if rep.Idle < time.Second || rep.Threshold != 10*time.Millisecond || rep.Done != 1 || rep.Total != 4 {
		t.Fatalf("report: %+v", rep)
	}
	if _, ok := w.check(); ok {
		t.Fatal("a stall episode must be flagged once, not every tick")
	}
	w.cellFinished(5 * time.Millisecond)
	w.last = time.Now().Add(-time.Second)
	if _, ok := w.check(); !ok {
		t.Fatal("progress must re-arm the watchdog")
	}
	// Median-scaled threshold: with 100ms cells on record, factor 8
	// and a 10ms floor, the threshold is 800ms.
	w2 := &stallWatch{factor: 8, min: 10 * time.Millisecond, last: time.Now().Add(-500 * time.Millisecond), total: 4, done: 2}
	w2.walls = []time.Duration{100 * time.Millisecond, 100 * time.Millisecond}
	if _, ok := w2.check(); ok {
		t.Fatal("500ms idle under an 800ms median-scaled threshold must not flag")
	}
	w2.last = time.Now().Add(-2 * time.Second)
	if rep, ok := w2.check(); !ok || rep.Median != 100*time.Millisecond {
		t.Fatalf("2s idle must flag with the median recorded: %+v ok=%v", rep, ok)
	}
	// A finished campaign never stalls.
	w3 := &stallWatch{factor: 8, min: time.Millisecond, last: time.Now().Add(-time.Hour), total: 2, done: 2}
	if _, ok := w3.check(); ok {
		t.Fatal("completed campaign must not flag")
	}
}

// The acceptance e2e: a campaign containing a panicking cell and a
// deadline-exceeding cell completes all other cells, writes a
// well-formed journal with typed failure events and a footer, and the
// summary carries per-kind counts.
func TestExecuteFaultContainmentEndToEnd(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	panicKey, slowKey := plan.Cells[0].Key, plan.Cells[3].Key
	inj := fault.New(1).
		EnableKeys(fault.CellPanic, 1, panicKey).
		EnableKeys(fault.CellSlow, 1, slowKey)
	inj.SlowFor = 10 * time.Second

	var buf bytes.Buffer
	dir := filepath.Join(t.TempDir(), "cache")
	sum, err := Execute(context.Background(), tinySpec(), RunConfig{
		Workers:     2,
		CacheDir:    dir,
		Journal:     &buf,
		CellTimeout: 500 * time.Millisecond,
		Retry:       &RetryPolicy{Max: 1, BaseDelay: time.Millisecond},
		Faults:      inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.Completed != 8 || sum.Sched.Errors != 2 || sum.Sched.Simulated != 6 {
		t.Fatalf("both faults cost one cell each: %+v", sum.Sched)
	}
	if sum.Sched.FailedKinds[string(KindPanic)] != 1 || sum.Sched.FailedKinds[string(KindTimeout)] != 1 {
		t.Fatalf("per-kind counts: %+v", sum.Sched.FailedKinds)
	}

	evs := readJournalStrict(t, buf.Bytes())
	end := evs[len(evs)-1]
	if end.Ev != EvEnd || end.Errors != 2 || end.Retries != 1 {
		t.Fatalf("footer: %+v", end)
	}
	kinds := map[string]int{}
	var retryEvents int
	for _, e := range evs {
		switch e.Ev {
		case EvCellDone:
			if e.Err != "" {
				kinds[e.ErrKind]++
			}
		case EvRetry:
			retryEvents++
			if e.Key != slowKey || e.ErrKind != string(KindTimeout) || e.Attempt != 1 {
				t.Fatalf("retry event: %+v", e)
			}
		}
	}
	if kinds[string(KindPanic)] != 1 || kinds[string(KindTimeout)] != 1 || retryEvents != 1 {
		t.Fatalf("journaled kinds %v, retries %d", kinds, retryEvents)
	}

	st, err := SummarizeJournal(evs)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Complete || st.Errors != 2 || st.ErrKinds[string(KindPanic)] != 1 || st.ErrKinds[string(KindTimeout)] != 1 || st.Retries != 1 {
		t.Fatalf("status: %+v", st)
	}
	text := st.Text()
	for _, want := range []string{"1 panic", "1 timeout", "failures:"} {
		if !strings.Contains(text, want) {
			t.Fatalf("status text missing %q:\n%s", want, text)
		}
	}

	// The good cells made it to the cache; the failed two did not.
	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := cache.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 6 {
		t.Fatalf("cache: %d entries, want the 6 successes", len(keys))
	}
}

package campaign

import (
	"context"
	"path/filepath"
	"testing"

	"microlib/internal/telemetry"
)

// Execute with a Metrics registry exposes the campaign and disk-cache
// gauges, and a post-run scrape reflects the finished state.
func TestExecuteRegistersMetrics(t *testing.T) {
	m := telemetry.NewMetrics()
	live := &LiveStats{}
	_, err := Execute(context.Background(), tinySpec(), RunConfig{
		CacheDir: filepath.Join(t.TempDir(), "cache"),
		Live:     live,
		Metrics:  m,
	})
	if err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	camp, ok := snap["campaign"].(LiveSnapshot)
	if !ok {
		t.Fatalf("campaign gauge missing or mistyped: %T", snap["campaign"])
	}
	if camp.Done != 8 || camp.Simulated != 8 || camp.Running != 0 {
		t.Fatalf("campaign gauge: %+v", camp)
	}
	disk, ok := snap["disk_cache"].(CacheCounters)
	if !ok {
		t.Fatalf("disk_cache gauge missing or mistyped: %T", snap["disk_cache"])
	}
	if disk.Puts != 8 || disk.Misses != 8 || disk.BytesWritten == 0 {
		t.Fatalf("disk_cache gauge: %+v", disk)
	}
}

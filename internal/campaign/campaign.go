package campaign

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"microlib/internal/fault"
	"microlib/internal/telemetry"
)

// RunConfig configures Execute.
type RunConfig struct {
	// Workers bounds concurrent simulations; <1 means GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, opens a persistent result cache
	// there (created if absent).
	CacheDir string
	// CheckpointDir, when non-empty, persists warm-state prefix
	// checkpoints there (created if absent), so later campaigns
	// sharing a warm-up prefix skip its simulation entirely.
	CheckpointDir string
	// NoWarm disables warm-state checkpointing; every cell then pays
	// its own skip and warm-up simulation. Warm execution is on by
	// default because restored cells are bit-identical to cold runs —
	// it changes wall-clock time, never results.
	NoWarm bool
	// OnProgress observes every finished cell.
	OnProgress func(Progress)
	// OnStart observes every distinct cell as a worker picks it up
	// (called concurrently; see Scheduler.OnStart).
	OnStart func(Cell)
	// Journal, when non-nil, receives the JSONL run journal (header,
	// per-cell start/finish, footer). The caller owns the writer.
	Journal io.Writer
	// Live, when non-nil, is updated throughout the run for a
	// metrics endpoint or progress display to snapshot.
	Live *LiveStats
	// Interval, together with IntervalDir, samples every freshly
	// simulated cell at this cycle granularity and writes each
	// series to IntervalDir/<fingerprint>.json. Cached cells carry
	// no series (their simulation already happened).
	Interval    uint64
	IntervalDir string
	// Metrics, when non-nil, gets the campaign gauges registered on
	// it (live progress under "campaign", disk-cache counters under
	// "disk_cache") for a -http endpoint to serve; a LiveStats is
	// created if cfg.Live is nil.
	Metrics *telemetry.Metrics

	// CellTimeout bounds each cell's wall time (0: fall back to the
	// spec's cell_timeout, then no deadline). See
	// Scheduler.CellTimeout.
	CellTimeout time.Duration
	// Retry, when non-nil, overrides the spec's retry policy for
	// transient failures; nil falls back to spec.Retry (then no
	// retries). See Scheduler.Retry.
	Retry *RetryPolicy
	// KnownFailures pre-resolves cells whose deterministic failure an
	// earlier run recorded (set by Resume). See
	// Scheduler.KnownFailures.
	KnownFailures map[string]CellResult
	// StallFactor arms the campaign stall watchdog (0 disables);
	// StallMin floors its threshold. See Scheduler.StallFactor.
	StallFactor float64
	StallMin    time.Duration
	// OnRetry, OnDegrade and OnStall observe fault-handling events in
	// addition to the journal (which records them automatically when
	// Journal is set). All may be called concurrently.
	OnRetry   func(RetryInfo)
	OnDegrade func(Degradation)
	OnStall   func(StallReport)
	// Faults, when non-nil, arms the fault-injection points across
	// scheduler, disk cache and journal writer. Testing and the
	// -faults flag only.
	Faults *fault.Injector
}

// Execute runs a whole campaign: normalize and expand the spec,
// schedule the cells, aggregate the results. On cancellation it
// returns the partial summary together with ctx's error; cells
// already simulated are in the cache, so re-executing with the same
// CacheDir resumes instead of recomputing.
func Execute(ctx context.Context, spec Spec, cfg RunConfig) (*Summary, error) {
	plan, err := NewPlan(spec)
	if err != nil {
		return nil, err
	}
	sched := &Scheduler{
		Workers:       cfg.Workers,
		OnProgress:    cfg.OnProgress,
		OnStart:       cfg.OnStart,
		Live:          cfg.Live,
		KnownFailures: cfg.KnownFailures,
		StallFactor:   cfg.StallFactor,
		StallMin:      cfg.StallMin,
		OnRetry:       cfg.OnRetry,
		OnDegrade:     cfg.OnDegrade,
		OnStall:       cfg.OnStall,
		Faults:        cfg.Faults,
	}
	// Fault-tolerance knobs: an explicit RunConfig value wins, the
	// spec's declaration is the fallback.
	sched.CellTimeout = cfg.CellTimeout
	if sched.CellTimeout == 0 {
		sched.CellTimeout = plan.Spec.CellTimeout.Std()
	}
	if cfg.Retry != nil {
		sched.Retry = *cfg.Retry
	} else {
		sched.Retry = plan.Spec.Retry.Policy()
	}
	var disk *DiskCache
	if cfg.CacheDir != "" {
		cache, err := OpenDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		cache.Faults = cfg.Faults
		// Read-side cache degradations (I/O errors, quarantined
		// corrupt entries) count into the same campaign counters as
		// the scheduler's own write-side ones.
		cache.OnDegrade = sched.Degrade
		sched.Cache = cache
		disk = cache
	}
	if !cfg.NoWarm {
		var store *CheckpointStore
		if cfg.CheckpointDir != "" {
			store, err = OpenCheckpointStore(cfg.CheckpointDir)
			if err != nil {
				return nil, err
			}
			store.OnDegrade = sched.Degrade
		}
		sched.Warm = NewWarm(store)
	}
	if cfg.Metrics != nil {
		if sched.Live == nil {
			sched.Live = &LiveStats{}
		}
		RegisterCampaignMetrics(cfg.Metrics, sched.Live, disk)
	}

	var jw *JournalWriter
	if cfg.Journal != nil {
		jw = NewJournalWriter(cfg.Journal)
		jw.Faults = cfg.Faults
		// Mirror the scheduler's worker clamp so the journal header
		// records the pool size actually used.
		workers := cfg.Workers
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(plan.Cells) && len(plan.Cells) > 0 {
			workers = len(plan.Cells)
		}
		jw.Begin(plan, workers, cfg.CacheDir)
		prevStart, prevProg := sched.OnStart, sched.OnProgress
		sched.OnStart = func(c Cell) {
			jw.CellStart(c)
			if prevStart != nil {
				prevStart(c)
			}
		}
		sched.OnProgress = func(p Progress) {
			jw.CellDone(p)
			if prevProg != nil {
				prevProg(p)
			}
		}
		prevRetry, prevDegrade, prevStall := sched.OnRetry, sched.OnDegrade, sched.OnStall
		sched.OnRetry = func(r RetryInfo) {
			jw.Retry(r)
			if prevRetry != nil {
				prevRetry(r)
			}
		}
		sched.OnDegrade = func(d Degradation) {
			jw.Degraded(d)
			if prevDegrade != nil {
				prevDegrade(d)
			}
		}
		sched.OnStall = func(r StallReport) {
			jw.Stall(r)
			if prevStall != nil {
				prevStall(r)
			}
		}
	}

	// Per-cell interval artifacts: the sink runs on worker
	// goroutines, so the first write error is recorded under a lock
	// and surfaced after the run instead of failing cells.
	var artErr error
	var artMu sync.Mutex
	if cfg.Interval > 0 && cfg.IntervalDir != "" {
		if err := os.MkdirAll(cfg.IntervalDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: interval dir: %w", err)
		}
		sched.Interval = cfg.Interval
		sched.IntervalSink = func(c Cell, ivs []telemetry.Interval) {
			err := writeIntervalArtifact(cfg.IntervalDir, c.Key, ivs)
			if err != nil {
				artMu.Lock()
				if artErr == nil {
					artErr = err
				}
				artMu.Unlock()
			}
		}
	}

	results, sstats, err := sched.Run(ctx, plan.Cells)
	if jw != nil {
		jw.End(sstats, err)
		if jerr := jw.Err(); err == nil && jerr != nil {
			err = fmt.Errorf("campaign: journal write: %w", jerr)
		}
	}
	if err == nil && artErr != nil {
		err = fmt.Errorf("campaign: interval artifact: %w", artErr)
	}
	return Aggregate(plan, results, sstats), err
}

// writeIntervalArtifact stores one cell's sampled series as
// <dir>/<fingerprint>.json, atomically via rename so a killed run
// never leaves a torn artifact next to good ones.
func writeIntervalArtifact(dir, key string, ivs []telemetry.Interval) error {
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	werr := telemetry.WriteIntervals(tmp, "json", ivs)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, key+".json"))
}

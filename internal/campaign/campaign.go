package campaign

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"microlib/internal/telemetry"
)

// RunConfig configures Execute.
type RunConfig struct {
	// Workers bounds concurrent simulations; <1 means GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, opens a persistent result cache
	// there (created if absent).
	CacheDir string
	// OnProgress observes every finished cell.
	OnProgress func(Progress)
	// OnStart observes every distinct cell as a worker picks it up
	// (called concurrently; see Scheduler.OnStart).
	OnStart func(Cell)
	// Journal, when non-nil, receives the JSONL run journal (header,
	// per-cell start/finish, footer). The caller owns the writer.
	Journal io.Writer
	// Live, when non-nil, is updated throughout the run for a
	// metrics endpoint or progress display to snapshot.
	Live *LiveStats
	// Interval, together with IntervalDir, samples every freshly
	// simulated cell at this cycle granularity and writes each
	// series to IntervalDir/<fingerprint>.json. Cached cells carry
	// no series (their simulation already happened).
	Interval    uint64
	IntervalDir string
	// Metrics, when non-nil, gets the campaign gauges registered on
	// it (live progress under "campaign", disk-cache counters under
	// "disk_cache") for a -http endpoint to serve; a LiveStats is
	// created if cfg.Live is nil.
	Metrics *telemetry.Metrics
}

// Execute runs a whole campaign: normalize and expand the spec,
// schedule the cells, aggregate the results. On cancellation it
// returns the partial summary together with ctx's error; cells
// already simulated are in the cache, so re-executing with the same
// CacheDir resumes instead of recomputing.
func Execute(ctx context.Context, spec Spec, cfg RunConfig) (*Summary, error) {
	plan, err := NewPlan(spec)
	if err != nil {
		return nil, err
	}
	sched := &Scheduler{Workers: cfg.Workers, OnProgress: cfg.OnProgress, OnStart: cfg.OnStart, Live: cfg.Live}
	var disk *DiskCache
	if cfg.CacheDir != "" {
		cache, err := OpenDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		sched.Cache = cache
		disk = cache
	}
	if cfg.Metrics != nil {
		if sched.Live == nil {
			sched.Live = &LiveStats{}
		}
		RegisterCampaignMetrics(cfg.Metrics, sched.Live, disk)
	}

	var jw *JournalWriter
	if cfg.Journal != nil {
		jw = NewJournalWriter(cfg.Journal)
		// Mirror the scheduler's worker clamp so the journal header
		// records the pool size actually used.
		workers := cfg.Workers
		if workers < 1 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(plan.Cells) && len(plan.Cells) > 0 {
			workers = len(plan.Cells)
		}
		jw.Begin(plan, workers, cfg.CacheDir)
		prevStart, prevProg := sched.OnStart, sched.OnProgress
		sched.OnStart = func(c Cell) {
			jw.CellStart(c)
			if prevStart != nil {
				prevStart(c)
			}
		}
		sched.OnProgress = func(p Progress) {
			jw.CellDone(p)
			if prevProg != nil {
				prevProg(p)
			}
		}
	}

	// Per-cell interval artifacts: the sink runs on worker
	// goroutines, so the first write error is recorded under a lock
	// and surfaced after the run instead of failing cells.
	var artErr error
	var artMu sync.Mutex
	if cfg.Interval > 0 && cfg.IntervalDir != "" {
		if err := os.MkdirAll(cfg.IntervalDir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: interval dir: %w", err)
		}
		sched.Interval = cfg.Interval
		sched.IntervalSink = func(c Cell, ivs []telemetry.Interval) {
			err := writeIntervalArtifact(cfg.IntervalDir, c.Key, ivs)
			if err != nil {
				artMu.Lock()
				if artErr == nil {
					artErr = err
				}
				artMu.Unlock()
			}
		}
	}

	results, sstats, err := sched.Run(ctx, plan.Cells)
	if jw != nil {
		jw.End(sstats, err)
		if jerr := jw.Err(); err == nil && jerr != nil {
			err = fmt.Errorf("campaign: journal write: %w", jerr)
		}
	}
	if err == nil && artErr != nil {
		err = fmt.Errorf("campaign: interval artifact: %w", artErr)
	}
	return Aggregate(plan, results, sstats), err
}

// writeIntervalArtifact stores one cell's sampled series as
// <dir>/<fingerprint>.json, atomically via rename so a killed run
// never leaves a torn artifact next to good ones.
func writeIntervalArtifact(dir, key string, ivs []telemetry.Interval) error {
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	werr := telemetry.WriteIntervals(tmp, "json", ivs)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, key+".json"))
}

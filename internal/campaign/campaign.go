package campaign

import "context"

// RunConfig configures Execute.
type RunConfig struct {
	// Workers bounds concurrent simulations; <1 means GOMAXPROCS.
	Workers int
	// CacheDir, when non-empty, opens a persistent result cache
	// there (created if absent).
	CacheDir string
	// OnProgress observes every finished cell.
	OnProgress func(Progress)
}

// Execute runs a whole campaign: normalize and expand the spec,
// schedule the cells, aggregate the results. On cancellation it
// returns the partial summary together with ctx's error; cells
// already simulated are in the cache, so re-executing with the same
// CacheDir resumes instead of recomputing.
func Execute(ctx context.Context, spec Spec, cfg RunConfig) (*Summary, error) {
	plan, err := NewPlan(spec)
	if err != nil {
		return nil, err
	}
	sched := &Scheduler{Workers: cfg.Workers, OnProgress: cfg.OnProgress}
	if cfg.CacheDir != "" {
		cache, err := OpenDiskCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		sched.Cache = cache
	}
	results, sstats, err := sched.Run(ctx, plan.Cells)
	return Aggregate(plan, results, sstats), err
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"microlib/internal/runner"
)

// Warm turns on warm-state checkpointing for a Scheduler: cells that
// share a warm-up prefix (same workload, seed, skip, warm-up and
// machine configuration — everything but the measured budget) pay for
// the prefix once. The first cell of a group simulates skip + warm-up
// and snapshots the machine at the warm-up boundary; every other cell
// restores the snapshot into its worker's reused machine arena and
// runs only its measurement phase. Restored cells are bit-identical
// to cold runs, so warm execution changes no result, fingerprint or
// cache entry — only wall-clock time.
//
// The warm layer is strictly an accelerator: any failure on the warm
// path (corrupt stored checkpoint, budget inside the fetch horizon,
// version skew, a restore panic) degrades that cell to the ordinary
// cold path, it never fails the cell.
type Warm struct {
	// Store, when non-nil, persists checkpoints across campaign runs,
	// keyed by prefix fingerprint. With a store, even a group of one
	// cell captures its prefix — the next campaign sharing the prefix
	// starts warm. Without one, checkpoints live only for the run and
	// only groups of two or more cells warrant the capture overhead.
	Store *CheckpointStore

	mu      sync.Mutex
	flights map[string]*ckptFlight
	// groups counts distinct plan cells per prefix fingerprint; written
	// once by prepare before the workers start, read-only after.
	groups map[string]int

	prefixRuns atomic.Uint64
	hits       atomic.Uint64
	misses     atomic.Uint64
}

// NewWarm returns a warm-checkpointing policy. store may be nil for
// in-memory-only operation.
func NewWarm(store *CheckpointStore) *Warm {
	return &Warm{Store: store}
}

// ckptFlight is the singleflight slot for one prefix fingerprint: the
// first cell to need the checkpoint builds it, concurrent cells of the
// same group wait on done instead of burning workers on identical
// prefixes.
type ckptFlight struct {
	done chan struct{}
	ck   *runner.Checkpoint
	err  error
}

// prepare indexes the plan's prefix groups. Duplicate plan cells
// (same fingerprint) are dispatched once by the scheduler, so they
// count once here too.
func (w *Warm) prepare(cells []Cell) {
	w.flights = make(map[string]*ckptFlight)
	w.groups = make(map[string]int)
	seen := make(map[string]bool, len(cells))
	for _, c := range cells {
		if seen[c.Key] || c.Opts.Warmup == 0 {
			continue
		}
		seen[c.Key] = true
		w.groups[c.Opts.PrefixFingerprint()]++
	}
}

// key returns the prefix fingerprint if the cell is worth running
// warm, or "" for the cold path. Sampled cells always run cold: the
// warm-up portion of an interval series cannot be reproduced from a
// post-warm-up snapshot.
func (w *Warm) key(opts runner.Options) string {
	if opts.Warmup == 0 {
		return ""
	}
	if opts.Interval > 0 && opts.IntervalSink != nil {
		return ""
	}
	pfp := opts.PrefixFingerprint()
	if w.Store == nil && w.groups[pfp] < 2 {
		return ""
	}
	return pfp
}

// checkpoint returns the group's checkpoint, building it exactly once
// per campaign run. A deterministic build failure is cached on the
// flight so later cells of the group skip straight to their cold runs;
// a context-canceled build is forgotten so a later cell (with a fresh
// per-cell deadline) can try again.
func (w *Warm) checkpoint(ctx context.Context, s *Scheduler, key string, opts runner.Options) (*runner.Checkpoint, error) {
	w.mu.Lock()
	if f, ok := w.flights[key]; ok {
		w.mu.Unlock()
		select {
		case <-f.done:
			return f.ck, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &ckptFlight{done: make(chan struct{})}
	w.flights[key] = f
	w.mu.Unlock()

	f.ck, f.err = w.build(ctx, s, key, opts)
	if f.err != nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
		w.mu.Lock()
		delete(w.flights, key)
		w.mu.Unlock()
	}
	close(f.done)
	return f.ck, f.err
}

// build produces the checkpoint for one prefix: from the store when a
// valid entry exists, by simulating the prefix otherwise. The prefix
// run is recover-protected — a capture panic degrades the group to
// cold runs (where the cold path will reproduce and classify it per
// cell) instead of killing the worker.
func (w *Warm) build(ctx context.Context, s *Scheduler, key string, opts runner.Options) (ck *runner.Checkpoint, err error) {
	if w.Store != nil {
		if ck, ok := w.Store.Get(key); ok {
			return ck, nil
		}
	}
	defer func() {
		if r := recover(); r != nil {
			ck, err = nil, &CellError{Kind: KindPanic, Msg: fmt.Sprint("prefix capture panic: ", r)}
		}
	}()
	ck, err = runner.RunPrefixContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	w.prefixRuns.Add(1)
	if w.Store != nil {
		if perr := w.Store.Put(key, ck); perr != nil {
			// Unpersisted checkpoints degrade the next campaign to a
			// prefix re-run, never this one's results.
			s.Degrade(Degradation{Op: "ckpt.put", Key: key, Err: perr})
		}
	}
	return ck, nil
}

// warmArena is a worker's reused machine: checkpoint restores fully
// overwrite the mutable state, so one machine serves every cell of a
// prefix group without reallocating caches, calendar or window.
type warmArena struct {
	prefix string
	m      *runner.Machine
}

// run restores the checkpoint into the arena's machine — rebuilding it
// only when the worker moved to a different prefix group — and runs the
// cell's measurement phase. Recover-protected: a panic on the warm path
// becomes an error, the caller drops the arena and the cell falls back
// to the cold path, which reproduces and classifies any real fault.
func (a *warmArena) run(ctx context.Context, opts runner.Options, ck *runner.Checkpoint) (res runner.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = runner.Result{}, &CellError{Kind: KindPanic, Msg: fmt.Sprint("warm restore panic: ", r)}
		}
	}()
	prefix := opts.PrefixCanonical()
	if a.m == nil || a.prefix != prefix {
		a.drop()
		m, merr := runner.NewCheckpointMachine(ctx, opts)
		if merr != nil {
			return runner.Result{}, merr
		}
		a.m, a.prefix = m, prefix
	}
	return a.m.RunFromCheckpoint(ctx, opts, ck)
}

// drop releases the arena's machine (if any).
func (a *warmArena) drop() {
	if a.m != nil {
		a.m.Close()
		a.m = nil
		a.prefix = ""
	}
}

// warmAttempt tries to serve one cell from a warm checkpoint. ok means
// the cell ran warm and full is its (bit-identical) result; !ok means
// the cell must run cold — because it is ineligible, the checkpoint
// could not be built, or the restore failed. Failures on this path are
// never surfaced as cell failures: the cold run either succeeds or
// reproduces the fault with its proper classification. (If the context
// is already dead, the cold path's own entry check returns its error
// immediately, so falling through costs nothing.)
func (s *Scheduler) warmAttempt(ctx context.Context, cell Cell, opts runner.Options, arena *warmArena) (runner.Result, bool) {
	w := s.Warm
	if w == nil || arena == nil {
		return runner.Result{}, false
	}
	key := w.key(opts)
	if key == "" {
		return runner.Result{}, false
	}
	ck, err := w.checkpoint(ctx, s, key, opts)
	if err != nil {
		w.misses.Add(1)
		return runner.Result{}, false
	}
	full, err := arena.run(ctx, opts, ck)
	if err != nil {
		// The machine may hold a half-restored state; rebuild next time.
		arena.drop()
		w.misses.Add(1)
		if !errors.Is(err, runner.ErrCheckpointUnusable) && ctx.Err() == nil {
			s.Degrade(Degradation{Op: "warm.restore", Key: cell.Key, Err: err})
		}
		return runner.Result{}, false
	}
	w.hits.Add(1)
	return full, true
}

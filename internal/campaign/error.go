package campaign

import (
	"errors"
	"fmt"
	"time"

	"microlib/internal/fault"
)

// ErrKind classifies a cell failure for the retry policy and the
// per-kind reporting in journals, status and exit summaries.
type ErrKind string

// The failure taxonomy. Deterministic kinds (model, panic) are never
// retried — a rerun of the same options fails the same way, which is
// also what lets duplicate plan cells and resumed campaigns share a
// recorded failure. Transient kinds (timeout, io) may succeed on a
// retry or on resume.
const (
	// KindModel is a deterministic simulation error: bad options that
	// slipped past plan validation, a damaged trace file, an unknown
	// mechanism on hand-built cells.
	KindModel ErrKind = "model"
	// KindPanic is a recovered simulation panic (the OoO core's
	// no-commit-progress watchdog, a model bug).
	KindPanic ErrKind = "panic"
	// KindTimeout is a cell that exceeded the scheduler's per-cell
	// deadline.
	KindTimeout ErrKind = "timeout"
	// KindIO is infrastructure I/O (cache or journal) failing, not
	// the simulation itself.
	KindIO ErrKind = "io"
)

// Transient reports whether a failure of this kind may succeed when
// simply tried again; only transient failures are retried.
func (k ErrKind) Transient() bool { return k == KindTimeout || k == KindIO }

// CellError is a classified cell failure. Stack is only set for
// recovered panics.
type CellError struct {
	Kind  ErrKind
	Msg   string
	Stack string
}

// Error implements error.
func (e *CellError) Error() string { return e.Msg }

// Classify maps an arbitrary cell failure onto the taxonomy. Errors
// the scheduler did not wrap itself — everything runner.RunContext
// returns on its own — are deterministic model errors.
func Classify(err error) ErrKind {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce.Kind
	}
	var fe *fault.Error
	if errors.As(err, &fe) {
		return KindIO
	}
	return KindModel
}

// ioErrorf builds a classified infrastructure I/O failure (transient:
// the retry policy may try it again, and resume treats it as
// recomputable). Worker-path code must use this — or errModelf — over
// naked fmt.Errorf so Classify never sees an unkinded error; mlvet's
// errkind analyzer enforces it.
func ioErrorf(format string, args ...any) *CellError {
	return &CellError{Kind: KindIO, Msg: fmt.Sprintf(format, args...)}
}

// errModelf builds a classified deterministic failure (contract
// violations, bad options): never retried, shareable across duplicate
// cells and resumes.
func errModelf(format string, args ...any) *CellError {
	return &CellError{Kind: KindModel, Msg: fmt.Sprintf(format, args...)}
}

// asCellError normalizes any cell failure into a *CellError so the
// journal and results always carry a kind.
func asCellError(err error) *CellError {
	var ce *CellError
	if errors.As(err, &ce) {
		return ce
	}
	return &CellError{Kind: Classify(err), Msg: err.Error()}
}

// RetryPolicy bounds transient-failure retries: up to Max extra
// attempts per operation, sleeping BaseDelay before the first retry
// and doubling (capped at 32×) before each later one. The zero value
// disables retries.
type RetryPolicy struct {
	Max       int           `json:"max"`
	BaseDelay time.Duration `json:"base_delay"`
}

// Delay returns the backoff before retry attempt n (1-based).
func (p RetryPolicy) Delay(attempt int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	shift := attempt - 1
	if shift > 5 {
		shift = 5
	}
	return p.BaseDelay << shift
}

// Degradation records a non-fatal infrastructure failure the campaign
// survived by degrading — a cache Put that could not persist (the
// cell recomputes next run), a quarantined corrupt entry, a failed
// layered-cache back-fill. Counted and journaled so a read-only or
// full cache directory is visible, not silent.
type Degradation struct {
	// Op names the degraded operation: "cache.put", "cache.get",
	// "cache.corrupt", "cache.backfill".
	Op  string
	Key string
	Err error
}

// RetryInfo describes one transient-failure retry, reported to
// Scheduler.OnRetry before the backoff sleep.
type RetryInfo struct {
	Cell    Cell
	Attempt int // 1-based retry number
	Err     error
	Kind    ErrKind
	Delay   time.Duration
}

// StallReport is the scheduler watchdog's flag: no cell has finished
// for Idle, which exceeds Threshold (StallFactor × the median
// completed-cell wall time, floored at StallMin).
type StallReport struct {
	Idle      time.Duration
	Threshold time.Duration
	Median    time.Duration
	Done      int
	Total     int
}

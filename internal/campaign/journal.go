package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"microlib/internal/telemetry"
)

// Journal event kinds, in the order a run emits them: one "start",
// then interleaved "cell_start"/"cell_done" per cell, then one "end".
// A journal whose last line is not an "end" event records a campaign
// that was killed hard (OOM, SIGKILL, power loss) mid-run.
const (
	EvStart     = "start"
	EvCellStart = "cell_start"
	EvCellDone  = "cell_done"
	EvEnd       = "end"
)

// JournalEvent is one line of a campaign run journal. A single struct
// covers all four kinds; fields not applicable to a kind are omitted
// from its JSON. Journals are JSONL so a crashed run still leaves
// every completed line readable.
type JournalEvent struct {
	Ev   string `json:"ev"`
	Time string `json:"t"` // RFC3339Nano, host clock

	// start
	Campaign string `json:"campaign,omitempty"`
	Plan     string `json:"plan,omitempty"` // plan fingerprint
	Cells    int    `json:"cells,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	CacheDir string `json:"cache_dir,omitempty"`

	// cell_start and cell_done identify the cell
	Key   string `json:"key,omitempty"` // options fingerprint
	Index int    `json:"index,omitempty"`
	Bench string `json:"bench,omitempty"`
	Mech  string `json:"mech,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`

	// cell_done
	Source      string  `json:"source,omitempty"` // "sim" or "cache"
	WallMS      float64 `json:"wall_ms,omitempty"`
	Insts       uint64  `json:"insts,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
	Err         string  `json:"err,omitempty"`
	Done        int     `json:"done,omitempty"`

	// end
	Completed   int     `json:"completed,omitempty"`
	CacheHits   int     `json:"cache_hits,omitempty"`
	Simulated   int     `json:"simulated,omitempty"`
	Errors      int     `json:"errors,omitempty"`
	Aborted     bool    `json:"aborted,omitempty"`
	AbortReason string  `json:"abort_reason,omitempty"`
	WallS       float64 `json:"wall_s,omitempty"`
}

// JournalWriter appends run-journal events as JSONL. Begin/CellStart/
// CellDone/End map onto the scheduler's lifecycle; CellStart and
// CellDone may be called concurrently (the underlying writer
// serializes lines). Write errors are sticky — check Err once at the
// end instead of at every event.
type JournalWriter struct {
	w     *telemetry.JSONL
	start time.Time
}

// NewJournalWriter wraps w; the caller keeps ownership of w (close
// the file yourself after End).
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{w: telemetry.NewJSONL(w)}
}

func stamp() string { return time.Now().Format(time.RFC3339Nano) }

// Begin records the run header: which campaign, which exact plan
// (fingerprint), how many cells, how wide the pool is.
func (j *JournalWriter) Begin(plan *Plan, workers int, cacheDir string) {
	j.start = time.Now()
	j.w.Write(JournalEvent{
		Ev:       EvStart,
		Time:     stamp(),
		Campaign: plan.Spec.Name,
		Plan:     plan.Fingerprint(),
		Cells:    len(plan.Cells),
		Workers:  workers,
		CacheDir: cacheDir,
	})
}

// CellStart records a worker picking up a distinct cell.
func (j *JournalWriter) CellStart(c Cell) {
	j.w.Write(JournalEvent{
		Ev:    EvCellStart,
		Time:  stamp(),
		Key:   c.Key,
		Index: c.Index,
		Bench: c.Bench(),
		Mech:  c.Mech(),
		Seed:  c.Seed(),
	})
}

// CellDone records a finished cell: where the result came from, how
// long the simulation took, and how fast it ran.
func (j *JournalWriter) CellDone(p Progress) {
	e := JournalEvent{
		Ev:     EvCellDone,
		Time:   stamp(),
		Key:    p.Cell.Key,
		Index:  p.Cell.Index,
		Bench:  p.Cell.Bench(),
		Mech:   p.Cell.Mech(),
		Seed:   p.Cell.Seed(),
		Source: "sim",
		Done:   p.Done,
	}
	if p.FromCache {
		e.Source = "cache"
	}
	if p.Err != nil {
		e.Err = p.Err.Error()
	}
	if p.Wall > 0 {
		e.WallMS = float64(p.Wall.Nanoseconds()) / 1e6
		e.Insts = p.Insts
		if sec := p.Wall.Seconds(); sec > 0 && p.Insts > 0 {
			e.InstsPerSec = float64(p.Insts) / sec
		}
	}
	j.w.Write(e)
}

// End records the run footer. A non-nil abortErr marks the campaign
// as interrupted (cancellation, deadline): the cells already in the
// cache make a rerun resume, and status reports the journal as
// aborted rather than complete.
func (j *JournalWriter) End(stats SchedulerStats, abortErr error) {
	e := JournalEvent{
		Ev:        EvEnd,
		Time:      stamp(),
		Cells:     stats.Total,
		Completed: stats.Completed,
		CacheHits: stats.CacheHits,
		Simulated: stats.Simulated,
		Errors:    stats.Errors,
	}
	if !j.start.IsZero() {
		e.WallS = time.Since(j.start).Seconds()
	}
	if abortErr != nil {
		e.Aborted = true
		e.AbortReason = abortErr.Error()
	}
	j.w.Write(e)
}

// Err reports the first write error, if any.
func (j *JournalWriter) Err() error { return j.w.Err() }

// ReadJournal parses a run journal back into its events. Blank lines
// are skipped; a malformed line fails with its line number.
func ReadJournal(r io.Reader) ([]JournalEvent, error) {
	var evs []JournalEvent
	err := telemetry.ReadJSONL(r, func(line []byte) error {
		var e JournalEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		evs = append(evs, e)
		return nil
	})
	return evs, err
}

// JournalStatus is the digest `mlcampaign status` prints: what the
// journal says happened, plus derived throughput.
type JournalStatus struct {
	Campaign string
	Plan     string
	Cells    int
	Workers  int
	CacheDir string

	Started time.Time
	Ended   time.Time // zero when the journal has no end event

	Done      int
	CacheHits int
	Simulated int
	Errors    int
	Insts     uint64
	// SimWall is the summed per-cell simulation wall time (can exceed
	// Elapsed: workers run in parallel).
	SimWall time.Duration

	// Complete is true when the journal carries an end event; a
	// journal without one belongs to a run that is still going or was
	// killed without winding down.
	Complete    bool
	Aborted     bool
	AbortReason string
	WallS       float64

	// Slowest holds the highest-wall-time simulated cells, slowest
	// first (at most five).
	Slowest []JournalEvent
	// Failures holds every cell_done event with an error.
	Failures []JournalEvent
}

// SummarizeJournal digests a parsed journal. It tolerates truncated
// journals (no end event) — that is precisely the case status exists
// to diagnose — but rejects an empty one.
func SummarizeJournal(evs []JournalEvent) (JournalStatus, error) {
	if len(evs) == 0 {
		return JournalStatus{}, fmt.Errorf("campaign: journal is empty")
	}
	var st JournalStatus
	for _, e := range evs {
		switch e.Ev {
		case EvStart:
			st.Campaign = e.Campaign
			st.Plan = e.Plan
			st.Cells = e.Cells
			st.Workers = e.Workers
			st.CacheDir = e.CacheDir
			st.Started, _ = time.Parse(time.RFC3339Nano, e.Time)
		case EvCellDone:
			st.Done++
			switch {
			case e.Err != "":
				st.Errors++
				st.Failures = append(st.Failures, e)
			case e.Source == "cache":
				st.CacheHits++
			default:
				st.Simulated++
			}
			st.Insts += e.Insts
			st.SimWall += time.Duration(e.WallMS * 1e6)
			if e.Source == "sim" && e.Err == "" {
				st.Slowest = append(st.Slowest, e)
			}
		case EvEnd:
			st.Complete = true
			st.Aborted = e.Aborted
			st.AbortReason = e.AbortReason
			st.WallS = e.WallS
			st.Ended, _ = time.Parse(time.RFC3339Nano, e.Time)
			// The footer's authoritative totals win over per-line
			// counting if they ever disagree (they should not).
			st.Done = e.Completed
			st.CacheHits = e.CacheHits
			st.Simulated = e.Simulated
			st.Errors = e.Errors
		}
	}
	sort.SliceStable(st.Slowest, func(i, k int) bool { return st.Slowest[i].WallMS > st.Slowest[k].WallMS })
	if len(st.Slowest) > 5 {
		st.Slowest = st.Slowest[:5]
	}
	return st, nil
}

// Text renders the status digest for the terminal.
func (st JournalStatus) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q  plan %s\n", st.Campaign, shortKey(st.Plan))
	fmt.Fprintf(&b, "cells     %d/%d done: %d simulated, %d cached, %d failed\n",
		st.Done, st.Cells, st.Simulated, st.CacheHits, st.Errors)
	if st.Done > 0 {
		fmt.Fprintf(&b, "cache     %.1f%% hit rate\n", 100*float64(st.CacheHits)/float64(st.Done))
	}
	switch {
	case !st.Complete:
		fmt.Fprintf(&b, "state     NO END EVENT — run still in progress or killed hard\n")
	case st.Aborted:
		fmt.Fprintf(&b, "state     aborted after %.2fs: %s\n", st.WallS, st.AbortReason)
	default:
		fmt.Fprintf(&b, "state     completed in %.2fs\n", st.WallS)
	}
	if st.WallS > 0 && st.Done > 0 {
		fmt.Fprintf(&b, "rate      %.2f cells/s", float64(st.Done)/st.WallS)
		if st.Insts > 0 {
			fmt.Fprintf(&b, ", %.0f insts/s aggregate", float64(st.Insts)/st.WallS)
		}
		b.WriteByte('\n')
	}
	if len(st.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest cells:\n")
		for _, e := range st.Slowest {
			fmt.Fprintf(&b, "  %9.1fms  %s/%s seed=%d  (%s)\n", e.WallMS, e.Bench, e.Mech, e.Seed, shortKey(e.Key))
		}
	}
	if len(st.Failures) > 0 {
		fmt.Fprintf(&b, "failures:\n")
		for _, e := range st.Failures {
			fmt.Fprintf(&b, "  %s/%s seed=%d: %s\n", e.Bench, e.Mech, e.Seed, e.Err)
		}
	}
	return b.String()
}

// shortKey abbreviates a fingerprint for display.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	if k == "" {
		return "?"
	}
	return k
}

package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"microlib/internal/fault"
	"microlib/internal/telemetry"
)

// Journal event kinds. A run emits one "start", then interleaved
// "cell_start"/"cell_done" (with "retry"/"degraded"/"stall" woven in
// as they happen), then one "end". A resumed campaign appends a
// "resume" marker and a fresh start/…/end sequence to the same file.
// A journal whose last run has no "end" event records a campaign that
// was killed hard (OOM, SIGKILL, power loss) mid-run.
const (
	EvStart     = "start"
	EvCellStart = "cell_start"
	EvCellDone  = "cell_done"
	EvRetry     = "retry"
	EvDegraded  = "degraded"
	EvStall     = "stall"
	EvResume    = "resume"
	EvEnd       = "end"
)

// JournalEvent is one line of a campaign run journal. A single struct
// covers all kinds; fields not applicable to a kind are omitted from
// its JSON. Journals are JSONL so a crashed run still leaves every
// completed line readable.
type JournalEvent struct {
	Ev   string `json:"ev"`
	Time string `json:"t"` // RFC3339Nano, host clock

	// start
	Campaign string `json:"campaign,omitempty"`
	Plan     string `json:"plan,omitempty"` // plan fingerprint
	Cells    int    `json:"cells,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	CacheDir string `json:"cache_dir,omitempty"`
	// Spec is the normalized campaign spec, embedded verbatim so
	// `mlcampaign resume <journal>` can rebuild the exact plan from
	// the journal alone; BaseDir anchors its trace paths.
	Spec    json.RawMessage `json:"spec,omitempty"`
	BaseDir string          `json:"base_dir,omitempty"`

	// cell_start, cell_done, retry and degraded identify the cell
	Key   string `json:"key,omitempty"` // options fingerprint
	Index int    `json:"index,omitempty"`
	Bench string `json:"bench,omitempty"`
	Mech  string `json:"mech,omitempty"`
	Seed  uint64 `json:"seed,omitempty"`

	// cell_done
	Source      string  `json:"source,omitempty"` // "sim", "cache" or "journal"
	WallMS      float64 `json:"wall_ms,omitempty"`
	Insts       uint64  `json:"insts,omitempty"`
	InstsPerSec float64 `json:"insts_per_sec,omitempty"`
	Err         string  `json:"err,omitempty"`
	ErrKind     string  `json:"err_kind,omitempty"` // taxonomy kind when Err is set
	Stack       string  `json:"stack,omitempty"`    // recovered panic stack
	Attempts    int     `json:"attempts,omitempty"` // retries consumed
	Done        int     `json:"done,omitempty"`

	// retry
	Attempt int     `json:"attempt,omitempty"` // 1-based retry number
	DelayMS float64 `json:"delay_ms,omitempty"`

	// degraded
	Op string `json:"op,omitempty"` // e.g. "cache.put", "cache.corrupt"

	// stall
	IdleMS      float64 `json:"idle_ms,omitempty"`
	ThresholdMS float64 `json:"threshold_ms,omitempty"`

	// resume
	Recovered int `json:"recovered,omitempty"` // cells reconstructed from journal+cache
	Remaining int `json:"remaining,omitempty"`

	// end
	Completed   int            `json:"completed,omitempty"`
	CacheHits   int            `json:"cache_hits,omitempty"`
	Simulated   int            `json:"simulated,omitempty"`
	Errors      int            `json:"errors,omitempty"`
	FailedKinds map[string]int `json:"failed_kinds,omitempty"`
	Retries     int            `json:"retries,omitempty"`
	Degraded    int            `json:"degraded,omitempty"`
	Stalls      int            `json:"stalls,omitempty"`
	Aborted     bool           `json:"aborted,omitempty"`
	AbortReason string         `json:"abort_reason,omitempty"`
	WallS       float64        `json:"wall_s,omitempty"`
}

// JournalWriter appends run-journal events as JSONL. Begin/CellStart/
// CellDone/End map onto the scheduler's lifecycle; the per-cell and
// fault events may be called concurrently (the underlying writer
// serializes lines). Write errors are sticky — check Err once at the
// end instead of at every event.
type JournalWriter struct {
	w     *telemetry.JSONL
	start time.Time

	// Faults, when non-nil, arms the journal.write.error injection
	// point: a fired write poisons the writer with a sticky injected
	// error, simulating its disk filling mid-run.
	Faults *fault.Injector
}

// NewJournalWriter wraps w; the caller keeps ownership of w (close
// the file yourself after End).
func NewJournalWriter(w io.Writer) *JournalWriter {
	return &JournalWriter{w: telemetry.NewJSONL(w)}
}

func stamp() string { return time.Now().Format(time.RFC3339Nano) }

func (j *JournalWriter) write(e JournalEvent) {
	if err := j.Faults.FireErr(fault.JournalWrite, e.Ev); err != nil {
		j.w.Fail(err)
	}
	j.w.Write(e)
}

// Begin records the run header: which campaign, which exact plan
// (fingerprint), how many cells, how wide the pool is — and the
// normalized spec itself, so a resume can rebuild the plan from the
// journal alone.
func (j *JournalWriter) Begin(plan *Plan, workers int, cacheDir string) {
	j.start = time.Now()
	e := JournalEvent{
		Ev:       EvStart,
		Time:     stamp(),
		Campaign: plan.Spec.Name,
		Plan:     plan.Fingerprint(),
		Cells:    len(plan.Cells),
		Workers:  workers,
		CacheDir: cacheDir,
		BaseDir:  plan.Spec.BaseDir(),
	}
	if spec, err := json.Marshal(plan.Spec); err == nil {
		e.Spec = spec
	}
	j.write(e)
}

// Resume records that a new run is continuing this journal:
// recovered cells were reconstructed from the journal + cache,
// remaining still need simulation. Written before the new run's
// Begin.
func (j *JournalWriter) Resume(plan *Plan, recovered, remaining int) {
	j.write(JournalEvent{
		Ev:        EvResume,
		Time:      stamp(),
		Campaign:  plan.Spec.Name,
		Plan:      plan.Fingerprint(),
		Recovered: recovered,
		Remaining: remaining,
	})
}

// CellStart records a worker picking up a distinct cell.
func (j *JournalWriter) CellStart(c Cell) {
	j.write(JournalEvent{
		Ev:    EvCellStart,
		Time:  stamp(),
		Key:   c.Key,
		Index: c.Index,
		Bench: c.Bench(),
		Mech:  c.Mech(),
		Seed:  c.Seed(),
	})
}

// CellDone records a finished cell: where the result came from, how
// long the simulation took, how fast it ran — and, for failures, the
// taxonomy kind plus (for panics) the recovered stack.
func (j *JournalWriter) CellDone(p Progress) {
	e := JournalEvent{
		Ev:       EvCellDone,
		Time:     stamp(),
		Key:      p.Cell.Key,
		Index:    p.Cell.Index,
		Bench:    p.Cell.Bench(),
		Mech:     p.Cell.Mech(),
		Seed:     p.Cell.Seed(),
		Source:   p.Source,
		Done:     p.Done,
		Attempts: p.Attempts,
	}
	if e.Source == "" {
		e.Source = "sim"
		if p.FromCache {
			e.Source = "cache"
		}
	}
	if p.Err != nil {
		e.Err = p.Err.Error()
		e.ErrKind = string(Classify(p.Err))
		var ce *CellError
		if errors.As(p.Err, &ce) {
			e.Stack = ce.Stack
		}
	}
	if p.Wall > 0 {
		e.WallMS = float64(p.Wall.Nanoseconds()) / 1e6
		e.Insts = p.Insts
		if sec := p.Wall.Seconds(); sec > 0 && p.Insts > 0 {
			e.InstsPerSec = float64(p.Insts) / sec
		}
	}
	j.write(e)
}

// Retry records one transient-failure retry before its backoff.
func (j *JournalWriter) Retry(r RetryInfo) {
	j.write(JournalEvent{
		Ev:      EvRetry,
		Time:    stamp(),
		Key:     r.Cell.Key,
		Index:   r.Cell.Index,
		Bench:   r.Cell.Bench(),
		Mech:    r.Cell.Mech(),
		Seed:    r.Cell.Seed(),
		Attempt: r.Attempt,
		Err:     r.Err.Error(),
		ErrKind: string(r.Kind),
		DelayMS: float64(r.Delay.Nanoseconds()) / 1e6,
	})
}

// Degraded records one non-fatal infrastructure failure the campaign
// survived (unpersisted cache entry, quarantined corrupt cell, …).
func (j *JournalWriter) Degraded(d Degradation) {
	e := JournalEvent{
		Ev:   EvDegraded,
		Time: stamp(),
		Op:   d.Op,
		Key:  d.Key,
	}
	if d.Err != nil {
		e.Err = d.Err.Error()
	}
	j.write(e)
}

// Stall records the scheduler watchdog flagging a stalled campaign.
func (j *JournalWriter) Stall(r StallReport) {
	j.write(JournalEvent{
		Ev:          EvStall,
		Time:        stamp(),
		IdleMS:      float64(r.Idle.Nanoseconds()) / 1e6,
		ThresholdMS: float64(r.Threshold.Nanoseconds()) / 1e6,
		Done:        r.Done,
		Cells:       r.Total,
	})
}

// End records the run footer. A non-nil abortErr marks the campaign
// as interrupted (cancellation, deadline): the cells already in the
// cache make a rerun resume, and status reports the journal as
// aborted rather than complete.
func (j *JournalWriter) End(stats SchedulerStats, abortErr error) {
	e := JournalEvent{
		Ev:          EvEnd,
		Time:        stamp(),
		Cells:       stats.Total,
		Completed:   stats.Completed,
		CacheHits:   stats.CacheHits,
		Simulated:   stats.Simulated,
		Errors:      stats.Errors,
		FailedKinds: stats.FailedKinds,
		Retries:     stats.Retries,
		Degraded:    stats.Degraded,
	}
	if !j.start.IsZero() {
		e.WallS = time.Since(j.start).Seconds()
	}
	if abortErr != nil {
		e.Aborted = true
		e.AbortReason = abortErr.Error()
	}
	j.write(e)
}

// Err reports the first write error, if any.
func (j *JournalWriter) Err() error { return j.w.Err() }

// ReadJournal parses a run journal back into its events. Blank lines
// are skipped; a malformed line mid-file fails with its line number,
// but a torn final line — the signature of a run killed mid-write —
// is tolerated: the intact events are returned along with a
// *telemetry.TornTailError describing the debris, so resume and
// status work on exactly the journals crashes leave behind.
func ReadJournal(r io.Reader) ([]JournalEvent, error) {
	var evs []JournalEvent
	err := telemetry.ReadJSONL(r, func(line []byte) error {
		var e JournalEvent
		if err := json.Unmarshal(line, &e); err != nil {
			return err
		}
		evs = append(evs, e)
		return nil
	})
	var torn *telemetry.TornTailError
	if errors.As(err, &torn) {
		return evs, torn
	}
	if err != nil {
		return nil, err
	}
	return evs, nil
}

// JournalStatus is the digest `mlcampaign status` prints: what the
// journal says happened, plus derived throughput. For a resumed
// journal (multiple start events) the per-run counters describe the
// latest run; Resumes counts the continuations.
type JournalStatus struct {
	Campaign string `json:"campaign"`
	Plan     string `json:"plan"`
	Cells    int    `json:"cells"`
	Workers  int    `json:"workers"`
	CacheDir string `json:"cache_dir,omitempty"`

	Started time.Time `json:"started"`
	Ended   time.Time `json:"ended"` // zero when the journal has no end event

	Done      int            `json:"done"`
	CacheHits int            `json:"cache_hits"`
	Simulated int            `json:"simulated"`
	Errors    int            `json:"errors"`
	ErrKinds  map[string]int `json:"err_kinds,omitempty"`
	Retries   int            `json:"retries,omitempty"`
	Degraded  int            `json:"degraded,omitempty"`
	Stalls    int            `json:"stalls,omitempty"`
	Resumes   int            `json:"resumes,omitempty"`
	Torn      bool           `json:"torn,omitempty"` // journal ended in a torn line
	Insts     uint64         `json:"insts"`
	// SimWall is the summed per-cell simulation wall time (can exceed
	// Elapsed: workers run in parallel).
	SimWall time.Duration `json:"sim_wall_ns"`

	// Complete is true when the journal carries an end event; a
	// journal without one belongs to a run that is still going or was
	// killed without winding down.
	Complete    bool    `json:"complete"`
	Aborted     bool    `json:"aborted,omitempty"`
	AbortReason string  `json:"abort_reason,omitempty"`
	WallS       float64 `json:"wall_s"`

	// Slowest holds the highest-wall-time simulated cells, slowest
	// first (at most five).
	Slowest []JournalEvent `json:"slowest,omitempty"`
	// Failures holds every cell_done event with an error.
	Failures []JournalEvent `json:"failures,omitempty"`
}

// SummarizeJournal digests a parsed journal. It tolerates truncated
// journals (no end event) — that is precisely the case status exists
// to diagnose — but rejects an empty one. A resumed journal holds
// several start/…/end runs; each start resets the per-run counters so
// the digest describes the latest (usually most complete) run.
func SummarizeJournal(evs []JournalEvent) (JournalStatus, error) {
	if len(evs) == 0 {
		return JournalStatus{}, fmt.Errorf("campaign: journal is empty")
	}
	var st JournalStatus
	for _, e := range evs {
		switch e.Ev {
		case EvStart:
			resumes := st.Resumes
			st = JournalStatus{Resumes: resumes}
			st.Campaign = e.Campaign
			st.Plan = e.Plan
			st.Cells = e.Cells
			st.Workers = e.Workers
			st.CacheDir = e.CacheDir
			st.Started, _ = time.Parse(time.RFC3339Nano, e.Time)
		case EvResume:
			st.Resumes++
		case EvRetry:
			st.Retries++
		case EvDegraded:
			st.Degraded++
		case EvStall:
			st.Stalls++
		case EvCellDone:
			st.Done++
			switch {
			case e.Err != "":
				st.Errors++
				st.countKind(e.ErrKind)
				st.Failures = append(st.Failures, e)
			case e.Source == "cache":
				st.CacheHits++
			default:
				st.Simulated++
			}
			st.Insts += e.Insts
			st.SimWall += time.Duration(e.WallMS * 1e6)
			if e.Source == "sim" && e.Err == "" {
				st.Slowest = append(st.Slowest, e)
			}
		case EvEnd:
			st.Complete = true
			st.Aborted = e.Aborted
			st.AbortReason = e.AbortReason
			st.WallS = e.WallS
			st.Ended, _ = time.Parse(time.RFC3339Nano, e.Time)
			// The footer's authoritative totals win over per-line
			// counting if they ever disagree (they should not).
			st.Done = e.Completed
			st.CacheHits = e.CacheHits
			st.Simulated = e.Simulated
			st.Errors = e.Errors
			if len(e.FailedKinds) > 0 {
				st.ErrKinds = e.FailedKinds
			}
			st.Retries = e.Retries
			st.Degraded = e.Degraded
		}
	}
	sort.SliceStable(st.Slowest, func(i, k int) bool { return st.Slowest[i].WallMS > st.Slowest[k].WallMS })
	if len(st.Slowest) > 5 {
		st.Slowest = st.Slowest[:5]
	}
	return st, nil
}

func (st *JournalStatus) countKind(kind string) {
	if st.ErrKinds == nil {
		st.ErrKinds = map[string]int{}
	}
	if kind == "" {
		kind = string(KindModel)
	}
	st.ErrKinds[kind]++
}

// Text renders the status digest for the terminal.
func (st JournalStatus) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %q  plan %s\n", st.Campaign, shortKey(st.Plan))
	if st.Resumes > 0 {
		fmt.Fprintf(&b, "resumes   %d (latest run shown)\n", st.Resumes)
	}
	fmt.Fprintf(&b, "cells     %d/%d done: %d simulated, %d cached, %d failed\n",
		st.Done, st.Cells, st.Simulated, st.CacheHits, st.Errors)
	if len(st.ErrKinds) > 0 {
		kinds := make([]string, 0, len(st.ErrKinds))
		for k := range st.ErrKinds {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		parts := make([]string, len(kinds))
		for i, k := range kinds {
			parts[i] = fmt.Sprintf("%d %s", st.ErrKinds[k], k)
		}
		fmt.Fprintf(&b, "failed    %s\n", strings.Join(parts, ", "))
	}
	if st.Done > 0 {
		fmt.Fprintf(&b, "cache     %.1f%% hit rate\n", 100*float64(st.CacheHits)/float64(st.Done))
	}
	if st.Retries > 0 || st.Degraded > 0 || st.Stalls > 0 {
		fmt.Fprintf(&b, "faults    %d retries, %d degradations, %d stall flags\n",
			st.Retries, st.Degraded, st.Stalls)
	}
	switch {
	case !st.Complete && st.Torn:
		fmt.Fprintf(&b, "state     TORN TAIL, NO END EVENT — killed mid-write; resumable\n")
	case !st.Complete:
		fmt.Fprintf(&b, "state     NO END EVENT — run still in progress or killed hard\n")
	case st.Aborted:
		fmt.Fprintf(&b, "state     aborted after %.2fs: %s\n", st.WallS, st.AbortReason)
	default:
		fmt.Fprintf(&b, "state     completed in %.2fs\n", st.WallS)
	}
	if st.WallS > 0 && st.Done > 0 {
		fmt.Fprintf(&b, "rate      %.2f cells/s", float64(st.Done)/st.WallS)
		if st.Insts > 0 {
			fmt.Fprintf(&b, ", %.0f insts/s aggregate", float64(st.Insts)/st.WallS)
		}
		b.WriteByte('\n')
	}
	if len(st.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest cells:\n")
		for _, e := range st.Slowest {
			fmt.Fprintf(&b, "  %9.1fms  %s/%s seed=%d  (%s)\n", e.WallMS, e.Bench, e.Mech, e.Seed, shortKey(e.Key))
		}
	}
	if len(st.Failures) > 0 {
		fmt.Fprintf(&b, "failures:\n")
		for _, e := range st.Failures {
			kind := e.ErrKind
			if kind == "" {
				kind = string(KindModel)
			}
			fmt.Fprintf(&b, "  [%s] %s/%s seed=%d: %s\n", kind, e.Bench, e.Mech, e.Seed, e.Err)
		}
	}
	return b.String()
}

// shortKey abbreviates a fingerprint for display.
func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	if k == "" {
		return "?"
	}
	return k
}

package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"microlib/internal/runner"
)

// Fingerprint identifies the whole plan: a hash over the ordered
// cell keys plus the runner fingerprint format version. Two plans
// with equal fingerprints request bit-identical campaigns, so their
// cache entries are interchangeable.
func (p *Plan) Fingerprint() string {
	h := sha256.New()
	fmt.Fprintf(h, "plan-v%d:%d\n", runner.FingerprintVersion, len(p.Cells))
	for _, c := range p.Cells {
		h.Write([]byte(c.Key))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

package campaign

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"microlib/internal/runner"
)

// CheckpointStore persists warm-state prefix checkpoints under one
// directory, one gob file per prefix fingerprint — the content address
// of everything that shapes the simulation up to the warm-up boundary.
// It follows the DiskCache contract: writes go through a temp file and
// an atomic rename, a torn or corrupt entry reads as a miss and is
// quarantined to <key>.corrupt, and concurrent workers are safe.
// Unlike cell results, checkpoints are pure accelerators: losing one
// costs a prefix re-simulation, never a wrong number — every restore
// is bit-identical to the cold run it replaces.
type CheckpointStore struct {
	dir string

	// OnDegrade, when non-nil, observes read errors and corrupt-entry
	// quarantines (ops "ckpt.get", "ckpt.corrupt"). Set before the
	// store is shared across goroutines.
	OnDegrade func(Degradation)

	hits         atomic.Uint64
	misses       atomic.Uint64
	puts         atomic.Uint64
	corrupt      atomic.Uint64
	bytesRead    atomic.Uint64
	bytesWritten atomic.Uint64
}

// CheckpointStoreCounters is a snapshot of a store's access statistics
// since it was opened.
type CheckpointStoreCounters struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Puts         uint64 `json:"puts"`
	Corrupt      uint64 `json:"corrupt,omitempty"`
	BytesRead    uint64 `json:"bytes_read"`
	BytesWritten uint64 `json:"bytes_written"`
}

// OpenCheckpointStore creates (if needed) and opens a checkpoint
// directory.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint store: %w", err)
	}
	return &CheckpointStore{dir: dir}, nil
}

// Dir returns the store directory.
func (s *CheckpointStore) Dir() string { return s.dir }

// Counters returns the access statistics accumulated since the store
// was opened. Safe to call concurrently with Get/Put.
func (s *CheckpointStore) Counters() CheckpointStoreCounters {
	return CheckpointStoreCounters{
		Hits:         s.hits.Load(),
		Misses:       s.misses.Load(),
		Puts:         s.puts.Load(),
		Corrupt:      s.corrupt.Load(),
		BytesRead:    s.bytesRead.Load(),
		BytesWritten: s.bytesWritten.Load(),
	}
}

func (s *CheckpointStore) path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

func (s *CheckpointStore) degrade(d Degradation) {
	if s.OnDegrade != nil {
		s.OnDegrade(d)
	}
}

// Get returns the stored checkpoint for a prefix fingerprint, if
// present, intact, and produced by the current checkpoint format. A
// corrupt entry — undecodable bytes, or a checkpoint whose embedded
// canonical prefix does not hash back to its key — is quarantined and
// served as a miss; a version-skewed entry is just a miss (the next
// Put overwrites it).
func (s *CheckpointStore) Get(key string) (*runner.Checkpoint, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		s.misses.Add(1)
		if !os.IsNotExist(err) {
			s.degrade(Degradation{Op: "ckpt.get", Key: key, Err: err})
		}
		return nil, false
	}
	var ck runner.Checkpoint
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(&ck); derr != nil || runner.CanonicalKey(ck.Prefix) != key {
		s.misses.Add(1)
		s.corrupt.Add(1)
		if derr == nil {
			derr = ioErrorf("campaign: checkpoint %s holds prefix %q", key, ck.Prefix)
		}
		if qerr := os.Rename(s.path(key), filepath.Join(s.dir, key+".corrupt")); qerr != nil {
			derr = ioErrorf("%v (quarantine failed: %v)", derr, qerr)
		}
		s.degrade(Degradation{Op: "ckpt.corrupt", Key: key, Err: derr})
		return nil, false
	}
	if ck.Version != runner.CheckpointVersion {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.bytesRead.Add(uint64(len(data)))
	return &ck, true
}

// Put stores a checkpoint under its prefix fingerprint.
func (s *CheckpointStore) Put(key string, ck *runner.Checkpoint) error {
	if key == "" || ck == nil {
		return errModelf("campaign: checkpoint entry without key or body")
	}
	if runner.CanonicalKey(ck.Prefix) != key {
		return errModelf("campaign: checkpoint prefix %q does not hash to key %s", ck.Prefix, key)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		// An encode failure is a missing gob registration — a wiring
		// bug, not bad media — so it is deterministic, never retried.
		return errModelf("campaign: encode checkpoint: %v", err)
	}
	tmp, err := os.CreateTemp(s.dir, "."+key+".tmp*")
	if err != nil {
		return ioErrorf("campaign: checkpoint write: %v", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		tmp.Close()
		return ioErrorf("campaign: checkpoint write: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return ioErrorf("campaign: checkpoint write: %v", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key)); err != nil {
		return ioErrorf("campaign: checkpoint write: %v", err)
	}
	s.puts.Add(1)
	s.bytesWritten.Add(uint64(buf.Len()))
	return nil
}

// Keys lists the stored prefix fingerprints, sorted.
func (s *CheckpointStore) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("campaign: list checkpoint store: %w", err)
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		keys = append(keys, strings.TrimSuffix(name, ".ckpt"))
	}
	sort.Strings(keys)
	return keys, nil
}

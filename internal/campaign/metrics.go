package campaign

import "microlib/internal/telemetry"

// RegisterCampaignMetrics exposes a running campaign on a telemetry
// registry: the live scheduler snapshot (cells done/total, cells/s,
// ETA, worker utilization, aggregate insts/s) under "campaign" and
// the persistent cache's hit/miss/bytes counters under "disk_cache".
// Both are pull gauges — each scrape reads the current values; there
// is no push path into the hot loop. Nil arguments are skipped.
func RegisterCampaignMetrics(m *telemetry.Metrics, live *LiveStats, cache *DiskCache) {
	if m == nil {
		return
	}
	if live != nil {
		m.Register("campaign", func() any { return live.Snapshot() })
	}
	if cache != nil {
		m.Register("disk_cache", func() any { return cache.Counters() })
	}
}

package campaign

import (
	"fmt"
	"strings"

	"microlib/internal/hier"
	"microlib/internal/runner"
)

// Cell is one fully-resolved simulation of a plan. Values labels the
// cell on every axis of the table (in axis order); Opts is
// authoritative for execution and Key is the cache fingerprint of
// Opts.
type Cell struct {
	Index  int         `json:"index"`
	Values []AxisValue `json:"values"`

	Opts runner.Options `json:"-"`
	Key  string         `json:"key"`
}

// Axis returns the cell's value on a named axis ("" when the plan
// has no such axis).
func (c Cell) Axis(name string) string {
	for _, v := range c.Values {
		if v.Axis == name {
			return v.Value
		}
	}
	return ""
}

// Bench returns the cell's benchmark-axis value.
func (c Cell) Bench() string { return c.Axis(AxisBench) }

// Mech returns the cell's mechanism-axis value.
func (c Cell) Mech() string { return c.Axis(AxisMech) }

// Seed returns the cell's workload-generator seed.
func (c Cell) Seed() uint64 { return c.Opts.Seed }

// Scenario labels the sub-experiment a cell belongs to: the cell's
// values on every scenario axis (everything except benchmark,
// mechanism and seed), in axis order. Cells sharing a scenario are
// aggregated into one grid; seeds replicate within it.
func (c Cell) Scenario() string {
	var sb strings.Builder
	for _, v := range c.Values {
		if !scenarioAxis(v.Axis) {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(v.Axis)
		sb.WriteByte('=')
		sb.WriteString(v.Value)
	}
	return sb.String()
}

// scenarioValues returns the cell's coordinates on the scenario axes.
func (c Cell) scenarioValues() []AxisValue {
	var out []AxisValue
	for _, v := range c.Values {
		if scenarioAxis(v.Axis) {
			out = append(out, v)
		}
	}
	return out
}

func queueLabel(q int) string {
	if q == 0 {
		return "default"
	}
	return fmt.Sprintf("%d", q)
}

// Plan is a deterministic expansion of a Spec: the ordered
// cross-product over the axis table (benchmark outermost, selection
// innermost), with each cell's runner options fully resolved and
// fingerprinted.
type Plan struct {
	Spec  Spec
	Axes  []AxisInfo
	Cells []Cell
}

// NewPlan normalizes the spec and expands it. The same spec always
// yields the same plan, cell order and cell keys. Axis combinations
// that provably request the same simulation within one aggregation
// group — a recorded trace replayed under several seeds is the one
// such case, since a trace replays fixed bytes — collapse to their
// first cell: honest single-sample cells instead of N identical
// "replicates" with a fake zero-width confidence interval. The same
// fingerprint appearing in *different* scenarios (e.g. a baseline
// untouched by a parameter-set axis) is kept: each scenario needs
// the cell, and the result cache makes the reruns free.
func NewPlan(spec Spec) (*Plan, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	e := newExpander(&spec)

	n := 1
	for _, ax := range e.axes {
		n *= len(ax.values)
	}
	p := &Plan{Spec: spec, Cells: make([]Cell, 0, n)}
	for _, ax := range e.axes {
		info := AxisInfo{Name: ax.name, Scenario: scenarioAxis(ax.name)}
		for _, v := range ax.values {
			info.Values = append(info.Values, v.label)
		}
		p.Axes = append(p.Axes, info)
	}

	seen := map[string]bool{}
	idx := make([]int, len(e.axes))
	for {
		opts := spec.baseOptions()
		values := make([]AxisValue, len(e.axes))
		for i, ax := range e.axes {
			v := ax.values[idx[i]]
			values[i] = AxisValue{Axis: ax.name, Value: v.label}
			if err := v.apply(&opts); err != nil {
				return nil, err
			}
			if i == e.pinAfter {
				if err := spec.applyPins(&opts); err != nil {
					return nil, err
				}
			}
		}
		// The combination of axis values can be invalid even when every
		// value passed its own field check (a swept line size may stop
		// dividing a pinned cache size). Catch it at plan time, naming
		// the cell, instead of letting a worker hit a model panic.
		if err := opts.Validate(); err != nil {
			return nil, fmt.Errorf("campaign: cell %s: %w", describeValues(values), err)
		}
		cell := Cell{Index: len(p.Cells), Values: values, Opts: opts, Key: opts.Fingerprint()}
		group := cell.Scenario() + "\x00" + cell.Bench() + "\x00" + cell.Mech() + "\x00" + cell.Key
		if !seen[group] {
			seen[group] = true
			p.Cells = append(p.Cells, cell)
		}

		// Odometer increment, innermost axis fastest.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(e.axes[i].values) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return p, nil
}

// describeValues renders a cell's full coordinates for error
// messages ("bench=gzip mech=TP ...").
func describeValues(values []AxisValue) string {
	var sb strings.Builder
	for _, v := range values {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(v.Axis)
		sb.WriteByte('=')
		sb.WriteString(v.Value)
	}
	return sb.String()
}

func memoryKind(name string) hier.MemoryKind {
	k, err := hier.ParseMemoryKind(name)
	if err != nil {
		// Axis values are validated against MemoryNames by Normalize
		// before any resolver runs.
		return hier.MemSDRAM
	}
	return k
}

// Scenarios returns the distinct scenario labels of the plan, in
// first-appearance order.
func (p *Plan) Scenarios() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range p.Cells {
		s := c.Scenario()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

package campaign

import (
	"fmt"

	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/runner"
)

// Cell is one fully-resolved simulation of a plan. The axis fields
// (Bench .. Seed) label the cell in reports; Opts is authoritative
// for execution and Key is the cache fingerprint of Opts.
type Cell struct {
	Index  int    `json:"index"`
	Bench  string `json:"bench"`
	Mech   string `json:"mech"`
	Memory string `json:"memory,omitempty"`
	Core   string `json:"core,omitempty"`
	Queue  int    `json:"queue,omitempty"`
	Insts  uint64 `json:"insts,omitempty"`
	Seed   uint64 `json:"seed"`

	Opts runner.Options `json:"-"`
	Key  string         `json:"key"`
}

// Scenario labels the sub-experiment a cell belongs to: every axis
// except benchmark, mechanism and seed. Cells sharing a scenario are
// aggregated into one grid; seeds replicate within it.
func (c Cell) Scenario() string {
	return fmt.Sprintf("mem=%s core=%s queue=%s insts=%d",
		c.Memory, c.Core, queueLabel(c.Queue), c.Insts)
}

func queueLabel(q int) string {
	if q == 0 {
		return "default"
	}
	return fmt.Sprintf("%d", q)
}

// Plan is a deterministic expansion of a Spec: the cross-product of
// every axis, in spec order (benchmark outermost, seed innermost),
// with each cell's runner options fully resolved and fingerprinted.
type Plan struct {
	Spec  Spec
	Cells []Cell
}

// NewPlan normalizes the spec and expands it. The same spec always
// yields the same plan, cell order and cell keys.
func NewPlan(spec Spec) (*Plan, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	n := len(spec.Benchmarks) * len(spec.Mechanisms) * len(spec.Memories) *
		len(spec.Cores) * len(spec.Queues) * len(spec.Insts) * len(spec.Seeds)
	p := &Plan{Spec: spec, Cells: make([]Cell, 0, n)}
	for _, bench := range spec.Benchmarks {
		// A trace workload replays fixed bytes: the seed axis cannot
		// replicate it, so only the first seed's cell is emitted —
		// honest single-sample cells instead of N identical
		// "replicates" with a fake zero-width confidence interval.
		seeds := spec.Seeds
		if cw := spec.customWorkload(bench); cw != nil && cw.TracePath != "" {
			seeds = spec.Seeds[:1]
		}
		for _, mech := range spec.Mechanisms {
			for _, mem := range spec.Memories {
				for _, coreName := range spec.Cores {
					for _, queue := range spec.Queues {
						for _, insts := range spec.Insts {
							for _, seed := range seeds {
								cell := Cell{
									Index:  len(p.Cells),
									Bench:  bench,
									Mech:   mech,
									Memory: mem,
									Core:   coreName,
									Queue:  queue,
									Insts:  insts,
									Seed:   seed,
								}
								cell.Opts = spec.resolve(cell)
								cell.Key = cell.Opts.Fingerprint()
								p.Cells = append(p.Cells, cell)
							}
						}
					}
				}
			}
		}
	}
	return p, nil
}

// resolve builds the runner options of one cell from the normalized
// spec.
func (s *Spec) resolve(c Cell) runner.Options {
	opts := runner.Options{
		Bench: c.Bench,
		// Nil for built-in benchmarks; for spec-defined workloads the
		// source carries the content identity the fingerprint keys on.
		Workload:         s.customWorkload(c.Bench),
		Mechanism:        c.Mech,
		Hier:             hier.DefaultConfig().WithMemory(memoryKind(c.Memory)),
		CPU:              cpu.DefaultConfig(),
		Insts:            c.Insts,
		Warmup:           *s.Warmup,
		Skip:             s.Skip,
		Seed:             c.Seed,
		InOrder:          c.Core == CoreInOrder,
		QueueOverride:    c.Queue,
		PrefetchAsDemand: s.PrefetchAsDemand,
	}
	if overrides, ok := s.Params[c.Mech]; ok && len(overrides) > 0 {
		p := core.Params{}
		for k, v := range overrides {
			p[k] = v
		}
		opts.Params = p
	}
	return opts
}

func memoryKind(name string) hier.MemoryKind {
	switch name {
	case MemNameConst70:
		return hier.MemConst70
	case MemNameSDRAM70:
		return hier.MemSDRAM70
	}
	return hier.MemSDRAM
}

// Scenarios returns the distinct scenario labels of the plan, in
// first-appearance order.
func (p *Plan) Scenarios() []string {
	var out []string
	seen := map[string]bool{}
	for _, c := range p.Cells {
		s := c.Scenario()
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

package campaign

import (
	"fmt"
	"io"

	"microlib/internal/trace"
	"microlib/internal/workload"
)

// Record captures insts instructions of a workload to w in the
// binary trace format. The name resolves like a benchmarks-axis
// value of the spec: a built-in benchmark, a spec-defined inline
// profile, or a spec-defined trace (re-recorded, e.g. to cut a
// shorter window). Pass a zero Spec for built-ins. The count of
// written instructions is returned; a source that ends before insts
// is an error, consistent with the runner's refusal to silently
// measure a shorter run than requested.
func Record(spec Spec, name string, seed, insts uint64, w io.Writer) (uint64, error) {
	if insts == 0 {
		return 0, fmt.Errorf("campaign: record: zero instruction count")
	}

	// Only the named workload is resolved — not the whole spec — so
	// recording one entry works even while the spec's other trace
	// files do not exist yet (the bootstrap case: a spec declaring
	// both the profile to record from and the trace to be recorded).
	var entry *WorkloadSpec
	for i := range spec.Workloads {
		if spec.Workloads[i].Name == name {
			entry = &spec.Workloads[i]
			break
		}
	}

	var (
		stream trace.Stream
		src    *trace.File
	)
	switch {
	case entry != nil:
		if err := spec.resolveWorkload(entry); err != nil {
			return 0, err
		}
		if entry.Profile != nil {
			stream = workload.NewGenerator(*entry.Profile, seed)
		} else {
			tf, err := trace.Open(entry.tracePath)
			if err != nil {
				return 0, fmt.Errorf("campaign: record: %w", err)
			}
			defer tf.Close()
			stream, src = tf, tf
		}
	default:
		prof, ok := workload.ByName(name)
		if !ok {
			return 0, fmt.Errorf("campaign: record: unknown workload %q", name)
		}
		stream = workload.NewGenerator(prof, seed)
	}

	tw, err := trace.NewWriter(w)
	if err != nil {
		return 0, err
	}
	var inst trace.Inst
	for i := uint64(0); i < insts; i++ {
		if !stream.Next(&inst) {
			if src != nil {
				if err := src.Err(); err != nil {
					return tw.Count(), fmt.Errorf("campaign: record: %w", err)
				}
			}
			return tw.Count(), fmt.Errorf("campaign: record: workload %q ended after %d of %d instructions",
				name, tw.Count(), insts)
		}
		if err := tw.Write(&inst); err != nil {
			return tw.Count(), fmt.Errorf("campaign: record: %w", err)
		}
	}
	if err := tw.Flush(); err != nil {
		return tw.Count(), fmt.Errorf("campaign: record: %w", err)
	}
	return tw.Count(), nil
}

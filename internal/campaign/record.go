package campaign

import (
	"fmt"
	"io"

	"microlib/internal/runner"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// RecordOptions selects which window of a workload's execution a
// recording captures.
type RecordOptions struct {
	// Seed keys synthetic generators (ignored for trace sources).
	Seed uint64
	// Insts is the measured instruction budget of the runs the trace
	// will feed; the recording captures Warmup+Insts instructions.
	Insts uint64
	// Warmup is the warm-up budget of those runs: it widens the
	// recording (a replayed cell consumes warm-up before measuring)
	// and the SimPoint analysis budget, so "simpoint" resolves the
	// same offset a campaign cell with the same warmup/insts split
	// selects. Zero records exactly Insts.
	Warmup uint64
	// Skip discards instructions before the recorded window (the
	// "skip N" half of Section 3.5's arbitrary selection), so a trace
	// can capture a chosen execution region instead of the stream
	// prefix. Replaying the trace is then bit-identical to a live run
	// with Options.Skip set to the same offset.
	Skip uint64
	// Selection optionally resolves the offset by policy instead:
	// "simpoint" runs the SimPoint analysis over the source (budgeted
	// at Warmup+Insts, exactly like a campaign cell); "skip" or ""
	// uses Skip; "skip:N" pins an explicit offset. Setting both Skip
	// and a selection that computes its own offset is rejected.
	Selection string
}

// Record captures insts instructions of a workload to w in the
// binary trace format. The name resolves like a benchmarks-axis
// value of the spec: a built-in benchmark, a spec-defined inline
// profile, or a spec-defined trace (re-recorded, e.g. to cut a
// shorter window). Pass a zero Spec for built-ins. The count of
// written instructions is returned; a source that ends before insts
// is an error, consistent with the runner's refusal to silently
// measure a shorter run than requested.
func Record(spec Spec, name string, seed, insts uint64, w io.Writer) (uint64, error) {
	return RecordWindow(spec, name, RecordOptions{Seed: seed, Insts: insts}, w)
}

// RecordWindow is Record with a trace window: the recording starts
// after the resolved skip offset (explicit or SimPoint-selected).
func RecordWindow(spec Spec, name string, opts RecordOptions, w io.Writer) (uint64, error) {
	if opts.Insts == 0 {
		return 0, fmt.Errorf("campaign: record: zero instruction count")
	}

	// Only the named workload is resolved — not the whole spec — so
	// recording one entry works even while the spec's other trace
	// files do not exist yet (the bootstrap case: a spec declaring
	// both the profile to record from and the trace to be recorded).
	var entry *WorkloadSpec
	for i := range spec.Workloads {
		if spec.Workloads[i].Name == name {
			entry = &spec.Workloads[i]
			break
		}
	}

	var (
		stream trace.Stream
		src    *trace.File
	)
	switch {
	case entry != nil:
		if err := spec.resolveWorkload(entry); err != nil {
			return 0, err
		}
		if entry.Profile != nil {
			stream = workload.NewGenerator(*entry.Profile, opts.Seed)
		} else {
			tf, err := trace.Open(entry.tracePath)
			if err != nil {
				return 0, fmt.Errorf("campaign: record: %w", err)
			}
			defer tf.Close()
			stream, src = tf, tf
		}
	default:
		prof, ok := workload.ByName(name)
		if !ok {
			return 0, fmt.Errorf("campaign: record: unknown workload %q", name)
		}
		stream = workload.NewGenerator(prof, opts.Seed)
	}

	skip, err := opts.resolveSkip(name, entry)
	if err != nil {
		return 0, err
	}
	var inst trace.Inst
	for i := uint64(0); i < skip; i++ {
		if !stream.Next(&inst) {
			if src != nil {
				if err := src.Err(); err != nil {
					return 0, fmt.Errorf("campaign: record: %w", err)
				}
			}
			return 0, fmt.Errorf("campaign: record: workload %q ended after %d of %d skipped instructions",
				name, i, skip)
		}
	}

	tw, err := trace.NewWriter(w)
	if err != nil {
		return 0, err
	}
	total := opts.Warmup + opts.Insts
	for i := uint64(0); i < total; i++ {
		if !stream.Next(&inst) {
			if src != nil {
				if err := src.Err(); err != nil {
					return tw.Count(), fmt.Errorf("campaign: record: %w", err)
				}
			}
			return tw.Count(), fmt.Errorf("campaign: record: workload %q ended after %d of %d instructions (skip=%d)",
				name, tw.Count(), total, skip)
		}
		if err := tw.Write(&inst); err != nil {
			return tw.Count(), fmt.Errorf("campaign: record: %w", err)
		}
	}
	if err := tw.Flush(); err != nil {
		return tw.Count(), fmt.Errorf("campaign: record: %w", err)
	}
	return tw.Count(), nil
}

// resolveSkip turns the window options into a concrete instruction
// offset. entry is the spec-defined workload being recorded (nil for
// built-ins).
func (o RecordOptions) resolveSkip(name string, entry *WorkloadSpec) (uint64, error) {
	if o.Skip != 0 && o.Selection != "" && o.Selection != SelSkip {
		return 0, fmt.Errorf("campaign: record: set a skip offset or a selection that computes one, not both")
	}
	switch o.Selection {
	case "", SelSkip:
		return o.Skip, nil
	case SelSimPoint:
		ropts := runner.Options{Seed: o.Seed, Warmup: o.Warmup, Insts: o.Insts}
		if entry != nil {
			if entry.Profile != nil {
				ropts.Workload = &runner.Workload{Profile: entry.Profile}
			} else {
				ropts.Workload = &runner.Workload{TracePath: entry.tracePath, TraceSHA: entry.traceSHA}
			}
		} else {
			ropts.Bench = name
		}
		off, err := runner.SimPointSkip(ropts)
		if err != nil {
			return 0, fmt.Errorf("campaign: record: %w", err)
		}
		return off, nil
	}
	return parseSkipSelection(o.Selection)
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"

	"microlib/internal/telemetry"
)

// ResumeInfo describes what Resume reconstructed before rerunning.
type ResumeInfo struct {
	// Torn is true when the journal ended in a torn line (the run was
	// killed mid-write); the intact prefix was used.
	Torn bool
	// Recovered counts plan cells already resolved by earlier runs:
	// successes sitting in the cache plus deterministic failures
	// replayed from the journal.
	Recovered int
	// KnownFailures counts the deterministic failures replayed from
	// the journal (a subset of Recovered).
	KnownFailures int
	// Remaining counts the distinct cells the resumed run still has
	// to simulate (transient failures and never-started cells).
	Remaining int
	// CacheDir is the cache directory the resumed run uses (the
	// original run's unless overridden).
	CacheDir string
}

// Resume continues a crashed or interrupted campaign from its
// journal: the embedded spec is re-expanded into the exact plan
// (verified by fingerprint), completed cells are served from the
// cache, deterministic failures are replayed from the journal without
// resimulation, and only the remainder runs. New events — a "resume"
// marker, then a full start/…/end sequence — are appended to the same
// journal file, so status always reflects the latest run.
//
// cfg is honored except Journal (Resume appends to journalPath
// itself), KnownFailures (reconstructed from the journal) and
// CacheDir (defaults to the original run's when empty). The returned
// info describes the reconstruction even when the rerun fails.
func Resume(ctx context.Context, journalPath string, cfg RunConfig) (*Summary, ResumeInfo, error) {
	var info ResumeInfo
	f, err := os.Open(journalPath)
	if err != nil {
		return nil, info, fmt.Errorf("campaign: resume: %w", err)
	}
	evs, err := ReadJournal(f)
	f.Close()
	var torn *telemetry.TornTailError
	if errors.As(err, &torn) {
		// A torn final line is exactly the debris a killed run leaves;
		// the intact prefix is the usable journal.
		info.Torn = true
	} else if err != nil {
		return nil, info, fmt.Errorf("campaign: resume %s: %w", journalPath, err)
	}

	// The latest start event carries the normalized spec; earlier
	// runs' cell events still contribute recorded failures below.
	var start *JournalEvent
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Ev == EvStart {
			start = &evs[i]
			break
		}
	}
	if start == nil {
		return nil, info, fmt.Errorf("campaign: resume %s: journal has no start event", journalPath)
	}
	if len(start.Spec) == 0 {
		return nil, info, fmt.Errorf("campaign: resume %s: journal embeds no spec (written before resume support?); rerun with mlcampaign run -spec", journalPath)
	}
	spec, err := ParseSpec(start.Spec)
	if err != nil {
		return nil, info, fmt.Errorf("campaign: resume %s: embedded spec: %w", journalPath, err)
	}
	spec.SetBaseDir(start.BaseDir)
	plan, err := NewPlan(spec)
	if err != nil {
		return nil, info, fmt.Errorf("campaign: resume %s: replan: %w", journalPath, err)
	}
	if fp := plan.Fingerprint(); start.Plan != "" && fp != start.Plan {
		return nil, info, fmt.Errorf("campaign: resume %s: plan fingerprint changed (journal %s, replanned %s) — workload trace edited since the original run?",
			journalPath, shortKey(start.Plan), shortKey(fp))
	}

	info.CacheDir = cfg.CacheDir
	if info.CacheDir == "" {
		info.CacheDir = start.CacheDir
	}
	if info.CacheDir == "" {
		return nil, info, fmt.Errorf("campaign: resume %s: the original run had no cache dir (nothing persisted its cells); pass one explicitly", journalPath)
	}

	// Reconstruct what earlier runs resolved. Successes live in the
	// cache (the scheduler's probe serves them); deterministic
	// failures are replayed from the journal so the doomed cells are
	// not resimulated. Transient failures rerun.
	known := map[string]CellResult{}
	for _, e := range evs {
		if e.Ev != EvCellDone || e.Err == "" {
			continue
		}
		if kind := ErrKind(e.ErrKind); !kind.Transient() {
			known[e.Key] = CellResult{
				Key:       e.Key,
				Bench:     e.Bench,
				Mechanism: e.Mech,
				Seed:      e.Seed,
				Err:       e.Err,
				ErrKind:   e.ErrKind,
			}
		}
	}
	// Only keys the replanned campaign can actually reach count; a
	// journal from a broader earlier spec must not inflate the tally.
	distinct := map[string]bool{}
	for _, c := range plan.Cells {
		distinct[c.Key] = true
	}
	cache, err := OpenDiskCache(info.CacheDir)
	if err != nil {
		return nil, info, err
	}
	cachedKeys, err := cache.Keys()
	if err != nil {
		return nil, info, err
	}
	cached := map[string]bool{}
	for _, k := range cachedKeys {
		cached[k] = true
	}
	for k := range known {
		if cached[k] {
			// A success in the cache outranks an older recorded
			// failure (the failure's cause — say a then-broken trace
			// file — was evidently repaired between runs).
			delete(known, k)
		}
	}
	//ml:commutative -- pure counter sums; addition is order-independent
	for k := range distinct {
		switch {
		case cached[k]:
			info.Recovered++
		case known[k].Key != "":
			info.Recovered++
			info.KnownFailures++
		default:
			info.Remaining++
		}
	}

	jf, err := os.OpenFile(journalPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, info, fmt.Errorf("campaign: resume: %w", err)
	}
	defer jf.Close()
	marker := NewJournalWriter(jf)
	marker.Faults = cfg.Faults
	marker.Resume(plan, info.Recovered, info.Remaining)
	if err := marker.Err(); err != nil {
		return nil, info, fmt.Errorf("campaign: resume: %w", err)
	}

	cfg.Journal = jf
	cfg.KnownFailures = known
	cfg.CacheDir = info.CacheDir
	sum, err := Execute(ctx, spec, cfg)
	return sum, info, err
}

package campaign

import (
	"context"
	"strings"
	"testing"

	"microlib/internal/cfgreg"
	"microlib/internal/cpu"
	"microlib/internal/hier"
)

func fieldsSpec(raw string) (Spec, error) {
	return ParseSpec([]byte(raw))
}

func TestFieldsAxisExpansion(t *testing.T) {
	s, err := fieldsSpec(`{
		"name": "geom",
		"benchmarks": ["gzip"],
		"mechanisms": ["Base", "TP"],
		"insts": [2000],
		"warmup": 500,
		"fields": {"cpu.ruu": [32, 64, 128], "cpu.lsq": [32, 64, 128]}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 * 2 * 3; len(p.Cells) != want {
		t.Fatalf("cells: got %d, want %d", len(p.Cells), want)
	}
	// One scenario per zipped window value; the axis name is the
	// sorted paths joined.
	if len(p.Scenarios()) != 3 {
		t.Fatalf("scenarios: %v", p.Scenarios())
	}
	const axisName = "cpu.lsq+cpu.ruu"
	for _, c := range p.Cells {
		label := c.Axis(axisName)
		want := map[string]int{"32+32": 32, "64+64": 64, "128+128": 128}[label]
		if want == 0 {
			t.Fatalf("unexpected axis label %q", label)
		}
		if c.Opts.CPU.RUUSize != want || c.Opts.CPU.LSQSize != want {
			t.Fatalf("label %s resolved ruu=%d lsq=%d", label, c.Opts.CPU.RUUSize, c.Opts.CPU.LSQSize)
		}
	}
}

// TestFieldsAxisFingerprintCompat is the cache-compatibility pin of
// the registry refactor: a fields axis whose single value equals the
// Table 1 default resolves to byte-identical options — and therefore
// the same cell fingerprints — as the same spec without any fields
// section. FingerprintVersion stays 2; pre-registry disk caches keep
// serving.
func TestFieldsAxisFingerprintCompat(t *testing.T) {
	plain := studySpec()
	swept := studySpec()
	swept.Fields = FieldsSpec{{"cpu.ruu": {"128"}, "hier.l1d.size": {"32768"}}}

	a, err := NewPlan(plain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(swept)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cells: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i].Key != b.Cells[i].Key {
			t.Fatalf("cell %d: sweeping a field at its default changed the fingerprint (%s vs %s)",
				i, a.Cells[i].Key, b.Cells[i].Key)
		}
	}
}

func TestFieldsGroupsCrossProduct(t *testing.T) {
	s, err := fieldsSpec(`{
		"benchmarks": ["gzip"],
		"mechanisms": ["Base"],
		"insts": [2000],
		"warmup": 0,
		"fields": [
			{"cpu.ruu": [64, 128]},
			{"hier.l1d.assoc": [1, 2, 4]}
		]
	}`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3; len(p.Cells) != want {
		t.Fatalf("cells: got %d, want %d (groups must cross-product)", len(p.Cells), want)
	}
	seen := map[[2]string]bool{}
	for _, c := range p.Cells {
		seen[[2]string{c.Axis("cpu.ruu"), c.Axis("hier.l1d.assoc")}] = true
	}
	if len(seen) != 6 {
		t.Fatalf("coordinates not distinct: %v", seen)
	}
}

func TestSetPinsEveryCell(t *testing.T) {
	s := studySpec()
	s.Set = map[string]FieldValue{"hier.l1d.assoc": "2", "cpu.fetch-width": "4"}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Opts.Hier.L1D.Assoc != 2 || c.Opts.CPU.FetchWidth != 4 {
			t.Fatalf("set not applied: %+v", c.Opts.Hier.L1D)
		}
	}
	// And pinning genuinely changes fingerprints (it is a different
	// machine).
	plain, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	if plain.Fingerprint() == p.Fingerprint() {
		t.Fatal("pinned spec shares the plain plan fingerprint")
	}
}

// TestSetWinsOverDefaultedNamedAxis: the named axes always exist
// (Normalize fills their defaults) and resolve before the pins, so a
// pinned path must still take effect. hier.mem.kind is special-cased
// into the memories axis itself, keeping the plan's mem coordinate
// truthful; flag pins apply after the hiers axis.
func TestSetWinsOverDefaultedNamedAxis(t *testing.T) {
	s := studySpec()
	s.Memories = nil // defaulted by Normalize
	s.Set = map[string]FieldValue{"hier.mem.kind": "const70", "hier.l1d.infinite-mshr": "true"}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Opts.Hier.Memory != hier.MemConst70 {
			t.Fatalf("pinned memory kind clobbered by the defaulted memories axis: %+v", c.Opts.Hier.Memory)
		}
		if got := c.Axis(AxisMemory); got != MemNameConst70 {
			t.Fatalf("mem coordinate %q contradicts the pinned memory kind", got)
		}
		if !c.Opts.Hier.L1D.InfiniteMSHR {
			t.Fatalf("pinned accuracy flag clobbered by the defaulted hiers axis")
		}
	}
	// The fold must not consume the caller's spec: a second plan of
	// the same value sees the same pins.
	q, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fingerprint() != p.Fingerprint() {
		t.Fatal("re-planning the same spec drifted")
	}
}

// TestFieldsConflictWithSweptNamedAxis: a path and a multi-valued
// named axis varying the same knob is ambiguous and rejected.
func TestFieldsConflictWithSweptNamedAxis(t *testing.T) {
	s := studySpec() // sweeps memories: sdram, const70
	s.Set = map[string]FieldValue{"hier.mem.kind": "sdram70"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "memories axis") {
		t.Fatalf("pin vs swept memories axis accepted: %v", err)
	}

	// hier.mem.kind is never sweepable via fields: the memories axis
	// is that sweep, and only it keeps the mem coordinate truthful.
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Fields = FieldsSpec{{"hier.mem.kind": {"sdram", "const70"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "sweep the memories axis instead") {
		t.Fatalf("fields sweep of hier.mem.kind accepted: %v", err)
	}

	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Hiers = []string{hier.VariantDefault, hier.VariantInfiniteMSHR}
	s.Fields = FieldsSpec{{"hier.l2.infinite-mshr": {"true", "false"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "hiers axis") {
		t.Fatalf("fields sweep vs swept hiers axis accepted: %v", err)
	}

	// Accuracy flags compose only with the identity variant: under an
	// explicit non-default variant the hier coordinate would name a
	// flag state the pin falsifies.
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Hiers = []string{hier.VariantInfiniteMSHR}
	s.Set = map[string]FieldValue{"hier.l1d.infinite-mshr": "false"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "hiers axis") {
		t.Fatalf("flag pin under a non-default variant accepted: %v", err)
	}

	// The in-order core has no core geometry, but cpu.* is in the
	// fingerprint: a sweep would simulate identical machines under
	// distinct labels and cache keys.
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Cores = []string{CoreOoO, CoreInOrder}
	s.Fields = FieldsSpec{{"cpu.ruu": {"32", "64"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "inorder core") {
		t.Fatalf("cpu sweep with inorder core accepted: %v", err)
	}
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Cores = []string{CoreInOrder}
	s.Set = map[string]FieldValue{"cpu.lsq": "32"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "inorder core") {
		t.Fatalf("cpu pin with inorder core accepted: %v", err)
	}

	// A nonzero queue override forces the L1D/L2 prefetch queue caps
	// at build time, clobbering the path whenever it resolves.
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Queues = []int{128}
	s.Fields = FieldsSpec{{"hier.l1d.prefetch-queue-cap": {"4", "64"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "queues axis") {
		t.Fatalf("fields sweep vs queue override accepted: %v", err)
	}
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Queues = []int{0, 128}
	s.Set = map[string]FieldValue{"hier.l2.prefetch-queue-cap": "4"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "queues axis") {
		t.Fatalf("pin vs swept queue override accepted: %v", err)
	}
	// The default queues [0] forces nothing, so the paths are free.
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Set = map[string]FieldValue{"hier.l1d.prefetch-queue-cap": "4"}
	if _, err := NewPlan(s); err != nil {
		t.Fatalf("prefetch-queue-cap pin without override must work: %v", err)
	}

	// SDRAM device timing is read only by the "sdram" kind: swept or
	// pinned under any other kind it is fingerprint-relevant but
	// behavior-irrelevant — distinct cache keys, identical machines.
	s = studySpec()
	s.Memories = []string{MemNameConst70}
	s.Fields = FieldsSpec{{"hier.sdram.cas-latency": {"20", "40"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "ignored by memory model") {
		t.Fatalf("sdram timing sweep under const70 accepted: %v", err)
	}
	s = studySpec() // memories sdram+const70: mixed is rejected too
	s.Set = map[string]FieldValue{"hier.sdram.banks": "4"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "ignored by memory model") {
		t.Fatalf("sdram pin under mixed memories accepted: %v", err)
	}
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Set = map[string]FieldValue{"hier.sdram.banks": "4"}
	if _, err := NewPlan(s); err != nil {
		t.Fatalf("sdram pin under sdram-only memories must work: %v", err)
	}

	// MSHR capacity is ignored under an infinite miss address file —
	// via a non-default hiers variant or the level's own flag.
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Hiers = []string{hier.VariantDefault, hier.VariantInfiniteMSHR}
	s.Fields = FieldsSpec{{"hier.l1d.mshrs": {"4", "8", "16"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "infinite-mshr is in effect") {
		t.Fatalf("mshrs sweep under infinite-mshr variant accepted: %v", err)
	}
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Set = map[string]FieldValue{"hier.l2.infinite-mshr": "true"}
	s.Fields = FieldsSpec{{"hier.l2.reads-per-mshr": {"2", "8"}}}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "infinite-mshr is in effect") {
		t.Fatalf("reads-per-mshr sweep under pinned infinite flag accepted: %v", err)
	}
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Fields = FieldsSpec{{"hier.l1d.mshrs": {"4", "16"}}}
	if _, err := NewPlan(s); err != nil {
		t.Fatalf("mshrs sweep with finite MSHRs must work: %v", err)
	}

	// The constant latency is read only by "const70".
	s = studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Set = map[string]FieldValue{"hier.mem.const-latency": "100"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "ignored by memory model") {
		t.Fatalf("const-latency pin under sdram accepted: %v", err)
	}
	s = studySpec()
	s.Memories = []string{MemNameConst70}
	s.Fields = FieldsSpec{{"hier.mem.const-latency": {"70", "140"}}}
	if _, err := NewPlan(s); err != nil {
		t.Fatalf("const-latency sweep under const70-only must work: %v", err)
	}
}

// TestPinWinsOverExplicitSingleMemories: a pinned hier.mem.kind
// rewrites a single-valued explicit memories axis — SetFlags.Pin
// promises the CLI wins over the file, and -set on a shipped figure
// spec is the advertised replay-on-a-different-machine path — with
// the mem coordinate following the pin.
func TestPinWinsOverExplicitSingleMemories(t *testing.T) {
	s := studySpec()
	s.Memories = []string{MemNameConst70}
	s.Set = map[string]FieldValue{"hier.mem.kind": "sdram70"}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Opts.Hier.Memory != hier.MemSDRAM70 || c.Axis(AxisMemory) != MemNameSDRAM70 {
			t.Fatalf("pin did not rewrite the axis: mem=%s opts=%v", c.Axis(AxisMemory), c.Opts.Hier.Memory)
		}
	}
}

// TestPinnedMemKindErrorNamesThePath: an invalid pinned value must
// blame the set path the user wrote, not the memories axis the fold
// would have produced.
func TestPinnedMemKindErrorNamesThePath(t *testing.T) {
	s := studySpec()
	s.Memories = nil
	s.Set = map[string]FieldValue{"hier.mem.kind": "bogus"}
	_, err := NewPlan(s)
	if err == nil || !strings.Contains(err.Error(), "set: cfgreg: hier.mem.kind") {
		t.Fatalf("error must name the pinned path: %v", err)
	}
}

// TestHierVariantPathsMatchVariants pins the hand-written hiers-axis
// conflict list against what WithVariant actually changes, observed
// through the registry itself: every hier.* path a variant flips
// must be in the list, and every listed path must be flipped by some
// variant (no stale entries).
func TestHierVariantPathsMatchVariants(t *testing.T) {
	listed := map[string]bool{}
	for _, p := range hierVariantPaths() {
		listed[p] = true
	}
	flipped := map[string]bool{}
	base := hier.DefaultConfig()
	baseCPU := cpu.DefaultConfig()
	for _, variant := range hier.VariantNames() {
		applied, err := base.WithVariant(variant)
		if err != nil {
			t.Fatal(err)
		}
		appliedCPU := baseCPU
		for _, path := range cfgreg.Paths() {
			if !strings.HasPrefix(path, "hier.") {
				continue
			}
			before, err := cfgreg.Get(cfgreg.Target{Hier: &base, CPU: &baseCPU}, path)
			if err != nil {
				t.Fatal(err)
			}
			after, err := cfgreg.Get(cfgreg.Target{Hier: &applied, CPU: &appliedCPU}, path)
			if err != nil {
				t.Fatal(err)
			}
			if before == after {
				continue
			}
			flipped[path] = true
			if !listed[path] {
				t.Errorf("variant %q writes %s, which the hiers-axis conflict list misses", variant, path)
			}
		}
	}
	for p := range listed {
		if !flipped[p] {
			t.Errorf("conflict list entry %s is written by no variant (stale)", p)
		}
	}
}

func TestFieldsValidation(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string
	}{
		{"unknown path", `{"fields": {"cpu.rru": [32]}}`, "unknown config field"},
		{"bad value type", `{"fields": {"cpu.ruu": ["many"]}}`, "not an integer"},
		{"out of range", `{"fields": {"cpu.ruu": [0]}}`, "positive"},
		{"enum typo names set", `{"fields": {"hier.sdram.policy": ["lifo"]}}`, "have fcfs, row-hit-first"},
		{"mem kind not sweepable", `{"fields": {"hier.mem.kind": ["const70"]}}`, "sweep the memories axis instead"},
		{"power of two", `{"fields": {"hier.l1d.line-size": [48]}}`, "power of two"},
		{"unequal zip", `{"fields": {"cpu.ruu": [32, 64], "cpu.lsq": [32]}}`, "unequal value counts"},
		{"duplicate value", `{"fields": {"cpu.ruu": [64, 64]}}`, "duplicate"},
		{"empty values", `{"fields": {"cpu.ruu": []}}`, "no values"},
		{"swept twice", `{"fields": [{"cpu.ruu": [32]}, {"cpu.ruu": [64]}]}`, "swept in two"},
		{"pinned and swept", `{"set": {"cpu.ruu": 64}, "fields": {"cpu.ruu": [32]}}`, "both pinned"},
		{"bad set value", `{"set": {"hier.sdram.policy": "lifo"}}`, "have fcfs, row-hit-first"},
		{"compound value", `{"fields": {"cpu.ruu": [[32]]}}`, "number, bool or string"},
	}
	for _, tc := range cases {
		s, err := fieldsSpec(tc.raw)
		if err == nil {
			_, err = NewPlan(s)
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestPlanRejectsInvalidCombination: each value passes its own field
// check, but the combination breaks a cross-field constraint — the
// plan must fail with the cell named, not a worker.
func TestPlanRejectsInvalidCombination(t *testing.T) {
	s, err := fieldsSpec(`{
		"benchmarks": ["gzip"],
		"mechanisms": ["Base"],
		"set": {"hier.l1d.size": 49152},
		"fields": {"hier.l1d.line-size": [32, 64]}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewPlan(s)
	// 49152 bytes at 32-byte lines is 1536 direct-mapped sets — not a
	// power of two, a constraint no single field can see.
	if err == nil || !strings.Contains(err.Error(), "set count must be a power of two") {
		t.Fatalf("want cross-field error, got %v", err)
	}
	if !strings.Contains(err.Error(), "hier.l1d.line-size=") {
		t.Fatalf("error must name the failing cell: %v", err)
	}
}

// TestZeroWindowFailsPlanNotWorker pins the satellite bugfix end to
// end: a sweep value that builds an impossible core is a plan error.
func TestZeroWindowFailsPlanNotWorker(t *testing.T) {
	s := studySpec()
	s.Set = map[string]FieldValue{"cpu.lsq": "0"}
	if _, err := NewPlan(s); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Fatalf("zero LSQ must fail at plan time, got %v", err)
	}
}

// TestExecuteFieldsCampaign runs a tiny fields sweep end-to-end
// through the scheduler and the cell cache: the geometry axis changes
// simulated results, and rerunning is served from the cache.
func TestExecuteFieldsCampaign(t *testing.T) {
	s, err := fieldsSpec(`{
		"name": "tiny-geometry",
		"benchmarks": ["gzip"],
		"mechanisms": ["Base"],
		"insts": [3000],
		"warmup": 500,
		"fields": {"cpu.ruu": [8, 128], "cpu.lsq": [8, 128]}
	}`)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	sum, err := Execute(context.Background(), s, RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sched.Errors > 0 || sum.Sched.Simulated != 2 {
		t.Fatalf("scheduler: %+v", sum.Sched)
	}
	if len(sum.Scenarios) != 2 {
		t.Fatalf("scenarios: %d", len(sum.Scenarios))
	}
	ipcSmall := sum.Scenarios[0].Mean.Values[0][0]
	ipcBig := sum.Scenarios[1].Mean.Values[0][0]
	if ipcSmall <= 0 || ipcBig <= 0 || ipcSmall == ipcBig {
		t.Fatalf("window size must change IPC: %f vs %f", ipcSmall, ipcBig)
	}
	resumed, err := Execute(context.Background(), s, RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Sched.Simulated != 0 || resumed.Sched.CacheHits != 2 {
		t.Fatalf("rerun not served from cache: %+v", resumed.Sched)
	}
}

package campaign

import (
	"context"
	"path/filepath"
	"testing"
)

func tinySpec() Spec {
	w := uint64(500)
	return Spec{
		Name:       "tiny",
		Benchmarks: []string{"gzip", "mcf"},
		Mechanisms: []string{"Base", "TP"},
		Seeds:      []uint64{1, 2},
		Insts:      []uint64{2000},
		Warmup:     &w,
	}
}

func TestExecuteAndCacheResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()

	first, err := Execute(ctx, tinySpec(), RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Sched.Total != 8 || first.Sched.Simulated != 8 || first.Sched.CacheHits != 0 || first.Sched.Errors != 0 {
		t.Fatalf("first run stats: %+v", first.Sched)
	}

	second, err := Execute(ctx, tinySpec(), RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Sched.CacheHits != 8 || second.Sched.Simulated != 0 {
		t.Fatalf("second run must be 100%% cache hits: %+v", second.Sched)
	}

	// Cached and fresh runs must agree cell for cell.
	for i, sc := range first.Scenarios {
		for b := range sc.Mean.Values {
			for m := range sc.Mean.Values[b] {
				if sc.Mean.Values[b][m] != second.Scenarios[i].Mean.Values[b][m] {
					t.Fatalf("cached IPC differs at %d/%d/%d", i, b, m)
				}
				if sc.Mean.Values[b][m] <= 0 {
					t.Fatalf("cell %d/%d/%d has no measurement", i, b, m)
				}
			}
		}
	}
	if len(first.Scenarios) != 1 || len(first.Scenarios[0].Ranking) != 1 {
		t.Fatalf("scenarios/ranking: %+v", first.Scenarios)
	}
	if first.Scenarios[0].Ranking[0].Mech != "TP" {
		t.Fatalf("ranking must cover the non-base mechanism: %+v", first.Scenarios[0].Ranking)
	}
}

// Fresh results always carry a non-nil Hardware slice (nil marks a
// pre-cost-model cache entry), and cached reruns serve the same
// cells without resimulating.
func TestSchedulerCellResultsCarryHardwareMarker(t *testing.T) {
	cache, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	s := &Scheduler{Cache: cache}
	results, _, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Cells {
		if res := results[c.Key]; res.Hardware == nil {
			t.Fatalf("%s/%s: fresh result must carry a non-nil hardware slice", c.Bench(), c.Mech())
		}
	}
	// The disk round-trip must preserve the marker.
	again, _, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range plan.Cells {
		if res := again[c.Key]; res.Hardware == nil {
			t.Fatalf("%s/%s: cached result lost the hardware marker", c.Bench(), c.Mech())
		}
	}
}

func TestSchedulerCancellationLeavesResumableCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	spec := tinySpec()
	spec.Seeds = []uint64{1, 2, 3, 4} // 16 cells
	ctx, cancel := context.WithCancel(context.Background())

	var canceledAfter int
	partial, err := Execute(ctx, spec, RunConfig{
		Workers:  2,
		CacheDir: dir,
		OnProgress: func(p Progress) {
			if p.Done >= 3 {
				cancel() // kill the campaign mid-run
			}
			canceledAfter = p.Done
		},
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if partial.Sched.Completed >= partial.Sched.Total {
		t.Fatalf("campaign must have stopped early: %+v (progress %d)", partial.Sched, canceledAfter)
	}

	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := cache.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("interrupted campaign must leave finished cells in the cache")
	}

	resumed, err := Execute(context.Background(), spec, RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Sched.Completed != resumed.Sched.Total {
		t.Fatalf("resume must finish the campaign: %+v", resumed.Sched)
	}
	if resumed.Sched.CacheHits < len(keys) {
		t.Fatalf("resume must reuse the %d cached cells: %+v", len(keys), resumed.Sched)
	}
	for _, sc := range resumed.Scenarios {
		if sc.Missing != 0 {
			t.Fatalf("resumed summary still missing cells: %+v", sc)
		}
	}
}

// A plan repeating a fingerprint across scenarios (the Base column
// of a paramsets sweep) must simulate each distinct cell exactly
// once, deterministically — duplicates are served from the finished
// result, not raced onto a second worker.
func TestSchedulerDeduplicatesPlanCells(t *testing.T) {
	spec := tinySpec()
	spec.Seeds = []uint64{1}
	spec.ParamSets = []ParamSetSpec{
		{Name: "pub"},
		{Name: "q1", Params: map[string]map[string]int{"TP": {"queue": 1}}},
	}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 2 bench × (Base, TP) × 2 paramsets; the two Base copies per
	// benchmark share a fingerprint.
	if len(plan.Cells) != 8 {
		t.Fatalf("cells: %d", len(plan.Cells))
	}
	s := &Scheduler{Workers: 4}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Simulated != 6 || stats.CacheHits != 2 || stats.Completed != 8 {
		t.Fatalf("duplicates must be served, not resimulated: %+v", stats)
	}
	sum := Aggregate(plan, results, stats)
	for _, sc := range sum.Scenarios {
		if !sc.Complete() {
			t.Fatalf("every scenario must have its Base column: %+v", sc)
		}
	}
}

func TestSchedulerRecordsCellErrors(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one cell so its simulation fails: an unknown benchmark
	// slips past spec validation only via hand-built cells.
	plan.Cells[0].Opts.Bench = "nosuch"

	s := &Scheduler{}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 || stats.Simulated != len(plan.Cells)-1 {
		t.Fatalf("stats: %+v", stats)
	}
	if res := results[plan.Cells[0].Key]; res.Err == "" {
		t.Fatalf("failed cell must carry its error: %+v", res)
	}
}

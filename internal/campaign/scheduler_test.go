package campaign

import (
	"context"
	"path/filepath"
	"testing"

	"microlib/internal/runner"
)

func tinySpec() Spec {
	w := uint64(500)
	return Spec{
		Name:       "tiny",
		Benchmarks: []string{"gzip", "mcf"},
		Mechanisms: []string{"Base", "TP"},
		Seeds:      []uint64{1, 2},
		Insts:      []uint64{2000},
		Warmup:     &w,
	}
}

func TestExecuteAndCacheResume(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	ctx := context.Background()

	first, err := Execute(ctx, tinySpec(), RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Sched.Total != 8 || first.Sched.Simulated != 8 || first.Sched.CacheHits != 0 || first.Sched.Errors != 0 {
		t.Fatalf("first run stats: %+v", first.Sched)
	}

	second, err := Execute(ctx, tinySpec(), RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Sched.CacheHits != 8 || second.Sched.Simulated != 0 {
		t.Fatalf("second run must be 100%% cache hits: %+v", second.Sched)
	}

	// Cached and fresh runs must agree cell for cell.
	for i, sc := range first.Scenarios {
		for b := range sc.Mean.Values {
			for m := range sc.Mean.Values[b] {
				if sc.Mean.Values[b][m] != second.Scenarios[i].Mean.Values[b][m] {
					t.Fatalf("cached IPC differs at %d/%d/%d", i, b, m)
				}
				if sc.Mean.Values[b][m] <= 0 {
					t.Fatalf("cell %d/%d/%d has no measurement", i, b, m)
				}
			}
		}
	}
	if len(first.Scenarios) != 1 || len(first.Scenarios[0].Ranking) != 1 {
		t.Fatalf("scenarios/ranking: %+v", first.Scenarios)
	}
	if first.Scenarios[0].Ranking[0].Mech != "TP" {
		t.Fatalf("ranking must cover the non-base mechanism: %+v", first.Scenarios[0].Ranking)
	}
}

func TestSchedulerOnResultOnlyForFreshCells(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	fresh := 0
	s := &Scheduler{Cache: cache, OnResult: func(c Cell, r runner.Result) {
		if r.IPC <= 0 {
			t.Errorf("OnResult with empty result for %s/%s", c.Bench, c.Mech)
		}
		fresh++
	}}
	if _, _, err := s.Run(context.Background(), plan.Cells); err != nil {
		t.Fatal(err)
	}
	if fresh != len(plan.Cells) {
		t.Fatalf("OnResult calls: got %d, want %d", fresh, len(plan.Cells))
	}

	fresh = 0
	if _, _, err := s.Run(context.Background(), plan.Cells); err != nil {
		t.Fatal(err)
	}
	if fresh != 0 {
		t.Fatalf("OnResult must not fire for cached cells, got %d", fresh)
	}
}

func TestSchedulerCancellationLeavesResumableCache(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")
	spec := tinySpec()
	spec.Seeds = []uint64{1, 2, 3, 4} // 16 cells
	ctx, cancel := context.WithCancel(context.Background())

	var canceledAfter int
	partial, err := Execute(ctx, spec, RunConfig{
		Workers:  2,
		CacheDir: dir,
		OnProgress: func(p Progress) {
			if p.Done >= 3 {
				cancel() // kill the campaign mid-run
			}
			canceledAfter = p.Done
		},
	})
	if err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if partial.Sched.Completed >= partial.Sched.Total {
		t.Fatalf("campaign must have stopped early: %+v (progress %d)", partial.Sched, canceledAfter)
	}

	cache, err := OpenDiskCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys, err := cache.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) == 0 {
		t.Fatal("interrupted campaign must leave finished cells in the cache")
	}

	resumed, err := Execute(context.Background(), spec, RunConfig{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Sched.Completed != resumed.Sched.Total {
		t.Fatalf("resume must finish the campaign: %+v", resumed.Sched)
	}
	if resumed.Sched.CacheHits < len(keys) {
		t.Fatalf("resume must reuse the %d cached cells: %+v", len(keys), resumed.Sched)
	}
	for _, sc := range resumed.Scenarios {
		if sc.Missing != 0 {
			t.Fatalf("resumed summary still missing cells: %+v", sc)
		}
	}
}

func TestSchedulerRecordsCellErrors(t *testing.T) {
	plan, err := NewPlan(tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one cell so its simulation fails: an unknown benchmark
	// slips past spec validation only via hand-built cells.
	plan.Cells[0].Opts.Bench = "nosuch"

	s := &Scheduler{}
	results, stats, err := s.Run(context.Background(), plan.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Errors != 1 || stats.Simulated != len(plan.Cells)-1 {
		t.Fatalf("stats: %+v", stats)
	}
	if res := results[plan.Cells[0].Key]; res.Err == "" {
		t.Fatalf("failed cell must carry its error: %+v", res)
	}
}

package campaign

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// syntheticResults fills every cell of a plan with a deterministic
// fake IPC so aggregation can be checked without simulating.
func syntheticResults(p *Plan) map[string]CellResult {
	results := map[string]CellResult{}
	for _, c := range p.Cells {
		ipc := 1.0
		if c.Mech() == "TP" {
			ipc = 1.2
		}
		if c.Mech() == "SP" {
			ipc = 0.9
		}
		ipc += 0.01 * float64(c.Seed()) // seed jitter for the CI
		results[c.Key] = CellResult{
			Key: c.Key, Bench: c.Bench(), Mechanism: c.Mech(), Seed: c.Seed(), IPC: ipc,
		}
	}
	return results
}

func TestAggregateGridsAndRanking(t *testing.T) {
	p, err := NewPlan(studySpec()) // 2 bench × {Base,TP,SP} × 2 mem × 2 seeds
	if err != nil {
		t.Fatal(err)
	}
	sum := Aggregate(p, syntheticResults(p), SchedulerStats{Total: len(p.Cells)})

	if len(sum.Scenarios) != 2 {
		t.Fatalf("scenarios: %d", len(sum.Scenarios))
	}
	sc := sum.Scenarios[0]
	bi, ti := sc.Mean.BenchIndex("gzip"), sc.Mean.MechIndex("TP")
	// Seeds 1,2 => mean jitter 0.015.
	if got := sc.Mean.Values[bi][ti]; math.Abs(got-1.215) > 1e-9 {
		t.Errorf("mean: got %v", got)
	}
	if got := sc.CI.Values[bi][ti]; got <= 0 {
		t.Errorf("two seeds must yield a positive CI, got %v", got)
	}
	if sc.Speedup == nil {
		t.Fatal("Base column present: speedup grid expected")
	}
	if got := sc.Speedup.Values[bi][ti]; math.Abs(got-1.215/1.015) > 1e-9 {
		t.Errorf("speedup: got %v", got)
	}
	if len(sc.Ranking) != 2 || sc.Ranking[0].Mech != "TP" || sc.Ranking[1].Mech != "SP" {
		t.Errorf("ranking: %+v", sc.Ranking)
	}
	if sc.Ranking[0].Rank != 1 {
		t.Errorf("rank numbering: %+v", sc.Ranking[0])
	}
}

func TestAggregateWithoutBaseline(t *testing.T) {
	s := studySpec()
	s.Mechanisms = []string{"TP", "SP"}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	sum := Aggregate(p, syntheticResults(p), SchedulerStats{})
	sc := sum.Scenarios[0]
	if sc.Speedup != nil {
		t.Error("no Base column: speedup grid must be nil")
	}
	if len(sc.Ranking) != 2 || sc.Ranking[0].Mech != "TP" {
		t.Errorf("IPC ranking: %+v", sc.Ranking)
	}
	if !strings.Contains(sum.Text(), "no Base column") {
		t.Error("text report must flag the missing baseline")
	}
}

func TestAggregateMissingAndFailedCells(t *testing.T) {
	p, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	results := syntheticResults(p)
	delete(results, p.Cells[0].Key) // canceled before running
	failedKey := p.Cells[1].Key
	results[failedKey] = CellResult{Key: failedKey, Err: "boom"}

	sum := Aggregate(p, results, SchedulerStats{})
	var missing, failed int
	for _, sc := range sum.Scenarios {
		missing += sc.Missing
		failed += len(sc.Failed)
		if !sc.Complete() {
			if sc.Ranking != nil || sc.Speedup != nil {
				t.Errorf("partial scenario must suppress ranking and speedups: %+v", sc)
			}
			// gzip/Base lost both seeds (one missing, one failed).
			if sc.Counts.Values[0][0] != 0 {
				t.Errorf("counts must expose the gap, got %v", sc.Counts.Values[0][0])
			}
		}
	}
	if missing != 1 || failed != 1 {
		t.Fatalf("missing=%d failed=%d", missing, failed)
	}
	text := sum.Text()
	if !strings.Contains(text, "cells missing") || !strings.Contains(text, "boom") {
		t.Errorf("text report must surface gaps:\n%s", text)
	}
	if !strings.Contains(text, "ranking suppressed") {
		t.Errorf("partial report must flag the suppressed ranking:\n%s", text)
	}
	if !strings.Contains(text, "       -") {
		t.Errorf("unmeasured cells must print '-', not a fake 0:\n%s", text)
	}
	// CSV leaves unmeasured cells empty instead of printing 0.
	if !strings.Contains(sum.CSV(), ",0,,,") {
		t.Errorf("csv must leave unmeasured cells empty:\n%s", sum.CSV())
	}
}

func TestSummaryExports(t *testing.T) {
	p, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	sum := Aggregate(p, syntheticResults(p), SchedulerStats{Total: len(p.Cells), Completed: len(p.Cells), Simulated: len(p.Cells)})

	text := sum.Text()
	for _, want := range []string{"campaign \"study\"", "simulated=24", "mean IPC", "ranking", "95% confidence"} {
		if !strings.Contains(text, want) {
			t.Errorf("text export missing %q", want)
		}
	}

	csv := sum.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// header + 2 scenarios × 2 benchmarks × 3 mechanisms
	if len(lines) != 1+2*2*3 {
		t.Errorf("csv rows: got %d\n%s", len(lines), csv)
	}
	if lines[0] != "scenario,bench,mech,n,mean_ipc,ci95,speedup" {
		t.Errorf("csv header: %s", lines[0])
	}

	blob, err := sum.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded Summary
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatalf("JSON export must round-trip: %v", err)
	}
	if decoded.Name != "study" || len(decoded.Scenarios) != 2 {
		t.Errorf("decoded: %+v", decoded)
	}
}

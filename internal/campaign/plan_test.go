package campaign

import (
	"strings"
	"testing"

	"microlib/internal/core"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/runner"
)

func studySpec() Spec {
	w := uint64(500)
	return Spec{
		Name:       "study",
		Benchmarks: []string{"gzip", "mcf"},
		Mechanisms: []string{"Base", "TP", "SP"},
		Memories:   []string{MemNameSDRAM, MemNameConst70},
		Seeds:      []uint64{1, 2},
		Insts:      []uint64{2000},
		Warmup:     &w,
	}
}

func TestPlanExpansion(t *testing.T) {
	p, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2; len(p.Cells) != want {
		t.Fatalf("cells: got %d, want %d", len(p.Cells), want)
	}
	// Deterministic order: benchmark outermost, seed near-innermost.
	if p.Cells[0].Bench() != "gzip" || p.Cells[0].Seed() != 1 || p.Cells[1].Seed() != 2 {
		t.Errorf("unexpected order: %+v %+v", p.Cells[0], p.Cells[1])
	}
	keys := map[string]int{}
	for _, c := range p.Cells {
		if c.Opts.Bench != c.Bench() || c.Opts.Seed != c.Seed() || c.Opts.Mechanism != c.Mech() {
			t.Fatalf("cell/opts mismatch: %+v", c)
		}
		if c.Axis(AxisMemory) == MemNameConst70 && c.Opts.Hier.Memory != hier.MemConst70 {
			t.Fatalf("memory not resolved: %+v", c)
		}
		if prev, dup := keys[c.Key]; dup {
			t.Fatalf("cells %d and %d share fingerprint %s", prev, c.Index, c.Key)
		}
		keys[c.Key] = c.Index
	}
	if len(p.Scenarios()) != 2 {
		t.Errorf("scenarios: got %v", p.Scenarios())
	}
	// The axis table covers every dimension, single-valued ones
	// included, so plan listings always show the full coordinates.
	var names []string
	for _, ax := range p.Axes {
		names = append(names, ax.Name)
	}
	want := []string{AxisBench, AxisMech, AxisHier, AxisMemory, AxisCore,
		AxisQueue, AxisParams, AxisWarmup, AxisInsts, AxisSeed, AxisSelect}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Errorf("axis table: got %v, want %v", names, want)
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same spec must produce the same plan fingerprint")
	}
	for i := range a.Cells {
		if a.Cells[i].Key != b.Cells[i].Key {
			t.Fatalf("cell %d keys differ", i)
		}
	}
}

// TestPlanFingerprintCompat pins the acceptance criterion of the
// axis refactor: a cell expressible before the axis engine existed
// resolves to byte-identical runner options — and therefore the same
// fingerprint, so existing disk caches stay valid. The expectation
// is the pre-refactor resolver, written out by hand.
func TestPlanFingerprintCompat(t *testing.T) {
	spec := studySpec()
	spec.Cores = []string{CoreOoO, CoreInOrder}
	spec.Queues = []int{0, 4}
	spec.Skip = 300
	spec.Params = map[string]map[string]int{"SP": {"entries": 64}}
	spec.PrefetchAsDemand = true
	p, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2 * 2 * 2; len(p.Cells) != want {
		t.Fatalf("cells: got %d, want %d", len(p.Cells), want)
	}
	for _, c := range p.Cells {
		legacy := runner.Options{
			Bench:            c.Bench(),
			Mechanism:        c.Mech(),
			Hier:             hier.DefaultConfig().WithMemory(memoryKind(c.Axis(AxisMemory))),
			CPU:              cpu.DefaultConfig(),
			Insts:            2000,
			Warmup:           500,
			Skip:             300,
			Seed:             c.Seed(),
			InOrder:          c.Axis(AxisCore) == CoreInOrder,
			QueueOverride:    c.Opts.QueueOverride,
			PrefetchAsDemand: true,
		}
		if c.Mech() == "SP" {
			legacy.Params = core.Params{"entries": 64}
		}
		if got, want := c.Key, legacy.Fingerprint(); got != want {
			t.Fatalf("cell %d (%s): fingerprint drifted from the pre-axis resolver", c.Index, c.Scenario())
		}
	}
}

func TestPlanParamsOnlyNamedMechanism(t *testing.T) {
	s := studySpec()
	s.Params = map[string]map[string]int{"SP": {"entries": 64}}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Mech() == "SP" {
			if c.Opts.Params["entries"] != 64 {
				t.Fatalf("SP cell missing params: %+v", c.Opts)
			}
		} else if c.Opts.Params != nil {
			t.Fatalf("%s cell must have no params: %+v", c.Mech(), c.Opts)
		}
	}
}

func TestPlanRejectsUndeclaredParamKey(t *testing.T) {
	s := studySpec()
	s.Params = map[string]map[string]int{"SP": {"stride": 2}}
	if _, err := NewPlan(s); err == nil {
		t.Fatal("misspelled param key must be rejected, not silently defaulted")
	}
	s = studySpec()
	s.ParamSets = []ParamSetSpec{{Name: "a"}, {Name: "b", Params: map[string]map[string]int{"SP": {"stride": 2}}}}
	if _, err := NewPlan(s); err == nil {
		t.Fatal("misspelled paramset key must be rejected, not silently defaulted")
	}
}

func TestHierAxis(t *testing.T) {
	s := studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Hiers = []string{hier.VariantDefault, hier.VariantInfiniteMSHR, hier.VariantSimpleScalar}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scenarios()) != 3 {
		t.Fatalf("scenarios: %v", p.Scenarios())
	}
	for _, c := range p.Cells {
		inf, ss := c.Opts.Hier.L1D.InfiniteMSHR, c.Opts.Hier.L1D.NoPipelineStall
		switch c.Axis(AxisHier) {
		case hier.VariantDefault:
			if inf || ss {
				t.Fatalf("default variant altered: %+v", c.Opts.Hier.L1D)
			}
		case hier.VariantInfiniteMSHR:
			if !inf || ss {
				t.Fatalf("infinite-mshr variant wrong: %+v", c.Opts.Hier.L1D)
			}
		case hier.VariantSimpleScalar:
			if !inf || !ss {
				t.Fatalf("simplescalar variant wrong: %+v", c.Opts.Hier.L1D)
			}
		}
	}
}

func TestParamSetAxis(t *testing.T) {
	s := studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Params = map[string]map[string]int{"SP": {"entries": 32}}
	s.ParamSets = []ParamSetSpec{
		{Name: "published"},
		{Name: "small", Params: map[string]map[string]int{"SP": {"entries": 8}, "TP": {"queue": 2}}},
	}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scenarios()) != 2 {
		t.Fatalf("scenarios: %v", p.Scenarios())
	}
	baseKeys := map[string][]string{}
	for _, c := range p.Cells {
		ps := c.Axis(AxisParams)
		switch {
		case c.Mech() == "SP" && ps == "published":
			if c.Opts.Params["entries"] != 32 {
				t.Fatalf("base params must apply in every set: %+v", c.Opts.Params)
			}
		case c.Mech() == "SP" && ps == "small":
			if c.Opts.Params["entries"] != 8 {
				t.Fatalf("set overrides must win over base params: %+v", c.Opts.Params)
			}
		case c.Mech() == "TP" && ps == "small":
			if c.Opts.Params["queue"] != 2 {
				t.Fatalf("set params missing: %+v", c.Opts.Params)
			}
		case c.Mech() == "Base":
			baseKeys[c.Bench()+"/"+ps] = append(baseKeys[c.Bench()+"/"+ps], c.Key)
		}
	}
	// A baseline untouched by the set shares its fingerprint across
	// both scenarios — and both scenarios keep their copy, so each
	// grid has its Base column (the cache makes the rerun free).
	if len(baseKeys) != 2*2 { // grouped by bench × set, two seeds each
		t.Fatalf("base cells: %v", baseKeys)
	}
	for bench := range map[string]bool{"gzip": true, "mcf": true} {
		a := baseKeys[bench+"/published"]
		b := baseKeys[bench+"/small"]
		if len(a) != 2 || len(b) != 2 || a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("base fingerprints must match across paramsets: %v vs %v", a, b)
		}
	}
}

func TestSelectionAxis(t *testing.T) {
	s := studySpec()
	s.Memories = []string{MemNameSDRAM}
	s.Skip = 700
	s.Selections = []string{SelSkip, "skip:123"}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		want := uint64(700)
		if c.Axis(AxisSelect) == "skip:123" {
			want = 123
		}
		if c.Opts.Skip != want {
			t.Fatalf("selection %s resolved skip=%d, want %d", c.Axis(AxisSelect), c.Opts.Skip, want)
		}
	}
}

func TestSimPointSelectionMatchesRunner(t *testing.T) {
	s := studySpec()
	s.Benchmarks = []string{"gzip"}
	s.Mechanisms = []string{"Base", "TP"}
	s.Memories = []string{MemNameSDRAM}
	s.Seeds = []uint64{1}
	s.Selections = []string{SelSimPoint}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	opts := p.Cells[0].Opts
	want, err := runner.SimPointSkip(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Opts.Skip != want {
			t.Fatalf("simpoint offset %d, want %d (mechanisms must share the per-benchmark offset)", c.Opts.Skip, want)
		}
	}
}

func TestWarmupAxis(t *testing.T) {
	s := studySpec()
	s.Warmup = nil
	s.Memories = []string{MemNameSDRAM}
	s.Warmups = []uint64{100, 200}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Scenarios()) != 2 {
		t.Fatalf("scenarios: %v", p.Scenarios())
	}
	for _, c := range p.Cells {
		if got := c.Opts.Warmup; got != 100 && got != 200 {
			t.Fatalf("warmup not resolved: %+v", c.Opts)
		}
	}

	both := studySpec() // studySpec sets Warmup
	both.Warmups = []uint64{100}
	if _, err := NewPlan(both); err == nil || !strings.Contains(err.Error(), "not both") {
		t.Fatalf("warmup+warmups must be rejected, got %v", err)
	}
}

package campaign

import (
	"testing"

	"microlib/internal/hier"
)

func studySpec() Spec {
	w := uint64(500)
	return Spec{
		Name:       "study",
		Benchmarks: []string{"gzip", "mcf"},
		Mechanisms: []string{"Base", "TP", "SP"},
		Memories:   []string{MemNameSDRAM, MemNameConst70},
		Seeds:      []uint64{1, 2},
		Insts:      []uint64{2000},
		Warmup:     &w,
	}
}

func TestPlanExpansion(t *testing.T) {
	p, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3 * 2 * 2; len(p.Cells) != want {
		t.Fatalf("cells: got %d, want %d", len(p.Cells), want)
	}
	// Deterministic order: benchmark outermost, seed innermost.
	if p.Cells[0].Bench != "gzip" || p.Cells[0].Seed != 1 || p.Cells[1].Seed != 2 {
		t.Errorf("unexpected order: %+v %+v", p.Cells[0], p.Cells[1])
	}
	keys := map[string]int{}
	for _, c := range p.Cells {
		if c.Opts.Bench != c.Bench || c.Opts.Seed != c.Seed {
			t.Fatalf("cell/opts mismatch: %+v", c)
		}
		if c.Memory == MemNameConst70 && c.Opts.Hier.Memory != hier.MemConst70 {
			t.Fatalf("memory not resolved: %+v", c)
		}
		if prev, dup := keys[c.Key]; dup {
			t.Fatalf("cells %d and %d share fingerprint %s", prev, c.Index, c.Key)
		}
		keys[c.Key] = c.Index
	}
	if len(p.Scenarios()) != 2 {
		t.Errorf("scenarios: got %v", p.Scenarios())
	}
}

func TestPlanDeterministic(t *testing.T) {
	a, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(studySpec())
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same spec must produce the same plan fingerprint")
	}
	for i := range a.Cells {
		if a.Cells[i].Key != b.Cells[i].Key {
			t.Fatalf("cell %d keys differ", i)
		}
	}
}

func TestPlanParamsOnlyNamedMechanism(t *testing.T) {
	s := studySpec()
	s.Params = map[string]map[string]int{"SP": {"entries": 64}}
	p, err := NewPlan(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range p.Cells {
		if c.Mech == "SP" {
			if c.Opts.Params["entries"] != 64 {
				t.Fatalf("SP cell missing params: %+v", c.Opts)
			}
		} else if c.Opts.Params != nil {
			t.Fatalf("%s cell must have no params: %+v", c.Mech, c.Opts)
		}
	}
}

func TestPlanRejectsUndeclaredParamKey(t *testing.T) {
	s := studySpec()
	s.Params = map[string]map[string]int{"SP": {"stride": 2}}
	if _, err := NewPlan(s); err == nil {
		t.Fatal("misspelled param key must be rejected, not silently defaulted")
	}
}

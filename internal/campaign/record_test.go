package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"microlib/internal/runner"
	"microlib/internal/trace"
)

// TestRecordWindowReplaysLikeLiveSkip is the windowed-recording
// contract: a trace recorded with a skip offset, replayed from its
// start, is bit-identical to the live workload simulated with
// Options.Skip at the same offset — same cycles, same cache
// counters, not just close.
func TestRecordWindowReplaysLikeLiveSkip(t *testing.T) {
	const (
		seed   = 7
		skip   = 12_345
		warmup = 1_000
		insts  = 8_000
	)
	var buf bytes.Buffer
	n, err := RecordWindow(Spec{}, "gzip", RecordOptions{Seed: seed, Insts: warmup + insts, Skip: skip}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != warmup+insts {
		t.Fatalf("recorded %d of %d", n, warmup+insts)
	}
	path := filepath.Join(t.TempDir(), "window.mlt")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	live := runner.DefaultOptions("gzip", "Base")
	live.Seed = seed
	live.Skip = skip
	live.Warmup = warmup
	live.Insts = insts
	liveRes, err := runner.Run(live)
	if err != nil {
		t.Fatal(err)
	}

	wl, err := runner.NewTraceWorkload(path)
	if err != nil {
		t.Fatal(err)
	}
	replay := runner.DefaultOptions("gzip", "Base")
	replay.Workload = wl
	replay.Warmup = warmup
	replay.Insts = insts
	replayRes, err := runner.Run(replay)
	if err != nil {
		t.Fatal(err)
	}

	if liveRes.CPU != replayRes.CPU {
		t.Errorf("CPU result drifted: live %+v, replay %+v", liveRes.CPU, replayRes.CPU)
	}
	if liveRes.L1D != replayRes.L1D || liveRes.L2 != replayRes.L2 || liveRes.Mem != replayRes.Mem {
		t.Errorf("cache/memory counters drifted:\nlive   %+v\nreplay %+v", liveRes.L1D, replayRes.L1D)
	}
	if liveRes.IPC != replayRes.IPC {
		t.Errorf("IPC drifted: live %v, replay %v", liveRes.IPC, replayRes.IPC)
	}
}

func TestRecordWindowSkipExhaustsSource(t *testing.T) {
	// Record a short trace, then re-record from it with a skip larger
	// than its length: the skip itself must fail loudly.
	dir := t.TempDir()
	short := filepath.Join(dir, "short.mlt")
	f, err := os.Create(short)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(Spec{}, "gzip", 42, 1_000, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := Spec{Workloads: []WorkloadSpec{{Name: "short", Trace: short}}}
	_, err = RecordWindow(spec, "short", RecordOptions{Insts: 10, Skip: 5_000}, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "skipped") {
		t.Fatalf("want skip-exhaustion error, got %v", err)
	}
}

// TestRecordSimPointMatchesCampaignCell: a windowed recording with
// the same seed/warmup/insts split as a campaign cell under
// "selections": ["simpoint"] captures exactly the stream that cell
// consumes — same resolved offset, warmup+insts instructions long.
func TestRecordSimPointMatchesCampaignCell(t *testing.T) {
	w := uint64(4_000)
	spec := Spec{
		Benchmarks: []string{"twolf"},
		Mechanisms: []string{"Base"},
		Selections: []string{SelSimPoint},
		Warmup:     &w,
		Insts:      []uint64{16_000},
		Seeds:      []uint64{11},
	}
	p, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	cell := p.Cells[0]

	var rec bytes.Buffer
	n, err := RecordWindow(Spec{}, "twolf",
		RecordOptions{Seed: 11, Warmup: 4_000, Insts: 16_000, Selection: SelSimPoint}, &rec)
	if err != nil {
		t.Fatal(err)
	}
	if n != 20_000 {
		t.Fatalf("recorded %d, want warmup+insts", n)
	}

	var explicit bytes.Buffer
	if _, err := RecordWindow(Spec{}, "twolf",
		RecordOptions{Seed: 11, Warmup: 4_000, Insts: 16_000, Skip: cell.Opts.Skip}, &explicit); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rec.Bytes(), explicit.Bytes()) {
		t.Fatalf("record simpoint window differs from the campaign cell's (cell skip %d)", cell.Opts.Skip)
	}
}

func TestRecordSelectionSimPoint(t *testing.T) {
	const insts = 20_000
	off, err := runner.SimPointSkip(runner.Options{Bench: "mcf", Seed: 42, Insts: insts})
	if err != nil {
		t.Fatal(err)
	}

	var viaSel, viaSkip bytes.Buffer
	if _, err := RecordWindow(Spec{}, "mcf", RecordOptions{Seed: 42, Insts: insts, Selection: SelSimPoint}, &viaSel); err != nil {
		t.Fatal(err)
	}
	if _, err := RecordWindow(Spec{}, "mcf", RecordOptions{Seed: 42, Insts: insts, Skip: off}, &viaSkip); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaSel.Bytes(), viaSkip.Bytes()) {
		t.Fatal("simpoint selection must record the same window as its explicit offset")
	}

	// "skip:N" pins an explicit offset through the selection syntax.
	var viaN bytes.Buffer
	if _, err := RecordWindow(Spec{}, "mcf", RecordOptions{Seed: 42, Insts: insts, Selection: "skip:" + uitoa(off)}, &viaN); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaN.Bytes(), viaSkip.Bytes()) {
		t.Fatal("skip:N selection must match the explicit offset")
	}

	// Both an offset and an offset-computing selection is ambiguous.
	if _, err := RecordWindow(Spec{}, "mcf", RecordOptions{Insts: 10, Skip: 3, Selection: SelSimPoint}, &bytes.Buffer{}); err == nil {
		t.Fatal("skip+simpoint accepted")
	}
	if _, err := RecordWindow(Spec{}, "mcf", RecordOptions{Insts: 10, Skip: 3, Selection: "skip:4"}, &bytes.Buffer{}); err == nil {
		t.Fatal("skip+skip:N accepted")
	}
}

func uitoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

// TestRecordWindowFromTraceCutsRegion re-records a region out of an
// existing trace: the new file must hold exactly the skipped window.
func TestRecordWindowFromTraceCutsRegion(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.mlt")
	f, err := os.Create(full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Record(Spec{}, "twolf", 9, 5_000, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	spec := Spec{Workloads: []WorkloadSpec{{Name: "full", Trace: full}}}
	var window bytes.Buffer
	if _, err := RecordWindow(spec, "full", RecordOptions{Insts: 1_000, Skip: 2_000}, &window); err != nil {
		t.Fatal(err)
	}

	// Compare instruction-by-instruction against the source region.
	src, err := trace.Open(full)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	cut, err := trace.NewReader(bytes.NewReader(window.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var a, b trace.Inst
	trace.Skip(src, 2_000)
	for i := 0; i < 1_000; i++ {
		if !src.Next(&a) || !cut.Next(&b) {
			t.Fatalf("stream ended at %d", i)
		}
		if a != b {
			t.Fatalf("instruction %d differs: %+v vs %+v", i, a, b)
		}
	}
	if cut.Next(&b) {
		t.Fatal("window longer than requested")
	}
}

package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"microlib/internal/core"
	"microlib/internal/fault"
	"microlib/internal/runner"
	"microlib/internal/telemetry"
)

// SchedulerStats counts what a campaign execution actually did.
// Completed = CacheHits + Simulated + Errors; cells neither started
// nor finished before cancellation are the remainder of Total.
type SchedulerStats struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	CacheHits int `json:"cache_hits"`
	Simulated int `json:"simulated"`
	Errors    int `json:"errors"`
	// Retries counts transient-failure retry attempts (cells retried
	// after a timeout, cache writes retried after an I/O error).
	Retries int `json:"retries,omitempty"`
	// Degraded counts non-fatal infrastructure failures the campaign
	// survived (unpersisted cache entries, quarantined corrupt cells).
	Degraded int `json:"degraded,omitempty"`
	// PrefixRuns counts warm-up prefixes simulated for checkpoint
	// capture; CheckpointHits counts cells whose measurement phase ran
	// from a restored warm snapshot (each is a skip+warm-up simulation
	// not paid), CheckpointMisses warm-eligible cells that fell back to
	// a cold run. All zero when warm checkpointing is off.
	PrefixRuns       int `json:"prefix_runs,omitempty"`
	CheckpointHits   int `json:"checkpoint_hits,omitempty"`
	CheckpointMisses int `json:"checkpoint_misses,omitempty"`
	// FailedKinds breaks Errors down by taxonomy kind
	// (panic/timeout/model/io).
	FailedKinds map[string]int `json:"failed_kinds,omitempty"`
}

func (s *SchedulerStats) countFailure(kind ErrKind) {
	s.Errors++
	if s.FailedKinds == nil {
		s.FailedKinds = map[string]int{}
	}
	k := string(kind)
	if k == "" {
		k = string(KindModel)
	}
	s.FailedKinds[k]++
}

// Progress reports one finished cell to the OnProgress callback.
type Progress struct {
	Done      int // cells finished so far, including this one
	Total     int
	Cell      Cell
	FromCache bool
	Err       error
	// Source tells where the result came from: "sim", "cache", or
	// "journal" (a deterministic failure replayed by a resumed run).
	Source string
	// Wall is the host wall-clock time the cell occupied a worker;
	// (near-)zero for cache hits and duplicate copies.
	Wall time.Duration
	// Insts is the number of simulated instructions the cell ran
	// (warm-up + measured); zero for cache hits, duplicates and
	// failures. Insts/Wall is the cell's simulation throughput.
	Insts uint64
	// Attempts is how many retries the cell consumed before this
	// outcome (0 for first-try results).
	Attempts int
	// Warm marks a cell whose measurement phase ran from a restored
	// warm-state checkpoint (bit-identical to a cold run, minus the
	// skip and warm-up wall time).
	Warm bool
}

// CellCache serves and persists finished cells by fingerprint key.
// DiskCache is the persistent implementation, MemCache the
// in-process one, and LayeredCache chains them.
type CellCache interface {
	// Get returns the cached result for key, if present and intact.
	Get(key string) (CellResult, bool)
	// Put stores a successful result under its key.
	Put(res CellResult) error
}

// Scheduler executes plan cells on a bounded worker pool. The zero
// value runs with GOMAXPROCS workers and no cache.
type Scheduler struct {
	// Workers bounds concurrent simulations; <1 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, serves finished cells and persists new
	// ones, making interrupted or extended campaigns incremental.
	Cache CellCache
	// OnProgress, when non-nil, observes every finished cell. Called
	// serially under the scheduler's lock.
	OnProgress func(Progress)
	// OnStart, when non-nil, observes every distinct cell as a worker
	// picks it up (before the cache probe). Unlike OnProgress it is
	// called concurrently from the worker pool; duplicate copies of a
	// fingerprint are never started, so they only reach OnProgress.
	OnStart func(Cell)
	// Live, when non-nil, receives lock-free counter updates
	// (started/finished cells, busy workers, simulated instructions)
	// that a metrics endpoint can scrape mid-run.
	Live *LiveStats
	// Interval, together with IntervalSink, samples every simulated
	// (not cached) cell at this cycle granularity and hands the
	// finished series to the sink — the per-cell time-series artifact
	// of a campaign. Sampling does not alter results or fingerprints.
	Interval     uint64
	IntervalSink func(Cell, []telemetry.Interval)
	// Warm, when non-nil, enables warm-state checkpointing: cells
	// sharing a warm-up prefix simulate it once and fork their
	// measurement phases from the snapshot (see Warm). Results are
	// bit-identical to cold runs. Sampled cells (Interval set) always
	// run cold.
	Warm *Warm

	// CellTimeout bounds each cell's wall time; a cell exceeding it is
	// canceled and recorded as a timeout failure (transient, so Retry
	// applies). 0 disables the deadline.
	CellTimeout time.Duration
	// Retry retries transient cell failures (timeouts) and cache
	// writes with capped exponential backoff. Deterministic failures
	// (model errors, panics) are never retried.
	Retry RetryPolicy
	// KnownFailures pre-resolves cells whose deterministic failure an
	// earlier run already recorded (resume reconstructs it from the
	// journal); they are served without re-simulating.
	KnownFailures map[string]CellResult
	// OnDegrade, when non-nil, observes non-fatal infrastructure
	// failures (see Degradation). Called concurrently from workers.
	OnDegrade func(Degradation)
	// OnRetry, when non-nil, observes every transient-failure retry
	// before its backoff sleep. Called concurrently from workers.
	OnRetry func(RetryInfo)
	// OnStall, when non-nil, receives the stall watchdog's flag (see
	// StallFactor). Called from the watchdog goroutine.
	OnStall func(StallReport)
	// StallFactor arms the campaign-level stall watchdog: when no cell
	// has finished for StallFactor × the median completed-cell wall
	// time (floored at StallMin), the campaign is flagged as stalled —
	// once per stall episode. 0 disables the watchdog.
	StallFactor float64
	// StallMin floors the stall threshold; defaults to 5s when the
	// watchdog is armed.
	StallMin time.Duration
	// Faults, when non-nil, arms the fault-injection points inside
	// the scheduler (cell.panic, cell.slow). Testing only.
	Faults *fault.Injector

	stall     *stallWatch
	degradedN atomic.Int64
}

// Degrade feeds one non-fatal infrastructure failure into the
// running campaign's counters and OnDegrade hook. The scheduler calls
// it for its own cache-write failures; Execute also wires it as the
// disk cache's read-side degradation sink. Safe from any goroutine.
func (s *Scheduler) Degrade(d Degradation) {
	s.degradedN.Add(1)
	if s.Live != nil {
		s.Live.noteDegraded()
	}
	if s.OnDegrade != nil {
		s.OnDegrade(d)
	}
}

// Run executes the cells and returns their results keyed by cell
// fingerprint. Cell simulation failures — including recovered panics
// and deadline timeouts — are recorded in the result map (Err set),
// classified and counted, not fatal. When ctx is canceled, no new
// cells start, in-flight simulations wind down without contributing
// results, and Run returns ctx's error alongside the results
// gathered so far — everything already simulated is in the cache, so
// a rerun resumes where the campaign stopped.
func (s *Scheduler) Run(ctx context.Context, cells []Cell) (map[string]CellResult, SchedulerStats, error) {
	workers := s.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) && len(cells) > 0 {
		workers = len(cells)
	}

	stats := SchedulerStats{Total: len(cells)}
	results := make(map[string]CellResult, len(cells))
	var mu sync.Mutex
	s.degradedN.Store(0)
	if s.Live != nil {
		s.Live.begin(stats.Total, workers)
	}

	if s.StallFactor > 0 {
		min := s.StallMin
		if min <= 0 {
			min = 5 * time.Second
		}
		s.stall = &stallWatch{factor: s.StallFactor, min: min, last: time.Now(), total: len(cells)}
		stop := make(chan struct{})
		defer close(stop)
		go s.stallLoop(stop)
		defer func() { s.stall = nil }()
	}

	if s.Warm != nil {
		s.Warm.prepare(cells)
	}

	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One machine arena per worker: checkpoint restores fully
			// overwrite it, so cells of a prefix group reuse the same
			// caches, calendar and window instead of reallocating.
			arena := &warmArena{}
			defer arena.drop()
			for cell := range jobs {
				s.runCell(ctx, cell, arena, &mu, results, &stats)
			}
		}()
	}

	// A plan may repeat a fingerprint across scenarios (a baseline
	// untouched by a parameter-set axis), anywhere in plan order.
	// Dispatching the copies would simulate the same cell on several
	// workers; feed each distinct key once and serve the copies from
	// the finished result afterwards.
	fed := map[string]bool{}
	var dups []Cell
feed:
	for _, c := range cells {
		if fed[c.Key] {
			dups = append(dups, c)
			continue
		}
		fed[c.Key] = true
		select {
		case jobs <- c:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for _, c := range dups {
		res, ok := results[c.Key]
		if !ok {
			continue // first copy canceled: this one is missing too
		}
		var dupErr error
		mu.Lock()
		stats.Completed++
		src := "cache"
		if res.Err != "" {
			// A recorded failure is deterministic (transient ones are
			// not stored for sharing), so the copy shares it instead
			// of racing a doomed rerun onto a worker.
			stats.countFailure(ErrKind(res.ErrKind))
			dupErr = &CellError{Kind: ErrKind(res.ErrKind), Msg: res.Err}
			src = "sim"
		} else {
			stats.CacheHits++
		}
		if s.Live != nil {
			s.Live.cellFinished(dupErr == nil, dupErr, 0, 0)
		}
		if s.OnProgress != nil {
			s.OnProgress(Progress{Done: stats.Completed, Total: stats.Total, Cell: c, FromCache: dupErr == nil, Source: src, Err: dupErr})
		}
		mu.Unlock()
	}
	stats.Degraded = int(s.degradedN.Load())
	if s.Warm != nil {
		stats.PrefixRuns = int(s.Warm.prefixRuns.Load())
		stats.CheckpointHits = int(s.Warm.hits.Load())
		stats.CheckpointMisses = int(s.Warm.misses.Load())
	}
	// Cancellation that landed after the last cell finished did not
	// interrupt anything: the campaign is complete.
	err := ctx.Err()
	if err != nil && stats.Completed == stats.Total {
		err = nil
	}
	return results, stats, err
}

// runCell executes one cell end to end on a worker goroutine.
//
//ml:worker
func (s *Scheduler) runCell(ctx context.Context, cell Cell, arena *warmArena, mu *sync.Mutex, results map[string]CellResult, stats *SchedulerStats) {
	if s.OnStart != nil {
		s.OnStart(cell)
	}
	if s.Live != nil {
		// defer keeps the busy-worker gauge honest on every exit,
		// including the cancellation return that reports nothing else.
		s.Live.cellRunning(1)
		defer s.Live.cellRunning(-1)
	}
	if res, ok := s.KnownFailures[cell.Key]; ok {
		// A deterministic failure recorded by an earlier run: rerunning
		// the cell would fail the same way, so serve the recorded
		// failure (the resume counterpart of the duplicate-cell rule).
		err := &CellError{Kind: ErrKind(res.ErrKind), Msg: res.Err}
		s.finish(mu, results, stats, cell, res, Progress{Source: "journal", Err: err})
		return
	}
	if s.Cache != nil {
		if res, ok := s.Cache.Get(cell.Key); ok {
			s.finish(mu, results, stats, cell, res, Progress{FromCache: true, Source: "cache"})
			return
		}
	}

	// Telemetry sampling goes on a local copy of the options so the
	// cell's fingerprint-carrying Opts stay untouched (the fields are
	// outside the fingerprint anyway, but a sink closure must never
	// leak into a shared Cell).
	opts := cell.Opts
	var ivs []telemetry.Interval
	if s.Interval > 0 && s.IntervalSink != nil {
		opts.Interval = s.Interval
		opts.IntervalSink = func(iv telemetry.Interval) { ivs = append(ivs, iv) }
	}

	var (
		full     runner.Result
		err      error
		wall     time.Duration
		attempts int
		warm     bool
	)
	for {
		ivs = ivs[:0] // a retried attempt starts a fresh series
		t0 := time.Now()
		full, warm, err = s.simulate(ctx, cell, opts, arena)
		wall = time.Since(t0)
		if err == nil {
			break
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The campaign (not the cell) was canceled: the cell
			// produced no usable measurement; leave it unrecorded for
			// the resumed run. A cell that finished just before
			// cancellation (err == nil) is kept and cached.
			return
		}
		kind := Classify(err)
		if !kind.Transient() || attempts >= s.Retry.Max {
			break
		}
		attempts++
		delay := s.Retry.Delay(attempts)
		mu.Lock()
		stats.Retries++
		mu.Unlock()
		if s.Live != nil {
			s.Live.noteRetry()
		}
		if s.OnRetry != nil {
			s.OnRetry(RetryInfo{Cell: cell, Attempt: attempts, Err: err, Kind: kind, Delay: delay})
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return // unrecorded: the resumed run retries it fresh
		}
	}

	var insts uint64
	if err == nil {
		insts = full.CPU.Insts
		if warm {
			// A warm cell simulated only its measurement phase; the
			// warm-up instructions in the committed total were paid by
			// the shared prefix run, not this cell's wall time.
			insts -= opts.Warmup
		}
		if s.IntervalSink != nil && len(ivs) > 0 {
			s.IntervalSink(cell, ivs)
		}
	} else {
		err = asCellError(err)
	}

	res := toCellResult(cell, full, err)
	if err == nil && s.Cache != nil {
		// A failed Put degrades to recomputation next time; the
		// in-memory result is still good — but the degradation is
		// counted and journaled, not silently dropped.
		if perr := s.putWithRetry(ctx, res); perr != nil {
			s.Degrade(Degradation{Op: "cache.put", Key: cell.Key, Err: perr})
		}
	}

	s.finish(mu, results, stats, cell, res, Progress{Err: err, Source: "sim", Wall: wall, Insts: insts, Attempts: attempts, Warm: warm})
}

// simulate runs one attempt of a cell under the per-cell deadline,
// converting a deadline cut into a typed timeout failure and a
// simulation panic (the OoO watchdog, a model bug) into a typed panic
// failure with its stack — the cell fails, the campaign continues.
// warm reports whether the attempt was served from a warm-state
// checkpoint instead of a cold run.
func (s *Scheduler) simulate(ctx context.Context, cell Cell, opts runner.Options, arena *warmArena) (full runner.Result, warm bool, err error) {
	cctx := ctx
	if s.CellTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, s.CellTimeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = &CellError{
				Kind:  KindPanic,
				Msg:   fmt.Sprintf("panic: %v", r),
				Stack: string(debug.Stack()),
			}
		}
	}()
	if s.Faults.Fire(fault.CellPanic, cell.Key) {
		panic(fmt.Sprintf("fault: injected panic in cell %s", cell.Key))
	}
	if s.Faults.Fire(fault.CellSlow, cell.Key) {
		select {
		case <-time.After(s.Faults.SlowFor):
		case <-cctx.Done():
		}
	}
	if full, ok := s.warmAttempt(cctx, cell, opts, arena); ok {
		return full, true, nil
	}
	full, err = runner.RunContext(cctx, opts)
	if err != nil && cctx.Err() != nil && ctx.Err() == nil {
		// The cell's own deadline cut it, not campaign cancellation.
		err = &CellError{Kind: KindTimeout, Msg: fmt.Sprintf("cell exceeded deadline %v", s.CellTimeout)}
	}
	return full, false, err
}

// putWithRetry persists one result, retrying transient cache I/O per
// the retry policy.
func (s *Scheduler) putWithRetry(ctx context.Context, res CellResult) error {
	err := s.Cache.Put(res)
	for attempt := 1; err != nil && attempt <= s.Retry.Max; attempt++ {
		select {
		case <-time.After(s.Retry.Delay(attempt)):
		case <-ctx.Done():
			return err
		}
		err = s.Cache.Put(res)
	}
	return err
}

// finish records one resolved cell under the scheduler lock: result
// map, counters, live stats, progress callback, stall watchdog.
func (s *Scheduler) finish(mu *sync.Mutex, results map[string]CellResult, stats *SchedulerStats, cell Cell, res CellResult, p Progress) {
	mu.Lock()
	results[cell.Key] = res
	stats.Completed++
	switch {
	case res.Err != "":
		stats.countFailure(ErrKind(res.ErrKind))
	case p.FromCache:
		stats.CacheHits++
	default:
		stats.Simulated++
	}
	if s.Live != nil {
		s.Live.cellFinished(p.FromCache, p.Err, p.Wall, p.Insts)
	}
	if s.stall != nil {
		s.stall.cellFinished(p.Wall)
	}
	if s.OnProgress != nil {
		p.Done = stats.Completed
		p.Total = stats.Total
		p.Cell = cell
		s.OnProgress(p)
	}
	mu.Unlock()
}

// stallWatch tracks campaign liveness: the wall times of completed
// cells (for the median) and the time of the last finish.
type stallWatch struct {
	mu      sync.Mutex
	factor  float64
	min     time.Duration
	last    time.Time
	walls   []time.Duration
	done    int
	total   int
	flagged bool
}

func (w *stallWatch) cellFinished(wall time.Duration) {
	w.mu.Lock()
	w.last = time.Now()
	w.done++
	w.flagged = false // progress ends the stall episode
	if wall > 0 {
		w.walls = append(w.walls, wall)
	}
	w.mu.Unlock()
}

// check flags a stall once per episode.
func (w *stallWatch) check() (StallReport, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.flagged || w.done >= w.total {
		return StallReport{}, false
	}
	var median time.Duration
	if len(w.walls) > 0 {
		sorted := append([]time.Duration(nil), w.walls...)
		sort.Slice(sorted, func(i, k int) bool { return sorted[i] < sorted[k] })
		median = sorted[len(sorted)/2]
	}
	threshold := time.Duration(w.factor * float64(median))
	if threshold < w.min {
		threshold = w.min
	}
	idle := time.Since(w.last)
	if idle <= threshold {
		return StallReport{}, false
	}
	w.flagged = true
	return StallReport{Idle: idle, Threshold: threshold, Median: median, Done: w.done, Total: w.total}, true
}

func (s *Scheduler) stallLoop(stop <-chan struct{}) {
	w := s.stall
	tick := w.min / 8
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > time.Second {
		tick = time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		if rep, ok := w.check(); ok {
			if s.Live != nil {
				s.Live.noteStall()
			}
			if s.OnStall != nil {
				s.OnStall(rep)
			}
		}
	}
}

// toCellResult projects a runner result onto the serializable cell
// form.
func toCellResult(cell Cell, full runner.Result, err error) CellResult {
	res := CellResult{
		Key:       cell.Key,
		Bench:     cell.Bench(),
		Mechanism: cell.Mech(),
		Seed:      cell.Seed(),
	}
	if err != nil {
		res.Err = err.Error()
		res.ErrKind = string(Classify(err))
		return res
	}
	res.IPC = full.IPC
	res.Cycles = full.CPU.Cycles
	res.Insts = full.CPU.Insts
	res.L1DMissRatio = full.L1D.MissRatio()
	res.L2MissRatio = full.L2.MissRatio()
	res.PrefetchIssued = full.L1D.PrefetchIssued + full.L2.PrefetchIssued
	res.PrefetchUseful = full.L1D.PrefetchUseful + full.L2.PrefetchUseful
	res.AvgReadLatency = full.Mem.AvgReadLatency()
	// Always non-nil, even when the mechanism adds no hardware: a
	// nil Hardware marks an entry cached before the cost fields
	// existed, so consumers can tell "cost-free" from "stale entry".
	res.Hardware = full.Hardware
	if res.Hardware == nil {
		res.Hardware = []core.HWTable{}
	}
	res.BaseCacheAccesses = full.BaseCacheAccesses
	res.Refusals = RefusalStats{
		RejectPort:  full.L1D.RejectPort + full.L1I.RejectPort + full.L2.RejectPort,
		RejectStall: full.L1D.RejectStall + full.L1I.RejectStall + full.L2.RejectStall,
		RejectMSHR:  full.L1D.RejectMSHR + full.L1I.RejectMSHR + full.L2.RejectMSHR,
		RetryPort:   full.CPU.RetryPort,
		RetryStall:  full.CPU.RetryStall,
		RetryMSHR:   full.CPU.RetryMSHR,
	}
	return res
}

package campaign

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"

	"microlib/internal/core"
	"microlib/internal/runner"
	"microlib/internal/telemetry"
)

// SchedulerStats counts what a campaign execution actually did.
// Completed = CacheHits + Simulated + Errors; cells neither started
// nor finished before cancellation are the remainder of Total.
type SchedulerStats struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	CacheHits int `json:"cache_hits"`
	Simulated int `json:"simulated"`
	Errors    int `json:"errors"`
}

// Progress reports one finished cell to the OnProgress callback.
type Progress struct {
	Done      int // cells finished so far, including this one
	Total     int
	Cell      Cell
	FromCache bool
	Err       error
	// Wall is the host wall-clock time the cell occupied a worker;
	// (near-)zero for cache hits and duplicate copies.
	Wall time.Duration
	// Insts is the number of simulated instructions the cell ran
	// (warm-up + measured); zero for cache hits, duplicates and
	// failures. Insts/Wall is the cell's simulation throughput.
	Insts uint64
}

// CellCache serves and persists finished cells by fingerprint key.
// DiskCache is the persistent implementation, MemCache the
// in-process one, and LayeredCache chains them.
type CellCache interface {
	// Get returns the cached result for key, if present and intact.
	Get(key string) (CellResult, bool)
	// Put stores a successful result under its key.
	Put(res CellResult) error
}

// Scheduler executes plan cells on a bounded worker pool. The zero
// value runs with GOMAXPROCS workers and no cache.
type Scheduler struct {
	// Workers bounds concurrent simulations; <1 means GOMAXPROCS.
	Workers int
	// Cache, when non-nil, serves finished cells and persists new
	// ones, making interrupted or extended campaigns incremental.
	Cache CellCache
	// OnProgress, when non-nil, observes every finished cell. Called
	// serially under the scheduler's lock.
	OnProgress func(Progress)
	// OnStart, when non-nil, observes every distinct cell as a worker
	// picks it up (before the cache probe). Unlike OnProgress it is
	// called concurrently from the worker pool; duplicate copies of a
	// fingerprint are never started, so they only reach OnProgress.
	OnStart func(Cell)
	// Live, when non-nil, receives lock-free counter updates
	// (started/finished cells, busy workers, simulated instructions)
	// that a metrics endpoint can scrape mid-run.
	Live *LiveStats
	// Interval, together with IntervalSink, samples every simulated
	// (not cached) cell at this cycle granularity and hands the
	// finished series to the sink — the per-cell time-series artifact
	// of a campaign. Sampling does not alter results or fingerprints.
	Interval     uint64
	IntervalSink func(Cell, []telemetry.Interval)
}

// Run executes the cells and returns their results keyed by cell
// fingerprint. Cell simulation failures are recorded in the result
// map (Err set) and counted, not fatal. When ctx is canceled, no new
// cells start, in-flight simulations wind down without contributing
// results, and Run returns ctx's error alongside the results
// gathered so far — everything already simulated is in the cache, so
// a rerun resumes where the campaign stopped.
func (s *Scheduler) Run(ctx context.Context, cells []Cell) (map[string]CellResult, SchedulerStats, error) {
	workers := s.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) && len(cells) > 0 {
		workers = len(cells)
	}

	stats := SchedulerStats{Total: len(cells)}
	results := make(map[string]CellResult, len(cells))
	var mu sync.Mutex
	if s.Live != nil {
		s.Live.begin(stats.Total, workers)
	}

	jobs := make(chan Cell)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for cell := range jobs {
				s.runCell(ctx, cell, &mu, results, &stats)
			}
		}()
	}

	// A plan may repeat a fingerprint across scenarios (a baseline
	// untouched by a parameter-set axis), anywhere in plan order.
	// Dispatching the copies would simulate the same cell on several
	// workers; feed each distinct key once and serve the copies from
	// the finished result afterwards.
	fed := map[string]bool{}
	var dups []Cell
feed:
	for _, c := range cells {
		if fed[c.Key] {
			dups = append(dups, c)
			continue
		}
		fed[c.Key] = true
		select {
		case jobs <- c:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	for _, c := range dups {
		res, ok := results[c.Key]
		if !ok {
			continue // first copy canceled: this one is missing too
		}
		var dupErr error
		stats.Completed++
		if res.Err != "" {
			// Simulations are deterministic: a rerun would fail the
			// same way, so the copy shares the recorded failure.
			stats.Errors++
			dupErr = errors.New(res.Err)
		} else {
			stats.CacheHits++
		}
		if s.Live != nil {
			s.Live.cellFinished(dupErr == nil, dupErr, 0, 0)
		}
		if s.OnProgress != nil {
			s.OnProgress(Progress{Done: stats.Completed, Total: stats.Total, Cell: c, FromCache: dupErr == nil, Err: dupErr})
		}
	}
	// Cancellation that landed after the last cell finished did not
	// interrupt anything: the campaign is complete.
	err := ctx.Err()
	if err != nil && stats.Completed == stats.Total {
		err = nil
	}
	return results, stats, err
}

func (s *Scheduler) runCell(ctx context.Context, cell Cell, mu *sync.Mutex, results map[string]CellResult, stats *SchedulerStats) {
	if s.OnStart != nil {
		s.OnStart(cell)
	}
	if s.Live != nil {
		// defer keeps the busy-worker gauge honest on every exit,
		// including the cancellation return that reports nothing else.
		s.Live.cellRunning(1)
		defer s.Live.cellRunning(-1)
	}
	if s.Cache != nil {
		if res, ok := s.Cache.Get(cell.Key); ok {
			mu.Lock()
			results[cell.Key] = res
			stats.Completed++
			stats.CacheHits++
			if s.Live != nil {
				s.Live.cellFinished(true, nil, 0, 0)
			}
			if s.OnProgress != nil {
				s.OnProgress(Progress{Done: stats.Completed, Total: stats.Total, Cell: cell, FromCache: true})
			}
			mu.Unlock()
			return
		}
	}

	// Telemetry sampling goes on a local copy of the options so the
	// cell's fingerprint-carrying Opts stay untouched (the fields are
	// outside the fingerprint anyway, but a sink closure must never
	// leak into a shared Cell).
	opts := cell.Opts
	var ivs []telemetry.Interval
	if s.Interval > 0 && s.IntervalSink != nil {
		opts.Interval = s.Interval
		opts.IntervalSink = func(iv telemetry.Interval) { ivs = append(ivs, iv) }
	}

	t0 := time.Now()
	full, err := runner.RunContext(ctx, opts)
	wall := time.Since(t0)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// A canceled cell produced no usable measurement; leave it
		// for the resumed campaign. A cell that finished just before
		// cancellation (err == nil) is kept and cached.
		return
	}

	var insts uint64
	if err == nil {
		insts = full.CPU.Insts
		if s.IntervalSink != nil && len(ivs) > 0 {
			s.IntervalSink(cell, ivs)
		}
	}

	res := toCellResult(cell, full, err)
	if err == nil && s.Cache != nil {
		// A failed Put degrades to recomputation next time; the
		// in-memory result is still good.
		_ = s.Cache.Put(res)
	}

	mu.Lock()
	results[cell.Key] = res
	stats.Completed++
	if err != nil {
		stats.Errors++
	} else {
		stats.Simulated++
	}
	if s.Live != nil {
		s.Live.cellFinished(false, err, wall, insts)
	}
	if s.OnProgress != nil {
		s.OnProgress(Progress{Done: stats.Completed, Total: stats.Total, Cell: cell, Err: err, Wall: wall, Insts: insts})
	}
	mu.Unlock()
}

// toCellResult projects a runner result onto the serializable cell
// form.
func toCellResult(cell Cell, full runner.Result, err error) CellResult {
	res := CellResult{
		Key:       cell.Key,
		Bench:     cell.Bench(),
		Mechanism: cell.Mech(),
		Seed:      cell.Seed(),
	}
	if err != nil {
		res.Err = err.Error()
		return res
	}
	res.IPC = full.IPC
	res.Cycles = full.CPU.Cycles
	res.Insts = full.CPU.Insts
	res.L1DMissRatio = full.L1D.MissRatio()
	res.L2MissRatio = full.L2.MissRatio()
	res.PrefetchIssued = full.L1D.PrefetchIssued + full.L2.PrefetchIssued
	res.PrefetchUseful = full.L1D.PrefetchUseful + full.L2.PrefetchUseful
	res.AvgReadLatency = full.Mem.AvgReadLatency()
	// Always non-nil, even when the mechanism adds no hardware: a
	// nil Hardware marks an entry cached before the cost fields
	// existed, so consumers can tell "cost-free" from "stale entry".
	res.Hardware = full.Hardware
	if res.Hardware == nil {
		res.Hardware = []core.HWTable{}
	}
	res.BaseCacheAccesses = full.BaseCacheAccesses
	return res
}

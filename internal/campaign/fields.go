package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"microlib/internal/cfgreg"
	"microlib/internal/hier"
	"microlib/internal/runner"
)

// FieldValue is one config-field value as its canonical token text:
// JSON numbers and bools keep their literal form ("64", "true"),
// strings their unquoted content ("const70"). Keeping the raw token
// preserves full integer precision and lets the registry's own parser
// produce the type error, naming the field.
type FieldValue string

// UnmarshalJSON accepts any JSON scalar.
func (v *FieldValue) UnmarshalJSON(data []byte) error {
	tok := bytes.TrimSpace(data)
	if len(tok) == 0 {
		return fmt.Errorf("campaign: empty config-field value")
	}
	switch tok[0] {
	case '"':
		var s string
		if err := json.Unmarshal(tok, &s); err != nil {
			return err
		}
		*v = FieldValue(s)
		return nil
	case '[', '{', 'n': // arrays, objects, null
		return fmt.Errorf("campaign: config-field value must be a number, bool or string, got %s", tok)
	}
	*v = FieldValue(tok)
	return nil
}

// MarshalJSON renders numbers and bools as bare literals and
// everything else as a string, so a normalized spec round-trips.
func (v FieldValue) MarshalJSON() ([]byte, error) {
	s := string(v)
	if s == "true" || s == "false" {
		return []byte(s), nil
	}
	if _, err := strconv.ParseFloat(s, 64); err == nil && json.Valid([]byte(s)) {
		return []byte(s), nil
	}
	return json.Marshal(s)
}

// FieldValues is the ordered value list of one swept path. The JSON
// form is a scalar list; a single scalar is accepted as shorthand.
type FieldValues []FieldValue

// UnmarshalJSON accepts a list or a single scalar.
func (vs *FieldValues) UnmarshalJSON(data []byte) error {
	tok := bytes.TrimSpace(data)
	if len(tok) > 0 && tok[0] == '[' {
		var raw []FieldValue
		if err := json.Unmarshal(tok, &raw); err != nil {
			return err
		}
		*vs = raw
		return nil
	}
	var one FieldValue
	if err := one.UnmarshalJSON(tok); err != nil {
		return err
	}
	*vs = FieldValues{one}
	return nil
}

// FieldGroup is one zipped axis over registry config fields: every
// path's value list must have the same length, and value i of every
// path applies together as the axis's i-th value. Zipping is what a
// geometry sweep wants — RUU and LSQ scale together — while
// independent fields go in separate groups (cross-product via the
// plan odometer, like any other axis pair).
type FieldGroup map[string]FieldValues

// paths returns the group's paths, sorted (the deterministic axis
// identity of a JSON map).
func (g FieldGroup) paths() []string {
	out := make([]string, 0, len(g))
	for p := range g {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// AxisName is the group's axis name in plans, scenario labels and
// Summary.Find: its sorted paths joined by "+".
func (g FieldGroup) AxisName() string { return strings.Join(g.paths(), "+") }

// valueLabel renders the group's i-th zipped value ("32" for a single
// field, "32+32" for a zipped pair, path order).
func (g FieldGroup) valueLabel(i int) string {
	parts := make([]string, 0, len(g))
	for _, p := range g.paths() {
		parts = append(parts, string(g[p][i]))
	}
	return strings.Join(parts, "+")
}

// FieldsSpec is the "fields" section of a campaign spec: one or more
// field groups, each expanding to one axis. The JSON form is a single
// object (the common case — one axis) or a list of objects.
type FieldsSpec []FieldGroup

// UnmarshalJSON accepts an object or a list of objects.
func (fs *FieldsSpec) UnmarshalJSON(data []byte) error {
	tok := bytes.TrimSpace(data)
	if len(tok) > 0 && tok[0] == '{' {
		var g FieldGroup
		if err := json.Unmarshal(tok, &g); err != nil {
			return err
		}
		*fs = FieldsSpec{g}
		return nil
	}
	var groups []FieldGroup
	if err := json.Unmarshal(tok, &groups); err != nil {
		return err
	}
	*fs = groups
	return nil
}

// MarshalJSON round-trips the single-group shorthand.
func (fs FieldsSpec) MarshalJSON() ([]byte, error) {
	if len(fs) == 1 {
		return json.Marshal(fs[0])
	}
	return json.Marshal([]FieldGroup(fs))
}

// normalizeFields validates the "set" and "fields" sections against
// the config-field registry: every path must be registered, every
// value must parse and pass the field's own validation (an enum typo
// or out-of-range value fails `mlcampaign validate`, not a worker),
// value lists within a group must zip (equal lengths), and no path
// may be swept twice or both pinned and swept.
func (s *Spec) normalizeFields() error {
	for _, p := range sortedFieldPaths(s.Set) {
		if err := cfgreg.Validate(p, string(s.Set[p])); err != nil {
			return fmt.Errorf("campaign: set: %w", err)
		}
	}

	seen := map[string]bool{}
	for gi, g := range s.Fields {
		if len(g) == 0 {
			return fmt.Errorf("campaign: fields group %d is empty", gi)
		}
		paths := g.paths()
		n := len(g[paths[0]])
		for _, p := range paths {
			if p == "hier.mem.kind" {
				// The memories axis IS this sweep; a fields version
				// would leave the plan's mem coordinate contradicting
				// half its cells.
				return fmt.Errorf("campaign: hier.mem.kind cannot be swept via fields; sweep the memories axis instead")
			}
			if seen[p] {
				return fmt.Errorf("campaign: config field %s swept in two fields groups", p)
			}
			seen[p] = true
			if _, pinned := s.Set[p]; pinned {
				return fmt.Errorf("campaign: config field %s is both pinned in set and swept in fields", p)
			}
			vs := g[p]
			if len(vs) == 0 {
				return fmt.Errorf("campaign: fields %s has no values", p)
			}
			if len(vs) != n {
				return fmt.Errorf("campaign: fields group %q zips unequal value counts (%s has %d, %s has %d)",
					g.AxisName(), paths[0], n, p, len(vs))
			}
			for _, v := range vs {
				if err := cfgreg.Validate(p, string(v)); err != nil {
					return fmt.Errorf("campaign: fields: %w", err)
				}
			}
		}
		labels := make([]string, n)
		for i := range labels {
			labels[i] = g.valueLabel(i)
		}
		if err := checkDup("fields "+g.AxisName(), labels); err != nil {
			return err
		}
	}

	return s.checkNamedAxisConflicts(seen)
}

// checkNamedAxisConflicts rejects registry paths that fight a named
// axis writing the same struct fields — both varying one knob breeds
// scenarios that silently simulate the same machine, a pin the sweep
// overwrites, or plan coordinates that misdescribe their cells.
// (hier.mem.kind never reaches here: Normalize folds the pin into
// the memories axis and normalizeFields rejects the fields form.)
func (s *Spec) checkNamedAxisConflicts(swept map[string]bool) error {
	used := func(p string) bool {
		if swept[p] {
			return true
		}
		_, pinned := s.Set[p]
		return pinned
	}
	// The accuracy flags compose only with the identity variant: under
	// "infinite-mshr" or "simplescalar" the hier coordinate names the
	// flag state a path would then falsify.
	if len(s.Hiers) != 1 || s.Hiers[0] != hier.VariantDefault {
		for _, p := range hierVariantPaths() {
			if used(p) {
				return fmt.Errorf("campaign: %s conflicts with the hiers axis (variant flags compose only with the %q variant)",
					p, hier.VariantDefault)
			}
		}
	}
	// usedWithPrefix lists every pinned or swept path under a prefix,
	// sorted so conflict errors are deterministic.
	usedWithPrefix := func(prefix string) []string {
		all := make([]string, 0, len(swept)+len(s.Set))
		for p := range swept {
			all = append(all, p)
		}
		all = append(all, sortedFieldPaths(s.Set)...)
		sort.Strings(all)
		var out []string
		for _, p := range all {
			if strings.HasPrefix(p, prefix) {
				out = append(out, p)
			}
		}
		return out
	}
	onlyMemory := func(kind string) bool {
		for _, m := range s.Memories {
			if m != kind {
				return false
			}
		}
		return true
	}

	// The scalar in-order core takes no core geometry, but cpu.* is
	// part of the fingerprint: a cpu sweep would simulate the same
	// machine under distinct labels and cache keys.
	for _, c := range s.Cores {
		if c == CoreInOrder {
			if ps := usedWithPrefix("cpu."); len(ps) > 0 {
				return fmt.Errorf("campaign: %s conflicts with the inorder core (the scalar core has no core geometry)", ps[0])
			}
		}
	}

	// The SDRAM device parameters are read only by the "sdram" memory
	// kind and the constant latency only by "const70"; under any other
	// kind they are fingerprint-relevant but behavior-irrelevant, so a
	// sweep or pin would breed distinct cache keys (and an apparent
	// effect) for byte-identical machines. Split the campaign instead.
	if !onlyMemory(MemNameSDRAM) {
		if ps := usedWithPrefix("hier.sdram."); len(ps) > 0 {
			return fmt.Errorf("campaign: %s is ignored by memory model(s) other than %s in the memories axis (split the campaign)",
				ps[0], MemNameSDRAM)
		}
	}
	if !onlyMemory(MemNameConst70) {
		if ps := usedWithPrefix("hier.mem.const-latency"); len(ps) > 0 {
			return fmt.Errorf("campaign: %s is ignored by memory model(s) other than %s in the memories axis (split the campaign)",
				ps[0], MemNameConst70)
		}
	}
	// A nonzero queues value forces the L1D and L2 prefetch queue caps
	// after mechanism attach (runner.Options.QueueOverride), clobbering
	// those paths no matter when they resolve.
	for _, q := range s.Queues {
		if q == 0 {
			continue
		}
		for _, p := range QueueOverridePaths() {
			if used(p) {
				return fmt.Errorf("campaign: %s conflicts with the queues axis override %d (drop one)", p, q)
			}
		}
		break
	}

	// MSHR capacity is read only by a finite miss address file: under
	// an infinite-MSHR hiers variant, or with the level's own
	// infinite-mshr flag pinned or swept, a capacity sweep or pin is
	// fingerprint-relevant but behavior-irrelevant on the infinite
	// arms — distinct cache keys, identical machines.
	infiniteAll := false
	for _, h := range s.Hiers {
		if h != hier.VariantDefault {
			infiniteAll = true // both non-default variants relax the MSHRs
		}
	}
	for _, lvl := range []string{"hier.l1d", "hier.l1i", "hier.l2"} {
		inf := infiniteAll
		if v, pinned := s.Set[lvl+".infinite-mshr"]; pinned && string(v) == "true" {
			inf = true
		}
		if swept[lvl+".infinite-mshr"] {
			inf = true // conservatively: some arm may be infinite
		}
		if !inf {
			continue
		}
		for _, f := range []string{".mshrs", ".reads-per-mshr"} {
			if used(lvl + f) {
				return fmt.Errorf("campaign: %s is ignored while %s.infinite-mshr is in effect (drop one)", lvl+f, lvl)
			}
		}
	}
	return nil
}

// QueueOverridePaths are the registry paths a nonzero prefetch-queue
// override (Options.QueueOverride — the queues axis, microsim
// -queue) force-clobbers after mechanism attach; both conflict
// checks share this one list.
func QueueOverridePaths() []string {
	return []string{"hier.l1d.prefetch-queue-cap", "hier.l2.prefetch-queue-cap"}
}

// hierVariantPaths lists the registry paths the hiers-axis variants
// write — the accuracy flags WithVariant flips. A test pins this
// list against the variants' actual behavior through the registry,
// so a new variant knob cannot silently fall outside the conflict
// check.
func hierVariantPaths() []string {
	var out []string
	for _, lvl := range []string{"hier.l1d", "hier.l1i", "hier.l2"} {
		for _, flag := range []string{".infinite-mshr", ".free-refill-ports", ".no-pipeline-stall"} {
			out = append(out, lvl+flag)
		}
	}
	return out
}

// fieldAxes compiles the fields groups into plan axes (one axis per
// group, in spec order).
func (s *Spec) fieldAxes() []axis {
	var out []axis
	for _, g := range s.Fields {
		g := g
		paths := g.paths()
		ax := axis{name: g.AxisName()}
		n := len(g[paths[0]])
		for i := 0; i < n; i++ {
			i := i
			ax.values = append(ax.values, axisValue{label: g.valueLabel(i), apply: func(o *runner.Options) error {
				return applyFields(o, paths, func(p string) string { return string(g[p][i]) })
			}})
		}
		out = append(out, ax)
	}
	return out
}

// applyFields writes path values into the options' config structs
// through the registry.
func applyFields(o *runner.Options, paths []string, value func(string) string) error {
	t := cfgreg.Target{Hier: &o.Hier, CPU: &o.CPU}
	for _, p := range paths {
		if err := cfgreg.Set(t, p, value(p)); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	return nil
}

func sortedFieldPaths(m map[string]FieldValue) []string {
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

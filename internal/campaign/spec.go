// Package campaign is MicroLib's declarative sweep engine. A Spec —
// a small JSON document — names the axes of a simulation campaign
// (benchmarks, mechanisms, hierarchy variants, memory models, host
// cores, prefetch-queue overrides, parameter sets, trace-selection
// policies, warm-up and measured budgets, seeds); the engine
// compiles the spec into an axis table — every axis is an ordered
// value list plus a deterministic resolver into runner.Options —
// expands the cross-product into a deterministic Plan, executes it
// on a bounded worker pool with context cancellation and a
// persistent fingerprint-keyed result cache, and aggregates the
// cells into speedup grids, rankings and per-cell confidence
// intervals, grouped by the axis-derived scenario key.
//
// This generalizes the paper's methodology: instead of replaying the
// fixed figures of the evaluation, any user-specified region of the
// configuration space can be compared under identical, reproducible
// conditions — and re-compared incrementally as the spec grows,
// because finished cells are served from the cache.
//
// The benchmark axis itself is user-extensible: a spec's "workloads"
// section defines campaign-local workloads — inline synthetic
// profiles or recorded trace files — swept by name alongside the
// built-ins but fingerprinted by content, so the cache can never
// conflate two custom workloads or serve stale cells for an edited
// one.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"microlib/internal/cfgreg"
	"microlib/internal/core"
	"microlib/internal/hier"
	"microlib/internal/runner"
	"microlib/internal/trace"
	"microlib/internal/workload"
)

// Memory model names accepted in Spec.Memories (the hier selector
// names, matching the microsim -memory flag and the "hier.mem.kind"
// config field).
const (
	MemNameSDRAM   = "sdram"
	MemNameConst70 = "const70"
	MemNameSDRAM70 = "sdram70"
)

// Core names accepted in Spec.Cores.
const (
	CoreOoO     = "ooo"
	CoreInOrder = "inorder"
)

// MemoryNames returns the valid Spec.Memories values (one name
// table: hier owns it, the MemName constants are its spellings).
func MemoryNames() []string { return hier.MemoryKindNames() }

// CoreNames returns the valid Spec.Cores values.
func CoreNames() []string { return []string{CoreOoO, CoreInOrder} }

// Spec declares a simulation campaign. Every axis slice is optional;
// Normalize fills documented defaults. The JSON encoding is the
// mlcampaign input format.
type Spec struct {
	// Name labels the campaign in reports and listings.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Workloads are campaign-local custom workloads: inline synthetic
	// profiles or recorded trace files. Their names extend the
	// benchmark namespace of this spec (collisions with built-ins are
	// rejected) and may appear in Benchmarks.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Benchmarks to sweep; empty means all 26 built-in workloads
	// plus every spec-defined custom workload.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Mechanisms to sweep; empty means Base plus every registered
	// mechanism. "Base" is the unmodified hierarchy.
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Memories are main-memory models: "sdram", "const70", "sdram70".
	// Empty means ["sdram"] (the Table 1 default).
	Memories []string `json:"memories,omitempty"`
	// Cores are host cores: "ooo", "inorder". Empty means ["ooo"].
	Cores []string `json:"cores,omitempty"`
	// Hiers are named hierarchy accuracy variants: "default",
	// "infinite-mshr" (Figure 9), "simplescalar" (Figure 1). Empty
	// means ["default"].
	Hiers []string `json:"hiers,omitempty"`
	// Queues are prefetch request queue overrides (Figure 10); the
	// value 0 keeps each mechanism's default. Empty means [0].
	Queues []int `json:"queues,omitempty"`
	// ParamSets sweep named per-mechanism parameter overrides as an
	// axis (the second-guessing studies: TCP queue 1 vs 128, DBCP
	// initial vs fixed). Each set layers over Params. Empty means one
	// implicit set named "default" carrying Params alone.
	ParamSets []ParamSetSpec `json:"paramsets,omitempty"`
	// Selections are trace-selection policies: "simpoint" (offsets
	// computed at plan time), "skip" (discard Skip instructions), or
	// "skip:N" (an explicit offset). Empty means ["skip"].
	Selections []string `json:"selections,omitempty"`
	// Warmups are warm-up instruction budgets; empty means [Warmup]
	// (or its 50000 default).
	Warmups []uint64 `json:"warmups,omitempty"`
	// Insts are measured instruction budgets; empty means [150000].
	Insts []uint64 `json:"insts,omitempty"`
	// Seeds key the workload generator; multiple seeds replicate
	// every cell for confidence intervals. Empty means [42].
	Seeds []uint64 `json:"seeds,omitempty"`
	// Fields sweeps registry config fields (dotted paths over the
	// hierarchy and CPU structs — `mlcampaign paths` prints the
	// namespace) as axes. An object is one axis whose paths zip
	// together ({"cpu.ruu": [32, 64], "cpu.lsq": [32, 64]} scales the
	// window as a unit); a list of objects makes one axis per group,
	// cross-product like any other axes.
	Fields FieldsSpec `json:"fields,omitempty"`

	// Warmup is the single-value shorthand for the Warmups axis (the
	// field must be present to choose 0 explicitly, hence pointer;
	// setting both it and Warmups is rejected). Normalize folds it
	// into Warmups.
	Warmup *uint64 `json:"warmup,omitempty"`
	// Skip discards instructions before the trace window (the offset
	// of the "skip" selection policy).
	Skip uint64 `json:"skip,omitempty"`
	// Set pins registry config fields for every cell of the campaign
	// (the single-value counterpart of Fields, and the spec form of
	// the CLIs' -set flag): {"hier.l1d.assoc": 2} runs the whole sweep
	// on a 2-way L1D.
	Set map[string]FieldValue `json:"set,omitempty"`
	// CellTimeout bounds each cell's wall time; a cell exceeding it
	// is canceled and recorded as a timeout failure (transient, so
	// the retry policy applies). Accepts Go duration strings ("30s",
	// "2m"). Zero disables the deadline. The -cell-timeout flag
	// overrides it.
	CellTimeout Duration `json:"cell_timeout,omitempty"`
	// Retry retries transient cell failures (timeouts, cache I/O)
	// with capped exponential backoff. Nil means the CLI default (or
	// no retries when driven as a library). The -retry/-retry-delay
	// flags override it.
	Retry *RetrySpec `json:"retry,omitempty"`
	// Params overrides mechanism construction parameters, keyed by
	// mechanism name then parameter name (e.g. {"TCP": {"queue": 1}}).
	// Mechanism names are validated against the registry and the
	// sweep axis, and parameter keys against the key list each
	// mechanism declares in its core.Description — a misspelled key
	// is rejected at plan time instead of silently falling back to
	// the mechanism's default.
	Params map[string]map[string]int `json:"params,omitempty"`
	// PrefetchAsDemand disables demand-priority prefetch treatment in
	// every cell (design-choice ablation).
	PrefetchAsDemand bool `json:"prefetch_as_demand,omitempty"`

	// baseDir anchors relative trace paths when the spec was loaded
	// from a file (LoadSpec sets it to the spec file's directory).
	baseDir string
	// reg resolves benchmark names after Normalize: built-ins plus
	// this spec's custom workloads.
	reg *workload.Registry
}

// WorkloadSpec defines one campaign-local workload: exactly one of
// Profile (an inline synthetic profile) or Trace (a recorded trace
// file) is set. The workload is swept by Name on the benchmarks
// axis, but its cache identity is its content — the canonical
// profile serialization or the trace file's SHA-256 — so renaming it
// keeps its cached cells and editing it invalidates them.
type WorkloadSpec struct {
	Name string `json:"name"`
	// Profile is an inline synthetic workload; its profile name
	// defaults to Name (a differing explicit name is rejected, since
	// the profile name seeds the generator).
	Profile *workload.Profile `json:"profile,omitempty"`
	// Trace is the path of a recorded trace file; relative paths
	// resolve against the spec file's directory when the spec was
	// loaded from disk. Note trace workloads carry no memory
	// contents, so value-inspecting mechanisms (CDP, FVC, ...) error
	// on their cells.
	Trace string `json:"trace,omitempty"`

	// Resolved by Normalize.
	tracePath string // Trace with baseDir applied
	traceSHA  string // content hash of the trace file
}

// Duration is time.Duration with the JSON encoding specs want: a Go
// duration string ("30s", "1m30s") or a plain number of nanoseconds.
type Duration time.Duration

// MarshalJSON encodes as a duration string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts a duration string or nanoseconds.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("campaign: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(data, &ns); err != nil {
		return fmt.Errorf("campaign: duration must be a string like \"30s\" or nanoseconds")
	}
	*d = Duration(ns)
	return nil
}

// Std returns the standard-library duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// RetrySpec is the spec form of the scheduler's retry policy.
type RetrySpec struct {
	// Max is the number of extra attempts per transient failure.
	Max int `json:"max"`
	// BaseDelay is the backoff before the first retry, doubling
	// (capped) before each later one. Empty means 200ms.
	BaseDelay Duration `json:"base_delay,omitempty"`
}

// Policy converts to the scheduler's retry policy, applying the
// 200ms base-delay default.
func (r *RetrySpec) Policy() RetryPolicy {
	if r == nil {
		return RetryPolicy{}
	}
	p := RetryPolicy{Max: r.Max, BaseDelay: r.BaseDelay.Std()}
	if p.Max > 0 && p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	return p
}

// ParamSetSpec is one value of the "paramsets" axis: a named bundle
// of per-mechanism parameter overrides, layered over the spec's base
// Params (set keys win). A set with no params is the mechanisms'
// published defaults — the usual comparison point.
type ParamSetSpec struct {
	Name   string                    `json:"name"`
	Params map[string]map[string]int `json:"params,omitempty"`
}

// DefaultWarmup is the warm-up budget when the spec omits it.
const DefaultWarmup = 50_000

// DefaultInsts is the measured budget when the spec omits the axis.
const DefaultInsts = 150_000

// DefaultSeed keys the workload generator when the spec omits seeds.
const DefaultSeed = 42

// ParseSpec decodes a JSON campaign spec. Unknown fields are
// rejected so a typo in an axis name fails loudly instead of
// silently sweeping the default.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads and parses a JSON campaign spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	// Trace paths inside the spec are relative to the spec file, so a
	// spec directory (examples/campaign) is self-contained wherever
	// the campaign is launched from.
	s.baseDir = filepath.Dir(path)
	return s, nil
}

// BaseDir returns the directory relative trace paths resolve against
// (empty unless the spec came from a file or SetBaseDir).
func (s *Spec) BaseDir() string { return s.baseDir }

// SetBaseDir anchors relative trace paths, the way LoadSpec does for
// file specs. Resume uses it to replant a spec embedded in a journal.
func (s *Spec) SetBaseDir(dir string) { s.baseDir = dir }

// Normalize fills defaults and validates every axis value against
// the registries. It must be called (directly or via NewPlan) before
// the spec is expanded.
func (s *Spec) Normalize() error {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if err := s.normalizeWorkloads(); err != nil {
		return err
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = s.reg.Names()
	}
	if len(s.Mechanisms) == 0 {
		s.Mechanisms = append([]string{runner.BaseName}, core.Names()...)
	}
	// A pinned "hier.mem.kind" is the memories axis in disguise: fold
	// it into the axis so the plan's mem coordinate names the memory
	// the cells actually run (the value is validated with the axis
	// below). An explicitly different axis is a conflict, not a
	// silent override.
	if v, ok := s.Set["hier.mem.kind"]; ok {
		// The fold consumes the pin before normalizeFields runs its
		// pinned+swept and value checks, so both must happen here —
		// an invalid value has to blame the set path the user wrote,
		// not the memories axis their spec does not contain.
		if err := cfgreg.Validate("hier.mem.kind", string(v)); err != nil {
			return fmt.Errorf("campaign: set: %w", err)
		}
		for _, g := range s.Fields {
			if _, swept := g["hier.mem.kind"]; swept {
				return fmt.Errorf("campaign: config field hier.mem.kind is both pinned in set and swept in fields")
			}
		}
		switch {
		case len(s.Memories) == 0:
			s.Memories = []string{string(v)}
		case len(s.Memories) == 1:
			// The pin wins over a single-valued axis — SetFlags.Pin
			// promises the CLI beats the file, and -set on a shipped
			// figure spec is the advertised way to replay it on a
			// different machine. The axis is rewritten, so the plan's
			// mem coordinate names the memory the cells actually run.
			s.Memories = []string{string(v)}
		default:
			return fmt.Errorf("campaign: hier.mem.kind conflicts with the swept memories axis (drop one)")
		}
		set := make(map[string]FieldValue, len(s.Set)-1)
		for p, pv := range s.Set {
			if p != "hier.mem.kind" {
				set[p] = pv
			}
		}
		// Reassign instead of deleting: the map is shared with the
		// caller's spec value, which must stay re-plannable.
		s.Set = set
	}
	if len(s.Memories) == 0 {
		s.Memories = []string{MemNameSDRAM}
	}
	if len(s.Cores) == 0 {
		s.Cores = []string{CoreOoO}
	}
	if len(s.Hiers) == 0 {
		s.Hiers = []string{hier.VariantDefault}
	}
	if len(s.Queues) == 0 {
		s.Queues = []int{0}
	}
	if len(s.ParamSets) == 0 {
		s.ParamSets = []ParamSetSpec{{Name: DefaultParamSet}}
	}
	if len(s.Selections) == 0 {
		s.Selections = []string{SelSkip}
	}
	if len(s.Warmups) > 0 && s.Warmup != nil {
		return fmt.Errorf("campaign: set warmup or warmups, not both")
	}
	if len(s.Warmups) == 0 {
		w := uint64(DefaultWarmup)
		if s.Warmup != nil {
			w = *s.Warmup
		}
		s.Warmups = []uint64{w}
	}
	s.Warmup = nil
	if len(s.Insts) == 0 {
		s.Insts = []uint64{DefaultInsts}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{DefaultSeed}
	}
	if s.CellTimeout < 0 {
		return fmt.Errorf("campaign: negative cell_timeout %v", s.CellTimeout.Std())
	}
	if s.Retry != nil {
		if s.Retry.Max < 0 {
			return fmt.Errorf("campaign: negative retry max %d", s.Retry.Max)
		}
		if s.Retry.BaseDelay < 0 {
			return fmt.Errorf("campaign: negative retry base_delay %v", s.Retry.BaseDelay.Std())
		}
	}

	if err := validateAxis("benchmark", s.Benchmarks, s.reg.Names()); err != nil {
		return err
	}
	mechs := append([]string{runner.BaseName}, core.Names()...)
	if err := validateAxis("mechanism", s.Mechanisms, mechs); err != nil {
		return err
	}
	if err := validateAxis("hier", s.Hiers, hier.VariantNames()); err != nil {
		return err
	}
	if err := validateAxis("memory", s.Memories, MemoryNames()); err != nil {
		return err
	}
	if err := validateAxis("core", s.Cores, CoreNames()); err != nil {
		return err
	}
	for _, sel := range s.Selections {
		if sel == SelSkip || sel == SelSimPoint {
			continue
		}
		if _, err := parseSkipSelection(sel); err != nil {
			return err
		}
	}
	// A recorded trace carries no memory contents, so value-inspecting
	// mechanisms (Description.NeedsValues) cannot run on its cells.
	// Reject the combination here: letting the cells fail at run time
	// would also suppress speedup/ranking aggregation for the whole
	// scenario, hiding 25 good columns behind one impossible one.
	for _, b := range s.Benchmarks {
		cw := s.customWorkload(b)
		if cw == nil || cw.TracePath == "" {
			continue
		}
		for _, m := range s.Mechanisms {
			if desc, ok := core.Describe(m); ok && desc.NeedsValues {
				return fmt.Errorf("campaign: trace workload %q cannot run %s (a recorded trace carries no memory values); list mechanisms without %s or use an inline profile",
					b, m, m)
			}
		}
	}
	for _, q := range s.Queues {
		if q < 0 {
			return fmt.Errorf("campaign: negative queue override %d", q)
		}
	}
	for _, n := range s.Insts {
		if n == 0 {
			return fmt.Errorf("campaign: zero instruction budget in insts axis")
		}
	}
	if err := s.validateParams(s.Params, "params"); err != nil {
		return err
	}
	if err := s.normalizeFields(); err != nil {
		return err
	}
	var psetNames []string
	for i := range s.ParamSets {
		ps := &s.ParamSets[i]
		if ps.Name == "" {
			return fmt.Errorf("campaign: paramset %d needs a name", i)
		}
		psetNames = append(psetNames, ps.Name)
		if err := s.validateParams(ps.Params, fmt.Sprintf("paramset %q", ps.Name)); err != nil {
			return err
		}
	}

	// Duplicate axis values — numeric ones included — would silently
	// halve the real replication factor (identical fingerprints
	// collapse in the result map while aggregation counts the cell
	// twice), so they are rejected like duplicate names.
	axes := []struct {
		name   string
		values []string
	}{
		{"benchmark", s.Benchmarks},
		{"mechanism", s.Mechanisms},
		{"hier", s.Hiers},
		{"memory", s.Memories},
		{"core", s.Cores},
		{"queue", formatAxis(s.Queues)},
		{"paramset", psetNames},
		{"selection", s.Selections},
		{"warmup", formatAxis(s.Warmups)},
		{"insts", formatAxis(s.Insts)},
		{"seed", formatAxis(s.Seeds)},
	}
	for _, axis := range axes {
		if err := checkDup(axis.name, axis.values); err != nil {
			return err
		}
	}
	return nil
}

// validateParams checks one per-mechanism override map (the spec's
// base "params" or one paramset's) against the mechanism registry,
// the sweep axis and each mechanism's declared parameter keys. ctx
// names the map in errors.
func (s *Spec) validateParams(params map[string]map[string]int, ctx string) error {
	mechs := make([]string, 0, len(params))
	for mech := range params {
		mechs = append(mechs, mech)
	}
	sort.Strings(mechs)
	for _, mech := range mechs {
		overrides := params[mech]
		if mech == runner.BaseName {
			return fmt.Errorf("campaign: %s override for %q (the baseline takes no parameters)", ctx, mech)
		}
		desc, ok := core.Describe(mech)
		if !ok {
			return fmt.Errorf("campaign: %s override for unknown mechanism %q", ctx, mech)
		}
		swept := false
		for _, m := range s.Mechanisms {
			if m == mech {
				swept = true
				break
			}
		}
		if !swept {
			return fmt.Errorf("campaign: %s override for %q, which is not in the mechanisms axis (typo?)", ctx, mech)
		}
		keys := make([]string, 0, len(overrides))
		for key := range overrides {
			keys = append(keys, key)
		}
		sort.Strings(keys)
		for _, key := range keys {
			if !desc.HasParam(key) {
				declared := append([]string(nil), desc.Params...)
				sort.Strings(declared)
				return fmt.Errorf("campaign: mechanism %s has no parameter %q (have %s)",
					mech, key, strings.Join(declared, ", "))
			}
		}
	}
	return nil
}

func formatAxis[T int | uint64](values []T) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = fmt.Sprintf("%d", v)
	}
	return out
}

func validateAxis(kind string, values, valid []string) error {
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	for _, v := range values {
		if !ok[v] {
			sorted := append([]string(nil), valid...)
			sort.Strings(sorted)
			return fmt.Errorf("campaign: unknown %s %q (have %s)", kind, v, strings.Join(sorted, ", "))
		}
	}
	return nil
}

// normalizeWorkloads validates the custom-workload section and
// builds the spec's name registry: every workload needs exactly one
// source (inline profile or trace file), a name that collides with
// neither the built-ins nor another custom workload, a profile that
// passes full validation, and a readable, well-formed trace file
// (hashed here, so every expansion of the plan keys on the trace's
// current content).
func (s *Spec) normalizeWorkloads() error {
	s.reg = workload.NewRegistry()
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.Name == "" {
			return fmt.Errorf("campaign: workload %d needs a name", i)
		}
		if err := s.resolveWorkload(w); err != nil {
			return err
		}
		var err error
		if w.Profile != nil {
			err = s.reg.Add(*w.Profile)
		} else {
			err = s.reg.Reserve(w.Name)
		}
		if err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	return nil
}

// resolveWorkload validates one workloads entry in isolation and
// resolves its trace path and content hash. Record uses it for just
// the workload being recorded, so a spec whose other trace files do
// not exist yet can still bootstrap them.
func (s *Spec) resolveWorkload(w *WorkloadSpec) error {
	switch {
	case w.Profile != nil && w.Trace != "":
		return fmt.Errorf("campaign: workload %q sets both profile and trace", w.Name)
	case w.Profile == nil && w.Trace == "":
		return fmt.Errorf("campaign: workload %q sets neither profile nor trace", w.Name)
	case w.Profile != nil:
		if w.Profile.Name == "" {
			w.Profile.Name = w.Name
		} else if w.Profile.Name != w.Name {
			// The profile name seeds the generator, so letting it
			// drift from the sweep name would make "the workload
			// named X" ambiguous.
			return fmt.Errorf("campaign: workload %q embeds a profile named %q", w.Name, w.Profile.Name)
		}
		if err := w.Profile.Validate(); err != nil {
			return fmt.Errorf("campaign: workload %q: %w", w.Name, err)
		}
	default:
		w.tracePath = w.Trace
		if s.baseDir != "" && !filepath.IsAbs(w.tracePath) {
			w.tracePath = filepath.Join(s.baseDir, w.tracePath)
		}
		sha, err := trace.HashFile(w.tracePath)
		if err != nil {
			return fmt.Errorf("campaign: workload %q: %w", w.Name, err)
		}
		w.traceSHA = sha
	}
	return nil
}

// customWorkload returns the runner source for a spec-defined
// workload name, or nil when the name is a built-in benchmark.
func (s *Spec) customWorkload(name string) *runner.Workload {
	for i := range s.Workloads {
		w := &s.Workloads[i]
		if w.Name != name {
			continue
		}
		if w.Profile != nil {
			return &runner.Workload{Profile: w.Profile}
		}
		return &runner.Workload{TracePath: w.tracePath, TraceSHA: w.traceSHA}
	}
	return nil
}

// checkDup rejects repeated values on one axis, naming the axis so
// the spec author can find the typo.
func checkDup(axis string, values []string) error {
	seen := map[string]bool{}
	for _, v := range values {
		if seen[v] {
			return fmt.Errorf("campaign: duplicate %s axis value %q", axis, v)
		}
		seen[v] = true
	}
	return nil
}

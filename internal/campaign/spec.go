// Package campaign is MicroLib's declarative sweep engine. A Spec —
// a small JSON document — names the axes of a simulation campaign
// (benchmarks, mechanisms, memory models, host cores, prefetch-queue
// overrides, instruction budgets, seeds) and per-mechanism parameter
// overrides; the engine expands the cross-product into a
// deterministic Plan, executes it on a bounded worker pool with
// context cancellation and a persistent fingerprint-keyed result
// cache, and aggregates the cells into speedup grids, rankings and
// per-cell confidence intervals.
//
// This generalizes the paper's methodology: instead of replaying the
// fixed figures of the evaluation, any user-specified region of the
// configuration space can be compared under identical, reproducible
// conditions — and re-compared incrementally as the spec grows,
// because finished cells are served from the cache.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"microlib/internal/core"
	"microlib/internal/runner"
	"microlib/internal/workload"
)

// Memory model names accepted in Spec.Memories (matching the
// microsim -memory flag).
const (
	MemNameSDRAM   = "sdram"
	MemNameConst70 = "const70"
	MemNameSDRAM70 = "sdram70"
)

// Core names accepted in Spec.Cores.
const (
	CoreOoO     = "ooo"
	CoreInOrder = "inorder"
)

// MemoryNames returns the valid Spec.Memories values.
func MemoryNames() []string { return []string{MemNameSDRAM, MemNameConst70, MemNameSDRAM70} }

// CoreNames returns the valid Spec.Cores values.
func CoreNames() []string { return []string{CoreOoO, CoreInOrder} }

// Spec declares a simulation campaign. Every axis slice is optional;
// Normalize fills documented defaults. The JSON encoding is the
// mlcampaign input format.
type Spec struct {
	// Name labels the campaign in reports and listings.
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`

	// Benchmarks to sweep; empty means all 26 workloads.
	Benchmarks []string `json:"benchmarks,omitempty"`
	// Mechanisms to sweep; empty means Base plus every registered
	// mechanism. "Base" is the unmodified hierarchy.
	Mechanisms []string `json:"mechanisms,omitempty"`
	// Memories are main-memory models: "sdram", "const70", "sdram70".
	// Empty means ["sdram"] (the Table 1 default).
	Memories []string `json:"memories,omitempty"`
	// Cores are host cores: "ooo", "inorder". Empty means ["ooo"].
	Cores []string `json:"cores,omitempty"`
	// Queues are prefetch request queue overrides (Figure 10); the
	// value 0 keeps each mechanism's default. Empty means [0].
	Queues []int `json:"queues,omitempty"`
	// Insts are measured instruction budgets; empty means [150000].
	Insts []uint64 `json:"insts,omitempty"`
	// Seeds key the workload generator; multiple seeds replicate
	// every cell for confidence intervals. Empty means [42].
	Seeds []uint64 `json:"seeds,omitempty"`

	// Warmup instructions before measurement (default 50000; the
	// field must be present to choose 0 explicitly, hence pointer).
	Warmup *uint64 `json:"warmup,omitempty"`
	// Skip discards instructions before the trace window.
	Skip uint64 `json:"skip,omitempty"`
	// Params overrides mechanism construction parameters, keyed by
	// mechanism name then parameter name (e.g. {"TCP": {"queue": 1}}).
	// Mechanism names are validated against the registry and the
	// sweep axis, and parameter keys against the key list each
	// mechanism declares in its core.Description — a misspelled key
	// is rejected at plan time instead of silently falling back to
	// the mechanism's default.
	Params map[string]map[string]int `json:"params,omitempty"`
	// PrefetchAsDemand disables demand-priority prefetch treatment in
	// every cell (design-choice ablation).
	PrefetchAsDemand bool `json:"prefetch_as_demand,omitempty"`
}

// DefaultWarmup is the warm-up budget when the spec omits it.
const DefaultWarmup = 50_000

// DefaultInsts is the measured budget when the spec omits the axis.
const DefaultInsts = 150_000

// DefaultSeed keys the workload generator when the spec omits seeds.
const DefaultSeed = 42

// ParseSpec decodes a JSON campaign spec. Unknown fields are
// rejected so a typo in an axis name fails loudly instead of
// silently sweeping the default.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parse spec: %w", err)
	}
	return s, nil
}

// LoadSpec reads and parses a JSON campaign spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return Spec{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Normalize fills defaults and validates every axis value against
// the registries. It must be called (directly or via NewPlan) before
// the spec is expanded.
func (s *Spec) Normalize() error {
	if s.Name == "" {
		s.Name = "campaign"
	}
	if len(s.Benchmarks) == 0 {
		s.Benchmarks = workload.Names()
	}
	if len(s.Mechanisms) == 0 {
		s.Mechanisms = append([]string{runner.BaseName}, core.Names()...)
	}
	if len(s.Memories) == 0 {
		s.Memories = []string{MemNameSDRAM}
	}
	if len(s.Cores) == 0 {
		s.Cores = []string{CoreOoO}
	}
	if len(s.Queues) == 0 {
		s.Queues = []int{0}
	}
	if len(s.Insts) == 0 {
		s.Insts = []uint64{DefaultInsts}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{DefaultSeed}
	}
	if s.Warmup == nil {
		w := uint64(DefaultWarmup)
		s.Warmup = &w
	}

	if err := validateAxis("benchmark", s.Benchmarks, workload.Names()); err != nil {
		return err
	}
	mechs := append([]string{runner.BaseName}, core.Names()...)
	if err := validateAxis("mechanism", s.Mechanisms, mechs); err != nil {
		return err
	}
	if err := validateAxis("memory", s.Memories, MemoryNames()); err != nil {
		return err
	}
	if err := validateAxis("core", s.Cores, CoreNames()); err != nil {
		return err
	}
	for _, q := range s.Queues {
		if q < 0 {
			return fmt.Errorf("campaign: negative queue override %d", q)
		}
	}
	for _, n := range s.Insts {
		if n == 0 {
			return fmt.Errorf("campaign: zero instruction budget in insts axis")
		}
	}
	for mech, overrides := range s.Params {
		if mech == runner.BaseName {
			return fmt.Errorf("campaign: params override for %q (the baseline takes no parameters)", mech)
		}
		desc, ok := core.Describe(mech)
		if !ok {
			return fmt.Errorf("campaign: params override for unknown mechanism %q", mech)
		}
		swept := false
		for _, m := range s.Mechanisms {
			if m == mech {
				swept = true
				break
			}
		}
		if !swept {
			return fmt.Errorf("campaign: params override for %q, which is not in the mechanisms axis (typo?)", mech)
		}
		for key := range overrides {
			if !desc.HasParam(key) {
				declared := append([]string(nil), desc.Params...)
				sort.Strings(declared)
				return fmt.Errorf("campaign: mechanism %s has no parameter %q (have %s)",
					mech, key, strings.Join(declared, ", "))
			}
		}
	}
	axes := [][]string{s.Benchmarks, s.Mechanisms, s.Memories, s.Cores}
	// Duplicate numeric axis values would silently halve the real
	// replication factor (identical fingerprints collapse in the
	// result map while aggregation counts the cell twice), so they
	// are rejected like duplicate names.
	axes = append(axes, formatAxis(s.Queues), formatAxis(s.Insts), formatAxis(s.Seeds))
	for _, axis := range axes {
		if err := checkDup(axis); err != nil {
			return err
		}
	}
	return nil
}

func formatAxis[T int | uint64](values []T) []string {
	out := make([]string, len(values))
	for i, v := range values {
		out[i] = fmt.Sprintf("%d", v)
	}
	return out
}

func validateAxis(kind string, values, valid []string) error {
	ok := make(map[string]bool, len(valid))
	for _, v := range valid {
		ok[v] = true
	}
	for _, v := range values {
		if !ok[v] {
			sorted := append([]string(nil), valid...)
			sort.Strings(sorted)
			return fmt.Errorf("campaign: unknown %s %q (have %s)", kind, v, strings.Join(sorted, ", "))
		}
	}
	return nil
}

func checkDup(values []string) error {
	seen := map[string]bool{}
	for _, v := range values {
		if seen[v] {
			return fmt.Errorf("campaign: duplicate axis value %q", v)
		}
		seen[v] = true
	}
	return nil
}

package cpu

import (
	"microlib/internal/cache"
	"microlib/internal/hier"
	"microlib/internal/sim"
	"microlib/internal/trace"
)

// InOrder is a simple scalar, blocking-load host core. It exists to
// demonstrate the MicroLib interoperability claim: the same cache
// mechanism modules plug unchanged into a completely different
// processor model (the paper's wrapper story), and rankings can be
// compared across hosts (an ablation bench does exactly that).
type InOrder struct {
	eng    *sim.Engine
	h      *hier.Hierarchy
	stream trace.Stream

	mispredictPenalty uint64

	warmInsts uint64
	onWarm    func(cycles uint64)

	res Result
}

// SetWarmup mirrors OoO.SetWarmup for the scalar core.
func (c *InOrder) SetWarmup(insts uint64, fn func(cycles uint64)) {
	c.warmInsts = insts
	c.onWarm = fn
}

// Committed returns the number of instructions retired so far; the
// telemetry sampler reads it mid-run.
func (c *InOrder) Committed() uint64 { return c.res.Insts }

// NewInOrder builds the scalar core.
func NewInOrder(eng *sim.Engine, h *hier.Hierarchy, stream trace.Stream) *InOrder {
	return &InOrder{eng: eng, h: h, stream: stream, mispredictPenalty: 6}
}

// Run simulates maxInsts instructions and returns the result.
func (c *InOrder) Run(maxInsts uint64) Result {
	var inst trace.Inst
	cycle := c.eng.Now()
	for c.res.Insts < maxInsts && c.stream.Next(&inst) {
		c.eng.AdvanceTo(cycle)
		switch inst.Class {
		case trace.Load:
			waiting := true
			var doneAt uint64
			acc := &cache.Access{Addr: inst.Addr, PC: inst.MemPC(),
				Done: func(now uint64, hit bool) { waiting = false; doneAt = now }}
			for !c.h.L1D.Access(acc) {
				cycle++
				c.eng.AdvanceTo(cycle)
			}
			// Blocking load: wind simulated time forward until the
			// data is back. Nothing can change between calendar
			// events while the scalar core blocks, so jump the clock
			// from event to event instead of stepping every cycle.
			for waiting {
				if t, ok := c.eng.NextEventAt(); ok && t > cycle {
					cycle = t
				} else {
					cycle++
				}
				c.eng.AdvanceTo(cycle)
			}
			if doneAt > cycle {
				cycle = doneAt
			}
			c.res.Loads++
		case trace.Store:
			acc := &cache.Access{Addr: inst.Addr, PC: inst.MemPC(), Write: true}
			for !c.h.L1D.Access(acc) {
				cycle++
				c.eng.AdvanceTo(cycle)
			}
			cycle++
			c.res.Stores++
		case trace.Branch:
			cycle += inst.Class.Latency()
			if inst.Mispredict {
				cycle += c.mispredictPenalty
				c.res.Mispredicts++
			}
		default:
			cycle += inst.Class.Latency()
		}
		c.res.Insts++
		if c.onWarm != nil && c.res.Insts == c.warmInsts {
			c.onWarm(cycle)
			c.onWarm = nil
		}
	}
	c.eng.AdvanceTo(cycle)
	c.res.Cycles = cycle
	if c.res.Cycles == 0 {
		c.res.Cycles = 1
	}
	return c.res
}

package cpu

import (
	"microlib/internal/cache"
	"microlib/internal/hier"
	"microlib/internal/sim"
	"microlib/internal/trace"
)

// InOrder is a simple scalar, blocking-load host core. It exists to
// demonstrate the MicroLib interoperability claim: the same cache
// mechanism modules plug unchanged into a completely different
// processor model (the paper's wrapper story), and rankings can be
// compared across hosts (an ablation bench does exactly that).
type InOrder struct {
	eng    *sim.Engine
	h      *hier.Hierarchy
	stream trace.Stream

	mispredictPenalty uint64

	warmInsts uint64
	onWarm    func(cycles uint64)

	// loadAcc/storeAcc are reused across every access, with loadAcc's
	// Done callback bound once at construction: the blocking core has
	// at most one load in flight, so per-instruction Access structs
	// (and the closure each Done would capture) are pure garbage.
	loadAcc  cache.Access
	storeAcc cache.Access
	waiting  bool
	doneAt   uint64

	// instScratch is the reused Run-loop instruction buffer (a local
	// would escape through the stream interface call and cost one
	// heap allocation per Run invocation).
	instScratch trace.Inst

	// stepRetries forces the pre-refusal-hint behavior: refused
	// accesses retry cycle by cycle instead of jumping to the hinted
	// RetryAt. Bench-only reference knob (mlbench prices the hint
	// against it); results are bit-identical either way.
	stepRetries bool

	res Result
}

// SetStepRetries selects cycle-stepping retries over hint-driven
// jumps. Bench-only; both modes produce identical results.
func (c *InOrder) SetStepRetries(v bool) { c.stepRetries = v }

// submit retries a refused L1D access until it is accepted, advancing
// the clock between attempts. The cache's structured refusal says
// exactly when the next attempt can succeed — a port frees next
// cycle, a pipeline stall lifts at RetryAt, a full MSHR frees only
// when a fill event lands — so the core jumps straight there instead
// of probing every cycle. Returns the cycle the access was accepted.
//
//ml:hotpath
func (c *InOrder) submit(a *cache.Access, cycle uint64) uint64 {
	for {
		r := c.h.L1D.Access(a)
		if r.Accepted() {
			return cycle
		}
		c.res.noteRetry(r.Reason)
		if c.stepRetries {
			cycle++
		} else {
			cycle = c.eng.RetryTarget(cycle, r.RetryAt)
		}
		c.eng.AdvanceTo(cycle)
	}
}

// AccessDone implements cache.DoneSink: the core is loadAcc's
// pre-bound completion sink.
func (c *InOrder) AccessDone(now uint64, hit bool) {
	c.waiting = false
	c.doneAt = now
}

// SetWarmup mirrors OoO.SetWarmup for the scalar core.
func (c *InOrder) SetWarmup(insts uint64, fn func(cycles uint64)) {
	c.warmInsts = insts
	c.onWarm = fn
}

// Committed returns the number of instructions retired so far; the
// telemetry sampler reads it mid-run.
func (c *InOrder) Committed() uint64 { return c.res.Insts }

// NewInOrder builds the scalar core.
func NewInOrder(eng *sim.Engine, h *hier.Hierarchy, stream trace.Stream) *InOrder {
	c := &InOrder{eng: eng, h: h, stream: stream, mispredictPenalty: 6}
	c.loadAcc.Done = c
	c.storeAcc.Write = true
	return c
}

// Run simulates maxInsts instructions and returns the result.
//
//ml:hotpath
func (c *InOrder) Run(maxInsts uint64) Result {
	inst := &c.instScratch
	cycle := c.eng.Now()
	for c.res.Insts < maxInsts && c.stream.Next(inst) {
		c.eng.AdvanceTo(cycle)
		switch inst.Class {
		case trace.Load:
			c.waiting = true
			c.doneAt = 0
			c.loadAcc.Addr, c.loadAcc.PC = inst.Addr, inst.MemPC()
			cycle = c.submit(&c.loadAcc, cycle)
			// Blocking load: wind simulated time forward until the
			// data is back. Nothing can change between calendar
			// events while the scalar core blocks, so jump the clock
			// from event to event instead of stepping every cycle.
			for c.waiting {
				if t, ok := c.eng.NextEventAt(); ok && t > cycle {
					cycle = t
				} else {
					cycle++
				}
				c.eng.AdvanceTo(cycle)
			}
			if c.doneAt > cycle {
				cycle = c.doneAt
			}
			c.res.Loads++
		case trace.Store:
			c.storeAcc.Addr, c.storeAcc.PC = inst.Addr, inst.MemPC()
			cycle = c.submit(&c.storeAcc, cycle)
			cycle++
			c.res.Stores++
		case trace.Branch:
			cycle += inst.Class.Latency()
			if inst.Mispredict {
				cycle += c.mispredictPenalty
				c.res.Mispredicts++
			}
		default:
			cycle += inst.Class.Latency()
		}
		c.res.Insts++
		if c.onWarm != nil && c.res.Insts == c.warmInsts {
			c.onWarm(cycle)
			c.onWarm = nil
		}
	}
	c.eng.AdvanceTo(cycle)
	c.res.Cycles = cycle
	if c.res.Cycles == 0 {
		c.res.Cycles = 1
	}
	return c.res
}

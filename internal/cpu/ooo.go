package cpu

import (
	"fmt"

	"microlib/internal/cache"
	"microlib/internal/hier"
	"microlib/internal/sim"
	"microlib/internal/trace"
)

// entry states
const (
	stWaiting uint8 = iota // dependences outstanding
	stReady                // ready to issue
	stIssued               // executing / memory outstanding
	stDone                 // result available
)

type robEntry struct {
	class      trace.Class
	pc         uint64
	addr       uint64
	isStore    bool
	mispredict bool
	state      uint8
	pending    int
	waiters    []uint64 // absolute sequence numbers of consumers
}

// OoO is the out-of-order host core. It is trace-driven: it consumes
// a trace.Stream and models timing only, with all memory behaviour
// delegated to the hierarchy.
type OoO struct {
	cfg    Config
	eng    *sim.Engine
	h      *hier.Hierarchy
	stream trace.Stream

	win  []robEntry
	head uint64 // oldest in-flight sequence number
	tail uint64 // next sequence number to allocate

	readyQ []uint64

	lsqUsed int

	// Front-end state.
	fetchDone     bool   // stream exhausted or budget reached
	fetchBlocked  bool   // waiting on an I-cache fill
	fetchRetry    bool   // fetch bailed on a next-cycle-retriable resource
	fetchResumeAt uint64 // earliest fetch cycle after redirect
	// fetchRefuse is per-cycle scratch: the structured reason the
	// I-cache refused fetch this cycle (zero when fetch ran clean).
	// fetch() rewrites it every cycle before stallTarget reads it.
	fetchRefuse cache.Refusal
	haltOnBranch  bool   // a mispredicted branch is unresolved
	haltBranchSeq uint64
	curFetchLine  uint64
	staged        trace.Inst // one-instruction fetch stage
	hasStaged     bool
	fetchScratch  trace.Inst // reused fetch-loop scratch (kept off the heap)
	fetched       uint64
	maxFetch      uint64

	// Pooled request state: loadReq nodes carry a load's Access with
	// the node itself as the pre-bound completion sink, and the core
	// itself is the one I-cache fill sink the front end ever needs.
	// Steady-state issue and fetch therefore allocate nothing.
	freeLoads *loadReq

	// stopInsts, when non-zero, makes Run return at the first cycle
	// boundary after stopInsts instructions have committed (warm-state
	// prefix runs snapshot the machine there).
	stopInsts uint64

	// Per-cycle functional-unit usage.
	fuCycle                        uint64
	intALU, intMD, fpALU, fpMD, ls int

	// Warm-up: when warmInsts instructions have committed, onWarm
	// fires once (the runner snapshots statistics there).
	warmInsts uint64
	onWarm    func(cycles uint64)

	// storeAcc is the reused commit-stage store Access (the InOrder
	// pattern): a refused store at the window head retries every
	// cycle, and rebuilding the struct per attempt is pure garbage.
	// Write is bound once at construction.
	storeAcc cache.Access
	// headRefuse is per-cycle scratch: why the D-cache refused the
	// head store this cycle. Only meaningful while the head slot is
	// stDone and isStore; commit() rewrites it on every refused
	// attempt before stallTarget reads it.
	headRefuse cache.Refusal

	// stepRetries forces the pre-refusal-hint behavior: a blocked-head
	// or refused-fetch cycle never idle-skips on the refusal reason.
	// Bench-only reference knob; results are bit-identical either way.
	stepRetries bool

	res Result
}

// SetStepRetries disables refusal-reason idle-skips, restoring the
// cycle-stepping retry behavior. Bench-only; both modes produce
// identical results.
func (o *OoO) SetStepRetries(v bool) { o.stepRetries = v }

// SetWarmup arranges for fn to be called once, with the cycle count
// so far, when insts instructions have committed. Statistics
// measured from that point exclude cold-start effects — the scaled
// equivalent of the paper's long SimPoint traces reaching steady
// state.
func (o *OoO) SetWarmup(insts uint64, fn func(cycles uint64)) {
	o.warmInsts = insts
	o.onWarm = fn
}

// Committed returns the number of instructions retired so far; the
// telemetry sampler reads it mid-run.
func (o *OoO) Committed() uint64 { return o.res.Insts }

// NewOoO builds the core on an engine and hierarchy.
func NewOoO(eng *sim.Engine, cfg Config, h *hier.Hierarchy, stream trace.Stream) *OoO {
	cfg.Validate()
	o := &OoO{
		cfg:    cfg,
		eng:    eng,
		h:      h,
		stream: stream,
		win:    make([]robEntry, cfg.RUUSize),
	}
	o.storeAcc.Write = true
	return o
}

// AccessDone implements cache.DoneSink for the front end: an I-cache
// fill arrived, fetch may resume.
func (o *OoO) AccessDone(now uint64, hit bool) { o.fetchBlocked = false }

// SetStop arranges for Run to return at the first cycle boundary
// after insts instructions have committed, leaving the machine (and
// the calendar) mid-flight exactly as a longer run would have it at
// that same boundary. Zero disables the stop.
func (o *OoO) SetStop(insts uint64) { o.stopInsts = insts }

// loadReq is one in-flight load's pooled Access; its Done callback is
// bound once at node construction.
type loadReq struct {
	o    *OoO
	seq  uint64
	acc  cache.Access
	next *loadReq
}

func (o *OoO) getLoad(seq uint64) *loadReq {
	lr := o.freeLoads
	if lr == nil {
		//ml:waive hotalloc -- pool growth: allocates until the freelist high-water mark, then never again
		lr = &loadReq{o: o}
		lr.acc.Done = lr
	} else {
		o.freeLoads = lr.next
	}
	lr.seq = seq
	return lr
}

func (o *OoO) putLoad(lr *loadReq) {
	lr.next = o.freeLoads
	o.freeLoads = lr
}

// AccessDone implements cache.DoneSink.
func (lr *loadReq) AccessDone(now uint64, hit bool) {
	o, seq := lr.o, lr.seq
	o.putLoad(lr)
	o.complete(seq)
}

func (o *OoO) slot(seq uint64) *robEntry { return &o.win[seq%uint64(len(o.win))] }

// Run simulates until maxInsts instructions commit (or the stream
// ends) and returns the result.
//
// The loop steps one cycle at a time while the pipeline is active,
// but when a cycle makes no progress anywhere and every stage is
// provably waiting on a calendar event (or the fetch-redirect timer),
// it jumps the clock straight to the next event instead of stepping
// through the dead cycles one by one. Memory-bound workloads spend
// most of their time fully stalled on SDRAM, so this removes the
// dominant per-cycle overhead without changing a single observable:
// the skipped cycles are exactly those in which the per-cycle loop
// would have done nothing.
func (o *OoO) Run(maxInsts uint64) Result {
	o.maxFetch = maxInsts
	cycle := o.eng.Now()
	lastCommit := cycle
	lastHead := o.head
	for {
		if o.stopInsts != 0 && o.res.Insts >= o.stopInsts {
			// Prefix stop: advance the clock to the cycle the next
			// iteration would have processed (a resumed Run picks it
			// up from Engine.Now) and leave everything else in flight.
			o.eng.AdvanceTo(cycle)
			break
		}
		o.eng.AdvanceTo(cycle)
		nc := o.commit()
		ni := o.issue(cycle)
		nf := o.fetch(cycle)
		if o.fetchDone && o.head == o.tail {
			break
		}
		if o.head != lastHead {
			lastHead = o.head
			lastCommit = cycle
		} else if cycle-lastCommit > 2_000_000 {
			panic(fmt.Sprintf("cpu: no commit progress for 2M cycles at cycle %d (head=%d tail=%d state=%d pending=%d)",
				cycle, o.head, o.tail, o.slot(o.head).state, o.slot(o.head).pending))
		}
		if nc == 0 && ni == 0 && nf == 0 && len(o.readyQ) == 0 && !o.fetchRetry {
			if t, ok := o.stallTarget(cycle); ok && t > cycle+1 {
				cycle = t
				continue
			}
		}
		cycle++
	}
	o.res.Cycles = o.eng.Now()
	if o.res.Cycles == 0 {
		o.res.Cycles = 1
	}
	return o.res
}

// stallTarget returns the next cycle at which the stalled core can
// possibly make progress: the earliest pending calendar event, capped
// by the fetch-redirect resume cycle and by any timer-bound refusal's
// RetryAt. ok is false when the stall is not provably event- or
// timer-bound (e.g. a store at the window head was refused by a cache
// port this cycle — ports free again next cycle, so skipping would be
// unsound).
//
//ml:hotpath
func (o *OoO) stallTarget(cycle uint64) (uint64, bool) {
	// capAt, when non-zero, is a timer bound contributed by a
	// stall-refused access: the refusal lifts at exactly that cycle,
	// so any jump must stop there.
	var capAt uint64
	if o.head != o.tail {
		// The oldest instruction must itself be waiting on an event.
		// A done head means commit is blocked on a cache refusal
		// instead — skippable only when the recorded reason proves
		// the refusal is timer- or event-bound.
		if e := o.slot(o.head); e.state == stDone {
			if o.stepRetries || !e.isStore {
				return 0, false
			}
			switch o.headRefuse.Reason {
			case cache.RefuseStall:
				capAt = o.headRefuse.RetryAt // stall lifts at a known cycle
			case cache.RefuseMSHR:
				// Event-bound: the blocking MSHR frees only when a
				// fill event lands, and fills live on the calendar.
			default:
				return 0, false // port conflict: free again next cycle
			}
		}
	} else if !(o.fetchBlocked || o.haltOnBranch || o.fetchResumeAt > cycle) {
		// Empty window: only an event- or timer-bound front end
		// justifies a jump. A stall- or MSHR-refused I-cache access
		// qualifies; anything else (including a clean fetch that
		// placed nothing) does not.
		if o.stepRetries {
			return 0, false
		}
		switch o.fetchRefuse.Reason {
		case cache.RefuseStall:
			capAt = o.fetchRefuse.RetryAt
		case cache.RefuseMSHR:
		default:
			return 0, false
		}
	}
	// A stall-refused fetch bounds the jump even when the head stall
	// is event-bound: fetch can make progress the cycle its stall
	// lifts, so never skip past it.
	if o.fetchRefuse.Reason == cache.RefuseStall &&
		(capAt == 0 || o.fetchRefuse.RetryAt < capAt) {
		capAt = o.fetchRefuse.RetryAt
	}
	t, ok := o.eng.NextEventAt()
	// A pending redirect wakes fetch at fetchResumeAt with no
	// calendar event involved; never jump past it.
	if o.fetchResumeAt > cycle && !o.fetchBlocked && !o.fetchDone && !o.haltOnBranch {
		if !ok || o.fetchResumeAt < t {
			t, ok = o.fetchResumeAt, true
		}
	}
	if capAt > cycle && (!ok || capAt < t) {
		t, ok = capAt, true
	}
	return t, ok
}

// commit retires completed instructions in order; stores perform
// their cache write at commit and stall retirement when the cache
// refuses the access. It returns the number of instructions retired.
//
//ml:hotpath
func (o *OoO) commit() (committed int) {
	for n := 0; n < o.cfg.CommitWidth && o.head < o.tail; n++ {
		e := o.slot(o.head)
		if e.state != stDone {
			return committed
		}
		if e.isStore {
			o.storeAcc.Addr, o.storeAcc.PC = e.addr, e.pc
			if r := o.h.L1D.Access(&o.storeAcc); !r.Accepted() {
				o.headRefuse = r
				o.res.noteRetry(r.Reason)
				return committed // retry per the refusal reason
			}
			o.res.Stores++
		}
		if e.class == trace.Load {
			o.res.Loads++
		}
		if e.class.IsMem() {
			o.lsqUsed--
		}
		e.waiters = e.waiters[:0]
		o.head++
		committed++
		o.res.Insts++
		if o.onWarm != nil && o.res.Insts == o.warmInsts {
			o.onWarm(o.eng.Now())
			o.onWarm = nil
		}
	}
	return committed
}

// issue walks the ready queue and dispatches up to IssueWidth
// instructions, respecting functional-unit counts; loads that the
// cache refuses stay queued (the LSQ-stall behaviour of Section 2.2).
// It returns the number of instructions issued.
//
//ml:hotpath
func (o *OoO) issue(cycle uint64) int {
	if cycle != o.fuCycle {
		o.fuCycle = cycle
		o.intALU, o.intMD, o.fpALU, o.fpMD, o.ls = 0, 0, 0, 0, 0
	}
	issued := 0
	kept := o.readyQ[:0]
	for i := 0; i < len(o.readyQ); i++ {
		seq := o.readyQ[i]
		if issued >= o.cfg.IssueWidth {
			kept = append(kept, o.readyQ[i:]...)
			break
		}
		e := o.slot(seq)
		if e.state != stReady {
			continue // defensive: already handled
		}
		if !o.fuAvailable(e.class) {
			kept = append(kept, seq)
			continue
		}
		if e.class == trace.Load {
			lr := o.getLoad(seq)
			lr.acc.Addr = e.addr
			lr.acc.PC = e.pc
			if r := o.h.L1D.Access(&lr.acc); !r.Accepted() {
				o.res.noteRetry(r.Reason)
				o.putLoad(lr)
				kept = append(kept, seq)
				continue
			}
			o.takeFU(e.class)
			e.state = stIssued
			issued++
			continue
		}
		// Stores compute their address in one cycle; the memory write
		// happens at commit. ALU/branch classes complete after their
		// latency.
		o.takeFU(e.class)
		e.state = stIssued
		issued++
		o.eng.AfterFunc(e.class.Latency(), oooComplete, o, nil, seq, 0)
	}
	o.readyQ = kept
	return issued
}

// oooComplete is the pooled-event completion trampoline for ALU,
// branch and store-address operations.
func oooComplete(_ uint64, o1, _ any, seq, _ uint64) {
	o1.(*OoO).complete(seq)
}

func (o *OoO) fuAvailable(c trace.Class) bool {
	switch c {
	case trace.IntALU, trace.Branch:
		return o.intALU < o.cfg.IntALU
	case trace.IntMult, trace.IntDiv:
		return o.intMD < o.cfg.IntMultDiv
	case trace.FPALU:
		return o.fpALU < o.cfg.FPALU
	case trace.FPMult, trace.FPDiv:
		return o.fpMD < o.cfg.FPMultDiv
	case trace.Load, trace.Store:
		return o.ls < o.cfg.LoadStore
	}
	return true
}

func (o *OoO) takeFU(c trace.Class) {
	switch c {
	case trace.IntALU, trace.Branch:
		o.intALU++
	case trace.IntMult, trace.IntDiv:
		o.intMD++
	case trace.FPALU:
		o.fpALU++
	case trace.FPMult, trace.FPDiv:
		o.fpMD++
	case trace.Load, trace.Store:
		o.ls++
	}
}

// complete marks seq done and wakes its consumers.
func (o *OoO) complete(seq uint64) {
	e := o.slot(seq)
	if e.state == stDone {
		return
	}
	e.state = stDone
	for _, w := range e.waiters {
		we := o.slot(w)
		we.pending--
		if we.pending == 0 && we.state == stWaiting {
			we.state = stReady
			o.readyQ = append(o.readyQ, w)
		}
	}
	e.waiters = e.waiters[:0]
	if e.class == trace.Branch && e.mispredict && o.haltOnBranch && o.haltBranchSeq == seq {
		o.haltOnBranch = false
		o.fetchResumeAt = o.eng.Now() + o.cfg.MispredictPenalty
		o.res.Mispredicts++
	}
}

// nextInst pulls the next instruction, honouring the staging slot.
func (o *OoO) nextInst(inst *trace.Inst) bool {
	if o.hasStaged {
		*inst = o.staged
		o.hasStaged = false
		return true
	}
	return o.stream.Next(inst)
}

// stage parks an instruction that could not be placed this cycle.
func (o *OoO) stage(inst *trace.Inst) {
	o.staged = *inst
	o.hasStaged = true
}

// fetch brings up to FetchWidth instructions into the window,
// modeling an I-cache access per line transition and halting on
// unresolved mispredicted branches. It returns the number of
// instructions placed, and flags (via fetchRetry) bail-outs that a
// plain next cycle could unblock — the idle-skip logic must not jump
// over those.
//
//ml:hotpath
func (o *OoO) fetch(cycle uint64) (placed int) {
	o.fetchRetry = false
	o.fetchRefuse = cache.Refusal{}
	if o.fetchDone || o.haltOnBranch || o.fetchBlocked || cycle < o.fetchResumeAt {
		return 0
	}
	inst := &o.fetchScratch
	for n := 0; n < o.cfg.FetchWidth; n++ {
		if o.fetched >= o.maxFetch {
			o.fetchDone = true
			return placed
		}
		if o.tail-o.head >= uint64(o.cfg.RUUSize) {
			return placed // window full
		}
		if !o.nextInst(inst) {
			o.fetchDone = true
			return placed
		}
		if inst.Class.IsMem() && o.lsqUsed >= o.cfg.LSQSize {
			o.stage(inst)
			return placed // LSQ full
		}

		// Instruction cache: one access per line transition.
		lineAddr := inst.PC &^ 31
		if lineAddr != o.curFetchLine {
			present, _, _ := o.h.L1I.Probe(lineAddr)
			if present {
				acc := cache.Access{Addr: lineAddr, PC: inst.PC}
				if r := o.h.L1I.Access(&acc); !r.Accepted() {
					o.stage(inst)
					o.noteFetchRefusal(r)
					return placed // I-cache refused the hit access
				}
				o.curFetchLine = lineAddr
			} else {
				acc := cache.Access{Addr: lineAddr, PC: inst.PC, Done: o}
				if r := o.h.L1I.Access(&acc); r.Accepted() {
					o.fetchBlocked = true
					o.curFetchLine = lineAddr
				} else {
					o.noteFetchRefusal(r) // I-cache refused the miss
				}
				o.stage(inst)
				return placed
			}
		}

		o.place(inst)
		placed++
		o.fetched++
		if inst.Class == trace.Branch && inst.Mispredict {
			o.haltOnBranch = true
			o.haltBranchSeq = o.tail - 1
			return placed
		}
	}
	return placed
}

// noteFetchRefusal records an I-cache refusal for the idle-skip
// logic. Stall/MSHR refusals are timer-/event-bound: fetchRetry stays
// clear so stallTarget may jump (bounded by fetchRefuse.RetryAt for
// stalls). Port refusals free again next cycle with no calendar event
// involved, so they must keep blocking the skip, as before.
//
//ml:hotpath
func (o *OoO) noteFetchRefusal(r cache.Refusal) {
	o.fetchRefuse = r
	o.res.noteRetry(r.Reason)
	switch {
	case o.stepRetries:
		o.fetchRetry = true
	case r.Reason == cache.RefuseStall || r.Reason == cache.RefuseMSHR:
	default:
		o.fetchRetry = true
	}
}

// place allocates a window entry and resolves its dependences.
func (o *OoO) place(inst *trace.Inst) {
	seq := o.tail
	o.tail++
	e := o.slot(seq)
	*e = robEntry{
		class:      inst.Class,
		pc:         inst.MemPC(),
		addr:       inst.Addr,
		isStore:    inst.Class == trace.Store,
		mispredict: inst.Mispredict,
		state:      stWaiting,
		waiters:    e.waiters[:0],
	}
	if inst.Class.IsMem() {
		o.lsqUsed++
	}
	for _, d := range [2]uint16{inst.Dep1, inst.Dep2} {
		if d == 0 || uint64(d) > seq {
			continue
		}
		prod := seq - uint64(d)
		if prod < o.head {
			continue // producer already committed: value available
		}
		pe := o.slot(prod)
		if pe.state == stDone {
			continue
		}
		pe.waiters = append(pe.waiters, seq)
		e.pending++
	}
	if e.pending == 0 {
		e.state = stReady
		o.readyQ = append(o.readyQ, seq)
	}
}

package cpu

import (
	"fmt"

	"microlib/internal/cache"
	"microlib/internal/hier"
	"microlib/internal/sim"
	"microlib/internal/trace"
)

// entry states
const (
	stWaiting uint8 = iota // dependences outstanding
	stReady                // ready to issue
	stIssued               // executing / memory outstanding
	stDone                 // result available
)

type robEntry struct {
	class      trace.Class
	pc         uint64
	addr       uint64
	isStore    bool
	mispredict bool
	state      uint8
	pending    int
	waiters    []uint64 // absolute sequence numbers of consumers
}

// OoO is the out-of-order host core. It is trace-driven: it consumes
// a trace.Stream and models timing only, with all memory behaviour
// delegated to the hierarchy.
type OoO struct {
	cfg    Config
	eng    *sim.Engine
	h      *hier.Hierarchy
	stream trace.Stream

	win  []robEntry
	head uint64 // oldest in-flight sequence number
	tail uint64 // next sequence number to allocate

	readyQ []uint64

	lsqUsed int

	// Front-end state.
	fetchDone     bool   // stream exhausted or budget reached
	fetchBlocked  bool   // waiting on an I-cache fill
	fetchResumeAt uint64 // earliest fetch cycle after redirect
	haltOnBranch  bool   // a mispredicted branch is unresolved
	haltBranchSeq uint64
	curFetchLine  uint64
	staged        trace.Inst // one-instruction fetch stage
	hasStaged     bool
	fetched       uint64
	maxFetch      uint64

	// Per-cycle functional-unit usage.
	fuCycle                        uint64
	intALU, intMD, fpALU, fpMD, ls int

	// Warm-up: when warmInsts instructions have committed, onWarm
	// fires once (the runner snapshots statistics there).
	warmInsts uint64
	onWarm    func(cycles uint64)

	res Result
}

// SetWarmup arranges for fn to be called once, with the cycle count
// so far, when insts instructions have committed. Statistics
// measured from that point exclude cold-start effects — the scaled
// equivalent of the paper's long SimPoint traces reaching steady
// state.
func (o *OoO) SetWarmup(insts uint64, fn func(cycles uint64)) {
	o.warmInsts = insts
	o.onWarm = fn
}

// NewOoO builds the core on an engine and hierarchy.
func NewOoO(eng *sim.Engine, cfg Config, h *hier.Hierarchy, stream trace.Stream) *OoO {
	cfg.Validate()
	return &OoO{
		cfg:    cfg,
		eng:    eng,
		h:      h,
		stream: stream,
		win:    make([]robEntry, cfg.RUUSize),
	}
}

func (o *OoO) slot(seq uint64) *robEntry { return &o.win[seq%uint64(len(o.win))] }

// Run simulates until maxInsts instructions commit (or the stream
// ends) and returns the result.
func (o *OoO) Run(maxInsts uint64) Result {
	o.maxFetch = maxInsts
	cycle := o.eng.Now()
	lastCommit := cycle
	lastHead := o.head
	for {
		o.eng.AdvanceTo(cycle)
		o.commit()
		o.issue(cycle)
		o.fetch(cycle)
		if o.fetchDone && o.head == o.tail {
			break
		}
		if o.head != lastHead {
			lastHead = o.head
			lastCommit = cycle
		} else if cycle-lastCommit > 2_000_000 {
			panic(fmt.Sprintf("cpu: no commit progress for 2M cycles at cycle %d (head=%d tail=%d state=%d pending=%d)",
				cycle, o.head, o.tail, o.slot(o.head).state, o.slot(o.head).pending))
		}
		cycle++
	}
	o.res.Cycles = o.eng.Now()
	if o.res.Cycles == 0 {
		o.res.Cycles = 1
	}
	return o.res
}

// commit retires completed instructions in order; stores perform
// their cache write at commit and stall retirement when the cache
// refuses the access.
func (o *OoO) commit() {
	for n := 0; n < o.cfg.CommitWidth && o.head < o.tail; n++ {
		e := o.slot(o.head)
		if e.state != stDone {
			return
		}
		if e.isStore {
			if !o.h.L1D.Access(&cache.Access{Addr: e.addr, PC: e.pc, Write: true}) {
				return // retry next cycle
			}
			o.res.Stores++
		}
		if e.class == trace.Load {
			o.res.Loads++
		}
		if e.class.IsMem() {
			o.lsqUsed--
		}
		e.waiters = e.waiters[:0]
		o.head++
		o.res.Insts++
		if o.onWarm != nil && o.res.Insts == o.warmInsts {
			o.onWarm(o.eng.Now())
			o.onWarm = nil
		}
	}
}

// issue walks the ready queue and dispatches up to IssueWidth
// instructions, respecting functional-unit counts; loads that the
// cache refuses stay queued (the LSQ-stall behaviour of Section 2.2).
func (o *OoO) issue(cycle uint64) {
	if cycle != o.fuCycle {
		o.fuCycle = cycle
		o.intALU, o.intMD, o.fpALU, o.fpMD, o.ls = 0, 0, 0, 0, 0
	}
	issued := 0
	kept := o.readyQ[:0]
	for i := 0; i < len(o.readyQ); i++ {
		seq := o.readyQ[i]
		if issued >= o.cfg.IssueWidth {
			kept = append(kept, o.readyQ[i:]...)
			break
		}
		e := o.slot(seq)
		if e.state != stReady {
			continue // defensive: already handled
		}
		if !o.fuAvailable(e.class) {
			kept = append(kept, seq)
			continue
		}
		if e.class == trace.Load {
			s := seq
			acc := &cache.Access{
				Addr: e.addr,
				PC:   e.pc,
				Done: func(now uint64, hit bool) { o.complete(s) },
			}
			if !o.h.L1D.Access(acc) {
				kept = append(kept, seq)
				continue
			}
			o.takeFU(e.class)
			e.state = stIssued
			issued++
			continue
		}
		// Stores compute their address in one cycle; the memory write
		// happens at commit. ALU/branch classes complete after their
		// latency.
		o.takeFU(e.class)
		e.state = stIssued
		issued++
		lat := e.class.Latency()
		s := seq
		o.eng.After(lat, func() { o.complete(s) })
	}
	o.readyQ = kept
}

func (o *OoO) fuAvailable(c trace.Class) bool {
	switch c {
	case trace.IntALU, trace.Branch:
		return o.intALU < o.cfg.IntALU
	case trace.IntMult, trace.IntDiv:
		return o.intMD < o.cfg.IntMultDiv
	case trace.FPALU:
		return o.fpALU < o.cfg.FPALU
	case trace.FPMult, trace.FPDiv:
		return o.fpMD < o.cfg.FPMultDiv
	case trace.Load, trace.Store:
		return o.ls < o.cfg.LoadStore
	}
	return true
}

func (o *OoO) takeFU(c trace.Class) {
	switch c {
	case trace.IntALU, trace.Branch:
		o.intALU++
	case trace.IntMult, trace.IntDiv:
		o.intMD++
	case trace.FPALU:
		o.fpALU++
	case trace.FPMult, trace.FPDiv:
		o.fpMD++
	case trace.Load, trace.Store:
		o.ls++
	}
}

// complete marks seq done and wakes its consumers.
func (o *OoO) complete(seq uint64) {
	e := o.slot(seq)
	if e.state == stDone {
		return
	}
	e.state = stDone
	for _, w := range e.waiters {
		we := o.slot(w)
		we.pending--
		if we.pending == 0 && we.state == stWaiting {
			we.state = stReady
			o.readyQ = append(o.readyQ, w)
		}
	}
	e.waiters = e.waiters[:0]
	if e.class == trace.Branch && e.mispredict && o.haltOnBranch && o.haltBranchSeq == seq {
		o.haltOnBranch = false
		o.fetchResumeAt = o.eng.Now() + o.cfg.MispredictPenalty
		o.res.Mispredicts++
	}
}

// nextInst pulls the next instruction, honouring the staging slot.
func (o *OoO) nextInst(inst *trace.Inst) bool {
	if o.hasStaged {
		*inst = o.staged
		o.hasStaged = false
		return true
	}
	return o.stream.Next(inst)
}

// stage parks an instruction that could not be placed this cycle.
func (o *OoO) stage(inst *trace.Inst) {
	o.staged = *inst
	o.hasStaged = true
}

// fetch brings up to FetchWidth instructions into the window,
// modeling an I-cache access per line transition and halting on
// unresolved mispredicted branches.
func (o *OoO) fetch(cycle uint64) {
	if o.fetchDone || o.haltOnBranch || o.fetchBlocked || cycle < o.fetchResumeAt {
		return
	}
	var inst trace.Inst
	for n := 0; n < o.cfg.FetchWidth; n++ {
		if o.fetched >= o.maxFetch {
			o.fetchDone = true
			return
		}
		if o.tail-o.head >= uint64(o.cfg.RUUSize) {
			return // window full
		}
		if !o.nextInst(&inst) {
			o.fetchDone = true
			return
		}
		if inst.Class.IsMem() && o.lsqUsed >= o.cfg.LSQSize {
			o.stage(&inst)
			return // LSQ full
		}

		// Instruction cache: one access per line transition.
		lineAddr := inst.PC &^ 31
		if lineAddr != o.curFetchLine {
			present, _, _ := o.h.L1I.Probe(lineAddr)
			if present {
				if !o.h.L1I.Access(&cache.Access{Addr: lineAddr, PC: inst.PC}) {
					o.stage(&inst)
					return // I-port busy; retry next cycle
				}
				o.curFetchLine = lineAddr
			} else {
				accepted := o.h.L1I.Access(&cache.Access{
					Addr: lineAddr,
					PC:   inst.PC,
					Done: func(now uint64, hit bool) { o.fetchBlocked = false },
				})
				if accepted {
					o.fetchBlocked = true
					o.curFetchLine = lineAddr
				}
				o.stage(&inst)
				return
			}
		}

		o.place(&inst)
		o.fetched++
		if inst.Class == trace.Branch && inst.Mispredict {
			o.haltOnBranch = true
			o.haltBranchSeq = o.tail - 1
			return
		}
	}
}

// place allocates a window entry and resolves its dependences.
func (o *OoO) place(inst *trace.Inst) {
	seq := o.tail
	o.tail++
	e := o.slot(seq)
	*e = robEntry{
		class:      inst.Class,
		pc:         inst.MemPC(),
		addr:       inst.Addr,
		isStore:    inst.Class == trace.Store,
		mispredict: inst.Mispredict,
		state:      stWaiting,
		waiters:    e.waiters[:0],
	}
	if inst.Class.IsMem() {
		o.lsqUsed++
	}
	for _, d := range [2]uint16{inst.Dep1, inst.Dep2} {
		if d == 0 || uint64(d) > seq {
			continue
		}
		prod := seq - uint64(d)
		if prod < o.head {
			continue // producer already committed: value available
		}
		pe := o.slot(prod)
		if pe.state == stDone {
			continue
		}
		pe.waiters = append(pe.waiters, seq)
		e.pending++
	}
	if e.pending == 0 {
		e.state = stReady
		o.readyQ = append(o.readyQ, seq)
	}
}

package cpu

import (
	"testing"

	"microlib/internal/hier"
	"microlib/internal/sim"
	"microlib/internal/trace"
)

// synthStream builds a fixed-profile instruction stream for core
// tests.
type synthStream struct {
	make func(i uint64, inst *trace.Inst)
	n    uint64
	i    uint64
}

func (s *synthStream) Next(inst *trace.Inst) bool {
	if s.i >= s.n {
		return false
	}
	s.make(s.i, inst)
	s.i++
	return true
}

func buildSystem() (*sim.Engine, *hier.Hierarchy) {
	eng := sim.NewEngine()
	cfg := hier.DefaultConfig().WithMemory(hier.MemConst70)
	return eng, hier.Build(eng, cfg)
}

// TestIndependentALUReachesWidth: a stream of independent single-
// cycle ALU ops should sustain several instructions per cycle on the
// 8-wide core.
func TestIndependentALUReachesWidth(t *testing.T) {
	eng, h := buildSystem()
	s := &synthStream{n: 20000, make: func(i uint64, inst *trace.Inst) {
		inst.PC = 0x400000 + (i%64)*4
		inst.Class = trace.IntALU
		inst.Dep1, inst.Dep2 = 0, 0
		inst.BB = uint32(i % 16)
		inst.Mispredict = false
		inst.Addr = 0
	}}
	res := NewOoO(eng, DefaultConfig(), h, s).Run(20000)
	if ipc := res.IPC(); ipc < 4 {
		t.Fatalf("independent ALU IPC %.2f, want >= 4 on an 8-wide core", ipc)
	}
}

// TestSerialChainBoundsIPC: a fully serialized dependence chain of
// 1-cycle ops cannot exceed IPC 1.
func TestSerialChainBoundsIPC(t *testing.T) {
	eng, h := buildSystem()
	s := &synthStream{n: 10000, make: func(i uint64, inst *trace.Inst) {
		inst.PC = 0x400000 + (i%64)*4
		inst.Class = trace.IntALU
		inst.Dep1, inst.Dep2 = 1, 0
		inst.BB = 0
	}}
	res := NewOoO(eng, DefaultConfig(), h, s).Run(10000)
	if ipc := res.IPC(); ipc > 1.05 {
		t.Fatalf("serial chain IPC %.2f, cannot exceed 1", ipc)
	}
}

// TestMispredictsSlowFetch: the same stream with mispredicted
// branches must be slower.
func TestMispredictsSlowFetch(t *testing.T) {
	run := func(mispredict bool) float64 {
		eng, h := buildSystem()
		s := &synthStream{n: 10000, make: func(i uint64, inst *trace.Inst) {
			inst.PC = 0x400000 + (i%64)*4
			if i%10 == 9 {
				inst.Class = trace.Branch
				inst.Mispredict = mispredict && i%30 == 29
			} else {
				inst.Class = trace.IntALU
				inst.Mispredict = false
			}
			inst.Dep1, inst.Dep2 = 0, 0
		}}
		return NewOoO(eng, DefaultConfig(), h, s).Run(10000).IPC()
	}
	clean, dirty := run(false), run(true)
	if dirty >= clean {
		t.Fatalf("mispredicts did not slow the core: %.2f vs %.2f", dirty, clean)
	}
}

// TestLoadMissesStall: loads streaming through memory must be far
// slower than L1-resident loads.
func TestLoadMissesStall(t *testing.T) {
	run := func(spread uint64) float64 {
		eng, h := buildSystem()
		s := &synthStream{n: 8000, make: func(i uint64, inst *trace.Inst) {
			inst.PC = 0x400000 + (i%64)*4
			if i%4 == 3 {
				inst.Class = trace.Load
				inst.Addr = 0x1000_0000 + (i%spread)*64
				inst.Dep1 = 0
			} else {
				inst.Class = trace.IntALU
				inst.Dep1 = 1 // consume the load eventually
				inst.Addr = 0
			}
		}}
		return NewOoO(eng, DefaultConfig(), h, s).Run(8000).IPC()
	}
	resident := run(32)      // 32 lines: L1-resident
	streaming := run(100000) // never repeats
	if streaming >= resident {
		t.Fatalf("memory-bound stream (%.2f) not slower than resident (%.2f)", streaming, resident)
	}
}

// TestStoresRetire: a store-heavy stream completes and performs
// cache writes at commit.
func TestStoresRetire(t *testing.T) {
	eng, h := buildSystem()
	s := &synthStream{n: 5000, make: func(i uint64, inst *trace.Inst) {
		inst.PC = 0x400000 + (i%64)*4
		if i%3 == 0 {
			inst.Class = trace.Store
			inst.Addr = 0x1000_0000 + (i%128)*8
		} else {
			inst.Class = trace.IntALU
		}
	}}
	res := NewOoO(eng, DefaultConfig(), h, s).Run(5000)
	if res.Insts != 5000 {
		t.Fatalf("committed %d", res.Insts)
	}
	if res.Stores == 0 {
		t.Fatal("no stores retired")
	}
	if h.L1D.Stats().Writes == 0 {
		t.Fatal("stores never reached the cache")
	}
}

// TestInOrderSlowerThanOoO on a memory-bound stream.
func TestInOrderSlowerThanOoO(t *testing.T) {
	mk := func() *synthStream {
		return &synthStream{n: 4000, make: func(i uint64, inst *trace.Inst) {
			inst.PC = 0x400000 + (i%64)*4
			if i%4 == 0 {
				inst.Class = trace.Load
				inst.Addr = 0x1000_0000 + i*64
			} else {
				inst.Class = trace.IntALU
			}
			inst.Dep1 = 0
		}}
	}
	engO, hO := buildSystem()
	ooo := NewOoO(engO, DefaultConfig(), hO, mk()).Run(4000).IPC()
	engI, hI := buildSystem()
	io := NewInOrder(engI, hI, mk()).Run(4000).IPC()
	if io >= ooo {
		t.Fatalf("in-order (%.3f) not slower than OoO (%.3f) on parallel loads", io, ooo)
	}
}

// TestWarmupCallback fires exactly once at the requested commit
// count.
func TestWarmupCallback(t *testing.T) {
	eng, h := buildSystem()
	s := &synthStream{n: 2000, make: func(i uint64, inst *trace.Inst) {
		inst.PC = 0x400000 + (i%64)*4
		inst.Class = trace.IntALU
	}}
	c := NewOoO(eng, DefaultConfig(), h, s)
	calls := 0
	var at uint64
	c.SetWarmup(500, func(cycles uint64) { calls++; at = cycles })
	res := c.Run(2000)
	if calls != 1 {
		t.Fatalf("warmup fired %d times", calls)
	}
	if at == 0 || at >= res.Cycles {
		t.Fatalf("warmup at cycle %d of %d", at, res.Cycles)
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RUUSize = 0
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config accepted")
		}
	}()
	cfg.Validate()
}

func TestResultIPC(t *testing.T) {
	r := Result{Cycles: 200, Insts: 100}
	if r.IPC() != 0.5 {
		t.Fatalf("IPC %v", r.IPC())
	}
	if (Result{}).IPC() != 0 {
		t.Fatal("zero-cycle IPC not 0")
	}
}

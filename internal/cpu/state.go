package cpu

import (
	"fmt"

	"microlib/internal/sim"
	"microlib/internal/trace"
)

// This file serializes the host cores' mutable state for warm-state
// checkpointing. Configuration and wiring (engine, hierarchy, stream)
// are reproduced by reconstruction; the trace/workload cursor is the
// runner's responsibility. In-flight load requests are pooled nodes
// referenced from cache MSHRs and calendar events; they serialize
// through the Load{Resolver,Restorer} operand domain.

// ROBEntryState is one reorder-buffer slot in serializable form.
type ROBEntryState struct {
	Class      trace.Class
	PC         uint64
	Addr       uint64
	IsStore    bool
	Mispredict bool
	State      uint8
	Pending    int
	Waiters    []uint64
}

// OoOState is the full mutable state of the out-of-order core.
type OoOState struct {
	Win           []ROBEntryState
	Head          uint64
	Tail          uint64
	ReadyQ        []uint64
	LSQUsed       int
	FetchDone     bool
	FetchBlocked  bool
	FetchRetry    bool
	FetchResumeAt uint64
	HaltOnBranch  bool
	HaltBranchSeq uint64
	CurFetchLine  uint64
	Staged        trace.Inst
	HasStaged     bool
	Fetched       uint64
	FuCycle       uint64
	IntALU        int
	IntMD         int
	FPALU         int
	FPMD          int
	LS            int
	Res           Result
}

// State captures the core's mutable state (in-flight load nodes are
// captured separately, by the LoadResolver, as they surface from the
// calendar and MSHR snapshots).
func (o *OoO) State() OoOState {
	st := OoOState{
		Head: o.head, Tail: o.tail, LSQUsed: o.lsqUsed,
		FetchDone: o.fetchDone, FetchBlocked: o.fetchBlocked,
		FetchRetry: o.fetchRetry, FetchResumeAt: o.fetchResumeAt,
		HaltOnBranch: o.haltOnBranch, HaltBranchSeq: o.haltBranchSeq,
		CurFetchLine: o.curFetchLine, Staged: o.staged, HasStaged: o.hasStaged,
		Fetched: o.fetched, FuCycle: o.fuCycle,
		IntALU: o.intALU, IntMD: o.intMD, FPALU: o.fpALU, FPMD: o.fpMD, LS: o.ls,
		Res: o.res,
	}
	st.Win = make([]ROBEntryState, len(o.win))
	for i := range o.win {
		e := &o.win[i]
		w := ROBEntryState{
			Class: e.class, PC: e.pc, Addr: e.addr, IsStore: e.isStore,
			Mispredict: e.mispredict, State: e.state, Pending: e.pending,
		}
		if len(e.waiters) > 0 {
			w.Waiters = append([]uint64(nil), e.waiters...)
		}
		st.Win[i] = w
	}
	if len(o.readyQ) > 0 {
		st.ReadyQ = append([]uint64(nil), o.readyQ...)
	}
	return st
}

// SetState overwrites the core's mutable state from a snapshot taken
// on an identically-configured core. Backing arrays (window waiter
// slices, the ready queue) are reused.
func (o *OoO) SetState(st OoOState) error {
	if len(st.Win) != len(o.win) {
		return fmt.Errorf("cpu: snapshot window has %d slots, config needs %d", len(st.Win), len(o.win))
	}
	for i := range st.Win {
		w := &st.Win[i]
		e := &o.win[i]
		keep := e.waiters[:0]
		*e = robEntry{
			class: w.Class, pc: w.PC, addr: w.Addr, isStore: w.IsStore,
			mispredict: w.Mispredict, state: w.State, pending: w.Pending,
			waiters: append(keep, w.Waiters...),
		}
	}
	o.head = st.Head
	o.tail = st.Tail
	o.readyQ = append(o.readyQ[:0], st.ReadyQ...)
	o.lsqUsed = st.LSQUsed
	o.fetchDone = st.FetchDone
	o.fetchBlocked = st.FetchBlocked
	o.fetchRetry = st.FetchRetry
	o.fetchResumeAt = st.FetchResumeAt
	o.haltOnBranch = st.HaltOnBranch
	o.haltBranchSeq = st.HaltBranchSeq
	o.curFetchLine = st.CurFetchLine
	o.staged = st.Staged
	o.hasStaged = st.HasStaged
	o.fetched = st.Fetched
	o.fuCycle = st.FuCycle
	o.intALU, o.intMD, o.fpALU, o.fpMD, o.ls = st.IntALU, st.IntMD, st.FPALU, st.FPMD, st.LS
	o.res = st.Res
	return nil
}

// LoadState is the payload of one in-flight pooled load request.
type LoadState struct {
	Seq  uint64
	Addr uint64
	PC   uint64
}

// LoadResolver is the snapshot-side operand domain for the core's
// pooled load nodes: the first time a node surfaces (from an MSHR
// target or a calendar event) it is assigned a table index; the table
// travels in the machine snapshot.
type LoadResolver struct {
	o   *OoO
	idx map[*loadReq]uint64
	tab []LoadState
}

// NewLoadResolver returns an empty load-operand domain for the core.
func (o *OoO) NewLoadResolver() *LoadResolver {
	return &LoadResolver{o: o, idx: map[*loadReq]uint64{}}
}

// Ref resolves v if it is one of this core's load nodes.
func (r *LoadResolver) Ref(v any) (sim.OpRef, bool) {
	lr, ok := v.(*loadReq)
	if !ok || lr.o != r.o {
		return sim.OpRef{}, false
	}
	if i, seen := r.idx[lr]; seen {
		return sim.OpRef{Kind: "cpu.load", Idx: i}, true
	}
	i := uint64(len(r.tab))
	r.tab = append(r.tab, LoadState{Seq: lr.seq, Addr: lr.acc.Addr, PC: lr.acc.PC})
	r.idx[lr] = i
	return sim.OpRef{Kind: "cpu.load", Idx: i}, true
}

// Loads returns the accumulated node payload table.
func (r *LoadResolver) Loads() []LoadState { return r.tab }

// LoadRestorer is the restore-side domain: each referenced table index
// materializes one pooled node, shared by every reference to it.
type LoadRestorer struct {
	o     *OoO
	tab   []LoadState
	nodes []*loadReq
}

// NewLoadRestorer returns the restore-side domain over a captured
// load table.
func (o *OoO) NewLoadRestorer(tab []LoadState) *LoadRestorer {
	return &LoadRestorer{o: o, tab: tab, nodes: make([]*loadReq, len(tab))}
}

// Val materializes the load node for a cpu.load reference.
func (r *LoadRestorer) Val(ref sim.OpRef) (any, bool) {
	if ref.Kind != "cpu.load" || ref.Idx >= uint64(len(r.tab)) {
		return nil, false
	}
	if n := r.nodes[ref.Idx]; n != nil {
		return n, true
	}
	p := r.tab[ref.Idx]
	lr := r.o.getLoad(p.Seq)
	lr.acc.Addr, lr.acc.PC = p.Addr, p.PC
	r.nodes[ref.Idx] = lr
	return lr, true
}

// InOrderState is the full mutable state of the scalar core.
type InOrderState struct {
	Waiting   bool
	DoneAt    uint64
	LoadAddr  uint64
	LoadPC    uint64
	StoreAddr uint64
	StorePC   uint64
	Res       Result
}

// State captures the scalar core's mutable state.
func (c *InOrder) State() InOrderState {
	return InOrderState{
		Waiting: c.waiting, DoneAt: c.doneAt,
		LoadAddr: c.loadAcc.Addr, LoadPC: c.loadAcc.PC,
		StoreAddr: c.storeAcc.Addr, StorePC: c.storeAcc.PC,
		Res: c.res,
	}
}

// SetState overwrites the scalar core's mutable state.
func (c *InOrder) SetState(st InOrderState) {
	c.waiting = st.Waiting
	c.doneAt = st.DoneAt
	c.loadAcc.Addr, c.loadAcc.PC = st.LoadAddr, st.LoadPC
	c.storeAcc.Addr, c.storeAcc.PC = st.StoreAddr, st.StorePC
	c.res = st.Res
}

func init() {
	sim.RegisterFunc("cpu.oooComplete", oooComplete)
}

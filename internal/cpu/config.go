// Package cpu implements the MicroLib host processor models: an
// out-of-order superscalar core with the Table 1 structural
// parameters (the SimpleScalar sim-outorder stand-in the experiments
// run on), and a simple in-order core used as a second host to
// demonstrate module interoperability (the paper's wrapper story).
package cpu

import (
	"fmt"

	"microlib/internal/cache"
)

// Config carries the core's structural parameters.
type Config struct {
	// Window sizes (Table 1: 128-RUU, 128-LSQ).
	RUUSize, LSQSize int
	// Widths (Table 1: fetch/decode/issue 8, commit up to 8).
	FetchWidth, IssueWidth, CommitWidth int
	// Functional unit counts (Table 1).
	IntALU, IntMultDiv, FPALU, FPMultDiv, LoadStore int
	// MispredictPenalty is the fetch-redirect cost in cycles after a
	// mispredicted branch resolves.
	MispredictPenalty uint64
}

// DefaultConfig returns the paper's Table 1 processor core.
func DefaultConfig() Config {
	return Config{
		RUUSize:           128,
		LSQSize:           128,
		FetchWidth:        8,
		IssueWidth:        8,
		CommitWidth:       8,
		IntALU:            8,
		IntMultDiv:        3,
		FPALU:             6,
		FPMultDiv:         2,
		LoadStore:         4,
		MispredictPenalty: 6,
	}
}

// Check reports nonsensical parameters as an error. Plan-time
// validation (campaign expansion, runner.Options.Validate) uses it so
// a zero window size fails the plan, not a worker mid-campaign.
func (c Config) Check() error {
	switch {
	case c.RUUSize <= 0 || c.LSQSize <= 0:
		return fmt.Errorf("cpu: window sizes must be positive (ruu=%d lsq=%d)", c.RUUSize, c.LSQSize)
	case c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0:
		return fmt.Errorf("cpu: widths must be positive (fetch=%d issue=%d commit=%d)",
			c.FetchWidth, c.IssueWidth, c.CommitWidth)
	case c.IntALU <= 0 || c.FPALU <= 0 || c.LoadStore <= 0 ||
		c.IntMultDiv <= 0 || c.FPMultDiv <= 0:
		// A zero mult/div pool is not "no mult/div" but a deadlock: the
		// issue stage waits forever for a unit that never exists.
		return fmt.Errorf("cpu: need at least one unit of each class")
	}
	return nil
}

// Validate panics on nonsensical parameters.
func (c Config) Validate() {
	if err := c.Check(); err != nil {
		panic(err.Error())
	}
}

// Result summarizes one simulation.
type Result struct {
	Cycles uint64
	Insts  uint64
	Loads  uint64
	Stores uint64
	// Mispredicts counts resolved mispredicted branches.
	Mispredicts uint64
	// RetryPort/RetryStall/RetryMSHR count cache refusals the core
	// absorbed, keyed by the structured reason the cache reported.
	// They mirror the cache-side Reject* counters but from the
	// consumer's view: one increment per refused submit attempt.
	RetryPort  uint64
	RetryStall uint64
	RetryMSHR  uint64
}

// noteRetry records a refused cache access under its reason.
//
//ml:hotpath
func (r *Result) noteRetry(reason cache.Reason) {
	switch reason {
	case cache.RefusePort:
		r.RetryPort++
	case cache.RefuseStall:
		r.RetryStall++
	case cache.RefuseMSHR:
		r.RetryMSHR++
	}
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

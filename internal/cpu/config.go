// Package cpu implements the MicroLib host processor models: an
// out-of-order superscalar core with the Table 1 structural
// parameters (the SimpleScalar sim-outorder stand-in the experiments
// run on), and a simple in-order core used as a second host to
// demonstrate module interoperability (the paper's wrapper story).
package cpu

// Config carries the core's structural parameters.
type Config struct {
	// Window sizes (Table 1: 128-RUU, 128-LSQ).
	RUUSize, LSQSize int
	// Widths (Table 1: fetch/decode/issue 8, commit up to 8).
	FetchWidth, IssueWidth, CommitWidth int
	// Functional unit counts (Table 1).
	IntALU, IntMultDiv, FPALU, FPMultDiv, LoadStore int
	// MispredictPenalty is the fetch-redirect cost in cycles after a
	// mispredicted branch resolves.
	MispredictPenalty uint64
}

// DefaultConfig returns the paper's Table 1 processor core.
func DefaultConfig() Config {
	return Config{
		RUUSize:           128,
		LSQSize:           128,
		FetchWidth:        8,
		IssueWidth:        8,
		CommitWidth:       8,
		IntALU:            8,
		IntMultDiv:        3,
		FPALU:             6,
		FPMultDiv:         2,
		LoadStore:         4,
		MispredictPenalty: 6,
	}
}

// Validate panics on nonsensical parameters.
func (c Config) Validate() {
	if c.RUUSize <= 0 || c.LSQSize <= 0 {
		panic("cpu: window sizes must be positive")
	}
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
		panic("cpu: widths must be positive")
	}
	if c.IntALU <= 0 || c.FPALU <= 0 || c.LoadStore <= 0 {
		panic("cpu: need at least one unit of each basic class")
	}
}

// Result summarizes one simulation.
type Result struct {
	Cycles uint64
	Insts  uint64
	Loads  uint64
	Stores uint64
	// Mispredicts counts resolved mispredicted branches.
	Mispredicts uint64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Insts) / float64(r.Cycles)
}

package workload

import "sort"

// Oracle supplies the memory image of a synthetic benchmark: for any
// address it can produce the 8-byte word stored there, consistently
// with the pointer structures the access patterns walk. It implements
// core.ValueSource (structurally; workload does not import core).
//
// The paper's OoOSysC model executes programs with real values; the
// oracle is our equivalent source of truth, feeding the mechanisms
// that inspect data: content-directed prefetching reads pointers out
// of fetched lines, and the frequent value cache tests words for
// membership in the frequent-value set.
type Oracle struct {
	regions  []oracleRegion
	heapLo   uint64
	heapHi   uint64
	fv       [7]uint64
	hashSeed uint64
}

type oracleRegion struct {
	base, size uint64
	// chase geometry (zero when the region is plain data)
	nodeSize uint64
	ptrOff   uint64
	succ     []uint32 // successor node index per node
	nodes    uint64
	decoys   int
	// value locality for data words
	fvProb float64
}

func newOracle(seed uint64) *Oracle {
	o := &Oracle{hashSeed: seed}
	// The canonical frequent values (the FVC paper's observation is
	// that 0, small constants and a few program-specific words cover
	// much of memory).
	o.fv = [7]uint64{0, 1, 0xffffffffffffffff, 4, 8, 0x20, 0x100}
	return o
}

func (o *Oracle) addRegion(r oracleRegion) {
	o.regions = append(o.regions, r)
	sort.Slice(o.regions, func(i, j int) bool { return o.regions[i].base < o.regions[j].base })
	if o.heapLo == 0 || r.base < o.heapLo {
		o.heapLo = r.base
	}
	if end := r.base + r.size; end > o.heapHi {
		o.heapHi = end
	}
}

func (o *Oracle) find(addr uint64) *oracleRegion {
	i := sort.Search(len(o.regions), func(i int) bool {
		return o.regions[i].base+o.regions[i].size > addr
	})
	if i < len(o.regions) && addr >= o.regions[i].base {
		return &o.regions[i]
	}
	return nil
}

// Word returns the 8-byte value at the aligned address.
func (o *Oracle) Word(addr uint64) uint64 {
	addr &^= 7
	r := o.find(addr)
	if r == nil {
		return o.hashWord(addr) // unmapped: incompressible noise
	}
	if r.nodeSize > 0 {
		off := addr - r.base
		node := off / r.nodeSize
		field := off % r.nodeSize
		if field == r.ptrOff {
			// True traversal pointer: address of the successor node.
			succ := uint64(r.succ[node%r.nodes])
			return r.base + succ*r.nodeSize
		}
		if r.decoys > 0 && field < uint64(r.decoys+1)*8 && field != r.ptrOff {
			// Decoy pointer field: a valid heap address that is NOT
			// the next node — content-directed prefetching will chase
			// it uselessly.
			t := o.hashWord(addr) % r.nodes
			return r.base + t*r.nodeSize
		}
	}
	// Plain data word: frequent value with probability fvProb, else
	// an address-determined incompressible value.
	h := o.hashWord(addr)
	if r.fvProb > 0 && float64(h%1000)/1000 < r.fvProb {
		return o.fv[h%7]
	}
	return h | 0x8000000000000000 // high bit keeps it out of the heap range
}

// IsPointer reports whether the word at addr looks like a heap
// pointer under this benchmark's memory map (aligned, in bounds).
func (o *Oracle) IsPointer(addr uint64) (uint64, bool) {
	w := o.Word(addr)
	if w&7 != 0 {
		return 0, false
	}
	if w >= o.heapLo && w < o.heapHi {
		return w, true
	}
	return 0, false
}

// FrequentValues returns the frequent-value set the FVC mechanism
// should use (index 7 is the designated "unknown" escape).
func (o *Oracle) FrequentValues() [7]uint64 { return o.fv }

// LineCompressible reports whether every word of the line at
// lineAddr (of size lineSize) is in the frequent-value set — the
// FVC storage condition.
func (o *Oracle) LineCompressible(lineAddr uint64, lineSize int) bool {
	for off := 0; off < lineSize; off += 8 {
		w := o.Word(lineAddr + uint64(off))
		found := false
		for _, f := range o.fv {
			if w == f {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func (o *Oracle) hashWord(addr uint64) uint64 {
	x := addr ^ o.hashSeed
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HeapBounds exposes the mapped range (tests use it).
func (o *Oracle) HeapBounds() (lo, hi uint64) { return o.heapLo, o.heapHi }

// Package workload synthesizes the 26 SPEC CPU2000 benchmarks as
// deterministic instruction-stream models.
//
// The real benchmarks are unavailable in this environment (they are
// licensed binaries compiled for Alpha with specific DEC compilers),
// so each benchmark is modeled as a phase-structured program: a set
// of loops (giving stable PCs and basic-block vectors), whose memory
// slots are bound to access-pattern state machines (strides, tiles,
// pointer chases, repeatable irregular tours, conflicts, random),
// with per-benchmark instruction mixes, dependence distances, branch
// predictability, code footprints and value locality. A per-benchmark
// value oracle supplies memory contents consistent with the pointer
// structures, which is what content-inspecting mechanisms (CDP, FVC)
// consume. DESIGN.md documents this substitution.
//
// Phases share one pattern set and differ only in weights and code,
// mirroring real programs, whose phases revisit the same data
// structures with different emphasis.
package workload

import (
	"fmt"
	"sort"

	"microlib/internal/prng"
	"microlib/internal/trace"
)

// PhaseSpec is one program phase: for Len dynamic instructions the
// benchmark's shared pattern set is exercised with this phase's
// weights (one per Profile.Patterns entry; zero disables a pattern
// in the phase).
type PhaseSpec struct {
	Len     uint64    `json:"len"`
	Weights []float64 `json:"weights"`
}

// Profile is the static description of one synthetic benchmark. The
// JSON encoding (see codec.go) is the campaign-spec form of an
// inline custom workload; field order is the canonical serialization
// order, so do not reorder fields without bumping the runner
// fingerprint version.
type Profile struct {
	Name string `json:"name"`
	FP   bool   `json:"fp,omitempty"`
	// Instruction mix (fractions of the dynamic stream).
	LoadFrac  float64 `json:"load_frac"`
	StoreFrac float64 `json:"store_frac"`
	// BranchFrac is descriptive only: realized branch density is one
	// block-ending branch per BlockLen instructions, so set BlockLen
	// ≈ 1/BranchFrac rather than expecting this field to act.
	BranchFrac float64 `json:"branch_frac,omitempty"`
	// Mispredict is the branch misprediction rate.
	Mispredict float64 `json:"mispredict,omitempty"`
	// CodeKB approximates the active code footprint.
	CodeKB int `json:"code_kb,omitempty"`
	// BlockLen is the mean basic-block length in instructions.
	BlockLen int `json:"block_len,omitempty"`
	// DepMean is the mean register-dependence distance.
	DepMean float64 `json:"dep_mean,omitempty"`
	// FVProb is the benchmark's frequent-value density.
	FVProb float64 `json:"fv_prob,omitempty"`
	// Patterns is the benchmark's shared access-pattern set.
	Patterns []PatternSpec `json:"patterns"`
	Phases   []PhaseSpec   `json:"phases"`
}

// codeBase is where synthetic text segments start; heap regions are
// allocated above heapBase.
const (
	codeBase = 0x0040_0000
	heapBase = 0x1000_0000
)

// dataPCsPerPattern is the number of distinct static instruction
// identities a non-hot pattern presents to the memory system. A real
// structure walk is performed by a couple of static loads, which is
// what PC-indexed predictors (SP, GHB) and signature mechanisms
// (DBCP) rely on; the loop/block model alone would spread a pattern
// over arbitrarily many PCs.
const dataPCsPerPattern = 1

type slotKind uint8

const (
	slotALU slotKind = iota
	slotMem
	slotBranch
)

type instTemplate struct {
	pc      uint64
	dataPC  uint64 // stable static-instruction identity for mem slots
	class   trace.Class
	kind    slotKind
	pattern int // pattern index for mem slots
	isStore bool
	dep1    uint16
	dep2    uint16
}

type block struct {
	id    uint32
	insts []instTemplate
}

type loop struct {
	blocks []block
}

type phaseState struct {
	spec  PhaseSpec
	loops []loop
}

// Generator emits the instruction stream of one benchmark. It
// implements trace.Stream and never ends (callers bound it with
// trace.Limit).
type Generator struct {
	prof   Profile
	oracle *Oracle
	rng    *prng.Source

	patterns []*pattern
	// lastSeq tracks, per pattern and chase chain, the sequence
	// number of the last pointer load (for chase and serial
	// dependences); shared across phases.
	lastSeq   [][]uint64
	slotCount []int

	phases   []*phaseState
	phaseIdx int
	inPhase  uint64

	curLoop   int
	loopIters int
	blockIdx  int
	instIdx   int

	seq uint64
}

// NewGenerator builds the deterministic generator for a profile.
// The same (profile, seed) pair always yields the identical stream.
func NewGenerator(prof Profile, seed uint64) *Generator {
	if len(prof.Patterns) == 0 || len(prof.Phases) == 0 {
		panic("workload: profile needs patterns and phases: " + prof.Name)
	}
	for _, ph := range prof.Phases {
		if len(ph.Weights) != len(prof.Patterns) {
			panic("workload: phase weight vector length mismatch: " + prof.Name)
		}
	}
	rng := prng.New(seed ^ prng.HashString(prof.Name))
	g := &Generator{
		prof:   prof,
		oracle: newOracle(rng.Uint64()),
		rng:    rng,
	}

	// Allocate pattern regions and register them with the oracle.
	nextBase := uint64(heapBase)
	for _, spec := range prof.Patterns {
		// Jitter region bases so distinct regions do not all alias
		// to L1 set 0.
		base := nextBase + (rng.Uint64n(32<<10) &^ 63)
		sz := spec.Size
		if sz == 0 {
			sz = 4 << 10
		}
		spec.Size = sz
		nextBase += (sz + (2 << 20)) &^ ((1 << 20) - 1)

		var p *pattern
		if spec.Kind == PatChase {
			if spec.NodeSize == 0 {
				spec.NodeSize = 64
			}
			nodes := sz / spec.NodeSize
			if nodes == 0 {
				nodes = 1
			}
			// Shuffled visit order; the oracle's pointer fields are
			// built to match, so the chain in memory IS the walk.
			order := shuffledOrder(nodes, rng)
			succ := make([]uint32, nodes)
			for i := range order {
				succ[order[i]] = order[(i+1)%len(order)]
			}
			fields := spec.Fields
			if len(fields) == 0 {
				fields = []uint64{spec.PtrOff}
			}
			chains := spec.Chains
			if chains < 1 {
				chains = 1
			}
			cursors := make([]uint64, chains)
			for c := range cursors {
				cursors[c] = uint64(c) * nodes / uint64(chains)
			}
			p = &pattern{spec: spec, base: base, rng: rng.Split(), order: order, fields: fields, nodeCur: cursors}
			g.oracle.addRegion(oracleRegion{
				base: base, size: sz,
				nodeSize: spec.NodeSize, ptrOff: spec.PtrOff,
				succ: succ, nodes: nodes, decoys: spec.Decoys,
				fvProb: orDefault(spec.FVProb, prof.FVProb),
			})
		} else {
			p = newPattern(spec, base, rng)
			g.oracle.addRegion(oracleRegion{
				base: base, size: sz,
				fvProb: orDefault(spec.FVProb, prof.FVProb),
			})
		}
		g.patterns = append(g.patterns, p)
	}
	g.lastSeq = make([][]uint64, len(g.patterns))
	for i, p := range g.patterns {
		n := 1
		if len(p.nodeCur) > 0 {
			n = len(p.nodeCur)
		}
		g.lastSeq[i] = make([]uint64, n)
	}
	g.slotCount = make([]int, len(g.patterns))

	// Build each phase's loops so the total text size approximates
	// CodeKB spread across the phases.
	blockID := uint32(0)
	pcCursor := uint64(codeBase)
	for _, ps := range prof.Phases {
		st := &phaseState{spec: ps}
		blockLen := prof.BlockLen
		if blockLen < 3 {
			blockLen = 5
		}
		codeBytes := prof.CodeKB * 1024 / len(prof.Phases)
		totalBlocks := codeBytes / (blockLen * 4)
		if totalBlocks < 4 {
			totalBlocks = 4
		}
		const blocksPerLoop = 8
		nLoops := totalBlocks / blocksPerLoop
		if nLoops < 1 {
			nLoops = 1
		}
		cw := cumulativeWeights(ps.Weights)
		for l := 0; l < nLoops; l++ {
			var lp loop
			for b := 0; b < blocksPerLoop; b++ {
				blk := g.buildBlock(blockID, pcCursor, blockLen, cw)
				pcCursor += uint64(len(blk.insts)) * 4
				blockID++
				lp.blocks = append(lp.blocks, blk)
			}
			st.loops = append(st.loops, lp)
		}
		g.phases = append(g.phases, st)
	}
	return g
}

func orDefault(v, def float64) float64 {
	if v > 0 {
		return v
	}
	return def
}

func cumulativeWeights(weights []float64) []float64 {
	cw := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		sum += w
		cw[i] = sum
	}
	if sum == 0 {
		panic("workload: phase has all-zero weights")
	}
	for i := range cw {
		cw[i] /= sum
	}
	return cw
}

// buildBlock synthesizes one basic-block template. The final
// instruction is always the block-ending branch.
func (g *Generator) buildBlock(id uint32, pcBase uint64, meanLen int, cw []float64) block {
	n := g.rng.Geometric(float64(meanLen), meanLen*3)
	if n < 2 {
		n = 2
	}
	insts := make([]instTemplate, 0, n)
	memBudget := g.prof.LoadFrac + g.prof.StoreFrac
	for i := 0; i < n-1; i++ {
		t := instTemplate{pc: pcBase + uint64(len(insts))*4}
		r := g.rng.Float64()
		switch {
		case r < memBudget:
			t.kind = slotMem
			t.isStore = g.rng.Float64() < g.prof.StoreFrac/memBudget
			if t.isStore {
				t.class = trace.Store
			} else {
				t.class = trace.Load
			}
			t.pattern = pickWeighted(cw, g.rng.Float64())
			if pat := g.patterns[t.pattern]; pat.spec.Kind != PatHot {
				// Non-hot patterns present a stable, small set of
				// static-instruction identities to the memory system.
				t.dataPC = 0x00f0_0000 + (pat.base >> 14 << 5) +
					uint64(g.slotCount[t.pattern]%dataPCsPerPattern)*4
			}
			g.slotCount[t.pattern]++
		default:
			t.kind = slotALU
			t.class = g.pickALUClass()
		}
		t.dep1 = uint16(g.rng.Geometric(g.prof.DepMean, 48))
		if g.rng.Bool(0.5) {
			t.dep2 = uint16(g.rng.Geometric(g.prof.DepMean, 48))
		}
		insts = append(insts, t)
	}
	insts = append(insts, instTemplate{
		pc:    pcBase + uint64(len(insts))*4,
		kind:  slotBranch,
		class: trace.Branch,
		dep1:  uint16(g.rng.Geometric(g.prof.DepMean, 16)),
	})
	return block{id: id, insts: insts}
}

func pickWeighted(cw []float64, u float64) int {
	i := sort.SearchFloat64s(cw, u)
	if i >= len(cw) {
		i = len(cw) - 1
	}
	return i
}

func (g *Generator) pickALUClass() trace.Class {
	if g.prof.FP {
		switch r := g.rng.Float64(); {
		case r < 0.45:
			return trace.FPALU
		case r < 0.65:
			return trace.FPMult
		case r < 0.67:
			return trace.FPDiv
		case r < 0.70:
			return trace.IntMult
		default:
			return trace.IntALU
		}
	}
	switch r := g.rng.Float64(); {
	case r < 0.04:
		return trace.IntMult
	case r < 0.045:
		return trace.IntDiv
	default:
		return trace.IntALU
	}
}

// Oracle returns the benchmark's memory-content oracle.
func (g *Generator) Oracle() *Oracle { return g.oracle }

// Profile returns the generating profile.
func (g *Generator) Profile() Profile { return g.prof }

// Next implements trace.Stream; the stream is infinite.
func (g *Generator) Next(inst *trace.Inst) bool {
	st := g.phases[g.phaseIdx]
	lp := &st.loops[g.curLoop%len(st.loops)]
	blk := &lp.blocks[g.blockIdx%len(lp.blocks)]
	t := &blk.insts[g.instIdx]

	inst.PC = t.pc
	inst.DataPC = t.dataPC
	inst.Class = t.class
	inst.BB = blk.id
	inst.Dep1 = t.dep1
	inst.Dep2 = t.dep2
	inst.Addr = 0
	inst.Mispredict = false

	switch t.kind {
	case slotMem:
		p := g.patterns[t.pattern]
		addr, ptrField := p.next()
		inst.Addr = addr
		switch {
		case p.spec.Kind == PatChase:
			// Chase accesses serialize on the previous pointer load
			// of the same chain of the structure.
			chain := p.curChain
			if last := g.lastSeq[t.pattern][chain]; last > 0 {
				d := g.seq - last
				if d > 65535 {
					d = 65535
				}
				inst.Dep1 = uint16(d)
			}
			if ptrField {
				g.lastSeq[t.pattern][chain] = g.seq
			}
		case p.spec.Serial && t.class == trace.Load:
			// Serial patterns chain each load on the previous one.
			if last := g.lastSeq[t.pattern][0]; last > 0 {
				d := g.seq - last
				if d > 65535 {
					d = 65535
				}
				inst.Dep1 = uint16(d)
			}
			g.lastSeq[t.pattern][0] = g.seq
		}
	case slotBranch:
		inst.Mispredict = g.rng.Bool(g.prof.Mispredict)
	}

	// Advance cursors.
	g.seq++
	g.instIdx++
	if g.instIdx >= len(blk.insts) {
		g.instIdx = 0
		g.blockIdx++
		if g.blockIdx >= len(lp.blocks) {
			g.blockIdx = 0
			g.loopIters++
			// Stay in a loop for a while, then move to another loop of
			// the phase (models the call graph; drives I-cache
			// behaviour).
			if g.loopIters >= 16 || g.rng.Bool(0.05) {
				g.loopIters = 0
				g.curLoop = g.rng.Intn(len(st.loops))
			}
		}
	}
	g.inPhase++
	if g.inPhase >= st.spec.Len {
		g.inPhase = 0
		g.phaseIdx = (g.phaseIdx + 1) % len(g.phases)
		// loopIters resets with the other loop cursors: a residual
		// count would cut the first loop of the new phase short.
		g.blockIdx, g.instIdx, g.curLoop, g.loopIters = 0, 0, 0, 0
	}
	return true
}

// New builds a generator for a named benchmark.
func New(name string, seed uint64) (*Generator, error) {
	p, ok := ByName(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return NewGenerator(p, seed), nil
}

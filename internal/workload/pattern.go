package workload

import "microlib/internal/prng"

// PatternKind selects an access-pattern state machine.
type PatternKind int

// The pattern vocabulary. Each synthetic benchmark is a weighted mix
// of these, chosen to exercise the specific behaviours the surveyed
// mechanisms key off (strides for SP/GHB/TP, repeatable irregular
// tours for Markov/DBCP/TCP/TK, pointer chases for CDP, set conflicts
// for VC, value-dense regions for FVC).
const (
	// PatHot cycles a tiny working set (stack/locals); almost always
	// hits in L1.
	PatHot PatternKind = iota
	// PatSeq walks a region 8 bytes at a time (dense line reuse,
	// next-line misses that tagged prefetching covers).
	PatSeq
	// PatStride walks a region with a fixed stride; a PC-indexed
	// stride prefetcher locks onto it.
	PatStride
	// PatTile is a two-level nested walk (inner stride, outer jump):
	// a repeating non-constant delta sequence that delta-correlating
	// prefetchers (GHB) capture but simple stride detectors break on.
	PatTile
	// PatChase follows a linked structure: the next node address is
	// stored in memory at ptrOff inside each node, visible to
	// content-directed prefetching iff ptrOff lies within the
	// fetched line.
	PatChase
	// PatTour visits a fixed pseudo-random sequence of lines over and
	// over: irregular (defeats strides) but repeatable (miss-address
	// correlation — Markov, DBCP, TK — learns it).
	PatTour
	// PatRand touches uniformly random lines in a large region:
	// irreducible misses.
	PatRand
	// PatConflict ping-pongs between lines that map to the same set
	// of the direct-mapped L1: pure conflict misses a victim cache
	// absorbs.
	PatConflict
)

// PatternSpec parameterizes one pattern instance in a profile. The
// JSON encoding names the kind ("hot", "stride", "chase", ...); see
// codec.go.
type PatternSpec struct {
	// Kind selects the state machine; how often the pattern is used
	// comes from the per-phase weight vectors, not from the pattern.
	Kind   PatternKind `json:"kind"`
	Size   uint64      `json:"size,omitempty"`   // region size in bytes
	Stride uint64      `json:"stride,omitempty"` // PatStride / PatTile inner stride
	// Tile geometry: inner steps before an outer jump of Jump bytes.
	InnerSteps int    `json:"inner_steps,omitempty"`
	Jump       uint64 `json:"jump,omitempty"`
	// Chase geometry.
	NodeSize uint64 `json:"node_size,omitempty"` // bytes per node
	PtrOff   uint64 `json:"ptr_off,omitempty"`   // offset of the true next pointer inside a node
	Decoys   int    `json:"decoys,omitempty"`    // pointer-looking fields per node that mislead CDP
	// Fields are the node offsets touched per visit, in order; the
	// default is just PtrOff. ammp-style structures access data at
	// +0 before reaching the pointer 88 bytes down (outside the
	// first fetched line).
	Fields []uint64 `json:"fields,omitempty"`
	// Chains is the number of independent traversals interleaved
	// over the structure (memory-level parallelism of the chase);
	// default 1.
	Chains int `json:"chains,omitempty"`
	// Serial marks the pattern's accesses as address-dependent on
	// the previous access of the same pattern (hash-chain walks,
	// index chasing): the load's latency is then on the critical
	// path, which is what makes L1-level mechanisms matter.
	Serial bool `json:"serial,omitempty"`
	// Tour geometry.
	TourLines int `json:"tour_lines,omitempty"`
	// Value locality: probability a data word holds a frequent value.
	FVProb float64 `json:"fv_prob,omitempty"`
}

// pattern is the run-time state of one PatternSpec instance.
type pattern struct {
	spec PatternSpec
	base uint64
	rng  *prng.Source

	pos    uint64 // generic cursor
	inner  int    // tile inner step
	field  int    // chase field cursor
	fields []uint64
	// chase state: one step cursor per independent chain, indexing
	// the shuffled visit order.
	nodeCur  []uint64
	chainIdx int
	curChain int // chain of the most recently emitted access
	// order is the shuffled node-visit order of a chase; successive
	// deltas are irregular, so stride/delta prefetchers cannot
	// predict the walk — only content (CDP) or repetition (Markov,
	// DBCP) can.
	order []uint32
	tour  []uint64
	hotWS []uint64
	perm  lcg
}

// shuffledOrder returns a Fisher-Yates shuffle of [0, n).
func shuffledOrder(n uint64, rng *prng.Source) []uint32 {
	order := make([]uint32, n)
	for i := range order {
		order[i] = uint32(i)
	}
	for i := int(n) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// lcg is a full-period affine permutation over [0, n): visiting
// i -> (a*i + c) mod n with a, c chosen so the walk is irregular but
// repeats identically every period. Deterministic, no storage.
type lcg struct {
	a, c, n uint64
}

func newLCG(n uint64, rng *prng.Source) lcg {
	if n == 0 {
		n = 1
	}
	// a must be coprime with n; using odd a with power-of-two-ish n
	// is not guaranteed, so force n odd arithmetic by stepping with
	// gcd check.
	a := rng.Uint64n(n)*2 + 1
	for gcd(a, n) != 1 {
		a += 2
		if a >= n*2 {
			a = 1
		}
	}
	c := rng.Uint64n(n)
	return lcg{a: a, c: c, n: n}
}

func gcd(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func (l lcg) apply(i uint64) uint64 { return (l.a*i + l.c) % l.n }

func newPattern(spec PatternSpec, base uint64, rng *prng.Source) *pattern {
	p := &pattern{spec: spec, base: base, rng: rng.Split()}
	switch spec.Kind {
	case PatTour:
		n := spec.TourLines
		if n <= 0 {
			n = 256
		}
		lines := spec.Size / lineBytes
		if lines == 0 {
			lines = 1
		}
		if uint64(n) > lines {
			n = int(lines)
		}
		// Visit a shuffled subset of the region's lines: irregular
		// (unpredictable by stride/delta) but identical every pass
		// (learnable by miss-address correlation).
		ord := shuffledOrder(lines, p.rng)
		p.tour = make([]uint64, n)
		for i := range p.tour {
			p.tour[i] = base + uint64(ord[i])*lineBytes
		}
	case PatHot:
		n := int(spec.Size / 8)
		if n <= 0 {
			n = 64
		}
		if n > 512 {
			n = 512
		}
		p.hotWS = make([]uint64, n)
		for i := range p.hotWS {
			p.hotWS[i] = base + uint64(i)*8
		}
	case PatChase:
		nodes := spec.Size / spec.NodeSize
		if nodes == 0 {
			nodes = 1
		}
		p.perm = newLCG(nodes, p.rng)
	}
	return p
}

// lineBytes is the L1 line size used for pattern geometry.
const lineBytes = 32

// next returns the next effective address for this pattern, and, for
// chases, whether the access reads the true next-node pointer (the
// access later accesses of the structure serialize on).
func (p *pattern) next() (addr uint64, ptrField bool) {
	s := &p.spec
	switch s.Kind {
	case PatHot:
		return p.hotWS[p.rng.Intn(len(p.hotWS))], false
	case PatSeq:
		a := p.base + p.pos
		p.pos += 8
		if p.pos >= s.Size {
			p.pos = 0
		}
		return a, false
	case PatStride:
		a := p.base + p.pos
		p.pos += s.Stride
		if p.pos >= s.Size {
			p.pos = 0
		}
		return a, false
	case PatTile:
		a := p.base + p.pos
		p.inner++
		if p.inner >= s.InnerSteps {
			p.inner = 0
			p.pos += s.Jump
		} else {
			p.pos += s.Stride
		}
		if p.pos >= s.Size {
			p.pos = 0
		}
		return a, false
	case PatChase:
		steps := uint64(len(p.order))
		off := p.fields[p.field]
		p.curChain = p.chainIdx
		cur := &p.nodeCur[p.chainIdx]
		addr := p.base + uint64(p.order[*cur])*s.NodeSize + off
		isPtr := off == s.PtrOff
		p.field++
		if p.field >= len(p.fields) {
			p.field = 0
			*cur++
			if *cur >= steps {
				*cur = 0
			}
			p.chainIdx = (p.chainIdx + 1) % len(p.nodeCur)
		}
		return addr, isPtr
	case PatTour:
		a := p.tour[p.pos]
		p.pos++
		if p.pos >= uint64(len(p.tour)) {
			p.pos = 0
		}
		return a, false
	case PatRand:
		lines := s.Size / lineBytes
		return p.base + p.rng.Uint64n(lines)*lineBytes, false
	case PatConflict:
		// Lines spaced exactly one L1-cache-size apart share a set in
		// the direct-mapped L1.
		const l1Size = 32 << 10
		k := s.Size / l1Size
		if k < 2 {
			k = 2
		}
		a := p.base + (p.pos%k)*l1Size
		p.pos++
		return a, false
	}
	return p.base, false
}

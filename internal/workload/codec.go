package workload

// This file is the profile codec: the JSON form of Profile /
// PatternSpec / PhaseSpec that campaign specs embed as inline custom
// workloads, the validation that turns NewGenerator's panics into
// errors at spec-parse time, and the Registry that layers
// campaign-local workload names over the 26 built-ins.

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// kindNames maps pattern kinds to their JSON names, in kind order.
var kindNames = []string{
	PatHot:      "hot",
	PatSeq:      "seq",
	PatStride:   "stride",
	PatTile:     "tile",
	PatChase:    "chase",
	PatTour:     "tour",
	PatRand:     "rand",
	PatConflict: "conflict",
}

// String names the pattern kind as it appears in profile JSON.
func (k PatternKind) String() string {
	if int(k) >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("PatternKind(%d)", int(k))
}

// PatternKindNames returns the valid JSON pattern-kind names.
func PatternKindNames() []string {
	return append([]string(nil), kindNames...)
}

// ParsePatternKind resolves a JSON pattern-kind name.
func ParsePatternKind(name string) (PatternKind, error) {
	for k, n := range kindNames {
		if n == name {
			return PatternKind(k), nil
		}
	}
	return 0, fmt.Errorf("workload: unknown pattern kind %q (have hot, seq, stride, tile, chase, tour, rand, conflict)", name)
}

// MarshalJSON encodes the kind by name.
func (k PatternKind) MarshalJSON() ([]byte, error) {
	if int(k) < 0 || int(k) >= len(kindNames) {
		return nil, fmt.Errorf("workload: cannot encode invalid pattern kind %d", int(k))
	}
	return json.Marshal(kindNames[k])
}

// UnmarshalJSON decodes a kind name.
func (k *PatternKind) UnmarshalJSON(data []byte) error {
	var name string
	if err := json.Unmarshal(data, &name); err != nil {
		return fmt.Errorf("workload: pattern kind must be a name string: %w", err)
	}
	parsed, err := ParsePatternKind(name)
	if err != nil {
		return err
	}
	*k = parsed
	return nil
}

// ParseProfile decodes and validates one profile from its JSON form.
// Unknown fields are rejected — a misspelled knob ("load_fraction")
// must fail loudly, not silently simulate a different workload.
func ParseProfile(data []byte) (Profile, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return Profile{}, fmt.Errorf("workload: parse profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return Profile{}, err
	}
	return p, nil
}

// CanonicalJSON returns the deterministic serialization of the
// profile: struct fields encode in declaration order and pattern
// kinds by name, so equal profiles always produce equal bytes. It is
// the content identity the runner fingerprint folds in for inline
// custom workloads — any byte change means a different workload.
func (p Profile) CanonicalJSON() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(p)
}

// Validate checks everything NewGenerator would panic on, plus the
// geometry mistakes that would silently generate a degenerate stream
// (a chase pointer outside its node, a phase that disables every
// pattern). A nil error means NewGenerator accepts the profile.
func (p *Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile needs a name")
	}
	if p.LoadFrac < 0 || p.StoreFrac < 0 {
		return fmt.Errorf("workload: %s: negative instruction-mix fraction", p.Name)
	}
	if p.LoadFrac+p.StoreFrac > 1 {
		return fmt.Errorf("workload: %s: load_frac+store_frac = %.3f exceeds 1", p.Name, p.LoadFrac+p.StoreFrac)
	}
	if p.Mispredict < 0 || p.Mispredict > 1 {
		return fmt.Errorf("workload: %s: mispredict %.3f outside [0,1]", p.Name, p.Mispredict)
	}
	if p.FVProb < 0 || p.FVProb > 1 {
		return fmt.Errorf("workload: %s: fv_prob %.3f outside [0,1]", p.Name, p.FVProb)
	}
	if p.CodeKB < 0 || p.BlockLen < 0 || p.DepMean < 0 {
		return fmt.Errorf("workload: %s: negative code_kb/block_len/dep_mean", p.Name)
	}
	if len(p.Patterns) == 0 {
		return fmt.Errorf("workload: %s: profile needs at least one pattern", p.Name)
	}
	if len(p.Phases) == 0 {
		return fmt.Errorf("workload: %s: profile needs at least one phase", p.Name)
	}
	for i := range p.Patterns {
		if err := p.Patterns[i].validate(); err != nil {
			return fmt.Errorf("workload: %s: pattern %d: %w", p.Name, i, err)
		}
	}
	for i, ph := range p.Phases {
		if ph.Len == 0 {
			return fmt.Errorf("workload: %s: phase %d has zero length", p.Name, i)
		}
		if len(ph.Weights) != len(p.Patterns) {
			return fmt.Errorf("workload: %s: phase %d has %d weights for %d patterns",
				p.Name, i, len(ph.Weights), len(p.Patterns))
		}
		sum := 0.0
		for j, w := range ph.Weights {
			if w < 0 {
				return fmt.Errorf("workload: %s: phase %d weight %d is negative", p.Name, i, j)
			}
			sum += w
		}
		if sum == 0 {
			return fmt.Errorf("workload: %s: phase %d disables every pattern (all-zero weights)", p.Name, i)
		}
	}
	return nil
}

func (s *PatternSpec) validate() error {
	if int(s.Kind) < 0 || int(s.Kind) >= len(kindNames) {
		return fmt.Errorf("invalid pattern kind %d", int(s.Kind))
	}
	if s.Chains < 0 || s.Decoys < 0 || s.InnerSteps < 0 || s.TourLines < 0 {
		return fmt.Errorf("%s: negative chains/decoys/inner_steps/tour_lines", s.Kind)
	}
	if s.FVProb < 0 || s.FVProb > 1 {
		return fmt.Errorf("%s: fv_prob %.3f outside [0,1]", s.Kind, s.FVProb)
	}
	switch s.Kind {
	case PatStride:
		if s.Stride == 0 {
			return fmt.Errorf("stride pattern needs stride > 0")
		}
	case PatTile:
		if s.Stride == 0 || s.InnerSteps == 0 || s.Jump == 0 {
			return fmt.Errorf("tile pattern needs stride, inner_steps and jump > 0")
		}
	case PatChase:
		// The generator defaults NodeSize to 64; validate against the
		// effective value so "ptr_off": 8 with no node_size passes.
		nodeSize := s.NodeSize
		if nodeSize == 0 {
			nodeSize = 64
		}
		if s.PtrOff+8 > nodeSize {
			return fmt.Errorf("chase ptr_off %d does not fit a pointer in a %d-byte node", s.PtrOff, nodeSize)
		}
		for i, f := range s.Fields {
			if f+8 > nodeSize {
				return fmt.Errorf("chase field %d at offset %d falls outside the %d-byte node", i, f, nodeSize)
			}
		}
	}
	return nil
}

// Registry is the workload namespace of one campaign: the 26
// built-in benchmarks plus campaign-local custom names (profiles and
// reserved trace names). Custom names may not collide with built-ins
// or each other — a spec that shadowed "mcf" would silently change
// what every other spec means by it. Resolution of a name to its
// source stays with the spec that defined it; the registry only
// guards the namespace and orders Names.
type Registry struct {
	custom map[string]bool
	order  []string
}

// NewRegistry returns a registry holding only the built-ins.
func NewRegistry() *Registry {
	return &Registry{custom: map[string]bool{}}
}

func (r *Registry) reserve(name string) error {
	if name == "" {
		return fmt.Errorf("workload: custom workload needs a name")
	}
	if _, ok := ByName(name); ok {
		return fmt.Errorf("workload: custom workload %q collides with a built-in benchmark", name)
	}
	if r.custom[name] {
		return fmt.Errorf("workload: duplicate custom workload %q", name)
	}
	return nil
}

// Add claims a custom name for a validated inline profile.
func (r *Registry) Add(p Profile) error {
	if err := p.Validate(); err != nil {
		return err
	}
	return r.Reserve(p.Name)
}

// Reserve claims a custom name (profile or trace workload alike).
func (r *Registry) Reserve(name string) error {
	if err := r.reserve(name); err != nil {
		return err
	}
	r.custom[name] = true
	r.order = append(r.order, name)
	return nil
}

// Names returns every resolvable name: built-ins first, then custom
// workloads in registration order.
func (r *Registry) Names() []string {
	names := Names()
	if r != nil {
		names = append(names, r.order...)
	}
	return names
}

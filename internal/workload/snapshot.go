package workload

import "fmt"

// This file serializes the generator's stream cursor for warm-state
// checkpointing. Everything built in NewGenerator from (profile, seed)
// — pattern regions, visit orders, loop/block templates, the oracle —
// is static and reproduced by reconstruction; only the cursors that
// advance as instructions are emitted travel in the snapshot.

// PatternState is one access pattern's mutable cursor state.
type PatternState struct {
	Pos      uint64
	Inner    int
	Field    int
	ChainIdx int
	CurChain int
	NodeCur  []uint64
	RNG      [4]uint64
}

// GeneratorState is the generator's full mutable state.
type GeneratorState struct {
	RNG       [4]uint64
	LastSeq   [][]uint64
	Patterns  []PatternState
	PhaseIdx  int
	InPhase   uint64
	CurLoop   int
	LoopIters int
	BlockIdx  int
	InstIdx   int
	Seq       uint64
}

// State captures the generator's stream cursor.
func (g *Generator) State() GeneratorState {
	st := GeneratorState{
		RNG:      g.rng.State(),
		PhaseIdx: g.phaseIdx, InPhase: g.inPhase,
		CurLoop: g.curLoop, LoopIters: g.loopIters,
		BlockIdx: g.blockIdx, InstIdx: g.instIdx,
		Seq: g.seq,
	}
	st.LastSeq = make([][]uint64, len(g.lastSeq))
	for i, ls := range g.lastSeq {
		st.LastSeq[i] = append([]uint64(nil), ls...)
	}
	st.Patterns = make([]PatternState, len(g.patterns))
	for i, p := range g.patterns {
		st.Patterns[i] = PatternState{
			Pos: p.pos, Inner: p.inner, Field: p.field,
			ChainIdx: p.chainIdx, CurChain: p.curChain,
			NodeCur: append([]uint64(nil), p.nodeCur...),
			RNG:     p.rng.State(),
		}
	}
	return st
}

// SetState overwrites the generator's stream cursor from a snapshot
// taken on a generator built from the same (profile, seed).
func (g *Generator) SetState(st GeneratorState) error {
	if len(st.Patterns) != len(g.patterns) || len(st.LastSeq) != len(g.lastSeq) {
		return fmt.Errorf("workload: snapshot has %d patterns/%d chains, generator holds %d/%d",
			len(st.Patterns), len(st.LastSeq), len(g.patterns), len(g.lastSeq))
	}
	for i, ls := range st.LastSeq {
		if len(ls) != len(g.lastSeq[i]) {
			return fmt.Errorf("workload: snapshot pattern %d has %d chains, generator holds %d",
				i, len(ls), len(g.lastSeq[i]))
		}
	}
	g.rng.SetState(st.RNG)
	for i, ls := range st.LastSeq {
		copy(g.lastSeq[i], ls)
	}
	for i := range st.Patterns {
		ps := &st.Patterns[i]
		p := g.patterns[i]
		if len(ps.NodeCur) != len(p.nodeCur) {
			return fmt.Errorf("workload: snapshot pattern %d has %d chase cursors, generator holds %d",
				i, len(ps.NodeCur), len(p.nodeCur))
		}
		p.pos, p.inner, p.field = ps.Pos, ps.Inner, ps.Field
		p.chainIdx, p.curChain = ps.ChainIdx, ps.CurChain
		copy(p.nodeCur, ps.NodeCur)
		p.rng.SetState(ps.RNG)
	}
	g.phaseIdx, g.inPhase = st.PhaseIdx, st.InPhase
	g.curLoop, g.loopIters = st.CurLoop, st.LoopIters
	g.blockIdx, g.instIdx = st.BlockIdx, st.InstIdx
	g.seq = st.Seq
	return nil
}

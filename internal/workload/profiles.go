package workload

// This file defines the 26 synthetic SPEC CPU2000 benchmark profiles.
// Parameters are chosen so the behaviours the paper reports emerge
// from the mechanisms rather than being hard-coded:
//
//   - apsi, equake, fma3d, mgrid, swim, gap carry large strided/tiled
//     working sets (the paper's high-sensitivity set);
//   - wupwise, bzip2, crafty, eon, perlbmk, vortex are cache-friendly
//     (the low-sensitivity set);
//   - gzip and ammp have repeatable irregular line tours that only
//     miss-address correlation (Markov, DBCP, TK) can learn;
//   - ammp's linked structure keeps its next pointer 88 bytes into a
//     128-byte node, so content-directed prefetching never finds it
//     in the first fetched line yet chases decoy pointers;
//   - mcf streams a huge pointer structure whose nodes carry decoy
//     pointers (CDP saturates the memory bus);
//   - twolf and equake chase clean in-line pointer structures (CDP's
//     winners);
//   - lucas is memory-bound with long row-crossing strides (its
//     SDRAM latency far exceeds the average, and aggressive
//     multi-request prefetching backfires);
//   - parser, twolf and vpr include same-set conflict traffic that a
//     victim cache absorbs;
//   - art and vpr cycle working sets slightly larger than the L2, so
//     their L2 miss streams repeat — the food of tag-correlating
//     prefetchers.
//
// The hot (stack/locals) pattern dominates every mix, as it does in
// real programs; per-benchmark L1 miss ratios land in the 3-25%
// range. Region sizes are tuned for the scaled simulation lengths of
// this reproduction (see EXPERIMENTS.md): "L2-resident tours" repeat
// within a run so correlating prefetchers can learn them, and
// "streaming" regions exceed the L2 so they stay memory-bound.
//
// Each phase supplies a weight per pattern (same order as Patterns);
// zero disables the pattern for that phase.

const (
	kb = 1 << 10
	mb = 1 << 20
)

var profiles = []Profile{
	// ---- SPEC CFP2000 ----
	{
		Name: "ammp", FP: true,
		LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.08, Mispredict: 0.03,
		CodeKB: 32, BlockLen: 7, DepMean: 5, FVProb: 0.15,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTour, Size: 96 * kb, TourLines: 800, Serial: true},
			{Kind: PatChase, Size: 6 * mb, NodeSize: 128, PtrOff: 88, Decoys: 2, Fields: []uint64{0, 88}, Chains: 2},
			{Kind: PatStride, Size: 2 * mb, Stride: 128},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{20, 2, 1.5, 0.5}},
			{Len: 50_000, Weights: []float64{20, 3, 1, 0}},
		},
	},
	{
		Name: "applu", FP: true,
		LoadFrac: 0.32, StoreFrac: 0.12, BranchFrac: 0.05, Mispredict: 0.015,
		CodeKB: 48, BlockLen: 9, DepMean: 7, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTile, Size: 8 * mb, Stride: 64, InnerSteps: 32, Jump: 8192},
			{Kind: PatStride, Size: 4 * mb, Stride: 128},
			{Kind: PatSeq, Size: 1 * mb},
		},
		Phases: []PhaseSpec{
			{Len: 70_000, Weights: []float64{14, 2.5, 2, 1.5}},
			{Len: 50_000, Weights: []float64{14, 1, 3.5, 1}},
		},
	},
	{
		Name: "apsi", FP: true,
		LoadFrac: 0.30, StoreFrac: 0.12, BranchFrac: 0.06, Mispredict: 0.02,
		CodeKB: 64, BlockLen: 8, DepMean: 7, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatStride, Size: 4 * mb, Stride: 320},
			{Kind: PatStride, Size: 2 * mb, Stride: 96},
			{Kind: PatTile, Size: 4 * mb, Stride: 64, InnerSteps: 24, Jump: 12288},
			{Kind: PatSeq, Size: 2 * mb},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{13, 2, 2, 1.5, 0}},
			{Len: 60_000, Weights: []float64{13, 3, 0, 0, 2}},
		},
	},
	{
		Name: "art", FP: true,
		LoadFrac: 0.34, StoreFrac: 0.08, BranchFrac: 0.07, Mispredict: 0.02,
		CodeKB: 16, BlockLen: 6, DepMean: 5, FVProb: 0.2,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatStride, Size: 1 * mb, Stride: 128},
			{Kind: PatStride, Size: 1536 * kb, Stride: 768},
			{Kind: PatTour, Size: 64 * kb, TourLines: 600, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 80_000, Weights: []float64{9, 2.5, 2.5, 1}},
			{Len: 40_000, Weights: []float64{9, 3.5, 1.5, 0.5}},
		},
	},
	{
		Name: "equake", FP: true,
		LoadFrac: 0.33, StoreFrac: 0.10, BranchFrac: 0.06, Mispredict: 0.02,
		CodeKB: 32, BlockLen: 8, DepMean: 6, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatChase, Size: 4 * mb, NodeSize: 64, PtrOff: 8, Chains: 4},
			{Kind: PatStride, Size: 2 * mb, Stride: 64},
			{Kind: PatSeq, Size: 1 * mb},
		},
		Phases: []PhaseSpec{
			{Len: 70_000, Weights: []float64{12, 2, 2, 1}},
			{Len: 50_000, Weights: []float64{12, 1.5, 2.5, 0.5}},
		},
	},
	{
		Name: "facerec", FP: true,
		LoadFrac: 0.31, StoreFrac: 0.09, BranchFrac: 0.05, Mispredict: 0.015,
		CodeKB: 32, BlockLen: 9, DepMean: 7, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatSeq, Size: 4 * mb},
			{Kind: PatStride, Size: 4 * mb, Stride: 256},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{13, 2.5, 2}},
			{Len: 50_000, Weights: []float64{13, 1, 3}},
		},
	},
	{
		Name: "fma3d", FP: true,
		LoadFrac: 0.31, StoreFrac: 0.12, BranchFrac: 0.06, Mispredict: 0.02,
		CodeKB: 96, BlockLen: 8, DepMean: 6, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTile, Size: 8 * mb, Stride: 128, InnerSteps: 16, Jump: 16384},
			{Kind: PatStride, Size: 2 * mb, Stride: 64},
			{Kind: PatTour, Size: 96 * kb, TourLines: 800, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{11, 2, 1.5, 1.5}},
			{Len: 50_000, Weights: []float64{11, 0.5, 2.5, 1.5}},
		},
	},
	{
		Name: "galgel", FP: true,
		LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.05, Mispredict: 0.015,
		CodeKB: 48, BlockLen: 9, DepMean: 8, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTile, Size: 4 * mb, Stride: 64, InnerSteps: 64, Jump: 4096},
			{Kind: PatStride, Size: 1536 * kb, Stride: 128},
		},
		Phases: []PhaseSpec{
			{Len: 70_000, Weights: []float64{13, 3, 0.5}},
			{Len: 40_000, Weights: []float64{14, 0.5, 2}},
		},
	},
	{
		Name: "lucas", FP: true,
		LoadFrac: 0.33, StoreFrac: 0.13, BranchFrac: 0.04, Mispredict: 0.01,
		CodeKB: 24, BlockLen: 10, DepMean: 8, FVProb: 0.05,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 4 * kb},
			{Kind: PatStride, Size: 16 * mb, Stride: 256},
			{Kind: PatTile, Size: 16 * mb, Stride: 512, InnerSteps: 8, Jump: 65536},
			{Kind: PatStride, Size: 16 * mb, Stride: 512},
		},
		Phases: []PhaseSpec{
			{Len: 80_000, Weights: []float64{8, 3, 2, 0}},
			{Len: 60_000, Weights: []float64{8, 0.5, 2, 3}},
		},
	},
	{
		Name: "mesa", FP: true,
		LoadFrac: 0.28, StoreFrac: 0.12, BranchFrac: 0.08, Mispredict: 0.03,
		CodeKB: 64, BlockLen: 7, DepMean: 5, FVProb: 0.2,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatStride, Size: 1 * mb, Stride: 64},
			{Kind: PatStride, Size: 512 * kb, Stride: 32},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{18, 2, 1}},
			{Len: 50_000, Weights: []float64{18, 2.5, 0.5}},
		},
	},
	{
		Name: "mgrid", FP: true,
		LoadFrac: 0.34, StoreFrac: 0.10, BranchFrac: 0.04, Mispredict: 0.012,
		CodeKB: 24, BlockLen: 10, DepMean: 8, FVProb: 0.08,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatStride, Size: 8 * mb, Stride: 64},
			{Kind: PatTile, Size: 8 * mb, Stride: 64, InnerSteps: 16, Jump: 32768},
			{Kind: PatSeq, Size: 2 * mb},
		},
		Phases: []PhaseSpec{
			{Len: 70_000, Weights: []float64{10, 2.5, 2, 1.5}},
			{Len: 60_000, Weights: []float64{10, 3.5, 0.5, 1.5}},
		},
	},
	{
		Name: "sixtrack", FP: true,
		LoadFrac: 0.28, StoreFrac: 0.10, BranchFrac: 0.07, Mispredict: 0.025,
		CodeKB: 128, BlockLen: 8, DepMean: 6, FVProb: 0.15,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTour, Size: 64 * kb, TourLines: 600, Serial: true},
			{Kind: PatStride, Size: 1 * mb, Stride: 64},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{17, 1.5, 1.5}},
			{Len: 50_000, Weights: []float64{18, 0.5, 2}},
		},
	},
	{
		Name: "swim", FP: true,
		LoadFrac: 0.35, StoreFrac: 0.12, BranchFrac: 0.03, Mispredict: 0.01,
		CodeKB: 16, BlockLen: 11, DepMean: 9, FVProb: 0.05,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 4 * kb},
			{Kind: PatStride, Size: 8 * mb, Stride: 64},
			{Kind: PatStride, Size: 8 * mb, Stride: 512},
			{Kind: PatSeq, Size: 4 * mb},
		},
		Phases: []PhaseSpec{
			{Len: 80_000, Weights: []float64{9, 2.5, 2, 1.5}},
			{Len: 60_000, Weights: []float64{9, 2.5, 0.5, 2.5}},
		},
	},
	{
		Name: "wupwise", FP: true,
		LoadFrac: 0.29, StoreFrac: 0.10, BranchFrac: 0.05, Mispredict: 0.015,
		CodeKB: 32, BlockLen: 9, DepMean: 7, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatStride, Size: 256 * kb, Stride: 64},
			{Kind: PatStride, Size: 128 * kb, Stride: 64},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{24, 1, 1}},
			{Len: 50_000, Weights: []float64{25, 0.5, 1.5}},
		},
	},
	// ---- SPEC CINT2000 ----
	{
		Name:     "bzip2",
		LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.14, Mispredict: 0.07,
		CodeKB: 16, BlockLen: 5, DepMean: 4, FVProb: 0.5,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatSeq, Size: 1 * mb, FVProb: 0.85},
			{Kind: PatTour, Size: 64 * kb, TourLines: 600, FVProb: 0.85, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{22, 2, 0.7}},
			{Len: 50_000, Weights: []float64{23, 2, 0.3}},
		},
	},
	{
		Name:     "crafty",
		LoadFrac: 0.28, StoreFrac: 0.09, BranchFrac: 0.16, Mispredict: 0.08,
		CodeKB: 128, BlockLen: 5, DepMean: 4, FVProb: 0.3,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTour, Size: 48 * kb, TourLines: 500, Serial: true},
			{Kind: PatRand, Size: 256 * kb},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{24, 1, 0.5}},
			{Len: 50_000, Weights: []float64{25, 0.5, 0.6}},
		},
	},
	{
		Name:     "eon",
		LoadFrac: 0.29, StoreFrac: 0.13, BranchFrac: 0.12, Mispredict: 0.05,
		CodeKB: 96, BlockLen: 6, DepMean: 4, FVProb: 0.25,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatChase, Size: 64 * kb, NodeSize: 64, PtrOff: 8, Chains: 2},
			{Kind: PatStride, Size: 128 * kb, Stride: 64},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{24, 1, 1}},
			{Len: 50_000, Weights: []float64{25, 0.5, 1.2}},
		},
	},
	{
		Name:     "gap",
		LoadFrac: 0.30, StoreFrac: 0.13, BranchFrac: 0.12, Mispredict: 0.05,
		CodeKB: 64, BlockLen: 6, DepMean: 5, FVProb: 0.45,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatSeq, Size: 4 * mb, FVProb: 0.8},
			{Kind: PatStride, Size: 4 * mb, Stride: 128},
		},
		Phases: []PhaseSpec{
			{Len: 70_000, Weights: []float64{12, 2.5, 2}},
			{Len: 50_000, Weights: []float64{12, 1, 3}},
		},
	},
	{
		Name:     "gcc",
		LoadFrac: 0.27, StoreFrac: 0.12, BranchFrac: 0.17, Mispredict: 0.09,
		CodeKB: 256, BlockLen: 5, DepMean: 4, FVProb: 0.3,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTour, Size: 128 * kb, TourLines: 1000, Serial: true},
			{Kind: PatRand, Size: 1 * mb},
			{Kind: PatSeq, Size: 512 * kb},
		},
		Phases: []PhaseSpec{
			{Len: 50_000, Weights: []float64{17, 2, 1, 1}},
			{Len: 50_000, Weights: []float64{18, 1.5, 0.5, 1.5}},
			{Len: 40_000, Weights: []float64{18, 0.5, 2, 0.5}},
		},
	},
	{
		Name:     "gzip",
		LoadFrac: 0.26, StoreFrac: 0.11, BranchFrac: 0.15, Mispredict: 0.06,
		CodeKB: 16, BlockLen: 5, DepMean: 4, FVProb: 0.5,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTour, Size: 64 * kb, TourLines: 800, FVProb: 0.85, Serial: true},
			{Kind: PatSeq, Size: 512 * kb, FVProb: 0.85},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{20, 3, 1}},
			{Len: 50_000, Weights: []float64{20, 3.5, 0.5}},
		},
	},
	{
		Name:     "mcf",
		LoadFrac: 0.33, StoreFrac: 0.09, BranchFrac: 0.14, Mispredict: 0.08,
		CodeKB: 16, BlockLen: 5, DepMean: 3, FVProb: 0.2,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 4 * kb},
			{Kind: PatChase, Size: 8 * mb, NodeSize: 64, PtrOff: 40, Decoys: 1, Chains: 4},
			{Kind: PatRand, Size: 4 * mb},
			{Kind: PatTour, Size: 96 * kb, TourLines: 800, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 70_000, Weights: []float64{9, 2, 0.7, 0.5}},
			{Len: 50_000, Weights: []float64{9, 2.5, 0.2, 0.5}},
		},
	},
	{
		Name:     "parser",
		LoadFrac: 0.28, StoreFrac: 0.11, BranchFrac: 0.16, Mispredict: 0.08,
		CodeKB: 64, BlockLen: 5, DepMean: 4, FVProb: 0.3,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatChase, Size: 512 * kb, NodeSize: 32, PtrOff: 0, Chains: 2},
			{Kind: PatTour, Size: 64 * kb, TourLines: 600, Serial: true},
			{Kind: PatConflict, Size: 128 * kb, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{17, 1.5, 1, 0.5}},
			{Len: 50_000, Weights: []float64{18, 1.5, 0.5, 0.3}},
		},
	},
	{
		Name:     "perlbmk",
		LoadFrac: 0.28, StoreFrac: 0.13, BranchFrac: 0.15, Mispredict: 0.06,
		CodeKB: 160, BlockLen: 5, DepMean: 4, FVProb: 0.3,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatTour, Size: 48 * kb, TourLines: 500, Serial: true},
			{Kind: PatRand, Size: 256 * kb},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{24, 1, 0.5}},
			{Len: 50_000, Weights: []float64{25, 0.4, 0.6}},
		},
	},
	{
		Name:     "twolf",
		LoadFrac: 0.30, StoreFrac: 0.10, BranchFrac: 0.14, Mispredict: 0.07,
		CodeKB: 48, BlockLen: 5, DepMean: 4, FVProb: 0.25,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatChase, Size: 2 * mb, NodeSize: 64, PtrOff: 8, Chains: 2},
			{Kind: PatConflict, Size: 96 * kb, Serial: true},
			{Kind: PatTour, Size: 64 * kb, TourLines: 600, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{14, 1.5, 1, 1}},
			{Len: 50_000, Weights: []float64{15, 1.5, 0.8, 0.5}},
		},
	},
	{
		Name:     "vortex",
		LoadFrac: 0.29, StoreFrac: 0.14, BranchFrac: 0.14, Mispredict: 0.05,
		CodeKB: 192, BlockLen: 6, DepMean: 4, FVProb: 0.3,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatStride, Size: 512 * kb, Stride: 64},
			{Kind: PatTour, Size: 96 * kb, TourLines: 800, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{22, 1.5, 0.7}},
			{Len: 50_000, Weights: []float64{23, 1.5, 0.3}},
		},
	},
	{
		Name:     "vpr",
		LoadFrac: 0.29, StoreFrac: 0.10, BranchFrac: 0.14, Mispredict: 0.09,
		CodeKB: 48, BlockLen: 5, DepMean: 4, FVProb: 0.25,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 * kb},
			{Kind: PatConflict, Size: 128 * kb, Serial: true},
			{Kind: PatStride, Size: 1536 * kb, Stride: 768},
			{Kind: PatTour, Size: 64 * kb, TourLines: 600, Serial: true},
		},
		Phases: []PhaseSpec{
			{Len: 60_000, Weights: []float64{14, 1, 2, 1}},
			{Len: 50_000, Weights: []float64{15, 0.5, 2.5, 0.5}},
		},
	},
}

// Names returns the 26 benchmark names in SPEC's customary order
// (floating point first, then integer), matching the paper's tables.
func Names() []string {
	out := make([]string, len(profiles))
	for i, p := range profiles {
		out[i] = p.Name
	}
	return out
}

// ByName looks up a profile.
func ByName(name string) (Profile, bool) {
	for _, p := range profiles {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// HighSensitivity returns the paper's six high-sensitivity
// benchmarks (Figure 6/7).
func HighSensitivity() []string {
	return []string{"apsi", "equake", "fma3d", "mgrid", "swim", "gap"}
}

// LowSensitivity returns the paper's six low-sensitivity benchmarks.
func LowSensitivity() []string {
	return []string{"wupwise", "bzip2", "crafty", "eon", "perlbmk", "vortex"}
}

// DBCPSelection returns the benchmark subset used in the original
// DBCP article (the paper's Table 4 row).
func DBCPSelection() []string {
	return []string{"ammp", "art", "equake", "mcf", "vpr"}
}

// GHBSelection returns the benchmark subset used in the GHB article
// (Table 4).
func GHBSelection() []string {
	return []string{"applu", "art", "equake", "facerec", "lucas", "mgrid", "swim", "wupwise", "bzip2", "gcc", "mcf", "parser"}
}

package workload

import (
	"testing"

	"microlib/internal/trace"
)

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("%d benchmarks, want 26", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate benchmark %s", n)
		}
		seen[n] = true
		if _, ok := ByName(n); !ok {
			t.Fatalf("ByName(%s) failed", n)
		}
	}
	for _, n := range append(HighSensitivity(), LowSensitivity()...) {
		if !seen[n] {
			t.Fatalf("sensitivity set names unknown benchmark %s", n)
		}
	}
	for _, n := range append(DBCPSelection(), GHBSelection()...) {
		if !seen[n] {
			t.Fatalf("article selection names unknown benchmark %s", n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := New("gcc", 42)
	b, _ := New("gcc", 42)
	var x, y trace.Inst
	for i := 0; i < 50_000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, _ := New("gcc", 1)
	b, _ := New("gcc", 2)
	var x, y trace.Inst
	diff := false
	for i := 0; i < 1000; i++ {
		a.Next(&x)
		b.Next(&y)
		if x != y {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestInstructionMix(t *testing.T) {
	for _, name := range []string{"gzip", "swim"} {
		prof, _ := ByName(name)
		gen, _ := New(name, 42)
		var inst trace.Inst
		counts := map[trace.Class]int{}
		const n = 100_000
		for i := 0; i < n; i++ {
			gen.Next(&inst)
			counts[inst.Class]++
		}
		loadFrac := float64(counts[trace.Load]) / n
		storeFrac := float64(counts[trace.Store]) / n
		if loadFrac < prof.LoadFrac*0.6 || loadFrac > prof.LoadFrac*1.4 {
			t.Errorf("%s load frac %.3f, profile %.3f", name, loadFrac, prof.LoadFrac)
		}
		if storeFrac < prof.StoreFrac*0.6 || storeFrac > prof.StoreFrac*1.4 {
			t.Errorf("%s store frac %.3f, profile %.3f", name, storeFrac, prof.StoreFrac)
		}
		if counts[trace.Branch] == 0 {
			t.Errorf("%s has no branches", name)
		}
	}
}

// TestOracleChaseConsistency: following the pointers stored in memory
// must visit the same nodes the chase pattern emits.
func TestOracleChaseConsistency(t *testing.T) {
	gen, _ := New("mcf", 42)
	o := gen.Oracle()

	// Find mcf's chase pattern and walk it both ways.
	var chase *pattern
	for _, p := range gen.patterns {
		if p.spec.Kind == PatChase {
			chase = p
			break
		}
	}
	if chase == nil {
		t.Fatal("mcf has no chase pattern")
	}
	// Pattern's first chain starts at order[cursor]; read the true
	// pointer from the oracle and check it names the next node of
	// that chain.
	cur := chase.nodeCur[0]
	node := uint64(chase.order[cur])
	nodeAddr := chase.base + node*chase.spec.NodeSize
	ptr := o.Word(nodeAddr + chase.spec.PtrOff)
	wantNext := chase.base + uint64(chase.order[cur+1])*chase.spec.NodeSize
	if ptr != wantNext {
		t.Fatalf("oracle pointer %#x, pattern next node %#x", ptr, wantNext)
	}
	// And the pointer must look like a pointer.
	if tgt, ok := o.IsPointer(nodeAddr + chase.spec.PtrOff); !ok || tgt != ptr {
		t.Fatalf("IsPointer failed on a true pointer field")
	}
}

func TestOracleHeapBounds(t *testing.T) {
	gen, _ := New("gzip", 42)
	o := gen.Oracle()
	lo, hi := o.HeapBounds()
	if lo == 0 || hi <= lo {
		t.Fatalf("heap bounds %#x..%#x", lo, hi)
	}
	// Data words (high bit set) must never be pointers.
	if _, ok := o.IsPointer(lo + 8); ok {
		w := o.Word(lo + 8)
		if w < lo || w >= hi {
			t.Fatalf("IsPointer accepted out-of-heap value %#x", w)
		}
	}
}

func TestOracleFrequentValues(t *testing.T) {
	gen, _ := New("gzip", 42)
	o := gen.Oracle()
	fv := o.FrequentValues()
	set := map[uint64]bool{}
	for _, v := range fv {
		set[v] = true
	}
	if len(set) != 7 {
		t.Fatalf("frequent values not distinct: %v", fv)
	}
	// gzip's FV-dense tour region: most words should be frequent.
	// Sample the region of the tour pattern.
	var tour *pattern
	for _, p := range gen.patterns {
		if p.spec.Kind == PatTour {
			tour = p
		}
	}
	freq := 0
	const samples = 2000
	for i := 0; i < samples; i++ {
		w := o.Word(tour.base + uint64(i)*8)
		if set[w] {
			freq++
		}
	}
	if float64(freq)/samples < 0.6 {
		t.Fatalf("FV density %.2f in a 0.85-FV region", float64(freq)/samples)
	}
}

func TestLineCompressible(t *testing.T) {
	gen, _ := New("gzip", 42)
	o := gen.Oracle()
	var tour *pattern
	for _, p := range gen.patterns {
		if p.spec.Kind == PatTour {
			tour = p
		}
	}
	comp := 0
	for i := 0; i < 200; i++ {
		if o.LineCompressible(tour.base+uint64(i)*32, 32) {
			comp++
		}
	}
	if comp == 0 {
		t.Fatal("no compressible lines in an FV-dense region")
	}
}

// TestTourRepeats: the tour pattern must emit an identical address
// sequence on every pass (what correlation prefetchers learn).
func TestTourRepeats(t *testing.T) {
	gen, _ := New("gzip", 42)
	var tour *pattern
	for _, p := range gen.patterns {
		if p.spec.Kind == PatTour {
			tour = p
		}
	}
	n := len(tour.tour)
	first := make([]uint64, n)
	for i := 0; i < n; i++ {
		first[i], _ = tour.next()
	}
	for i := 0; i < n; i++ {
		a, _ := tour.next()
		if a != first[i] {
			t.Fatalf("tour diverged at %d", i)
		}
	}
}

// TestChaseIrregular: consecutive chase deltas must not be constant
// (otherwise stride prefetchers could predict pointer chains).
func TestChaseIrregular(t *testing.T) {
	gen, _ := New("equake", 42)
	var chase *pattern
	for _, p := range gen.patterns {
		if p.spec.Kind == PatChase {
			chase = p
		}
	}
	var prev uint64
	deltas := map[int64]int{}
	for i := 0; i < 200; i++ {
		a, _ := chase.next()
		if i > 0 {
			deltas[int64(a)-int64(prev)]++
		}
		prev = a
	}
	for d, c := range deltas {
		if c > 120 {
			t.Fatalf("chase delta %d dominates (%d of 199)", d, c)
		}
	}
}

func TestPhaseWeightValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched weights accepted")
		}
	}()
	NewGenerator(Profile{
		Name: "bad", LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1,
		CodeKB: 16, BlockLen: 5, DepMean: 4,
		Patterns: []PatternSpec{{Kind: PatHot, Size: 4096}},
		Phases:   []PhaseSpec{{Len: 1000, Weights: []float64{1, 2}}},
	}, 1)
}

func TestDataPCStability(t *testing.T) {
	gen, _ := New("swim", 42)
	var inst trace.Inst
	pcsPerPattern := map[uint64]map[uint64]bool{} // region base -> dataPCs
	for i := 0; i < 200_000; i++ {
		gen.Next(&inst)
		if inst.DataPC == 0 || inst.Addr == 0 {
			continue
		}
		base := inst.Addr >> 21 // coarse region key
		if pcsPerPattern[base] == nil {
			pcsPerPattern[base] = map[uint64]bool{}
		}
		pcsPerPattern[base][inst.DataPC] = true
	}
	for base, pcs := range pcsPerPattern {
		if len(pcs) > dataPCsPerPattern+1 {
			t.Fatalf("region %#x touched by %d data PCs, want <= %d", base, len(pcs), dataPCsPerPattern+1)
		}
	}
}

package workload

import (
	"testing"
	"testing/quick"

	"microlib/internal/trace"
)

// TestPropertyAllBenchmarksWellFormed: every benchmark, under random
// seeds, emits well-formed instructions (memory ops have addresses,
// others do not; dependences point backward; PCs are in the text
// segment).
func TestPropertyAllBenchmarksWellFormed(t *testing.T) {
	names := Names()
	err := quick.Check(func(seedRaw uint32, pick uint8) bool {
		name := names[int(pick)%len(names)]
		gen, err := New(name, uint64(seedRaw)+1)
		if err != nil {
			return false
		}
		var inst trace.Inst
		for i := 0; i < 3000; i++ {
			gen.Next(&inst)
			if inst.Class.IsMem() && inst.Addr == 0 {
				return false
			}
			if !inst.Class.IsMem() && inst.Addr != 0 {
				return false
			}
			if inst.PC < codeBase || inst.PC >= heapBase {
				return false
			}
			if inst.Mispredict && inst.Class != trace.Branch {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOracleDeterministic: the oracle is a pure function of
// (benchmark, seed, address).
func TestPropertyOracleDeterministic(t *testing.T) {
	g1, _ := New("mcf", 7)
	g2, _ := New("mcf", 7)
	err := quick.Check(func(a uint32) bool {
		addr := uint64(a) + heapBase
		return g1.Oracle().Word(addr) == g2.Oracle().Word(addr)
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyChasePointersAlwaysInRegion: every true pointer the
// oracle produces targets a node inside its own region.
func TestPropertyChasePointersAlwaysInRegion(t *testing.T) {
	gen, _ := New("equake", 42)
	o := gen.Oracle()
	var chase *pattern
	for _, p := range gen.patterns {
		if p.spec.Kind == PatChase {
			chase = p
		}
	}
	nodes := chase.spec.Size / chase.spec.NodeSize
	err := quick.Check(func(nRaw uint32) bool {
		node := uint64(nRaw) % nodes
		addr := chase.base + node*chase.spec.NodeSize + chase.spec.PtrOff
		ptr := o.Word(addr)
		return ptr >= chase.base && ptr < chase.base+chase.spec.Size &&
			(ptr-chase.base)%chase.spec.NodeSize == 0
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPhaseCycling: the generator cycles through its phases and back.
func TestPhaseCycling(t *testing.T) {
	gen, _ := New("gcc", 42) // three phases
	var inst trace.Inst
	var total uint64
	for _, ph := range gen.prof.Phases {
		total += ph.Len
	}
	bbsFirst := map[uint32]bool{}
	for i := uint64(0); i < gen.prof.Phases[0].Len; i++ {
		gen.Next(&inst)
		bbsFirst[inst.BB] = true
	}
	// Second phase uses different code blocks.
	seenNew := false
	for i := uint64(0); i < gen.prof.Phases[1].Len; i++ {
		gen.Next(&inst)
		if !bbsFirst[inst.BB] {
			seenNew = true
		}
	}
	if !seenNew {
		t.Fatal("phase 2 reuses only phase 1 blocks")
	}
	// After a full cycle the first phase's blocks return.
	for i := gen.prof.Phases[0].Len + gen.prof.Phases[1].Len; i < total; i++ {
		gen.Next(&inst)
	}
	gen.Next(&inst)
	if !bbsFirst[inst.BB] {
		t.Fatal("phase cycle did not return to the first phase's code")
	}
}

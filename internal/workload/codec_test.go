package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"microlib/internal/trace"
)

func validProfile() Profile {
	return Profile{
		Name: "custom-stream", FP: false,
		LoadFrac: 0.3, StoreFrac: 0.1, BranchFrac: 0.1, Mispredict: 0.05,
		CodeKB: 16, BlockLen: 6, DepMean: 5, FVProb: 0.1,
		Patterns: []PatternSpec{
			{Kind: PatHot, Size: 8 << 10},
			{Kind: PatStride, Size: 1 << 20, Stride: 64},
			{Kind: PatChase, Size: 1 << 20, NodeSize: 64, PtrOff: 8, Fields: []uint64{0, 8}},
		},
		Phases: []PhaseSpec{
			{Len: 10_000, Weights: []float64{10, 2, 1}},
			{Len: 8_000, Weights: []float64{10, 0, 3}},
		},
	}
}

// TestProfileJSONRoundTrip: decode(encode(p)) is p, and the decoded
// profile drives a bit-identical generator.
func TestProfileJSONRoundTrip(t *testing.T) {
	p := validProfile()
	data, err := p.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := q.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatalf("canonical form not stable:\n%s\n%s", data, data2)
	}

	g1 := NewGenerator(p, 42)
	g2 := NewGenerator(q, 42)
	var i1, i2 trace.Inst
	for i := 0; i < 50_000; i++ {
		g1.Next(&i1)
		g2.Next(&i2)
		if i1 != i2 {
			t.Fatalf("stream diverged at %d: %+v vs %+v", i, i1, i2)
		}
	}
}

func TestPatternKindNames(t *testing.T) {
	for _, name := range PatternKindNames() {
		k, err := ParsePatternKind(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.String() != name {
			t.Fatalf("kind %q round-trips to %q", name, k.String())
		}
	}
	if _, err := ParsePatternKind("zigzag"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	// A misspelled profile field must fail loudly, not silently
	// simulate a different workload.
	if _, err := ParseProfile([]byte(`{"name":"x","load_fraction":0.9,"patterns":[{"kind":"hot"}],"phases":[{"len":10,"weights":[1]}]}`)); err == nil ||
		!strings.Contains(err.Error(), "load_fraction") {
		t.Fatalf("unknown profile field accepted: %v", err)
	}
	var k PatternKind
	if err := json.Unmarshal([]byte(`3`), &k); err == nil {
		t.Fatal("numeric kind accepted")
	}
	if err := json.Unmarshal([]byte(`"tile"`), &k); err != nil || k != PatTile {
		t.Fatalf("got %v %v", k, err)
	}
}

// TestBuiltinsEncode: every built-in profile survives the codec and
// passes its own validation.
func TestBuiltinsEncode(t *testing.T) {
	for _, name := range Names() {
		p, _ := ByName(name)
		data, err := p.CanonicalJSON()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		q, err := ParseProfile(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if q.Name != name {
			t.Fatalf("%s decoded as %s", name, q.Name)
		}
	}
}

func TestProfileValidation(t *testing.T) {
	mutate := func(f func(*Profile)) Profile {
		p := validProfile()
		f(&p)
		return p
	}
	cases := []struct {
		label string
		prof  Profile
		want  string
	}{
		{"no name", mutate(func(p *Profile) { p.Name = "" }), "needs a name"},
		{"mix", mutate(func(p *Profile) { p.LoadFrac = 0.8; p.StoreFrac = 0.4 }), "exceeds 1"},
		{"mispredict", mutate(func(p *Profile) { p.Mispredict = 1.5 }), "mispredict"},
		{"no patterns", mutate(func(p *Profile) { p.Patterns = nil }), "at least one pattern"},
		{"no phases", mutate(func(p *Profile) { p.Phases = nil }), "at least one phase"},
		{"zero phase", mutate(func(p *Profile) { p.Phases[0].Len = 0 }), "zero length"},
		{"weights len", mutate(func(p *Profile) { p.Phases[1].Weights = []float64{1} }), "1 weights for 3 patterns"},
		{"neg weight", mutate(func(p *Profile) { p.Phases[0].Weights[1] = -2 }), "negative"},
		{"zero weights", mutate(func(p *Profile) { p.Phases[0].Weights = []float64{0, 0, 0} }), "all-zero"},
		{"stride", mutate(func(p *Profile) { p.Patterns[1].Stride = 0 }), "stride > 0"},
		{"chase ptr", mutate(func(p *Profile) { p.Patterns[2].PtrOff = 60 }), "does not fit"},
		{"chase field", mutate(func(p *Profile) { p.Patterns[2].Fields = []uint64{120} }), "outside"},
		{"bad kind", mutate(func(p *Profile) { p.Patterns[0].Kind = PatternKind(99) }), "invalid pattern kind"},
	}
	for _, c := range cases {
		err := c.prof.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: want %q in error, got %v", c.label, c.want, err)
		}
	}
	p := validProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("valid profile rejected: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	p := validProfile()
	if err := r.Add(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(p); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate accepted: %v", err)
	}
	shadow := validProfile()
	shadow.Name = "mcf"
	if err := r.Add(shadow); err == nil || !strings.Contains(err.Error(), "built-in") {
		t.Fatalf("built-in shadowing accepted: %v", err)
	}
	if err := r.Reserve("mcf"); err == nil {
		t.Fatal("reserve shadowing a built-in accepted")
	}
	if err := r.Reserve("recorded"); err != nil {
		t.Fatal(err)
	}
	if err := r.Reserve(p.Name); err == nil {
		t.Fatal("reserve over a profile name accepted")
	}
	bad := validProfile()
	bad.Name, bad.Phases = "broken", nil
	if err := r.Add(bad); err == nil {
		t.Fatal("invalid profile accepted")
	}

	names := r.Names()
	if len(names) != len(Names())+2 {
		t.Fatalf("names: %d", len(names))
	}
	if names[len(names)-2] != p.Name || names[len(names)-1] != "recorded" {
		t.Fatalf("custom names not in registration order: %v", names[len(names)-2:])
	}
}

// TestPhaseLoopItersReset pins the phase-transition fix: the first
// loop of a new phase must run its full iteration budget even when
// the previous phase ended mid-loop-residency. The generator's loop
// cursor state right after a phase boundary must match a fresh
// generator fast-forwarded to that phase.
func TestPhaseLoopItersReset(t *testing.T) {
	p := validProfile()
	g := NewGenerator(p, 7)
	var inst trace.Inst
	// Run to just past the first phase boundary.
	for i := uint64(0); i < p.Phases[0].Len; i++ {
		g.Next(&inst)
	}
	if g.phaseIdx != 1 {
		t.Fatalf("expected phase 1, in phase %d", g.phaseIdx)
	}
	if g.loopIters != 0 || g.curLoop != 0 || g.blockIdx != 0 || g.instIdx != 0 {
		t.Fatalf("loop cursors not reset at phase entry: iters=%d loop=%d block=%d inst=%d",
			g.loopIters, g.curLoop, g.blockIdx, g.instIdx)
	}
}

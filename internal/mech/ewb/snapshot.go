package ewb

import (
	"encoding/gob"
	"fmt"

	"microlib/internal/sim"
)

// State is the EWB's full mutable state: the pending sweep is a
// calendar event and travels with the engine snapshot, the dirty bits
// it scans live in the cache.
type State struct {
	Eager uint64
	Scans uint64
}

// SnapState implements core.Snapshotter.
func (e *EWB) SnapState() any {
	return State{Eager: e.Eager, Scans: e.scans}
}

// RestoreState implements core.Snapshotter.
func (e *EWB) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("ewb: snapshot is %T, not ewb.State", v)
	}
	e.Eager, e.scans = st.Eager, st.Scans
	return nil
}

func init() {
	gob.Register(State{})
	sim.RegisterFunc("ewb.ewbFireScan", ewbFireScan)
}

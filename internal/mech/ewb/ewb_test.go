package ewb

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/mech/mechtest"
)

func TestEagerWritebackCleansDirtyLRU(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	e := New(s.Eng, s.Cache, 64, 4)

	// Dirty two lines in different sets.
	for _, a := range []uint64{0x10000, 0x20040} {
		ok := s.Cache.Access(&cache.Access{Addr: a, Write: true})
		if !ok.Accepted() {
			t.Fatal("write refused")
		}
		s.Settle(60)
	}
	s.Settle(1000) // several scan intervals
	if e.Eager == 0 {
		t.Fatal("no eager writebacks")
	}
	if len(s.Back.WBacks) == 0 {
		t.Fatal("eager writebacks never reached the backend")
	}
	// The lines must still be resident (clean), not evicted.
	if !s.Cache.Contains(0x10000) {
		t.Fatal("eagerly written line was dropped")
	}
}

func TestEvictionAfterEagerWritebackIsClean(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	New(s.Eng, s.Cache, 64, 8)

	s.Cache.Access(&cache.Access{Addr: 0x10000, Write: true})
	s.Settle(600)
	wbBefore := len(s.Back.WBacks)
	if wbBefore == 0 {
		t.Fatal("eager writeback did not happen")
	}
	// Evict the (now clean) line: no second write-back.
	s.Access(0x10000+4096, 1)
	s.Access(0x10000+8192, 1)
	s.Settle(200)
	if got := len(s.Back.WBacks); got != wbBefore {
		t.Fatalf("clean eviction still wrote back (%d -> %d)", wbBefore, got)
	}
}

func TestRegistryIncludesEWB(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	e := New(s.Eng, s.Cache, 256, 4)
	if e.Name() != "EWB" {
		t.Fatal("name")
	}
	if len(e.Hardware()) != 1 {
		t.Fatal("hardware")
	}
}

// Package ewb implements Eager Writeback (Lee, Tyson & Farrens,
// MICRO 2000) at the L2: dirty lines that have reached the LRU
// position of their set are written back early, during idle bus
// cycles, so that later evictions are clean and do not serialize a
// write burst in front of demand misses.
//
// The paper surveyed this mechanism but could not evaluate it — "it
// is designed for and tested on memory-bandwidth bound programs which
// were not available" in their benchmark setup. This repository's
// synthetic workloads include bandwidth-bound programs (swim, lucas,
// mcf), so the mechanism is provided as a library extension; it is
// not part of the paper's Table 2 comparison set and the experiment
// drivers exclude it from the paper artifacts.
package ewb

import (
	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/sim"
)

// EWB is the eager-writeback engine.
type EWB struct {
	eng      *sim.Engine
	l2       *cache.Cache
	interval uint64
	batch    int

	Eager uint64 // lines written back early
	scans uint64
}

// New builds an eager-writeback engine scanning every interval
// cycles, cleaning at most batch lines per scan.
func New(eng *sim.Engine, l2 *cache.Cache, interval uint64, batch int) *EWB {
	e := &EWB{eng: eng, l2: l2, interval: interval, batch: batch}
	e.arm()
	return e
}

func init() {
	core.Register(core.Description{
		Name: "EWB", Level: "L2", Year: 2000,
		Summary: "Eager Writeback: retire dirty LRU lines during idle bus cycles (library extension)",
		Params:  []string{"interval", "batch"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		e := New(env.Eng, env.L2,
			uint64(p.Get("interval", 256)),
			p.Get("batch", 4))
		return e, nil
	})
}

// Name implements core.Mechanism.
func (e *EWB) Name() string { return "EWB" }

// arm schedules the next idle-cycle sweep. The timer is a packed
// static-Func event (not a closure) so the pending tick serializes
// with the rest of the calendar in warm-state checkpoints.
func (e *EWB) arm() {
	e.eng.AfterFunc(e.interval, ewbFireScan, e, nil, 0, 0)
}

// ewbFireScan is the sweep trampoline: o1 is the EWB instance.
func ewbFireScan(_ uint64, o1, _ any, _, _ uint64) {
	e := o1.(*EWB)
	e.scan()
	e.arm()
}

// scan retires a batch of dirty LRU lines. WriteBackLine routes
// through the normal backend path, so bus occupancy and controller
// queueing still apply — the win is in the timing, not in skipping
// the work.
func (e *EWB) scan() {
	e.scans++
	for _, la := range e.l2.DrainDirtyLRU(e.batch) {
		e.Eager++
		e.l2.WriteBackLine(la)
	}
}

// Hardware implements core.CostModeler: eager writeback adds no
// storage beyond a small scan pointer; cost is effectively zero,
// which is its appeal.
func (e *EWB) Hardware() []core.HWTable {
	return []core.HWTable{{
		Label: "ewb-scanptr", Bytes: 8, Assoc: 1, Ports: 1,
		Reads: e.scans, Writes: e.Eager,
	}}
}

package sp

import (
	"encoding/gob"
	"fmt"
)

// EntryState is one stride-table entry in serializable form.
type EntryState struct {
	PCTag    uint32
	LastAddr uint64
	Stride   int64
	State    uint8
}

// State is the SP's full mutable state.
type State struct {
	Table  []EntryState
	Reads  uint64
	Writes uint64
	Issued uint64
}

// SnapState implements core.Snapshotter.
func (s *SP) SnapState() any {
	st := State{Reads: s.reads, Writes: s.writes, Issued: s.issued}
	st.Table = make([]EntryState, len(s.table))
	for i, e := range s.table {
		st.Table[i] = EntryState{PCTag: e.pcTag, LastAddr: e.lastAddr, Stride: e.stride, State: e.state}
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (s *SP) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("sp: snapshot is %T, not sp.State", v)
	}
	if len(st.Table) != len(s.table) {
		return fmt.Errorf("sp: snapshot has %d entries, table holds %d", len(st.Table), len(s.table))
	}
	for i, e := range st.Table {
		s.table[i] = entryT{pcTag: e.PCTag, lastAddr: e.LastAddr, stride: e.Stride, state: e.State}
	}
	s.reads, s.writes, s.issued = st.Reads, st.Writes, st.Issued
	return nil
}

func init() { gob.Register(State{}) }

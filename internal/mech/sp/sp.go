// Package sp implements Stride Prefetching (Chen & Baer; Fu, Patel &
// Janssens, 1992) at the L2: a 512-entry PC-indexed table tracks the
// last address and stride of each load instruction with a two-bit
// state machine; loads in the steady state prefetch address+stride.
// The request queue is a single entry (Table 3), which throttles the
// mechanism's bandwidth demand — the property that keeps SP nearly
// unaffected by the move to a detailed SDRAM (the paper measures
// -2.8% versus GHB's -18.7%).
package sp

import (
	"microlib/internal/cache"
	"microlib/internal/core"
)

const (
	stInit uint8 = iota
	stTransient
	stSteady
)

type entryT struct {
	pcTag    uint32
	lastAddr uint64
	stride   int64
	state    uint8
}

// SP is the stride prefetcher.
type SP struct {
	l2     *cache.Cache
	table  []entryT
	mask   uint32
	degree int

	reads, writes uint64
	issued        uint64
}

// New builds a stride prefetcher with nEntries table entries
// attached to l2.
func New(l2 *cache.Cache, nEntries int) *SP {
	n := 1
	for n < nEntries {
		n <<= 1
	}
	return &SP{l2: l2, table: make([]entryT, n), mask: uint32(n - 1), degree: 1}
}

func init() {
	core.Register(core.Description{
		Name: "SP", Level: "L2", Year: 1992,
		Summary: "Stride Prefetching: PC-indexed stride detection with steady-state prefetch",
		Params:  []string{"entries", "queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		s := New(env.L2, p.Get("entries", 512))
		env.L2.SetPrefetchQueueCap(p.Get("queue", 1))
		env.L2.Attach(s)
		return s, nil
	})
}

// Name implements core.Mechanism.
func (s *SP) Name() string { return "SP" }

// OnAccess implements cache.AccessObserver: stride detection over the
// L2's demand reference stream (which is the L1 miss stream, carrying
// the missing load's PC).
func (s *SP) OnAccess(ev cache.AccessEvent) {
	if ev.Write || ev.PC == 0 {
		return
	}
	idx := (uint32(ev.PC>>2) ^ uint32(ev.PC>>13)) & s.mask
	e := &s.table[idx]
	s.reads++
	tag := uint32(ev.PC >> 2)
	if e.pcTag != tag {
		*e = entryT{pcTag: tag, lastAddr: ev.Addr, state: stInit}
		s.writes++
		return
	}
	delta := int64(ev.Addr) - int64(e.lastAddr)
	switch {
	case delta == 0:
		// Same address again: no information.
	case delta == e.stride:
		if e.state < stSteady {
			e.state++
		}
	default:
		e.stride = delta
		if e.state == stSteady {
			e.state = stTransient
		} else {
			e.state = stInit
		}
	}
	e.lastAddr = ev.Addr
	s.writes++
	if e.state == stSteady && e.stride != 0 {
		for d := 1; d <= s.degree; d++ {
			target := uint64(int64(ev.Addr) + e.stride*int64(d))
			s.issued++
			s.l2.Prefetch(target)
		}
	}
}

// Hardware implements core.CostModeler: 512 entries of roughly
// 16 bytes.
func (s *SP) Hardware() []core.HWTable {
	return []core.HWTable{{
		Label: "sp-table", Bytes: len(s.table) * 16, Assoc: 1, Ports: 1,
		Reads: s.reads, Writes: s.writes,
	}}
}

// Issued reports attempted prefetches (tests).
func (s *SP) Issued() uint64 { return s.issued }

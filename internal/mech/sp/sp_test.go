package sp

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/mech/mechtest"
)

func drive(s *mechtest.System, pc uint64, addrs ...uint64) {
	for _, a := range addrs {
		s.Access(a, pc)
		s.Settle(50)
	}
}

func TestDetectsSteadyStride(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 512)
	s.Cache.SetPrefetchQueueCap(1)
	s.Cache.Attach(m)

	const pc = 0x400100
	// Stride 256: init -> transient -> steady; the steady access
	// prefetches addr+256.
	drive(s, pc, 0x10000, 0x10100, 0x10200, 0x10300)
	s.Settle(200)
	if m.Issued() == 0 {
		t.Fatal("steady stride never prefetched")
	}
	if !s.Cache.Contains(0x10400) {
		t.Fatal("predicted line not in cache")
	}
}

func TestStrideChangeResets(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 512)
	s.Cache.SetPrefetchQueueCap(1)
	s.Cache.Attach(m)

	const pc = 0x400104
	drive(s, pc, 0x20000, 0x20100, 0x20200) // steady at 256
	issuedAtSteady := m.Issued()
	drive(s, pc, 0x29000) // stride breaks
	// The very next access must not prefetch with the stale stride.
	before := m.Issued()
	drive(s, pc, 0x2a000)
	if m.Issued() > before+1 {
		t.Fatalf("prefetching continued through a stride change (%d -> %d)", before, m.Issued())
	}
	_ = issuedAtSteady
}

func TestDifferentPCsIndependent(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 512)
	s.Cache.SetPrefetchQueueCap(1)
	s.Cache.Attach(m)

	// Interleave two PCs (mapping to distinct table entries) with
	// different strides; both reach steady.
	pcs := [2]uint64{0x400200, 0x404244}
	base := [2]uint64{0x30000, 0x50000}
	stride := [2]uint64{128, 512}
	for i := 0; i < 5; i++ {
		for k := 0; k < 2; k++ {
			s.Access(base[k]+uint64(i)*stride[k], pcs[k])
			s.Settle(50)
		}
	}
	s.Settle(300)
	if !s.Cache.Contains(base[0]+5*stride[0]) && !s.Cache.Contains(base[1]+5*stride[1]) {
		t.Fatal("neither interleaved stream was predicted")
	}
}

func TestIgnoresWritesAndZeroPC(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 512)
	s.Cache.Attach(m)
	s.Cache.Access(&cache.Access{Addr: 0x1000, Write: true, PC: 0x400000})
	s.Cache.Access(&cache.Access{Addr: 0x2000, PC: 0})
	s.Settle(100)
	if m.reads != 0 {
		t.Fatal("SP observed writes or PC-less accesses")
	}
}

func TestHardwareTable(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 512)
	hw := m.Hardware()
	if len(hw) != 1 || hw[0].Bytes != 512*16 {
		t.Fatalf("hardware: %+v", hw)
	}
}

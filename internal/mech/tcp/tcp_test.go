package tcp

import (
	"testing"

	"microlib/internal/mech/mechtest"
)

// The test L2 (4KB, 2-way, 64B lines) has 32 sets; tags advance every
// 32*64 = 2KB.
const setSpan = 4 << 10 / 2 // bytes covering all sets once per way... (32 sets * 64B)

func TestLearnsPerSetTagPattern(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 1024, 256, 8)
	s.Cache.Attach(m)

	// Same set (set 0), cycling three tags; the tiny 2-way set cannot
	// hold all three, so every access misses with a repeating tag
	// sequence — exactly TCP's food.
	const span = 32 * 64 // tag increment for the 32-set cache
	addrs := []uint64{0x100000, 0x100000 + span, 0x100000 + 2*span}
	for pass := 0; pass < 6; pass++ {
		for _, a := range addrs {
			s.Access(a, 0x400000)
			s.Settle(40)
		}
	}
	if m.Issued() == 0 {
		t.Fatal("TCP never predicted a repeating per-set tag pattern")
	}
}

func TestNoPredictionOnRandomTags(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 1024, 256, 8)
	s.Cache.Attach(m)
	// Non-repeating tag stream in one set.
	const span = 32 * 64
	for i := uint64(0); i < 12; i++ {
		s.Access(0x200000+i*i*span, 0x400000)
		s.Settle(40)
	}
	if m.Issued() > 2 {
		t.Fatalf("TCP predicted from a non-repeating stream (%d)", m.Issued())
	}
}

func TestComposeDecompose(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 1024, 256, 8)
	for _, la := range []uint64{0x0, 0x40, 0x1000, 0xabcd00 &^ 63} {
		set, tag := m.decompose(la)
		if got := m.compose(set, tag); got != la {
			t.Fatalf("compose(decompose(%#x)) = %#x", la, got)
		}
	}
}

func TestHardware(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 1024, 256, 8)
	hw := m.Hardware()
	if len(hw) != 2 {
		t.Fatalf("hardware: %+v", hw)
	}
	if hw[1].Bytes != 8<<10 {
		t.Fatalf("PHT size: %+v", hw[1])
	}
}

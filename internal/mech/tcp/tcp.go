// Package tcp implements Tag Correlating Prefetching (Hu, Martonosi
// & Kaxiras, 2003) at the L2: a Tag History Table (THT, 1024 sets,
// direct-mapped, holding the last two miss tags per cache set) feeds
// a Pattern History Table (PHT, 8 KB, 256 sets, 8-way) that maps a
// (tag, tag) pair to the most likely next miss tag in that set; the
// predicted line is prefetched.
//
// The paper uses TCP as its "second-guessing" case study (its
// Figure 10): the article never stated how predicted addresses reach
// memory, and a 1-entry versus 128-entry prefetch request queue
// changes the results dramatically. Params{"queue": N} reproduces
// both choices.
package tcp

import (
	"microlib/internal/cache"
	"microlib/internal/core"
)

type thtEntry struct {
	tags [2]uint64
}

type phtEntry struct {
	key  uint64
	next uint64
	conf int8
}

// TCP is the tag-correlating prefetcher.
type TCP struct {
	l2 *cache.Cache

	tht     []thtEntry
	thtMask uint64

	pht     []phtEntry
	phtSets int
	phtWays int

	lineShift uint
	setBits   uint
	setMask   uint64

	reads, writes uint64
	issued        uint64
}

// New builds a TCP attached to l2.
func New(l2 *cache.Cache, thtSets, phtSets, phtWays int) *TCP {
	cfg := l2.Config()
	ls := uint(0)
	for 1<<ls != cfg.LineSize {
		ls++
	}
	sb := uint(0)
	for 1<<sb != cfg.NumSets() {
		sb++
	}
	return &TCP{
		l2:        l2,
		tht:       make([]thtEntry, thtSets),
		thtMask:   uint64(thtSets - 1),
		pht:       make([]phtEntry, phtSets*phtWays),
		phtSets:   phtSets,
		phtWays:   phtWays,
		lineShift: ls,
		setBits:   sb,
		setMask:   uint64(cfg.NumSets() - 1),
	}
}

func init() {
	core.Register(core.Description{
		Name: "TCP", Level: "L2", Year: 2003,
		Summary: "Tag Correlating Prefetching: per-set miss-tag pattern prediction",
		Params:  []string{"thtSets", "phtSets", "phtWays", "queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		t := New(env.L2, p.Get("thtSets", 1024), p.Get("phtSets", 256), p.Get("phtWays", 8))
		q := p.Get("queue", 128)
		env.L2.SetPrefetchQueueCap(q)
		if q < 128 {
			env.L2.ForcePrefetchQueueCap(q)
		}
		env.L2.Attach(t)
		return t, nil
	})
}

// Name implements core.Mechanism.
func (t *TCP) Name() string { return "TCP" }

// set and tag of a line address under the L2 geometry.
func (t *TCP) decompose(lineAddr uint64) (set, tag uint64) {
	idx := lineAddr >> t.lineShift
	return idx & t.setMask, idx >> t.setBits
}

func (t *TCP) compose(set, tag uint64) uint64 {
	return ((tag << t.setBits) | set) << t.lineShift
}

// OnMiss implements cache.MissObserver: learn the (t2,t1)->t0
// transition for this set, then predict the next tag from the fresh
// (t1,t0) pair.
func (t *TCP) OnMiss(lineAddr, pc uint64, now uint64) {
	set, tag := t.decompose(lineAddr)
	h := &t.tht[set&t.thtMask]
	t.reads++

	prev1, prev0 := h.tags[1], h.tags[0]
	if prev0 != 0 {
		t.learn(set, prev1, prev0, tag)
	}
	h.tags[1], h.tags[0] = prev0, tag
	t.writes++

	if next, ok := t.predict(set, prev0, tag); ok && next != tag {
		t.issued++
		t.l2.Prefetch(t.compose(set, next))
	}
}

func (t *TCP) phtKey(set, t1, t0 uint64) uint64 {
	return set ^ (t1 << 7) ^ (t0 << 29) ^ 0x9e3779b97f4a7c15
}

func (t *TCP) phtSet(key uint64) []phtEntry {
	s := int(key>>5) % t.phtSets
	return t.pht[s*t.phtWays : (s+1)*t.phtWays]
}

func (t *TCP) learn(set, t1, t0, next uint64) {
	key := t.phtKey(set, t1, t0)
	entries := t.phtSet(key)
	t.writes++
	var victim *phtEntry
	for i := range entries {
		e := &entries[i]
		if e.key == key {
			if e.next == next {
				if e.conf < 3 {
					e.conf++
				}
			} else {
				e.next = next
				e.conf = 1
			}
			return
		}
		if victim == nil || e.conf < victim.conf {
			victim = e
		}
	}
	*victim = phtEntry{key: key, next: next, conf: 1}
}

func (t *TCP) predict(set, t1, t0 uint64) (uint64, bool) {
	key := t.phtKey(set, t1, t0)
	t.reads++
	for i := range t.phtSet(key) {
		e := &t.phtSet(key)[i]
		if e.key == key && e.conf >= 2 {
			return e.next, true
		}
	}
	return 0, false
}

// Hardware implements core.CostModeler: THT (1024 sets × 2 tags) and
// the 8 KB PHT.
func (t *TCP) Hardware() []core.HWTable {
	return []core.HWTable{
		{Label: "tcp-tht", Bytes: len(t.tht) * 16, Assoc: 1, Ports: 1,
			Reads: t.reads, Writes: t.writes},
		{Label: "tcp-pht", Bytes: 8 << 10, Assoc: t.phtWays, Ports: 1,
			Reads: t.reads, Writes: t.writes},
	}
}

// Issued reports attempted prefetches (tests).
func (t *TCP) Issued() uint64 { return t.issued }

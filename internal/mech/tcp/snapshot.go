package tcp

import (
	"encoding/gob"
	"fmt"
)

// THTEntryState is one tag-history entry in serializable form.
type THTEntryState struct {
	Tags [2]uint64
}

// PHTEntryState is one pattern-history entry in serializable form.
type PHTEntryState struct {
	Key  uint64
	Next uint64
	Conf int8
}

// State is the TCP's full mutable state.
type State struct {
	THT    []THTEntryState
	PHT    []PHTEntryState
	Reads  uint64
	Writes uint64
	Issued uint64
}

// SnapState implements core.Snapshotter.
func (t *TCP) SnapState() any {
	st := State{Reads: t.reads, Writes: t.writes, Issued: t.issued}
	st.THT = make([]THTEntryState, len(t.tht))
	for i, e := range t.tht {
		st.THT[i] = THTEntryState{Tags: e.tags}
	}
	st.PHT = make([]PHTEntryState, len(t.pht))
	for i, e := range t.pht {
		st.PHT[i] = PHTEntryState{Key: e.key, Next: e.next, Conf: e.conf}
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (t *TCP) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("tcp: snapshot is %T, not tcp.State", v)
	}
	if len(st.THT) != len(t.tht) || len(st.PHT) != len(t.pht) {
		return fmt.Errorf("tcp: snapshot geometry %d/%d, tables hold %d/%d",
			len(st.THT), len(st.PHT), len(t.tht), len(t.pht))
	}
	for i, e := range st.THT {
		t.tht[i] = thtEntry{tags: e.Tags}
	}
	for i, e := range st.PHT {
		t.pht[i] = phtEntry{key: e.Key, next: e.Next, conf: e.Conf}
	}
	t.reads, t.writes, t.issued = st.Reads, st.Writes, st.Issued
	return nil
}

func init() { gob.Register(State{}) }

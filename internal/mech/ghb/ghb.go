// Package ghb implements the Global History Buffer prefetcher
// (Nesbit & Smith, 2004) in its PC/DC (delta-correlation) form at
// the L2: an Index Table maps a load PC to the head of that PC's
// linked chain of past miss addresses inside a 256-entry circular
// buffer. On each miss the chain is walked to extract the recent
// delta stream; a constant stride or a recurring delta pair yields
// up to four prefetches (degree 4).
//
// The walk re-reads the buffer repeatedly on every miss and each miss
// can issue several requests — the activity profile behind the
// paper's observation that GHB is power-hungry despite its tiny
// tables, and bandwidth-hungry enough to lose 18.7% of its speedup
// when the detailed SDRAM replaces the constant-latency memory.
package ghb

import (
	"microlib/internal/cache"
	"microlib/internal/core"
)

type bufEntry struct {
	addr uint64
	prev int32 // index of this PC's previous miss, -1 if none
	seq  uint64
}

// GHB is the global-history-buffer prefetcher.
type GHB struct {
	l2 *cache.Cache

	it     []int32 // index table: PC hash -> buffer index
	itTags []uint64
	itMask uint32

	buf    []bufEntry
	bufPos int
	seq    uint64

	degree  int
	maxWalk int

	reads, writes uint64
	issued        uint64
	walks         uint64
}

// New builds a GHB with itEntries index-table entries and bufEntries
// history entries.
func New(l2 *cache.Cache, itEntries, bufEntries, degree int) *GHB {
	n := 1
	for n < itEntries {
		n <<= 1
	}
	g := &GHB{
		l2:      l2,
		it:      make([]int32, n),
		itTags:  make([]uint64, n),
		itMask:  uint32(n - 1),
		buf:     make([]bufEntry, bufEntries),
		degree:  degree,
		maxWalk: 8,
	}
	for i := range g.it {
		g.it[i] = -1
	}
	for i := range g.buf {
		g.buf[i].prev = -1
	}
	return g
}

func init() {
	core.Register(core.Description{
		Name: "GHB", Level: "L2", Year: 2004,
		Summary: "Global History Buffer: PC-localized delta correlation, prefetch degree 4",
		Params:  []string{"itEntries", "ghbEntries", "degree", "queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		g := New(env.L2,
			p.Get("itEntries", 256),
			p.Get("ghbEntries", 256),
			p.Get("degree", 4))
		env.L2.SetPrefetchQueueCap(p.Get("queue", 4))
		env.L2.Attach(g)
		return g, nil
	})
}

// Name implements core.Mechanism.
func (g *GHB) Name() string { return "GHB" }

// OnMiss implements cache.MissObserver.
func (g *GHB) OnMiss(lineAddr, pc uint64, now uint64) {
	if pc == 0 {
		return
	}
	idx := (uint32(pc>>2) ^ uint32(pc>>11)) & g.itMask

	// Link the new miss into this PC's chain.
	g.seq++
	pos := g.bufPos
	prev := int32(-1)
	if g.itTags[idx] == pc && g.it[idx] >= 0 {
		prev = g.it[idx]
	}
	g.buf[pos] = bufEntry{addr: lineAddr, prev: prev, seq: g.seq}
	g.it[idx] = int32(pos)
	g.itTags[idx] = pc
	g.bufPos = (g.bufPos + 1) % len(g.buf)
	g.writes += 2 // IT update + GHB push

	// Walk the chain to collect the recent addresses, newest first.
	var hist [9]uint64
	n := 0
	cur := int32(pos)
	lastSeq := g.seq + 1
	for cur >= 0 && n < g.maxWalk+1 {
		e := &g.buf[cur]
		// Stop if the entry was overwritten since it was linked (the
		// circular buffer reuses slots).
		if e.seq >= lastSeq {
			break
		}
		lastSeq = e.seq
		hist[n] = e.addr
		n++
		cur = e.prev
		g.reads++
	}
	g.walks++
	if n < 3 {
		return
	}

	d1 := int64(hist[0]) - int64(hist[1])
	d2 := int64(hist[1]) - int64(hist[2])
	if d1 == 0 {
		return
	}

	if d1 == d2 {
		// Constant stride: prefetch degree lines ahead.
		for k := 1; k <= g.degree; k++ {
			g.issued++
			g.l2.Prefetch(uint64(int64(lineAddr) + d1*int64(k)))
		}
		return
	}

	// Delta correlation: find the most recent earlier occurrence of
	// the (d2, d1) pair and replay the deltas that followed it.
	for i := 1; i+2 < n; i++ {
		e1 := int64(hist[i]) - int64(hist[i+1])
		e2 := int64(hist[i+1]) - int64(hist[i+2])
		g.reads++
		if e1 == d1 && e2 == d2 {
			addr := int64(lineAddr)
			issued := 0
			// Replay deltas walking forward from the match toward the
			// present (hist is newest-first, so forward = decreasing
			// index).
			for j := i - 1; j >= 0 && issued < g.degree; j-- {
				delta := int64(hist[j]) - int64(hist[j+1])
				if delta == 0 {
					continue
				}
				addr += delta
				g.issued++
				issued++
				g.l2.Prefetch(uint64(addr))
			}
			return
		}
	}
}

// Hardware implements core.CostModeler: both tables are tiny — the
// power comes from activity, not capacity.
func (g *GHB) Hardware() []core.HWTable {
	return []core.HWTable{
		{Label: "ghb-it", Bytes: len(g.it) * 12, Assoc: 1, Ports: 1,
			Reads: g.walks, Writes: g.writes / 2},
		{Label: "ghb-buffer", Bytes: len(g.buf) * 12, Assoc: 0, Ports: 1,
			Reads: g.reads, Writes: g.writes / 2},
	}
}

// Issued reports attempted prefetches (tests).
func (g *GHB) Issued() uint64 { return g.issued }

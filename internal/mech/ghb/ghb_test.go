package ghb

import (
	"testing"

	"microlib/internal/mech/mechtest"
)

func TestConstantStrideDegree(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 256, 256, 4)
	s.Cache.SetPrefetchQueueCap(8)
	s.Cache.Attach(m)

	const pc = 0x400100
	// Three misses at stride 256 establish (d1 == d2): degree-4
	// prefetch of +256..+1024.
	for i := uint64(0); i < 3; i++ {
		s.Access(0x10000+i*256, pc)
		s.Settle(60)
	}
	s.Settle(400)
	if m.Issued() < 4 {
		t.Fatalf("degree-4 prefetch issued only %d", m.Issued())
	}
	if !s.Cache.Contains(0x10000 + 3*256) {
		t.Fatal("next stride line not prefetched")
	}
}

func TestDeltaPairCorrelation(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 256, 256, 4)
	s.Cache.SetPrefetchQueueCap(8)
	s.Cache.Attach(m)

	const pc = 0x400200
	// Repeating delta pattern: +256, +512, +256, +512 ... after the
	// pair (256,512) recurs, GHB replays the following deltas.
	addr := uint64(0x40000)
	deltas := []uint64{256, 512, 256, 512, 256, 512}
	s.Access(addr, pc)
	s.Settle(60)
	for _, d := range deltas {
		addr += d
		s.Access(addr, pc)
		s.Settle(60)
	}
	if m.Issued() == 0 {
		t.Fatal("delta correlation never fired on a repeating pattern")
	}
}

func TestPerPCLocalization(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 256, 256, 4)
	s.Cache.SetPrefetchQueueCap(8)
	s.Cache.Attach(m)

	// Two PCs with interleaved streams; each PC's chain sees only its
	// own constant stride.
	a, b := uint64(0x10000), uint64(0x80000)
	for i := uint64(0); i < 4; i++ {
		s.Access(a+i*128, 0x400300)
		s.Settle(60)
		s.Access(b+i*4096, 0x400310)
		s.Settle(60)
	}
	s.Settle(400)
	if !s.Cache.Contains(a+4*128) && !s.Cache.Contains(b+4*4096) {
		t.Fatal("interleaved per-PC streams not predicted")
	}
}

func TestIgnoresZeroPC(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 256, 256, 4)
	s.Cache.Attach(m)
	for i := uint64(0); i < 4; i++ {
		s.Access(0x20000+i*256, 0)
		s.Settle(40)
	}
	if m.Issued() != 0 {
		t.Fatal("GHB acted on PC-less misses")
	}
}

func TestHardwareActivity(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := New(s.Cache, 256, 256, 4)
	s.Cache.Attach(m)
	for i := uint64(0); i < 5; i++ {
		s.Access(0x30000+i*256, 0x400400)
		s.Settle(60)
	}
	hw := m.Hardware()
	if len(hw) != 2 {
		t.Fatalf("hardware: %+v", hw)
	}
	// The buffer walk makes reads grow faster than one per miss —
	// the power story of Figure 5.
	if hw[1].Reads <= 5 {
		t.Fatalf("buffer walk activity too low: %d reads", hw[1].Reads)
	}
}

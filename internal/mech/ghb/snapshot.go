package ghb

import (
	"encoding/gob"
	"fmt"
)

// BufEntryState is one history-buffer entry in serializable form.
type BufEntryState struct {
	Addr uint64
	Prev int32
	Seq  uint64
}

// State is the GHB's full mutable state.
type State struct {
	IT     []int32
	ITTags []uint64
	Buf    []BufEntryState
	BufPos int
	Seq    uint64
	Reads  uint64
	Writes uint64
	Issued uint64
	Walks  uint64
}

// SnapState implements core.Snapshotter.
func (g *GHB) SnapState() any {
	st := State{
		BufPos: g.bufPos, Seq: g.seq,
		Reads: g.reads, Writes: g.writes, Issued: g.issued, Walks: g.walks,
	}
	st.IT = append([]int32(nil), g.it...)
	st.ITTags = append([]uint64(nil), g.itTags...)
	st.Buf = make([]BufEntryState, len(g.buf))
	for i, e := range g.buf {
		st.Buf[i] = BufEntryState{Addr: e.addr, Prev: e.prev, Seq: e.seq}
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (g *GHB) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("ghb: snapshot is %T, not ghb.State", v)
	}
	if len(st.IT) != len(g.it) || len(st.Buf) != len(g.buf) {
		return fmt.Errorf("ghb: snapshot geometry %d/%d, table holds %d/%d",
			len(st.IT), len(st.Buf), len(g.it), len(g.buf))
	}
	copy(g.it, st.IT)
	copy(g.itTags, st.ITTags)
	for i, e := range st.Buf {
		g.buf[i] = bufEntry{addr: e.Addr, prev: e.Prev, seq: e.Seq}
	}
	g.bufPos, g.seq = st.BufPos, st.Seq
	g.reads, g.writes, g.issued, g.walks = st.Reads, st.Writes, st.Issued, st.Walks
	return nil
}

func init() { gob.Register(State{}) }

// Package vc implements Jouppi's Victim Cache (1990): a small
// fully-associative buffer beside the direct-mapped L1 that catches
// its evictions, converting conflict misses into one-cycle-penalty
// swaps.
package vc

import (
	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/sim"
)

type entry struct {
	lineAddr uint64
	dirty    bool
	lastUse  uint64
}

// VC is the victim cache proper. It is also embedded by the TKVC
// mechanism, which filters insertions.
type VC struct {
	eng     *sim.Engine
	l1      *cache.Cache
	entries []entry
	tick    uint64

	Inserts uint64
	Hits    uint64
	Probes  uint64
	wbacks  uint64
}

// NewVC builds a victim cache of sizeBytes beside l1.
func NewVC(eng *sim.Engine, l1 *cache.Cache, sizeBytes int) *VC {
	n := sizeBytes / l1.Config().LineSize
	if n < 1 {
		n = 1
	}
	return &VC{eng: eng, l1: l1, entries: make([]entry, n)}
}

func init() {
	core.Register(core.Description{
		Name: "VC", Level: "L1", Year: 1990,
		Summary: "Victim Cache: small fully associative buffer for evicted L1 lines",
		Params:  []string{"bytes"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		v := NewVC(env.Eng, env.L1D, p.Get("bytes", 512))
		env.L1D.Attach(v)
		return v, nil
	})
}

// Name implements core.Mechanism.
func (v *VC) Name() string { return "VC" }

// Insert places an evicted line in the victim cache, retiring the
// LRU victim-of-the-victim (writing it back if dirty).
func (v *VC) Insert(lineAddr uint64, dirty bool) {
	v.Inserts++
	victim := 0
	for i := range v.entries {
		if v.entries[i].lineAddr == 0 {
			victim = i
			break
		}
		if v.entries[i].lastUse < v.entries[victim].lastUse {
			victim = i
		}
	}
	if old := &v.entries[victim]; old.lineAddr != 0 && old.dirty {
		v.wbacks++
		v.l1.WriteBackLine(old.lineAddr)
	}
	v.tick++
	v.entries[victim] = entry{lineAddr: lineAddr, dirty: dirty, lastUse: v.tick}
}

// OnEvict implements cache.EvictObserver.
func (v *VC) OnEvict(lineAddr uint64, dirty bool, now uint64) {
	v.Insert(lineAddr, dirty)
}

// ProbeAux implements cache.AuxProber: on an L1 miss, a victim-cache
// hit swaps the line back into the L1.
func (v *VC) ProbeAux(lineAddr uint64, now uint64) bool {
	v.Probes++
	for i := range v.entries {
		if v.entries[i].lineAddr == lineAddr {
			dirty := v.entries[i].dirty
			v.entries[i] = entry{}
			v.Hits++
			if dirty {
				// The line re-enters L1 clean from the array's point
				// of view; restore its dirtiness right after install.
				v.eng.AfterFunc(0, callMarkDirty, v.l1, nil, lineAddr, 0)
			}
			return true
		}
	}
	return false
}

// callMarkDirty is the packed trampoline for the post-swap dirtiness
// restore: o1 is the L1, a0 the line address. The static shape keeps
// the dirty-hit path allocation-free (a closure here would allocate
// its capture environment on every dirty victim hit).
func callMarkDirty(_ uint64, o1, _ any, lineAddr, _ uint64) {
	o1.(*cache.Cache).MarkDirty(lineAddr)
}

// Hardware implements core.CostModeler.
func (v *VC) Hardware() []core.HWTable {
	bytes := len(v.entries) * v.l1.Config().LineSize
	return []core.HWTable{{
		Label: "victim-cache", Bytes: bytes, Assoc: 0, Ports: 1,
		Reads: v.Probes, Writes: v.Inserts,
	}}
}

package vc

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/mech/mechtest"
)

func TestConflictRescue(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config()) // 1KB direct-mapped
	v := NewVC(s.Eng, s.Cache, 512)
	s.Cache.Attach(v)

	a, b := uint64(0x10000), uint64(0x10000+1024) // same set
	s.Access(a, 1)
	s.Access(b, 1) // evicts a into the VC
	if v.Inserts == 0 {
		t.Fatal("eviction did not reach the VC")
	}
	fetchesBefore := len(s.Back.Fetches)
	if !s.Access(a, 1) { // VC hit: swap back, no downstream fetch
		t.Fatal("victim-cache rescue not reported as hit")
	}
	if v.Hits != 1 {
		t.Fatalf("VC hits %d", v.Hits)
	}
	if len(s.Back.Fetches) != fetchesBefore {
		t.Fatal("VC hit still fetched downstream")
	}
}

func TestDirtyVictimRestored(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	v := NewVC(s.Eng, s.Cache, 512)
	s.Cache.Attach(v)

	a, b := uint64(0x20000), uint64(0x20000+1024)
	// Dirty a, evict into VC, rescue it, then evict again: the dirty
	// bit must have survived the round trip (the line is written back
	// eventually, not lost).
	done := false
	s.Cache.Access(&cache.Access{Addr: a, Write: true, Done: cache.DoneFunc(func(uint64, bool) { done = true })})
	s.Settle(200)
	if !done {
		t.Fatal("store never completed")
	}
	s.Access(b, 1) // a -> VC (dirty)
	s.Access(a, 1) // rescue; MarkDirty restores dirtiness
	s.Settle(10)
	s.Access(b, 1) // a -> VC again
	s.Access(a, 1) // rescue again
	s.Settle(10)
	// Fill the VC with other victims so a's copy is eventually
	// retired; its write-back must appear downstream.
	for i := uint64(2); i < 40; i++ {
		s.Access(0x20000+i*1024, 1)
	}
	s.Settle(500)
	if len(s.Back.WBacks) == 0 {
		t.Fatal("dirty victim silently dropped through the VC path")
	}
}

func TestVCCapacity(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	v := NewVC(s.Eng, s.Cache, 512) // 16 lines of 32B
	s.Cache.Attach(v)
	// Push 32 victims through one set, then walk back in reverse:
	// recent victims are rescued from the VC, old ones are gone.
	for i := uint64(0); i < 33; i++ {
		s.Access(0x30000+i*1024, 1)
	}
	recent := 0
	for i := uint64(31); i >= 24; i-- {
		if s.Access(0x30000+i*1024, 1) {
			recent++
		}
	}
	if recent < 4 {
		t.Fatalf("recent victims not retained: %d of 8", recent)
	}
	// The very first victims must be long gone (capacity 16).
	if v.Hits > uint64(recent)+16 {
		t.Fatalf("VC retained more than its capacity allows: %d hits", v.Hits)
	}
}

func TestHardware(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	v := NewVC(s.Eng, s.Cache, 512)
	hw := v.Hardware()
	if len(hw) != 1 || hw[0].Bytes != 512 {
		t.Fatalf("hardware: %+v", hw)
	}
}

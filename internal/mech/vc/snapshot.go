package vc

import (
	"encoding/gob"
	"fmt"

	"microlib/internal/sim"
)

// EntryState is one victim-cache entry in serializable form.
type EntryState struct {
	LineAddr uint64
	Dirty    bool
	LastUse  uint64
}

// State is the VC's full mutable state.
type State struct {
	Entries []EntryState
	Tick    uint64
	Inserts uint64
	Hits    uint64
	Probes  uint64
	WBacks  uint64
}

// SnapState implements core.Snapshotter.
func (v *VC) SnapState() any {
	st := State{
		Tick: v.tick, Inserts: v.Inserts, Hits: v.Hits, Probes: v.Probes, WBacks: v.wbacks,
	}
	st.Entries = make([]EntryState, len(v.entries))
	for i, e := range v.entries {
		st.Entries[i] = EntryState{LineAddr: e.lineAddr, Dirty: e.dirty, LastUse: e.lastUse}
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (v *VC) RestoreState(x any) error {
	st, ok := x.(State)
	if !ok {
		return fmt.Errorf("vc: snapshot is %T, not vc.State", x)
	}
	if len(st.Entries) != len(v.entries) {
		return fmt.Errorf("vc: snapshot has %d entries, cache holds %d", len(st.Entries), len(v.entries))
	}
	for i, e := range st.Entries {
		v.entries[i] = entry{lineAddr: e.LineAddr, dirty: e.Dirty, lastUse: e.LastUse}
	}
	v.tick = st.Tick
	v.Inserts, v.Hits, v.Probes, v.wbacks = st.Inserts, st.Hits, st.Probes, st.WBacks
	return nil
}

func init() {
	gob.Register(State{})
	sim.RegisterFunc("vc.callMarkDirty", callMarkDirty)
}

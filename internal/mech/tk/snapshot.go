package tk

import (
	"encoding/gob"
	"fmt"
	"sort"

	"microlib/internal/mech/vc"
	"microlib/internal/sim"
)

// TouchEntry is one last-access record (lineAddr -> cycle), emitted in
// sorted line order so snapshots are deterministic.
type TouchEntry struct {
	Line uint64
	Last uint64
}

// CorrEntryState is one address-correlation record (victim ->
// replacement with confidence), emitted in sorted victim order.
type CorrEntryState struct {
	Victim uint64
	Repl   uint64
	Conf   int8
}

// State is the TK prefetcher's full mutable state. The pending decay
// sweep is a calendar event and travels with the engine snapshot.
type State struct {
	LastTouch     []TouchEntry
	Corr          []CorrEntryState
	PendingVictim uint64
	HaveVictim    bool
	Reads         uint64
	Writes        uint64
	Issued        uint64
	Scans         uint64
}

func touchSlice(m map[uint64]uint64) []TouchEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]TouchEntry, 0, len(m))
	for la, last := range m {
		out = append(out, TouchEntry{Line: la, Last: last})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Line < out[j].Line })
	return out
}

// SnapState implements core.Snapshotter.
func (t *TK) SnapState() any {
	st := State{
		LastTouch:     touchSlice(t.lastTouch),
		PendingVictim: t.pendingVictim, HaveVictim: t.haveVictim,
		Reads: t.reads, Writes: t.writes, Issued: t.issued, Scans: t.scans,
	}
	if len(t.corr) > 0 {
		st.Corr = make([]CorrEntryState, 0, len(t.corr))
		for v, e := range t.corr {
			st.Corr = append(st.Corr, CorrEntryState{Victim: v, Repl: e.repl, Conf: e.conf})
		}
		sort.Slice(st.Corr, func(i, j int) bool { return st.Corr[i].Victim < st.Corr[j].Victim })
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (t *TK) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("tk: snapshot is %T, not tk.State", v)
	}
	clear(t.lastTouch)
	for _, e := range st.LastTouch {
		t.lastTouch[e.Line] = e.Last
	}
	clear(t.corr)
	for _, e := range st.Corr {
		t.corr[e.Victim] = corrInfo{repl: e.Repl, conf: e.Conf}
	}
	t.pendingVictim, t.haveVictim = st.PendingVictim, st.HaveVictim
	t.reads, t.writes, t.issued, t.scans = st.Reads, st.Writes, st.Issued, st.Scans
	return nil
}

// TKVCState is the filtered victim cache's full mutable state.
type TKVCState struct {
	VC        vc.State
	LastTouch []TouchEntry
	Filtered  uint64
}

// SnapState implements core.Snapshotter (overriding the embedded VC's).
func (t *TKVC) SnapState() any {
	return TKVCState{
		VC:        t.VC.SnapState().(vc.State),
		LastTouch: touchSlice(t.lastTouch),
		Filtered:  t.Filtered,
	}
}

// RestoreState implements core.Snapshotter (overriding the embedded
// VC's).
func (t *TKVC) RestoreState(v any) error {
	st, ok := v.(TKVCState)
	if !ok {
		return fmt.Errorf("tkvc: snapshot is %T, not tk.TKVCState", v)
	}
	if err := t.VC.RestoreState(st.VC); err != nil {
		return err
	}
	clear(t.lastTouch)
	for _, e := range st.LastTouch {
		t.lastTouch[e.Line] = e.Last
	}
	t.Filtered = st.Filtered
	return nil
}

func init() {
	gob.Register(State{})
	gob.Register(TKVCState{})
	sim.RegisterFunc("tk.tkFireScan", tkFireScan)
}

// Package tk implements the Timekeeping mechanisms of Hu, Kaxiras &
// Martonosi (2002) at the L1.
//
// TK (the timekeeping prefetcher) tracks per-line access times with
// coarse decay counters (refresh interval 512 cycles, death threshold
// 1023 cycles, Table 3): a line untouched for longer than the
// threshold is predicted dead, and an 8 KB address-correlation table
// — which learns, at every fill, "line V is usually replaced by line
// M" — supplies the replacement to prefetch in its place.
//
// TKVC applies the same timekeeping reuse prediction as a filter in
// front of a victim cache: only victims whose dead time was short
// (conflict evictions, likely to be re-referenced) are worth keeping.
package tk

import (
	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/mech/vc"
	"microlib/internal/sim"
)

// corrInfo is one address-correlation entry with a confidence
// counter: only pairs observed repeatedly are trusted for prefetch,
// which keeps streaming noise out of the L1.
type corrInfo struct {
	repl uint64
	conf int8
}

// TK is the timekeeping prefetcher.
type TK struct {
	eng *sim.Engine
	l1  *cache.Cache

	refresh   uint64
	threshold uint64

	lastTouch map[uint64]uint64   // resident line -> last access cycle
	corr      map[uint64]corrInfo // victim line -> observed replacement
	corrCap   int

	pendingVictim uint64
	haveVictim    bool

	reads, writes uint64
	issued        uint64
	scans         uint64
}

// New builds a TK prefetcher on l1.
func New(eng *sim.Engine, l1 *cache.Cache, refresh, threshold uint64, corrBytes int) *TK {
	t := &TK{
		eng:       eng,
		l1:        l1,
		refresh:   refresh,
		threshold: threshold,
		lastTouch: make(map[uint64]uint64),
		corr:      make(map[uint64]corrInfo),
		corrCap:   corrBytes / 16,
	}
	t.armScan()
	return t
}

func init() {
	core.Register(core.Description{
		Name: "TK", Level: "L1", Year: 2002,
		Summary: "Timekeeping prefetcher: decay-based dead-block detection with replacement correlation",
		Params:  []string{"refresh", "threshold", "corrBytes", "queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		t := New(env.Eng, env.L1D,
			uint64(p.Get("refresh", 512)),
			uint64(p.Get("threshold", 1023)),
			p.Get("corrBytes", 8<<10))
		env.L1D.SetPrefetchQueueCap(p.Get("queue", 128))
		env.L1D.Attach(t)
		return t, nil
	})
	core.Register(core.Description{
		Name: "TKVC", Level: "L1", Year: 2002,
		Summary: "Timekeeping Victim Cache: reuse-predicted filtering of victim-cache insertions",
		Params:  []string{"bytes", "threshold"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		t := NewTKVC(env.Eng, env.L1D,
			p.Get("bytes", 512),
			uint64(p.Get("threshold", 1023)))
		env.L1D.Attach(t)
		return t, nil
	})
}

// Name implements core.Mechanism.
func (t *TK) Name() string { return "TK" }

// OnAccess implements cache.AccessObserver.
func (t *TK) OnAccess(ev cache.AccessEvent) {
	if ev.Hit {
		t.lastTouch[ev.LineAddr] = ev.Now
	}
}

// OnEvict implements cache.EvictObserver: remember the victim so the
// following fill can record the (victim -> replacement) pair.
func (t *TK) OnEvict(lineAddr uint64, dirty bool, now uint64) {
	delete(t.lastTouch, lineAddr)
	t.pendingVictim = lineAddr
	t.haveVictim = true
}

// OnFill implements cache.FillObserver.
func (t *TK) OnFill(lineAddr uint64, prefetch bool, now uint64) {
	t.lastTouch[lineAddr] = now
	if t.haveVictim && !prefetch {
		t.haveVictim = false
		t.learn(t.pendingVictim, lineAddr)
	}
}

func (t *TK) learn(victim, repl uint64) {
	t.writes++
	if e, ok := t.corr[victim]; ok {
		if e.repl == repl {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.conf--
			if e.conf <= 0 {
				e = corrInfo{repl: repl, conf: 1}
			}
		}
		t.corr[victim] = e
		return
	}
	if len(t.corr) >= t.corrCap {
		for k := range t.corr {
			delete(t.corr, k)
			break
		}
	}
	t.corr[victim] = corrInfo{repl: repl, conf: 1}
}

// armScan schedules the periodic decay sweep. The timer is a packed
// static-Func event (not a closure) so the pending tick serializes
// with the rest of the calendar in warm-state checkpoints.
func (t *TK) armScan() {
	t.eng.AfterFunc(t.refresh, tkFireScan, t, nil, 0, 0)
}

// tkFireScan is the decay-sweep trampoline: o1 is the TK instance.
func tkFireScan(now uint64, o1, _ any, _, _ uint64) {
	t := o1.(*TK)
	t.scan(now)
	t.armScan()
}

// scan finds lines whose decay counters have saturated (dead) and
// prefetches their predicted replacements — the "timely" part of
// timekeeping: the prefetch lands before the demand miss would have.
func (t *TK) scan(now uint64) {
	t.scans++
	for la, last := range t.lastTouch {
		if now-last <= t.threshold {
			continue
		}
		delete(t.lastTouch, la) // consider it dead once
		t.reads++
		if e, ok := t.corr[la]; ok && e.conf >= 3 {
			t.issued++
			t.l1.Prefetch(e.repl)
		}
	}
}

// Hardware implements core.CostModeler: decay counters per L1 line
// plus the 8 KB correlation table.
func (t *TK) Hardware() []core.HWTable {
	lines := t.l1.Config().NumLines()
	return []core.HWTable{
		{Label: "tk-decay", Bytes: lines, Assoc: 1, Ports: 1,
			Reads: t.scans * uint64(lines) / 8, Writes: t.writes},
		{Label: "tk-corr", Bytes: t.corrCap * 16, Assoc: 8, Ports: 1,
			Reads: t.reads, Writes: t.writes},
	}
}

// Issued reports attempted prefetches (tests).
func (t *TK) Issued() uint64 { return t.issued }

// TKVC is the timekeeping-filtered victim cache.
type TKVC struct {
	*vc.VC
	l1        *cache.Cache
	threshold uint64
	lastTouch map[uint64]uint64

	Filtered uint64 // victims predicted dead and not inserted
}

// NewTKVC builds the filtered victim cache.
func NewTKVC(eng *sim.Engine, l1 *cache.Cache, bytes int, threshold uint64) *TKVC {
	return &TKVC{
		VC:        vc.NewVC(eng, l1, bytes),
		l1:        l1,
		threshold: threshold,
		lastTouch: make(map[uint64]uint64),
	}
}

// Name implements core.Mechanism.
func (t *TKVC) Name() string { return "TKVC" }

// OnAccess implements cache.AccessObserver.
func (t *TKVC) OnAccess(ev cache.AccessEvent) {
	t.lastTouch[ev.LineAddr] = ev.Now
}

// OnEvict implements cache.EvictObserver: only victims that died
// young (short dead time — conflict evictions) enter the victim
// cache; lines that sat idle past the threshold are truly dead and
// would only pollute it.
func (t *TKVC) OnEvict(lineAddr uint64, dirty bool, now uint64) {
	last, ok := t.lastTouch[lineAddr]
	delete(t.lastTouch, lineAddr)
	if ok && now-last > t.threshold {
		t.Filtered++
		if dirty {
			t.l1.WriteBackLine(lineAddr)
		}
		return
	}
	t.VC.Insert(lineAddr, dirty)
}

// Hardware implements core.CostModeler.
func (t *TKVC) Hardware() []core.HWTable {
	hw := t.VC.Hardware()
	lines := t.l1.Config().NumLines()
	hw = append(hw, core.HWTable{
		Label: "tkvc-decay", Bytes: lines, Assoc: 1, Ports: 1,
		Reads: t.VC.Inserts + t.Filtered, Writes: t.VC.Inserts + t.Filtered,
	})
	return hw
}

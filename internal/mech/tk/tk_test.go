package tk

import (
	"testing"

	"microlib/internal/mech/mechtest"
)

func TestReplacementCorrelationPrefetch(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	m := New(s.Eng, s.Cache, 64, 127, 8<<10) // fast refresh/threshold for the test
	s.Cache.Attach(m)

	a, b := uint64(0x10000), uint64(0x10000+1024) // same set
	// Teach the pattern "a is replaced by b" several times so the
	// correlation becomes confident.
	for i := 0; i < 4; i++ {
		s.Access(a, 1)
		s.Settle(20)
		s.Access(b, 1)
		s.Settle(20)
	}
	// Load a, let it decay past the threshold: TK should prefetch b.
	s.Access(a, 1)
	s.Settle(2000)
	if m.Issued() == 0 {
		t.Fatal("timekeeping never prefetched the correlated replacement")
	}
	// The pair ping-pongs (each predicts the other as replacement),
	// so one of the two ends up resident via prefetch.
	if !s.Cache.Contains(a) && !s.Cache.Contains(b) {
		t.Fatal("neither correlated line resident after prefetching")
	}
}

func TestLowConfidenceSilent(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	m := New(s.Eng, s.Cache, 64, 127, 8<<10)
	s.Cache.Attach(m)
	// One observation only: confidence 1 < threshold, no prefetch.
	s.Access(0x20000, 1)
	s.Settle(20)
	s.Access(0x20000+1024, 1)
	s.Settle(2000)
	if m.Issued() != 0 {
		t.Fatalf("low-confidence correlation prefetched (%d)", m.Issued())
	}
}

func TestTKVCFiltersDeadVictims(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	v := NewTKVC(s.Eng, s.Cache, 512, 100)
	s.Cache.Attach(v)

	a, b := uint64(0x30000), uint64(0x30000+1024)
	// Access a, let it idle far past the threshold, then evict: the
	// victim is dead and must be filtered.
	s.Access(a, 1)
	s.Settle(1000)
	s.Access(b, 1)
	if v.Filtered == 0 {
		t.Fatal("dead victim not filtered")
	}
	if v.VC.Inserts != 0 {
		t.Fatal("dead victim inserted anyway")
	}
	// A freshly-touched victim must be kept.
	s.Access(a, 1) // evicts b (b was just touched -> kept)
	if v.VC.Inserts == 0 {
		t.Fatal("live victim filtered")
	}
}

func TestNames(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	if New(s.Eng, s.Cache, 512, 1023, 8<<10).Name() != "TK" {
		t.Fatal("TK name")
	}
	if NewTKVC(s.Eng, s.Cache, 512, 1023).Name() != "TKVC" {
		t.Fatal("TKVC name")
	}
}

func TestHardware(t *testing.T) {
	s := mechtest.New(t, mechtest.L1Config())
	m := New(s.Eng, s.Cache, 512, 1023, 8<<10)
	if len(m.Hardware()) != 2 {
		t.Fatalf("hardware: %+v", m.Hardware())
	}
	v := NewTKVC(s.Eng, s.Cache, 512, 1023)
	if len(v.Hardware()) != 2 {
		t.Fatalf("tkvc hardware: %+v", v.Hardware())
	}
}

package markov

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/sim"
)

// fakeBackend accepts everything instantly.
type fakeBackend struct{ eng *sim.Engine }

func (f *fakeBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink cache.FillSink) bool {
	f.eng.After(10, func() { sink.FillLine(lineAddr, f.eng.Now()) })
	return true
}
func (f *fakeBackend) WriteBack(lineAddr uint64) bool { return true }
func (f *fakeBackend) FreeAtHint() uint64             { return f.eng.Now() + 1 }

func newL1(eng *sim.Engine) *cache.Cache {
	cfg := cache.Config{
		Name: "L1D", Size: 1 << 10, LineSize: 32, Assoc: 1,
		HitLatency: 1, Ports: 4, MSHRs: 8, ReadsPerMSHR: 4,
		WriteBack: true, AllocOnWrite: true, PrefetchQueueCap: 16,
	}
	return cache.New(eng, cfg, &fakeBackend{eng: eng})
}

// TestMarkovLearnsRepeatingTour drives a repeating miss sequence and
// checks the prefetcher learns it and produces buffer hits from the
// second pass on.
func TestMarkovLearnsRepeatingTour(t *testing.T) {
	eng := sim.NewEngine()
	l1 := newL1(eng)
	m := New(l1, 1<<20, 128)
	l1.Attach(m)

	// A tour of 64 lines that all conflict in the tiny 32-set cache,
	// so every pass misses.
	tour := make([]uint64, 64)
	for i := range tour {
		tour[i] = 0x100000 + uint64(i)*1024 // 1KB apart: same set in a 1KB cache
	}
	cycle := eng.Now()
	access := func(addr uint64) {
		for !l1.Access(&cache.Access{Addr: addr, PC: 0x400000}).Accepted() {
			cycle += 1
			eng.AdvanceTo(cycle)
		}
		cycle += 40
		eng.AdvanceTo(cycle)
	}
	for pass := 0; pass < 4; pass++ {
		for _, a := range tour {
			access(a)
		}
	}
	if m.issued == 0 {
		t.Fatalf("markov never issued a prefetch (reads=%d writes=%d)", m.reads, m.writes)
	}
	if m.BufferHits() == 0 {
		t.Fatalf("markov never hit its buffer (issued=%d)", m.issued)
	}
	t.Logf("issued=%d bufHits=%d reads=%d writes=%d", m.issued, m.BufferHits(), m.reads, m.writes)
}

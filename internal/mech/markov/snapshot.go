package markov

import (
	"encoding/gob"
	"fmt"
)

// EntryState is one correlation-table entry in serializable form.
type EntryState struct {
	Tag   uint64
	Preds [predsPerEntry]uint64
}

// State is the Markov prefetcher's full mutable state. The prefetch
// buffer's lineAddr->slot map is derivable from the ring (nonzero
// slots are resident), so only the ring travels.
type State struct {
	Table    []EntryState
	Ring     []uint64
	RingPos  int
	PrevMiss uint64
	Reads    uint64
	Writes   uint64
	BufHits  uint64
	Issued   uint64
}

// SnapState implements core.Snapshotter.
func (m *Markov) SnapState() any {
	st := State{
		Ring: append([]uint64(nil), m.ring...), RingPos: m.ringPos,
		PrevMiss: m.prevMiss,
		Reads:    m.reads, Writes: m.writes, BufHits: m.bufHits, Issued: m.issued,
	}
	st.Table = make([]EntryState, len(m.table))
	for i, e := range m.table {
		st.Table[i] = EntryState{Tag: e.tag, Preds: e.preds}
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (m *Markov) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("markov: snapshot is %T, not markov.State", v)
	}
	if len(st.Table) != len(m.table) || len(st.Ring) != len(m.ring) {
		return fmt.Errorf("markov: snapshot geometry %d/%d, config holds %d/%d",
			len(st.Table), len(st.Ring), len(m.table), len(m.ring))
	}
	for i, e := range st.Table {
		m.table[i] = entryT{tag: e.Tag, preds: e.Preds}
	}
	copy(m.ring, st.Ring)
	clear(m.buffer)
	for i, la := range m.ring {
		if la != 0 {
			m.buffer[la] = i
		}
	}
	m.ringPos = st.RingPos
	m.prevMiss = st.PrevMiss
	m.reads, m.writes, m.bufHits, m.issued = st.Reads, st.Writes, st.BufHits, st.Issued
	return nil
}

func init() { gob.Register(State{}) }

// Package markov implements the Markov Prefetcher (Joseph &
// Grunwald, 1997) at the L1: a large (1 MB) table records, per miss
// address, the most likely successor miss addresses (up to 4), and on
// each miss the predicted successors are prefetched into a dedicated
// 128-line prefetch buffer probed in parallel with the L1.
package markov

import (
	"microlib/internal/cache"
	"microlib/internal/core"
)

const predsPerEntry = 4

type entryT struct {
	tag   uint64
	preds [predsPerEntry]uint64
}

// Markov is the Markov prefetcher.
type Markov struct {
	l1    *cache.Cache
	table []entryT
	mask  uint64

	// prefetch buffer: FIFO of bufSize lines.
	buffer  map[uint64]int // lineAddr -> ring index
	ring    []uint64
	ringPos int

	prevMiss uint64

	reads, writes uint64
	bufHits       uint64
	issued        uint64
}

// New builds the prefetcher: tableBytes of correlation storage and a
// bufLines-entry prefetch buffer.
func New(l1 *cache.Cache, tableBytes, bufLines int) *Markov {
	entrySize := 8 * (predsPerEntry + 1)
	n := 1
	for n*entrySize*2 <= tableBytes {
		n <<= 1
	}
	return &Markov{
		l1:     l1,
		table:  make([]entryT, n),
		mask:   uint64(n - 1),
		buffer: make(map[uint64]int, bufLines),
		ring:   make([]uint64, bufLines),
	}
}

func init() {
	core.Register(core.Description{
		Name: "Markov", Level: "L1", Year: 1997,
		Summary: "Markov Prefetcher: per-address successor prediction into a prefetch buffer",
		Params:  []string{"tableBytes", "bufLines", "queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		m := New(env.L1D, p.Get("tableBytes", 1<<20), p.Get("bufLines", 128))
		env.L1D.SetPrefetchQueueCap(p.Get("queue", 16))
		env.L1D.Attach(m)
		return m, nil
	})
}

// Name implements core.Mechanism.
func (m *Markov) Name() string { return "Markov" }

// OnMiss implements cache.MissObserver: learn prev->cur transition,
// then prefetch cur's predicted successors into the buffer.
func (m *Markov) OnMiss(lineAddr, pc uint64, now uint64) {
	if m.prevMiss != 0 {
		m.learn(m.prevMiss, lineAddr)
	}
	m.prevMiss = lineAddr
	e := m.lookup(lineAddr)
	m.reads++
	if e == nil {
		return
	}
	for _, p := range e.preds {
		if p == 0 {
			continue
		}
		if _, in := m.buffer[p]; in {
			continue
		}
		m.issued++
		m.l1.PrefetchInto(p, m)
	}
}

func (m *Markov) idx(lineAddr uint64) uint64 {
	return (lineAddr >> 5) & m.mask
}

func (m *Markov) lookup(lineAddr uint64) *entryT {
	e := &m.table[m.idx(lineAddr)]
	if e.tag == lineAddr {
		return e
	}
	return nil
}

// learn records "after a miss on prev, a miss on next follows",
// most-recent-first with the remaining predictions shifted down.
func (m *Markov) learn(prev, next uint64) {
	e := &m.table[m.idx(prev)]
	m.writes++
	if e.tag != prev {
		*e = entryT{tag: prev}
		e.preds[0] = next
		return
	}
	for i, p := range e.preds {
		if p == next {
			// Move to front.
			copy(e.preds[1:i+1], e.preds[:i])
			e.preds[0] = next
			return
		}
	}
	copy(e.preds[1:], e.preds[:predsPerEntry-1])
	e.preds[0] = next
}

// RedirectFill implements cache.RedirectSink: prefetched lines land
// in the buffer (not in the L1).
func (m *Markov) RedirectFill(lineAddr uint64, now uint64) {
	if old := m.ring[m.ringPos]; old != 0 {
		delete(m.buffer, old)
	}
	m.ring[m.ringPos] = lineAddr
	m.buffer[lineAddr] = m.ringPos
	m.ringPos = (m.ringPos + 1) % len(m.ring)
}

// ProbeAux implements cache.AuxProber: a buffer hit promotes the line
// into the L1.
func (m *Markov) ProbeAux(lineAddr uint64, now uint64) bool {
	if i, ok := m.buffer[lineAddr]; ok {
		delete(m.buffer, lineAddr)
		m.ring[i] = 0
		m.bufHits++
		return true
	}
	return false
}

// Hardware implements core.CostModeler: the big prediction table is
// what makes Markov's Figure 5 cost and power bars tower over the
// others.
func (m *Markov) Hardware() []core.HWTable {
	return []core.HWTable{
		{Label: "markov-table", Bytes: len(m.table) * 8 * (predsPerEntry + 1), Assoc: 1, Ports: 1,
			Reads: m.reads, Writes: m.writes},
		{Label: "markov-buffer", Bytes: len(m.ring) * 32, Assoc: 0, Ports: 1,
			Reads: m.bufHits + m.issued, Writes: m.issued},
	}
}

// BufferHits reports prefetch-buffer hits (tests).
func (m *Markov) BufferHits() uint64 { return m.bufHits }

// Reads reports correlation-table lookups (diagnostics).
func (m *Markov) Reads() uint64 { return m.reads }

// Issued reports attempted prefetches (diagnostics).
func (m *Markov) Issued() uint64 { return m.issued }

package cdp

import (
	"testing"

	"microlib/internal/mech/mechtest"
)

// chainOracle lays out a linked chain: node i at base+i*64, pointer
// at offset ptrOff to node i+1.
type chainOracle struct {
	base   uint64
	nodes  uint64
	ptrOff uint64
}

func (o *chainOracle) Word(addr uint64) uint64 {
	if addr < o.base || addr >= o.base+o.nodes*64 {
		return 0x8000_0000_0000_0001
	}
	off := (addr - o.base) % 64
	if off == o.ptrOff {
		node := (addr - o.base) / 64
		return o.base + ((node + 1) % o.nodes * 64)
	}
	return 0x8000_0000_0000_0002 // non-pointer data
}

func (o *chainOracle) IsPointer(addr uint64) (uint64, bool) {
	w := o.Word(addr)
	if w >= o.base && w < o.base+o.nodes*64 {
		return w, true
	}
	return 0, false
}

func TestChasesInLinePointers(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	o := &chainOracle{base: 0x100000, nodes: 64, ptrOff: 8}
	c := New(s.Cache, o, 3)
	s.Cache.Attach(c)

	s.Access(0x100000, 0x400000) // fill node 0: scan finds node 1
	s.Settle(500)
	// Depth 3: nodes 1, 2, 3 prefetched; node 4 not scanned further
	// (its fill is at depth 3, the threshold).
	for n := uint64(1); n <= 3; n++ {
		if !s.Cache.Contains(0x100000 + n*64) {
			t.Fatalf("node %d not prefetched", n)
		}
	}
	if s.Cache.Contains(0x100000 + 5*64) {
		t.Fatal("prefetch chain exceeded the depth threshold")
	}
	if c.Candidates() == 0 || c.Issued() == 0 {
		t.Fatalf("counters: candidates=%d issued=%d", c.Candidates(), c.Issued())
	}
}

func TestIgnoresNonPointerData(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	o := &chainOracle{base: 0x100000, nodes: 4, ptrOff: 8}
	c := New(s.Cache, o, 3)
	s.Cache.Attach(c)

	s.Access(0x900000, 0x400000) // outside the chain: all data words
	s.Settle(200)
	if c.Issued() != 0 {
		t.Fatal("prefetched from a pointer-free line")
	}
}

// TestAmmpStylePointerBeyondLine: the true pointer sits past the
// fetched line (ammp's 88-byte offset in a 128-byte node), so the
// chain never advances from the node-start line.
func TestAmmpStylePointerBeyondLine(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	// Node size 128: pointer at +88 lives in the second 64B line.
	o := &ammpOracle{base: 0x200000, nodes: 32}
	c := New(s.Cache, o, 3)
	s.Cache.Attach(c)

	s.Access(0x200000, 0x400000) // first line of node 0: no pointer
	s.Settle(300)
	if c.Issued() != 0 {
		t.Fatal("CDP found a pointer in the pointer-free first line")
	}
}

type ammpOracle struct {
	base  uint64
	nodes uint64
}

func (o *ammpOracle) Word(addr uint64) uint64 {
	if addr < o.base || addr >= o.base+o.nodes*128 {
		return 0x8000_0000_0000_0001
	}
	off := (addr - o.base) % 128
	if off == 88 {
		node := (addr - o.base) / 128
		return o.base + (node+1)%o.nodes*128
	}
	return 0x8000_0000_0000_0003
}

func (o *ammpOracle) IsPointer(addr uint64) (uint64, bool) {
	w := o.Word(addr)
	if w >= o.base && w < o.base+o.nodes*128 {
		return w, true
	}
	return 0, false
}

func TestCombinedName(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	o := &chainOracle{base: 0x100000, nodes: 4, ptrOff: 8}
	c := New(s.Cache, o, 3)
	if c.Name() != "CDP" {
		t.Fatal("CDP name")
	}
	comb := &Combined{CDP: c}
	if comb.Name() != "CDPSP" {
		t.Fatal("combined name")
	}
}

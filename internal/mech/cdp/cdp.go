// Package cdp implements Content-Directed Data Prefetching (Cooksey,
// Jourdan & Grunwald, 2002) at the L2, and the CDP+SP combination the
// same article proposes.
//
// CDP is stateless: every line filled into the L2 is scanned for
// words that look like pointers (aligned values falling inside the
// program's heap); each candidate is prefetched, recursively up to a
// depth threshold of 3. The mechanism needs real memory contents —
// supplied by the MicroLib value oracle.
//
// The behaviour the paper highlights emerges here: linked structures
// whose next pointer lies inside the fetched line (twolf, equake)
// prefetch cleanly, while structures like ammp's — whose next pointer
// sits 88 bytes into a 128-byte node, beyond the fetched line — yield
// only decoy candidates that saturate the memory bus.
package cdp

import (
	"errors"

	"microlib/internal/cache"
	"microlib/internal/core"
	"microlib/internal/mech/sp"
)

// CDP is the content-directed prefetcher.
type CDP struct {
	l2       *cache.Cache
	values   core.ValueSource
	depthCap int
	lineSize uint64

	// depth of in-flight prefetched lines (lineAddr -> chain depth).
	depth map[uint64]int

	scans      uint64
	candidates uint64
	issued     uint64
}

// New builds a CDP on l2 with the given recursion depth threshold.
func New(l2 *cache.Cache, values core.ValueSource, depthCap int) *CDP {
	return &CDP{
		l2:       l2,
		values:   values,
		depthCap: depthCap,
		lineSize: uint64(l2.Config().LineSize),
		depth:    make(map[uint64]int),
	}
}

func init() {
	core.Register(core.Description{
		Name: "CDP", Level: "L2", Year: 2002,
		Summary:     "Content-Directed Data Prefetching: scan filled lines for pointers, prefetch targets",
		Params:      []string{"depth", "queue"},
		NeedsValues: true,
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		if env.Values == nil {
			return nil, errors.New("cdp: host supplies no memory values")
		}
		c := New(env.L2, env.Values, p.Get("depth", 3))
		env.L2.SetPrefetchQueueCap(p.Get("queue", 128))
		env.L2.Attach(c)
		return c, nil
	})
	core.Register(core.Description{
		Name: "CDPSP", Level: "L2", Year: 2002,
		Summary:     "CDP + SP combination as proposed in the CDP article",
		Params:      []string{"depth", "entries", "queue"},
		NeedsValues: true,
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		if env.Values == nil {
			return nil, errors.New("cdpsp: host supplies no memory values")
		}
		c := New(env.L2, env.Values, p.Get("depth", 3))
		s := sp.New(env.L2, p.Get("entries", 512))
		// Table 3 gives separate queues (SP 1 / CDP 128); the shared
		// cache-side queue takes the larger request.
		env.L2.SetPrefetchQueueCap(p.Get("queue", 128))
		env.L2.Attach(c)
		env.L2.Attach(s)
		return &Combined{CDP: c, SP: s}, nil
	})
}

// Name implements core.Mechanism.
func (c *CDP) Name() string { return "CDP" }

// OnFill implements cache.FillObserver: scan the arrived line for
// pointer-looking words and chase them.
func (c *CDP) OnFill(lineAddr uint64, prefetch bool, now uint64) {
	d := 0
	if prefetch {
		d = c.depth[lineAddr]
	}
	delete(c.depth, lineAddr)
	if d >= c.depthCap {
		return
	}
	c.scans++
	for off := uint64(0); off < c.lineSize; off += 8 {
		target, ok := c.values.IsPointer(lineAddr + off)
		if !ok {
			continue
		}
		c.candidates++
		tl := target &^ (c.lineSize - 1)
		if c.l2.Prefetch(tl) {
			c.issued++
			if _, seen := c.depth[tl]; !seen {
				c.depth[tl] = d + 1
			}
		}
	}
}

// Hardware implements core.CostModeler: CDP is stateless — only the
// scanning comparators and the request queue.
func (c *CDP) Hardware() []core.HWTable {
	return []core.HWTable{{
		Label: "cdp-queue", Bytes: 128 * 8, Assoc: 0, Ports: 1,
		Reads: c.scans, Writes: c.issued,
	}}
}

// Issued reports attempted prefetches (tests).
func (c *CDP) Issued() uint64 { return c.issued }

// Candidates reports pointer-looking words found (tests).
func (c *CDP) Candidates() uint64 { return c.candidates }

// Combined is the CDP+SP mechanism.
type Combined struct {
	CDP *CDP
	SP  *sp.SP
}

// Name implements core.Mechanism.
func (c *Combined) Name() string { return "CDPSP" }

// Hardware implements core.CostModeler.
func (c *Combined) Hardware() []core.HWTable {
	return append(c.CDP.Hardware(), c.SP.Hardware()...)
}

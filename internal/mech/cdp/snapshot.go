package cdp

import (
	"encoding/gob"
	"fmt"
	"sort"

	"microlib/internal/mech/sp"
)

// DepthEntry is one in-flight chain-depth record (lineAddr -> depth),
// emitted in sorted line order so snapshots are deterministic.
type DepthEntry struct {
	Line  uint64
	Depth int
}

// State is the CDP's full mutable state.
type State struct {
	Depth      []DepthEntry
	Scans      uint64
	Candidates uint64
	Issued     uint64
}

// SnapState implements core.Snapshotter.
func (c *CDP) SnapState() any {
	st := State{Scans: c.scans, Candidates: c.candidates, Issued: c.issued}
	if len(c.depth) > 0 {
		st.Depth = make([]DepthEntry, 0, len(c.depth))
		for la, d := range c.depth {
			st.Depth = append(st.Depth, DepthEntry{Line: la, Depth: d})
		}
		sort.Slice(st.Depth, func(i, j int) bool { return st.Depth[i].Line < st.Depth[j].Line })
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (c *CDP) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("cdp: snapshot is %T, not cdp.State", v)
	}
	clear(c.depth)
	for _, e := range st.Depth {
		c.depth[e.Line] = e.Depth
	}
	c.scans, c.candidates, c.issued = st.Scans, st.Candidates, st.Issued
	return nil
}

// CombinedState is the CDPSP combination's full mutable state.
type CombinedState struct {
	CDP State
	SP  sp.State
}

// SnapState implements core.Snapshotter.
func (c *Combined) SnapState() any {
	return CombinedState{CDP: c.CDP.SnapState().(State), SP: c.SP.SnapState().(sp.State)}
}

// RestoreState implements core.Snapshotter.
func (c *Combined) RestoreState(v any) error {
	st, ok := v.(CombinedState)
	if !ok {
		return fmt.Errorf("cdpsp: snapshot is %T, not cdp.CombinedState", v)
	}
	if err := c.CDP.RestoreState(st.CDP); err != nil {
		return err
	}
	return c.SP.RestoreState(st.SP)
}

func init() {
	gob.Register(State{})
	gob.Register(CombinedState{})
}

package fvc

import (
	"encoding/gob"
	"fmt"
)

// State is the FVC's full mutable state. The lineAddr->slot map is
// derivable from the ring (nonzero slots are resident), so only the
// ring travels.
type State struct {
	Ring     []uint64
	Pos      int
	Inserts  uint64
	Rejected uint64
	Hits     uint64
	Probes   uint64
}

// SnapState implements core.Snapshotter.
func (f *FVC) SnapState() any {
	return State{
		Ring: append([]uint64(nil), f.ring...), Pos: f.pos,
		Inserts: f.Inserts, Rejected: f.Rejected, Hits: f.Hits, Probes: f.Probes,
	}
}

// RestoreState implements core.Snapshotter.
func (f *FVC) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("fvc: snapshot is %T, not fvc.State", v)
	}
	if len(st.Ring) != len(f.ring) {
		return fmt.Errorf("fvc: snapshot has %d lines, ring holds %d", len(st.Ring), len(f.ring))
	}
	copy(f.ring, st.Ring)
	clear(f.lines)
	for i, la := range f.ring {
		if la != 0 {
			f.lines[la] = i
		}
	}
	f.pos = st.Pos
	f.Inserts, f.Rejected, f.Hits, f.Probes = st.Inserts, st.Rejected, st.Hits, st.Probes
	return nil
}

func init() { gob.Register(State{}) }

// Package fvc implements the Frequent Value Cache (Zhang, Yang &
// Gupta, 2000) at the L1: a 1024-line side cache that behaves like a
// victim cache but only stores lines whose words all belong to a
// small frequent-value set (7 values + "unknown"), held in compressed
// form. It needs real memory contents, which the MicroLib value
// oracle supplies — the paper notes this mechanism class cannot run
// on address-only simulators like stock SimpleScalar.
package fvc

import (
	"errors"

	"microlib/internal/cache"
	"microlib/internal/core"
)

// FVC is the frequent value cache.
type FVC struct {
	l1     *cache.Cache
	values core.ValueSource
	freq   map[uint64]struct{}

	lines map[uint64]int // lineAddr -> ring slot
	ring  []uint64
	pos   int

	Inserts  uint64
	Rejected uint64 // evictions that were not compressible
	Hits     uint64
	Probes   uint64
	lineSize int
}

// New builds an FVC with nLines entries using the frequent-value set
// fv.
func New(l1 *cache.Cache, values core.ValueSource, fv []uint64, nLines int) *FVC {
	f := &FVC{
		l1:       l1,
		values:   values,
		freq:     make(map[uint64]struct{}, len(fv)),
		lines:    make(map[uint64]int, nLines),
		ring:     make([]uint64, nLines),
		lineSize: l1.Config().LineSize,
	}
	for _, v := range fv {
		f.freq[v] = struct{}{}
	}
	return f
}

// FrequentValueProvider is implemented by oracles that publish their
// frequent-value set (the workload oracle does).
type FrequentValueProvider interface {
	FrequentValues() [7]uint64
}

func init() {
	core.Register(core.Description{
		Name: "FVC", Level: "L1", Year: 2000,
		Summary:     "Frequent Value Cache: victim-cache-like store for value-compressible lines",
		Params:      []string{"lines"},
		NeedsValues: true,
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		if env.Values == nil {
			return nil, errors.New("fvc: host supplies no memory values (address-only simulator)")
		}
		var fv []uint64
		if prov, ok := env.Values.(FrequentValueProvider); ok {
			set := prov.FrequentValues()
			fv = set[:]
		} else {
			fv = []uint64{0, 1, ^uint64(0), 4, 8, 0x20, 0x100}
		}
		f := New(env.L1D, env.Values, fv, p.Get("lines", 1024))
		env.L1D.Attach(f)
		return f, nil
	})
}

// Name implements core.Mechanism.
func (f *FVC) Name() string { return "FVC" }

// compressible reports whether every word of the line is frequent.
func (f *FVC) compressible(lineAddr uint64) bool {
	for off := 0; off < f.lineSize; off += 8 {
		if _, ok := f.freq[f.values.Word(lineAddr+uint64(off))]; !ok {
			return false
		}
	}
	return true
}

// OnEvict implements cache.EvictObserver: keep the victim only when
// it is value-compressible. Dirty victims are not retained (their
// write-back proceeds normally) — the compressed copy would be stale.
func (f *FVC) OnEvict(lineAddr uint64, dirty bool, now uint64) {
	if dirty || !f.compressible(lineAddr) {
		f.Rejected++
		return
	}
	f.Inserts++
	if old := f.ring[f.pos]; old != 0 {
		delete(f.lines, old)
	}
	f.ring[f.pos] = lineAddr
	f.lines[lineAddr] = f.pos
	f.pos = (f.pos + 1) % len(f.ring)
}

// ProbeAux implements cache.AuxProber.
func (f *FVC) ProbeAux(lineAddr uint64, now uint64) bool {
	f.Probes++
	if i, ok := f.lines[lineAddr]; ok {
		delete(f.lines, lineAddr)
		f.ring[i] = 0
		f.Hits++
		return true
	}
	return false
}

// Hardware implements core.CostModeler: 1024 lines, each stored as
// 3-bit codes per word plus a tag — about 8 bytes per line.
func (f *FVC) Hardware() []core.HWTable {
	return []core.HWTable{{
		Label: "fvc", Bytes: len(f.ring) * 8, Assoc: 0, Ports: 1,
		Reads: f.Probes, Writes: f.Inserts,
	}}
}

package fvc

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/mech/mechtest"
)

// oracle marks one region as all-frequent-values and the rest as
// incompressible.
type oracle struct {
	fvLo, fvHi uint64
}

func (o *oracle) Word(addr uint64) uint64 {
	if addr >= o.fvLo && addr < o.fvHi {
		return 0 // the canonical frequent value
	}
	return 0x8000_0000_dead_beef
}

func (o *oracle) IsPointer(addr uint64) (uint64, bool) { return 0, false }

func newSystem(t *testing.T) (*mechtest.System, *FVC) {
	s := mechtest.New(t, mechtest.L1Config())
	f := New(s.Cache, &oracle{fvLo: 0x10000, fvHi: 0x20000},
		[]uint64{0, 1, 2, 3, 4, 5, 6}, 64)
	s.Cache.Attach(f)
	return s, f
}

func TestCompressibleLinesRetained(t *testing.T) {
	s, f := newSystem(t)
	a, b := uint64(0x10000), uint64(0x10000+1024) // FV region, same set
	s.Access(a, 1)
	s.Access(b, 1) // evicts a; compressible -> stored
	if f.Inserts != 1 {
		t.Fatalf("inserts %d", f.Inserts)
	}
	if !s.Access(a, 1) {
		t.Fatal("FVC did not service the compressible line")
	}
	if f.Hits != 1 {
		t.Fatalf("hits %d", f.Hits)
	}
}

func TestIncompressibleRejected(t *testing.T) {
	s, f := newSystem(t)
	a, b := uint64(0x40000), uint64(0x40000+1024) // outside FV region
	s.Access(a, 1)
	s.Access(b, 1)
	if f.Inserts != 0 || f.Rejected == 0 {
		t.Fatalf("incompressible line stored: inserts=%d rejected=%d", f.Inserts, f.Rejected)
	}
	fetches := len(s.Back.Fetches)
	s.Access(a, 1) // must refetch downstream
	if len(s.Back.Fetches) == fetches {
		t.Fatal("miss serviced without fetch")
	}
}

func TestDirtyNotRetained(t *testing.T) {
	s, f := newSystem(t)
	a, b := uint64(0x10000), uint64(0x10000+1024)
	s.Access(a, 1)
	// Dirty it, then evict: the stale compressed copy must not be
	// kept.
	if !s.Cache.Access(&cache.Access{Addr: a, Write: true}).Accepted() {
		t.Fatal("write refused")
	}
	s.Settle(50)
	s.Access(b, 1)
	if f.Inserts != 0 {
		t.Fatal("dirty line retained in compressed form")
	}
}

func TestHardware(t *testing.T) {
	_, f := newSystem(t)
	hw := f.Hardware()
	if len(hw) != 1 || hw[0].Bytes != 64*8 {
		t.Fatalf("hardware: %+v", hw)
	}
}

package dbcp

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/sim"
)

type fakeBackend struct{ eng *sim.Engine }

func (f *fakeBackend) Fetch(lineAddr, pc uint64, prefetch bool, sink cache.FillSink) bool {
	f.eng.After(10, func() { sink.FillLine(lineAddr, f.eng.Now()) })
	return true
}
func (f *fakeBackend) WriteBack(lineAddr uint64) bool { return true }
func (f *fakeBackend) FreeAtHint() uint64             { return f.eng.Now() + 1 }

// TestDBCPLearnsRepeatingTour drives a repeating conflict tour with a
// stable PC per line and checks that dead-block correlation
// eventually predicts and prefetches.
func TestDBCPLearnsRepeatingTour(t *testing.T) {
	eng := sim.NewEngine()
	cfg := cache.Config{
		Name: "L1D", Size: 1 << 10, LineSize: 32, Assoc: 1,
		HitLatency: 1, Ports: 4, MSHRs: 8, ReadsPerMSHR: 4,
		WriteBack: true, AllocOnWrite: true, PrefetchQueueCap: 128,
	}
	l1 := cache.New(eng, cfg, &fakeBackend{eng: eng})
	d := New(l1, Config{})
	l1.Attach(d)

	tour := make([]uint64, 64)
	pcs := make([]uint64, 64)
	for i := range tour {
		tour[i] = 0x100000 + uint64(i)*1024 // same set in a 1KB cache
		pcs[i] = 0x400000 + uint64(i%4)*4   // stable small PC set
	}
	cycle := eng.Now()
	access := func(addr, pc uint64) {
		for !l1.Access(&cache.Access{Addr: addr, PC: pc}).Accepted() {
			cycle++
			eng.AdvanceTo(cycle)
		}
		cycle += 40
		eng.AdvanceTo(cycle)
	}
	for pass := 0; pass < 8; pass++ {
		for i, a := range tour {
			access(a, pcs[i])
		}
	}
	t.Logf("reads=%d writes=%d preds=%d pfIssued=%d pfUseful=%d",
		d.reads, d.writes, d.Predictions(), l1.Stats().PrefetchIssued, l1.Stats().PrefetchUseful)
	if d.Predictions() == 0 {
		t.Fatal("DBCP never predicted on a perfectly repeating dead-block stream")
	}
}

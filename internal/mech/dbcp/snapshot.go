package dbcp

import (
	"encoding/gob"
	"fmt"
	"sort"
)

// LiveEntry is one live-signature record (lineAddr -> signature),
// emitted in sorted line order so snapshots are deterministic.
type LiveEntry struct {
	Line uint64
	Sig  uint32
}

// CorrEntryState is one correlation-table entry in serializable form.
type CorrEntryState struct {
	Key    uint64
	Target uint64
	Conf   int8
}

// State is the DBCP's full mutable state.
type State struct {
	Live        []LiveEntry
	Table       []CorrEntryState
	PendingKey  uint64
	HavePend    bool
	Reads       uint64
	Writes      uint64
	Issued      uint64
	Predictions uint64
}

// SnapState implements core.Snapshotter.
func (d *DBCP) SnapState() any {
	st := State{
		PendingKey: d.pendingKey, HavePend: d.havePend,
		Reads: d.reads, Writes: d.writes, Issued: d.issued, Predictions: d.predictions,
	}
	if len(d.live) > 0 {
		st.Live = make([]LiveEntry, 0, len(d.live))
		for la, sig := range d.live {
			st.Live = append(st.Live, LiveEntry{Line: la, Sig: sig})
		}
		sort.Slice(st.Live, func(i, j int) bool { return st.Live[i].Line < st.Live[j].Line })
	}
	st.Table = make([]CorrEntryState, len(d.table))
	for i, e := range d.table {
		st.Table[i] = CorrEntryState{Key: e.key, Target: e.target, Conf: e.conf}
	}
	return st
}

// RestoreState implements core.Snapshotter.
func (d *DBCP) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("dbcp: snapshot is %T, not dbcp.State", v)
	}
	if len(st.Table) != len(d.table) {
		return fmt.Errorf("dbcp: snapshot has %d table entries, config holds %d", len(st.Table), len(d.table))
	}
	clear(d.live)
	for _, e := range st.Live {
		d.live[e.Line] = e.Sig
	}
	for i, e := range st.Table {
		d.table[i] = corrEntry{key: e.Key, target: e.Target, conf: e.Conf}
	}
	d.pendingKey, d.havePend = st.PendingKey, st.HavePend
	d.reads, d.writes, d.issued, d.predictions = st.Reads, st.Writes, st.Issued, st.Predictions
	return nil
}

func init() { gob.Register(State{}) }

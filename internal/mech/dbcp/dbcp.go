// Package dbcp implements the Dead-Block Correlating Prefetcher
// (Lai, Fide & Falsafi, 2001) at the L1: every resident line carries
// a signature — a hash of the sequence of load/store instruction
// addresses that touched it. When a block dies (is evicted), the next
// miss address is correlated with the dead block's signature in a
// large (2 MB, 8-way) table guarded by two-bit confidence counters.
// When a live block's signature reaches a state previously seen to
// precede death, its correlated successor is prefetched into the L1.
//
// The package also reproduces the paper's Section 2.2 reverse-
// engineering case study: the authors' *initial* DBCP implementation
// was off by 38% on average because of three mistakes the article's
// text did not prevent — a half-size correlation table (mis-read
// entry count), missing pre-hashing of instruction addresses before
// XOR folding (aliasing), and missing confidence-counter decrement
// (table pollution). Constructing with Params{"buggy":1} rebuilds
// exactly that initial version for the Figure 3 experiment.
package dbcp

import (
	"microlib/internal/cache"
	"microlib/internal/core"
)

type corrEntry struct {
	key    uint64
	target uint64
	conf   int8
}

// DBCP is the dead-block correlating prefetcher.
type DBCP struct {
	l1 *cache.Cache

	// live per-resident-line signatures (the "history" of Table 3,
	// capped at historyCap entries).
	live       map[uint64]uint32
	historyCap int

	table []corrEntry
	ways  int
	sets  int
	buggy bool

	// pending dead-block key awaiting the next miss address.
	pendingKey uint64
	havePend   bool

	reads, writes uint64
	issued        uint64
	predictions   uint64
}

// Config sizes the mechanism.
type Config struct {
	TableBytes int // correlation table (2 MB in Table 3)
	Ways       int // 8-way
	HistoryCap int // 1K live-signature entries
	Buggy      bool
}

// New builds a DBCP attached to l1.
func New(l1 *cache.Cache, cfg Config) *DBCP {
	if cfg.TableBytes == 0 {
		cfg.TableBytes = 2 << 20
	}
	if cfg.Ways == 0 {
		cfg.Ways = 8
	}
	if cfg.HistoryCap == 0 {
		cfg.HistoryCap = 2048
	}
	if cfg.Buggy {
		// Mistake 1: half the correct number of entries.
		cfg.TableBytes /= 2
	}
	const entryBytes = 24
	entries := cfg.TableBytes / entryBytes
	sets := 1
	for sets*2*cfg.Ways <= entries {
		sets <<= 1
	}
	return &DBCP{
		l1:         l1,
		live:       make(map[uint64]uint32, cfg.HistoryCap),
		historyCap: cfg.HistoryCap,
		table:      make([]corrEntry, sets*cfg.Ways),
		ways:       cfg.Ways,
		sets:       sets,
		buggy:      cfg.Buggy,
	}
}

func init() {
	core.Register(core.Description{
		Name: "DBCP", Level: "L1", Year: 2001,
		Summary: "Dead-Block Correlating Prefetcher: signature-indexed dead-block and successor prediction",
		Params:  []string{"tableBytes", "ways", "history", "buggy", "queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		d := New(env.L1D, Config{
			TableBytes: p.Get("tableBytes", 2<<20),
			Ways:       p.Get("ways", 8),
			HistoryCap: p.Get("history", 2048),
			Buggy:      p.Get("buggy", 0) != 0,
		})
		env.L1D.SetPrefetchQueueCap(p.Get("queue", 128))
		env.L1D.Attach(d)
		return d, nil
	})
}

// Name implements core.Mechanism.
func (d *DBCP) Name() string { return "DBCP" }

// prehash mixes an instruction address before it is folded into a
// signature. The original article omitted this step, and the paper
// found the omission caused destructive aliasing — the buggy mode
// folds the raw PC instead.
func (d *DBCP) prehash(pc uint64) uint32 {
	if d.buggy {
		return uint32(pc)
	}
	x := pc
	x ^= x >> 17
	x *= 0xed5ad4bb
	x ^= x >> 11
	return uint32(x)
}

func (d *DBCP) key(lineAddr uint64, sig uint32) uint64 {
	return lineAddr ^ (uint64(sig) << 13)
}

// OnAccess implements cache.AccessObserver: extend the line's
// signature with the accessing PC, then consult the correlation
// table — a matching high-confidence entry means the block's history
// says it is about to die and names the block that will be needed
// next.
func (d *DBCP) OnAccess(ev cache.AccessEvent) {
	if ev.PC == 0 {
		return
	}
	sig := d.live[ev.LineAddr]*33 ^ d.prehash(ev.PC)
	if len(d.live) >= d.historyCap {
		// History full: drop an arbitrary entry (hardware would have
		// a finite structure with replacement).
		for k := range d.live {
			delete(d.live, k)
			break
		}
	}
	d.live[ev.LineAddr] = sig

	k := d.key(ev.LineAddr, sig)
	d.reads++
	if e := d.lookup(k); e != nil && e.conf >= 1 {
		d.predictions++
		d.issued++
		d.l1.Prefetch(e.target)
	}
}

// OnEvict implements cache.EvictObserver: the block is dead; its
// final signature is the correlation key, bound to the next miss.
func (d *DBCP) OnEvict(lineAddr uint64, dirty bool, now uint64) {
	sig, ok := d.live[lineAddr]
	if !ok {
		return
	}
	delete(d.live, lineAddr)
	d.pendingKey = d.key(lineAddr, sig)
	d.havePend = true
}

// OnMiss implements cache.MissObserver: bind the pending dead-block
// key to this miss address.
func (d *DBCP) OnMiss(lineAddr, pc uint64, now uint64) {
	if !d.havePend {
		return
	}
	d.havePend = false
	d.learn(d.pendingKey, lineAddr)
}

func (d *DBCP) setOf(k uint64) []corrEntry {
	s := int(k>>3) & (d.sets - 1)
	return d.table[s*d.ways : (s+1)*d.ways]
}

func (d *DBCP) lookup(k uint64) *corrEntry {
	set := d.setOf(k)
	for i := range set {
		if set[i].key == k {
			return &set[i]
		}
	}
	return nil
}

func (d *DBCP) learn(k, target uint64) {
	d.writes++
	set := d.setOf(k)
	var victim *corrEntry
	for i := range set {
		e := &set[i]
		if e.key == k {
			switch {
			case e.target == target:
				if e.conf < 3 {
					e.conf++
				}
			case d.buggy:
				// Mistake 3: the initial implementation never
				// decreased the confidence of signatures that stopped
				// inducing the recorded miss, so stale entries stuck
				// around, polluting the table and blocking updates.
			default:
				e.conf--
				if e.conf <= 0 {
					e.target = target
					e.conf = 1
				}
			}
			return
		}
		if victim == nil || e.conf < victim.conf {
			victim = e
		}
	}
	*victim = corrEntry{key: k, target: target, conf: 1}
}

// Hardware implements core.CostModeler: the 2 MB correlation table
// dominates (Figure 5's second-tallest bars).
func (d *DBCP) Hardware() []core.HWTable {
	return []core.HWTable{
		{Label: "dbcp-table", Bytes: len(d.table) * 24, Assoc: d.ways, Ports: 1,
			Reads: d.reads, Writes: d.writes},
		{Label: "dbcp-history", Bytes: d.historyCap * 12, Assoc: 0, Ports: 1,
			Reads: d.reads, Writes: d.reads},
	}
}

// Predictions reports high-confidence table hits (tests).
func (d *DBCP) Predictions() uint64 { return d.predictions }

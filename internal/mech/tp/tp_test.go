package tp

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/mech/mechtest"
)

func TestNextLineOnMiss(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := &TP{l2: s.Cache, lineSize: 64}
	s.Cache.Attach(m)

	s.Access(0x10000, 0x400000) // miss: prefetch 0x10040
	s.Settle(100)
	if !s.Cache.Contains(0x10040) {
		t.Fatal("next line not prefetched on miss")
	}
	if m.Triggers() == 0 {
		t.Fatal("no triggers counted")
	}
}

func TestHitOnPrefetchedTriggersChain(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := &TP{l2: s.Cache, lineSize: 64}
	s.Cache.Attach(m)

	s.Access(0x10000, 0x400000) // prefetches 0x10040
	s.Settle(100)
	if !s.Access(0x10040, 0x400000) {
		t.Fatal("prefetched line missed")
	}
	s.Settle(100)
	// The hit on the prefetched line must chain to 0x10080.
	if !s.Cache.Contains(0x10080) {
		t.Fatal("tagged chain did not continue")
	}
}

func TestPlainHitDoesNotTrigger(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := &TP{l2: s.Cache, lineSize: 64}
	s.Cache.Attach(m)

	s.Access(0x20000, 0x400000)
	s.Settle(100)
	before := m.Triggers()
	s.Access(0x20040, 0x400000) // demand hit on the prefetched line -> trigger
	s.Settle(100)
	during := m.Triggers()
	s.Access(0x20040, 0x400000) // second hit: tag bit cleared -> no trigger
	s.Settle(100)
	if m.Triggers() != during {
		t.Fatalf("plain hit triggered a prefetch (%d -> %d)", during, m.Triggers())
	}
	if during == before {
		t.Fatal("first hit on prefetched line did not trigger")
	}
}

func TestWritesIgnored(t *testing.T) {
	s := mechtest.New(t, mechtest.L2Config())
	m := &TP{l2: s.Cache, lineSize: 64}
	s.Cache.Attach(m)
	// Write misses (write-backs from the level above) should not
	// trigger the read prefetcher.
	if !s.Cache.Access(&cache.Access{Addr: 0x30000, Write: true}).Accepted() {
		t.Fatal("write refused")
	}
	s.Settle(200)
	if m.Triggers() != 0 {
		t.Fatal("write triggered TP")
	}
}

// Package tp implements Tagged Prefetching (Smith, 1982) at the L2:
// on a demand miss, or on the first demand hit to a line that was
// itself brought in by a prefetch, the next sequential line is
// prefetched. The per-line "prefetched" tag bit lives in the cache
// model; the only added hardware is the tag bit array and a 16-entry
// request queue (the paper's Table 3).
package tp

import (
	"microlib/internal/cache"
	"microlib/internal/core"
)

// TP is the tagged prefetcher.
type TP struct {
	l2       *cache.Cache
	lineSize uint64

	triggers uint64
	reads    uint64
	writes   uint64
}

func init() {
	core.Register(core.Description{
		Name: "TP", Level: "L2", Year: 1982,
		Summary: "Tagged Prefetching: prefetch next line on a miss or on a hit on a prefetched line",
		Params:  []string{"queue"},
	}, func(env *core.Env, p core.Params) (core.Mechanism, error) {
		t := &TP{l2: env.L2, lineSize: uint64(env.L2.Config().LineSize)}
		env.L2.SetPrefetchQueueCap(p.Get("queue", 16))
		env.L2.Attach(t)
		return t, nil
	})
}

// Name implements core.Mechanism.
func (t *TP) Name() string { return "TP" }

// OnAccess implements cache.AccessObserver: the tagged-prefetch
// trigger condition.
func (t *TP) OnAccess(ev cache.AccessEvent) {
	t.reads++
	if ev.Write {
		return
	}
	if !ev.Hit || ev.PrefetchedLine {
		t.triggers++
		t.writes++
		t.l2.Prefetch(ev.LineAddr + t.lineSize)
	}
}

// Hardware implements core.CostModeler: one tag bit per L2 line plus
// the request queue.
func (t *TP) Hardware() []core.HWTable {
	lines := t.l2.Config().NumLines()
	return []core.HWTable{
		{Label: "tp-tagbits", Bytes: lines / 8, Assoc: 1, Ports: 1, Reads: t.reads, Writes: t.writes},
		{Label: "tp-queue", Bytes: 16 * 8, Assoc: 0, Ports: 1, Reads: t.triggers, Writes: t.triggers},
	}
}

// Triggers reports how many prefetches were requested (tests).
func (t *TP) Triggers() uint64 { return t.triggers }

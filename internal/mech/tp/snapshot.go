package tp

import (
	"encoding/gob"
	"fmt"
)

// State is the TP's full mutable state: the per-line tag bits live in
// the cache model (serialized with the cache), so only counters remain.
type State struct {
	Triggers uint64
	Reads    uint64
	Writes   uint64
}

// SnapState implements core.Snapshotter.
func (t *TP) SnapState() any {
	return State{Triggers: t.triggers, Reads: t.reads, Writes: t.writes}
}

// RestoreState implements core.Snapshotter.
func (t *TP) RestoreState(v any) error {
	st, ok := v.(State)
	if !ok {
		return fmt.Errorf("tp: snapshot is %T, not tp.State", v)
	}
	t.triggers, t.reads, t.writes = st.Triggers, st.Reads, st.Writes
	return nil
}

func init() { gob.Register(State{}) }

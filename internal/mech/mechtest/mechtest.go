// Package mechtest provides the shared scaffolding for mechanism
// unit tests: a tiny cache on a fake backend, plus a driver that
// pushes accesses to completion.
package mechtest

import (
	"testing"

	"microlib/internal/cache"
	"microlib/internal/sim"
)

// Backend is a permissive downstream level completing fetches after
// Delay cycles.
type Backend struct {
	Eng     *sim.Engine
	Delay   uint64
	Fetches []uint64
	WBacks  []uint64
	// RefusePrefetch makes prefetch fetches fail (simulating a busy
	// bus).
	RefusePrefetch bool
}

// Fetch implements cache.Backend.
func (b *Backend) Fetch(lineAddr, pc uint64, prefetch bool, sink cache.FillSink) bool {
	if prefetch && b.RefusePrefetch {
		return false
	}
	b.Fetches = append(b.Fetches, lineAddr)
	//ml:waive hotalloc -- test double: mechtest backs unit tests, never a measured run
	b.Eng.After(b.Delay, func() { sink.FillLine(lineAddr, b.Eng.Now()) })
	return true
}

// WriteBack implements cache.Backend.
func (b *Backend) WriteBack(lineAddr uint64) bool {
	b.WBacks = append(b.WBacks, lineAddr)
	return true
}

// FreeAtHint implements cache.Backend.
func (b *Backend) FreeAtHint() uint64 { return b.Eng.Now() + 1 }

// System is a one-cache test system.
type System struct {
	T     *testing.T
	Eng   *sim.Engine
	Cache *cache.Cache
	Back  *Backend
}

// L1Config is a small direct-mapped L1-like cache (32 sets of 32 B).
func L1Config() cache.Config {
	return cache.Config{
		Name: "L1D", Size: 1 << 10, LineSize: 32, Assoc: 1,
		HitLatency: 1, Ports: 4, MSHRs: 8, ReadsPerMSHR: 4,
		WriteBack: true, AllocOnWrite: true, PrefetchQueueCap: 128,
	}
}

// L2Config is a small 2-way L2-like cache with 64 B lines.
func L2Config() cache.Config {
	return cache.Config{
		Name: "L2", Size: 4 << 10, LineSize: 64, Assoc: 2,
		HitLatency: 4, Ports: 2, MSHRs: 8, ReadsPerMSHR: 4,
		WriteBack: true, AllocOnWrite: true, PrefetchQueueCap: 128,
	}
}

// New builds a test system.
func New(t *testing.T, cfg cache.Config) *System {
	eng := sim.NewEngine()
	be := &Backend{Eng: eng, Delay: 15}
	return &System{T: t, Eng: eng, Cache: cache.New(eng, cfg, be), Back: be}
}

// Access drives one access to completion.
func (s *System) Access(addr, pc uint64) (hit bool) {
	s.T.Helper()
	done := false
	a := &cache.Access{Addr: addr, PC: pc, Done: cache.DoneFunc(func(now uint64, h bool) { done, hit = true, h })}
	cycle := s.Eng.Now()
	for !s.Cache.Access(a).Accepted() {
		cycle++
		s.Eng.AdvanceTo(cycle)
	}
	for !done {
		cycle++
		s.Eng.AdvanceTo(cycle)
		if cycle > 1_000_000 {
			s.T.Fatal("access never completed")
		}
	}
	return hit
}

// Settle runs the clock forward so queued prefetches complete.
func (s *System) Settle(cycles uint64) {
	s.Eng.AdvanceTo(s.Eng.Now() + cycles)
}

// Package all registers every MicroLib mechanism with the core
// registry. Import it for side effects:
//
//	import _ "microlib/internal/mech/all"
package all

import (
	_ "microlib/internal/mech/cdp"
	_ "microlib/internal/mech/dbcp"
	_ "microlib/internal/mech/ewb"
	_ "microlib/internal/mech/fvc"
	_ "microlib/internal/mech/ghb"
	_ "microlib/internal/mech/markov"
	_ "microlib/internal/mech/sp"
	_ "microlib/internal/mech/tcp"
	_ "microlib/internal/mech/tk"
	_ "microlib/internal/mech/tp"
	_ "microlib/internal/mech/vc"
)

package sim

import (
	"math/rand"
	"sort"
	"testing"
)

// refEvent mirrors one scheduled event in the reference model: a
// plain list stably sorted by cycle, which is the definition of
// timestamp-then-FIFO order.
type refEvent struct {
	when uint64
	id   int
}

// TestPropertySameCycleFIFOAcrossWraparound drives random schedules
// whose delays straddle the ring window, so events wrap the bucket
// ring, land in the overflow heap, and get promoted back — and checks
// the execution order against a stable sort on scheduling order. Each
// round also schedules follow-on events from inside handlers, the
// pattern every cache/memory component uses.
func TestPropertySameCycleFIFOAcrossWraparound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		eng := NewEngine()
		var ref []refEvent
		var got []int
		id := 0

		// Delays concentrate on a few cycles (FIFO pressure) but
		// reach past 3 ring windows (overflow + promotion pressure).
		delay := func() uint64 {
			switch rng.Intn(4) {
			case 0:
				return uint64(rng.Intn(4)) // same-cycle collisions
			case 1:
				return uint64(rng.Intn(ringSize))
			case 2:
				return uint64(ringSize + rng.Intn(ringSize))
			default:
				return uint64(rng.Intn(3 * ringSize))
			}
		}

		var schedule func(d uint64, depth int)
		schedule = func(d uint64, depth int) {
			myID := id
			id++
			ref = append(ref, refEvent{when: eng.Now() + d, id: myID})
			eng.After(d, func() {
				got = append(got, myID)
				if depth > 0 && rng.Intn(2) == 0 {
					// Nested scheduling from a handler, including
					// same-cycle (delay 0) follow-ons.
					schedule(delay(), depth-1)
				}
			})
		}

		n := 100 + rng.Intn(200)
		for i := 0; i < n; i++ {
			schedule(delay(), 2)
			if rng.Intn(8) == 0 {
				eng.AdvanceTo(eng.Now() + delay())
			}
		}
		eng.AdvanceTo(eng.Now() + 8*ringSize)

		if eng.Pending() != 0 {
			t.Fatalf("round %d: %d events never ran", round, eng.Pending())
		}
		// The reference order: stable sort by cycle. Scheduling order
		// (ascending id per insertion) is the tie-break, and the ids
		// were assigned in exactly that order... but nested events get
		// ids at execution time, which still matches their scheduling
		// order relative to everything scheduled earlier only if the
		// sort is stable over the append order. ref was appended in
		// scheduling order, so a stable sort gives the ground truth.
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].when < ref[j].when })
		if len(got) != len(ref) {
			t.Fatalf("round %d: ran %d events, scheduled %d", round, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i].id {
				t.Fatalf("round %d: position %d ran event %d, want %d (FIFO order violated)",
					round, i, got[i], ref[i].id)
			}
		}
	}
}

// TestOverflowPromotionOrder pins the trickiest ordering case: events
// for one far-future cycle scheduled long in advance (overflow), then
// more events for the same cycle scheduled after the window slid over
// it (direct ring entry). The overflow events must run first.
func TestOverflowPromotionOrder(t *testing.T) {
	eng := NewEngine()
	target := uint64(3 * ringSize)
	var got []int
	eng.At(target, func() { got = append(got, 0) }) // overflow
	eng.At(target, func() { got = append(got, 1) }) // overflow
	// Slide the window until target is inside it, then schedule direct.
	eng.AdvanceTo(target - 10)
	eng.At(target, func() { got = append(got, 2) }) // ring, after promotion
	eng.AdvanceTo(target)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("promotion broke FIFO: %v", got)
	}
}

// TestRingWraparoundSameBucket pins bucket-index aliasing: cycles c
// and c+ringSize share a bucket index; the earlier cycle must drain
// completely before the later one's events become visible.
func TestRingWraparoundSameBucket(t *testing.T) {
	eng := NewEngine()
	var got []uint64
	eng.At(5, func() {
		got = append(got, eng.Now())
		eng.At(5+ringSize, func() { got = append(got, eng.Now()) })
	})
	eng.AdvanceTo(5 + 2*ringSize)
	if len(got) != 2 || got[0] != 5 || got[1] != 5+ringSize {
		t.Fatalf("aliased buckets misordered: %v", got)
	}
}

// TestPropertySlabPromotionFIFO forces the batch-promotion path: big
// random slabs of far-future events (with same-cycle collisions) land
// in the overflow heap and a single window jump promotes them all at
// once, tripping the partition-and-reheapify switch past the pop
// limit. Execution order is checked against a stable sort, and
// against the popwise (one-pop-at-a-time) algorithm running the
// identical schedule — the two promotion strategies must be
// order-equivalent, not just order-correct.
func TestPropertySlabPromotionFIFO(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 20; round++ {
		slab := 64 + rng.Intn(512)
		delays := make([]uint64, slab)
		for i := range delays {
			// Far-future, concentrated on few cycles for FIFO pressure.
			delays[i] = uint64(ringSize + rng.Intn(64)*97)
		}
		run := func(popwise bool) []int {
			eng := NewEngine()
			eng.popwisePromote = popwise
			var got []int
			for i, d := range delays {
				i := i
				eng.After(d, func() { got = append(got, i) })
			}
			eng.AdvanceTo(eng.Now() + 8*ringSize)
			if eng.Pending() != 0 {
				t.Fatalf("round %d: %d events never ran", round, eng.Pending())
			}
			return got
		}
		batch, popwise := run(false), run(true)

		ref := make([]refEvent, slab)
		for i, d := range delays {
			ref[i] = refEvent{when: d, id: i}
		}
		sort.SliceStable(ref, func(i, j int) bool { return ref[i].when < ref[j].when })
		for i := range ref {
			if batch[i] != ref[i].id {
				t.Fatalf("round %d: batch promotion broke FIFO at %d: got %d want %d", round, i, batch[i], ref[i].id)
			}
			if popwise[i] != ref[i].id {
				t.Fatalf("round %d: popwise promotion broke FIFO at %d: got %d want %d", round, i, popwise[i], ref[i].id)
			}
		}
	}
}

// TestIdleJumpOverEmptyWindow checks that advancing far past every
// pending event leaves the clock and calendar consistent (the idle-
// skip path in the host cores relies on this).
func TestIdleJumpOverEmptyWindow(t *testing.T) {
	eng := NewEngine()
	ran := 0
	eng.At(100, func() { ran++ })
	eng.AdvanceTo(50_000_000)
	if ran != 1 || eng.Now() != 50_000_000 || eng.Pending() != 0 {
		t.Fatalf("long jump broke engine: ran=%d now=%d pending=%d", ran, eng.Now(), eng.Pending())
	}
	if next, ok := eng.NextEventAt(); ok {
		t.Fatalf("phantom event at %d", next)
	}
	eng.After(7, func() { ran++ })
	if next, ok := eng.NextEventAt(); !ok || next != eng.Now()+7 {
		t.Fatalf("NextEventAt=%d,%v want %d", next, ok, eng.Now()+7)
	}
}

// TestSteadyStateZeroAllocs is the kernel's headline guarantee: once
// the node pool is warm, scheduling and draining events through the
// pooled AtFunc path allocates nothing.
func TestSteadyStateZeroAllocs(t *testing.T) {
	eng := NewEngine()
	var fired uint64
	count := func(now uint64, o1, o2 any, a0, a1 uint64) { fired++ }
	// Warm the pool and the overflow heap backing array past the
	// steady-state in-flight population of the loop below (~1400
	// events live at delays up to ringSize+1500).
	for i := 0; i < 4000; i++ {
		eng.AfterFunc(uint64(i%2000)+1, count, nil, nil, 0, 0)
	}
	eng.Drain(eng.Now() + 8*ringSize)

	allocs := testing.AllocsPerRun(1000, func() {
		eng.AfterFunc(uint64(fired%300)+1, count, nil, nil, 0, 0)
		eng.AfterFunc(uint64(fired%1500)+ringSize, count, nil, nil, 0, 0)
		eng.Drain(eng.Now() + 2)
	})
	eng.Drain(eng.Now() + 8*ringSize)
	if allocs != 0 {
		t.Fatalf("steady-state scheduling allocates %.1f per op, want 0", allocs)
	}
}

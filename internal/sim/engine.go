// Package sim implements the discrete-event simulation kernel that
// drives every MicroLib model. The kernel is a cycle counter and an
// event calendar. Components schedule callbacks at absolute or
// relative cycles; the host CPU model advances the clock and lets the
// kernel drain the events due at each cycle boundary.
//
// The calendar is a bucketed calendar queue tuned for the near-future
// skew of micro-architecture simulation: a ring of per-cycle FIFO
// buckets covers the next ringSize cycles (cache hit latencies, bus
// beats, SDRAM bursts all land here), and a small overflow min-heap
// absorbs the rare far-future events (refresh timers, deeply queued
// bus reservations). Events are intrusive singly-linked nodes drawn
// from a per-engine freelist, so steady-state scheduling performs no
// heap allocations; the AtFunc/AfterFunc entry points additionally
// avoid the per-event closure by packing a static function pointer
// with receiver and argument words into the pooled node.
//
// Determinism: events scheduled for the same cycle run in FIFO order
// of scheduling, so a simulation is a pure function of its inputs.
// The ring preserves FIFO directly (tail append, head pop); overflow
// events carry the global schedule sequence number and are promoted
// into the ring in (cycle, sequence) order strictly before any
// same-cycle event can be scheduled directly into the ring, which
// keeps the merged order identical to a single time-ordered list.
package sim

import (
	"math/bits"
	"slices"
)

const (
	// ringSize buckets of one cycle each cover the near horizon. The
	// window must comfortably exceed the longest common component
	// latency (an SDRAM row-conflict burst is ~200 cycles) so that
	// overflow traffic stays rare.
	ringSize = 1024
	ringMask = ringSize - 1
	occWords = ringSize / 64
)

// Func is the allocation-free callback shape: a static function that
// receives the firing cycle plus the receiver(s) and argument words
// that were packed into the pooled event at schedule time.
type Func func(now uint64, o1, o2 any, a0, a1 uint64)

// event is a pooled calendar node.
type event struct {
	when uint64
	seq  uint64 // global schedule order; orders overflow ties
	next *event // bucket FIFO / freelist link

	// Exactly one of fn (legacy closure path) or call is set.
	fn     func()
	call   Func
	o1, o2 any
	a0, a1 uint64
}

// bucket is one cycle's FIFO list.
type bucket struct {
	head, tail *event
}

// Engine is the event kernel. The zero value is ready to use at
// cycle 0.
type Engine struct {
	now uint64
	seq uint64

	// base is the first cycle of the ring window [base, base+ringSize).
	// Invariants: base <= now+1 after every advance; every pending
	// event with when < base+ringSize sits in ring[when&ringMask];
	// every other pending event sits in overflow (so overflow's
	// minimum is always >= base+ringSize, and the ring minimum — when
	// the ring is non-empty — is the global minimum).
	base      uint64
	ring      [ringSize]bucket
	occ       [occWords]uint64 // occupancy bitmap over ring indices
	ringCount int

	overflow []*event // min-heap ordered by (when, seq)
	promote  []*event // batch-promotion scratch (empty between advances)
	// popwisePromote pins promotion to one-at-a-time heap pops — the
	// pre-batching algorithm — so benchmarks and equivalence tests can
	// price the batch path against it. Both paths promote in identical
	// (when, seq) order; only the cost differs. Set solely by
	// RunSlabPromotion.
	popwisePromote bool

	free *event // node freelist

	scheduled uint64 // total events ever scheduled (stats)
	executed  uint64 // total events executed (stats)
}

// NewEngine returns a fresh kernel at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// get pops a node from the freelist or allocates one.
func (e *Engine) get() *event {
	ev := e.free
	if ev == nil {
		//ml:waive hotalloc -- pool growth: allocates only until the freelist reaches high-water mark, then never again
		return &event{}
	}
	e.free = ev.next
	return ev
}

// put clears a node's references and returns it to the freelist.
func (e *Engine) put(ev *event) {
	*ev = event{next: e.free}
	e.free = ev
}

// At schedules fn to run when the clock reaches cycle. Scheduling in
// the past (cycle < Now) is a programming error and panics: silently
// reordering time would destroy determinism.
//
//ml:hotpath
func (e *Engine) At(cycle uint64, fn func()) {
	ev := e.get()
	ev.fn = fn
	e.schedule(cycle, ev)
}

// After schedules fn to run delay cycles from now.
//
//ml:hotpath
func (e *Engine) After(delay uint64, fn func()) {
	e.At(e.now+delay, fn)
}

// AtFunc schedules the static callback fn(now, o1, o2, a0, a1) at
// cycle. Unlike At it allocates nothing in steady state: receivers
// travel in the interface words (pointer-shaped values only — no
// boxing) and scalar arguments in a0/a1, all packed into a pooled
// event node.
//
//ml:hotpath
func (e *Engine) AtFunc(cycle uint64, fn Func, o1, o2 any, a0, a1 uint64) {
	ev := e.get()
	ev.call = fn
	ev.o1, ev.o2 = o1, o2
	ev.a0, ev.a1 = a0, a1
	e.schedule(cycle, ev)
}

// AfterFunc is AtFunc at now+delay.
//
//ml:hotpath
func (e *Engine) AfterFunc(delay uint64, fn Func, o1, o2 any, a0, a1 uint64) {
	e.AtFunc(e.now+delay, fn, o1, o2, a0, a1)
}

// schedule files the node under its cycle.
func (e *Engine) schedule(cycle uint64, ev *event) {
	if cycle < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.scheduled++
	ev.when = cycle
	ev.seq = e.seq
	if cycle < e.base+ringSize {
		e.ringPush(ev)
	} else {
		e.heapPush(ev)
	}
}

// ringPush appends the node to its cycle bucket's FIFO tail.
func (e *Engine) ringPush(ev *event) {
	idx := ev.when & ringMask
	ev.next = nil
	b := &e.ring[idx]
	if b.tail == nil {
		b.head = ev
		e.occ[idx>>6] |= 1 << (idx & 63)
	} else {
		b.tail.next = ev
	}
	b.tail = ev
	e.ringCount++
}

// advanceBase slides the ring window up to cycle t and promotes
// overflow events that fall inside the new window. Callers guarantee
// no pending event precedes t, so the buckets being vacated are empty
// and each promoted event lands in a bucket that cannot yet hold
// directly-scheduled events for its cycle — promotion order (when,
// seq) therefore preserves global FIFO.
func (e *Engine) advanceBase(t uint64) {
	if t <= e.base {
		return
	}
	e.base = t
	top := t + ringSize
	// Pop-per-event promotion is optimal for the common small drizzle
	// (a refresh timer or two). When a big window jump promotes a large
	// slab — skip phases, warm-state restores — each pop costs O(log n)
	// against the full heap; past a few pops on a still-large heap it is
	// cheaper to partition once and re-heapify both halves in O(n).
	pops := 0
	for len(e.overflow) > 0 && e.overflow[0].when < top {
		e.ringPush(e.heapPop())
		pops++
		if pops >= promotePopLimit && len(e.overflow) >= promoteBatchMin && !e.popwisePromote {
			e.batchPromote(top)
			return
		}
	}
}

const (
	// promotePopLimit pops are tried one at a time before switching to
	// the batch path; small promotions never pay the partition cost.
	promotePopLimit = 8
	// promoteBatchMin is the heap size below which batching cannot win.
	promoteBatchMin = 32
)

// batchPromote splits the overflow heap into events inside the new
// ring window and the rest. The remainder is re-heapified in place in
// O(n), amortizing what would otherwise be a log-cost pop against it
// per promoted event. The promotable slab needs no heap order at all:
// within one ring window every bucket holds exactly one cycle, so
// per-bucket FIFO reduces to scheduling order — a flat sort by
// sequence number followed by a linear push reproduces exactly the
// (when, seq) arrival order pop-wise promotion would have produced.
func (e *Engine) batchPromote(top uint64) {
	src := e.overflow
	keep := e.overflow[:0]
	pr := e.promote[:0]
	if cap(pr) < len(src) {
		//ml:waive hotalloc -- scratch growth: kept in e.promote below, so capacity is retained across advances
		pr = make([]*event, 0, len(src))
	}
	for _, ev := range src {
		if ev.when < top {
			pr = append(pr, ev)
		} else {
			keep = append(keep, ev)
		}
	}
	for i := len(keep); i < len(src); i++ {
		src[i] = nil
	}
	heapify(keep)
	e.overflow = keep
	slices.SortFunc(pr, eventSeqOrder)
	for i, ev := range pr {
		e.ringPush(ev)
		pr[i] = nil
	}
	e.promote = pr[:0]
}

// eventSeqOrder sorts promoted events by scheduling order. seq is
// unique per event, so this total order needs no tie-break and the
// sort's stability does not matter. Named (not a literal) so the hot
// promotion path provably allocates no capture environment.
func eventSeqOrder(a, b *event) int {
	if a.seq < b.seq {
		return -1
	}
	return 1
}

// nextAt returns the cycle of the earliest pending event. By the ring
// invariant the ring minimum (when present) precedes every overflow
// event, so the scan order is ring first, then overflow top.
func (e *Engine) nextAt() (uint64, bool) {
	if e.ringCount > 0 {
		return e.nextRing(), true
	}
	if len(e.overflow) > 0 {
		return e.overflow[0].when, true
	}
	return 0, false
}

// NextEventAt exposes the earliest pending event cycle; host cores
// use it to skip fully-stalled stretches of simulated time in one
// jump instead of stepping cycle by cycle.
func (e *Engine) NextEventAt() (uint64, bool) { return e.nextAt() }

// RetryTarget resolves a cache.Refusal hint into the next cycle a
// refused core should retry at. Timer-bound refusals carry an exact
// retryAt > now and the core jumps straight there; event-bound ones
// (retryAt == 0, e.g. a full MSHR that frees only when a fill lands)
// resolve to the next pending calendar event. A refused access always
// implies a pending event — the fetch or write-back that will unblock
// it — so the now+1 fallback is defensive, never a busy-wait.
//
//ml:hotpath
func (e *Engine) RetryTarget(now, retryAt uint64) uint64 {
	if retryAt > now {
		return retryAt
	}
	if t, ok := e.nextAt(); ok && t > now {
		return t
	}
	return now + 1
}

// nextRing scans the occupancy bitmap circularly from base and maps
// the first set bit back to its absolute cycle. Callers guarantee
// ringCount > 0. Cost is at most occWords word tests.
func (e *Engine) nextRing() uint64 {
	baseIdx := e.base & ringMask
	wi := baseIdx >> 6
	bi := baseIdx & 63
	if w := e.occ[wi] >> bi; w != 0 {
		return e.base + uint64(bits.TrailingZeros64(w))
	}
	// Offset of the first bit of word wi+k from base is (64-bi) +
	// (k-1)*64. The final iteration wraps back into word wi; its high
	// bits (>= bi) are known zero from the check above, so the
	// unmasked scan still yields the correct circular offset.
	off := 64 - bi
	for k := uint64(1); k <= occWords; k++ {
		if w := e.occ[(wi+k)&(occWords-1)]; w != 0 {
			return e.base + off + (k-1)*64 + uint64(bits.TrailingZeros64(w))
		}
	}
	panic("sim: ring occupancy desynchronized")
}

// runCycle advances the clock to t and drains bucket t in FIFO order,
// including events scheduled for t by the handlers themselves. It
// returns the number of events executed.
func (e *Engine) runCycle(t uint64) uint64 {
	e.advanceBase(t)
	e.now = t
	idx := t & ringMask
	b := &e.ring[idx]
	var n uint64
	for b.head != nil {
		ev := b.head
		b.head = ev.next
		if b.head == nil {
			b.tail = nil
		}
		e.ringCount--
		e.executed++
		n++
		// Copy out and recycle before the call: the handler may
		// schedule immediately and reuse this node.
		fn, call := ev.fn, ev.call
		o1, o2, a0, a1 := ev.o1, ev.o2, ev.a0, ev.a1
		e.put(ev)
		if call != nil {
			call(t, o1, o2, a0, a1)
		} else {
			fn()
		}
	}
	e.occ[idx>>6] &^= 1 << (idx & 63)
	return n
}

// AdvanceTo moves the clock to cycle, executing every event due at or
// before it, in timestamp then FIFO order.
//
//ml:hotpath
func (e *Engine) AdvanceTo(cycle uint64) {
	for {
		t, ok := e.nextAt()
		if !ok || t > cycle {
			break
		}
		e.runCycle(t)
	}
	if cycle > e.now {
		e.now = cycle
		e.advanceBase(cycle)
	}
}

// Drain runs events until the calendar is empty or the clock would
// pass limit. It returns the number of events executed.
//
//ml:hotpath
func (e *Engine) Drain(limit uint64) uint64 {
	var n uint64
	for {
		t, ok := e.nextAt()
		if !ok || t > limit {
			break
		}
		n += e.runCycle(t)
	}
	return n
}

// Pending reports the number of events waiting in the calendar.
func (e *Engine) Pending() int { return e.ringCount + len(e.overflow) }

// Stats reports kernel counters.
func (e *Engine) Stats() (scheduled, executed uint64) {
	return e.scheduled, e.executed
}

// --- overflow min-heap, ordered by (when, seq) -----------------------
//
// Hand-rolled rather than container/heap to keep *event pointers out
// of interface conversions on the hot promotion path.

func overflowLess(a, b *event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(ev *event) {
	ev.next = nil
	//ml:waive hotalloc -- amortized growth of e.overflow; reassigned to the field below, capacity is retained
	h := append(e.overflow, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !overflowLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.overflow = h
}

// siftDown restores the heap property at index i of h.
func siftDown(h []*event, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && overflowLess(h[l], h[small]) {
			small = l
		}
		if r < n && overflowLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// heapify orders an arbitrary slice into a (when, seq) min-heap in
// O(n).
func heapify(h []*event) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

func (e *Engine) heapPop() *event {
	h := e.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && overflowLess(h[l], h[small]) {
			small = l
		}
		if r < n && overflowLess(h[r], h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	e.overflow = h
	return top
}

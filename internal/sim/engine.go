// Package sim implements the discrete-event simulation kernel that
// drives every MicroLib model. The kernel is deliberately minimal: a
// cycle counter and an event calendar. Components schedule callbacks
// at absolute or relative cycles; the host CPU model advances the
// clock one cycle at a time and lets the kernel drain the events due
// at each cycle boundary.
//
// Determinism: events scheduled for the same cycle run in FIFO order
// of scheduling, so a simulation is a pure function of its inputs.
package sim

import "container/heap"

// Event is a callback due at a specific cycle.
type event struct {
	when uint64
	seq  uint64
	fn   func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event   { return h[0] }
func (h eventHeap) empty() bool   { return len(h) == 0 }

// Engine is the event kernel. The zero value is ready to use at
// cycle 0.
type Engine struct {
	now    uint64
	seq    uint64
	events eventHeap

	scheduled uint64 // total events ever scheduled (stats)
	executed  uint64 // total events executed (stats)
}

// NewEngine returns a fresh kernel at cycle 0.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current cycle.
func (e *Engine) Now() uint64 { return e.now }

// At schedules fn to run when the clock reaches cycle. Scheduling in
// the past (cycle < Now) is a programming error and panics: silently
// reordering time would destroy determinism.
func (e *Engine) At(cycle uint64, fn func()) {
	if cycle < e.now {
		panic("sim: event scheduled in the past")
	}
	e.seq++
	e.scheduled++
	heap.Push(&e.events, event{when: cycle, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay uint64, fn func()) {
	e.At(e.now+delay, fn)
}

// AdvanceTo moves the clock to cycle, executing every event due at or
// before it, in timestamp then FIFO order.
func (e *Engine) AdvanceTo(cycle uint64) {
	for !e.events.empty() && e.events.peek().when <= cycle {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.when
		e.executed++
		ev.fn()
	}
	if cycle > e.now {
		e.now = cycle
	}
}

// Drain runs events until the calendar is empty or the clock would
// pass limit. It returns the number of events executed.
func (e *Engine) Drain(limit uint64) uint64 {
	var n uint64
	for !e.events.empty() && e.events.peek().when <= limit {
		ev := heap.Pop(&e.events).(event)
		e.now = ev.when
		e.executed++
		ev.fn()
		n++
	}
	return n
}

// Pending reports the number of events waiting in the calendar.
func (e *Engine) Pending() int { return len(e.events) }

// Stats reports kernel counters.
func (e *Engine) Stats() (scheduled, executed uint64) {
	return e.scheduled, e.executed
}

package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	eng := NewEngine()
	var got []uint64
	for _, d := range []uint64{5, 1, 3, 2, 4} {
		d := d
		eng.After(d, func() { got = append(got, d) })
	}
	eng.AdvanceTo(10)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("events out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d events, want 5", len(got))
	}
}

func TestSameCycleFIFO(t *testing.T) {
	eng := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(7, func() { got = append(got, i) })
	}
	eng.AdvanceTo(7)
	if !sort.IntsAreSorted(got) {
		t.Fatalf("same-cycle events not FIFO: %v", got)
	}
}

func TestPastSchedulingPanics(t *testing.T) {
	eng := NewEngine()
	eng.AdvanceTo(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	eng.At(5, func() {})
}

func TestAdvanceSetsNow(t *testing.T) {
	eng := NewEngine()
	eng.AdvanceTo(42)
	if eng.Now() != 42 {
		t.Fatalf("Now=%d, want 42", eng.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	eng := NewEngine()
	var fired []uint64
	eng.At(5, func() {
		fired = append(fired, eng.Now())
		eng.After(3, func() { fired = append(fired, eng.Now()) })
	})
	eng.AdvanceTo(20)
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 8 {
		t.Fatalf("nested events: %v", fired)
	}
}

func TestDrainLimit(t *testing.T) {
	eng := NewEngine()
	ran := 0
	for i := uint64(1); i <= 10; i++ {
		eng.At(i, func() { ran++ })
	}
	n := eng.Drain(5)
	if n != 5 || ran != 5 {
		t.Fatalf("drained %d/%d, want 5", n, ran)
	}
	if eng.Pending() != 5 {
		t.Fatalf("pending %d, want 5", eng.Pending())
	}
}

func TestStats(t *testing.T) {
	eng := NewEngine()
	eng.After(1, func() {})
	eng.After(2, func() {})
	eng.AdvanceTo(3)
	sched, exec := eng.Stats()
	if sched != 2 || exec != 2 {
		t.Fatalf("stats %d/%d, want 2/2", sched, exec)
	}
}

// TestPropertyTimestampMonotonic checks, over random schedules, that
// handlers observe a non-decreasing clock.
func TestPropertyTimestampMonotonic(t *testing.T) {
	err := quick.Check(func(delays []uint8) bool {
		eng := NewEngine()
		last := uint64(0)
		ok := true
		for _, d := range delays {
			eng.After(uint64(d%32), func() {
				if eng.Now() < last {
					ok = false
				}
				last = eng.Now()
			})
		}
		eng.AdvanceTo(64)
		return ok
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

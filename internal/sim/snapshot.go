package sim

import (
	"fmt"
	"reflect"
	"sort"
)

// This file implements the calendar side of warm-state checkpointing:
// every pending event is reduced to plain data — its cycle, its global
// sequence number, the *name* of its static Func, a symbolic reference
// per operand and the two scalar words — and rebuilt bit-identically
// from that data into a fresh (or reset) engine. Restored simulations
// replay the exact event order of a live run because both the (when,
// seq) keys and the engine's own seq counter are preserved.

// OpRef is a serializable reference to an event operand. Kind names
// the owning component family ("cache", "l1fetch", "core", ...); Idx
// disambiguates instances or pooled nodes within it. The zero OpRef
// means a nil operand.
type OpRef struct {
	Kind string
	Idx  uint64
}

// IsZero reports whether the reference is the nil-operand marker.
func (r OpRef) IsZero() bool { return r.Kind == "" && r.Idx == 0 }

var (
	funcNames  = map[uintptr]string{}
	funcByName = map[string]Func{}
)

// RegisterFunc enters a static event Func into the serialization
// registry under a stable name. Every Func that can be pending at a
// checkpoint boundary must be registered (package init functions do
// this); Snapshot fails loudly on an unregistered one. Registration is
// idempotent for the same (name, fn) pair and panics on conflicts —
// a silently remapped callback would corrupt restored runs.
func RegisterFunc(name string, fn Func) {
	if name == "" || fn == nil {
		panic("sim: RegisterFunc needs a name and a func")
	}
	p := reflect.ValueOf(fn).Pointer()
	if old, ok := funcNames[p]; ok && old != name {
		panic("sim: func already registered as " + old)
	}
	if _, taken := funcByName[name]; taken && funcNames[p] != name {
		panic("sim: duplicate func name " + name)
	}
	funcNames[p] = name
	funcByName[name] = fn
}

// EventState is one pending calendar event in serializable form.
type EventState struct {
	When uint64
	Seq  uint64
	Func string
	O1   OpRef
	O2   OpRef
	A0   uint64
	A1   uint64
}

// EngineState is the full serializable kernel state. Events are sorted
// by (When, Seq), i.e. global firing order.
type EngineState struct {
	Now       uint64
	Seq       uint64
	Base      uint64
	Scheduled uint64
	Executed  uint64
	Events    []EventState
}

// Snapshot captures every pending event. resolve maps an operand value
// to its OpRef (returning false when it does not recognize the value);
// it is never called for nil operands. Snapshot fails if any pending
// event was scheduled through the legacy closure entry points (At /
// After) — closures have no serializable identity — or carries an
// unregistered Func.
func (e *Engine) Snapshot(resolve func(any) (OpRef, bool)) (EngineState, error) {
	evs := make([]*event, 0, e.Pending())
	for i := range e.ring {
		for ev := e.ring[i].head; ev != nil; ev = ev.next {
			evs = append(evs, ev)
		}
	}
	evs = append(evs, e.overflow...)
	sort.Slice(evs, func(i, j int) bool { return overflowLess(evs[i], evs[j]) })

	out := make([]EventState, 0, len(evs))
	for _, ev := range evs {
		if ev.call == nil {
			return EngineState{}, fmt.Errorf("sim: closure event pending at cycle %d cannot be serialized", ev.when)
		}
		name, ok := funcNames[reflect.ValueOf(ev.call).Pointer()]
		if !ok {
			return EngineState{}, fmt.Errorf("sim: unregistered event func pending at cycle %d", ev.when)
		}
		es := EventState{When: ev.when, Seq: ev.seq, Func: name, A0: ev.a0, A1: ev.a1}
		if ev.o1 != nil {
			r, ok := resolve(ev.o1)
			if !ok {
				return EngineState{}, fmt.Errorf("sim: unresolvable operand %T on %s@%d", ev.o1, name, ev.when)
			}
			es.O1 = r
		}
		if ev.o2 != nil {
			r, ok := resolve(ev.o2)
			if !ok {
				return EngineState{}, fmt.Errorf("sim: unresolvable operand %T on %s@%d", ev.o2, name, ev.when)
			}
			es.O2 = r
		}
		out = append(out, es)
	}
	return EngineState{
		Now: e.now, Seq: e.seq, Base: e.base,
		Scheduled: e.scheduled, Executed: e.executed,
		Events: out,
	}, nil
}

// Restore rebuilds the calendar from a snapshot, resolving operand
// references back to live values via resolve (never called for zero
// refs). The engine is Reset first; afterwards its clock, sequence
// counter and event order are bit-identical to the snapshotted one.
func (e *Engine) Restore(st EngineState, resolve func(OpRef) (any, bool)) error {
	e.Reset()
	e.now = st.Now
	e.seq = st.Seq
	e.base = st.Base
	e.scheduled = st.Scheduled
	e.executed = st.Executed
	for i := range st.Events {
		es := &st.Events[i]
		fn, ok := funcByName[es.Func]
		if !ok {
			return fmt.Errorf("sim: snapshot references unknown func %q", es.Func)
		}
		ev := e.get()
		ev.call = fn
		ev.when = es.When
		ev.seq = es.Seq
		ev.a0, ev.a1 = es.A0, es.A1
		if !es.O1.IsZero() {
			v, ok := resolve(es.O1)
			if !ok {
				e.put(ev)
				return fmt.Errorf("sim: unresolvable ref %v on %s@%d", es.O1, es.Func, es.When)
			}
			ev.o1 = v
		}
		if !es.O2.IsZero() {
			v, ok := resolve(es.O2)
			if !ok {
				e.put(ev)
				return fmt.Errorf("sim: unresolvable ref %v on %s@%d", es.O2, es.Func, es.When)
			}
			ev.o2 = v
		}
		// Events arrive in (when, seq) order, so pushing directly
		// reproduces bucket FIFO order and a valid overflow heap.
		if ev.when < e.base+ringSize {
			e.ringPush(ev)
		} else {
			e.heapPush(ev)
		}
	}
	return nil
}

// Reset returns the engine to the zero state (cycle 0, empty calendar)
// while keeping the node freelist and slice capacities, so a reused
// engine schedules without reallocating.
func (e *Engine) Reset() {
	for i := range e.ring {
		for ev := e.ring[i].head; ev != nil; {
			next := ev.next
			e.put(ev)
			ev = next
		}
		e.ring[i] = bucket{}
	}
	for i, ev := range e.overflow {
		e.put(ev)
		e.overflow[i] = nil
	}
	e.overflow = e.overflow[:0]
	e.occ = [occWords]uint64{}
	e.ringCount = 0
	e.now, e.seq, e.base = 0, 0, 0
	e.scheduled, e.executed = 0, 0
}

package sim

// RunSteadyState drives the canonical kernel steady-state workload:
// n near-future events scheduled through the closure path (pooled ==
// false) or the pooled AfterFunc path (pooled == true), drained in
// 64-cycle strides, then a final drain. The sim microbenchmarks, the
// root-package benchmarks and the mlbench CI allocation gate all call
// this one definition, so the workload the gate measures cannot
// silently drift from the documented/benchmarked one. It returns the
// number of events that fired.
func RunSteadyState(eng *Engine, n int, pooled bool) uint64 {
	var fired uint64
	if pooled {
		fn := Func(func(now uint64, o1, o2 any, a0, a1 uint64) { fired += a0 })
		for i := 0; i < n; i++ {
			eng.AfterFunc(uint64(i%64)+1, fn, nil, nil, 1, 0)
			if i%64 == 63 {
				eng.Drain(eng.Now() + 64)
			}
		}
	} else {
		fn := func() { fired++ }
		for i := 0; i < n; i++ {
			eng.After(uint64(i%64)+1, fn)
			if i%64 == 63 {
				eng.Drain(eng.Now() + 64)
			}
		}
	}
	eng.Drain(eng.Now() + 128)
	return fired
}

// RunSlabPromotion drives the window-jump promotion workload: slab
// far-future events (spread over ~1k cycles with same-cycle
// collisions) land in the overflow heap, then a single AdvanceTo
// jumps the ring window across all of them at once — the pattern skip
// phases and warm-state restores produce. With popwise true the
// engine promotes one heap pop at a time (the pre-batching
// algorithm); with false the batch partition-and-reheapify path
// kicks in past the pop limit. The two orders are identical, so the
// pair prices the batch optimization on the same workload. Returns
// the number of events that fired.
func RunSlabPromotion(eng *Engine, slab int, popwise bool) uint64 {
	eng.popwisePromote = popwise
	var fired uint64
	fn := Func(func(now uint64, o1, o2 any, a0, a1 uint64) { fired += a0 })
	for i := 0; i < slab; i++ {
		eng.AfterFunc(ringSize+uint64(i%1024), fn, nil, nil, 1, 0)
	}
	eng.AdvanceTo(eng.Now() + ringSize + 1024)
	eng.popwisePromote = false
	return fired
}

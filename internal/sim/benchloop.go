package sim

// RunSteadyState drives the canonical kernel steady-state workload:
// n near-future events scheduled through the closure path (pooled ==
// false) or the pooled AfterFunc path (pooled == true), drained in
// 64-cycle strides, then a final drain. The sim microbenchmarks, the
// root-package benchmarks and the mlbench CI allocation gate all call
// this one definition, so the workload the gate measures cannot
// silently drift from the documented/benchmarked one. It returns the
// number of events that fired.
func RunSteadyState(eng *Engine, n int, pooled bool) uint64 {
	var fired uint64
	if pooled {
		fn := Func(func(now uint64, o1, o2 any, a0, a1 uint64) { fired += a0 })
		for i := 0; i < n; i++ {
			eng.AfterFunc(uint64(i%64)+1, fn, nil, nil, 1, 0)
			if i%64 == 63 {
				eng.Drain(eng.Now() + 64)
			}
		}
	} else {
		fn := func() { fired++ }
		for i := 0; i < n; i++ {
			eng.After(uint64(i%64)+1, fn)
			if i%64 == 63 {
				eng.Drain(eng.Now() + 64)
			}
		}
	}
	eng.Drain(eng.Now() + 128)
	return fired
}

package sim

import "testing"

// BenchmarkAfterDrain is the canonical kernel steady state (see
// RunSteadyState): schedule near-future events through the closure
// API and drain them. The hoisted closure makes the measurement the
// kernel's own cost; the CI bench gate requires 0 allocs/op here.
func BenchmarkAfterDrain(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	if RunSteadyState(eng, b.N, false) == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkAfterFuncDrain measures the pooled static-trampoline path
// used by the hot components.
func BenchmarkAfterFuncDrain(b *testing.B) {
	eng := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	if RunSteadyState(eng, b.N, true) == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkOverflowPromotion schedules exclusively beyond the ring
// window, forcing every event through the overflow heap and the
// promotion path.
func BenchmarkOverflowPromotion(b *testing.B) {
	eng := NewEngine()
	n := 0
	fn := func() { n++ }
	// Prime the node pool and heap backing to the steady-state
	// backlog (~2*ringSize events in flight).
	for i := 0; i < 4*ringSize; i++ {
		eng.After(ringSize+uint64(i%1024), fn)
		if i%64 == 63 {
			eng.AdvanceTo(eng.Now() + 64)
		}
	}
	eng.AdvanceTo(eng.Now() + 16*ringSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(ringSize+uint64(i%1024), fn)
		if i%64 == 63 {
			eng.AdvanceTo(eng.Now() + 64)
		}
	}
	eng.AdvanceTo(eng.Now() + 16*ringSize)
	if n == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkSlabPromotion measures a window jump promoting a whole
// slab of overflow events at once (skip phases, warm-state restores)
// through the batch partition-and-reheapify path.
func BenchmarkSlabPromotion(b *testing.B) {
	eng := NewEngine()
	RunSlabPromotion(eng, 4096, false) // prime pools and scratch
	b.ReportAllocs()
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		fired += RunSlabPromotion(eng, 4096, false)
	}
	if fired == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkSlabPromotionPopwise runs the identical workload with
// promotion pinned to one-at-a-time heap pops — the baseline the
// batch path is priced against (mlbench records the delta).
func BenchmarkSlabPromotionPopwise(b *testing.B) {
	eng := NewEngine()
	RunSlabPromotion(eng, 4096, true)
	b.ReportAllocs()
	b.ResetTimer()
	var fired uint64
	for i := 0; i < b.N; i++ {
		fired += RunSlabPromotion(eng, 4096, true)
	}
	if fired == 0 {
		b.Fatal("no events ran")
	}
}

// BenchmarkIdleAdvance measures jumping the clock across dead time
// with one far event pending — the engine half of idle-cycle
// skipping.
func BenchmarkIdleAdvance(b *testing.B) {
	eng := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.After(100_000, fn)
		eng.AdvanceTo(eng.Now() + 100_000)
	}
}

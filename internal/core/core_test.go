package core

import (
	"testing"
)

func TestParamsGet(t *testing.T) {
	p := Params{"queue": 7}
	if p.Get("queue", 1) != 7 {
		t.Fatal("existing key")
	}
	if p.Get("missing", 42) != 42 {
		t.Fatal("default")
	}
	var nilP Params
	if nilP.Get("x", 3) != 3 {
		t.Fatal("nil params")
	}
}

type fakeMech struct{ name string }

func (f fakeMech) Name() string { return f.name }

func TestRegistry(t *testing.T) {
	Register(Description{Name: "test-mech-a", Level: "L1", Year: 2026, Summary: "test"},
		func(env *Env, p Params) (Mechanism, error) {
			return fakeMech{"test-mech-a"}, nil
		})
	m, err := New("test-mech-a", &Env{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "test-mech-a" {
		t.Fatal("wrong mechanism")
	}
	if _, err := New("no-such-mech", &Env{}, nil); err == nil {
		t.Fatal("unknown mechanism accepted")
	}
	d, ok := Describe("test-mech-a")
	if !ok || d.Year != 2026 {
		t.Fatalf("describe: %+v %v", d, ok)
	}
	found := false
	for _, n := range Names() {
		if n == "test-mech-a" {
			found = true
		}
	}
	if !found {
		t.Fatal("not listed")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register(Description{Name: "test-mech-dup"}, func(env *Env, p Params) (Mechanism, error) {
		return fakeMech{}, nil
	})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration accepted")
		}
	}()
	Register(Description{Name: "test-mech-dup"}, nil)
}

func TestDescriptionsSorted(t *testing.T) {
	Register(Description{Name: "test-z", Year: 1990}, func(env *Env, p Params) (Mechanism, error) { return fakeMech{}, nil })
	Register(Description{Name: "test-a", Year: 2010}, func(env *Env, p Params) (Mechanism, error) { return fakeMech{}, nil })
	ds := Descriptions()
	for i := 1; i < len(ds); i++ {
		if ds[i].Year < ds[i-1].Year {
			t.Fatalf("descriptions not year-sorted: %v", ds)
		}
	}
}

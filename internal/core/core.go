// Package core is the MicroLib module framework — the paper's
// primary contribution (its Section 4). It defines the contract
// between pluggable micro-architecture mechanism modules and the host
// simulator: an environment handle giving a mechanism access to the
// cache levels, the clock and the memory value oracle; a registry
// that maps mechanism names ("GHB", "DBCP", ...) to factories; and
// the hardware-table descriptors the cost/power models consume.
//
// A mechanism is any value registered here that implements at least
// one of the cache hook interfaces (cache.AccessObserver,
// cache.AuxProber, cache.EvictObserver, cache.FillObserver,
// cache.MissObserver). Host processor models — MicroLib's own cores
// or foreign simulators behind a wrapper — only ever deal with the
// Mechanism interface, which is what makes the quantitative
// comparison of Table 2's twelve mechanisms a one-line configuration
// change.
package core

import (
	"fmt"
	"sort"

	"microlib/internal/cache"
	"microlib/internal/sim"
)

// ValueSource supplies memory contents. The paper's OoOSysC model
// "actually performs all computations", so its caches hold real
// values; mechanisms that inspect data (content-directed prefetching,
// the frequent value cache) read line words through this interface.
type ValueSource interface {
	// Word returns the 8-byte value stored at the (aligned) address.
	Word(addr uint64) uint64
	// IsPointer reports whether the value at addr decodes to a heap
	// address under the running program's memory map.
	IsPointer(addr uint64) (target uint64, ok bool)
}

// Env is what a mechanism receives at construction: attach points and
// services. L1D and L2 are always present; Values may be nil when the
// host cannot supply contents (the SimpleScalar wrapper case — the
// paper notes value-dependent mechanisms then cannot run).
type Env struct {
	Eng    *sim.Engine
	L1D    *cache.Cache
	L2     *cache.Cache
	Values ValueSource
}

// Params carries per-mechanism integer options (table sizes, queue
// depths, variant switches). Missing keys fall back to defaults.
type Params map[string]int

// Get returns the value for key or def when absent.
func (p Params) Get(key string, def int) int {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Mechanism is a pluggable micro-architecture optimization.
type Mechanism interface {
	// Name returns the registry name (e.g. "GHB").
	Name() string
}

// HWTable describes one SRAM structure a mechanism adds, with its
// observed activity; the hwcost package turns these into area and
// energy. Reads/Writes are cumulative access counts.
type HWTable struct {
	Label  string
	Bytes  int
	Assoc  int // 0 = fully associative
	Ports  int
	Reads  uint64
	Writes uint64
}

// CostModeler is implemented by mechanisms that add hardware; the
// Figure 5 experiment consumes it.
type CostModeler interface {
	Hardware() []HWTable
}

// Snapshotter is implemented by mechanisms whose internal state must
// travel in warm-state checkpoints. SnapState returns a self-contained
// serializable value (a plain-data State type the mechanism's package
// registers with encoding/gob); RestoreState overwrites the
// mechanism's state from a value previously returned by SnapState on
// an identically-configured instance. The runner refuses to checkpoint
// a machine whose mechanism does not implement the interface, so a
// mechanism without it silently opts its cells out of prefix sharing
// rather than producing wrong results.
type Snapshotter interface {
	SnapState() any
	RestoreState(st any) error
}

// Factory builds a mechanism inside an environment.
type Factory func(env *Env, p Params) (Mechanism, error)

// Description documents a registered mechanism for listings
// (Table 2's rows).
type Description struct {
	Name    string
	Level   string // "L1" or "L2"
	Year    int    // publication year, for the progress-over-time plot
	Summary string
	// Params declares the construction parameter keys the mechanism's
	// factory understands (the Table 3 second-guessable knobs).
	// Callers that accept user-written parameter maps (campaign
	// specs, CLIs) validate keys against this list, so a misspelled
	// key fails loudly instead of silently using the default.
	Params []string
	// NeedsValues marks mechanisms that inspect memory contents
	// (Env.Values): they cannot run on hosts without a value source,
	// such as recorded-trace workloads. Declaring it lets planners
	// reject the combination up front instead of failing every cell
	// at run time.
	NeedsValues bool
}

// HasParam reports whether the mechanism declares the parameter key.
func (d Description) HasParam(key string) bool {
	for _, p := range d.Params {
		if p == key {
			return true
		}
	}
	return false
}

type registration struct {
	desc    Description
	factory Factory
}

var registry = map[string]registration{}

// Register installs a mechanism factory under desc.Name. It panics on
// duplicates: registration happens in package init, where a collision
// is a build error, not a runtime condition.
func Register(desc Description, f Factory) {
	if _, dup := registry[desc.Name]; dup {
		panic("core: duplicate mechanism registration: " + desc.Name)
	}
	registry[desc.Name] = registration{desc: desc, factory: f}
}

// New instantiates the named mechanism in env.
func New(name string, env *Env, p Params) (Mechanism, error) {
	reg, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("core: unknown mechanism %q", name)
	}
	return reg.factory(env, p)
}

// Names returns the registered mechanism names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Describe returns the registered description.
func Describe(name string) (Description, bool) {
	r, ok := registry[name]
	return r.desc, ok
}

// Descriptions returns all registered descriptions sorted by year
// then name — the order of the paper's Table 2.
func Descriptions() []Description {
	out := make([]Description, 0, len(registry))
	for _, r := range registry {
		out = append(out, r.desc)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Year != out[j].Year {
			return out[i].Year < out[j].Year
		}
		return out[i].Name < out[j].Name
	})
	return out
}

package cfgreg

import (
	"reflect"
	"strconv"
	"strings"
	"testing"

	"microlib/internal/cache"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/mem"
)

func defaultTarget() Target {
	h, c := hier.DefaultConfig(), cpu.DefaultConfig()
	return Target{Hier: &h, CPU: &c}
}

// configStructs are the value structs whose exported fields the
// registry must account for.
var configStructs = []any{hier.Config{}, cpu.Config{}, cache.Config{}, mem.SDRAMConfig{}}

// TestRegistryComplete is the wiring gate: every exported field of
// every config struct is either reachable through a registered path
// or exempted with a reason. Adding a knob to a config struct without
// registering (or exempting) it fails here, loudly.
func TestRegistryComplete(t *testing.T) {
	covered := map[string]bool{}
	for _, f := range registry {
		for _, tok := range f.covers {
			covered[tok] = true
		}
	}

	all := map[string]bool{}
	for _, s := range configStructs {
		rt := reflect.TypeOf(s)
		for i := 0; i < rt.NumField(); i++ {
			field := rt.Field(i)
			if !field.IsExported() {
				continue
			}
			tok := rt.String() + "." + field.Name
			all[tok] = true
			if covered[tok] {
				continue
			}
			if reason, ok := Exemptions[tok]; ok {
				if reason == "" {
					t.Errorf("%s: exemption without a reason", tok)
				}
				continue
			}
			t.Errorf("%s: not reachable from any registered path and not exempted — wire it into cfgreg or add an Exemptions entry", tok)
		}
	}

	// Hygiene in the other direction: a covers token or exemption that
	// no longer names a real field is stale.
	for tok := range covered {
		if !all[tok] {
			t.Errorf("covers token %s does not match any exported config field (typo or removed field)", tok)
		}
	}
	for tok := range Exemptions {
		if !all[tok] {
			t.Errorf("exemption %s does not match any exported config field (stale)", tok)
		}
		if covered[tok] {
			t.Errorf("%s is both registered and exempted — drop the exemption", tok)
		}
	}
}

// TestRoundTrip sets every registered path to a value distinct from
// its Table 1 default and reads it back: Get(Set(x)) == x, and the
// default target is genuinely changed.
func TestRoundTrip(t *testing.T) {
	for _, f := range Fields() {
		def, err := Get(defaultTarget(), f.Path)
		if err != nil {
			t.Fatalf("%s: %v", f.Path, err)
		}
		for _, v := range alternatives(t, f, def) {
			tgt := defaultTarget()
			if err := Set(tgt, f.Path, v); err != nil {
				t.Errorf("%s: set %q: %v", f.Path, v, err)
				continue
			}
			got, err := Get(tgt, f.Path)
			if err != nil {
				t.Fatalf("%s: %v", f.Path, err)
			}
			if got != v {
				t.Errorf("%s: set %q, read back %q", f.Path, v, got)
			}
		}
	}
}

// alternatives picks valid values distinct from the default for a
// field, exercising each kind's parser.
func alternatives(t *testing.T, f Field, def string) []string {
	t.Helper()
	switch f.Kind {
	case "bool":
		if def == "true" {
			return []string{"false"}
		}
		return []string{"true"}
	case "enum":
		var out []string
		for _, name := range f.Enum {
			if name != def {
				out = append(out, name)
			}
		}
		if len(out) == 0 {
			t.Fatalf("%s: enum with a single value", f.Path)
		}
		return out
	case "int", "uint":
		// Doubling preserves positivity and power-of-two-ness; 0 would
		// trip positivity checks, so a doubled default is always legal
		// unless the default itself is 0 (then pick 2).
		v, err := strconv.ParseUint(def, 10, 63)
		if err != nil {
			t.Fatalf("%s: non-numeric default %q", f.Path, def)
		}
		if v == 0 {
			return []string{"2"}
		}
		return []string{strconv.FormatUint(v*2, 10)}
	}
	t.Fatalf("%s: unknown kind %q", f.Path, f.Kind)
	return nil
}

func TestUnknownPath(t *testing.T) {
	if err := Set(defaultTarget(), "cpu.rru", "64"); err == nil || !strings.Contains(err.Error(), "unknown config field") {
		t.Fatalf("want unknown-path error, got %v", err)
	}
	if _, err := Get(defaultTarget(), "hier.l3.size"); err == nil {
		t.Fatal("unknown path accepted by Get")
	}
	if err := Validate("nope", "1"); err == nil {
		t.Fatal("unknown path accepted by Validate")
	}
}

func TestRejectsBadValues(t *testing.T) {
	cases := []struct {
		path, value, want string
	}{
		{"cpu.ruu", "banana", "not an integer"},
		{"cpu.ruu", "0", "positive"},
		{"cpu.ruu", "-4", "positive"},
		{"hier.l1d.line-size", "48", "power of two"},
		{"hier.l1d.assoc", "-1", "negative"},
		{"hier.l1d.hit-latency", "-1", "not a non-negative integer"},
		{"hier.l1d.write-back", "yes", "not a bool"},
		{"hier.mem.kind", "sdram17", "have sdram, const70, sdram70"},
		{"hier.sdram.policy", "row-hit", "have fcfs, row-hit-first"},
		{"hier.sdram.interleave", "xor", "have linear, permute"},
		{"hier.fsb.bytes", "0", "power of two"},
	}
	for _, tc := range cases {
		err := Set(defaultTarget(), tc.path, tc.value)
		if err == nil {
			t.Errorf("%s=%s accepted", tc.path, tc.value)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s=%s: error %q does not mention %q", tc.path, tc.value, err, tc.want)
		}
		if !strings.Contains(err.Error(), tc.path) {
			t.Errorf("%s=%s: error %q does not name the path", tc.path, tc.value, err)
		}
	}
}

// TestValidateNeedsNoTarget checks the plan-time entry point used by
// campaign normalization.
func TestValidateNeedsNoTarget(t *testing.T) {
	if err := Validate("cpu.ruu", "64"); err != nil {
		t.Fatal(err)
	}
	if err := Validate("cpu.ruu", "0"); err == nil {
		t.Fatal("zero window accepted")
	}
}

// TestSetReachesBuildConfig spot-checks that paths write the struct
// fields the simulator actually builds from.
func TestSetReachesBuildConfig(t *testing.T) {
	tgt := defaultTarget()
	for path, value := range map[string]string{
		"hier.l1d.size":          "65536",
		"hier.l2.assoc":          "8",
		"hier.mem.kind":          "const70",
		"hier.sdram.cas-latency": "20",
		"hier.fsb.cpu-cycles":    "4",
		"cpu.ruu":                "32",
		"cpu.lsq":                "16",
	} {
		if err := Set(tgt, path, value); err != nil {
			t.Fatal(err)
		}
	}
	if tgt.Hier.L1D.Size != 65536 || tgt.Hier.L2.Assoc != 8 {
		t.Errorf("cache fields not written: %+v", tgt.Hier.L1D)
	}
	if tgt.Hier.Memory != hier.MemConst70 {
		t.Errorf("memory kind not written: %v", tgt.Hier.Memory)
	}
	if tgt.Hier.SDRAM.CASLatency != 20 || tgt.Hier.FSBCPUCycles != 4 {
		t.Errorf("sdram/bus fields not written")
	}
	if tgt.CPU.RUUSize != 32 || tgt.CPU.LSQSize != 16 {
		t.Errorf("cpu fields not written: %+v", tgt.CPU)
	}
}

// Package cfgreg is the config-field registry: every tunable knob of
// the simulated system — cache geometry, bus widths, SDRAM device
// timing, memory-model selection, CPU window sizes and widths — is
// addressable by a dotted path ("hier.l1d.size", "cpu.ruu",
// "hier.sdram.cas-latency") with a typed getter/setter over the
// existing hier.Config and cpu.Config value structs.
//
// The registry is what turns the configuration space from three named
// hierarchy variants into the full grid: the campaign engine's
// "fields" axis sweeps any registered path as a first-class axis, the
// CLIs' repeatable -set flag pins any path for a single run, and
// `mlcampaign paths` prints the complete table. Per-field validation
// (enum names, positivity, power-of-two where the model requires it)
// runs at set time, so a bad sweep value fails at plan/validate time
// rather than inside a worker; cross-field constraints (cache size
// divisible by line size, power-of-two set counts) remain with the
// config structs' own Check methods, which runner.Options.Validate
// applies after every field has been resolved.
//
// A reflection-driven completeness test (cfgreg_test.go) asserts
// that every exported field of hier.Config, cpu.Config, cache.Config
// and mem.SDRAMConfig is either reachable through a registered path
// or listed in Exemptions with a reason — a config knob added without
// registry wiring fails the build loudly.
package cfgreg

import (
	"fmt"
	"sort"
	"strconv"

	"microlib/internal/cache"
	"microlib/internal/cpu"
	"microlib/internal/hier"
	"microlib/internal/mem"
)

// Target is the set of config structs a path resolves into. Both
// pointers must be non-nil; runner.Options embeds the structs by
// value, so callers pass &opts.Hier and &opts.CPU.
type Target struct {
	Hier *hier.Config
	CPU  *cpu.Config
}

// Field describes one registered config field.
type Field struct {
	// Path is the dotted address ("hier.l1d.size").
	Path string
	// Kind is the value type: "int", "uint", "bool" or "enum".
	Kind string
	// Enum lists the valid value names when Kind is "enum".
	Enum []string
	// Doc is a one-line description for the generated path table.
	Doc string

	// covers lists the "pkg.Type.Field" tokens this path reaches; the
	// completeness test checks the union against reflection.
	covers []string
	get    func(Target) string
	set    func(Target, string) error
}

var registry = map[string]*Field{}

func register(f *Field) {
	if _, dup := registry[f.Path]; dup {
		panic("cfgreg: duplicate path " + f.Path)
	}
	registry[f.Path] = f
}

// Paths returns every registered path, sorted.
func Paths() []string {
	out := make([]string, 0, len(registry))
	for p := range registry {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Fields returns every registered field, sorted by path.
func Fields() []Field {
	out := make([]Field, 0, len(registry))
	for _, p := range Paths() {
		out = append(out, *registry[p])
	}
	return out
}

// Lookup returns a registered field by path.
func Lookup(path string) (Field, bool) {
	f, ok := registry[path]
	if !ok {
		return Field{}, false
	}
	return *f, true
}

// unknownPath names the failure every caller shares: a typo'd path
// must point the user at the generated table, not guess.
func unknownPath(path string) error {
	return fmt.Errorf("cfgreg: unknown config field %q (mlcampaign paths prints the full registry)", path)
}

// Get returns the current value of a path on the target, in the
// canonical string form Set accepts.
func Get(t Target, path string) (string, error) {
	f, ok := registry[path]
	if !ok {
		return "", unknownPath(path)
	}
	return f.get(t), nil
}

// Set parses value and writes it through to the target, running the
// field's own validation. The error names the path and, for enums,
// the valid value set.
func Set(t Target, path, value string) error {
	f, ok := registry[path]
	if !ok {
		return unknownPath(path)
	}
	if err := f.set(t, value); err != nil {
		return fmt.Errorf("cfgreg: %s: %w", path, err)
	}
	return nil
}

// Validate parses value against a path's checks without needing a
// target (a scratch Table 1 default absorbs the write). Campaign
// normalization uses it so an out-of-range sweep value fails spec
// validation, before any plan is expanded.
func Validate(path, value string) error {
	if _, ok := registry[path]; !ok {
		return unknownPath(path)
	}
	h, c := hier.DefaultConfig(), cpu.DefaultConfig()
	return Set(Target{Hier: &h, CPU: &c}, path, value)
}

// --- field constructors ---

// checkFn validates a parsed integer value field-locally.
type checkFn func(int64) error

func positive(v int64) error {
	if v <= 0 {
		return fmt.Errorf("must be positive")
	}
	return nil
}

func nonNegative(v int64) error {
	if v < 0 {
		return fmt.Errorf("must not be negative")
	}
	return nil
}

func powerOfTwo(v int64) error {
	if v <= 0 || v&(v-1) != 0 {
		return fmt.Errorf("must be a positive power of two")
	}
	return nil
}

func intField(path, doc string, covers []string, acc func(Target) *int, check checkFn) {
	register(&Field{
		Path: path, Kind: "int", Doc: doc, covers: covers,
		get: func(t Target) string { return strconv.Itoa(*acc(t)) },
		set: func(t Target, s string) error {
			v, err := strconv.ParseInt(s, 10, 0)
			if err != nil {
				return fmt.Errorf("%q is not an integer", s)
			}
			if err := check(v); err != nil {
				return fmt.Errorf("%d %w", v, err)
			}
			*acc(t) = int(v)
			return nil
		},
	})
}

func uintField(path, doc string, covers []string, acc func(Target) *uint64, check checkFn) {
	register(&Field{
		Path: path, Kind: "uint", Doc: doc, covers: covers,
		get: func(t Target) string { return strconv.FormatUint(*acc(t), 10) },
		set: func(t Target, s string) error {
			v, err := strconv.ParseUint(s, 10, 63)
			if err != nil {
				return fmt.Errorf("%q is not a non-negative integer", s)
			}
			if err := check(int64(v)); err != nil {
				return fmt.Errorf("%d %w", v, err)
			}
			*acc(t) = v
			return nil
		},
	})
}

func boolField(path, doc string, covers []string, acc func(Target) *bool) {
	register(&Field{
		Path: path, Kind: "bool", Doc: doc, covers: covers,
		get: func(t Target) string { return strconv.FormatBool(*acc(t)) },
		set: func(t Target, s string) error {
			switch s {
			case "true":
				*acc(t) = true
			case "false":
				*acc(t) = false
			default:
				return fmt.Errorf("%q is not a bool (have true, false)", s)
			}
			return nil
		},
	})
}

// enumField registers a named-value field over parse/name functions
// (the enum's own canonical forms).
func enumField(path, doc string, covers, names []string, get func(Target) string, set func(Target, string) error) {
	register(&Field{
		Path: path, Kind: "enum", Enum: names, Doc: doc, covers: covers,
		get: get,
		set: set,
	})
}

// --- the registered namespace ---

func init() {
	registerCaches()
	registerMemory()
	registerSDRAM()
	registerBuses()
	registerCPU()
}

// registerCaches maps the three cache levels under hier.l1d, hier.l1i
// and hier.l2. One subtree per level; each carries the same
// cache.Config field set.
func registerCaches() {
	levels := []struct {
		prefix string
		label  string
		covers string // the hier.Config field the subtree reaches
		sel    func(Target) *cache.Config
	}{
		{"hier.l1d", "L1 data cache", "hier.Config.L1D", func(t Target) *cache.Config { return &t.Hier.L1D }},
		{"hier.l1i", "L1 instruction cache", "hier.Config.L1I", func(t Target) *cache.Config { return &t.Hier.L1I }},
		{"hier.l2", "unified L2 cache", "hier.Config.L2", func(t Target) *cache.Config { return &t.Hier.L2 }},
	}
	for _, lv := range levels {
		sel := lv.sel
		cov := func(field string) []string {
			return []string{lv.covers, "cache.Config." + field}
		}
		intField(lv.prefix+".size", lv.label+" total bytes", cov("Size"),
			func(t Target) *int { return &sel(t).Size }, positive)
		intField(lv.prefix+".line-size", lv.label+" line size in bytes", cov("LineSize"),
			func(t Target) *int { return &sel(t).LineSize }, powerOfTwo)
		intField(lv.prefix+".assoc", lv.label+" associativity in ways (0 = fully associative)", cov("Assoc"),
			func(t Target) *int { return &sel(t).Assoc }, nonNegative)
		uintField(lv.prefix+".hit-latency", lv.label+" hit latency in CPU cycles", cov("HitLatency"),
			func(t Target) *uint64 { return &sel(t).HitLatency }, positive)
		intField(lv.prefix+".ports", lv.label+" access ports per cycle", cov("Ports"),
			func(t Target) *int { return &sel(t).Ports }, positive)
		intField(lv.prefix+".mshrs", lv.label+" miss-address-file entries", cov("MSHRs"),
			func(t Target) *int { return &sel(t).MSHRs }, positive)
		intField(lv.prefix+".reads-per-mshr", lv.label+" read merges per MSHR line", cov("ReadsPerMSHR"),
			func(t Target) *int { return &sel(t).ReadsPerMSHR }, positive)
		boolField(lv.prefix+".write-back", lv.label+" write-back (vs write-through)", cov("WriteBack"),
			func(t Target) *bool { return &sel(t).WriteBack })
		boolField(lv.prefix+".alloc-on-write", lv.label+" allocate lines on write misses", cov("AllocOnWrite"),
			func(t Target) *bool { return &sel(t).AllocOnWrite })
		boolField(lv.prefix+".infinite-mshr", lv.label+" SimpleScalar-like infinite MSHRs (Figure 9)", cov("InfiniteMSHR"),
			func(t Target) *bool { return &sel(t).InfiniteMSHR })
		boolField(lv.prefix+".free-refill-ports", lv.label+" refills bypass port accounting (Figure 1)", cov("FreeRefillPorts"),
			func(t Target) *bool { return &sel(t).FreeRefillPorts })
		boolField(lv.prefix+".no-pipeline-stall", lv.label+" disable the Section 2.2 pipeline-stall rules", cov("NoPipelineStall"),
			func(t Target) *bool { return &sel(t).NoPipelineStall })
		intField(lv.prefix+".prefetch-queue-cap", lv.label+" prefetch request queue bound (0 disables buffering)", cov("PrefetchQueueCap"),
			func(t Target) *int { return &sel(t).PrefetchQueueCap }, nonNegative)
	}
}

func registerMemory() {
	enumField("hier.mem.kind", "main-memory model (Figure 8 compares all three)",
		[]string{"hier.Config.Memory"}, hier.MemoryKindNames(),
		func(t Target) string { return t.Hier.Memory.Name() },
		func(t Target, s string) error {
			k, err := hier.ParseMemoryKind(s)
			if err != nil {
				return err // names the valid set
			}
			t.Hier.Memory = k
			return nil
		})
	uintField("hier.mem.const-latency", "constant memory latency in CPU cycles (const70 model only)",
		[]string{"hier.Config.ConstLatency"},
		func(t Target) *uint64 { return &t.Hier.ConstLatency }, positive)
}

// registerSDRAM maps the Table 1 SDRAM device under hier.sdram. The
// detailed "sdram" memory kind reads these; const70 and the
// fixed-parameter sdram70 variant ignore them.
func registerSDRAM() {
	cov := func(field string) []string {
		c := []string{"mem.SDRAMConfig." + field}
		if field == "Banks" {
			c = append(c, "hier.Config.SDRAM")
		}
		return c
	}
	sd := func(t Target) *mem.SDRAMConfig { return &t.Hier.SDRAM }
	intField("hier.sdram.banks", "independently schedulable banks", cov("Banks"),
		func(t Target) *int { return &sd(t).Banks }, positive)
	intField("hier.sdram.rows", "rows per bank", cov("Rows"),
		func(t Target) *int { return &sd(t).Rows }, positive)
	intField("hier.sdram.columns", "columns (8-byte words) per row", cov("Columns"),
		func(t Target) *int { return &sd(t).Columns }, positive)
	uintField("hier.sdram.ras-to-ras", "tRRD: min cycles between ACTs to distinct banks", cov("RASToRAS"),
		func(t Target) *uint64 { return &sd(t).RASToRAS }, positive)
	uintField("hier.sdram.ras-active", "tRAS: min row open time before precharge", cov("RASActive"),
		func(t Target) *uint64 { return &sd(t).RASActive }, positive)
	uintField("hier.sdram.ras-to-cas", "tRCD: ACT to column command", cov("RASToCAS"),
		func(t Target) *uint64 { return &sd(t).RASToCAS }, positive)
	uintField("hier.sdram.cas-latency", "tCL: column command to first data", cov("CASLatency"),
		func(t Target) *uint64 { return &sd(t).CASLatency }, positive)
	uintField("hier.sdram.ras-pre", "tRP: precharge time", cov("RASPre"),
		func(t Target) *uint64 { return &sd(t).RASPre }, positive)
	uintField("hier.sdram.ras-cycle", "tRC: min time between ACTs to one bank", cov("RASCycle"),
		func(t Target) *uint64 { return &sd(t).RASCycle }, positive)
	intField("hier.sdram.queue-size", "controller queue entries", cov("QueueSize"),
		func(t Target) *int { return &sd(t).QueueSize }, positive)
	uintField("hier.sdram.burst-cycles", "data-bus occupancy of one line transfer", cov("BurstCycles"),
		func(t Target) *uint64 { return &sd(t).BurstCycles }, positive)
	uintField("hier.sdram.line-size", "transfer granularity in bytes", cov("LineSize"),
		func(t Target) *uint64 { return &sd(t).LineSize }, powerOfTwo)
	enumField("hier.sdram.policy", "controller scheduling policy",
		cov("Policy"), mem.PolicyNames(),
		func(t Target) string { return sd(t).Policy.Name() },
		func(t Target, s string) error {
			p, err := mem.ParsePolicy(s)
			if err != nil {
				return err // names the valid set
			}
			sd(t).Policy = p
			return nil
		})
	enumField("hier.sdram.interleave", "bank interleaving scheme",
		cov("Interleave"), mem.InterleaveNames(),
		func(t Target) string { return sd(t).Interleave.Name() },
		func(t Target, s string) error {
			iv, err := mem.ParseInterleave(s)
			if err != nil {
				return err // names the valid set
			}
			sd(t).Interleave = iv
			return nil
		})
}

func registerBuses() {
	uintField("hier.l1bus.bytes", "L1/L2 bus width in bytes", []string{"hier.Config.L1BusBytes"},
		func(t Target) *uint64 { return &t.Hier.L1BusBytes }, powerOfTwo)
	uintField("hier.l1bus.cpu-cycles", "CPU cycles per L1/L2 bus cycle", []string{"hier.Config.L1BusCPUCycles"},
		func(t Target) *uint64 { return &t.Hier.L1BusCPUCycles }, positive)
	uintField("hier.fsb.bytes", "front-side bus width in bytes", []string{"hier.Config.FSBBytes"},
		func(t Target) *uint64 { return &t.Hier.FSBBytes }, powerOfTwo)
	uintField("hier.fsb.cpu-cycles", "CPU cycles per front-side bus cycle", []string{"hier.Config.FSBCPUCycles"},
		func(t Target) *uint64 { return &t.Hier.FSBCPUCycles }, positive)
}

func registerCPU() {
	cov := func(field string) []string { return []string{"cpu.Config." + field} }
	intField("cpu.ruu", "register update unit (instruction window) entries", cov("RUUSize"),
		func(t Target) *int { return &t.CPU.RUUSize }, positive)
	intField("cpu.lsq", "load/store queue entries", cov("LSQSize"),
		func(t Target) *int { return &t.CPU.LSQSize }, positive)
	intField("cpu.fetch-width", "instructions fetched per cycle", cov("FetchWidth"),
		func(t Target) *int { return &t.CPU.FetchWidth }, positive)
	intField("cpu.issue-width", "instructions issued per cycle", cov("IssueWidth"),
		func(t Target) *int { return &t.CPU.IssueWidth }, positive)
	intField("cpu.commit-width", "instructions committed per cycle", cov("CommitWidth"),
		func(t Target) *int { return &t.CPU.CommitWidth }, positive)
	intField("cpu.int-alu", "integer ALUs", cov("IntALU"),
		func(t Target) *int { return &t.CPU.IntALU }, positive)
	intField("cpu.int-multdiv", "integer multiply/divide units", cov("IntMultDiv"),
		func(t Target) *int { return &t.CPU.IntMultDiv }, positive)
	intField("cpu.fp-alu", "floating-point ALUs", cov("FPALU"),
		func(t Target) *int { return &t.CPU.FPALU }, positive)
	intField("cpu.fp-multdiv", "floating-point multiply/divide units", cov("FPMultDiv"),
		func(t Target) *int { return &t.CPU.FPMultDiv }, positive)
	intField("cpu.load-store", "load/store units (cache ports used per cycle)", cov("LoadStore"),
		func(t Target) *int { return &t.CPU.LoadStore }, positive)
	uintField("cpu.mispredict-penalty", "fetch-redirect cycles after a resolved mispredict", cov("MispredictPenalty"),
		func(t Target) *uint64 { return &t.CPU.MispredictPenalty }, nonNegative)
}

// Exemptions lists exported config-struct fields deliberately outside
// the registry, each with the reason. The completeness test fails on
// any exported field neither registered nor listed here.
var Exemptions = map[string]string{
	"cache.Config.Name": "structural label wired by hier.Build, not a tunable knob",
}

package trace

import (
	"fmt"
	"io"
)

// SeekRecord repositions the file so the next Next returns record n
// (0-based from the start of the trace). Warm-state restores use it to
// re-establish a recorded workload's cursor without re-reading the
// prefix.
func (f *File) SeekRecord(n uint64) error {
	if _, err := f.f.Seek(int64(4+n*recordSize), io.SeekStart); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	f.r.r.Reset(f.f)
	f.r.n = n
	f.r.err = nil
	return nil
}

// Package trace defines the instruction stream that MicroLib host
// cores consume: a minimal dynamic-instruction record (class, PC,
// effective address, register dependences, branch outcome, basic
// block id) plus binary readers/writers and stream selectors
// (skip-N/take-N, the paper's "skip 1 billion, simulate 2 billion"
// style selection, and SimPoint-style offset selection).
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Class is the functional class of an instruction.
type Class uint8

// Instruction classes, matching the Table 1 functional units.
const (
	IntALU Class = iota
	IntMult
	IntDiv
	FPALU
	FPMult
	FPDiv
	Load
	Store
	Branch
	numClasses
)

// String names the class.
func (c Class) String() string {
	switch c {
	case IntALU:
		return "int"
	case IntMult:
		return "imul"
	case IntDiv:
		return "idiv"
	case FPALU:
		return "fp"
	case FPMult:
		return "fmul"
	case FPDiv:
		return "fdiv"
	case Load:
		return "load"
	case Store:
		return "store"
	case Branch:
		return "branch"
	}
	return "?"
}

// Latency returns the execution latency of the class in cycles
// (sim-outorder-like values).
func (c Class) Latency() uint64 {
	switch c {
	case IntALU:
		return 1
	case IntMult:
		return 3
	case IntDiv:
		return 20
	case FPALU:
		return 2
	case FPMult:
		return 4
	case FPDiv:
		return 12
	case Load, Store:
		return 1 // address generation; memory time comes from the cache
	case Branch:
		return 1
	}
	return 1
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool { return c == Load || c == Store }

// Inst is one dynamic instruction.
type Inst struct {
	PC   uint64
	Addr uint64 // effective address for Load/Store, else 0
	// DataPC, when non-zero, is the static-instruction identity the
	// memory system observes for Load/Store (PC-indexed predictors
	// key on it); the front end still fetches from PC.
	DataPC uint64
	// Dep1/Dep2 are backward distances (in dynamic instructions) to
	// producer instructions; 0 means no dependence.
	Dep1, Dep2 uint16
	Class      Class
	// Mispredict marks a branch the front-end mispredicts.
	Mispredict bool
	// BB is the basic-block id, used for BBV/SimPoint analysis.
	BB uint32
}

// MemPC returns the identity the memory system should observe.
func (i *Inst) MemPC() uint64 {
	if i.DataPC != 0 {
		return i.DataPC
	}
	return i.PC
}

// Stream produces instructions. Next fills in inst and reports
// whether one was produced (false = end of trace).
type Stream interface {
	Next(inst *Inst) bool
}

// --- binary encoding ---

// record layout (little endian, fixed 40 bytes):
//
//	pc u64 | addr u64 | dataPC u64 | bb u32 | dep1 u16 | dep2 u16 |
//	class u8 | flags u8 | 6 pad bytes
const recordSize = 40

var magic = [4]byte{'M', 'L', 'T', '1'}

// Writer encodes instructions to an io.Writer.
type Writer struct {
	w   *bufio.Writer
	buf [recordSize]byte
	n   uint64
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one instruction.
func (w *Writer) Write(inst *Inst) error {
	b := w.buf[:]
	binary.LittleEndian.PutUint64(b[0:], inst.PC)
	binary.LittleEndian.PutUint64(b[8:], inst.Addr)
	binary.LittleEndian.PutUint64(b[16:], inst.DataPC)
	binary.LittleEndian.PutUint32(b[24:], inst.BB)
	binary.LittleEndian.PutUint16(b[28:], inst.Dep1)
	binary.LittleEndian.PutUint16(b[30:], inst.Dep2)
	b[32] = byte(inst.Class)
	var flags byte
	if inst.Mispredict {
		flags |= 1
	}
	b[33] = flags
	for i := 34; i < recordSize; i++ {
		b[i] = 0
	}
	_, err := w.w.Write(b)
	w.n++
	return err
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.n }

// Flush flushes buffered records.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes a trace written by Writer. It implements Stream.
type Reader struct {
	r   *bufio.Reader
	buf [recordSize]byte
	n   uint64
	err error
}

// ErrBadMagic reports a stream that is not a MicroLib trace.
var ErrBadMagic = errors.New("trace: bad magic")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, err
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	return &Reader{r: br}, nil
}

// Next implements Stream.
func (r *Reader) Next(inst *Inst) bool {
	if r.err != nil {
		return false
	}
	if _, err := io.ReadFull(r.r, r.buf[:]); err != nil {
		r.err = err
		return false
	}
	b := r.buf[:]
	inst.PC = binary.LittleEndian.Uint64(b[0:])
	inst.Addr = binary.LittleEndian.Uint64(b[8:])
	inst.DataPC = binary.LittleEndian.Uint64(b[16:])
	inst.BB = binary.LittleEndian.Uint32(b[24:])
	inst.Dep1 = binary.LittleEndian.Uint16(b[28:])
	inst.Dep2 = binary.LittleEndian.Uint16(b[30:])
	inst.Class = Class(b[32])
	inst.Mispredict = b[33]&1 != 0
	r.n++
	return true
}

// Count returns the number of records decoded so far.
func (r *Reader) Count() uint64 { return r.n }

// Err returns the terminal error, if any. io.EOF at a record
// boundary is normal end-of-trace and is not reported;
// io.ErrUnexpectedEOF is — it means the file was cut mid-record
// (truncated copy, interrupted recording), and reading it as a
// shorter clean run would silently change the measurement.
func (r *Reader) Err() error {
	if r.err == io.EOF {
		return nil
	}
	if r.err == io.ErrUnexpectedEOF {
		//ml:waive hotalloc -- terminal path: Err runs once at end of trace, not per record
		return fmt.Errorf("trace: truncated mid-record after %d records: %w", r.n, r.err)
	}
	return r.err
}

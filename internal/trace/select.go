package trace

// Skip discards n instructions from s and returns s. It is the
// "skip the first billion" half of the arbitrary trace selection the
// paper studies in Section 3.5.
func Skip(s Stream, n uint64) Stream {
	var inst Inst
	for i := uint64(0); i < n; i++ {
		if !s.Next(&inst) {
			break
		}
	}
	return s
}

// Take bounds a stream to n instructions.
type Take struct {
	S    Stream
	Left uint64
}

// Limit returns a stream producing at most n instructions from s.
func Limit(s Stream, n uint64) *Take { return &Take{S: s, Left: n} }

// Next implements Stream.
func (t *Take) Next(inst *Inst) bool {
	if t.Left == 0 {
		return false
	}
	if !t.S.Next(inst) {
		t.Left = 0
		return false
	}
	t.Left--
	return true
}

// Spec selects which window of a benchmark's execution is simulated.
type Spec struct {
	// Skip instructions before measurement.
	Skip uint64
	// Insts to simulate (0 = unbounded).
	Insts uint64
}

// Apply materializes the selection over a stream.
func (sp Spec) Apply(s Stream) Stream {
	if sp.Skip > 0 {
		s = Skip(s, sp.Skip)
	}
	if sp.Insts > 0 {
		return Limit(s, sp.Insts)
	}
	return s
}

// SliceStream replays a fixed instruction slice (tests use it).
type SliceStream struct {
	Insts []Inst
	pos   int
}

// Next implements Stream.
func (s *SliceStream) Next(inst *Inst) bool {
	if s.pos >= len(s.Insts) {
		return false
	}
	*inst = s.Insts[s.pos]
	s.pos++
	return true
}

// Func adapts a function to the Stream interface.
type Func func(inst *Inst) bool

// Next implements Stream.
func (f Func) Next(inst *Inst) bool { return f(inst) }
